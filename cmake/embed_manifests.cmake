# Generates builtin_manifests.inc from examples/models/*.json.
#
# Invoked at build time (see src/CMakeLists.txt) with:
#   -DFILES=<comma-separated manifest paths>  -DOUT=<generated .inc>
# Each manifest becomes one {name, json} entry (name = the file stem) in
# the table graph/builtin_models.cpp compiles in, so the builtin catalogue
# and the shipped files are the same bytes by construction.
if(NOT DEFINED FILES OR NOT DEFINED OUT)
  message(FATAL_ERROR "embed_manifests.cmake needs -DFILES=... -DOUT=...")
endif()

string(REPLACE "," ";" manifest_files "${FILES}")
set(content "// Generated from examples/models/*.json by\n")
string(APPEND content "// cmake/embed_manifests.cmake - do not edit.\n")
foreach(file ${manifest_files})
  get_filename_component(stem "${file}" NAME_WE)
  file(READ "${file}" text)
  if(text MATCHES "\\)maco_manifest\"")
    message(FATAL_ERROR "${file} contains the raw-string delimiter")
  endif()
  string(APPEND content
         "{\"${stem}\", R\"maco_manifest(${text})maco_manifest\"},\n")
endforeach()

# Write-if-changed keeps incremental builds quiet.
set(existing "")
if(EXISTS "${OUT}")
  file(READ "${OUT}" existing)
endif()
if(NOT existing STREQUAL content)
  file(WRITE "${OUT}" "${content}")
endif()
