#!/usr/bin/env python3
"""Check that relative markdown links point at files that exist.

Usage: check_markdown_links.py FILE_OR_DIR...

Scans every given markdown file (directories are walked for *.md) for
inline links and images `[text](target)`. Relative targets must resolve to
an existing file or directory, relative to the markdown file that contains
them. External schemes (http/https/mailto) and pure in-page anchors are
skipped; a `path#anchor` target is checked for the path part only.

Exits 1 with one line per broken link, 0 when everything resolves. No
third-party dependencies — runs on a stock python3.
"""

import re
import sys
from pathlib import Path

# Inline links/images. Deliberately simple: no nested parentheses in
# targets (none of our docs need them), reference-style links not used.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def markdown_files(arg: Path):
    if arg.is_dir():
        yield from sorted(arg.rglob("*.md"))
    else:
        yield arg


def check_file(md: Path) -> list:
    errors = []
    in_fence = False
    for lineno, line in enumerate(
        md.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(SKIP_PREFIXES):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (md.parent / path).resolve()
            if not resolved.exists():
                errors.append(f"{md}:{lineno}: broken link '{target}'")
    return errors


def main(argv: list) -> int:
    if not argv:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    errors = []
    seen = 0
    for arg in argv:
        root = Path(arg)
        if not root.exists():
            errors.append(f"{arg}: no such file or directory")
            continue
        for md in markdown_files(root):
            seen += 1
            errors.extend(check_file(md))
    for error in errors:
        print(error, file=sys.stderr)
    print(f"checked {seen} markdown file(s), {len(errors)} broken link(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
