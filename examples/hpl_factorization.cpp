// HPL-style LU factorization on MACO.
//
// The paper sources its GEMM workloads from the HPL package; the dominant
// kernel of HPL's right-looking LU is the trailing-submatrix GEMM update.
// This example runs the real thing at two scales:
//
// Part 1 (detailed system, functional): a blocked LU of a 128x128
// diagonally-dominant matrix (no pivoting needed). The CPU factors each
// 32-wide panel in software; the trailing update A22 -= L21 * U12 is
// dispatched to the MMAE — and because MPAIS GEMM operands are dense,
// the strided sub-matrix views are packed/unpacked with MA_MOVE, exactly
// the data-migration role Section III.B gives the DMA instructions (real
// HPL packs its panels the same way). The result is verified by
// reconstructing A = L * U.
//
// Part 2 (timing model): the full HPL sequence for paper-scale problems,
// trailing updates cooperatively mapped over 16 nodes, panel factorization
// and TRSM charged to the CPU cores, reporting sustained GFLOPS against
// the canonical 2/3*N^3 LU FLOP count — the way HPL reports.
#include <cstdio>

#include "core/maco_system.hpp"
#include "core/timing_model.hpp"
#include "util/rng.hpp"
#include "workloads/hpl.hpp"

namespace {

using namespace maco;

void detailed_blocked_lu() {
  std::puts("== Part 1: blocked LU (128x128, nb=32) on the detailed system ==");

  core::SystemConfig config = core::SystemConfig::maco_default();
  config.node_count = 1;
  core::MacoSystem system(config);
  core::Process& process = system.create_process();
  system.schedule_process(0, process);

  const std::uint64_t n = 128, nb = 32;
  util::Rng rng(7);
  sa::HostMatrix a = sa::HostMatrix::random(n, n, rng);
  for (std::uint64_t i = 0; i < n; ++i) {
    a.at(i, i) += static_cast<double>(n);  // diagonal dominance: no pivoting
  }
  const sa::HostMatrix original = a;

  // Working copy in MACO memory plus dense scratch buffers for the packed
  // GEMM operands (-L21 | U12 | A22).
  const auto a_desc = system.alloc_matrix(process, n, n);
  const auto l21_desc = system.alloc_matrix(process, n, nb);
  const auto u12_desc = system.alloc_matrix(process, nb, n);
  const auto c22_desc = system.alloc_matrix(process, n, n);
  system.write_matrix(process, a_desc, a);

  cpu::CpuCore& cpu = system.node(0).cpu();
  std::uint64_t gemm_tasks = 0, move_tasks = 0;

  // Dispatches a strided copy; the STQ executes tasks in FIFO order, so a
  // pack -> GEMM -> unpack sequence needs no intermediate drains. The MAID
  // lands in x20+slot for release after the drain.
  const auto issue_move = [&](int slot, vm::VirtAddr src,
                              std::uint64_t src_stride, vm::VirtAddr dst,
                              std::uint64_t dst_stride, std::uint64_t rows,
                              std::uint64_t row_bytes) {
    isa::MoveParams move;
    move.src = src;
    move.dst = dst;
    move.rows = static_cast<std::uint32_t>(rows);
    move.row_bytes = static_cast<std::uint32_t>(row_bytes);
    move.src_stride = src_stride;
    move.dst_stride = dst_stride;
    cpu.regs().write_param_block(10, move.pack());
    cpu.execute_source("ma_move x" + std::to_string(20 + slot) + ", x10");
    ++move_tasks;
  };

  for (std::uint64_t j = 0; j + nb <= n; j += nb) {
    a = system.read_matrix(process, a_desc);
    const std::uint64_t trailing = n - j - nb;

    // -- CPU: unblocked factorization of the panel A[j:, j:j+nb]. --
    for (std::uint64_t kk = j; kk < j + nb; ++kk) {
      const double pivot = a.at(kk, kk);
      for (std::uint64_t r = kk + 1; r < n; ++r) {
        a.at(r, kk) /= pivot;
        for (std::uint64_t c = kk + 1; c < j + nb; ++c) {
          a.at(r, c) -= a.at(r, kk) * a.at(kk, c);
        }
      }
    }
    // -- CPU: triangular solve for U12 = L11^-1 * A12. --
    for (std::uint64_t kk = j; kk < j + nb; ++kk) {
      for (std::uint64_t r = j; r < kk; ++r) {
        for (std::uint64_t c = j + nb; c < n; ++c) {
          a.at(kk, c) -= a.at(kk, r) * a.at(r, c);
        }
      }
    }
    // Host holds -L21 (negated multipliers) so the accumulate-only GEMM
    // computes A22 + (-L21)*U12.
    system.write_matrix(process, a_desc, a);
    if (trailing == 0) break;
    sa::HostMatrix neg_l21(trailing, nb);
    for (std::uint64_t r = 0; r < trailing; ++r) {
      for (std::uint64_t c = 0; c < nb; ++c) {
        neg_l21.at(r, c) = -a.at(j + nb + r, j + c);
      }
    }
    system.write_matrix(
        process, vm::MatrixDesc{l21_desc.base, trailing, nb, 8, nb * 8},
        neg_l21);

    // -- MMAE: pack the strided views densely with MA_MOVE... --
    issue_move(0, a_desc.element_addr(j, j + nb), n * 8,       // U12
               u12_desc.base, trailing * 8, nb, trailing * 8);
    issue_move(1, a_desc.element_addr(j + nb, j + nb), n * 8,  // A22
               c22_desc.base, trailing * 8, trailing, trailing * 8);

    // -- ...run the trailing update on dense operands... --
    isa::GemmParams gemm;
    gemm.a_base = l21_desc.base;
    gemm.b_base = u12_desc.base;
    gemm.c_base = c22_desc.base;
    gemm.m = static_cast<std::uint32_t>(trailing);
    gemm.k = static_cast<std::uint32_t>(nb);
    gemm.n = static_cast<std::uint32_t>(trailing);
    cpu.regs().write_param_block(10, gemm.pack());
    cpu.execute_source("ma_cfg x22, x10");
    ++gemm_tasks;

    // -- ...and unpack the updated A22 back into the factor matrix. --
    issue_move(3, c22_desc.base, trailing * 8,
               a_desc.element_addr(j + nb, j + nb), n * 8, trailing,
               trailing * 8);

    system.run();  // drain the four FIFO-ordered tasks
    const auto& entry =
        cpu.mtq().entry(static_cast<cpu::Maid>(cpu.regs().read(22)));
    if (!entry.done || entry.exception_en) {
      std::puts("  trailing update failed!");
      return;
    }
    // Release all four MTQ entries.
    cpu.execute_source(
        "ma_state x6, x20\n"
        "ma_state x6, x21\n"
        "ma_state x6, x22\n"
        "ma_state x6, x23");
  }

  // Reconstruct L*U and compare against the original A.
  a = system.read_matrix(process, a_desc);
  sa::HostMatrix reconstructed(n, n);
  for (std::uint64_t i = 0; i < n; ++i) {
    for (std::uint64_t jj = 0; jj < n; ++jj) {
      double sum = 0.0;
      const std::uint64_t limit = std::min(i, jj + 1);
      for (std::uint64_t kk = 0; kk < limit; ++kk) {
        sum += a.at(i, kk) * a.at(kk, jj);  // L (unit diagonal) below
      }
      if (i <= jj) sum += a.at(i, jj);  // U on/above the diagonal
      reconstructed.at(i, jj) = sum;
    }
  }
  double max_err = 0.0;
  for (std::uint64_t i = 0; i < n; ++i) {
    for (std::uint64_t jj = 0; jj < n; ++jj) {
      max_err = std::max(max_err, std::abs(reconstructed.at(i, jj) -
                                           original.at(i, jj)));
    }
  }
  std::printf("  %llu GEMMs + %llu MA_MOVE packing tasks on the MMAE,\n"
              "  reconstruction |L*U - A|_max = %.2e -> %s\n\n",
              static_cast<unsigned long long>(gemm_tasks),
              static_cast<unsigned long long>(move_tasks), max_err,
              max_err < 1e-9 ? "FACTORIZATION CORRECT" : "MISMATCH");
}

void paper_scale_hpl() {
  std::puts("== Part 2: HPL sweep, 16 nodes (timing model) ==");
  std::puts("      N     LU GFLOPs   time (ms)   HPL GFLOPS   vs FP64 peak");

  const core::SystemConfig config = core::SystemConfig::maco_default();
  const core::SystemTimingModel model(config);
  const cpu::CpuKernelModel& kernels = config.cpu.kernels;
  const std::uint64_t nb = 256;

  for (const std::uint64_t n : {2048ull, 4096ull, 8192ull, 16384ull}) {
    core::TimingOptions options;
    options.active_nodes = 16;
    options.cooperative = true;  // one update split over all nodes (Fig. 5)
    options.precision = sa::Precision::kFp64;

    double total_ps = 0.0;
    for (std::uint64_t j = nb; j <= n; j += nb) {
      const std::uint64_t trailing = n - j;
      // CPU side: panel factorization ((n-j+nb) x nb, depth nb) and the
      // nb x trailing TRSM, parallelized over the 16 cores.
      const sim::Cycles panel = kernels.gemm_cycles(
          n - j + nb, nb, nb, sa::Precision::kFp64);
      const sim::Cycles trsm =
          trailing
              ? kernels.gemm_cycles(nb, trailing, nb, sa::Precision::kFp64)
              : 0;
      total_ps +=
          static_cast<double>(kernels.cycles_to_ps((panel + trsm) / 16 + 1));
      // MMAE side: the trailing GEMM update.
      if (trailing) {
        options.shape = sa::TileShape{trailing, trailing, nb};
        total_ps += static_cast<double>(model.run(options).makespan_ps);
      }
    }

    const double seconds = total_ps * 1e-12;
    const double hpl_gflops = wl::lu_flops(n) / seconds / 1e9;
    const double peak = 16 * 80.0;  // 16 nodes x 80 GFLOPS FP64
    std::printf("  %6llu  %10.1f  %10.2f  %11.1f  %12.1f%%\n",
                static_cast<unsigned long long>(n), wl::lu_flops(n) / 1e9,
                seconds * 1e3, hpl_gflops, hpl_gflops / peak * 100.0);
  }
  std::puts("  (no look-ahead: panels and TRSM serialize with the updates,"
            " as in basic HPL)");
}

}  // namespace

int main() {
  detailed_blocked_lu();
  paper_scale_hpl();
  return 0;
}
