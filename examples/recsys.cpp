// Recommender-system inference on MACO — the paper's motivating scenario
// for loosely-coupled architectures (Section I): "we can offload top and
// bottom MLPs to the matrix engine leaving the CPU core free to run
// embedding lookups."
//
// A DLRM-style model processes request batches in three stages:
//   1. embedding lookups  — sparse gathers, CPU work (cache-dominated),
//   2. bottom MLP on the dense features, top MLP on the interactions —
//      dense GEMMs, MMAE work,
//   3. feature interaction + sigmoid — small CPU work.
// On a tightly-coupled design the engine and the core contend; on MACO the
// per-request CPU work of batch i runs while the MMAE grinds batch i-1's
// MLPs. This example quantifies that overlap with the GEMM+ scheduler.
#include <cstdio>

#include "core/config.hpp"
#include "core/gemm_plus.hpp"
#include "core/timing_model.hpp"

namespace {

using namespace maco;

struct MlpSpec {
  const char* name;
  std::vector<std::uint64_t> widths;  // layer widths, input first
};

// DLRM-ish dimensions (Meta's open-source configuration, scaled).
constexpr std::uint64_t kBatch = 2048;
constexpr std::uint64_t kNumTables = 26;     // sparse features
constexpr std::uint64_t kEmbeddingDim = 128;

sim::TimePs mlp_gemm_time(const core::SystemTimingModel& model,
                          const MlpSpec& mlp, unsigned nodes) {
  core::TimingOptions options;
  options.active_nodes = nodes;
  options.cooperative = nodes > 1;
  options.precision = sa::Precision::kFp32;
  sim::TimePs total = 0;
  for (std::size_t l = 0; l + 1 < mlp.widths.size(); ++l) {
    options.shape =
        sa::TileShape{kBatch, mlp.widths[l + 1], mlp.widths[l]};
    total += model.run(options).makespan_ps;
  }
  return total;
}

}  // namespace

int main() {
  const core::SystemConfig config = core::SystemConfig::maco_default();
  const core::SystemTimingModel model(config);
  const cpu::CpuKernelModel& kernels = config.cpu.kernels;
  const unsigned nodes = 16;

  const MlpSpec bottom{"bottom MLP", {13, 512, 256, kEmbeddingDim}};
  const MlpSpec top{"top MLP", {479, 1024, 1024, 256, 1}};

  // Per-batch stage costs.
  const sim::TimePs bottom_ps = mlp_gemm_time(model, bottom, nodes);
  const sim::TimePs top_ps = mlp_gemm_time(model, top, nodes);
  // Embedding gathers parallelize across the 16 CPU cores.
  const sim::TimePs embed_ps = kernels.cycles_to_ps(
      kernels.embedding_lookup_cycles(kBatch * kNumTables, kEmbeddingDim,
                                      sa::Precision::kFp32) /
      nodes);
  // Interaction (pairwise dots over the 27 feature vectors, per sample)
  // + sigmoid, also CPU-side, split across the cores.
  const sim::TimePs interact_ps = kernels.cycles_to_ps(
      kernels.gemm_cycles(kNumTables + 1, kNumTables + 1, kEmbeddingDim,
                          sa::Precision::kFp32) *
          kBatch / nodes +
      1);

  std::puts("== DLRM-style inference, batch 2048, 26 embedding tables ==");
  std::printf("  per-batch stage costs: embeddings (CPU) %.0f us, "
              "bottom MLP (MMAE) %.0f us,\n    top MLP (MMAE) %.0f us, "
              "interaction (CPU) %.0f us\n\n",
              embed_ps / 1e6, bottom_ps / 1e6, top_ps / 1e6,
              interact_ps / 1e6);

  // A stream of request batches: MMAE stage = both MLPs; CPU stage =
  // embeddings + interaction of the neighbouring batches.
  const int batches = 64;
  std::vector<core::GemmPlusStage> stages(
      batches, core::GemmPlusStage{bottom_ps + top_ps,
                                   embed_ps + interact_ps, 0});
  const auto serial = core::schedule_gemm_plus(stages, /*overlap=*/false);
  const auto piped = core::schedule_gemm_plus(stages, /*overlap=*/true);

  const double serial_ms = static_cast<double>(serial.total_ps) / 1e9;
  const double piped_ms = static_cast<double>(piped.total_ps) / 1e9;
  const double serial_qps =
      batches * static_cast<double>(kBatch) / (serial_ms / 1e3);
  const double piped_qps =
      batches * static_cast<double>(kBatch) / (piped_ms / 1e3);

  std::printf("  %d batches serialized (TCA-style):  %8.2f ms  %12.0f req/s\n",
              batches, serial_ms, serial_qps);
  std::printf("  %d batches overlapped  (MACO):      %8.2f ms  %12.0f req/s\n",
              batches, piped_ms, piped_qps);
  std::printf("  speedup from CPU/MMAE decoupling: %.2fx "
              "(%.0f%% of CPU work hidden under the MLPs)\n",
              serial_ms / piped_ms, piped.overlap_fraction * 100.0);
  return 0;
}
