// Deep-learning inference on MACO (the paper's Fig. 8 scenario).
//
// Runs ResNet-50, BERT and GPT-3 inference GEMM traces (FP32) through the
// system timing model on all 16 compute nodes, with the GEMM+ mapping of
// Section IV.B: MMAEs run the GEMMs while the CPUs execute the non-GEMM
// stages (softmax / layernorm / GELU) of the previous layer in parallel,
// and MA_STASH prefetches the next layer's weights.
//
// Prints a per-layer table for BERT and the Fig. 8-style summary for all
// three networks against the five evaluated systems.
#include <cstdio>

#include "baselines/comparison.hpp"
#include "core/gemm_plus.hpp"
#include "workloads/dnn_models.hpp"

namespace {

const char* post_name(maco::wl::PostOp post) {
  using maco::wl::PostOp;
  switch (post) {
    case PostOp::kNone: return "-";
    case PostOp::kBiasAdd: return "bias";
    case PostOp::kRelu: return "relu";
    case PostOp::kGelu: return "gelu";
    case PostOp::kSoftmax: return "softmax";
    case PostOp::kLayerNorm: return "layernorm";
  }
  return "?";
}

void per_layer_bert() {
  using namespace maco;
  std::puts("== BERT-base (batch 8, seq 384): per-layer GEMM+ pipeline ==");
  std::puts("  layer             M      N      K   post-op    GEMM(ms)  CPU(ms)");

  const core::SystemConfig config = core::SystemConfig::maco_default();
  const baseline::Comparator comparator(config, 16);
  const core::SystemTimingModel model(config);
  const wl::Workload bert = wl::bert_base(8, 384);

  core::TimingOptions options;
  options.active_nodes = 16;
  options.cooperative = true;
  options.precision = bert.precision;

  for (const auto& layer : bert.layers) {
    options.shape = layer.shape;
    const core::SystemTiming timing = model.run(options);
    std::printf("  %-14s %6llu %6llu %6llu   %-9s %9.3f %8.3f\n",
                layer.name.c_str(),
                static_cast<unsigned long long>(layer.shape.m),
                static_cast<unsigned long long>(layer.shape.n),
                static_cast<unsigned long long>(layer.shape.k),
                post_name(layer.post),
                static_cast<double>(timing.makespan_ps) / 1e9,
                static_cast<double>(
                    comparator.post_op_time_ps(layer, bert.precision)) /
                    1e9);
  }

  // GEMM+ schedule: serial vs pipelined across the 12 encoder blocks.
  std::vector<core::GemmPlusStage> stages;
  for (const auto& layer : bert.layers) {
    options.shape = layer.shape;
    core::GemmPlusStage stage;
    stage.gemm_ps = model.run(options).makespan_ps;
    stage.cpu_post_ps = comparator.post_op_time_ps(layer, bert.precision);
    stage.stash_ps = comparator.stash_time_ps(layer, bert.precision);
    for (unsigned r = 0; r < layer.repeat; ++r) stages.push_back(stage);
  }
  const auto serial = core::schedule_gemm_plus(stages, /*overlap=*/false);
  const auto piped = core::schedule_gemm_plus(stages, /*overlap=*/true);
  std::printf("\n  12 blocks serial:    %8.1f ms\n",
              static_cast<double>(serial.total_ps) / 1e9);
  std::printf("  12 blocks pipelined: %8.1f ms  (%.0f%% of CPU work hidden)\n\n",
              static_cast<double>(piped.total_ps) / 1e9,
              piped.overlap_fraction * 100.0);
}

void fig8_summary() {
  using namespace maco;
  std::puts("== Fig. 8: five systems, three networks (GFLOPS, FP32, 256 PEs) ==");
  const baseline::Comparator comparator(core::SystemConfig::maco_default(), 16);

  std::printf("  %-10s", "network");
  for (const char* s :
       {"Baseline-1", "Baseline-2", "Gem5-RASA", "Gemmini", "MACO"}) {
    std::printf(" %11s", s);
  }
  std::puts("");
  for (const auto& workload :
       {wl::resnet50(8), wl::bert_base(8, 384), wl::gpt3(1, 2048)}) {
    const auto results = comparator.run_all(workload);
    std::printf("  %-10s", workload.name.c_str());
    for (const auto& r : results) std::printf(" %11.1f", r.gflops);
    std::puts("");
  }
  std::puts("");
}

}  // namespace

int main() {
  per_layer_bert();
  fig8_summary();
  return 0;
}
