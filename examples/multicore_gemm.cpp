// Multi-core GEMM: the paper's Fig. 5 mapping on real data, then at scale.
//
// Part 1 (detailed system): a 256x256x192 GEMM is partitioned over the four
// nodes of a small MACO with the Fig. 5 row-stripe scheme. Each node's CPU
// stashes+locks its operand panels into L3 (MA_STASH), dispatches its
// stripe with MA_CFG, and the assembled C is verified against the host
// reference.
//
// Part 2 (system timing model): the same mapping at paper scale — a
// 4096-cubed FP64 GEMM cooperatively split over 1..16 nodes — showing the
// near-linear speedup and the Fig. 7 efficiency trend.
#include <cstdio>

#include "core/gemm_mapper.hpp"
#include "core/maco_system.hpp"
#include "core/mapped_gemm.hpp"
#include "core/timing_model.hpp"
#include "isa/assembler.hpp"
#include "trace/timeline.hpp"
#include "util/rng.hpp"

namespace {

void detailed_four_node_gemm() {
  using namespace maco;
  std::puts("== Part 1: 4-node mapped GEMM on the detailed system ==");

  core::SystemConfig config = core::SystemConfig::maco_default();
  config.node_count = 4;
  core::MacoSystem system(config);
  core::Process& process = system.create_process();

  const std::uint64_t m = 256, n = 256, k = 192;
  util::Rng rng(2024);
  const auto a = sa::HostMatrix::random(m, k, rng);
  const auto b = sa::HostMatrix::random(k, n, rng);
  const auto a_desc = system.alloc_matrix(process, m, k);
  const auto b_desc = system.alloc_matrix(process, k, n);
  const auto c_desc = system.alloc_matrix(process, m, n);
  system.write_matrix(process, a_desc, a);
  system.write_matrix(process, b_desc, b);
  system.write_matrix(process, c_desc, sa::HostMatrix(m, n));

  // Fig. 5(a): C row stripes; every node shares B and owns a slice of A/C.
  const std::uint64_t stripe = m / 4;
  for (unsigned node = 0; node < 4; ++node) {
    system.schedule_process(node, process);
    cpu::CpuCore& cpu = system.node(node).cpu();

    // Stash + lock the shared B panel (Fig. 5(b)) before compute.
    isa::StashParams stash;
    stash.base = b_desc.base;
    stash.rows = static_cast<std::uint32_t>(k);
    stash.row_bytes = static_cast<std::uint32_t>(n * 8);
    stash.stride = n * 8;
    stash.lock = true;
    cpu.regs().write_param_block(16, stash.pack());

    isa::GemmParams gemm;
    gemm.a_base = a_desc.element_addr(node * stripe, 0);
    gemm.b_base = b_desc.base;
    gemm.c_base = c_desc.element_addr(node * stripe, 0);
    gemm.m = static_cast<std::uint32_t>(stripe);
    gemm.n = static_cast<std::uint32_t>(n);
    gemm.k = static_cast<std::uint32_t>(k);
    cpu.regs().write_param_block(10, gemm.pack());

    cpu.execute_source(
        "ma_stash x7, x16   ; prefetch+lock shared B into L3\n"
        "ma_cfg   x5, x10   ; dispatch this node's C stripe");
  }
  system.run();

  bool all_done = true;
  for (unsigned node = 0; node < 4; ++node) {
    cpu::CpuCore& cpu = system.node(node).cpu();
    const auto maid = static_cast<cpu::Maid>(cpu.regs().read(5));
    const bool done = cpu.mtq().entry(maid).done &&
                      !cpu.mtq().entry(maid).exception_en;
    all_done = all_done && done;
    const auto& report = system.node(node).mmae().reports().back();
    std::printf("  node %u: stripe rows [%llu, %llu)  done=%d  "
                "DMA %.1f KiB  SA busy %.1f us\n",
                node, static_cast<unsigned long long>(node * stripe),
                static_cast<unsigned long long>((node + 1) * stripe), done,
                static_cast<double>(report.dma_bytes) / 1024.0,
                static_cast<double>(report.sa_busy_ps) / 1e6);
  }

  sa::HostMatrix expected(m, n);
  sa::reference_gemm(a, b, expected);
  const bool ok = system.read_matrix(process, c_desc).approx_equal(expected);
  std::printf("  assembled C vs reference: %s\n\n",
              ok && all_done ? "MATCH" : "MISMATCH");
}

void library_mapped_gemm() {
  using namespace maco;
  std::puts("== Part 1b: the same mapping as one library call ==");

  core::SystemConfig config = core::SystemConfig::maco_default();
  config.node_count = 4;
  core::MacoSystem system(config);
  core::Process& process = system.create_process();

  util::Rng rng(99);
  const std::uint64_t m = 200, n = 168, k = 88;  // ragged on purpose
  const auto a = sa::HostMatrix::random(m, k, rng);
  const auto b = sa::HostMatrix::random(k, n, rng);
  const auto a_desc = system.alloc_matrix(process, m, k);
  const auto b_desc = system.alloc_matrix(process, k, n);
  const auto c_desc = system.alloc_matrix(process, m, n);
  system.write_matrix(process, a_desc, a);
  system.write_matrix(process, b_desc, b);
  system.write_matrix(process, c_desc, sa::HostMatrix(m, n));

  core::MappedGemmRunner runner(system);
  const core::MappedGemmResult result =
      runner.run(process, a_desc, b_desc, c_desc);

  sa::HostMatrix expected(m, n);
  sa::reference_gemm(a, b, expected);
  const bool match =
      system.read_matrix(process, c_desc).approx_equal(expected, 1e-9);
  std::printf("  %llux%llux%llu over %u nodes: %llu GEMMs, %llu moves, "
              "%llu stashes, %llu waves\n",
              static_cast<unsigned long long>(m),
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(k), result.nodes_used,
              static_cast<unsigned long long>(result.gemm_tasks),
              static_cast<unsigned long long>(result.move_tasks),
              static_cast<unsigned long long>(result.stash_tasks),
              static_cast<unsigned long long>(result.waves));
  std::printf("  makespan %.1f us, %s\n",
              static_cast<double>(result.makespan_ps) / 1e6,
              result.ok && match ? "MATCH" : "MISMATCH");

  // What each MMAE did, as a Gantt chart (H=stash, E=move, G=gemm).
  trace::Timeline timeline;
  for (unsigned node = 0; node < system.node_count(); ++node) {
    timeline.import_reports("node" + std::to_string(node) + ".mmae",
                            system.node(node).mmae().reports());
  }
  std::fputs(timeline.render_ascii(64).c_str(), stdout);
  std::puts("");
}

void paper_scale_scaling() {
  using namespace maco;
  std::puts("== Part 2: 4096^3 FP64 GEMM cooperatively split (timing model) ==");
  std::puts("  nodes   makespan(ms)   speedup   per-node efficiency");

  const core::SystemTimingModel model(core::SystemConfig::maco_default());
  double t1 = 0.0;
  for (unsigned nodes : {1u, 2u, 4u, 8u, 16u}) {
    core::TimingOptions options;
    options.shape = sa::TileShape{4096, 4096, 4096};
    options.active_nodes = nodes;
    options.cooperative = nodes > 1;
    const core::SystemTiming timing = model.run(options);
    const double ms = static_cast<double>(timing.makespan_ps) / 1e9;
    if (nodes == 1) t1 = ms;
    std::printf("  %5u   %12.1f   %7.2fx   %6.1f%%\n", nodes, ms, t1 / ms,
                timing.mean_efficiency * 100.0);
  }
}

}  // namespace

int main() {
  detailed_four_node_gemm();
  library_mapped_gemm();
  paper_scale_scaling();
  return 0;
}
