// Quickstart: one GEMM through the full MACO stack.
//
// Demonstrates the canonical MPAIS flow on a single compute node:
//   1. create a process and map matrices into its address space,
//   2. load the six parameter registers and issue MA_CFG,
//   3. let the MMAE pull tiles over the CCM/L3 path, run the systolic
//      array, and write C back,
//   4. query the MTQ with MA_STATE and verify the numerics against a
//      host-side reference GEMM.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>

#include "core/maco_system.hpp"
#include "isa/assembler.hpp"
#include "util/rng.hpp"

int main() {
  using namespace maco;

  // A 1-node MACO (the full chip has 16; one is enough here).
  core::SystemConfig config = core::SystemConfig::maco_default();
  config.node_count = 1;
  core::MacoSystem system(config);

  core::Process& process = system.create_process();
  system.schedule_process(/*node=*/0, process);

  // Host-side operands. HostMatrix carries doubles; the simulated precision
  // mode (FP64 here) selects the array's SIMD width and timing.
  const std::uint64_t m = 128, n = 128, k = 128;
  util::Rng rng(42);
  const auto a = sa::HostMatrix::random(m, k, rng);
  const auto b = sa::HostMatrix::random(k, n, rng);

  const vm::MatrixDesc a_desc = system.alloc_matrix(process, m, k);
  const vm::MatrixDesc b_desc = system.alloc_matrix(process, k, n);
  const vm::MatrixDesc c_desc = system.alloc_matrix(process, m, n);
  system.write_matrix(process, a_desc, a);
  system.write_matrix(process, b_desc, b);
  system.write_matrix(process, c_desc, sa::HostMatrix(m, n));

  // MA_CFG expects its parameters in six successive registers (R10..R15).
  isa::GemmParams gemm;
  gemm.a_base = a_desc.base;
  gemm.b_base = b_desc.base;
  gemm.c_base = c_desc.base;
  gemm.m = m;
  gemm.n = n;
  gemm.k = k;

  cpu::CpuCore& cpu = system.node(0).cpu();
  cpu.regs().write_param_block(10, gemm.pack());

  std::puts("MPAIS program:");
  std::puts("    ma_cfg   x5, x10    ; dispatch GEMM, MAID -> x5");
  std::puts("    ma_state x6, x5     ; query state + release the entry\n");

  cpu.execute_source("ma_cfg x5, x10");
  system.run();  // drain the simulation: DMA, systolic array, write-back

  const auto maid = static_cast<cpu::Maid>(cpu.regs().read(5));
  const cpu::MtqEntry& entry = cpu.mtq().entry(maid);
  std::printf("MTQ[%u]: valid=%d done=%d exception=%d asid=%u\n",
              static_cast<unsigned>(maid), entry.valid, entry.done,
              entry.exception_en, static_cast<unsigned>(entry.asid));

  cpu.execute_source("ma_state x6, x5");
  std::printf("MA_STATE -> 0x%llx (valid|done), MTQ occupancy now %u\n\n",
              static_cast<unsigned long long>(cpu.regs().read(6)),
              cpu.mtq().occupied());

  // Verify against the host reference.
  sa::HostMatrix expected(m, n);
  sa::reference_gemm(a, b, expected);
  const bool ok = system.read_matrix(process, c_desc).approx_equal(expected);
  std::printf("numerics vs host reference: %s\n", ok ? "MATCH" : "MISMATCH");

  // What the MMAE did, per its completion report.
  const mmae::TaskReport& report = system.node(0).mmae().reports().front();
  const sim::TimePs span = report.end - report.start;
  const double gflops = 2.0 * static_cast<double>(report.macs) /
                        (static_cast<double>(span) * 1e-12) / 1e9;
  std::printf("MMAE: %llu MACs, %llu DMA bytes, SA busy %.3f us, "
              "task span %.3f us, %.1f GFLOPS (FP64)\n",
              static_cast<unsigned long long>(report.macs),
              static_cast<unsigned long long>(report.dma_bytes),
              static_cast<double>(report.sa_busy_ps) / 1e6,
              static_cast<double>(span) / 1e6, gflops);
  return ok ? 0 : 1;
}
