// Multi-process management and exception handling (paper Section III.C).
//
// Walks the Fig. 3 MTQ state machine on live hardware state:
//   1. process A dispatches a GEMM and the OS immediately switches the node
//      to process B — A's MTQ entry keeps recording its task,
//   2. process B dispatches its own task into a second MTQ entry,
//   3. A's completion is queried with MA_READ (non-destructive) and then
//      MA_STATE (releases the entry),
//   4. a task with an unmapped operand raises a page-fault exception that
//      is recorded in the entry and cleared with MA_CLEAR.
#include <cstdio>

#include "core/maco_system.hpp"
#include "isa/assembler.hpp"
#include "util/rng.hpp"

namespace {

maco::isa::GemmParams make_gemm(const maco::vm::MatrixDesc& a,
                                const maco::vm::MatrixDesc& b,
                                const maco::vm::MatrixDesc& c) {
  maco::isa::GemmParams params;
  params.a_base = a.base;
  params.b_base = b.base;
  params.c_base = c.base;
  params.m = static_cast<std::uint32_t>(a.rows);
  params.k = static_cast<std::uint32_t>(a.cols);
  params.n = static_cast<std::uint32_t>(b.cols);
  return params;
}

void print_entry(const char* tag, const maco::cpu::MtqEntry& entry) {
  std::printf("  %-28s valid=%d done=%d asid=%s%u exc=%s\n", tag, entry.valid,
              entry.done, entry.asid_valid ? "" : "NULL/",
              static_cast<unsigned>(entry.asid),
              maco::cpu::exception_type_name(entry.exception_type));
}

}  // namespace

int main() {
  using namespace maco;

  core::SystemConfig config = core::SystemConfig::maco_default();
  config.node_count = 1;
  core::MacoSystem system(config);
  cpu::CpuCore& cpu = system.node(0).cpu();
  util::Rng rng(7);

  core::Process& pa = system.create_process();
  core::Process& pb = system.create_process();

  const auto prepare = [&](core::Process& p) {
    const auto a = system.alloc_matrix(p, 96, 96);
    const auto b = system.alloc_matrix(p, 96, 96);
    const auto c = system.alloc_matrix(p, 96, 96);
    system.write_matrix(p, a, sa::HostMatrix::random(96, 96, rng));
    system.write_matrix(p, b, sa::HostMatrix::random(96, 96, rng));
    system.write_matrix(p, c, sa::HostMatrix(96, 96));
    return make_gemm(a, b, c);
  };

  // -- 1: process A dispatches, then the OS switches to B mid-flight. --
  std::puts("== process switch while a GEMM is in flight (Fig. 3, state 3) ==");
  const auto gemm_a = prepare(pa);
  const auto gemm_b = prepare(pb);

  system.schedule_process(0, pa);
  cpu.regs().write_param_block(10, gemm_a.pack());
  cpu.execute_source("ma_cfg x5, x10");
  const auto maid_a = static_cast<cpu::Maid>(cpu.regs().read(5));
  print_entry("A dispatched:", cpu.mtq().entry(maid_a));

  system.schedule_process(0, pb);  // context switch: MTQ/STQ are unaffected
  cpu.regs().write_param_block(10, gemm_b.pack());
  cpu.execute_source("ma_cfg x6, x10");
  const auto maid_b = static_cast<cpu::Maid>(cpu.regs().read(6));
  print_entry("B dispatched (A in flight):", cpu.mtq().entry(maid_b));

  system.run();
  print_entry("A after drain:", cpu.mtq().entry(maid_a));
  print_entry("B after drain:", cpu.mtq().entry(maid_b));

  // -- 2: query A non-destructively, then release both entries. --
  std::puts("\n== MA_READ (query) vs MA_STATE (query + release) ==");
  cpu.execute_source("ma_read x7, x5");
  std::printf("  MA_READ  -> 0x%llx, occupancy %u (entry kept)\n",
              static_cast<unsigned long long>(cpu.regs().read(7)),
              cpu.mtq().occupied());
  cpu.execute_source("ma_state x7, x5\n"
                     "ma_state x8, x6");
  std::printf("  MA_STATE -> 0x%llx, occupancy %u (entries released)\n",
              static_cast<unsigned long long>(cpu.regs().read(7)),
              cpu.mtq().occupied());

  // -- 3: a faulting task (unmapped operand) and MA_CLEAR recovery. --
  std::puts("\n== exception path: unmapped operand -> page fault -> MA_CLEAR ==");
  system.schedule_process(0, pb);
  isa::GemmParams bad = gemm_b;
  bad.a_base = 0xdead0000;  // never mapped in B's address space
  cpu.regs().write_param_block(10, bad.pack());
  cpu.execute_source("ma_cfg x5, x10");
  system.run();
  const auto maid_bad = static_cast<cpu::Maid>(cpu.regs().read(5));
  print_entry("faulting task:", cpu.mtq().entry(maid_bad));

  cpu.execute_source("ma_clear x5");
  print_entry("after MA_CLEAR:", cpu.mtq().entry(maid_bad));
  std::printf("  occupancy %u\n", cpu.mtq().occupied());
  return 0;
}
