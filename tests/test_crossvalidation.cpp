// Cross-validation of the two fidelity layers (DESIGN.md §2): the detailed
// MacoSystem (real data, line/flit/cycle granularity) and the
// SystemTimingModel (closed forms + contention) must agree on overlapping
// configurations — the benches' credibility rests on this.
#include <gtest/gtest.h>

#include "core/maco_system.hpp"
#include "core/timing_model.hpp"
#include "util/rng.hpp"

namespace maco::core {
namespace {

// Runs `size`^3 FP64 on one detailed node via MA_CFG and returns the
// MMAE-report efficiency against the node's FP64 peak.
double detailed_efficiency(std::uint64_t size) {
  SystemConfig config = SystemConfig::maco_default();
  config.node_count = 1;
  MacoSystem system(config);
  Process& process = system.create_process();
  system.schedule_process(0, process);

  util::Rng rng(size);
  const auto a_desc = system.alloc_matrix(process, size, size);
  const auto b_desc = system.alloc_matrix(process, size, size);
  const auto c_desc = system.alloc_matrix(process, size, size);
  system.write_matrix(process, a_desc, sa::HostMatrix::random(size, size, rng));
  system.write_matrix(process, b_desc, sa::HostMatrix::random(size, size, rng));
  system.write_matrix(process, c_desc, sa::HostMatrix(size, size));

  isa::GemmParams gemm;
  gemm.a_base = a_desc.base;
  gemm.b_base = b_desc.base;
  gemm.c_base = c_desc.base;
  gemm.m = gemm.n = gemm.k = static_cast<std::uint32_t>(size);

  cpu::CpuCore& cpu = system.node(0).cpu();
  cpu.regs().write_param_block(10, gemm.pack());
  cpu.execute_source("ma_cfg x5, x10");
  system.run();
  const auto& entry = cpu.mtq().entry(static_cast<cpu::Maid>(cpu.regs().read(5)));
  EXPECT_TRUE(entry.done);
  EXPECT_FALSE(entry.exception_en);

  const mmae::TaskReport& report = system.node(0).mmae().reports().front();
  return report.efficiency(
      system.node(0).mmae().peak_macs_per_second());
}

TEST(CrossValidation, DetailedAndTimingModelAgreeOnEfficiency) {
  // Sizes large enough that the detailed run's cold start (first-tile DMA,
  // first-touch walks) amortizes; the model is steady-state by design.
  const SystemTimingModel model(SystemConfig::maco_default());
  for (const std::uint64_t size : {256ull, 320ull}) {
    TimingOptions options;
    options.shape = sa::TileShape{size, size, size};
    const double model_eff = model.run(options).mean_efficiency;
    const double detail_eff = detailed_efficiency(size);
    // Same machine, two abstractions: agreement within 12 percentage
    // points (the detailed run pays cold-start effects the steady-state
    // model amortizes away).
    EXPECT_NEAR(detail_eff, model_eff, 0.12)
        << "size " << size << ": detailed " << detail_eff << " vs model "
        << model_eff;
    // Both high: a single FP64 node is compute-bound at these sizes.
    EXPECT_GT(detail_eff, 0.80);
  }
}

TEST(CrossValidation, DetailedSaBusyMatchesClosedFormCycles) {
  // The report's SA-busy time must equal the closed-form cycle count that
  // the timing model integrates — no drift between the two layers.
  SystemConfig config = SystemConfig::maco_default();
  config.node_count = 1;
  MacoSystem system(config);
  Process& process = system.create_process();
  system.schedule_process(0, process);
  util::Rng rng(3);

  const std::uint64_t size = 128;
  const auto a_desc = system.alloc_matrix(process, size, size);
  const auto b_desc = system.alloc_matrix(process, size, size);
  const auto c_desc = system.alloc_matrix(process, size, size);
  system.write_matrix(process, a_desc, sa::HostMatrix::random(size, size, rng));
  system.write_matrix(process, b_desc, sa::HostMatrix::random(size, size, rng));
  system.write_matrix(process, c_desc, sa::HostMatrix(size, size));

  isa::GemmParams gemm;
  gemm.a_base = a_desc.base;
  gemm.b_base = b_desc.base;
  gemm.c_base = c_desc.base;
  gemm.m = gemm.n = gemm.k = static_cast<std::uint32_t>(size);
  cpu::CpuCore& cpu = system.node(0).cpu();
  cpu.regs().write_param_block(10, gemm.pack());
  cpu.execute_source("ma_cfg x5, x10");
  system.run();

  const SystemTimingModel model(config);
  TimingOptions options;
  options.shape = sa::TileShape{size, size, size};
  const std::uint64_t expected_cycles =
      model.aggregate_sa_cycles(options.shape, options);

  const mmae::TaskReport& report = system.node(0).mmae().reports().front();
  const double cycles =
      static_cast<double>(report.sa_busy_ps) * config.mmae.frequency_hz /
      1e12;
  EXPECT_NEAR(cycles, static_cast<double>(expected_cycles),
              static_cast<double>(expected_cycles) * 0.01);
}

}  // namespace
}  // namespace maco::core
