// OS layer: round-robin multi-process scheduling and demand paging over
// the detailed MacoSystem.
#include <gtest/gtest.h>

#include "os/scheduler.hpp"
#include "util/rng.hpp"

namespace maco::os {
namespace {

core::SystemConfig config_with(unsigned nodes) {
  core::SystemConfig config = core::SystemConfig::maco_default();
  config.node_count = nodes;
  return config;
}

struct PreparedGemm {
  isa::GemmParams params;
  sa::HostMatrix a, b;
  vm::MatrixDesc c_desc;
};

PreparedGemm prepare_gemm(core::MacoSystem& system, core::Process& process,
                          util::Rng& rng, std::uint64_t dim,
                          bool lazy_c = false) {
  PreparedGemm prepared;
  prepared.a = sa::HostMatrix::random(dim, dim, rng);
  prepared.b = sa::HostMatrix::random(dim, dim, rng);
  const auto a_desc = system.alloc_matrix(process, dim, dim);
  const auto b_desc = system.alloc_matrix(process, dim, dim);
  prepared.c_desc = lazy_c ? system.alloc_matrix_lazy(process, dim, dim)
                           : system.alloc_matrix(process, dim, dim);
  system.write_matrix(process, a_desc, prepared.a);
  system.write_matrix(process, b_desc, prepared.b);
  if (!lazy_c) {
    system.write_matrix(process, prepared.c_desc, sa::HostMatrix(dim, dim));
  }
  prepared.params.a_base = a_desc.base;
  prepared.params.b_base = b_desc.base;
  prepared.params.c_base = prepared.c_desc.base;
  prepared.params.m = static_cast<std::uint32_t>(dim);
  prepared.params.n = static_cast<std::uint32_t>(dim);
  prepared.params.k = static_cast<std::uint32_t>(dim);
  return prepared;
}

void expect_correct(core::MacoSystem& system, core::Process& process,
                    const PreparedGemm& prepared) {
  sa::HostMatrix expected(prepared.a.rows(), prepared.b.cols());
  sa::reference_gemm(prepared.a, prepared.b, expected);
  EXPECT_TRUE(system.read_matrix(process, prepared.c_desc)
                  .approx_equal(expected, 1e-9));
}

TEST(Scheduler, ThreeJobsTwoNodesAllComplete) {
  core::MacoSystem system(config_with(2));
  util::Rng rng(61);

  Scheduler::Options options;
  options.nodes = 2;
  options.slice_tasks = 2;
  Scheduler scheduler(system, options);

  std::vector<std::vector<PreparedGemm>> prepared(3);
  std::vector<core::Process*> processes;
  for (int j = 0; j < 3; ++j) {
    core::Process& process = system.create_process();
    processes.push_back(&process);
    Job& job = scheduler.add_job(process);
    for (int t = 0; t < 4; ++t) {
      prepared[j].push_back(prepare_gemm(system, process, rng, 64));
      job.tasks.push_back(GemmTask{prepared[j].back().params});
    }
  }

  const SchedulerStats stats = scheduler.run_all();
  EXPECT_EQ(stats.tasks_completed, 12u);
  EXPECT_EQ(stats.tasks_failed, 0u);
  EXPECT_EQ(stats.faults_repaired, 0u);
  // Round-robin across 3 jobs implies more switches than jobs.
  EXPECT_GT(stats.context_switches, 3u);

  for (int j = 0; j < 3; ++j) {
    EXPECT_TRUE(scheduler.jobs()[j].finished());
    for (const auto& gemm : prepared[j]) {
      expect_correct(system, *processes[j], gemm);
    }
  }
}

TEST(Scheduler, DemandPagingRepairsLazyOutput) {
  core::MacoSystem system(config_with(1));
  util::Rng rng(67);
  core::Process& process = system.create_process();

  Scheduler::Options options;
  options.nodes = 1;
  Scheduler scheduler(system, options);
  Job& job = scheduler.add_job(process);

  const PreparedGemm prepared =
      prepare_gemm(system, process, rng, 64, /*lazy_c=*/true);
  job.tasks.push_back(GemmTask{prepared.params});

  const SchedulerStats stats = scheduler.run_all();
  EXPECT_EQ(stats.tasks_completed, 1u);
  EXPECT_EQ(stats.faults_repaired, 1u);
  // 64x64 FP64 = 32 KiB = 8 pages mapped on demand.
  EXPECT_EQ(stats.pages_mapped, 8u);
  EXPECT_EQ(job.tasks[0].dispatches, 1u);  // reset + re-dispatched once

  // calloc semantics: the demand-mapped C started as zeros, so C = A*B.
  expect_correct(system, process, prepared);
}

TEST(Scheduler, RepairedAccumulateTaskIsNumericallyCorrect) {
  // The fault strikes on the first C read — before any partial write — so
  // the retried accumulate task produces exactly one A*B contribution.
  core::MacoSystem system(config_with(1));
  util::Rng rng(71);
  core::Process& process = system.create_process();

  Scheduler scheduler(system, Scheduler::Options{});
  Job& job = scheduler.add_job(process);
  const PreparedGemm prepared =
      prepare_gemm(system, process, rng, 96, /*lazy_c=*/true);
  isa::GemmParams accumulate = prepared.params;
  accumulate.accumulate = true;
  job.tasks.push_back(GemmTask{accumulate});

  const SchedulerStats stats = scheduler.run_all();
  EXPECT_EQ(stats.tasks_completed, 1u);
  EXPECT_EQ(stats.faults_repaired, 1u);
  expect_correct(system, process, prepared);
}

TEST(Scheduler, WithoutDemandPagingFaultsFailPermanently) {
  core::MacoSystem system(config_with(1));
  util::Rng rng(73);
  core::Process& process = system.create_process();

  Scheduler::Options options;
  options.demand_paging = false;
  Scheduler scheduler(system, options);
  Job& job = scheduler.add_job(process);

  const PreparedGemm lazy =
      prepare_gemm(system, process, rng, 64, /*lazy_c=*/true);
  const PreparedGemm good = prepare_gemm(system, process, rng, 64);
  job.tasks.push_back(GemmTask{lazy.params});
  job.tasks.push_back(GemmTask{good.params});

  const SchedulerStats stats = scheduler.run_all();
  EXPECT_EQ(stats.tasks_failed, 1u);
  EXPECT_EQ(stats.tasks_completed, 1u);
  EXPECT_TRUE(job.tasks[0].failed);
  EXPECT_TRUE(job.tasks[1].done);
  expect_correct(system, process, good);
}

TEST(Scheduler, MoreTasksThanMtqEntriesBacksOffAndFinishes) {
  core::MacoSystem system(config_with(1));
  util::Rng rng(79);
  core::Process& process = system.create_process();

  Scheduler::Options options;
  options.slice_tasks = 32;  // try to dispatch far beyond the 8-entry MTQ
  Scheduler scheduler(system, options);
  Job& job = scheduler.add_job(process);

  std::vector<PreparedGemm> prepared;
  for (int t = 0; t < 12; ++t) {
    prepared.push_back(prepare_gemm(system, process, rng, 32));
    job.tasks.push_back(GemmTask{prepared.back().params});
  }
  const SchedulerStats stats = scheduler.run_all();
  EXPECT_EQ(stats.tasks_completed, 12u);
  EXPECT_GT(stats.mtq_full_backoffs, 0u);
  for (const auto& gemm : prepared) expect_correct(system, process, gemm);
}

TEST(Scheduler, JobsShareOneNodeWithInterleavedAsids) {
  // Two single-task... rather: two jobs alternating slices on one node;
  // both complete and their MTQ entries carried the right ASIDs while the
  // other process owned the CPU (Fig. 3 state 3 at OS scale).
  core::MacoSystem system(config_with(1));
  util::Rng rng(83);
  core::Process& pa = system.create_process();
  core::Process& pb = system.create_process();

  Scheduler::Options options;
  options.slice_tasks = 1;
  Scheduler scheduler(system, options);
  Job& ja = scheduler.add_job(pa);
  Job& jb = scheduler.add_job(pb);

  std::vector<PreparedGemm> pa_gemms, pb_gemms;
  for (int t = 0; t < 3; ++t) {
    pa_gemms.push_back(prepare_gemm(system, pa, rng, 48));
    ja.tasks.push_back(GemmTask{pa_gemms.back().params});
    pb_gemms.push_back(prepare_gemm(system, pb, rng, 48));
    jb.tasks.push_back(GemmTask{pb_gemms.back().params});
  }

  const SchedulerStats stats = scheduler.run_all();
  EXPECT_EQ(stats.tasks_completed, 6u);
  EXPECT_GE(stats.context_switches, 6u);
  for (const auto& gemm : pa_gemms) expect_correct(system, pa, gemm);
  for (const auto& gemm : pb_gemms) expect_correct(system, pb, gemm);
}

TEST(DemandPagerUnit, MapRangeCountsNewPagesOnly) {
  core::MacoSystem system(config_with(1));
  core::Process& process = system.create_process();
  DemandPager pager(system);

  const auto lazy = system.alloc_matrix_lazy(process, 64, 64);  // 8 pages
  EXPECT_EQ(pager.map_range(process, lazy.base, 64 * 64 * 8), 8u);
  // Second pass: everything already mapped.
  EXPECT_EQ(pager.map_range(process, lazy.base, 64 * 64 * 8), 0u);
  // Partial overlap: only the tail pages are new.
  const auto lazy2 = system.alloc_matrix_lazy(process, 64, 64);
  EXPECT_EQ(pager.map_range(process, lazy2.base, 2 * vm::kPageSize), 2u);
  EXPECT_EQ(pager.map_range(process, lazy2.base, 4 * vm::kPageSize), 2u);
}

}  // namespace
}  // namespace maco::os
