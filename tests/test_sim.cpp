#include <gtest/gtest.h>

#include <vector>

#include "sim/clock.hpp"
#include "sim/component.hpp"
#include "sim/engine.hpp"

namespace maco::sim {
namespace {

TEST(Engine, ExecutesInTimeOrder) {
  SimEngine engine;
  std::vector<int> order;
  engine.schedule_at(300, [&] { order.push_back(3); });
  engine.schedule_at(100, [&] { order.push_back(1); });
  engine.schedule_at(200, [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.now(), 300u);
}

TEST(Engine, SameTimeFifoBySchedulingOrder) {
  SimEngine engine;
  std::vector<int> order;
  engine.schedule_at(100, [&] { order.push_back(1); });
  engine.schedule_at(100, [&] { order.push_back(2); });
  engine.schedule_at(100, [&] { order.push_back(3); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, NestedScheduling) {
  SimEngine engine;
  int fired = 0;
  engine.schedule_at(10, [&] {
    engine.schedule_after(5, [&] { ++fired; });
  });
  engine.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(engine.now(), 15u);
}

TEST(Engine, RunUntilLeavesLaterEvents) {
  SimEngine engine;
  int fired = 0;
  engine.schedule_at(10, [&] { ++fired; });
  engine.schedule_at(100, [&] { ++fired; });
  engine.run_until(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(engine.pending_events(), 1u);
  EXPECT_EQ(engine.now(), 50u);
  engine.run();
  EXPECT_EQ(fired, 2);
}

TEST(Engine, EventCountTracked) {
  SimEngine engine;
  for (int i = 0; i < 10; ++i) engine.schedule_at(i, [] {});
  engine.run();
  EXPECT_EQ(engine.events_executed(), 10u);
}

TEST(Clock, PaperFrequencies) {
  EXPECT_EQ(make_cpu_clock().period_ps(), 455u);   // 2.2 GHz rounded
  EXPECT_EQ(make_mmae_clock().period_ps(), 400u);  // 2.5 GHz exact
  EXPECT_EQ(make_noc_clock().period_ps(), 500u);   // 2.0 GHz exact
}

TEST(Clock, CycleConversions) {
  const ClockDomain mmae = make_mmae_clock();
  EXPECT_EQ(mmae.cycles_to_ps(1000), 400'000u);
  EXPECT_EQ(mmae.ps_to_cycles(400'000), 1000u);
  EXPECT_EQ(mmae.ps_to_cycles(401), 2u);  // partial cycles round up
  EXPECT_EQ(mmae.next_edge_at_or_after(401), 800u);
  EXPECT_EQ(mmae.next_edge_at_or_after(400), 400u);
}

TEST(Component, HierarchicalNamesAndStats) {
  SimEngine engine;
  Component parent(engine, "node0");
  Component child(parent, "mmae");
  EXPECT_EQ(child.name(), "node0.mmae");
  child.counter("ops").inc(5);
  EXPECT_EQ(engine.stats().counter("node0.mmae.ops").value(), 5u);
}

}  // namespace
}  // namespace maco::sim

namespace maco::sim {
namespace {

TEST(SimEngineMore, SameTimeEventsFireInSchedulingOrder) {
  SimEngine engine;
  std::vector<int> order;
  engine.schedule_at(100, [&] { order.push_back(1); });
  engine.schedule_at(100, [&] { order.push_back(2); });
  engine.schedule_at(50, [&] { order.push_back(0); });
  engine.schedule_at(100, [&] { order.push_back(3); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(SimEngineMore, EventsScheduledByEventsRun) {
  SimEngine engine;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) engine.schedule_after(10, chain);
  };
  engine.schedule_at(0, chain);
  const TimePs end = engine.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(end, 40u);
  EXPECT_EQ(engine.events_executed(), 5u);
}

TEST(SimEngineMore, RunUntilLeavesLaterEventsQueued) {
  SimEngine engine;
  int fired = 0;
  engine.schedule_at(10, [&] { ++fired; });
  engine.schedule_at(20, [&] { ++fired; });
  engine.schedule_at(30, [&] { ++fired; });
  engine.run_until(20);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(engine.pending_events(), 1u);
  engine.run();
  EXPECT_EQ(fired, 3);
  EXPECT_TRUE(engine.idle());
}

TEST(ClockDomainMore, PaperFrequenciesRoundToDocumentedPeriods) {
  EXPECT_EQ(make_cpu_clock().period_ps(), 455u);   // 2.2 GHz (+0.1%)
  EXPECT_EQ(make_mmae_clock().period_ps(), 400u);  // 2.5 GHz exact
  EXPECT_EQ(make_noc_clock().period_ps(), 500u);   // 2.0 GHz exact
}

TEST(ClockDomainMore, CycleConversionsRoundTrip) {
  const ClockDomain clock = make_mmae_clock();
  for (const Cycles c : {1ull, 7ull, 1000ull, 123456ull}) {
    EXPECT_EQ(clock.ps_to_cycles(clock.cycles_to_ps(c)), c);
  }
}

TEST(ClockDomainMore, NextEdgeAligns) {
  const ClockDomain clock = make_noc_clock();  // 500 ps
  EXPECT_EQ(clock.next_edge_at_or_after(0), 0u);
  EXPECT_EQ(clock.next_edge_at_or_after(1), 500u);
  EXPECT_EQ(clock.next_edge_at_or_after(500), 500u);
  EXPECT_EQ(clock.next_edge_at_or_after(501), 1000u);
}

}  // namespace
}  // namespace maco::sim
