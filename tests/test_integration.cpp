// Whole-system integration: MPAIS programs on MacoSystem nodes, end-to-end
// through MTQ/STQ, DMA over the CCM/L3/DRAM path, the systolic array, and
// back to memory — plus multi-process and multi-node scenarios.
#include <gtest/gtest.h>

#include "core/gemm_mapper.hpp"
#include "core/maco_system.hpp"
#include "util/rng.hpp"

namespace maco::core {
namespace {

SystemConfig small_config(unsigned nodes = 4) {
  SystemConfig config = SystemConfig::maco_default();
  config.node_count = nodes;
  return config;
}

isa::GemmParams make_gemm(const vm::MatrixDesc& a, const vm::MatrixDesc& b,
                          const vm::MatrixDesc& c) {
  isa::GemmParams params;
  params.a_base = a.base;
  params.b_base = b.base;
  params.c_base = c.base;
  params.m = static_cast<std::uint32_t>(a.rows);
  params.k = static_cast<std::uint32_t>(a.cols);
  params.n = static_cast<std::uint32_t>(b.cols);
  return params;
}

TEST(Integration, SingleNodeGemmViaMpais) {
  MacoSystem system(small_config(1));
  Process& process = system.create_process();
  system.schedule_process(0, process);

  util::Rng rng(101);
  const std::uint64_t dim = 96;
  const auto a_desc = system.alloc_matrix(process, dim, dim);
  const auto b_desc = system.alloc_matrix(process, dim, dim);
  const auto c_desc = system.alloc_matrix(process, dim, dim);
  const auto a = sa::HostMatrix::random(dim, dim, rng);
  const auto b = sa::HostMatrix::random(dim, dim, rng);
  system.write_matrix(process, a_desc, a);
  system.write_matrix(process, b_desc, b);
  system.write_matrix(process, c_desc, sa::HostMatrix(dim, dim));

  cpu::CpuCore& cpu = system.node(0).cpu();
  cpu.regs().write_param_block(10, make_gemm(a_desc, b_desc, c_desc).pack());
  cpu.execute_source("ma_cfg x5, x10");
  system.run();

  const auto maid = static_cast<cpu::Maid>(cpu.regs().read(5));
  EXPECT_TRUE(cpu.mtq().entry(maid).done);
  EXPECT_FALSE(cpu.mtq().entry(maid).exception_en);

  sa::HostMatrix expected(dim, dim);
  sa::reference_gemm(a, b, expected);
  EXPECT_TRUE(system.read_matrix(process, c_desc).approx_equal(expected, 1e-9));

  // The L3/CCM path really served the traffic.
  const auto& report = system.node(0).mmae().reports().front();
  EXPECT_GT(report.dma_bytes, 3 * dim * dim * 8);
}

TEST(Integration, MaStateReleasesViaProgram) {
  MacoSystem system(small_config(1));
  Process& process = system.create_process();
  system.schedule_process(0, process);

  util::Rng rng(7);
  const auto a_desc = system.alloc_matrix(process, 64, 64);
  const auto b_desc = system.alloc_matrix(process, 64, 64);
  const auto c_desc = system.alloc_matrix(process, 64, 64);
  system.write_matrix(process, a_desc, sa::HostMatrix::random(64, 64, rng));
  system.write_matrix(process, b_desc, sa::HostMatrix::random(64, 64, rng));
  system.write_matrix(process, c_desc, sa::HostMatrix(64, 64));

  cpu::CpuCore& cpu = system.node(0).cpu();
  cpu.regs().write_param_block(10, make_gemm(a_desc, b_desc, c_desc).pack());
  cpu.execute_source("ma_cfg x5, x10");
  system.run();
  cpu.execute_source("ma_state x6, x5");
  const std::uint64_t state = cpu.regs().read(6);
  EXPECT_EQ(state & 0b11, 0b11u);  // valid | done
  EXPECT_EQ(cpu.mtq().occupied(), 0u);
}

TEST(Integration, TwoProcessesShareNodeMtq) {
  // Process switch mid-flight (Fig. 3 state 3): process A dispatches, the
  // OS switches to process B, B dispatches its own task, and A's completion
  // is still recorded in its MTQ entry.
  MacoSystem system(small_config(1));
  Process& pa = system.create_process();
  Process& pb = system.create_process();

  util::Rng rng(31);
  const auto prepare = [&](Process& p) {
    const auto a = system.alloc_matrix(p, 64, 64);
    const auto b = system.alloc_matrix(p, 64, 64);
    const auto c = system.alloc_matrix(p, 64, 64);
    system.write_matrix(p, a, sa::HostMatrix::random(64, 64, rng));
    system.write_matrix(p, b, sa::HostMatrix::random(64, 64, rng));
    system.write_matrix(p, c, sa::HostMatrix(64, 64));
    return make_gemm(a, b, c);
  };
  const auto gemm_a = prepare(pa);
  const auto gemm_b = prepare(pb);

  cpu::CpuCore& cpu = system.node(0).cpu();
  system.schedule_process(0, pa);
  cpu.regs().write_param_block(10, gemm_a.pack());
  cpu.execute_source("ma_cfg x5, x10");
  const auto maid_a = static_cast<cpu::Maid>(cpu.regs().read(5));

  // Context switch before the task completes.
  system.schedule_process(0, pb);
  cpu.regs().write_param_block(10, gemm_b.pack());
  cpu.execute_source("ma_cfg x6, x10");
  const auto maid_b = static_cast<cpu::Maid>(cpu.regs().read(6));
  EXPECT_NE(maid_a, maid_b);

  system.run();

  // Both entries report done with their own ASIDs.
  EXPECT_TRUE(cpu.mtq().entry(maid_a).done);
  EXPECT_TRUE(cpu.mtq().entry(maid_b).done);
  EXPECT_EQ(cpu.mtq().entry(maid_a).asid, pa.asid);
  EXPECT_EQ(cpu.mtq().entry(maid_b).asid, pb.asid);
}

TEST(Integration, MultiNodeMappedGemm) {
  // Fig. 5 mapping, MPAIS-dense variant: split C into row stripes (dense
  // sub-matrices of A and C) so each node's MMAE computes its stripe with
  // the shared B; the assembled result matches the reference.
  MacoSystem system(small_config(4));
  Process& process = system.create_process();

  util::Rng rng(53);
  const std::uint64_t m = 128, n = 128, k = 96;
  const auto a_desc = system.alloc_matrix(process, m, k);
  const auto b_desc = system.alloc_matrix(process, k, n);
  const auto c_desc = system.alloc_matrix(process, m, n);
  const auto a = sa::HostMatrix::random(m, k, rng);
  const auto b = sa::HostMatrix::random(k, n, rng);
  system.write_matrix(process, a_desc, a);
  system.write_matrix(process, b_desc, b);
  system.write_matrix(process, c_desc, sa::HostMatrix(m, n));

  const std::uint64_t stripe = m / 4;
  for (unsigned node = 0; node < 4; ++node) {
    system.schedule_process(node, process);
    cpu::CpuCore& cpu = system.node(node).cpu();
    isa::GemmParams params;
    params.a_base = a_desc.element_addr(node * stripe, 0);
    params.b_base = b_desc.base;
    params.c_base = c_desc.element_addr(node * stripe, 0);
    params.m = static_cast<std::uint32_t>(stripe);
    params.n = static_cast<std::uint32_t>(n);
    params.k = static_cast<std::uint32_t>(k);
    cpu.regs().write_param_block(10, params.pack());
    cpu.execute_source("ma_cfg x5, x10");
  }
  system.run();

  for (unsigned node = 0; node < 4; ++node) {
    const auto maid =
        static_cast<cpu::Maid>(system.node(node).cpu().regs().read(5));
    EXPECT_TRUE(system.node(node).cpu().mtq().entry(maid).done);
    EXPECT_FALSE(system.node(node).cpu().mtq().entry(maid).exception_en);
  }

  sa::HostMatrix expected(m, n);
  sa::reference_gemm(a, b, expected);
  EXPECT_TRUE(system.read_matrix(process, c_desc).approx_equal(expected, 1e-9));
}

TEST(Integration, WalkOracleWarmsL3ForPageTables) {
  // First walk of a page table chain misses to DRAM; later walks of nearby
  // pages hit the L3 slice, shrinking latency.
  MacoSystem system(small_config(1));
  Process& process = system.create_process();
  system.schedule_process(0, process);
  const auto desc = system.alloc_matrix(process, 64, 512);

  cpu::Mmu& mmu = system.node(0).cpu().mmu();
  const auto first = mmu.translate_for_accelerator(
      process.asid, process.space->page_table(), desc.base);
  ASSERT_TRUE(first.valid);
  const auto second = mmu.translate_for_accelerator(
      process.asid, process.space->page_table(),
      desc.base + vm::kPageSize);  // neighboring page, different VPN
  ASSERT_TRUE(second.valid);
  EXPECT_LT(second.latency, first.latency);
}

}  // namespace
}  // namespace maco::core

namespace maco::core {
namespace {

TEST(Integration, Fp32PrecisionSameResultFasterArray) {
  // The SIMD compute modes (Fig. 2(c)): FP32 mode doubles MACs/cycle.
  // Functional values are FP64-backed (DESIGN.md); timing reflects the mode.
  sim::TimePs busy[2];
  for (int mode = 0; mode < 2; ++mode) {
    MacoSystem system(small_config(1));
    Process& process = system.create_process();
    system.schedule_process(0, process);
    util::Rng rng(11);
    const std::uint64_t dim = 128;
    const auto a_desc = system.alloc_matrix(process, dim, dim);
    const auto b_desc = system.alloc_matrix(process, dim, dim);
    const auto c_desc = system.alloc_matrix(process, dim, dim);
    const auto a = sa::HostMatrix::random(dim, dim, rng);
    const auto b = sa::HostMatrix::random(dim, dim, rng);
    system.write_matrix(process, a_desc, a);
    system.write_matrix(process, b_desc, b);
    system.write_matrix(process, c_desc, sa::HostMatrix(dim, dim));

    isa::GemmParams gemm = make_gemm(a_desc, b_desc, c_desc);
    gemm.precision = mode ? sa::Precision::kFp32 : sa::Precision::kFp64;
    cpu::CpuCore& cpu = system.node(0).cpu();
    cpu.regs().write_param_block(10, gemm.pack());
    cpu.execute_source("ma_cfg x5, x10");
    system.run();

    const auto& entry =
        cpu.mtq().entry(static_cast<cpu::Maid>(cpu.regs().read(5)));
    ASSERT_TRUE(entry.done);
    ASSERT_FALSE(entry.exception_en);
    sa::HostMatrix expected(dim, dim);
    sa::reference_gemm(a, b, expected);
    EXPECT_TRUE(
        system.read_matrix(process, c_desc).approx_equal(expected, 1e-9));
    busy[mode] = system.node(0).mmae().reports().front().sa_busy_ps;
  }
  // 2-way FP32 halves the array time.
  EXPECT_LT(busy[1], busy[0]);
  EXPECT_NEAR(static_cast<double>(busy[0]) / static_cast<double>(busy[1]),
              2.0, 0.2);
}

}  // namespace
}  // namespace maco::core
