// Event-driven vs lock-step equivalence suite.
//
// The event-driven scheduler (quiescence fast-forward, pooled flits, the
// closed-form SA functional path) is a pure performance transformation:
// every observable — C matrices bit for bit, makespans to the picosecond,
// mesh delivery statistics — must match the lock-step reference exactly.
// These tests pin that contract; docs/PERF.md points here as the reason
// the perf gate's speedup ratio is trustworthy.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/detailed_runner.hpp"
#include "core/timing_model.hpp"
#include "noc/mesh.hpp"
#include "sa/systolic_array.hpp"
#include "sim/clocked_source.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace maco {
namespace {

// ---------------- systolic array: exact vs fast ----------------

// Both functional paths must produce bit-identical C for any shape,
// including ones that do not divide the 4x4 array (padded k positions add
// an explicit +0.0, which flushes -0.0 — the fast path must reproduce
// even that).
void expect_sa_paths_bit_identical(std::uint64_t m, std::uint64_t n,
                                   std::uint64_t k) {
  util::Rng rng(42);
  const auto a = sa::HostMatrix::random(m, k, rng);
  const auto b = sa::HostMatrix::random(k, n, rng);
  const auto c0 = sa::HostMatrix::random(m, n, rng);  // nonzero initial C

  sa::SaConfig config;
  config.exact_pe_sim = true;
  sa::SystolicArray exact(config);
  config.exact_pe_sim = false;
  sa::SystolicArray fast(config);

  sa::HostMatrix c_exact = c0;
  sa::HostMatrix c_fast = c0;
  const auto r_exact = exact.run(a, b, c_exact);
  const auto r_fast = fast.run(a, b, c_fast);

  EXPECT_EQ(r_exact.cycles, r_fast.cycles);
  EXPECT_EQ(r_exact.passes, r_fast.passes);
  for (std::uint64_t i = 0; i < m; ++i) {
    for (std::uint64_t j = 0; j < n; ++j) {
      const double ve = c_exact.at(i, j);
      const double vf = c_fast.at(i, j);
      // Bitwise comparison: catches a -0.0/+0.0 or FMA-contraction split
      // that a value comparison would wave through.
      EXPECT_EQ(std::memcmp(&ve, &vf, sizeof ve), 0)
          << "C(" << i << "," << j << ") " << ve << " vs " << vf << " at "
          << m << "x" << n << "x" << k;
    }
  }
}

TEST(SaEquivalence, SingleElement) {
  expect_sa_paths_bit_identical(1, 1, 1);
}

TEST(SaEquivalence, RaggedShape) {
  expect_sa_paths_bit_identical(5, 7, 9);
}

TEST(SaEquivalence, NonDividingBlocks) {
  expect_sa_paths_bit_identical(33, 17, 65);
}

TEST(SaEquivalence, ArrayAlignedShape) {
  expect_sa_paths_bit_identical(64, 64, 64);
}

// ---------------- detailed machine: event vs lockstep ----------------

core::SystemTiming run_mode(core::SystemConfig config, core::ExecMode mode,
                            std::uint64_t size, unsigned nodes) {
  config.exec = mode;
  core::TimingOptions options;
  options.shape = sa::TileShape{size, size, size};
  options.precision = sa::Precision::kFp64;
  options.active_nodes = nodes;
  return core::run_detailed_gemm(config, options);
}

TEST(DetailedEquivalence, GemmMakespanMatchesDefaultBackends) {
  const core::SystemConfig config = core::SystemConfig::maco_default();
  const auto event =
      run_mode(config, core::ExecMode::kEventDriven, 96, 2);
  const auto lockstep = run_mode(config, core::ExecMode::kLockstep, 96, 2);
  ASSERT_GT(event.makespan_ps, 0u);
  EXPECT_EQ(event.makespan_ps, lockstep.makespan_ps);
  EXPECT_DOUBLE_EQ(event.mean_efficiency, lockstep.mean_efficiency);
}

TEST(DetailedEquivalence, GemmMakespanMatchesDetailedBackends) {
  // The high-fidelity backends (banked DRAM + flit interconnect) ride the
  // same engine; the mode switch must not perturb them either.
  core::SystemConfig config = core::SystemConfig::maco_default();
  config.dram.kind = mem::DramKind::kQueued;
  config.icnt = noc::IcntKind::kFlit;
  const auto event =
      run_mode(config, core::ExecMode::kEventDriven, 96, 2);
  const auto lockstep = run_mode(config, core::ExecMode::kLockstep, 96, 2);
  ASSERT_GT(event.makespan_ps, 0u);
  EXPECT_EQ(event.makespan_ps, lockstep.makespan_ps);
}

// ---------------- mesh: clocked drive vs legacy pump ----------------

struct MeshRun {
  std::uint64_t delivered = 0;
  std::uint64_t flit_hops = 0;
  double mean_latency_ps = 0.0;
  std::uint64_t max_latency_ps = 0;
  sim::TimePs end_time = 0;
};

// Drives a contended pattern (every node sends to its opposite corner,
// mixed packet sizes, staggered injection) and returns the observable
// statistics.
MeshRun drive_mesh(bool event_driven) {
  sim::SimEngine engine;
  noc::MeshConfig config;
  config.event_driven = event_driven;
  noc::MeshNetwork mesh(engine, config);
  const unsigned nodes = mesh.node_count();
  for (unsigned n = 0; n < nodes; ++n) {
    mesh.register_endpoint(static_cast<noc::NodeId>(n),
                           [](const noc::Packet&) {});
  }
  for (unsigned wave = 0; wave < 4; ++wave) {
    engine.schedule_at(wave * 3000, [&mesh, nodes, wave] {
      for (unsigned n = 0; n < nodes; ++n) {
        noc::Packet pkt;
        pkt.src = static_cast<noc::NodeId>(n);
        pkt.dst = static_cast<noc::NodeId>(nodes - 1 - n);
        if (pkt.src == pkt.dst) continue;
        pkt.payload_bytes = 16 + 48 * ((n + wave) % 4);
        mesh.inject(pkt);
      }
    });
  }
  MeshRun run;
  run.end_time = engine.run();
  run.delivered = mesh.packets_delivered();
  run.flit_hops = mesh.flits_transferred();
  run.mean_latency_ps = mesh.mean_packet_latency_ps();
  run.max_latency_ps = mesh.max_packet_latency_ps();
  return run;
}

TEST(MeshEquivalence, ClockedDriveMatchesLegacyPump) {
  const MeshRun event = drive_mesh(/*event_driven=*/true);
  const MeshRun lockstep = drive_mesh(/*event_driven=*/false);
  ASSERT_GT(event.delivered, 0u);
  EXPECT_EQ(event.delivered, lockstep.delivered);
  EXPECT_EQ(event.flit_hops, lockstep.flit_hops);
  EXPECT_DOUBLE_EQ(event.mean_latency_ps, lockstep.mean_latency_ps);
  EXPECT_EQ(event.max_latency_ps, lockstep.max_latency_ps);
  EXPECT_EQ(event.end_time, lockstep.end_time);
}

// ---------------- engine: fast-forward correctness ----------------

// Minimal clocked source: busy for a fixed number of edges on a period,
// recording when each edge fires.
class StubClock : public sim::ClockedSource {
 public:
  StubClock(sim::SimEngine& engine, sim::TimePs period, unsigned edges)
      : engine_(engine), period_(period), remaining_(edges) {
    next_ = period_;
  }

  sim::TimePs next_due() const override {
    return remaining_ ? next_ : sim::kNoPendingEvent;
  }
  void advance() override {
    fired.push_back(engine_.now());
    if (--remaining_) next_ = engine_.now() + period_;
  }

  std::vector<sim::TimePs> fired;

 private:
  sim::SimEngine& engine_;
  sim::TimePs period_;
  sim::TimePs next_ = 0;
  unsigned remaining_ = 0;
};

TEST(EngineFastForward, JumpsToQueuedEventWhenClocksQuiescent) {
  // A quiescent clock must not stall — and must not be consulted —
  // while the engine jumps straight to a far-future event (the
  // DRAM-completion regression: a bank event scheduled megacycles out
  // must still fire even though every clock reports kNoPendingEvent).
  sim::SimEngine engine;
  StubClock clock(engine, 100, 0);  // born quiescent
  engine.register_clock(&clock);
  bool fired = false;
  engine.schedule_at(50'000'000, [&] { fired = true; });
  EXPECT_EQ(engine.run(), 50'000'000u);
  EXPECT_TRUE(fired);
  EXPECT_TRUE(clock.fired.empty());
  engine.unregister_clock(&clock);
}

TEST(EngineFastForward, NeverSkipsPendingEventUnderEdges) {
  // Edges at 100,200,...; an event lands between edges and one exactly on
  // an edge. Every firing must happen, in time order, with the same-time
  // edge executing first (documented tie-break).
  sim::SimEngine engine;
  StubClock clock(engine, 100, 5);
  engine.register_clock(&clock);
  std::vector<std::pair<sim::TimePs, char>> order;
  engine.schedule_at(150, [&] { order.push_back({engine.now(), 'e'}); });
  engine.schedule_at(300, [&] { order.push_back({engine.now(), 'e'}); });
  engine.run();
  ASSERT_EQ(clock.fired.size(), 5u);
  EXPECT_EQ(clock.fired,
            (std::vector<sim::TimePs>{100, 200, 300, 400, 500}));
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], (std::pair<sim::TimePs, char>{150, 'e'}));
  // The 300 ps event fired at 300 ps — after the 300 ps edge, which the
  // clock's record already shows, but never earlier and never dropped.
  EXPECT_EQ(order[1], (std::pair<sim::TimePs, char>{300, 'e'}));
  EXPECT_EQ(engine.clock_edges_executed(), 5u);
  engine.unregister_clock(&clock);
}

TEST(EngineFastForward, RunUntilHonoursDeadlineAcrossEdges) {
  sim::SimEngine engine;
  StubClock clock(engine, 100, 10);
  engine.register_clock(&clock);
  bool late_fired = false;
  engine.schedule_at(450, [&] { late_fired = true; });
  // Deadline exactly on an edge: that edge fires, nothing later does.
  engine.run_until(300);
  EXPECT_EQ(engine.now(), 300u);
  EXPECT_EQ(clock.fired.size(), 3u);
  EXPECT_FALSE(late_fired);
  // Resume past the pending event; the remaining edges and event fire.
  engine.run_until(600);
  EXPECT_EQ(engine.now(), 600u);
  EXPECT_EQ(clock.fired.size(), 6u);
  EXPECT_TRUE(late_fired);
  engine.unregister_clock(&clock);
}

TEST(EngineFastForward, MultiRateDomainsInterleave) {
  sim::SimEngine engine;
  StubClock fast(engine, 100, 6);
  StubClock slow(engine, 250, 2);
  engine.register_clock(&fast);
  engine.register_clock(&slow);
  engine.run();
  EXPECT_EQ(fast.fired,
            (std::vector<sim::TimePs>{100, 200, 300, 400, 500, 600}));
  EXPECT_EQ(slow.fired, (std::vector<sim::TimePs>{250, 500}));
  engine.unregister_clock(&fast);
  engine.unregister_clock(&slow);
}

}  // namespace
}  // namespace maco
