// The observability layer: zero-overhead profiling, counter collection,
// trace emission and the `macosim trace` renderer.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/config.hpp"
#include "driver/scenario_registry.hpp"
#include "driver/sweep_runner.hpp"
#include "driver/trace_cmd.hpp"
#include "exp/backend.hpp"
#include "obs/collector.hpp"
#include "obs/host_profile.hpp"
#include "obs/observation.hpp"
#include "obs/trace_writer.hpp"
#include "util/json.hpp"

namespace maco::obs {
namespace {

namespace fs = std::filesystem;

std::string temp_dir(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  fs::remove_all(path);
  return path;
}

core::TimingOptions small_gemm(unsigned nodes) {
  core::TimingOptions options;
  options.shape = {128, 128, 128};
  options.active_nodes = nodes;
  return options;
}

// ---- zero overhead: observing a run never changes its timing ----

TEST(ObsZeroOverhead, ObservedGemmMakespanIsBitIdentical) {
  const core::SystemConfig config = core::SystemConfig::maco_default();
  const auto plain =
      exp::make_backend(exp::Fidelity::kDetailed, config)
          ->run(small_gemm(2));

  RunObservation observation;
  observation.want_counters = true;
  observation.want_trace = true;
  const auto observed =
      exp::make_backend(exp::Fidelity::kDetailed, config)
          ->run(small_gemm(2), &observation);

  EXPECT_EQ(plain.makespan_ps, observed.makespan_ps);
  EXPECT_EQ(plain.total_gflops, observed.total_gflops);
  EXPECT_FALSE(observation.counters.empty());
  EXPECT_FALSE(observation.spans.empty());
}

TEST(ObsZeroOverhead, SameSeedCounterDumpsAreBitIdentical) {
  const core::SystemConfig config = core::SystemConfig::maco_default();
  RunObservation first;
  first.want_counters = true;
  exp::make_backend(exp::Fidelity::kDetailed, config)
      ->run(small_gemm(2), &first);
  RunObservation second;
  second.want_counters = true;
  exp::make_backend(exp::Fidelity::kDetailed, config)
      ->run(small_gemm(2), &second);
  EXPECT_EQ(first.counters, second.counters);
}

// ---- collector: dotted names and derived metrics ----

TEST(ObsCollector, PublishesDottedCounterNames) {
  // Link recording switches on at machine construction, from the config's
  // profile mode (the `profile` hardware knob on the driver path).
  core::SystemConfig config = core::SystemConfig::maco_default();
  config.profile = core::ProfileMode::kCounters;
  RunObservation observation;
  observation.want_counters = true;
  exp::make_backend(exp::Fidelity::kDetailed, config)
      ->run(small_gemm(2), &observation);
  // One entry per instrumented component, under hierarchical names.
  EXPECT_GT(observation.counters.count("node0.mmae.matlb.hits"), 0u);
  EXPECT_GT(observation.counters.count("node0.vm.stlb.hits"), 0u);
  EXPECT_GT(observation.counters.count("node0.vm.walker.walks"), 0u);
  EXPECT_GT(observation.counters.count("ccm0.l3.hits"), 0u);
  EXPECT_GT(observation.counters.count("dram0.bytes"), 0u);
  EXPECT_GT(observation.counters.count("engine.events"), 0u);
  EXPECT_TRUE(observation.noc.present());
}

TEST(ObsCollector, SumCountersMatchesPrefixAndSuffix) {
  std::map<std::string, std::uint64_t> counters{
      {"node0.vm.stlb.hits", 3},
      {"node1.vm.stlb.hits", 4},
      {"node0.vm.stlb.misses", 5},
      {"ccm0.l3.hits", 100},
  };
  EXPECT_EQ(sum_counters(counters, "node", ".vm.stlb.hits"), 7u);
  EXPECT_EQ(sum_counters(counters, "node", ".vm.stlb.misses"), 5u);
  EXPECT_EQ(sum_counters(counters, "ccm", ".l3.hits"), 100u);
  EXPECT_EQ(sum_counters(counters, "dram", ".bytes"), 0u);
}

TEST(ObsCollector, HitRateMetricsOnlyForComponentsWithTraffic) {
  RunObservation observation;
  observation.counters["ccm0.l3.hits"] = 3;
  observation.counters["ccm0.l3.misses"] = 1;
  // The CPU L1d never saw traffic: no l1d_hit_rate row.
  observation.counters["node0.cpu.l1d.hits"] = 0;
  observation.counters["node0.cpu.l1d.misses"] = 0;
  exp::ScenarioResult result;
  add_counter_metrics(result, observation);
  const exp::Metric* l3 = result.find("l3_hit_rate");
  ASSERT_NE(l3, nullptr);
  EXPECT_DOUBLE_EQ(l3->value, 0.75);
  EXPECT_EQ(result.find("l1d_hit_rate"), nullptr);
}

TEST(ObsCollector, NocLinkUtilizationPercentiles) {
  RunObservation observation;
  observation.noc.width = 2;
  observation.noc.height = 1;
  observation.noc.window_ps = 1000;
  observation.noc.links.resize(2 * kLinksPerNode);
  observation.noc.links[0] = LinkTrafficRec{10, 500};  // 0.5 util
  observation.noc.links[1] = LinkTrafficRec{10, 100};  // 0.1 util
  exp::ScenarioResult result;
  add_counter_metrics(result, observation);
  const exp::Metric* max_util = result.find("noc_max_link_util");
  ASSERT_NE(max_util, nullptr);
  EXPECT_DOUBLE_EQ(max_util->value, 0.5);
  ASSERT_NE(result.find("noc_p95_link_util"), nullptr);
}

// ---- observation merging ----

TEST(ObsObservation, MergeSumsCountersAndOffsetsSpans) {
  RunObservation base;
  base.counters["dram0.bytes"] = 10;
  base.spans.push_back(SpanRec{"os", "job0", 0, 100});
  base.noc.width = 1;
  base.noc.height = 1;
  base.noc.window_ps = 100;
  base.noc.links.resize(kLinksPerNode);
  base.noc.links[0] = LinkTrafficRec{2, 50};

  RunObservation layer;
  layer.counters["dram0.bytes"] = 5;
  layer.counters["ccm0.l3.hits"] = 7;
  layer.spans.push_back(SpanRec{"node0.mmae", "ma_mma", 10, 20});
  layer.noc.width = 1;
  layer.noc.height = 1;
  layer.noc.window_ps = 40;
  layer.noc.links.resize(kLinksPerNode);
  layer.noc.links[0] = LinkTrafficRec{3, 25};

  base.merge(layer, 1000);
  EXPECT_EQ(base.counters["dram0.bytes"], 15u);
  EXPECT_EQ(base.counters["ccm0.l3.hits"], 7u);
  ASSERT_EQ(base.spans.size(), 2u);
  EXPECT_EQ(base.spans[1].start, 1010u);
  EXPECT_EQ(base.spans[1].end, 1020u);
  EXPECT_EQ(base.noc.links[0].flits, 5u);
  EXPECT_EQ(base.noc.links[0].busy_ps, 75u);
  EXPECT_EQ(base.noc.window_ps, 140u);
}

// ---- trace writer ----

TEST(ObsTraceWriter, EmitsValidJsonWithEscapedStrings) {
  RunObservation observation;
  observation.spans.push_back(
      SpanRec{"node0.mmae", "fault: \"bad\" \\ page\nretry", 1'000'000,
              3'000'000});
  const std::string json = to_perfetto_json(observation);
  const util::JsonValue doc = util::parse_json(json);  // throws on bad JSON
  const util::JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->as_array().size(), 1u);
  const util::JsonValue& event = events->as_array()[0];
  EXPECT_EQ(event.find("name")->as_string(),
            "fault: \"bad\" \\ page\nretry");
  EXPECT_EQ(event.find("ph")->as_string(), "X");
  EXPECT_DOUBLE_EQ(event.find("ts")->as_number(), 1.0);
  EXPECT_DOUBLE_EQ(event.find("dur")->as_number(), 2.0);
}

TEST(ObsTraceWriter, EmitsNocSidecarSkippingIdleLinks) {
  RunObservation observation;
  observation.spans.push_back(SpanRec{"t", "s", 0, 10});
  observation.noc.width = 2;
  observation.noc.height = 1;
  observation.noc.window_ps = 1000;
  observation.noc.links.resize(2 * kLinksPerNode);
  observation.noc.links[0] = LinkTrafficRec{4, 200};   // node0 eject
  observation.noc.links[8] = LinkTrafficRec{6, 300};   // node1 east
  const util::JsonValue doc =
      util::parse_json(to_perfetto_json(observation));
  const util::JsonValue* noc = doc.find("maco")->find("noc");
  ASSERT_NE(noc, nullptr);
  EXPECT_EQ(noc->find("width")->as_number(), 2.0);
  const auto& links = noc->find("links")->as_array();
  ASSERT_EQ(links.size(), 2u);  // idle links are omitted
  EXPECT_EQ(links[0].find("node")->as_number(), 0.0);
  EXPECT_EQ(links[0].find("dir")->as_string(), "eject");
  EXPECT_EQ(links[1].find("node")->as_number(), 1.0);
  EXPECT_EQ(links[1].find("dir")->as_string(), "east");
}

// ---- host self-profiling ----

TEST(ObsHostProfile, ScopedPhasesAccumulateIntoInstalledSink) {
  HostPhaseProfile profile;
  {
    ScopedHostProfile guard(&profile);
    ScopedPhase setup("setup");
    setup.stop();
    { ScopedPhase sim("sim"); }
  }
  EXPECT_EQ(profile.phases().size(), 2u);
  EXPECT_GE(profile.ms("setup"), 0.0);
  EXPECT_GE(profile.ms("sim"), 0.0);
  EXPECT_EQ(profile.ms("collect"), 0.0);
}

TEST(ObsHostProfile, ScopedPhaseIsANoOpWithoutASink) {
  { ScopedPhase phase("sim"); }  // must not crash or record anywhere
  HostPhaseProfile profile;
  {
    ScopedHostProfile guard(&profile);
    ScopedHostProfile inner(nullptr);  // nested removal
    { ScopedPhase phase("sim"); }
  }
  EXPECT_TRUE(profile.phases().empty());
}

// ---- the `macosim trace` renderer ----

TEST(TraceCmd, RendersGanttFromWriterOutput) {
  RunObservation observation;
  observation.spans.push_back(SpanRec{"node0.mmae", "gemm", 0, 2'000'000});
  observation.spans.push_back(SpanRec{"os", "job0", 0, 4'000'000});
  const driver::TraceRender render =
      driver::render_trace(to_perfetto_json(observation), 40);
  EXPECT_NE(render.gantt.find("2 span(s) on 2 track(s)"),
            std::string::npos);
  EXPECT_NE(render.gantt.find("node0.mmae"), std::string::npos);
  EXPECT_NE(render.gantt.find("os"), std::string::npos);
  EXPECT_TRUE(render.noc_text.empty());  // no NoC sidecar in this trace
  EXPECT_TRUE(render.noc_csv.empty());
}

TEST(TraceCmd, RendersNocHeatmapAndCsv) {
  RunObservation observation;
  observation.spans.push_back(SpanRec{"t", "s", 0, 1'000'000});
  observation.noc.width = 2;
  observation.noc.height = 2;
  observation.noc.window_ps = 1'000'000;
  observation.noc.links.resize(4 * kLinksPerNode);
  observation.noc.links[3 * kLinksPerNode + 3] =
      LinkTrafficRec{8, 500'000};  // node3 east, 50% busy
  const driver::TraceRender render =
      driver::render_trace(to_perfetto_json(observation), 40);
  EXPECT_NE(render.noc_text.find("NoC 2x2 link utilization"),
            std::string::npos);
  EXPECT_NE(render.noc_text.find("50.0"), std::string::npos);
  EXPECT_NE(render.noc_text.find("hottest links:"), std::string::npos);
  EXPECT_NE(render.noc_csv.find("node,x,y,dir,flits,busy_ps,util"),
            std::string::npos);
  EXPECT_NE(render.noc_csv.find("3,1,1,east,8,500000,0.5"),
            std::string::npos);
}

TEST(TraceCmd, AcceptsBareEventArraysAndNumericTids) {
  const std::string trace =
      R"([{"name": "a", "ph": "X", "tid": 7, "ts": 0, "dur": 5},)"
      R"( {"name": "b", "ph": "B", "tid": 7, "ts": 1}])";
  const driver::TraceRender render = driver::render_trace(trace, 40);
  // Only the complete ('X') event renders; the numeric tid gains a prefix.
  EXPECT_NE(render.gantt.find("1 span(s) on 1 track(s)"),
            std::string::npos);
  EXPECT_NE(render.gantt.find("tid7"), std::string::npos);
}

TEST(TraceCmd, RejectsDocumentsThatAreNotChromeTraces) {
  EXPECT_THROW(driver::render_trace("{\"rows\": []}", 40),
               std::runtime_error);
  EXPECT_THROW(driver::render_trace("not json at all", 40),
               std::runtime_error);
}

TEST(TraceCmd, ReportsEmptyTracesInsteadOfCrashing) {
  const driver::TraceRender render =
      driver::render_trace("{\"traceEvents\": []}", 40);
  EXPECT_NE(render.gantt.find("no complete ('X') events"),
            std::string::npos);
}

// ---- driver integration: profile knob, trace files, cross rules ----

driver::SweepRequest gemm_point(const std::string& profile) {
  driver::SweepRequest request;
  request.scenario = "gemm";
  request.base_params = {{"fidelity", "detailed"},
                         {"size", "128"},
                         {"nodes", "2"},
                         {"profile", profile}};
  return request;
}

TEST(ObsDriver, ProfileCountersAddsMetricsWithoutChangingTiming) {
  const driver::ScenarioRegistry registry =
      driver::ScenarioRegistry::builtin();
  const driver::SweepResults off =
      driver::run_sweep(registry, gemm_point("off"));
  const driver::SweepResults counters =
      driver::run_sweep(registry, gemm_point("counters"));
  ASSERT_EQ(off.failures(), 0u);
  ASSERT_EQ(counters.failures(), 0u);

  const exp::Metric* off_ms = off.rows[0].result.find("makespan_ms");
  const exp::Metric* counters_ms =
      counters.rows[0].result.find("makespan_ms");
  ASSERT_NE(off_ms, nullptr);
  ASSERT_NE(counters_ms, nullptr);
  EXPECT_EQ(off_ms->value, counters_ms->value);  // bit-identical timing

  EXPECT_EQ(off.rows[0].result.find("l3_hit_rate"), nullptr);
  const exp::Metric* l3 = counters.rows[0].result.find("l3_hit_rate");
  ASSERT_NE(l3, nullptr);
  EXPECT_GT(l3->value, 0.0);
  EXPECT_LE(l3->value, 1.0);
  EXPECT_NE(counters.rows[0].result.find("matlb_hit_rate"), nullptr);
  EXPECT_NE(counters.rows[0].result.find("noc_max_link_util"), nullptr);
}

TEST(ObsDriver, ProfileCountersOffAnalyticPathFailsWithTheRule) {
  const driver::ScenarioRegistry registry =
      driver::ScenarioRegistry::builtin();
  driver::SweepRequest request = gemm_point("counters");
  request.base_params["fidelity"] = "analytic";
  const driver::SweepResults results = driver::run_sweep(registry, request);
  ASSERT_EQ(results.rows.size(), 1u);
  EXPECT_FALSE(results.rows[0].ok());
  EXPECT_NE(results.rows[0].error.find("profile=counters requires"),
            std::string::npos);
}

TEST(ObsDriver, TraceOutWritesOneParseableFilePerPoint) {
  const std::string dir = temp_dir("obs_trace_out");
  driver::SweepRequest request = gemm_point("counters");
  request.trace_out = dir;
  const driver::SweepResults results = driver::run_sweep(
      driver::ScenarioRegistry::builtin(), request);
  ASSERT_EQ(results.failures(), 0u);
  const fs::path file = fs::path(dir) / "gemm_p0.trace.json";
  ASSERT_TRUE(fs::exists(file));
  std::ifstream in(file);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const util::JsonValue doc = util::parse_json(buffer.str());
  ASSERT_NE(doc.find("traceEvents"), nullptr);
  EXPECT_FALSE(doc.find("traceEvents")->as_array().empty());
  EXPECT_NE(doc.find("maco"), nullptr);  // counters add the NoC sidecar
}

TEST(ObsDriver, ServeTraceCarriesInstanceAndRequestSpans) {
  driver::SweepRequest request;
  request.scenario = "serve";
  request.base_params = {{"fidelity", "analytic"},
                         {"model", "tiny"},
                         {"requests", "200"}};
  const std::string dir = temp_dir("obs_serve_trace");
  request.trace_out = dir;
  const driver::SweepResults results = driver::run_sweep(
      driver::ScenarioRegistry::builtin(), request);
  ASSERT_EQ(results.failures(), 0u);
  std::ifstream in(fs::path(dir) / "serve_p0.trace.json");
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const util::JsonValue doc = util::parse_json(buffer.str());
  bool instance_span = false;
  bool request_span = false;
  for (const util::JsonValue& event :
       doc.find("traceEvents")->as_array()) {
    const std::string& tid = event.find("tid")->as_string();
    if (tid.rfind("instance", 0) == 0) instance_span = true;
    if (tid.rfind("tenant", 0) == 0) request_span = true;
  }
  EXPECT_TRUE(instance_span);
  EXPECT_TRUE(request_span);
}

}  // namespace
}  // namespace maco::obs
