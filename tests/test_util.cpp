#include <gtest/gtest.h>

#include <sstream>

#include "util/bits.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace maco::util {
namespace {

TEST(Bits, PowerOfTwoDetection) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_TRUE(is_pow2(4096));
  EXPECT_TRUE(is_pow2(1ull << 63));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(4097));
}

TEST(Bits, Log2Floor) {
  EXPECT_EQ(log2_floor(1), 0u);
  EXPECT_EQ(log2_floor(2), 1u);
  EXPECT_EQ(log2_floor(3), 1u);
  EXPECT_EQ(log2_floor(4096), 12u);
  EXPECT_EQ(log2_floor(~0ull), 63u);
}

TEST(Bits, Alignment) {
  EXPECT_EQ(align_down(4097, 4096), 4096u);
  EXPECT_EQ(align_down(4096, 4096), 4096u);
  EXPECT_EQ(align_up(4097, 4096), 8192u);
  EXPECT_EQ(align_up(4096, 4096), 4096u);
  EXPECT_EQ(align_up(0, 4096), 0u);
}

TEST(Bits, BitExtraction) {
  EXPECT_EQ(bits(0xFF00, 8, 8), 0xFFu);
  EXPECT_EQ(bits(0xDEADBEEF, 0, 32), 0xDEADBEEFu);
  EXPECT_EQ(bits(~0ull, 0, 64), ~0ull);
}

TEST(Bits, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 4), 0u);
  EXPECT_EQ(ceil_div(1, 4), 1u);
  EXPECT_EQ(ceil_div(4, 4), 1u);
  EXPECT_EQ(ceil_div(5, 4), 2u);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b()) ? 1 : 0;
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Scalar, TracksMinMeanMax) {
  Scalar s;
  s.record(1.0);
  s.record(3.0);
  s.record(2.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(Histogram, BucketsAndPercentiles) {
  Histogram h(0.0, 100.0, 10);
  for (int i = 0; i < 100; ++i) h.record(i + 0.5);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_NEAR(h.percentile(0.5), 50.0, 10.0);
  EXPECT_NEAR(h.percentile(0.9), 90.0, 10.0);
}

TEST(Histogram, UnderOverflow) {
  Histogram h(10.0, 20.0, 5);
  h.record(5.0);
  h.record(25.0);
  EXPECT_EQ(h.buckets().front(), 1u);
  EXPECT_EQ(h.buckets().back(), 1u);
}

TEST(StatRegistry, CountersAndReport) {
  StatRegistry reg;
  reg.counter("a.b").inc(3);
  reg.counter("a.c").inc();
  reg.scalar("x").record(1.5);
  std::ostringstream oss;
  reg.report(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("a.b 3"), std::string::npos);
  EXPECT_NE(out.find("a.c 1"), std::string::npos);
  EXPECT_NE(out.find("x count=1"), std::string::npos);
}

TEST(Table, AlignedOutput) {
  Table t({"name", "value"});
  t.row().cell("alpha").cell(std::uint64_t{42});
  t.row().cell("b").percent(0.935);
  std::ostringstream oss;
  t.print(oss, "demo");
  const std::string out = oss.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("93.5%"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Units, Formatting) {
  EXPECT_EQ(format_bytes(48 * kKiB), "48.00 KiB");
  EXPECT_EQ(format_flops(1.1e12), "1.10 TFLOPS");
  EXPECT_EQ(format_frequency(2.5e9), "2.50 GHz");
  EXPECT_EQ(format_bandwidth(64e9), "64.00 GB/s");
}

}  // namespace
}  // namespace maco::util

#include "util/stats.hpp"

namespace maco::util {
namespace {

TEST(Histogram, PercentilesAndBounds) {
  Histogram h(0.0, 100.0, 10);
  for (int i = 0; i < 100; ++i) h.record(static_cast<double>(i) + 0.5);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_NEAR(h.percentile(0.5), 50.0, 10.0);
  EXPECT_NEAR(h.percentile(0.9), 90.0, 10.0);
  EXPECT_LE(h.percentile(0.0), h.percentile(1.0));
}

TEST(Histogram, OutOfRangeSamplesLandInOverflowBins) {
  Histogram h(0.0, 10.0, 5);
  h.record(-5.0);
  h.record(100.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.buckets().front(), 1u);  // underflow
  EXPECT_EQ(h.buckets().back(), 1u);   // overflow
}

TEST(StatRegistryMore, HistogramsRegisterOnceAndReport) {
  StatRegistry registry;
  Histogram& occupancy =
      registry.histogram("noc.link_occupancy", 0.0, 1.0, 20);
  occupancy.record(0.25);
  occupancy.record(0.75);
  // A later call with a different shape returns the existing histogram.
  Histogram& again = registry.histogram("noc.link_occupancy", 0.0, 5.0, 3);
  EXPECT_EQ(&occupancy, &again);
  EXPECT_EQ(again.count(), 2u);
  ASSERT_EQ(registry.histograms().count("noc.link_occupancy"), 1u);

  std::ostringstream oss;
  registry.report(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("noc.link_occupancy count=2"), std::string::npos);
  EXPECT_NE(out.find("p95="), std::string::npos);
}

TEST(StatRegistryMore, NamesAreStableAndShared) {
  StatRegistry registry;
  registry.counter("node0.mmae.tasks").inc(3);
  registry.counter("node0.mmae.tasks").inc(2);
  EXPECT_EQ(registry.counter("node0.mmae.tasks").value(), 5u);
  registry.counter("node1.mmae.tasks").inc();
  EXPECT_EQ(registry.counter("node1.mmae.tasks").value(), 1u);
}

TEST(ScalarMore, ResetClearsEverything) {
  Scalar s;
  s.record(5.0);
  s.record(-1.0);
  ASSERT_EQ(s.count(), 2u);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
}

}  // namespace
}  // namespace maco::util

#include <sstream>

#include "util/table.hpp"

namespace maco::util {
namespace {

TEST(TableCsv, PlainCellsAndHeader) {
  Table t({"name", "value"});
  t.row().cell("alpha").cell(3);
  t.row().cell("beta").cell(1.5, 1);
  std::ostringstream out;
  t.print_csv(out);
  EXPECT_EQ(out.str(), "name,value\nalpha,3\nbeta,1.5\n");
}

TEST(TableCsv, QuotesCommasAndEmbeddedQuotes) {
  Table t({"a", "b"});
  t.row().cell("x,y").cell("say \"hi\"");
  std::ostringstream out;
  t.print_csv(out);
  EXPECT_EQ(out.str(), "a,b\n\"x,y\",\"say \"\"hi\"\"\"\n");
}

}  // namespace
}  // namespace maco::util
