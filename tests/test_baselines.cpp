// Fig. 8 comparator: ordering and rough magnitudes of the five systems.
#include <gtest/gtest.h>

#include "baselines/comparison.hpp"
#include "workloads/dnn_models.hpp"

namespace maco::baseline {
namespace {

class ComparatorTest : public ::testing::Test {
 protected:
  ComparatorTest()
      : comparator_(core::SystemConfig::maco_default(), 16) {}
  Comparator comparator_;
};

TEST_F(ComparatorTest, PeakNormalization) {
  // 16 nodes × 16 PEs × 2 FLOPs × 2.5 GHz = 1.28 TFLOPS.
  EXPECT_NEAR(comparator_.accelerator_peak_flops(), 1.28e12, 1e9);
}

TEST_F(ComparatorTest, MacoWinsOnEveryWorkload) {
  for (const auto& workload :
       {wl::resnet50(8), wl::bert_base(8, 384), wl::gpt3(1, 2048)}) {
    const auto results = comparator_.run_all(workload);
    ASSERT_EQ(results.size(), 5u);
    const double maco = results.back().gflops;
    for (std::size_t i = 0; i + 1 < results.size(); ++i) {
      EXPECT_GT(maco, results[i].gflops)
          << workload.name << ": " << results[i].system;
    }
  }
}

TEST_F(ComparatorTest, Fig8RatiosInPaperBands) {
  // Average ratios over the three workloads; the paper reports MACO at
  // 3.30× Baseline-1, 1.45× Baseline-2, 1.35× RASA, 1.30× Gemmini.
  double r_b1 = 0, r_b2 = 0, r_rasa = 0, r_gemmini = 0;
  const std::vector<wl::Workload> workloads = {
      wl::resnet50(8), wl::bert_base(8, 384), wl::gpt3(1, 2048)};
  for (const auto& workload : workloads) {
    const auto results = comparator_.run_all(workload);
    const double maco = results[4].gflops;
    r_b1 += maco / results[0].gflops;
    r_b2 += maco / results[1].gflops;
    r_rasa += maco / results[2].gflops;
    r_gemmini += maco / results[3].gflops;
  }
  r_b1 /= workloads.size();
  r_b2 /= workloads.size();
  r_rasa /= workloads.size();
  r_gemmini /= workloads.size();

  EXPECT_NEAR(r_b1, 3.30, 0.80);
  EXPECT_NEAR(r_b2, 1.45, 0.35);
  EXPECT_NEAR(r_rasa, 1.35, 0.35);
  EXPECT_NEAR(r_gemmini, 1.30, 0.30);
  // Orderings the paper reports: RASA slowest of the two comparators.
  EXPECT_GT(r_rasa, r_gemmini);
}

TEST_F(ComparatorTest, MacoPeakThroughputNearPaper) {
  // "up to 1.1 TFLOPS with 88% computational efficiency" — the largest
  // GEMMs (GPT-3) carry the peak.
  const auto result = comparator_.run_maco(wl::gpt3(1, 2048));
  EXPECT_GT(result.gflops, 950.0);
  EXPECT_LT(result.gflops, 1280.0);
  EXPECT_GT(result.efficiency, 0.80);
  EXPECT_LT(result.efficiency, 1.0);
}

TEST_F(ComparatorTest, ResnetLowerThanGpt3) {
  // Skinny conv GEMMs utilize the array worse than GPT-3's giant GEMMs.
  const double resnet = comparator_.run_maco(wl::resnet50(8)).gflops;
  const double gpt = comparator_.run_maco(wl::gpt3(1, 2048)).gflops;
  EXPECT_LT(resnet, gpt);
}

TEST_F(ComparatorTest, Baseline1BoundByCpuPeak) {
  const auto result =
      comparator_.run_baseline1_cpu_only(wl::bert_base(8, 384));
  EXPECT_LT(result.gflops * 1e9,
            comparator_.cpu_peak_flops(sa::Precision::kFp32));
  EXPECT_GT(result.gflops, 0.0);
}

TEST_F(ComparatorTest, ResultsCarryMetadata) {
  const auto results = comparator_.run_all(wl::resnet50(8));
  EXPECT_EQ(results[0].system, "Baseline-1");
  EXPECT_EQ(results[1].system, "Baseline-2");
  EXPECT_EQ(results[2].system, "Gem5-RASA");
  EXPECT_EQ(results[3].system, "Gemmini");
  EXPECT_EQ(results[4].system, "MACO");
  for (const auto& r : results) {
    EXPECT_EQ(r.workload, "Resnet-50");
    EXPECT_GT(r.time_ps, 0u);
  }
}

}  // namespace
}  // namespace maco::baseline

namespace maco::baseline {
namespace {

TEST(ComparatorMore, EveryAcceleratedSystemBeatsCpuOnly) {
  const Comparator comparator(core::SystemConfig::maco_default(), 16);
  const auto results = comparator.run_all(wl::bert_base(8, 384));
  const double cpu_only = results[0].gflops;
  for (std::size_t s = 1; s < results.size(); ++s) {
    EXPECT_GT(results[s].gflops, cpu_only) << results[s].system;
  }
}

TEST(ComparatorMore, SingleEngineComparatorsAreBandwidthStarved) {
  // The equal-PE normalization is the paper's point: 256 PEs behind one
  // memory path (RASA/Gemmini) sustain less than 16 distributed engines.
  const Comparator comparator(core::SystemConfig::maco_default(), 16);
  const auto results = comparator.run_all(wl::gpt3(1, 2048));
  const double rasa = results[2].gflops;
  const double gemmini = results[3].gflops;
  const double maco = results[4].gflops;
  EXPECT_LT(rasa, 0.8 * maco);
  EXPECT_LT(gemmini, 0.8 * maco);
}

TEST(ComparatorMore, EfficiencyAgainstNormalizedPeakBounded) {
  const Comparator comparator(core::SystemConfig::maco_default(), 16);
  for (const auto& workload : {wl::resnet50(8), wl::bert_base(8, 384)}) {
    const auto results = comparator.run_all(workload);
    for (const auto& result : results) {
      EXPECT_GT(result.efficiency, 0.0) << result.system;
      EXPECT_LE(result.efficiency, 1.0) << result.system;
    }
  }
}

TEST(ComparatorMore, FewerNodesScaleMacoDown) {
  const Comparator full(core::SystemConfig::maco_default(), 16);
  const Comparator quarter(core::SystemConfig::maco_default(), 4);
  const auto big = full.run_maco(wl::bert_base(8, 384));
  const auto small = quarter.run_maco(wl::bert_base(8, 384));
  EXPECT_GT(big.gflops, 2.5 * small.gflops);
}

}  // namespace
}  // namespace maco::baseline
