// Serving subsystem: load generation, dynamic batching, the serve loop's
// virtual-time event simulation and its latency/goodput/fairness metrics.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "driver/scenario_registry.hpp"
#include "driver/sweep_runner.hpp"
#include "exp/results.hpp"
#include "serve/server.hpp"
#include "util/latency_histogram.hpp"

namespace maco::serve {
namespace {

// ---- latency histogram ----

TEST(LatencyHistogram, QuantilesTrackAKnownDistribution) {
  util::LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i));
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  EXPECT_DOUBLE_EQ(h.mean(), 500.5);
  // Log-bucketed: ~2.2% relative resolution at 32 buckets/decade.
  EXPECT_NEAR(h.quantile(0.50), 500.0, 500.0 * 0.05);
  EXPECT_NEAR(h.quantile(0.95), 950.0, 950.0 * 0.05);
  EXPECT_NEAR(h.quantile(0.99), 990.0, 990.0 * 0.05);
  // Exact at the recorded extremes, monotone in between.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1000.0);
  double previous = 0.0;
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    const double value = h.quantile(q);
    EXPECT_GE(value, previous);
    previous = value;
  }
}

TEST(LatencyHistogram, MergeEqualsRecordingEverySample) {
  util::LatencyHistogram separate_a, separate_b, pooled;
  for (int i = 0; i < 500; ++i) {
    const double a = 0.1 * (i + 1);
    const double b = 3.0 * (i + 1);
    separate_a.record(a);
    separate_b.record(b);
    pooled.record(a);
    pooled.record(b);
  }
  separate_a.merge(separate_b);
  EXPECT_EQ(separate_a.count(), pooled.count());
  EXPECT_DOUBLE_EQ(separate_a.sum(), pooled.sum());
  EXPECT_DOUBLE_EQ(separate_a.min(), pooled.min());
  EXPECT_DOUBLE_EQ(separate_a.max(), pooled.max());
  EXPECT_EQ(separate_a.buckets(), pooled.buckets());
  EXPECT_DOUBLE_EQ(separate_a.quantile(0.95), pooled.quantile(0.95));
}

// ---- load generator ----

ArrivalConfig poisson_config(std::uint64_t seed, unsigned tenants = 2) {
  ArrivalConfig config;
  config.kind = ArrivalKind::kPoisson;
  config.rate_rps = 500.0;
  config.requests = 400;
  config.tenants = tenants;
  config.seed = seed;
  return config;
}

TEST(LoadGenerator, SameSeedGivesBitIdenticalSchedules) {
  const std::vector<Request> first =
      LoadGenerator(poisson_config(7)).schedule();
  const std::vector<Request> second =
      LoadGenerator(poisson_config(7)).schedule();
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].id, second[i].id);
    EXPECT_EQ(first[i].tenant, second[i].tenant);
    EXPECT_EQ(first[i].arrival_ps, second[i].arrival_ps);
  }
}

TEST(LoadGenerator, DifferentSeedsGiveDifferentTimelines) {
  const std::vector<Request> a = LoadGenerator(poisson_config(7)).schedule();
  const std::vector<Request> b = LoadGenerator(poisson_config(8)).schedule();
  ASSERT_EQ(a.size(), b.size());
  bool any_difference = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    any_difference |= a[i].arrival_ps != b[i].arrival_ps;
  }
  EXPECT_TRUE(any_difference);
}

TEST(LoadGenerator, TenantCountDoesNotPerturbTheArrivalTimeline) {
  // Separate seeded streams for arrivals and tenant assignment: sweeping
  // `tenants` compares the same traffic divided differently.
  const std::vector<Request> one =
      LoadGenerator(poisson_config(7, /*tenants=*/1)).schedule();
  const std::vector<Request> four =
      LoadGenerator(poisson_config(7, /*tenants=*/4)).schedule();
  ASSERT_EQ(one.size(), four.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one[i].arrival_ps, four[i].arrival_ps);
  }
}

TEST(LoadGenerator, UniformArrivalsAreEquallySpaced) {
  ArrivalConfig config;
  config.kind = ArrivalKind::kUniform;
  config.rate_rps = 1000.0;  // 1 ms apart
  config.requests = 5;
  const std::vector<Request> schedule = LoadGenerator(config).schedule();
  ASSERT_EQ(schedule.size(), 5u);
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    EXPECT_EQ(schedule[i].arrival_ps, (i + 1) * sim::kPsPerMs);
  }
}

TEST(LoadGenerator, TraceReplaySortsAndPinsTenants) {
  ArrivalConfig config;
  config.kind = ArrivalKind::kTrace;
  config.tenants = 2;
  config.trace = parse_trace(
      "# demo trace\n"
      "0.002 1\n"
      "0.001 0\n"
      "\n"
      "0.003 5  # tenant wraps modulo the tenant count\n"
      "0.0005\n");
  const std::vector<Request> schedule = LoadGenerator(config).schedule();
  ASSERT_EQ(schedule.size(), 4u);
  EXPECT_EQ(schedule[0].arrival_ps, sim::kPsPerMs / 2);
  EXPECT_EQ(schedule[1].arrival_ps, 1 * sim::kPsPerMs);
  EXPECT_EQ(schedule[1].tenant, 0u);
  EXPECT_EQ(schedule[2].arrival_ps, 2 * sim::kPsPerMs);
  EXPECT_EQ(schedule[2].tenant, 1u);
  EXPECT_EQ(schedule[3].arrival_ps, 3 * sim::kPsPerMs);
  EXPECT_EQ(schedule[3].tenant, 1u);  // 5 % 2
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    EXPECT_EQ(schedule[i].id, i);  // ids follow sorted arrival order
  }
}

TEST(ParseTrace, RejectsMalformedLines) {
  EXPECT_THROW(parse_trace("not_a_number\n"), std::runtime_error);
  EXPECT_THROW(parse_trace("-1.0\n"), std::runtime_error);
  EXPECT_THROW(parse_trace("0.5 -2\n"), std::runtime_error);
  EXPECT_THROW(parse_trace("0.5 1 trailing\n"), std::runtime_error);
  EXPECT_TRUE(parse_trace("# only comments\n\n").empty());
}

// ---- dynamic batcher ----

TEST(DynamicBatcher, SealsBySizeAndByTimeout) {
  BatchPolicy policy;
  policy.max_batch = 3;
  policy.timeout_ps = 100;
  DynamicBatcher batcher(/*tenants=*/2, policy);

  // Tenant 0 reaches max_batch at t=2: sealed immediately, close at 2.
  batcher.enqueue(0, 0, 0);
  batcher.enqueue(1, 0, 1);
  batcher.enqueue(2, 0, 2);
  // Tenant 1 has one waiter from t=5; its forced close is due at 105.
  batcher.enqueue(3, 1, 5);
  ASSERT_TRUE(batcher.next_deadline().has_value());
  EXPECT_EQ(*batcher.next_deadline(), 105u);

  const std::vector<Batch> at_50 = batcher.collect(50);
  ASSERT_EQ(at_50.size(), 1u);
  EXPECT_EQ(at_50[0].tenant, 0u);
  EXPECT_EQ(at_50[0].size(), 3u);
  EXPECT_EQ(at_50[0].close_ps, 2u);
  EXPECT_FALSE(batcher.idle());

  const std::vector<Batch> at_200 = batcher.collect(200);
  ASSERT_EQ(at_200.size(), 1u);
  EXPECT_EQ(at_200[0].tenant, 1u);
  EXPECT_EQ(at_200[0].size(), 1u);
  EXPECT_EQ(at_200[0].close_ps, 105u);  // arrival + timeout, not `now`
  EXPECT_TRUE(batcher.idle());
  EXPECT_EQ(batcher.batches_sealed(), 2u);
  EXPECT_EQ(batcher.requests_admitted(), 4u);
}

TEST(DynamicBatcher, ZeroTimeoutDegeneratesToNoBatching) {
  BatchPolicy policy;
  policy.max_batch = 64;
  policy.timeout_ps = 0;
  DynamicBatcher batcher(1, policy);
  batcher.enqueue(0, 0, 10);
  batcher.enqueue(1, 0, 10);
  const std::vector<Batch> batches = batcher.collect(10);
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[0].size(), 1u);
  EXPECT_EQ(batches[1].size(), 1u);
}

TEST(DynamicBatcher, BacklogSealsRepeatedlyInOneCollect) {
  BatchPolicy policy;
  policy.max_batch = 2;
  policy.timeout_ps = 10;
  DynamicBatcher batcher(1, policy);
  batcher.enqueue(0, 0, 0);  // seals {0,1} by size at t=1
  batcher.enqueue(1, 0, 1);
  batcher.enqueue(2, 0, 2);  // left waiting; forced close due at 12
  const std::vector<Batch> batches = batcher.collect(100);
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[0].size(), 2u);
  EXPECT_EQ(batches[1].size(), 1u);
  EXPECT_EQ(batches[1].close_ps, 12u);
}

// ---- serve loop ----

ServeConfig small_serve_config() {
  ServeConfig config;
  config.arrival = poisson_config(3, /*tenants=*/2);
  config.arrival.rate_rps = 2000.0;
  config.arrival.requests = 1500;
  config.policy.max_batch = 8;
  config.policy.timeout_ps = 200 * sim::kPsPerUs;
  config.slo_ms = 10.0;
  return config;
}

std::unique_ptr<BatchCostModel> tiny_analytic_model(unsigned instances = 1) {
  CostModelOptions options;
  options.nodes = 16;
  options.instances = instances;
  return make_analytic_cost_model(core::SystemConfig::maco_default(),
                                  serve_model("tiny", 0), options);
}

void expect_reports_identical(const ServeReport& a, const ServeReport& b) {
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.batches, b.batches);
  EXPECT_EQ(a.duration_s, b.duration_s);
  EXPECT_EQ(a.throughput_rps, b.throughput_rps);
  EXPECT_EQ(a.goodput_rps, b.goodput_rps);
  EXPECT_EQ(a.fairness, b.fairness);
  EXPECT_EQ(a.latency_ms.quantile(0.5), b.latency_ms.quantile(0.5));
  EXPECT_EQ(a.latency_ms.quantile(0.95), b.latency_ms.quantile(0.95));
  EXPECT_EQ(a.latency_ms.quantile(0.99), b.latency_ms.quantile(0.99));
  EXPECT_EQ(a.latency_ms.buckets(), b.latency_ms.buckets());
}

TEST(Serve, OpenLoopIsDeterministicAcrossRuns) {
  const ServeConfig config = small_serve_config();
  const auto cost_a = tiny_analytic_model();
  const auto cost_b = tiny_analytic_model();
  const ServeReport a = serve(*cost_a, config);
  const ServeReport b = serve(*cost_b, config);
  EXPECT_EQ(a.completed, config.arrival.requests);
  expect_reports_identical(a, b);
}

TEST(Serve, ClosedLoopIsDeterministicAcrossRuns) {
  ServeConfig config = small_serve_config();
  config.closed_loop = true;
  config.concurrency = 32;
  config.think_s = 0.001;
  config.arrival.requests = 800;
  const auto cost_a = tiny_analytic_model();
  const auto cost_b = tiny_analytic_model();
  const ServeReport a = serve(*cost_a, config);
  const ServeReport b = serve(*cost_b, config);
  EXPECT_EQ(a.completed, config.arrival.requests);
  expect_reports_identical(a, b);
}

TEST(Serve, EveryRequestIsChargedItsThreeDelays) {
  const ServeConfig config = small_serve_config();
  const auto cost = tiny_analytic_model();
  const ServeReport report = serve(*cost, config);
  EXPECT_EQ(report.latency_ms.count(), report.completed);
  EXPECT_EQ(report.batching_ms.count(), report.completed);
  EXPECT_EQ(report.queueing_ms.count(), report.completed);
  EXPECT_EQ(report.execution_ms.count(), report.completed);
  // Latency decomposes into batching + queueing + execution.
  EXPECT_NEAR(report.latency_ms.sum(),
              report.batching_ms.sum() + report.queueing_ms.sum() +
                  report.execution_ms.sum(),
              1e-6 * report.latency_ms.sum());
  std::uint64_t tenant_total = 0;
  for (const TenantReport& tenant : report.tenants) {
    tenant_total += tenant.completed;
  }
  EXPECT_EQ(tenant_total, report.completed);
  EXPECT_GT(report.fairness, 0.99);  // symmetric tenants
  EXPECT_LE(report.goodput_rps, report.throughput_rps);
}

TEST(Serve, LatencyAndThroughputGrowWithOfferedLoad) {
  // max_batch=1 keeps the latency-vs-rate curve monotone (batching makes
  // it non-monotone: more load can fill batches faster). This is the
  // throughput/latency Pareto sweep of the serving literature.
  double previous_p95 = 0.0;
  double previous_throughput = 0.0;
  for (const double rate : {1000.0, 4000.0, 8000.0}) {
    ServeConfig config = small_serve_config();
    config.policy.max_batch = 1;
    config.arrival.rate_rps = rate;
    config.arrival.requests = 3000;
    const auto cost = tiny_analytic_model();
    const ServeReport report = serve(*cost, config);
    EXPECT_GE(report.latency_ms.quantile(0.95), previous_p95);
    EXPECT_GT(report.throughput_rps, previous_throughput);
    previous_p95 = report.latency_ms.quantile(0.95);
    previous_throughput = report.throughput_rps;
  }
  EXPECT_GT(previous_p95, 0.0);
}

TEST(Serve, GoodputCountsOnlyRequestsWithinTheSlo) {
  ServeConfig config = small_serve_config();
  config.slo_ms = 1e-6;  // below any execution time: nothing qualifies
  const auto strict_cost = tiny_analytic_model();
  const ServeReport strict = serve(*strict_cost, config);
  EXPECT_EQ(strict.goodput_rps, 0.0);
  EXPECT_EQ(strict.slo_attainment, 0.0);

  config.slo_ms = 1e6;  // far above: everything qualifies
  const auto lax_cost = tiny_analytic_model();
  const ServeReport lax = serve(*lax_cost, config);
  EXPECT_DOUBLE_EQ(lax.slo_attainment, 1.0);
  EXPECT_DOUBLE_EQ(lax.goodput_rps, lax.throughput_rps);
}

TEST(Serve, DetailedCostOracleIsDeterministicAndReportsOsStats) {
  core::SystemConfig config = core::SystemConfig::maco_default();
  CostModelOptions cost_options;
  cost_options.nodes = 2;
  ServeConfig serve_config = small_serve_config();
  serve_config.arrival.requests = 60;
  serve_config.policy.max_batch = 4;

  const auto cost_a = make_detailed_cost_model(
      config, serve_model("tiny", 0), cost_options);
  const auto cost_b = make_detailed_cost_model(
      config, serve_model("tiny", 0), cost_options);
  const ServeReport a = serve(*cost_a, serve_config);
  const ServeReport b = serve(*cost_b, serve_config);
  expect_reports_identical(a, b);
  ASSERT_TRUE(a.has_scheduler_stats);
  EXPECT_GT(a.scheduler.tasks_completed, 0u);
  EXPECT_EQ(a.scheduler.tasks_failed, 0u);
  EXPECT_EQ(a.scheduler.tasks_completed, b.scheduler.tasks_completed);
  EXPECT_EQ(a.scheduler.context_switches, b.scheduler.context_switches);
}

TEST(Serve, RejectsInconsistentConfiguration) {
  CostModelOptions options;
  options.nodes = 2;
  options.instances = 4;  // more instances than nodes
  EXPECT_THROW(make_analytic_cost_model(core::SystemConfig::maco_default(),
                                        serve_model("tiny", 0), options),
               std::invalid_argument);
  EXPECT_THROW(serve_model("mystery", 0), std::invalid_argument);

  ServeConfig config = small_serve_config();
  config.instances = 0;
  const auto cost = tiny_analytic_model();
  EXPECT_THROW(serve(*cost, config), std::invalid_argument);
}

// ---- metric direction inference ----

TEST(MetricDirections, PercentileAndLatencyNamesAreLowerIsBetter) {
  EXPECT_TRUE(exp::lower_is_better_metric_name("latency_p95_ms"));
  EXPECT_TRUE(exp::lower_is_better_metric_name("p99"));
  EXPECT_TRUE(exp::lower_is_better_metric_name("worst_tenant_p95_ms"));
  EXPECT_TRUE(exp::lower_is_better_metric_name("latency_mean_ms"));
  EXPECT_TRUE(exp::lower_is_better_metric_name("p999_ms"));
  EXPECT_FALSE(exp::lower_is_better_metric_name("throughput_rps"));
  EXPECT_FALSE(exp::lower_is_better_metric_name("pages_per_tile"));
  EXPECT_FALSE(exp::lower_is_better_metric_name("speedup"));
  EXPECT_FALSE(exp::lower_is_better_metric_name("top5_accuracy"));
  EXPECT_FALSE(exp::lower_is_better_metric_name("gflops"));
}

TEST(MetricDirections, AddInfersUnlessDirectionIsExplicit) {
  exp::ScenarioResult result;
  result.add("latency_p95_ms", 1.0, "ms");       // inferred: lower
  result.add("throughput_rps", 2.0, "req/s");    // inferred: higher
  result.add("latency_score", 3.0, "", true);    // explicit wins
  EXPECT_FALSE(result.find("latency_p95_ms")->higher_is_better);
  EXPECT_TRUE(result.find("throughput_rps")->higher_is_better);
  EXPECT_TRUE(result.find("latency_score")->higher_is_better);
}

// ---- scenario integration: thread-count invariance ----

TEST(ServeSweep, MetricsAreIdenticalAcrossThreadCounts) {
  const driver::ScenarioRegistry registry =
      driver::ScenarioRegistry::builtin();
  driver::SweepRequest request;
  request.scenario = "serve";
  request.base_params = {{"requests", "400"}, {"seed", "11"}};
  request.axes = {{"arrival_rate_rps", {"500", "2000", "6000"}}};

  request.threads = 1;
  const driver::SweepResults serial = driver::run_sweep(registry, request);
  request.threads = 4;
  const driver::SweepResults parallel = driver::run_sweep(registry, request);

  ASSERT_EQ(serial.rows.size(), 3u);
  ASSERT_EQ(parallel.rows.size(), 3u);
  EXPECT_EQ(serial.failures(), 0u);
  EXPECT_EQ(parallel.failures(), 0u);
  for (std::size_t row = 0; row < serial.rows.size(); ++row) {
    const auto& a = serial.rows[row].result.metrics;
    const auto& b = parallel.rows[row].result.metrics;
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t m = 0; m < a.size(); ++m) {
      EXPECT_EQ(a[m].name, b[m].name);
      // Bit-identical, not approximately equal: the serve loop runs in
      // virtual time and all randomness is seeded.
      EXPECT_EQ(a[m].value, b[m].value) << a[m].name;
    }
  }
}

}  // namespace
}  // namespace maco::serve
