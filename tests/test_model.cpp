// Area/power model vs the paper's Table IV.
#include <gtest/gtest.h>

#include "model/area_power.hpp"
#include "model/roofline.hpp"

namespace maco::model {
namespace {

TEST(AreaPower, MmaeTotalsMatchTableIV) {
  AreaPowerModel model;
  const UnitSummary mmae = model.mmae_summary();
  EXPECT_NEAR(mmae.area_mm2, 1.58, 0.10);
  EXPECT_NEAR(mmae.power_watts, 1.5, 0.15);
  EXPECT_NEAR(mmae.peak_gflops_fp64, 80.0, 0.1);
  EXPECT_NEAR(mmae.peak_gflops_fp32, 160.0, 0.1);
  EXPECT_NEAR(mmae.peak_gflops_fp16, 320.0, 0.1);
}

TEST(AreaPower, CpuTotalsMatchTableIV) {
  AreaPowerModel model;
  const UnitSummary cpu = model.cpu_summary();
  EXPECT_NEAR(cpu.area_mm2, 6.25, 0.30);
  EXPECT_NEAR(cpu.power_watts, 2.0, 0.20);
  EXPECT_NEAR(cpu.peak_gflops_fp64, 35.2, 0.1);
  EXPECT_NEAR(cpu.peak_gflops_fp32, 70.4, 0.5);
}

TEST(AreaPower, BreakdownMatchesTableIVFootnote) {
  AreaPowerModel model;
  const AreaBreakdown area = model.mmae_area(MmaeParams{});
  // Paper: Buffers 36.7%, SA 24.7%, AC 23.4%, ADE 15.8%.
  EXPECT_NEAR(area.buffers_fraction(), 0.367, 0.03);
  EXPECT_NEAR(area.sa_fraction(), 0.247, 0.03);
  EXPECT_NEAR(area.ac_fraction(), 0.234, 0.03);
  EXPECT_NEAR(area.ade_fraction(), 0.158, 0.03);
  EXPECT_NEAR(area.buffers_fraction() + area.sa_fraction() +
                  area.ac_fraction() + area.ade_fraction(),
              1.0, 1e-9);
}

TEST(AreaPower, PaperRatiosEmerge) {
  AreaPowerModel model;
  const UnitSummary mmae = model.mmae_summary();
  const UnitSummary cpu = model.cpu_summary();
  // "the area of MMAE is only 25% of the size of CPU core"
  EXPECT_NEAR(mmae.area_mm2 / cpu.area_mm2, 0.25, 0.03);
  // "peak performance ... over 2x of that of CPU"
  EXPECT_GT(mmae.peak_gflops_fp64 / cpu.peak_gflops_fp64, 2.0);
  // "a much higher (9x) area efficiency"
  EXPECT_NEAR(mmae.area_efficiency() / cpu.area_efficiency(), 9.0, 1.0);
  // "2x theoretical computation efficiency (GFLOPS/W)". Table IV's own
  // numbers actually give (80/1.5)/(35.2/2.0) ~ 3x, so the paper's "2x" is
  // a floor; assert at least 2x (see EXPERIMENTS.md on this inconsistency).
  EXPECT_GE(mmae.power_efficiency() / cpu.power_efficiency(), 2.0);
  // "power consumption of MMAE is 25% lower than CPU"
  EXPECT_NEAR(1.0 - mmae.power_watts / cpu.power_watts, 0.25, 0.08);
}

TEST(AreaPower, AreaScalesWithBuffers) {
  AreaPowerModel model;
  MmaeParams small;
  small.buffer_kib = 96;
  MmaeParams big;
  big.buffer_kib = 384;
  EXPECT_LT(model.mmae_area(small).total_mm2,
            model.mmae_area(big).total_mm2);
}

TEST(Roofline, ComputeVsBandwidthRegimes) {
  // High intensity: compute-bound.
  EXPECT_DOUBLE_EQ(attainable_flops(100e9, 10e9, 1000.0), 100e9);
  // Low intensity: bandwidth-bound.
  EXPECT_DOUBLE_EQ(attainable_flops(100e9, 10e9, 1.0), 10e9);
}

TEST(Roofline, GemmIntensityGrowsWithBlocking) {
  const double small = gemm_arithmetic_intensity(4096, 4096, 4096, 64, 64, 8);
  const double big = gemm_arithmetic_intensity(4096, 4096, 4096, 512, 512, 8);
  EXPECT_GT(big, small);
}

TEST(Roofline, GemmIntensityIndependentOfOutputScale) {
  // Blocks tile the C matrix, so traffic scales exactly with m*n at fixed k:
  // intensity is invariant in m and n.
  const double a = gemm_arithmetic_intensity(2048, 2048, 4096, 256, 256, 8);
  const double b = gemm_arithmetic_intensity(8192, 8192, 4096, 256, 256, 8);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(Roofline, GemmIntensityApproachesBlockBoundFromBelow) {
  // As k grows, the C read/write term amortizes and intensity approaches
  // the blocking bound b/elem_bytes from below.
  const double bound = 256.0 / 8.0;
  double prev = 0.0;
  for (std::uint64_t k : {512u, 2048u, 8192u, 32768u}) {
    const double v = gemm_arithmetic_intensity(4096, 4096, k, 256, 256, 8);
    EXPECT_GT(v, prev);
    EXPECT_LT(v, bound);
    prev = v;
  }
  EXPECT_NEAR(prev, bound, bound * 0.02);
}

}  // namespace
}  // namespace maco::model
