#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "driver/graph_cmd.hpp"
#include "driver/scenario_registry.hpp"
#include "graph/builtin_models.hpp"
#include "graph/lowering.hpp"
#include "graph/model_graph.hpp"
#include "graph/scheduler.hpp"
#include "sampling/tile_space.hpp"
#include "serve/workload.hpp"
#include "util/file.hpp"
#include "workloads/dnn_models.hpp"

namespace maco::graph {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string write_temp(const std::string& name, const std::string& text) {
  const std::string path = temp_path(name);
  std::ofstream out(path);
  out << text;
  return path;
}

// Parses `json` expecting a GraphError whose message contains `needle`.
void expect_rejected(const std::string& json, const std::string& needle) {
  try {
    (void)parse_model_graph(json);
    FAIL() << "manifest accepted; expected error containing '" << needle
           << "'";
  } catch (const GraphError& error) {
    EXPECT_NE(std::string(error.what()).find(needle), std::string::npos)
        << "got '" << error.what() << "', expected to contain '" << needle
        << "'";
  }
}

// A minimal valid two-linear manifest used as the mutation base.
const char* kMlp = R"({
  "model": "mlp", "precision": "fp32",
  "defaults": {"batch": 2, "seq_len": 8},
  "tensors": [
    {"name": "x", "dims": ["tokens", 32]},
    {"name": "h", "dims": ["tokens", 64]},
    {"name": "y", "dims": ["tokens", 32]}
  ],
  "ops": [
    {"name": "fc1", "kind": "linear", "inputs": ["x"], "outputs": ["h"],
     "attrs": {"out_features": 64, "post": "gelu"}},
    {"name": "fc2", "kind": "linear", "inputs": ["h"], "outputs": ["y"],
     "attrs": {"out_features": 32}}
  ]
})";

TEST(ModelGraph, RoundTripsAManifest) {
  const ModelGraph g = parse_model_graph(kMlp);
  EXPECT_EQ(g.name, "mlp");
  EXPECT_EQ(g.precision, sa::Precision::kFp32);
  EXPECT_EQ(g.default_batch, 2u);
  EXPECT_EQ(g.default_seq_len, 8u);
  ASSERT_EQ(g.tensors.size(), 3u);
  ASSERT_EQ(g.ops.size(), 2u);
  EXPECT_EQ(g.tensors[0].dims[0].symbol, DimSymbol::kTokens);
  EXPECT_EQ(g.tensors[0].dims[1].value, 32u);
  EXPECT_EQ(g.ops[0].kind, OpKind::kLinear);
  EXPECT_EQ(g.ops[0].attrs.out_features, 64u);
  EXPECT_EQ(g.ops[0].attrs.post, wl::PostOp::kGelu);
  EXPECT_EQ(g.producer_of("h"), 0u);
  EXPECT_EQ(g.producer_of("x"), ModelGraph::kNoProducer);
  ASSERT_NE(g.find_tensor("y"), nullptr);
  EXPECT_EQ(g.find_tensor("nope"), nullptr);
}

TEST(ModelGraph, RejectsMalformedDocuments) {
  expect_rejected("{", "manifest");
  expect_rejected("[]", "object");
  expect_rejected(R"({"model": "m"})", "tensors");
}

TEST(ModelGraph, RejectsUnknownOpKind) {
  std::string json = kMlp;
  json.replace(json.find("\"linear\""), 8, "\"pooling\"");
  expect_rejected(json, "pooling");
}

TEST(ModelGraph, RejectsBadDtype) {
  std::string json = kMlp;
  json.replace(json.find("\"fp32\""), 6, "\"int4\"");
  expect_rejected(json, "int4");
}

TEST(ModelGraph, RejectsMixedPrecisionTensors) {
  std::string json = kMlp;
  const std::string old = R"({"name": "h", "dims": ["tokens", 64]})";
  json.replace(json.find(old), old.size(),
               R"({"name": "h", "dims": ["tokens", 64], "dtype": "fp16"})");
  expect_rejected(json, "mixed precision");
}

TEST(ModelGraph, RejectsDanglingInputEdge) {
  std::string json = kMlp;
  json.replace(json.find("[\"h\"], \"outputs\": [\"y\"]"), 5,
               "[\"ghost\"]");
  expect_rejected(json, "ghost");
}

TEST(ModelGraph, RejectsDanglingOutputEdge) {
  std::string json = kMlp;
  json.replace(json.find("\"outputs\": [\"y\"]"), 16,
               "\"outputs\": [\"phantom\"]");
  expect_rejected(json, "phantom");
}

TEST(ModelGraph, RejectsTwoProducersOfOneTensor) {
  std::string json = kMlp;
  json.replace(json.find("\"outputs\": [\"y\"]"), 16,
               "\"outputs\": [\"h\"]");
  expect_rejected(json, "producers");
}

TEST(ModelGraph, RejectsDuplicateTensorAndOpNames) {
  std::string dup_tensor = kMlp;
  dup_tensor.replace(dup_tensor.find("\"name\": \"y\""), 11,
                     "\"name\": \"x\"");
  expect_rejected(dup_tensor, "duplicate");
  std::string dup_op = kMlp;
  dup_op.replace(dup_op.find("\"name\": \"fc2\""), 13, "\"name\": \"fc1\"");
  expect_rejected(dup_op, "duplicate");
}

TEST(ModelGraph, RejectsShapeMismatch) {
  // fc2 declares out_features=32 but writes a [tokens, 64]-shaped tensor.
  std::string json = kMlp;
  json.replace(json.find("{\"name\": \"y\", \"dims\": [\"tokens\", 32]}"),
               38, "{\"name\": \"y\", \"dims\": [\"tokens\", 64]}");
  expect_rejected(json, "fc2");
}

TEST(ModelGraph, RejectsUnknownAttrForKind) {
  std::string json = kMlp;
  json.replace(json.find("\"out_features\": 64, "), 0, "\"heads\": 4, ");
  expect_rejected(json, "heads");
}

TEST(ModelGraph, RejectsSelfLoopAndCycle) {
  // Self-loop: an op consuming its own output.
  expect_rejected(R"({
    "model": "m", "precision": "fp32", "tensors": [
      {"name": "a", "dims": ["tokens", 8]}
    ],
    "ops": [
      {"name": "loop", "kind": "elementwise", "inputs": ["a"],
       "outputs": ["a"]}
    ]
  })", "cycle");
  // Two-op cycle.
  expect_rejected(R"({
    "model": "m", "precision": "fp32", "tensors": [
      {"name": "a", "dims": ["tokens", 8]},
      {"name": "b", "dims": ["tokens", 8]}
    ],
    "ops": [
      {"name": "p", "kind": "elementwise", "inputs": ["b"],
       "outputs": ["a"]},
      {"name": "q", "kind": "elementwise", "inputs": ["a"],
       "outputs": ["b"]}
    ]
  })", "cycle");
}

TEST(ModelGraph, RejectsTopKExceedingExperts) {
  expect_rejected(R"({
    "model": "m", "precision": "fp32", "tensors": [
      {"name": "x", "dims": ["tokens", 32]},
      {"name": "y", "dims": ["tokens", 32]}
    ],
    "ops": [
      {"name": "moe", "kind": "moe", "inputs": ["x"], "outputs": ["y"],
       "attrs": {"experts": 4, "ffn": 64, "top_k": 8}}
    ]
  })", "top_k");
}

TEST(Scheduler, OrdersByDependencyWithManifestTieBreak) {
  // Declared out of dependency order: fc2 before fc1.
  const ModelGraph g = parse_model_graph(R"({
    "model": "m", "precision": "fp32",
    "tensors": [
      {"name": "x", "dims": ["tokens", 8]},
      {"name": "h", "dims": ["tokens", 8]},
      {"name": "y", "dims": ["tokens", 8]}
    ],
    "ops": [
      {"name": "fc2", "kind": "linear", "inputs": ["h"],
       "outputs": ["y"], "attrs": {"out_features": 8}},
      {"name": "fc1", "kind": "linear", "inputs": ["x"],
       "outputs": ["h"], "attrs": {"out_features": 8}}
    ]
  })");
  const std::vector<std::size_t> order = topological_order(g);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(g.ops[order[0]].name, "fc1");
  EXPECT_EQ(g.ops[order[1]].name, "fc2");
}

TEST(Lowering, ResolvesSymbolicDimsPerPhase) {
  const ModelGraph g = parse_model_graph(kMlp);
  const LoweredModel prefill = lower(g, {});  // manifest defaults: 2 x 8
  EXPECT_EQ(prefill.tokens, 16u);
  ASSERT_EQ(prefill.workload.layers.size(), 2u);
  EXPECT_EQ(prefill.workload.layers[0].shape.m, 16u);
  EXPECT_EQ(prefill.workload.layers[0].shape.n, 64u);
  EXPECT_EQ(prefill.workload.layers[0].shape.k, 32u);
  EXPECT_EQ(prefill.workload.layers[0].post, wl::PostOp::kGelu);

  LoweringOptions decode;
  decode.phase = Phase::kDecode;
  const LoweredModel d = lower(g, decode);
  EXPECT_EQ(d.tokens, 2u);  // one token per sequence
  EXPECT_EQ(d.workload.layers[0].shape.m, 2u);

  LoweringOptions big;
  big.batch = 4;
  big.seq_len = 32;
  const LoweredModel p = lower(g, big);
  EXPECT_EQ(p.batch, 4u);
  EXPECT_EQ(p.seq_len, 32u);
  EXPECT_EQ(p.tokens, 128u);
}

TEST(Lowering, AttentionPrefillVersusDecodeShapes) {
  const ModelGraph g = builtin_graph("gpt3-block");
  LoweringOptions options;
  options.batch = 2;
  options.seq_len = 2048;
  const LoweredModel prefill = lower(g, options);
  options.phase = Phase::kDecode;
  const LoweredModel decode = lower(g, options);

  // Prefill: every GEMM's M is tokens = batch*seq_len, and the attention
  // span equals tokens (the legacy aggregate-GEMM simplification).
  const wl::Layer& pscores = prefill.workload.layers[1];
  EXPECT_EQ(pscores.name, "decoder.scores");
  EXPECT_EQ(pscores.shape.m, 2u * 2048u);
  EXPECT_EQ(pscores.shape.n, 2u * 2048u * 96u);

  // Decode: one new token per sequence (M = batch) attending over the
  // KV cache of seq_len entries.
  const wl::Layer& dscores = decode.workload.layers[1];
  EXPECT_EQ(dscores.shape.m, 2u);
  EXPECT_EQ(dscores.shape.n, 2048u * 96u);
  const wl::Layer& dcontext = decode.workload.layers[2];
  EXPECT_EQ(dcontext.shape.k, 2048u);  // context reads the whole cache
  EXPECT_LT(decode.total_flops(), prefill.total_flops());
}

TEST(Lowering, MoeExpandsRouterAndExperts) {
  const ModelGraph g = builtin_graph("moe-mlp");  // 8 experts, ffn 512
  const LoweredModel m = lower(g, {});            // batch 4, seq 64
  // Layers: mlp.in, moe.router, moe.expert.ffn1, moe.expert.ffn2, mlp.mix
  // (the elementwise/norm ops fuse, adding no layers).
  ASSERT_EQ(m.workload.layers.size(), 5u);
  const wl::Layer& router = m.workload.layers[1];
  EXPECT_EQ(router.name, "moe.router");
  EXPECT_EQ(router.shape.n, 8u);
  EXPECT_EQ(router.post, wl::PostOp::kSoftmax);
  const wl::Layer& ffn1 = m.workload.layers[2];
  // 256 tokens * top_k 2 / 8 experts = 64 tokens per expert, repeated
  // once per expert — the multiplicity the sampled strata weight by.
  EXPECT_EQ(ffn1.shape.m, 64u);
  EXPECT_EQ(ffn1.shape.n, 512u);
  EXPECT_EQ(ffn1.repeat, 8u);

  // moe_top_k=8 routes every token to every expert.
  LoweringOptions dense;
  dense.moe_top_k = 8;
  const LoweredModel all = lower(g, dense);
  EXPECT_EQ(all.workload.layers[2].shape.m, 256u);

  LoweringOptions too_many;
  too_many.moe_top_k = 9;
  EXPECT_THROW((void)lower(g, too_many), GraphError);
}

TEST(Lowering, MoeMultiplicityReachesSampledStrata) {
  const LoweredModel m = lower(builtin_graph("moe-mlp"), {});
  const std::vector<sampling::Stratum> strata =
      sampling::enumerate_strata(m.workload.expanded_shapes(), 64);
  // The two 8-expert FFN layers collapse into strata with multiplicity 8;
  // their populations weight the estimator exactly like eight layers.
  bool found = false;
  for (const sampling::Stratum& stratum : strata) {
    if (stratum.layer_shape.m == 64 && stratum.layer_shape.n == 512) {
      EXPECT_EQ(stratum.multiplicity, 8u);
      EXPECT_EQ(stratum.population(), stratum.count * 8u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Lowering, FusionRequiresAProducerWithAFreePostSlot) {
  // Input produced by no op: nothing to fuse into.
  const ModelGraph orphan = parse_model_graph(R"({
    "model": "m", "precision": "fp32", "tensors": [
      {"name": "x", "dims": ["tokens", 8]},
      {"name": "y", "dims": ["tokens", 8]}
    ],
    "ops": [
      {"name": "act", "kind": "elementwise", "inputs": ["x"],
       "outputs": ["y"]}
    ]
  })");
  EXPECT_THROW((void)lower(orphan, {}), GraphError);

  // Producer already carries a post-op: the fusion slot is taken.
  const ModelGraph taken = parse_model_graph(R"({
    "model": "m", "precision": "fp32", "tensors": [
      {"name": "x", "dims": ["tokens", 8]},
      {"name": "h", "dims": ["tokens", 8]},
      {"name": "y", "dims": ["tokens", 8]}
    ],
    "ops": [
      {"name": "fc", "kind": "linear", "inputs": ["x"], "outputs": ["h"],
       "attrs": {"out_features": 8, "post": "relu"}},
      {"name": "norm", "kind": "norm", "inputs": ["h"], "outputs": ["y"]}
    ]
  })");
  EXPECT_THROW((void)lower(taken, {}), GraphError);
}

TEST(Lowering, ContributionsCoverTheWholeWorkload) {
  for (const char* name : {"bert-block", "resnet50-stage", "moe-mlp"}) {
    const LoweredModel m = lower(builtin_graph(name), {});
    double frac = 0.0;
    std::uint64_t flops = 0;
    for (const OpContribution& op : m.ops) {
      frac += op.flops_frac;
      flops += op.flops;
    }
    EXPECT_NEAR(frac, 1.0, 1e-9) << name;
    EXPECT_EQ(flops, m.total_flops()) << name;
  }
}

TEST(Builtin, CatalogueMatchesShippedManifests) {
  ASSERT_EQ(builtin_manifests().size(), 5u);
  for (const BuiltinManifest& builtin : builtin_manifests()) {
    const ModelGraph g = parse_model_graph(builtin.json);
    EXPECT_FALSE(g.ops.empty()) << builtin.name;
    // Every builtin lowers with pure manifest defaults.
    const LoweredModel m = lower(g, {});
    EXPECT_FALSE(m.workload.layers.empty()) << builtin.name;
  }
  EXPECT_THROW((void)builtin_manifest("nope"), GraphError);
}

// ---- Bit-identity with the pre-frontend hard-coded generators. ----
//
// These replicate the deleted wl:: generator bodies verbatim; the
// frontend must reproduce them layer for layer (same names, shapes,
// post-ops and repeats), which makes every analytic makespan identical.

void legacy_transformer_block(wl::Workload& w, const std::string& prefix,
                              std::uint64_t tokens, std::uint64_t hidden,
                              std::uint64_t heads, unsigned repeat) {
  using wl::Layer;
  using wl::PostOp;
  const std::uint64_t head_dim = hidden / heads;
  const std::uint64_t ffn = 4 * hidden;
  w.layers.push_back(Layer{prefix + ".qkv",
                           sa::TileShape{tokens, 3 * hidden, hidden},
                           PostOp::kBiasAdd, repeat});
  w.layers.push_back(Layer{prefix + ".scores",
                           sa::TileShape{tokens, tokens * heads, head_dim},
                           PostOp::kSoftmax, repeat});
  w.layers.push_back(Layer{prefix + ".context",
                           sa::TileShape{tokens, head_dim * heads, tokens},
                           PostOp::kNone, repeat});
  w.layers.push_back(Layer{prefix + ".proj",
                           sa::TileShape{tokens, hidden, hidden},
                           PostOp::kLayerNorm, repeat});
  w.layers.push_back(Layer{prefix + ".ffn1",
                           sa::TileShape{tokens, ffn, hidden},
                           PostOp::kGelu, repeat});
  w.layers.push_back(Layer{prefix + ".ffn2",
                           sa::TileShape{tokens, hidden, ffn},
                           PostOp::kLayerNorm, repeat});
}

wl::Layer legacy_conv(const std::string& name, unsigned batch,
                      std::uint64_t out_ch, std::uint64_t out_hw,
                      std::uint64_t in_ch, std::uint64_t kernel,
                      unsigned repeat,
                      wl::PostOp post = wl::PostOp::kRelu) {
  return wl::Layer{name,
                   sa::TileShape{out_ch, batch * out_hw * out_hw,
                                 in_ch * kernel * kernel},
                   post, repeat};
}

wl::Workload legacy_resnet50(unsigned batch) {
  wl::Workload w;
  w.name = "Resnet-50";
  w.precision = sa::Precision::kFp32;
  w.layers.push_back(legacy_conv("conv1", batch, 64, 112, 3, 7, 1));
  w.layers.push_back(legacy_conv("conv2.reduce", batch, 64, 56, 256, 1, 2));
  w.layers.push_back(legacy_conv("conv2.reduce0", batch, 64, 56, 64, 1, 1));
  w.layers.push_back(legacy_conv("conv2.3x3", batch, 64, 56, 64, 3, 3));
  w.layers.push_back(legacy_conv("conv2.expand", batch, 256, 56, 64, 1, 3));
  w.layers.push_back(legacy_conv("conv3.reduce", batch, 128, 28, 512, 1, 3));
  w.layers.push_back(
      legacy_conv("conv3.reduce0", batch, 128, 28, 256, 1, 1));
  w.layers.push_back(legacy_conv("conv3.3x3", batch, 128, 28, 128, 3, 4));
  w.layers.push_back(legacy_conv("conv3.expand", batch, 512, 28, 128, 1, 4));
  w.layers.push_back(
      legacy_conv("conv4.reduce", batch, 256, 14, 1024, 1, 5));
  w.layers.push_back(
      legacy_conv("conv4.reduce0", batch, 256, 14, 512, 1, 1));
  w.layers.push_back(legacy_conv("conv4.3x3", batch, 256, 14, 256, 3, 6));
  w.layers.push_back(
      legacy_conv("conv4.expand", batch, 1024, 14, 256, 1, 6));
  w.layers.push_back(legacy_conv("conv5.reduce", batch, 512, 7, 2048, 1, 2));
  w.layers.push_back(
      legacy_conv("conv5.reduce0", batch, 512, 7, 1024, 1, 1));
  w.layers.push_back(legacy_conv("conv5.3x3", batch, 512, 7, 512, 3, 3));
  w.layers.push_back(legacy_conv("conv5.expand", batch, 2048, 7, 512, 1, 3));
  w.layers.push_back(wl::Layer{"fc", sa::TileShape{1000, batch, 2048},
                               wl::PostOp::kNone, 1});
  return w;
}

void expect_identical(const wl::Workload& actual,
                      const wl::Workload& expected) {
  EXPECT_EQ(actual.name, expected.name);
  EXPECT_EQ(actual.precision, expected.precision);
  ASSERT_EQ(actual.layers.size(), expected.layers.size());
  for (std::size_t i = 0; i < expected.layers.size(); ++i) {
    const wl::Layer& a = actual.layers[i];
    const wl::Layer& e = expected.layers[i];
    EXPECT_EQ(a.name, e.name) << "layer " << i;
    EXPECT_EQ(a.shape.m, e.shape.m) << e.name;
    EXPECT_EQ(a.shape.n, e.shape.n) << e.name;
    EXPECT_EQ(a.shape.k, e.shape.k) << e.name;
    EXPECT_EQ(a.post, e.post) << e.name;
    EXPECT_EQ(a.repeat, e.repeat) << e.name;
  }
}

TEST(BitIdentity, Resnet50MatchesLegacyGenerator) {
  for (unsigned batch : {1u, 8u, 64u}) {
    expect_identical(wl::resnet50(batch), legacy_resnet50(batch));
  }
}

TEST(BitIdentity, BertMatchesLegacyGenerator) {
  for (unsigned batch : {1u, 8u}) {
    wl::Workload expected;
    expected.name = "BERT";
    expected.precision = sa::Precision::kFp32;
    legacy_transformer_block(expected, "encoder", 384ull * batch, 768, 12,
                             12);
    expect_identical(wl::bert_base(batch, 384), expected);
  }
}

TEST(BitIdentity, Gpt3MatchesLegacyGenerator) {
  wl::Workload expected;
  expected.name = "GPT3";
  expected.precision = sa::Precision::kFp32;
  legacy_transformer_block(expected, "decoder", 2048, 12288, 96, 96);
  expect_identical(wl::gpt3(1, 2048), expected);
}

TEST(BitIdentity, ServeTinyMatchesLegacyShapes) {
  const serve::ServeModel tiny = serve::serve_model("tiny", 0);
  for (unsigned batch : {1u, 4u, 128u}) {
    const std::vector<sa::TileShape> shapes = tiny.layers(batch);
    const std::uint64_t m = 16ull * batch;
    ASSERT_EQ(shapes.size(), 3u);
    EXPECT_EQ(shapes[0].m, m);
    EXPECT_EQ(shapes[0].n, 256u);
    EXPECT_EQ(shapes[0].k, 256u);
    EXPECT_EQ(shapes[1].n, 1024u);
    EXPECT_EQ(shapes[1].k, 256u);
    EXPECT_EQ(shapes[2].n, 256u);
    EXPECT_EQ(shapes[2].k, 1024u);
  }
}

// ---- File loading and the shared typed error path. ----

TEST(FileError, LoaderAndTraceReplayShareTheTypedReadPath) {
  try {
    (void)util::read_text_file(temp_path("no_such_manifest.json"));
    FAIL() << "expected FileError";
  } catch (const util::FileError& error) {
    EXPECT_NE(std::string(error.what()).find("cannot read"),
              std::string::npos);
  }
  EXPECT_THROW((void)util::read_text_file(::testing::TempDir()),
               util::FileError);
  EXPECT_THROW((void)load_model_graph(temp_path("no_such_manifest.json")),
               util::FileError);
}

TEST(FileError, LoadNamesTheFileInParseDiagnostics) {
  const std::string path = write_temp("broken.json", "{ not json");
  try {
    (void)load_model_graph(path);
    FAIL() << "expected GraphError";
  } catch (const GraphError& error) {
    EXPECT_NE(std::string(error.what()).find(path), std::string::npos);
  }
}

}  // namespace
}  // namespace maco::graph

// ---- The graph CLI subcommand and scenario. ----

namespace maco::driver {
namespace {

std::string manifest_on_disk() {
  static const std::string path = [] {
    const std::string p =
        ::testing::TempDir() + "/graph_cmd_manifest.json";
    std::ofstream out(p);
    out << graph::builtin_manifest("moe-mlp");
    return p;
  }();
  return path;
}

TEST(GraphCmd, ValidateSummarizesAValidManifest) {
  const std::string summary = validate_manifest(manifest_on_disk());
  EXPECT_NE(summary.find("ok"), std::string::npos);
  EXPECT_NE(summary.find("moe-mlp"), std::string::npos);
  EXPECT_NE(summary.find("5 ops"), std::string::npos);
}

TEST(GraphCmd, ValidateThrowsOnABadManifest) {
  const std::string path = ::testing::TempDir() + "/bad_manifest.json";
  std::ofstream(path) << R"({"model": "m"})";
  EXPECT_THROW((void)validate_manifest(path), graph::GraphError);
  EXPECT_THROW(
      (void)validate_manifest(::testing::TempDir() + "/missing.json"),
      util::FileError);
}

TEST(GraphCmd, ShowRendersLayersAndContributions) {
  const std::string text =
      show_manifest(manifest_on_disk(), graph::LoweringOptions{});
  EXPECT_NE(text.find("moe.expert.ffn1"), std::string::npos);
  EXPECT_NE(text.find("Per-op contribution"), std::string::npos);
  EXPECT_NE(text.find("fused:mlp.in"), std::string::npos);
  EXPECT_NE(text.find("phase prefill"), std::string::npos);

  graph::LoweringOptions decode;
  decode.phase = graph::Phase::kDecode;
  const std::string dtext = show_manifest(manifest_on_disk(), decode);
  EXPECT_NE(dtext.find("phase decode"), std::string::npos);
}

ScenarioResult run_graph_point(
    const std::map<std::string, std::string>& raw) {
  const ScenarioRegistry registry = ScenarioRegistry::builtin();
  const Scenario* scenario = registry.find("graph");
  EXPECT_NE(scenario, nullptr);
  ScenarioRequest request;
  request.params = scenario->schema.bind(raw);
  return scenario->run(request);
}

TEST(GraphScenario, RunsBuiltinsAndFilesAtAnalyticFidelity) {
  const ScenarioResult from_name =
      run_graph_point({{"model_file", "moe-mlp"}});
  const ScenarioResult from_file =
      run_graph_point({{"model_file", manifest_on_disk()}});
  ASSERT_NE(from_name.find("makespan_ms"), nullptr);
  ASSERT_NE(from_file.find("makespan_ms"), nullptr);
  EXPECT_DOUBLE_EQ(from_name.find("makespan_ms")->value,
                   from_file.find("makespan_ms")->value);
  EXPECT_EQ(from_name.find("tokens")->value, 256.0);
  EXPECT_EQ(from_name.find("graph_ops")->value, 5.0);
  EXPECT_EQ(from_name.find("lowered_layers")->value, 5.0);
  // Per-op contribution metrics, keyed by sanitized op name.
  ASSERT_NE(from_name.find("op_flops_frac_moe"), nullptr);
  EXPECT_GT(from_name.find("op_flops_frac_moe")->value, 0.5);
}

TEST(GraphScenario, PrefillAndDecodeDiffer) {
  const ScenarioResult prefill = run_graph_point(
      {{"model_file", "tiny"}, {"batch", "4"}, {"seq_len", "64"}});
  const ScenarioResult decode = run_graph_point(
      {{"model_file", "tiny"}, {"batch", "4"}, {"seq_len", "64"},
       {"phase", "decode"}});
  EXPECT_EQ(prefill.find("tokens")->value, 256.0);
  EXPECT_EQ(decode.find("tokens")->value, 4.0);
  EXPECT_LT(decode.find("makespan_ms")->value,
            prefill.find("makespan_ms")->value);
}

TEST(GraphScenario, SampledFidelityReportsErrorBars) {
  const ScenarioResult result = run_graph_point(
      {{"model_file", "tiny"}, {"fidelity", "sampled"}});
  ASSERT_NE(result.find("makespan_ms_ci95"), nullptr);
  ASSERT_NE(result.find("gflops_ci95"), nullptr);
}

TEST(GraphScenario, RejectsAnEmptyModelFile) {
  const ScenarioRegistry registry = ScenarioRegistry::builtin();
  const Scenario* scenario = registry.find("graph");
  ASSERT_NE(scenario, nullptr);
  EXPECT_THROW((void)scenario->schema.bind({}), std::invalid_argument);
}

}  // namespace
}  // namespace maco::driver
