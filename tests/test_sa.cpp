// Systolic array: functional correctness against the reference GEMM and
// cycle-count agreement between the register-level simulation and the
// closed-form latency model.
#include <gtest/gtest.h>

#include "sa/host_matrix.hpp"
#include "sa/latency_model.hpp"
#include "sa/systolic_array.hpp"
#include "sa/tile_buffer.hpp"
#include "util/rng.hpp"

namespace maco::sa {
namespace {

HostMatrix run_and_check(const SaConfig& config, std::size_t m, std::size_t n,
                         std::size_t k, SaRunResult* result_out = nullptr) {
  util::Rng rng(m * 1000003 + n * 1009 + k);
  const HostMatrix a = HostMatrix::random(m, k, rng);
  const HostMatrix b = HostMatrix::random(k, n, rng);
  HostMatrix c = HostMatrix::random(m, n, rng);

  HostMatrix expected = c;
  reference_gemm(a, b, expected);

  SystolicArray array(config);
  HostMatrix actual = c;
  const SaRunResult result = array.run(a, b, actual);
  if (result_out) *result_out = result;
  EXPECT_TRUE(actual.approx_equal(expected, 1e-9))
      << m << "x" << n << "x" << k;
  return actual;
}

TEST(SystolicArray, SingleBlockExact) {
  run_and_check(SaConfig{}, 4, 4, 4);
}

TEST(SystolicArray, TileLargerThanArray) {
  run_and_check(SaConfig{}, 16, 16, 16);
}

TEST(SystolicArray, NonSquareShapes) {
  run_and_check(SaConfig{}, 8, 20, 12);
  run_and_check(SaConfig{}, 20, 8, 12);
  run_and_check(SaConfig{}, 12, 12, 32);
}

TEST(SystolicArray, RaggedEdges) {
  run_and_check(SaConfig{}, 5, 7, 9);
  run_and_check(SaConfig{}, 3, 3, 3);
  run_and_check(SaConfig{}, 1, 1, 1);
  run_and_check(SaConfig{}, 6, 13, 2);
}

TEST(SystolicArray, PaperInnerTile) {
  SaRunResult result;
  run_and_check(SaConfig{}, 64, 64, 64, &result);
  // 16 k-blocks × 16 n-blocks × 64 slots + skew + preload.
  const SaTiming timing =
      compute_sa_timing(TileShape{64, 64, 64}, SaConfig{});
  EXPECT_EQ(result.cycles, timing.total_cycles);
  EXPECT_GT(result.utilization, 0.99);  // steady-state dominated
}

TEST(SystolicArray, Fp32SimdMode) {
  SaConfig config;
  config.precision = Precision::kFp32;
  SaRunResult result;
  run_and_check(config, 32, 16, 16, &result);
  // 2-way SIMD halves the slot count vs FP64.
  SaConfig fp64 = config;
  fp64.precision = Precision::kFp64;
  const auto t32 = compute_sa_timing(TileShape{32, 16, 16}, config);
  const auto t64 = compute_sa_timing(TileShape{32, 16, 16}, fp64);
  EXPECT_LT(t32.total_cycles, t64.total_cycles);
  EXPECT_EQ(result.cycles, t32.total_cycles);
}

TEST(SystolicArray, Fp16SimdMode) {
  SaConfig config;
  config.precision = Precision::kFp16;
  run_and_check(config, 64, 8, 8);
}

TEST(SystolicArray, NonSquareArray) {
  SaConfig config;
  config.rows = 2;
  config.cols = 8;
  run_and_check(config, 16, 16, 16);
  config.rows = 8;
  config.cols = 2;
  run_and_check(config, 16, 16, 16);
}

TEST(SystolicArray, WithoutDoubleBufferingSlower) {
  SaConfig db{};
  SaConfig no_db{};
  no_db.double_buffered_b = false;
  const TileShape shape{64, 64, 64};
  const auto fast = compute_sa_timing(shape, db);
  const auto slow = compute_sa_timing(shape, no_db);
  EXPECT_GT(slow.total_cycles, fast.total_cycles);
  // 256 passes of 4-cycle preload exposed.
  EXPECT_EQ(slow.total_cycles - fast.total_cycles, 255u * 4u);
  run_and_check(no_db, 12, 12, 12);  // still functionally exact
}

// Property sweep: simulation and closed form agree cycle-for-cycle, and the
// functional result matches the reference, across a shape grid.
struct ShapeCase {
  std::size_t m, n, k;
  Precision precision;
};

class SaPropertyTest : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(SaPropertyTest, SimulationMatchesClosedFormAndReference) {
  const ShapeCase& shape = GetParam();
  SaConfig config;
  config.precision = shape.precision;
  SaRunResult result;
  run_and_check(config, shape.m, shape.n, shape.k, &result);
  const SaTiming timing = compute_sa_timing(
      TileShape{shape.m, shape.n, shape.k}, config);
  EXPECT_EQ(result.cycles, timing.total_cycles);
  EXPECT_DOUBLE_EQ(result.utilization, timing.utilization);
}

INSTANTIATE_TEST_SUITE_P(
    ShapeGrid, SaPropertyTest,
    ::testing::Values(
        ShapeCase{4, 4, 4, Precision::kFp64},
        ShapeCase{8, 8, 8, Precision::kFp64},
        ShapeCase{16, 4, 8, Precision::kFp64},
        ShapeCase{4, 16, 8, Precision::kFp64},
        ShapeCase{7, 9, 11, Precision::kFp64},
        ShapeCase{32, 32, 4, Precision::kFp64},
        ShapeCase{2, 2, 30, Precision::kFp64},
        ShapeCase{64, 64, 64, Precision::kFp64},
        ShapeCase{16, 16, 16, Precision::kFp32},
        ShapeCase{9, 5, 6, Precision::kFp32},
        ShapeCase{16, 16, 16, Precision::kFp16},
        ShapeCase{13, 4, 4, Precision::kFp16}),
    [](const ::testing::TestParamInfo<ShapeCase>& info) {
      const auto& s = info.param;
      return std::to_string(s.m) + "x" + std::to_string(s.n) + "x" +
             std::to_string(s.k) + "_" + precision_name(s.precision);
    });

TEST(LatencyModel, HazardPaddingForTinyPasses) {
  // m=1, single N block, many K blocks: the C-buffer RAW hazard forces
  // padded slots.
  const SaTiming t = compute_sa_timing(TileShape{1, 4, 64}, SaConfig{});
  EXPECT_GE(t.slots_per_pass, 4u);  // padded to p_rows / n_blocks
}

TEST(LatencyModel, UtilizationApproachesOneForTallTiles) {
  const SaTiming t =
      compute_sa_timing(TileShape{4096, 64, 64}, SaConfig{});
  EXPECT_GT(t.utilization, 0.995);
}

TEST(TileBuffer, PaperCapacityHoldsDoubleBufferedTile) {
  BufferSet buffers = BufferSet::maco_default();
  EXPECT_EQ(buffers.total_capacity(), 192u * 1024u);
  // One 64×64 FP64 tile = 32 KiB fits one bank.
  EXPECT_TRUE(buffers.a.tile_fits(64 * 64 * 8));
  EXPECT_FALSE(buffers.a.tile_fits(64 * 64 * 8 * 2 + 1));
}

TEST(TileBuffer, OccupancyAccounting) {
  TileBuffer buffer("b", 64 * 1024);
  EXPECT_TRUE(buffer.acquire(32 * 1024));
  EXPECT_FALSE(buffer.acquire(1024));  // bank is full (32 KiB bank)
  buffer.release(32 * 1024);
  EXPECT_TRUE(buffer.acquire(1024));
  EXPECT_EQ(buffer.high_water_bytes(), 32u * 1024u);
}

TEST(TileBuffer, BankSwap) {
  TileBuffer buffer("b", 64 * 1024);
  EXPECT_EQ(buffer.active_bank(), 0u);
  buffer.swap_banks();
  EXPECT_EQ(buffer.active_bank(), 1u);
  buffer.swap_banks();
  EXPECT_EQ(buffer.active_bank(), 0u);
}

}  // namespace
}  // namespace maco::sa

#include "sa/sparse.hpp"
#include "util/rng.hpp"

namespace maco::sa {
namespace {

TEST(Sparse24, PruningEnforcesStructureAndDensity) {
  util::Rng rng(17);
  HostMatrix m = HostMatrix::random(64, 48, rng);
  const double density = prune_2_4_rows(m);
  EXPECT_TRUE(is_2_4_sparse_rows(m));
  EXPECT_NEAR(density, 0.5, 1e-9);  // random data: always 2 kept of 4
}

TEST(Sparse24, PruningKeepsLargestMagnitudes) {
  HostMatrix m(4, 1);
  m.at(0, 0) = 0.1;
  m.at(1, 0) = -9.0;
  m.at(2, 0) = 3.0;
  m.at(3, 0) = 0.2;
  prune_2_4_rows(m);
  EXPECT_EQ(m.at(0, 0), 0.0);
  EXPECT_EQ(m.at(1, 0), -9.0);
  EXPECT_EQ(m.at(2, 0), 3.0);
  EXPECT_EQ(m.at(3, 0), 0.0);
}

TEST(Sparse24, RaggedGroupsStayDense) {
  util::Rng rng(18);
  HostMatrix m = HostMatrix::random(6, 3, rng);  // rows 4..5 are a tail
  prune_2_4_rows(m);
  EXPECT_TRUE(is_2_4_sparse_rows(m));
  int tail_nonzero = 0;
  for (std::size_t c = 0; c < 3; ++c) {
    if (m.at(4, c) != 0.0) ++tail_nonzero;
    if (m.at(5, c) != 0.0) ++tail_nonzero;
  }
  EXPECT_EQ(tail_nonzero, 6);  // tail untouched
}

TEST(Sparse24, TimingSpeedupBounded) {
  const SparseSaConfig config{};
  for (const std::uint64_t k : {64ull, 256ull, 1024ull}) {
    const auto timing =
        compute_sparse_sa_timing(TileShape{64, 64, k}, config);
    EXPECT_GT(timing.speedup, 1.2) << k;
    EXPECT_LE(timing.speedup, 2.0) << k;  // 2:4 can at most halve the work
    EXPECT_EQ(timing.k_compressed, k / 2);
  }
}

TEST(Sparse24, FunctionalGemmOnPrunedWeightsMatchesReference) {
  util::Rng rng(19);
  const auto a = HostMatrix::random(32, 64, rng);
  HostMatrix b = HostMatrix::random(64, 32, rng);
  prune_2_4_rows(b);  // weights pruned, then computed exactly
  SystolicArray array(SaConfig{});
  HostMatrix c(32, 32);
  array.run(a, b, c);
  HostMatrix expected(32, 32);
  reference_gemm(a, b, expected);
  EXPECT_TRUE(c.approx_equal(expected, 1e-9));
}

TEST(Sparse24, DegenerateGroupConfigs) {
  // 4:4 "sparsity" is dense: no compression, only overhead.
  SparseSaConfig dense_cfg;
  dense_cfg.kept = 4;
  const auto timing =
      compute_sparse_sa_timing(TileShape{64, 64, 256}, dense_cfg);
  EXPECT_EQ(timing.k_compressed, 256u);
  EXPECT_LE(timing.speedup, 1.0);
  // 1:4 compresses fourfold.
  SparseSaConfig quarter;
  quarter.kept = 1;
  const auto q = compute_sparse_sa_timing(TileShape{64, 64, 256}, quarter);
  EXPECT_EQ(q.k_compressed, 64u);
  EXPECT_GT(q.speedup, 2.0);
}

}  // namespace
}  // namespace maco::sa
