// The typed experiment API (src/exp/): parameter values, declarative
// schemas, fidelity backends and structured-result serialization.
#include <gtest/gtest.h>

#include <sstream>

#include "driver/scenario_registry.hpp"
#include "driver/sweep_runner.hpp"
#include "exp/backend.hpp"
#include "exp/param_schema.hpp"
#include "exp/param_value.hpp"
#include "exp/results.hpp"

namespace maco::exp {
namespace {

ParamSchema test_schema() {
  ParamSchema s;
  s.u64("size", 4096, "matrix size", 64, 65536);
  s.f64("efficiency", 0.72, "a ratio", 0.0, 1.0);
  s.flag("matlb", true, "a toggle");
  s.enumerant("precision", "fp64", {"fp64", "fp32", "fp16"}, "a choice");
  s.str("label", "none", "free text");
  return s;
}

// ---- ParamValue ----

TEST(ParamValue, TypedAccessorsAndCanonicalText) {
  EXPECT_EQ(ParamValue::u64(42).as_u64(), 42u);
  EXPECT_EQ(ParamValue::u64(42).to_string(), "42");
  EXPECT_DOUBLE_EQ(ParamValue::f64(0.5).as_f64(), 0.5);
  EXPECT_EQ(ParamValue::f64(0.5).to_string(), "0.5");
  EXPECT_EQ(ParamValue::f64(2.0).to_string(), "2");
  // Large integral doubles must not collapse into scientific notation
  // (parse(to_string()) round-trips).
  EXPECT_EQ(ParamValue::f64(12345678.0).to_string(), "12345678");
  EXPECT_TRUE(ParamValue::boolean(true).as_bool());
  EXPECT_EQ(ParamValue::boolean(false).to_string(), "false");
  EXPECT_EQ(ParamValue::enumerant("fp32").as_str(), "fp32");
  EXPECT_EQ(ParamValue::str("x").type(), ParamType::kString);
  EXPECT_EQ(ParamValue::enumerant("x").type(), ParamType::kEnum);
  // u64 widens to f64; everything else is strict.
  EXPECT_DOUBLE_EQ(ParamValue::u64(7).as_f64(), 7.0);
  EXPECT_THROW(ParamValue::u64(7).as_bool(), std::logic_error);
  EXPECT_THROW(ParamValue::boolean(true).as_u64(), std::logic_error);
  EXPECT_THROW(ParamValue::f64(1.5).as_str(), std::logic_error);
}

// ---- ParamSchema::parse (single-value validation) ----

TEST(ParamSchema, ParsesWellTypedValues) {
  const ParamSchema s = test_schema();
  EXPECT_EQ(s.parse("size", "128").as_u64(), 128u);
  EXPECT_DOUBLE_EQ(s.parse("efficiency", "0.9").as_f64(), 0.9);
  EXPECT_TRUE(s.parse("matlb", "on").as_bool());
  EXPECT_FALSE(s.parse("matlb", "0").as_bool());
  EXPECT_EQ(s.parse("precision", "fp16").as_str(), "fp16");
  EXPECT_EQ(s.parse("label", "anything at all").as_str(),
            "anything at all");
}

TEST(ParamSchema, RejectsWrongTypes) {
  const ParamSchema s = test_schema();
  EXPECT_THROW(s.parse("size", "big"), std::invalid_argument);
  EXPECT_THROW(s.parse("size", "12.5"), std::invalid_argument);
  EXPECT_THROW(s.parse("size", "-1"), std::invalid_argument);
  EXPECT_THROW(s.parse("efficiency", "fast"), std::invalid_argument);
  EXPECT_THROW(s.parse("matlb", "maybe"), std::invalid_argument);
}

TEST(ParamSchema, RejectsOutOfRangeValues) {
  const ParamSchema s = test_schema();
  EXPECT_THROW(s.parse("size", "63"), std::invalid_argument);
  EXPECT_THROW(s.parse("size", "65537"), std::invalid_argument);
  EXPECT_THROW(s.parse("efficiency", "1.01"), std::invalid_argument);
  EXPECT_THROW(s.parse("efficiency", "-0.5"), std::invalid_argument);
  // NaN compares false to any bound and must not slip through; infinities
  // are equally non-physical.
  EXPECT_THROW(s.parse("efficiency", "nan"), std::invalid_argument);
  EXPECT_THROW(s.parse("efficiency", "inf"), std::invalid_argument);
  // Boundary values are inclusive.
  EXPECT_EQ(s.parse("size", "64").as_u64(), 64u);
  EXPECT_DOUBLE_EQ(s.parse("efficiency", "1.0").as_f64(), 1.0);
}

TEST(ParamSchema, RejectsUnknownEnumChoiceAndUnknownName) {
  const ParamSchema s = test_schema();
  EXPECT_THROW(s.parse("precision", "fp8"), std::invalid_argument);
  EXPECT_THROW(s.parse("precision", "FP64"), std::invalid_argument);
  EXPECT_THROW(s.parse("no_such_param", "1"), std::invalid_argument);
  // The diagnostic names the parameter and the expectation.
  try {
    s.parse("precision", "fp8");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("precision"), std::string::npos);
    EXPECT_NE(what.find("fp64|fp32|fp16"), std::string::npos);
  }
}

TEST(ParamSchema, EnumDefaultMustBeAChoice) {
  ParamSchema s;
  EXPECT_THROW(s.enumerant("mode", "turbo", {"slow", "fast"}, ""),
               std::logic_error);
}

TEST(ParamSchema, RejectsOutOfRangeDefaultsAtDeclaration) {
  ParamSchema s;
  EXPECT_THROW(s.u64("batch", 0, "", 1, 4096), std::logic_error);
  EXPECT_THROW(s.u64("huge", 5000, "", 1, 4096), std::logic_error);
  EXPECT_THROW(s.f64("eff", 1.5, "", 0.0, 1.0), std::logic_error);
}

TEST(ParamSchema, RejectsDuplicateDeclarations) {
  ParamSchema s;
  s.u64("size", 1, "");
  EXPECT_THROW(s.u64("size", 2, ""), std::logic_error);
  ParamSchema other;
  other.u64("size", 3, "");
  EXPECT_THROW(s.merge(other), std::logic_error);
}

// ---- ParamSchema::bind (whole-map validation + defaults) ----

TEST(ParamSchema, BindFillsDefaultsAndTracksExplicitKeys) {
  const ParamSchema s = test_schema();
  const ParamSet set = s.bind({{"size", "128"}, {"precision", "fp32"}});
  EXPECT_EQ(set.u64("size"), 128u);
  EXPECT_EQ(set.str("precision"), "fp32");
  // Defaults fill the rest.
  EXPECT_DOUBLE_EQ(set.f64("efficiency"), 0.72);
  EXPECT_TRUE(set.flag("matlb"));
  EXPECT_EQ(set.str("label"), "none");
  // Explicitness is tracked (hardware knobs only apply explicit values).
  EXPECT_TRUE(set.was_set("size"));
  EXPECT_FALSE(set.was_set("efficiency"));
}

TEST(ParamSchema, BindRejectsUnknownKeysAndBadValues) {
  const ParamSchema s = test_schema();
  EXPECT_THROW(s.bind({{"typo", "1"}}), std::invalid_argument);
  EXPECT_THROW(s.bind({{"size", "banana"}}), std::invalid_argument);
}

TEST(ParamSchema, CrossFieldConstraintEnforcedAtBind) {
  ParamSchema s;
  s.u64("kept", 2, "nonzeros kept", 1, 64);
  s.u64("group", 4, "group size", 1, 64);
  s.constrain("kept <= group", [](const ParamSet& p) {
    return p.u64("kept") <= p.u64("group");
  });
  EXPECT_NO_THROW(s.bind({{"kept", "4"}, {"group", "4"}}));
  // The diagnostic names the violated rule.
  try {
    s.bind({{"kept", "8"}, {"group", "4"}});
    FAIL() << "expected a constraint violation";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("kept <= group"),
              std::string::npos);
  }
  // Constraints see defaults too: an explicit value clashing with a
  // defaulted one is caught.
  EXPECT_THROW(s.bind({{"kept", "8"}}), std::invalid_argument);
  EXPECT_NO_THROW(s.defaults());
}

TEST(ParamSchema, MergeCopiesConstraints) {
  ParamSchema a;
  a.u64("lo", 1, "lower", 0, 100);
  a.u64("hi", 2, "upper", 0, 100);
  a.constrain("lo <= hi", [](const ParamSet& p) {
    return p.u64("lo") <= p.u64("hi");
  });
  ParamSchema b;
  b.merge(a);
  ASSERT_EQ(b.constraints().size(), 1u);
  EXPECT_EQ(b.constraints()[0].rule, "lo <= hi");
  EXPECT_THROW(b.bind({{"lo", "5"}, {"hi", "3"}}), std::invalid_argument);
}

TEST(ParamSchema, ConstraintNeedsAPredicate) {
  ParamSchema s;
  EXPECT_THROW(s.constrain("empty", nullptr), std::logic_error);
}

TEST(ParamSet, AccessorsThrowOnUndeclaredOrMistypedNames) {
  const ParamSet set = test_schema().defaults();
  EXPECT_THROW(set.u64("absent"), std::logic_error);
  EXPECT_THROW(set.u64("matlb"), std::logic_error);   // bool, not u64
  EXPECT_THROW(set.flag("size"), std::logic_error);   // u64, not bool
}

// ---- fidelity backends ----

TEST(Backend, NamesRoundTrip) {
  EXPECT_EQ(fidelity_name(Fidelity::kAnalytic), "analytic");
  EXPECT_EQ(fidelity_name(Fidelity::kDetailed), "detailed");
  EXPECT_EQ(parse_fidelity("analytic"), Fidelity::kAnalytic);
  EXPECT_EQ(parse_fidelity("detailed"), Fidelity::kDetailed);
  EXPECT_THROW(parse_fidelity("cycle_exact"), std::invalid_argument);
}

TEST(Backend, FactoryProducesMatchingFidelity) {
  const core::SystemConfig config = core::SystemConfig::maco_default();
  EXPECT_EQ(make_backend(Fidelity::kAnalytic, config)->fidelity(),
            Fidelity::kAnalytic);
  EXPECT_EQ(make_backend(Fidelity::kDetailed, config)->fidelity(),
            Fidelity::kDetailed);
}

TEST(Backend, DetailedRejectsAnalyticOnlyOptionsWithTypedErrors) {
  const core::SystemConfig config = core::SystemConfig::maco_default();
  const auto detailed = make_backend(Fidelity::kDetailed, config);
  core::TimingOptions options;
  options.shape = sa::TileShape{128, 128, 128};
  options.active_nodes = 1;

  core::TimingOptions bad = options;
  bad.cooperative = true;
  EXPECT_THROW(detailed->run(bad), std::invalid_argument);
  bad = options;
  bad.use_stash_lock = false;
  EXPECT_THROW(detailed->run(bad), std::invalid_argument);
  bad = options;
  bad.shape = sa::TileShape{4096, 4096, 4096};  // beyond the detailed cap
  EXPECT_THROW(detailed->run(bad), std::invalid_argument);
  bad = options;
  bad.engine_overlap = 0.5;  // baseline-model knob
  EXPECT_THROW(detailed->run(bad), std::invalid_argument);
}

// Analytic and detailed backends must agree on a small GEMM within the
// cross-validation tolerance already asserted in test_crossvalidation.cpp
// (12 percentage points of efficiency; both high on a compute-bound size).
TEST(Backend, AnalyticAndDetailedAgreeOnSmallGemm) {
  const core::SystemConfig config = core::SystemConfig::maco_default();
  const auto analytic = make_backend(Fidelity::kAnalytic, config);
  const auto detailed = make_backend(Fidelity::kDetailed, config);
  core::TimingOptions options;
  options.shape = sa::TileShape{256, 256, 256};
  options.active_nodes = 1;
  const double analytic_eff = analytic->run(options).mean_efficiency;
  const double detailed_eff = detailed->run(options).mean_efficiency;
  EXPECT_NEAR(detailed_eff, analytic_eff, 0.12)
      << "detailed " << detailed_eff << " vs analytic " << analytic_eff;
  EXPECT_GT(detailed_eff, 0.80);
  EXPECT_GT(analytic_eff, 0.80);
}

// The same agreement must hold end to end through the driver: one sweep
// with a fidelity axis, identical scenario parameters per point.
TEST(Backend, FidelitySweepAgreesThroughTheDriver) {
  const driver::ScenarioRegistry registry =
      driver::ScenarioRegistry::builtin();
  driver::SweepRequest request;
  request.scenario = "gemm";
  request.base_params = {{"size", "256"}, {"nodes", "1"}};
  request.axes = {{"fidelity", {"analytic", "detailed"}}};
  const driver::SweepResults results = run_sweep(registry, request);
  ASSERT_EQ(results.rows.size(), 2u);
  ASSERT_EQ(results.failures(), 0u) << results.rows[0].error
                                    << results.rows[1].error;
  const Metric* analytic = results.rows[0].result.find("mean_efficiency");
  const Metric* detailed = results.rows[1].result.find("mean_efficiency");
  ASSERT_NE(analytic, nullptr);
  ASSERT_NE(detailed, nullptr);
  EXPECT_NEAR(detailed->value, analytic->value, 0.12);
}

TEST(Backend, DetailedRunsMultipleIndependentNodes) {
  const core::SystemConfig config = core::SystemConfig::maco_default();
  const auto detailed = make_backend(Fidelity::kDetailed, config);
  core::TimingOptions options;
  options.shape = sa::TileShape{128, 128, 128};
  options.active_nodes = 2;
  const core::SystemTiming timing = detailed->run(options);
  ASSERT_EQ(timing.nodes.size(), 2u);
  // A 128^3 GEMM is cold-start and contention dominated; just require both
  // nodes to have genuinely computed (the agreement test covers accuracy).
  EXPECT_GT(timing.nodes[0].efficiency, 0.25);
  EXPECT_GT(timing.nodes[1].efficiency, 0.25);
  // Two nodes deliver more aggregate throughput than either alone.
  EXPECT_GT(timing.total_gflops, timing.nodes[0].gflops);
}

TEST(Backend, DetailedRunLayersAccumulatesAcrossLayers) {
  const core::SystemConfig config = core::SystemConfig::maco_default();
  const auto detailed = make_backend(Fidelity::kDetailed, config);
  core::TimingOptions options;
  options.active_nodes = 1;
  const sa::TileShape layer{128, 128, 128};

  options.shape = layer;
  const core::SystemTiming once = detailed->run(options);
  const core::SystemTiming twice = detailed->run_layers({layer, layer},
                                                        options);
  ASSERT_EQ(twice.nodes.size(), 1u);
  // Two identical layers double the work and the elapsed time; efficiency
  // and translation stats describe the whole sequence, not the last layer.
  EXPECT_EQ(twice.nodes[0].macs, 2 * once.nodes[0].macs);
  EXPECT_GT(twice.makespan_ps, once.makespan_ps);
  EXPECT_NEAR(twice.mean_efficiency, once.mean_efficiency, 0.05);
  EXPECT_NEAR(twice.translation.pages_per_tile,
              once.translation.pages_per_tile,
              0.01 * once.translation.pages_per_tile + 0.01);
}

// ---- structured results + golden serialization ----

TEST(Results, MetricLookupAndFormatting) {
  ScenarioResult result;
  result.add("gflops", 123.456789012345, "GFLOP/s");
  result.add("makespan_ms", 2.0, "ms", /*higher_is_better=*/false);
  ASSERT_NE(result.find("gflops"), nullptr);
  EXPECT_EQ(result.find("gflops")->unit, "GFLOP/s");
  EXPECT_FALSE(result.find("makespan_ms")->higher_is_better);
  EXPECT_EQ(result.find("nope"), nullptr);
  EXPECT_EQ(format_metric_value(2.0), "2");
  EXPECT_EQ(format_metric_value(123.456789012345), "123.456789");
  EXPECT_EQ(format_metric_value(-8.0), "-8");
}

driver::SweepResults golden_results() {
  driver::SweepResults results;
  results.scenario = "golden";
  results.param_columns = {"size"};
  results.metric_columns = {{"gflops", "GFLOP/s", true},
                            {"makespan_ms", "ms", false}};
  driver::SweepRow row0;
  row0.index = 0;
  row0.params = {{"size", "256"}};
  row0.result.add("gflops", 80.25, "GFLOP/s");
  row0.result.add("makespan_ms", 0.5, "ms", false);
  driver::SweepRow row1;
  row1.index = 1;
  row1.params = {{"size", "512"}};
  row1.error = "deliberate failure";
  results.rows = {row0, row1};
  return results;
}

TEST(Results, GoldenCsv) {
  std::ostringstream out;
  driver::write_csv(out, golden_results());
  EXPECT_EQ(out.str(),
            "size,gflops,makespan_ms,error\n"
            "256,80.25,0.5,\n"
            "512,,,deliberate failure\n");
}

TEST(Results, GoldenJson) {
  std::ostringstream out;
  driver::write_json(out, golden_results());
  EXPECT_EQ(
      out.str(),
      "{\"scenario\":\"golden\",\"columns\":["
      "{\"name\":\"gflops\",\"unit\":\"GFLOP/s\",\"higher_is_better\":true},"
      "{\"name\":\"makespan_ms\",\"unit\":\"ms\",\"higher_is_better\":false}"
      "],\"rows\":["
      "{\"params\":{\"size\":\"256\"},"
      "\"metrics\":{\"gflops\":80.25,\"makespan_ms\":0.5}},"
      "{\"params\":{\"size\":\"512\"},\"metrics\":{},"
      "\"error\":\"deliberate failure\"}"
      "]}\n");
}

TEST(Results, JsonEscapesControlCharacters) {
  EXPECT_EQ(json_escape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

}  // namespace
}  // namespace maco::exp
