// The campaign store (src/store/): fingerprints, the append-only binary
// format and its torn-tail recovery, concurrent-writer serialization, and
// the query/compare layer behind `macosim report`.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <thread>

#include "store/campaign_store.hpp"
#include "store/fingerprint.hpp"
#include "store/query.hpp"

namespace maco::store {
namespace {

namespace fs = std::filesystem;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

exp::Metric gflops(double value) {
  return exp::Metric{"gflops", value, "GFLOP/s", true};
}

CampaignRecord make_record(const std::string& scenario,
                           std::map<std::string, std::string> params,
                           std::set<std::string> explicit_params,
                           std::vector<exp::Metric> metrics,
                           std::string error = {}) {
  CampaignRecord record;
  record.scenario = scenario;
  record.params = std::move(params);
  record.explicit_params = std::move(explicit_params);
  record.metrics = std::move(metrics);
  record.error = std::move(error);
  record.schema_hash = 0xabcdefull;
  record.wall_ms = 1.5;
  record.fingerprint = record.computed_fingerprint();
  return record;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(contents.data(),
            static_cast<std::streamsize>(contents.size()));
}

// ---- fingerprints ----

TEST(Fingerprint, CanonicalTextIsSortedAndMarksExplicitParams) {
  const std::string text = canonical_point_text(
      "gemm", {{"size", "512"}, {"nodes", "4"}}, {"size"});
  EXPECT_EQ(text, "gemm\nnodes=4\nsize=512!\n");
}

TEST(Fingerprint, MetacharactersInValuesCannotForgeIdentities) {
  // A value ending in '!' must not alias the explicitness marker...
  EXPECT_NE(point_fingerprint("s", {{"k", "v!"}}, {}),
            point_fingerprint("s", {{"k", "v"}}, {"k"}));
  // ...and embedded '\n'/'=' must not forge extra key=value lines.
  EXPECT_NE(point_fingerprint("s", {{"k", "v\nx=1"}}, {}),
            point_fingerprint("s", {{"k", "v"}, {"x", "1"}}, {}));
  EXPECT_NE(point_fingerprint("s", {{"k", "a=b"}}, {}),
            point_fingerprint("s", {{"k=a", "b"}}, {}));
  // Escaping round-trips: equal inputs still hash equal.
  EXPECT_EQ(point_fingerprint("s", {{"k", "a\\!b"}}, {}),
            point_fingerprint("s", {{"k", "a\\!b"}}, {}));
}

TEST(Fingerprint, ExplicitnessIsPartOfTheIdentity) {
  // `nodes` explicitly 16 and `nodes` defaulted to 16 can behave
  // differently (the default follows node_count), so they must not share a
  // fingerprint.
  const std::map<std::string, std::string> params = {{"nodes", "16"}};
  EXPECT_NE(point_fingerprint("gemm", params, {"nodes"}),
            point_fingerprint("gemm", params, {}));
}

TEST(Fingerprint, IgnoredKeysDropOutOfTheIdentity) {
  const std::map<std::string, std::string> a = {{"size", "512"},
                                                {"dram_efficiency", "0.72"}};
  const std::map<std::string, std::string> b = {{"size", "512"},
                                                {"dram_efficiency", "0.3"}};
  EXPECT_NE(point_fingerprint("gemm", a, {}), point_fingerprint("gemm", b, {}));
  EXPECT_EQ(point_fingerprint("gemm", a, {}, {"dram_efficiency"}),
            point_fingerprint("gemm", b, {}, {"dram_efficiency"}));
}

TEST(Fingerprint, SchemaDigestTracksDeclarationsAndConstraints) {
  exp::ParamSchema a;
  a.u64("size", 4096, "dim", 1, 65536);
  exp::ParamSchema same;
  same.u64("size", 4096, "dim", 1, 65536);
  EXPECT_EQ(schema_digest(a), schema_digest(same));

  exp::ParamSchema wider;
  wider.u64("size", 4096, "dim", 1, 1048576);
  EXPECT_NE(schema_digest(a), schema_digest(wider));

  exp::ParamSchema constrained;
  constrained.u64("size", 4096, "dim", 1, 65536);
  constrained.constrain("size even",
                        [](const exp::ParamSet&) { return true; });
  EXPECT_NE(schema_digest(a), schema_digest(constrained));
}

// ---- record serialization ----

TEST(Record, EncodeDecodeRoundTripsEveryField) {
  const CampaignRecord record = make_record(
      "ext_sparsity", {{"kept", "2"}, {"group", "4"}, {"note", "a,\"b\"\n"}},
      {"kept"},
      {{"speedup", 1.875, "x", true},
       {"sparse_cycles", 1.0e12, "cycles", false}},
      "tile 3 failed: \"overflow\"");
  const CampaignRecord decoded = decode_record(encode_record(record));
  EXPECT_EQ(decoded.fingerprint, record.fingerprint);
  EXPECT_EQ(decoded.schema_hash, record.schema_hash);
  EXPECT_EQ(decoded.scenario, record.scenario);
  EXPECT_EQ(decoded.params, record.params);
  EXPECT_EQ(decoded.explicit_params, record.explicit_params);
  ASSERT_EQ(decoded.metrics.size(), 2u);
  EXPECT_EQ(decoded.metrics[0].name, "speedup");
  EXPECT_DOUBLE_EQ(decoded.metrics[0].value, 1.875);
  EXPECT_EQ(decoded.metrics[0].unit, "x");
  EXPECT_TRUE(decoded.metrics[0].higher_is_better);
  EXPECT_FALSE(decoded.metrics[1].higher_is_better);
  EXPECT_EQ(decoded.error, record.error);
  EXPECT_DOUBLE_EQ(decoded.wall_ms, record.wall_ms);
}

TEST(Record, DecodeRejectsTruncatedPayloads) {
  const std::string payload = encode_record(
      make_record("gemm", {{"size", "512"}}, {"size"}, {gflops(80.0)}));
  for (const std::size_t keep : {payload.size() - 1, payload.size() / 2,
                                 std::size_t{3}, std::size_t{0}}) {
    EXPECT_THROW(decode_record(payload.substr(0, keep)),
                 std::runtime_error)
        << "kept " << keep << " of " << payload.size();
  }
  EXPECT_THROW(decode_record(payload + "x"), std::runtime_error);
}

// ---- the store file ----

TEST(CampaignStore, AppendReopenRoundTrip) {
  const std::string path = temp_path("store_roundtrip.mdb");
  std::remove(path.c_str());
  const CampaignRecord a = make_record("gemm", {{"size", "512"}}, {"size"},
                                       {gflops(80.0)});
  const CampaignRecord b = make_record("gemm", {{"size", "1024"}}, {"size"},
                                       {gflops(320.0)});
  const CampaignRecord failed =
      make_record("gemm", {{"size", "2048"}}, {"size"}, {}, "boom");
  {
    CampaignStore db(path);
    EXPECT_EQ(db.size(), 0u);
    db.append(a);
    db.append(b);
    db.append(failed);
    EXPECT_TRUE(db.contains(a.fingerprint, a.schema_hash));
  }
  CampaignStore db(path);
  EXPECT_EQ(db.recovered_dropped_bytes(), 0u);
  ASSERT_EQ(db.size(), 3u);
  EXPECT_EQ(db.records()[1].params.at("size"), "1024");
  EXPECT_TRUE(db.contains(a.fingerprint, a.schema_hash));
  // Wrong schema hash => no resume hit.
  EXPECT_FALSE(db.contains(a.fingerprint, a.schema_hash + 1));
  // Failed points are recorded but never satisfy resume lookups.
  EXPECT_FALSE(db.contains(failed.fingerprint, failed.schema_hash));
  CampaignRecord copy;
  ASSERT_TRUE(db.lookup(b.fingerprint, b.schema_hash, copy));
  ASSERT_EQ(copy.metrics.size(), 1u);
  EXPECT_DOUBLE_EQ(copy.metrics[0].value, 320.0);
}

TEST(CampaignStore, SchemaVersionsDoNotShadowEachOther) {
  // The same point recorded under two schema versions: rolling back to
  // the first schema must still hit its record instead of re-running the
  // whole campaign every time the version alternates.
  const std::string path = temp_path("store_twoschemas.mdb");
  std::remove(path.c_str());
  CampaignStore db(path);
  CampaignRecord under_a = make_record("gemm", {{"size", "512"}}, {"size"},
                                       {gflops(80.0)});
  CampaignRecord under_b = under_a;
  under_b.schema_hash = under_a.schema_hash + 1;
  db.append(under_a);
  db.append(under_b);
  EXPECT_TRUE(db.contains(under_a.fingerprint, under_a.schema_hash));
  EXPECT_TRUE(db.contains(under_b.fingerprint, under_b.schema_hash));
  const CampaignRecord* found =
      db.find(under_a.fingerprint, under_a.schema_hash);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->schema_hash, under_a.schema_hash);
}

TEST(CampaignStore, FindPrefersTheLatestRecord) {
  const std::string path = temp_path("store_latest.mdb");
  std::remove(path.c_str());
  CampaignStore db(path);
  CampaignRecord first = make_record("gemm", {{"size", "512"}}, {"size"},
                                     {gflops(80.0)});
  CampaignRecord second = first;
  second.metrics[0].value = 90.0;
  db.append(first);
  db.append(second);
  const CampaignRecord* found = db.find(first.fingerprint,
                                        first.schema_hash);
  ASSERT_NE(found, nullptr);
  EXPECT_DOUBLE_EQ(found->metrics[0].value, 90.0);
}

TEST(CampaignStore, AppendRejectsMismatchedFingerprint) {
  const std::string path = temp_path("store_badfp.mdb");
  std::remove(path.c_str());
  CampaignStore db(path);
  CampaignRecord record = make_record("gemm", {{"size", "512"}}, {"size"},
                                      {gflops(80.0)});
  record.fingerprint ^= 1;
  EXPECT_THROW(db.append(record), std::logic_error);
}

TEST(CampaignStore, RejectsForeignFilesAndMissingReadOnlyStores) {
  const std::string path = temp_path("store_foreign.mdb");
  write_file(path, "definitely,not,a,campaign,store\n1,2,3\n");
  EXPECT_THROW(CampaignStore db(path), std::runtime_error);
  EXPECT_THROW(
      CampaignStore db(temp_path("store_nonexistent.mdb"),
                       CampaignStore::Mode::kReadOnly),
      std::runtime_error);
}

TEST(CampaignStore, ReadOnlyStoreRefusesAppends) {
  const std::string path = temp_path("store_readonly.mdb");
  std::remove(path.c_str());
  const CampaignRecord record = make_record(
      "gemm", {{"size", "512"}}, {"size"}, {gflops(80.0)});
  { CampaignStore(path).append(record); }
  CampaignStore db(path, CampaignStore::Mode::kReadOnly);
  EXPECT_EQ(db.size(), 1u);
  EXPECT_THROW(db.append(record), std::runtime_error);
}

TEST(CampaignStore, RecoversEveryTruncationPointMidRecord) {
  // A campaign killed mid-write must recover every complete record no
  // matter where in the in-flight frame the cut lands.
  const std::string path = temp_path("store_truncate.mdb");
  std::remove(path.c_str());
  {
    CampaignStore db(path);
    db.append(make_record("gemm", {{"size", "512"}}, {"size"},
                          {gflops(80.0)}));
    db.append(make_record("gemm", {{"size", "1024"}}, {"size"},
                          {gflops(320.0)}));
  }
  const std::string intact = read_file(path);
  // A sibling store holding only record one marks where record two's frame
  // begins.
  const std::size_t after_first = [&] {
    const std::string one = temp_path("store_truncate_one.mdb");
    std::remove(one.c_str());
    CampaignStore db(one);
    db.append(make_record("gemm", {{"size", "512"}}, {"size"},
                          {gflops(80.0)}));
    return read_file(one).size();
  }();
  ASSERT_GT(intact.size(), after_first);

  const std::string cut_path = temp_path("store_truncate_cut.mdb");
  for (std::size_t cut = after_first + 1; cut < intact.size(); ++cut) {
    write_file(cut_path, intact.substr(0, cut));
    CampaignStore recovered(cut_path);
    ASSERT_EQ(recovered.size(), 1u) << "cut at byte " << cut;
    EXPECT_EQ(recovered.records()[0].params.at("size"), "512");
    EXPECT_EQ(recovered.recovered_dropped_bytes(), cut - after_first);
    // The torn tail was truncated away: appending now yields a clean
    // two-record store.
    recovered.append(make_record("gemm", {{"size", "4096"}}, {"size"},
                                 {gflops(1000.0)}));
    CampaignStore reread(cut_path, CampaignStore::Mode::kReadOnly);
    ASSERT_EQ(reread.size(), 2u) << "cut at byte " << cut;
    EXPECT_EQ(reread.records()[1].params.at("size"), "4096");
    EXPECT_EQ(reread.recovered_dropped_bytes(), 0u);
  }
}

TEST(CampaignStore, ReadOnlyRecoveryLeavesTheFileUntouched) {
  const std::string path = temp_path("store_ro_torn.mdb");
  std::remove(path.c_str());
  {
    CampaignStore db(path);
    db.append(make_record("gemm", {{"size", "512"}}, {"size"},
                          {gflops(80.0)}));
  }
  const std::string torn = read_file(path) + "torn-tail-bytes";
  write_file(path, torn);
  CampaignStore db(path, CampaignStore::Mode::kReadOnly);
  EXPECT_EQ(db.size(), 1u);
  EXPECT_GT(db.recovered_dropped_bytes(), 0u);
  EXPECT_EQ(read_file(path).size(), torn.size());
}

TEST(CampaignStore, CorruptChecksumDropsTheTail) {
  const std::string path = temp_path("store_corrupt.mdb");
  std::remove(path.c_str());
  {
    CampaignStore db(path);
    db.append(make_record("gemm", {{"size", "512"}}, {"size"},
                          {gflops(80.0)}));
    db.append(make_record("gemm", {{"size", "1024"}}, {"size"},
                          {gflops(320.0)}));
  }
  std::string contents = read_file(path);
  contents[contents.size() - 12] ^= 0x5a;  // inside record 2's payload
  write_file(path, contents);
  CampaignStore db(path);
  EXPECT_EQ(db.size(), 1u);
  EXPECT_GT(db.recovered_dropped_bytes(), 0u);
}

TEST(CampaignStore, ConcurrentWritersSerializeCleanly) {
  const std::string path = temp_path("store_concurrent.mdb");
  std::remove(path.c_str());
  constexpr unsigned kThreads = 8;
  constexpr unsigned kPerThread = 25;
  {
    CampaignStore db(path);
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
      threads.emplace_back([&db, t] {
        for (unsigned i = 0; i < kPerThread; ++i) {
          const std::string size =
              std::to_string(1000u * (t + 1) + i);
          db.append(make_record("gemm", {{"size", size}}, {"size"},
                                {gflops(1.0 * t + i)}));
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    EXPECT_EQ(db.size(), kThreads * kPerThread);
  }
  CampaignStore db(path);
  EXPECT_EQ(db.recovered_dropped_bytes(), 0u);
  ASSERT_EQ(db.size(), kThreads * kPerThread);
  // Every append must be present and intact exactly once.
  std::set<std::string> sizes;
  for (const CampaignRecord& record : db.records()) {
    EXPECT_TRUE(sizes.insert(record.params.at("size")).second);
  }
  for (unsigned t = 0; t < kThreads; ++t) {
    for (unsigned i = 0; i < kPerThread; ++i) {
      EXPECT_EQ(sizes.count(std::to_string(1000u * (t + 1) + i)), 1u);
    }
  }
}

TEST(CampaignStore, CreatesMissingParentDirectories) {
  const std::string dir = temp_path("store_nested");
  fs::remove_all(dir);
  const std::string path = dir + "/deep/campaign.mdb";
  CampaignStore db(path);
  db.append(make_record("gemm", {{"size", "512"}}, {"size"},
                        {gflops(80.0)}));
  EXPECT_TRUE(fs::exists(path));
  fs::remove_all(dir);
}

// ---- query / report ----

std::vector<const CampaignRecord*> pointers(
    const std::vector<CampaignRecord>& records) {
  std::vector<const CampaignRecord*> result;
  for (const CampaignRecord& record : records) result.push_back(&record);
  return result;
}

std::vector<CampaignRecord> sample_campaign() {
  std::vector<CampaignRecord> records;
  for (const char* size : {"512", "1024"}) {
    for (const char* nodes : {"1", "16"}) {
      records.push_back(make_record(
          "gemm",
          {{"size", size}, {"nodes", nodes}, {"precision", "fp64"}},
          {"size", "nodes"},
          {{"gflops", 80.0 * std::stod(nodes), "GFLOP/s", true},
           {"makespan_ms", 3.0 / std::stod(nodes), "ms", false}}));
    }
  }
  return records;
}

TEST(Query, SelectFiltersByParamAndScenario) {
  const std::vector<CampaignRecord> records = sample_campaign();
  EXPECT_EQ(select(records, {}).size(), 4u);
  EXPECT_EQ(select(records, {{"nodes", "16"}}).size(), 2u);
  EXPECT_EQ(select(records, {{"nodes", "16"}, {"size", "512"}}).size(), 1u);
  EXPECT_EQ(select(records, {{"scenario", "gemm"}}).size(), 4u);
  EXPECT_EQ(select(records, {{"scenario", "hpl"}}).size(), 0u);
  EXPECT_EQ(select(records, {{"no_such_key", "1"}}).size(), 0u);
}

TEST(Query, BuildTableSplitsFixedAndVaryingParams) {
  const std::vector<CampaignRecord> records = sample_campaign();
  const CampaignTable table = build_table(pointers(records));
  // precision never varies; size and nodes do.
  EXPECT_EQ(table.fixed_params.at("precision"), "fp64");
  EXPECT_EQ(table.param_columns,
            (std::vector<std::string>{"nodes", "size"}));
  ASSERT_EQ(table.metric_columns.size(), 2u);
  EXPECT_EQ(table.metric_columns[0].name, "gflops");
  EXPECT_FALSE(table.metric_columns[1].higher_is_better);
  EXPECT_EQ(table.rows.size(), 4u);

  const CampaignTable only_gflops =
      build_table(pointers(records), {"gflops"});
  ASSERT_EQ(only_gflops.metric_columns.size(), 1u);
  EXPECT_EQ(only_gflops.metric_columns[0].name, "gflops");
}

TEST(Query, WritesCsvJsonAndMarkdown) {
  const std::vector<CampaignRecord> records = sample_campaign();
  const CampaignTable table = build_table(pointers(records));

  std::ostringstream csv;
  write_table(csv, table, ReportFormat::kCsv);
  // Header carries fixed params first, then varying, then metrics.
  EXPECT_EQ(csv.str().rfind(
                "precision,nodes,size,gflops,makespan_ms,error\n", 0),
            0u);
  EXPECT_NE(csv.str().find("\nfp64,16,512,1280,0.1875,\n"),
            std::string::npos);

  std::ostringstream json;
  write_table(json, table, ReportFormat::kJson);
  EXPECT_NE(json.str().find("\"fixed_params\":{\"precision\":\"fp64\"}"),
            std::string::npos);
  EXPECT_NE(json.str().find("\"gflops\":1280"), std::string::npos);
  EXPECT_NE(json.str().find("\"higher_is_better\":false"),
            std::string::npos);

  std::ostringstream md;
  write_table(md, table, ReportFormat::kMarkdown);
  EXPECT_NE(md.str().find("`precision=fp64`"), std::string::npos);
  EXPECT_NE(md.str().find("| nodes | size |"), std::string::npos);
  EXPECT_NE(md.str().find("| 1280 |"), std::string::npos);
}

TEST(Compare, FlagsInjectedRegressionDirectionAware) {
  const std::vector<CampaignRecord> baseline = sample_campaign();
  std::vector<CampaignRecord> current = sample_campaign();
  // Inject: at size=1024/nodes=16, throughput drops 10% AND makespan (a
  // lower-is-better metric) rises 10% — both must flag.
  for (CampaignRecord& record : current) {
    if (record.params.at("size") == "1024" &&
        record.params.at("nodes") == "16") {
      record.metrics[0].value *= 0.9;
      record.metrics[1].value *= 1.1;
    }
  }
  CompareOptions options;
  options.tolerance = 0.02;
  const CampaignComparison comparison = compare_campaigns(
      pointers(current), pointers(baseline), options);
  EXPECT_EQ(comparison.points.size(), 4u);
  EXPECT_EQ(comparison.regressions(), 2u);
  EXPECT_EQ(comparison.improvements(), 0u);
  for (const PointComparison& point : comparison.points) {
    const bool injected = point.current->params.at("size") == "1024" &&
                          point.current->params.at("nodes") == "16";
    for (const MetricDelta& delta : point.deltas) {
      EXPECT_EQ(delta.regression, injected) << delta.metric;
    }
  }
  // A looser tolerance swallows the 10% deltas.
  options.tolerance = 0.15;
  EXPECT_EQ(compare_campaigns(pointers(current), pointers(baseline),
                              options)
                .regressions(),
            0u);
}

TEST(Compare, ImprovementsAndMissingPointsAreCounted) {
  std::vector<CampaignRecord> baseline = sample_campaign();
  std::vector<CampaignRecord> current = sample_campaign();
  current[0].metrics[0].value *= 2.0;  // faster => improvement
  baseline.pop_back();                 // one point missing from baseline
  CompareOptions options;
  const CampaignComparison comparison = compare_campaigns(
      pointers(current), pointers(baseline), options);
  EXPECT_EQ(comparison.points.size(), 3u);
  EXPECT_EQ(comparison.regressions(), 0u);
  EXPECT_EQ(comparison.improvements(), 1u);
  EXPECT_EQ(comparison.current_only, 1u);
  EXPECT_EQ(comparison.baseline_only, 0u);
}

TEST(Compare, IgnoreKeysMatchAcrossAnABKnob) {
  // Two campaigns differing only in dram_efficiency: without --ignore they
  // share no points; with it every point pairs up.
  std::vector<CampaignRecord> baseline;
  std::vector<CampaignRecord> current;
  for (const char* size : {"512", "1024"}) {
    baseline.push_back(make_record(
        "gemm", {{"size", size}, {"dram_efficiency", "0.72"}},
        {"size", "dram_efficiency"}, {gflops(100.0)}));
    current.push_back(make_record(
        "gemm", {{"size", size}, {"dram_efficiency", "0.3"}},
        {"size", "dram_efficiency"}, {gflops(60.0)}));
  }
  CompareOptions options;
  EXPECT_EQ(compare_campaigns(pointers(current), pointers(baseline),
                              options)
                .points.size(),
            0u);
  options.ignore = {"dram_efficiency"};
  const CampaignComparison comparison = compare_campaigns(
      pointers(current), pointers(baseline), options);
  EXPECT_EQ(comparison.points.size(), 2u);
  EXPECT_EQ(comparison.regressions(), 2u);
}

TEST(Compare, NonFiniteMetricValuesNeverPassAsOk) {
  // A metric that degrades to NaN (0/0) or inf must flag, not read as
  // "ok" because NaN comparisons are all false.
  const std::vector<CampaignRecord> baseline = {make_record(
      "gemm", {{"size", "512"}}, {"size"}, {gflops(100.0)})};
  std::vector<CampaignRecord> current = {make_record(
      "gemm", {{"size", "512"}}, {"size"},
      {gflops(std::numeric_limits<double>::quiet_NaN())})};
  const CampaignComparison nan_comparison = compare_campaigns(
      pointers(current), pointers(baseline), CompareOptions{});
  ASSERT_EQ(nan_comparison.points.size(), 1u);
  EXPECT_EQ(nan_comparison.regressions(), 1u);
  // Identical non-finite pairs count as unchanged.
  std::vector<CampaignRecord> both_nan = {make_record(
      "gemm", {{"size", "512"}}, {"size"},
      {gflops(std::numeric_limits<double>::quiet_NaN())})};
  EXPECT_EQ(compare_campaigns(pointers(both_nan), pointers(both_nan),
                              CompareOptions{})
                .regressions(),
            0u);
}

TEST(Compare, IgnoreCollapseOfDistinctPointsIsCounted) {
  // A store that itself sweeps the ignored knob: two distinct points
  // collapse onto one reduced identity. They must be counted as excluded,
  // not silently dropped.
  std::vector<CampaignRecord> current;
  for (const char* eff : {"0.3", "0.72"}) {
    current.push_back(make_record(
        "gemm", {{"size", "512"}, {"dram_efficiency", eff}},
        {"size", "dram_efficiency"}, {gflops(100.0)}));
  }
  const std::vector<CampaignRecord> baseline = {make_record(
      "gemm", {{"size", "512"}, {"dram_efficiency", "0.9"}},
      {"size", "dram_efficiency"}, {gflops(100.0)})};
  CompareOptions options;
  options.ignore = {"dram_efficiency"};
  const CampaignComparison comparison = compare_campaigns(
      pointers(current), pointers(baseline), options);
  EXPECT_EQ(comparison.points.size(), 1u);
  EXPECT_EQ(comparison.current_collapsed, 1u);
  EXPECT_EQ(comparison.baseline_collapsed, 0u);
  // A genuine re-run (same full fingerprint) supersedes without counting
  // as a collapse.
  std::vector<CampaignRecord> rerun = {current[0], current[0]};
  const CampaignComparison superseded = compare_campaigns(
      pointers(rerun), pointers(baseline), options);
  EXPECT_EQ(superseded.current_collapsed, 0u);
}

TEST(Compare, ErrorRecordsNeverMatch) {
  std::vector<CampaignRecord> baseline = {
      make_record("gemm", {{"size", "512"}}, {"size"}, {gflops(100.0)})};
  std::vector<CampaignRecord> current = {
      make_record("gemm", {{"size", "512"}}, {"size"}, {}, "boom")};
  const CampaignComparison comparison = compare_campaigns(
      pointers(current), pointers(baseline), CompareOptions{});
  EXPECT_EQ(comparison.points.size(), 0u);
  EXPECT_EQ(comparison.baseline_only, 1u);
}

// ---- error-bar-aware comparison (fidelity=sampled estimates) ----

std::vector<exp::Metric> estimate_metrics(double makespan, double ci95) {
  return {exp::Metric{"makespan_ms", makespan, "ms", false},
          exp::Metric{"makespan_ms_ci95", ci95, "ms", false},
          exp::Metric{"makespan_ms_se", ci95 / 1.96, "ms", false}};
}

TEST(Compare, OverlappingConfidenceIntervalsAreNotRegressions) {
  // 10% worse makespan, far beyond a 2% tolerance — but both values are
  // sampled estimates whose 95% intervals overlap, so flagging it would
  // alarm on statistical noise.
  std::vector<CampaignRecord> baseline = {make_record(
      "gemm", {{"size", "4096"}}, {"size"}, estimate_metrics(100.0, 8.0))};
  std::vector<CampaignRecord> current = {make_record(
      "gemm", {{"size", "4096"}}, {"size"}, estimate_metrics(110.0, 8.0))};
  CompareOptions options;
  options.tolerance = 0.02;
  const CampaignComparison comparison = compare_campaigns(
      pointers(current), pointers(baseline), options);
  ASSERT_EQ(comparison.points.size(), 1u);
  EXPECT_EQ(comparison.regressions(), 0u);
  // The ci/se companion columns are qualifiers, not compared metrics.
  ASSERT_EQ(comparison.points[0].deltas.size(), 1u);
  EXPECT_EQ(comparison.points[0].deltas[0].metric, "makespan_ms");
  EXPECT_DOUBLE_EQ(comparison.points[0].deltas[0].ci_current, 8.0);
  EXPECT_DOUBLE_EQ(comparison.points[0].deltas[0].ci_baseline, 8.0);
}

TEST(Compare, DisjointConfidenceIntervalsStillFlagRegressions) {
  std::vector<CampaignRecord> baseline = {make_record(
      "gemm", {{"size", "4096"}}, {"size"}, estimate_metrics(100.0, 2.0))};
  std::vector<CampaignRecord> current = {make_record(
      "gemm", {{"size", "4096"}}, {"size"}, estimate_metrics(110.0, 2.0))};
  CompareOptions options;
  options.tolerance = 0.02;
  const CampaignComparison comparison = compare_campaigns(
      pointers(current), pointers(baseline), options);
  ASSERT_EQ(comparison.points.size(), 1u);
  EXPECT_EQ(comparison.regressions(), 1u);
}

TEST(Compare, ExactRecordsKeepPlainToleranceSemantics) {
  // No _ci95 companions (analytic/detailed runs): zero-width intervals,
  // so the historic tolerance-only behaviour is unchanged.
  std::vector<CampaignRecord> baseline = {
      make_record("gemm", {{"size", "512"}}, {"size"}, {gflops(100.0)})};
  std::vector<CampaignRecord> current = {
      make_record("gemm", {{"size", "512"}}, {"size"}, {gflops(90.0)})};
  CompareOptions options;
  options.tolerance = 0.02;
  EXPECT_EQ(compare_campaigns(pointers(current), pointers(baseline),
                              options)
                .regressions(),
            1u);
}

TEST(Compare, AsymmetricIntervalsWidenInBothDirections) {
  // Only the baseline carries an interval (e.g. sampled baseline vs a new
  // exhaustive run): overlap still suppresses the flag — and so does the
  // mirror case of an improvement inside the joint interval.
  std::vector<CampaignRecord> baseline = {make_record(
      "gemm", {{"size", "4096"}}, {"size"}, estimate_metrics(100.0, 15.0))};
  std::vector<CampaignRecord> current = {make_record(
      "gemm", {{"size", "4096"}}, {"size"},
      {exp::Metric{"makespan_ms", 110.0, "ms", false}})};
  CompareOptions options;
  options.tolerance = 0.02;
  const CampaignComparison worse = compare_campaigns(
      pointers(current), pointers(baseline), options);
  EXPECT_EQ(worse.regressions(), 0u);
  current = {make_record("gemm", {{"size", "4096"}}, {"size"},
                         {exp::Metric{"makespan_ms", 90.0, "ms", false}})};
  const CampaignComparison better = compare_campaigns(
      pointers(current), pointers(baseline), options);
  EXPECT_EQ(better.improvements(), 0u);
}

// ---- compaction ----

TEST(CampaignStore, CompactKeepsOnlyTheLatestRecordPerPoint) {
  const std::string path = temp_path("store_compact.mdb");
  std::remove(path.c_str());
  {
    CampaignStore db(path);
    // Point A: error first, then a successful re-run (error superseded).
    db.append(make_record("gemm", {{"size", "512"}}, {"size"}, {}, "boom"));
    db.append(make_record("gemm", {{"size", "512"}}, {"size"},
                          {gflops(80.0)}));
    // Point B: two successful runs (first superseded).
    db.append(make_record("gemm", {{"size", "1024"}}, {"size"},
                          {gflops(100.0)}));
    db.append(make_record("gemm", {{"size", "1024"}}, {"size"},
                          {gflops(120.0)}));
    // Point C: a lone error record (kept — it is the latest state).
    db.append(make_record("gemm", {{"size", "2048"}}, {"size"}, {},
                          "still broken"));
  }
  const CampaignStore::CompactionResult result =
      CampaignStore::compact(path);
  EXPECT_EQ(result.kept, 3u);
  EXPECT_EQ(result.dropped, 2u);

  CampaignStore compacted(path, CampaignStore::Mode::kReadOnly);
  ASSERT_EQ(compacted.size(), 3u);
  EXPECT_EQ(compacted.recovered_dropped_bytes(), 0u);
  // Append order preserved; each point's latest value survived.
  EXPECT_EQ(compacted.records()[0].params.at("size"), "512");
  EXPECT_DOUBLE_EQ(compacted.records()[0].metrics[0].value, 80.0);
  EXPECT_EQ(compacted.records()[1].params.at("size"), "1024");
  EXPECT_DOUBLE_EQ(compacted.records()[1].metrics[0].value, 120.0);
  EXPECT_EQ(compacted.records()[2].params.at("size"), "2048");
  EXPECT_FALSE(compacted.records()[2].ok());
  std::remove(path.c_str());
}

TEST(CampaignStore, CompactPreservesDistinctSchemaVersions) {
  // The same fingerprintable point under two schema hashes is two live
  // records — compaction must not collapse across schema versions.
  const std::string path = temp_path("store_compact_schemas.mdb");
  std::remove(path.c_str());
  {
    CampaignStore db(path);
    CampaignRecord under_a = make_record("gemm", {{"size", "512"}},
                                         {"size"}, {gflops(80.0)});
    under_a.schema_hash = 0x1111;
    CampaignRecord under_b = under_a;
    under_b.schema_hash = 0x2222;
    under_b.metrics[0].value = 90.0;
    db.append(under_a);
    db.append(under_b);
  }
  const CampaignStore::CompactionResult result =
      CampaignStore::compact(path);
  EXPECT_EQ(result.kept, 2u);
  EXPECT_EQ(result.dropped, 0u);
  std::remove(path.c_str());
}

TEST(CampaignStore, CompactedStoreStaysAppendableAndResumable) {
  const std::string path = temp_path("store_compact_append.mdb");
  std::remove(path.c_str());
  CampaignRecord record = make_record("gemm", {{"size", "512"}}, {"size"},
                                      {gflops(80.0)});
  {
    CampaignStore db(path);
    db.append(record);
    db.append(record);  // superseded duplicate
  }
  EXPECT_EQ(CampaignStore::compact(path).kept, 1u);
  CampaignStore db(path);
  EXPECT_TRUE(db.contains(record.fingerprint, record.schema_hash));
  db.append(make_record("gemm", {{"size", "1024"}}, {"size"},
                        {gflops(100.0)}));
  CampaignStore reopened(path, CampaignStore::Mode::kReadOnly);
  EXPECT_EQ(reopened.size(), 2u);
  std::remove(path.c_str());
}

TEST(CampaignStore, CompactRejectsMissingAndForeignFiles) {
  EXPECT_THROW(CampaignStore::compact(temp_path("store_compact_none.mdb")),
               std::runtime_error);
  const std::string path = temp_path("store_compact_foreign.mdb");
  write_file(path, "not a campaign store at all");
  EXPECT_THROW(CampaignStore::compact(path), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace maco::store
