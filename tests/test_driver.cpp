// The macosim driver: CLI parsing, scenario registry, sweep execution and
// result serialization.
#include <gtest/gtest.h>

#include <sstream>

#include "driver/cli.hpp"
#include "driver/scenario_registry.hpp"
#include "driver/sweep_runner.hpp"

namespace maco::driver {
namespace {

// A deterministic scenario that echoes its parameters as metrics, so sweep
// mechanics are testable without the timing model.
Scenario echo_scenario() {
  Scenario s;
  s.name = "echo";
  s.description = "test scenario";
  s.params = {{"a", "1", ""}, {"b", "1", ""}, {"fail", "false", ""}};
  s.run = [](const ScenarioRequest& request) {
    if (request.param_bool("fail", false)) {
      throw std::runtime_error("deliberate failure");
    }
    ScenarioResult result;
    result.add("a_times_10",
               static_cast<double>(request.param_u64("a", 0) * 10));
    result.add("b_plus_1",
               static_cast<double>(request.param_u64("b", 0) + 1));
    result.add("node_count", request.config.node_count);
    return result;
  };
  return s;
}

ScenarioRegistry echo_registry() {
  ScenarioRegistry registry;
  EXPECT_TRUE(registry.add(echo_scenario()));
  return registry;
}

// ---- CLI parsing ----

TEST(Cli, ParsesFullCommandLine) {
  const CliParse parse = parse_cli(
      {"--scenario", "gemm", "--sweep", "nodes=1,4,16", "--sweep",
       "size=1024,4096", "--set", "precision=fp32", "--threads", "4",
       "--csv", "out.csv", "--json", "out.json", "--quiet"});
  ASSERT_TRUE(parse.ok) << parse.error;
  const CliOptions& options = parse.options;
  EXPECT_EQ(options.scenario, "gemm");
  ASSERT_EQ(options.sweeps.size(), 2u);
  EXPECT_EQ(options.sweeps[0].key, "nodes");
  EXPECT_EQ(options.sweeps[0].values,
            (std::vector<std::string>{"1", "4", "16"}));
  EXPECT_EQ(options.sweeps[1].key, "size");
  ASSERT_EQ(options.params.count("precision"), 1u);
  EXPECT_EQ(options.params.at("precision"), "fp32");
  EXPECT_EQ(options.threads, 4u);
  EXPECT_EQ(options.csv_path, "out.csv");
  EXPECT_EQ(options.json_path, "out.json");
  EXPECT_TRUE(options.quiet);
}

TEST(Cli, RequiresAScenario) {
  const CliParse parse = parse_cli({"--threads", "2"});
  EXPECT_FALSE(parse.ok);
  EXPECT_NE(parse.error.find("--scenario"), std::string::npos);
}

TEST(Cli, ListAndHelpNeedNoScenario) {
  EXPECT_TRUE(parse_cli({"--list-scenarios"}).ok);
  EXPECT_TRUE(parse_cli({"--help"}).ok);
}

TEST(Cli, RejectsUnknownFlag) {
  const CliParse parse = parse_cli({"--scenario", "gemm", "--frobnicate"});
  EXPECT_FALSE(parse.ok);
  EXPECT_NE(parse.error.find("--frobnicate"), std::string::npos);
}

TEST(Cli, RejectsMissingValue) {
  EXPECT_FALSE(parse_cli({"--scenario"}).ok);
  EXPECT_FALSE(parse_cli({"--scenario", "gemm", "--sweep"}).ok);
}

TEST(Cli, RejectsDuplicateSweepAxis) {
  const CliParse parse = parse_cli(
      {"--scenario", "gemm", "--sweep", "size=1,2", "--sweep", "size=3,4"});
  EXPECT_FALSE(parse.ok);
  EXPECT_NE(parse.error.find("twice"), std::string::npos);
}

TEST(Cli, RejectsSetSweepConflicts) {
  CliParse parse = parse_cli(
      {"--scenario", "gemm", "--set", "size=1024", "--set", "size=4096"});
  EXPECT_FALSE(parse.ok);
  EXPECT_NE(parse.error.find("twice"), std::string::npos);
  // --set then --sweep on the same key, and the reverse order.
  parse = parse_cli(
      {"--scenario", "gemm", "--set", "nodes=8", "--sweep", "nodes=1,4"});
  EXPECT_FALSE(parse.ok);
  parse = parse_cli(
      {"--scenario", "gemm", "--sweep", "nodes=1,4", "--set", "nodes=8"});
  EXPECT_FALSE(parse.ok);
  EXPECT_NE(parse.error.find("both a --set and a --sweep"),
            std::string::npos);
}

TEST(Sweep, SerialScenarioIgnoresThreadCount) {
  ScenarioRegistry registry;
  Scenario serial = echo_scenario();
  serial.serial = true;
  ASSERT_TRUE(registry.add(serial));
  SweepRequest request;
  request.scenario = "echo";
  request.axes = {{"a", {"1", "2", "3"}}};
  request.threads = 8;  // must still run (serially) and stay correct
  const SweepResults results = run_sweep(registry, request);
  ASSERT_EQ(results.rows.size(), 3u);
  EXPECT_EQ(results.failures(), 0u);
  EXPECT_DOUBLE_EQ(results.rows[2].result.metrics[0].second, 30.0);
}

TEST(Cli, RejectsBadThreadCount) {
  EXPECT_FALSE(parse_cli({"--scenario", "gemm", "--threads", "0"}).ok);
  EXPECT_FALSE(parse_cli({"--scenario", "gemm", "--threads", "many"}).ok);
}

TEST(Cli, RejectsMalformedSetAndSweep) {
  EXPECT_FALSE(parse_cli({"--scenario", "gemm", "--set", "noequals"}).ok);
  EXPECT_FALSE(parse_cli({"--scenario", "gemm", "--set", "key="}).ok);
  EXPECT_FALSE(parse_cli({"--scenario", "gemm", "--sweep", "k=1,,2"}).ok);
  EXPECT_FALSE(parse_cli({"--scenario", "gemm", "--sweep", "=1,2"}).ok);
}

TEST(Cli, ParseAxisSplitsValues) {
  const AxisParse axis = parse_axis("nodes=1,4,16");
  ASSERT_TRUE(axis.ok) << axis.error;
  EXPECT_EQ(axis.axis.key, "nodes");
  EXPECT_EQ(axis.axis.values, (std::vector<std::string>{"1", "4", "16"}));
}

// ---- scenario registry ----

TEST(Registry, BuiltinCoversWorkloadsBaselinesAndBenches) {
  const ScenarioRegistry registry = ScenarioRegistry::builtin();
  for (const char* name :
       {"gemm", "hpl", "resnet50", "bert", "gpt3", "baselines",
        "fig6_translation", "fig7_scalability", "fig8_dl_comparison",
        "ablation_features", "area_power", "ext_sparsity", "tables",
        "micro_components"}) {
    EXPECT_NE(registry.find(name), nullptr) << name;
  }
}

TEST(Registry, FindRejectsUnknownName) {
  const ScenarioRegistry registry = ScenarioRegistry::builtin();
  EXPECT_EQ(registry.find("no_such_scenario"), nullptr);
  EXPECT_EQ(registry.find(""), nullptr);
}

TEST(Registry, AddRejectsDuplicateName) {
  ScenarioRegistry registry;
  EXPECT_TRUE(registry.add(echo_scenario()));
  EXPECT_FALSE(registry.add(echo_scenario()));
  EXPECT_EQ(registry.scenarios().size(), 1u);
}

TEST(Registry, ConfigParamsFoldIntoSystemConfig) {
  std::map<std::string, std::string> params = {
      {"node_count", "4"},  {"sa_rows", "8"},
      {"sa_cols", "8"},     {"dram_efficiency", "0.5"},
      {"size", "1024"},  // not a config knob: must survive
  };
  core::SystemConfig config = core::SystemConfig::maco_default();
  const std::vector<std::string> consumed =
      apply_config_params(params, config);
  EXPECT_EQ(consumed.size(), 4u);
  EXPECT_EQ(config.node_count, 4u);
  EXPECT_EQ(config.mmae.sa.rows, 8u);
  EXPECT_EQ(config.mmae.sa.cols, 8u);
  EXPECT_DOUBLE_EQ(config.dram_efficiency, 0.5);
  ASSERT_EQ(params.size(), 1u);
  EXPECT_EQ(params.count("size"), 1u);
}

TEST(Registry, ConfigParamsRejectMalformedValues) {
  core::SystemConfig config = core::SystemConfig::maco_default();
  std::map<std::string, std::string> bad_int = {{"node_count", "lots"}};
  EXPECT_THROW(apply_config_params(bad_int, config), std::invalid_argument);
  std::map<std::string, std::string> bad_eff = {{"dram_efficiency", "1.5"}};
  EXPECT_THROW(apply_config_params(bad_eff, config), std::invalid_argument);
}

TEST(Registry, TypedParamAccessors) {
  ScenarioRequest request;
  request.params = {{"size", "4096"},
                    {"eff", "0.75"},
                    {"flag", "on"},
                    {"precision", "fp16"},
                    {"junk", "xyz"}};
  EXPECT_EQ(request.param_u64("size", 0), 4096u);
  EXPECT_EQ(request.param_u64("absent", 7), 7u);
  EXPECT_DOUBLE_EQ(request.param_double("eff", 0.0), 0.75);
  EXPECT_TRUE(request.param_bool("flag", false));
  EXPECT_EQ(request.param_precision("precision", sa::Precision::kFp64),
            sa::Precision::kFp16);
  EXPECT_THROW(request.param_u64("junk", 0), std::invalid_argument);
  EXPECT_THROW(request.param_bool("junk", false), std::invalid_argument);
  EXPECT_THROW(request.param_precision("junk", sa::Precision::kFp64),
               std::invalid_argument);
}

// ---- sweep runner ----

TEST(Sweep, TwoByTwoProducesFourRowsInCartesianOrder) {
  const ScenarioRegistry registry = echo_registry();
  SweepRequest request;
  request.scenario = "echo";
  request.axes = {{"a", {"1", "2"}}, {"b", {"3", "4"}}};
  request.threads = 4;
  const SweepResults results = run_sweep(registry, request);
  ASSERT_EQ(results.rows.size(), 4u);
  EXPECT_EQ(results.failures(), 0u);
  // Row-major over the axes: (1,3) (1,4) (2,3) (2,4).
  const char* expected[4][2] = {{"1", "3"}, {"1", "4"}, {"2", "3"},
                                {"2", "4"}};
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(results.rows[i].index, i);
    EXPECT_EQ(results.rows[i].params.at("a"), expected[i][0]);
    EXPECT_EQ(results.rows[i].params.at("b"), expected[i][1]);
    ASSERT_EQ(results.rows[i].result.metrics.size(), 3u);
  }
  EXPECT_DOUBLE_EQ(results.rows[3].result.metrics[0].second, 20.0);
  EXPECT_DOUBLE_EQ(results.rows[3].result.metrics[1].second, 5.0);
}

TEST(Sweep, RejectsUnknownScenarioBeforeRunning) {
  const ScenarioRegistry registry = echo_registry();
  SweepRequest request;
  request.scenario = "no_such_scenario";
  EXPECT_THROW(run_sweep(registry, request), std::invalid_argument);
}

TEST(Sweep, RejectsUnknownParameterKeyBeforeRunning) {
  const ScenarioRegistry registry = echo_registry();
  SweepRequest request;
  request.scenario = "echo";
  request.base_params = {{"typo", "1"}};
  EXPECT_THROW(run_sweep(registry, request), std::invalid_argument);
  request.base_params.clear();
  request.axes = {{"also_a_typo", {"1", "2"}}};
  EXPECT_THROW(run_sweep(registry, request), std::invalid_argument);
}

TEST(Sweep, AcceptsConfigKnobsAsSweepAxes) {
  const ScenarioRegistry registry = echo_registry();
  SweepRequest request;
  request.scenario = "echo";
  request.axes = {{"node_count", {"2", "8"}}};
  const SweepResults results = run_sweep(registry, request);
  ASSERT_EQ(results.rows.size(), 2u);
  // The echo scenario reports the config it actually received.
  EXPECT_DOUBLE_EQ(results.rows[0].result.metrics[2].second, 2.0);
  EXPECT_DOUBLE_EQ(results.rows[1].result.metrics[2].second, 8.0);
}

TEST(Sweep, FailingRunIsIsolatedToItsRow) {
  const ScenarioRegistry registry = echo_registry();
  SweepRequest request;
  request.scenario = "echo";
  request.axes = {{"fail", {"false", "true"}}};
  const SweepResults results = run_sweep(registry, request);
  ASSERT_EQ(results.rows.size(), 2u);
  EXPECT_TRUE(results.rows[0].ok());
  EXPECT_FALSE(results.rows[1].ok());
  EXPECT_NE(results.rows[1].error.find("deliberate failure"),
            std::string::npos);
  EXPECT_EQ(results.failures(), 1u);
}

TEST(Sweep, NoAxesMeansOneRun) {
  const ScenarioRegistry registry = echo_registry();
  SweepRequest request;
  request.scenario = "echo";
  request.base_params = {{"a", "5"}};
  const SweepResults results = run_sweep(registry, request);
  ASSERT_EQ(results.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(results.rows[0].result.metrics[0].second, 50.0);
}

TEST(Sweep, PointCount) {
  EXPECT_EQ(sweep_point_count({}), 1u);
  EXPECT_EQ(sweep_point_count({{"a", {"1", "2", "3"}}}), 3u);
  EXPECT_EQ(sweep_point_count({{"a", {"1", "2"}}, {"b", {"1", "2", "3"}}}),
            6u);
}

TEST(Sweep, CsvHasHeaderAndOneLinePerRun) {
  const ScenarioRegistry registry = echo_registry();
  SweepRequest request;
  request.scenario = "echo";
  request.axes = {{"a", {"1", "2"}}, {"b", {"3", "4"}}};
  const SweepResults results = run_sweep(registry, request);
  std::ostringstream out;
  write_csv(out, results);
  const std::string csv = out.str();
  std::size_t lines = 0;
  for (const char c : csv) lines += (c == '\n');
  EXPECT_EQ(lines, 5u);  // header + 4 runs
  EXPECT_EQ(csv.rfind("a,b,a_times_10,b_plus_1,node_count,error\n", 0), 0u);
  EXPECT_NE(csv.find("\n2,4,20,5,16,\n"), std::string::npos);
}

TEST(Sweep, JsonSerializesParamsAndMetrics) {
  const ScenarioRegistry registry = echo_registry();
  SweepRequest request;
  request.scenario = "echo";
  request.base_params = {{"a", "2"}};
  const SweepResults results = run_sweep(registry, request);
  std::ostringstream out;
  write_json(out, results);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"scenario\":\"echo\""), std::string::npos);
  EXPECT_NE(json.find("\"a\":\"2\""), std::string::npos);
  EXPECT_NE(json.find("\"a_times_10\":20"), std::string::npos);
}

// ---- end to end on a real scenario (small sizes keep this fast) ----

TEST(Sweep, GemmTwoByTwoOnBuiltinRegistry) {
  const ScenarioRegistry registry = ScenarioRegistry::builtin();
  SweepRequest request;
  request.scenario = "gemm";
  request.base_params = {{"size", "512"}};
  request.axes = {{"nodes", {"1", "4"}}, {"matlb", {"true", "false"}}};
  request.threads = 4;
  const SweepResults results = run_sweep(registry, request);
  ASSERT_EQ(results.rows.size(), 4u);
  EXPECT_EQ(results.failures(), 0u);
  for (const SweepRow& row : results.rows) {
    double gflops = 0.0;
    for (const auto& [name, value] : row.result.metrics) {
      if (name == "gflops") gflops = value;
    }
    EXPECT_GT(gflops, 0.0);
  }
}

}  // namespace
}  // namespace maco::driver
