// The macosim driver: CLI parsing, scenario registry, hardware knobs,
// sweep execution and result serialization.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "driver/cli.hpp"
#include "driver/hardware_knobs.hpp"
#include "driver/scenario_registry.hpp"
#include "driver/sweep_runner.hpp"
#include "store/campaign_store.hpp"

namespace maco::driver {
namespace {

// A deterministic scenario that echoes its parameters as metrics, so sweep
// mechanics are testable without the timing model.
Scenario echo_scenario() {
  Scenario s;
  s.name = "echo";
  s.description = "test scenario";
  s.schema.u64("a", 0, "first echoed knob", 0, 1000);
  s.schema.u64("b", 0, "second echoed knob");
  s.schema.flag("fail", false, "throw instead of producing metrics");
  s.run = [](const ScenarioRequest& request) {
    if (request.params.flag("fail")) {
      throw std::runtime_error("deliberate failure");
    }
    ScenarioResult result;
    result.add("a_times_10",
               static_cast<double>(request.params.u64("a") * 10));
    result.add("b_plus_1", static_cast<double>(request.params.u64("b") + 1));
    result.add("node_count", request.config.node_count);
    return result;
  };
  return s;
}

ScenarioRegistry echo_registry() {
  ScenarioRegistry registry;
  EXPECT_TRUE(registry.add(echo_scenario()));
  return registry;
}

// ---- CLI parsing ----

TEST(Cli, ParsesFullCommandLine) {
  const CliParse parse = parse_cli(
      {"--scenario", "gemm", "--sweep", "nodes=1,4,16", "--sweep",
       "size=1024,4096", "--set", "precision=fp32", "--threads", "4",
       "--csv", "out.csv", "--json", "out.json", "--quiet"});
  ASSERT_TRUE(parse.ok) << parse.error;
  const CliOptions& options = parse.options;
  EXPECT_EQ(options.scenario, "gemm");
  ASSERT_EQ(options.sweeps.size(), 2u);
  EXPECT_EQ(options.sweeps[0].key, "nodes");
  EXPECT_EQ(options.sweeps[0].values,
            (std::vector<std::string>{"1", "4", "16"}));
  EXPECT_EQ(options.sweeps[1].key, "size");
  ASSERT_EQ(options.params.count("precision"), 1u);
  EXPECT_EQ(options.params.at("precision"), "fp32");
  EXPECT_EQ(options.threads, 4u);
  EXPECT_EQ(options.csv_path, "out.csv");
  EXPECT_EQ(options.json_path, "out.json");
  EXPECT_TRUE(options.quiet);
}

TEST(Cli, RequiresAScenario) {
  const CliParse parse = parse_cli({"--threads", "2"});
  EXPECT_FALSE(parse.ok);
  EXPECT_NE(parse.error.find("--scenario"), std::string::npos);
}

TEST(Cli, ListAndHelpNeedNoScenario) {
  EXPECT_TRUE(parse_cli({"--list-scenarios"}).ok);
  EXPECT_TRUE(parse_cli({"--help"}).ok);
}

TEST(Cli, RejectsUnknownFlag) {
  const CliParse parse = parse_cli({"--scenario", "gemm", "--frobnicate"});
  EXPECT_FALSE(parse.ok);
  EXPECT_NE(parse.error.find("--frobnicate"), std::string::npos);
}

TEST(Cli, RejectsMissingValue) {
  EXPECT_FALSE(parse_cli({"--scenario"}).ok);
  EXPECT_FALSE(parse_cli({"--scenario", "gemm", "--sweep"}).ok);
}

TEST(Cli, RejectsDuplicateSweepAxis) {
  const CliParse parse = parse_cli(
      {"--scenario", "gemm", "--sweep", "size=1,2", "--sweep", "size=3,4"});
  EXPECT_FALSE(parse.ok);
  EXPECT_NE(parse.error.find("twice"), std::string::npos);
}

TEST(Cli, RejectsSetSweepConflicts) {
  CliParse parse = parse_cli(
      {"--scenario", "gemm", "--set", "size=1024", "--set", "size=4096"});
  EXPECT_FALSE(parse.ok);
  EXPECT_NE(parse.error.find("twice"), std::string::npos);
  // --set then --sweep on the same key, and the reverse order.
  parse = parse_cli(
      {"--scenario", "gemm", "--set", "nodes=8", "--sweep", "nodes=1,4"});
  EXPECT_FALSE(parse.ok);
  parse = parse_cli(
      {"--scenario", "gemm", "--sweep", "nodes=1,4", "--set", "nodes=8"});
  EXPECT_FALSE(parse.ok);
  EXPECT_NE(parse.error.find("both a --set and a --sweep"),
            std::string::npos);
}

TEST(Cli, RejectsBadThreadCount) {
  EXPECT_FALSE(parse_cli({"--scenario", "gemm", "--threads", "0"}).ok);
  EXPECT_FALSE(parse_cli({"--scenario", "gemm", "--threads", "many"}).ok);
}

TEST(Cli, RejectsMalformedSetAndSweep) {
  EXPECT_FALSE(parse_cli({"--scenario", "gemm", "--set", "noequals"}).ok);
  EXPECT_FALSE(parse_cli({"--scenario", "gemm", "--set", "key="}).ok);
  EXPECT_FALSE(parse_cli({"--scenario", "gemm", "--sweep", "k=1,,2"}).ok);
  EXPECT_FALSE(parse_cli({"--scenario", "gemm", "--sweep", "=1,2"}).ok);
}

TEST(Cli, ParseAxisSplitsValues) {
  const AxisParse axis = parse_axis("nodes=1,4,16");
  ASSERT_TRUE(axis.ok) << axis.error;
  EXPECT_EQ(axis.axis.key, "nodes");
  EXPECT_EQ(axis.axis.values, (std::vector<std::string>{"1", "4", "16"}));
}

TEST(Cli, ParsesOutputAndFormat) {
  const CliParse parse = parse_cli(
      {"--scenario", "gemm", "--output", "out.json", "--format", "json"});
  ASSERT_TRUE(parse.ok) << parse.error;
  EXPECT_EQ(parse.options.output_path, "out.json");
  EXPECT_EQ(parse.options.output_format, "json");
  // --format is optional: inferred from the extension, csv otherwise.
  const CliParse csv = parse_cli({"--scenario", "gemm", "-o", "out.csv"});
  ASSERT_TRUE(csv.ok) << csv.error;
  EXPECT_EQ(csv.options.output_path, "out.csv");
  EXPECT_EQ(csv.options.output_format, "csv");
  const CliParse inferred =
      parse_cli({"--scenario", "gemm", "--output", "out.json"});
  ASSERT_TRUE(inferred.ok) << inferred.error;
  EXPECT_EQ(inferred.options.output_format, "json");
}

TEST(Cli, RejectsUninferrableOutputExtensions) {
  // An extension naming neither format must fail loudly instead of
  // silently producing CSV in a file whose name promises something else.
  for (const char* path : {"out.txt", "out.xml", "results", "out.json.bak",
                           "dir.d/out"}) {
    const CliParse parse = parse_cli({"--scenario", "gemm", "-o", path});
    EXPECT_FALSE(parse.ok) << path;
    EXPECT_NE(parse.error.find("cannot infer --format"), std::string::npos)
        << path;
  }
  // An explicit --format overrides any extension.
  const CliParse forced = parse_cli(
      {"--scenario", "gemm", "-o", "out.txt", "--format", "csv"});
  ASSERT_TRUE(forced.ok) << forced.error;
  EXPECT_EQ(forced.options.output_format, "csv");
  // "-" (stdout) keeps its historical CSV default in both commands.
  const CliParse stdout_sweep = parse_cli({"--scenario", "gemm", "-o", "-"});
  ASSERT_TRUE(stdout_sweep.ok) << stdout_sweep.error;
  EXPECT_EQ(stdout_sweep.options.output_format, "csv");
  const CliParse stdout_report =
      parse_cli({"report", "--store", "a.mdb", "-o", "-"});
  ASSERT_TRUE(stdout_report.ok) << stdout_report.error;
  EXPECT_EQ(stdout_report.options.output_format, "table");
}

TEST(Cli, ParsesStorePath) {
  const CliParse parse = parse_cli(
      {"--scenario", "gemm", "--store", "campaign.mdb"});
  ASSERT_TRUE(parse.ok) << parse.error;
  EXPECT_EQ(parse.options.command, CliCommand::kSweep);
  EXPECT_EQ(parse.options.store_path, "campaign.mdb");
  EXPECT_FALSE(parse_cli({"--scenario", "gemm", "--store"}).ok);
}

TEST(Cli, ParsesReportCommand) {
  const CliParse parse = parse_cli(
      {"report", "--store", "a.mdb", "--where", "nodes=16", "--where",
       "size=512", "--metric", "gflops", "--compare", "b.mdb",
       "--tolerance", "0.05", "--ignore", "dram_efficiency", "--format",
       "md"});
  ASSERT_TRUE(parse.ok) << parse.error;
  const CliOptions& options = parse.options;
  EXPECT_EQ(options.command, CliCommand::kReport);
  EXPECT_EQ(options.store_path, "a.mdb");
  EXPECT_EQ(options.compare_path, "b.mdb");
  ASSERT_EQ(options.where.size(), 2u);
  EXPECT_EQ(options.where.at("nodes"), "16");
  EXPECT_EQ(options.metrics, (std::vector<std::string>{"gflops"}));
  EXPECT_EQ(options.ignore_keys,
            (std::vector<std::string>{"dram_efficiency"}));
  EXPECT_DOUBLE_EQ(options.tolerance, 0.05);
  EXPECT_EQ(options.output_format, "md");
}

TEST(Cli, ReportValidatesItsGrammar) {
  // --store is mandatory.
  EXPECT_FALSE(parse_cli({"report"}).ok);
  EXPECT_FALSE(parse_cli({"report", "--where", "nodes=16"}).ok);
  // --tolerance/--ignore only make sense with --compare.
  EXPECT_FALSE(
      parse_cli({"report", "--store", "a.mdb", "--tolerance", "0.1"}).ok);
  EXPECT_FALSE(
      parse_cli({"report", "--store", "a.mdb", "--ignore", "nodes"}).ok);
  // Malformed values.
  EXPECT_FALSE(parse_cli({"report", "--store", "a.mdb", "--compare",
                          "b.mdb", "--tolerance", "lots"})
                   .ok);
  EXPECT_FALSE(parse_cli({"report", "--store", "a.mdb", "--compare",
                          "b.mdb", "--tolerance", "-0.1"})
                   .ok);
  // NaN/inf would silently disable every regression comparison.
  EXPECT_FALSE(parse_cli({"report", "--store", "a.mdb", "--compare",
                          "b.mdb", "--tolerance", "nan"})
                   .ok);
  EXPECT_FALSE(parse_cli({"report", "--store", "a.mdb", "--compare",
                          "b.mdb", "--tolerance", "inf"})
                   .ok);
  EXPECT_FALSE(
      parse_cli({"report", "--store", "a.mdb", "--where", "noequals"}).ok);
  EXPECT_FALSE(
      parse_cli({"report", "--store", "a.mdb", "--format", "xml"}).ok);
  // Sweep-only flags are rejected under report.
  EXPECT_FALSE(
      parse_cli({"report", "--store", "a.mdb", "--scenario", "gemm"}).ok);
  // Output format defaults and inference.
  EXPECT_EQ(parse_cli({"report", "--store", "a.mdb"})
                .options.output_format,
            "table");
  EXPECT_EQ(parse_cli({"report", "--store", "a.mdb", "-o", "r.md"})
                .options.output_format,
            "md");
  EXPECT_FALSE(
      parse_cli({"report", "--store", "a.mdb", "-o", "r.xml"}).ok);
}

TEST(Cli, RejectsBadOutputCombinations) {
  // Unknown format.
  EXPECT_FALSE(parse_cli({"--scenario", "gemm", "--output", "x", "--format",
                          "xml"})
                   .ok);
  // --format without --output.
  EXPECT_FALSE(parse_cli({"--scenario", "gemm", "--format", "json"}).ok);
  // Two destinations for the same format.
  EXPECT_FALSE(parse_cli({"--scenario", "gemm", "--output", "a.csv",
                          "--csv", "b.csv"})
                   .ok);
  EXPECT_FALSE(parse_cli({"--scenario", "gemm", "--output", "a.json",
                          "--format", "json", "--json", "b.json"})
                   .ok);
  // The inferred .json format participates in the conflict check too.
  EXPECT_FALSE(parse_cli({"--scenario", "gemm", "--output", "a.json",
                          "--json", "b.json"})
                   .ok);
  // --output csv + --json is fine (different formats).
  EXPECT_TRUE(parse_cli({"--scenario", "gemm", "--output", "a.csv",
                         "--json", "b.json"})
                  .ok);
}

// ---- scenario registry ----

TEST(Registry, BuiltinCoversWorkloadsBaselinesAndBenches) {
  const ScenarioRegistry registry = ScenarioRegistry::builtin();
  for (const char* name :
       {"gemm", "hpl", "resnet50", "bert", "gpt3", "baselines",
        "fig6_translation", "fig7_scalability", "fig8_dl_comparison",
        "ablation_features", "area_power", "ext_sparsity", "tables",
        "micro_components"}) {
    EXPECT_NE(registry.find(name), nullptr) << name;
  }
}

TEST(Registry, EveryScenarioDeclaresTypedDefaults) {
  // The schema is the single source of parameter truth: every declared
  // parameter carries a type and a default that parses against itself.
  const ScenarioRegistry registry = ScenarioRegistry::builtin();
  for (const Scenario& scenario : registry.scenarios()) {
    for (const exp::ParamDecl& decl : scenario.schema.decls()) {
      EXPECT_NO_THROW(scenario.schema.parse(
          decl.name, decl.default_value.to_string()))
          << scenario.name << "." << decl.name;
    }
  }
}

TEST(Registry, FindRejectsUnknownName) {
  const ScenarioRegistry registry = ScenarioRegistry::builtin();
  EXPECT_EQ(registry.find("no_such_scenario"), nullptr);
  EXPECT_EQ(registry.find(""), nullptr);
}

TEST(Registry, AddRejectsDuplicateName) {
  ScenarioRegistry registry;
  EXPECT_TRUE(registry.add(echo_scenario()));
  EXPECT_FALSE(registry.add(echo_scenario()));
  EXPECT_EQ(registry.scenarios().size(), 1u);
}

TEST(Cli, ParsesGraphSubcommand) {
  const CliParse validate =
      parse_cli({"graph", "validate", "models/bert.json"});
  ASSERT_TRUE(validate.ok) << validate.error;
  EXPECT_EQ(validate.options.command, CliCommand::kGraphValidate);
  EXPECT_EQ(validate.options.graph_file, "models/bert.json");

  const CliParse show = parse_cli(
      {"graph", "show", "models/gpt3.json", "--batch", "4", "--seq-len",
       "128", "--phase", "decode", "--moe-top-k", "2", "-o", "out.txt"});
  ASSERT_TRUE(show.ok) << show.error;
  EXPECT_EQ(show.options.command, CliCommand::kGraphShow);
  EXPECT_EQ(show.options.graph_file, "models/gpt3.json");
  EXPECT_EQ(show.options.graph_batch, 4u);
  EXPECT_EQ(show.options.graph_seq_len, 128u);
  EXPECT_EQ(show.options.graph_phase, "decode");
  EXPECT_EQ(show.options.graph_moe_top_k, 2u);
  EXPECT_EQ(show.options.output_path, "out.txt");
}

TEST(Cli, GraphValidatesItsGrammar) {
  // A subcommand and a manifest file are mandatory.
  EXPECT_FALSE(parse_cli({"graph"}).ok);
  EXPECT_FALSE(parse_cli({"graph", "lower", "x.json"}).ok);
  EXPECT_FALSE(parse_cli({"graph", "validate"}).ok);
  EXPECT_FALSE(parse_cli({"graph", "show"}).ok);
  // Lowering overrides only apply to show.
  EXPECT_FALSE(
      parse_cli({"graph", "validate", "x.json", "--batch", "4"}).ok);
  // Typed values are rejected in the parser, not at run time.
  EXPECT_FALSE(
      parse_cli({"graph", "show", "x.json", "--batch", "many"}).ok);
  EXPECT_FALSE(
      parse_cli({"graph", "show", "x.json", "--phase", "training"}).ok);
  // --help needs no file.
  EXPECT_TRUE(parse_cli({"graph", "--help"}).ok);
  EXPECT_TRUE(parse_cli({"graph", "show", "--help"}).ok);
}

TEST(Registry, FidelitySummaryListsDeclaredChoices) {
  const ScenarioRegistry registry = ScenarioRegistry::builtin();
  const Scenario* gemm = registry.find("gemm");
  ASSERT_NE(gemm, nullptr);
  EXPECT_EQ(fidelity_summary(*gemm), "analytic|detailed|sampled");
  const Scenario* graph = registry.find("graph");
  ASSERT_NE(graph, nullptr);
  EXPECT_EQ(fidelity_summary(*graph), "analytic|detailed|sampled");
  const Scenario* serve = registry.find("serve");
  ASSERT_NE(serve, nullptr);
  EXPECT_EQ(fidelity_summary(*serve), "analytic|detailed");
  // No fidelity parameter: the scenario always evaluates analytically.
  const Scenario* area = registry.find("area_power");
  ASSERT_NE(area, nullptr);
  EXPECT_EQ(fidelity_summary(*area), "analytic (fixed)");
}

TEST(Registry, GemmDeclaresAllThreeFidelities) {
  const ScenarioRegistry registry = ScenarioRegistry::builtin();
  const Scenario* gemm = registry.find("gemm");
  ASSERT_NE(gemm, nullptr);
  const exp::ParamDecl* fidelity = gemm->schema.find("fidelity");
  ASSERT_NE(fidelity, nullptr);
  EXPECT_EQ(fidelity->type, exp::ParamType::kEnum);
  EXPECT_EQ(fidelity->choices,
            (std::vector<std::string>{"analytic", "detailed", "sampled"}));
  // Scenarios that cannot run the flit-level machine whole (cooperative
  // layer sequences) reject fidelity=detailed in their schema but accept
  // the sampled estimator.
  const Scenario* hpl = registry.find("hpl");
  ASSERT_NE(hpl, nullptr);
  EXPECT_THROW(hpl->schema.parse("fidelity", "detailed"),
               std::invalid_argument);
  EXPECT_NO_THROW(hpl->schema.parse("fidelity", "sampled"));
}

// ---- hardware knobs ----

TEST(HardwareKnobs, ExplicitKnobsFoldIntoSystemConfig) {
  const exp::ParamSet params = hardware_schema().bind(
      {{"node_count", "4"},
       {"sa_rows", "8"},
       {"sa_cols", "8"},
       {"dram_efficiency", "0.5"},
       {"l2_kib", "1024"},
       {"l3_slice_kib", "4096"},
       {"stlb_entries", "2048"},
       {"dma_outstanding", "16"},
       {"stq_entries", "4"}});
  core::SystemConfig config = core::SystemConfig::maco_default();
  apply_hardware_params(params, config);
  EXPECT_EQ(config.node_count, 4u);
  EXPECT_EQ(config.mmae.sa.rows, 8u);
  EXPECT_EQ(config.mmae.sa.cols, 8u);
  EXPECT_DOUBLE_EQ(config.dram_efficiency, 0.5);
  EXPECT_EQ(config.cpu.l2.size_bytes, 1024u * 1024u);
  EXPECT_EQ(config.ccm.l3.size_bytes, 4096u * 1024u);
  EXPECT_EQ(config.cpu.mmu.l2_tlb_entries, 2048u);
  EXPECT_EQ(config.mmae.dma.max_outstanding, 16u);
  EXPECT_EQ(config.mmae.stq_entries, 4u);
  // Knobs not explicitly set leave the caller's config untouched.
  EXPECT_EQ(config.dram_channels, 4u);
  EXPECT_EQ(config.mmae.matlb_entries, 256u);
}

TEST(HardwareKnobs, DefaultsMatchMacoDefaultConfig) {
  // Schema defaults document the paper platform: what --list-scenarios
  // prints as a default must be what SystemConfig::maco_default() builds.
  const core::SystemConfig config = core::SystemConfig::maco_default();
  const exp::ParamSchema& schema = hardware_schema();
  const auto default_u64 = [&](const char* name) {
    const exp::ParamDecl* decl = schema.find(name);
    EXPECT_NE(decl, nullptr) << name;
    return decl == nullptr ? 0u : decl->default_value.as_u64();
  };
  EXPECT_EQ(default_u64("node_count"), config.node_count);
  EXPECT_EQ(default_u64("mesh_width"), config.mesh.width);
  EXPECT_EQ(default_u64("mesh_height"), config.mesh.height);
  EXPECT_EQ(default_u64("sa_rows"), config.mmae.sa.rows);
  EXPECT_EQ(default_u64("sa_cols"), config.mmae.sa.cols);
  EXPECT_EQ(default_u64("dram_channels"), config.dram_channels);
  EXPECT_EQ(default_u64("ccm_count"), config.ccm_count);
  EXPECT_EQ(default_u64("matlb_entries"), config.mmae.matlb_entries);
  EXPECT_EQ(default_u64("inner_k"), config.mmae.inner_k);
  EXPECT_EQ(default_u64("l2_kib") * 1024, config.cpu.l2.size_bytes);
  EXPECT_EQ(default_u64("l3_slice_kib") * 1024, config.ccm.l3.size_bytes);
  EXPECT_EQ(default_u64("stlb_entries"), config.cpu.mmu.l2_tlb_entries);
  EXPECT_EQ(default_u64("dma_outstanding"),
            config.mmae.dma.max_outstanding);
  EXPECT_EQ(default_u64("stq_entries"), config.mmae.stq_entries);
  EXPECT_DOUBLE_EQ(
      schema.find("dram_efficiency")->default_value.as_f64(),
      config.dram_efficiency);
}

TEST(HardwareKnobs, EnforcesMeshCapacityAcrossFields) {
  core::SystemConfig config = core::SystemConfig::maco_default();
  // 64 nodes do not fit the default 4x4 mesh...
  EXPECT_THROW(
      apply_hardware_params(hardware_schema().bind({{"node_count", "64"}}),
                            config),
      std::invalid_argument);
  // ...but do once the mesh is widened, and both mesh models resize.
  config = core::SystemConfig::maco_default();
  apply_hardware_params(
      hardware_schema().bind({{"node_count", "64"},
                              {"mesh_width", "8"},
                              {"mesh_height", "8"}}),
      config);
  EXPECT_EQ(config.node_count, 64u);
  EXPECT_EQ(config.mesh.width, 8u);
  EXPECT_EQ(config.link_load.width, 8u);
  EXPECT_EQ(config.link_load.height, 8u);
  // A mesh too small for the DDR controllers at nodes {0,3,12,15}.
  config = core::SystemConfig::maco_default();
  EXPECT_THROW(
      apply_hardware_params(
          hardware_schema().bind({{"node_count", "4"},
                                  {"ccm_count", "4"},
                                  {"mesh_width", "2"},
                                  {"mesh_height", "2"}}),
          config),
      std::invalid_argument);
}

TEST(HardwareKnobs, RejectsMalformedAndOutOfRangeValues) {
  EXPECT_THROW(hardware_schema().parse("node_count", "lots"),
               std::invalid_argument);
  EXPECT_THROW(hardware_schema().parse("node_count", "0"),
               std::invalid_argument);
  EXPECT_THROW(hardware_schema().parse("dram_efficiency", "1.5"),
               std::invalid_argument);
  EXPECT_THROW(hardware_schema().parse("dram_efficiency", "fast"),
               std::invalid_argument);
  EXPECT_THROW(hardware_schema().parse("no_such_knob", "1"),
               std::invalid_argument);
}

// ---- sweep runner ----

TEST(Sweep, TwoByTwoProducesFourRowsInCartesianOrder) {
  const ScenarioRegistry registry = echo_registry();
  SweepRequest request;
  request.scenario = "echo";
  request.axes = {{"a", {"1", "2"}}, {"b", {"3", "4"}}};
  request.threads = 4;
  const SweepResults results = run_sweep(registry, request);
  ASSERT_EQ(results.rows.size(), 4u);
  EXPECT_EQ(results.failures(), 0u);
  // Row-major over the axes: (1,3) (1,4) (2,3) (2,4).
  const char* expected[4][2] = {{"1", "3"}, {"1", "4"}, {"2", "3"},
                                {"2", "4"}};
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(results.rows[i].index, i);
    EXPECT_EQ(results.rows[i].params.at("a"), expected[i][0]);
    EXPECT_EQ(results.rows[i].params.at("b"), expected[i][1]);
    ASSERT_EQ(results.rows[i].result.metrics.size(), 3u);
  }
  EXPECT_DOUBLE_EQ(results.rows[3].result.metrics[0].value, 20.0);
  EXPECT_DOUBLE_EQ(results.rows[3].result.metrics[1].value, 5.0);
}

TEST(Sweep, SerialScenarioIgnoresThreadCount) {
  ScenarioRegistry registry;
  Scenario serial = echo_scenario();
  serial.serial = true;
  ASSERT_TRUE(registry.add(serial));
  SweepRequest request;
  request.scenario = "echo";
  request.axes = {{"a", {"1", "2", "3"}}};
  request.threads = 8;  // must still run (serially) and stay correct
  const SweepResults results = run_sweep(registry, request);
  ASSERT_EQ(results.rows.size(), 3u);
  EXPECT_EQ(results.failures(), 0u);
  EXPECT_DOUBLE_EQ(results.rows[2].result.metrics[0].value, 30.0);
}

TEST(Sweep, RejectsUnknownScenarioBeforeRunning) {
  const ScenarioRegistry registry = echo_registry();
  SweepRequest request;
  request.scenario = "no_such_scenario";
  EXPECT_THROW(run_sweep(registry, request), std::invalid_argument);
}

TEST(Sweep, RejectsUnknownParameterKeyBeforeRunning) {
  const ScenarioRegistry registry = echo_registry();
  SweepRequest request;
  request.scenario = "echo";
  request.base_params = {{"typo", "1"}};
  EXPECT_THROW(run_sweep(registry, request), std::invalid_argument);
  request.base_params.clear();
  request.axes = {{"also_a_typo", {"1", "2"}}};
  EXPECT_THROW(run_sweep(registry, request), std::invalid_argument);
}

TEST(Sweep, RejectsBadValuesBeforeRunning) {
  // Typed validation runs over every axis value before any point executes:
  // a malformed or out-of-range value anywhere fails the whole request.
  const ScenarioRegistry registry = echo_registry();
  SweepRequest request;
  request.scenario = "echo";
  request.axes = {{"a", {"1", "2", "banana"}}};
  EXPECT_THROW(run_sweep(registry, request), std::invalid_argument);
  request.axes = {{"a", {"1", "1001"}}};  // above the declared max of 1000
  EXPECT_THROW(run_sweep(registry, request), std::invalid_argument);
  request.axes = {{"fail", {"true", "maybe"}}};
  EXPECT_THROW(run_sweep(registry, request), std::invalid_argument);
  request.axes.clear();
  request.base_params = {{"dram_efficiency", "2.0"}};  // hardware knob range
  EXPECT_THROW(run_sweep(registry, request), std::invalid_argument);
}

TEST(Sweep, AcceptsConfigKnobsAsSweepAxes) {
  const ScenarioRegistry registry = echo_registry();
  SweepRequest request;
  request.scenario = "echo";
  request.axes = {{"node_count", {"2", "8"}}};
  const SweepResults results = run_sweep(registry, request);
  ASSERT_EQ(results.rows.size(), 2u);
  // The echo scenario reports the config it actually received.
  EXPECT_DOUBLE_EQ(results.rows[0].result.metrics[2].value, 2.0);
  EXPECT_DOUBLE_EQ(results.rows[1].result.metrics[2].value, 8.0);
}

TEST(Sweep, FailingRunIsIsolatedToItsRow) {
  const ScenarioRegistry registry = echo_registry();
  SweepRequest request;
  request.scenario = "echo";
  request.axes = {{"fail", {"false", "true"}}};
  const SweepResults results = run_sweep(registry, request);
  ASSERT_EQ(results.rows.size(), 2u);
  EXPECT_TRUE(results.rows[0].ok());
  EXPECT_FALSE(results.rows[1].ok());
  EXPECT_NE(results.rows[1].error.find("deliberate failure"),
            std::string::npos);
  EXPECT_EQ(results.failures(), 1u);
}

TEST(Sweep, NoAxesMeansOneRun) {
  const ScenarioRegistry registry = echo_registry();
  SweepRequest request;
  request.scenario = "echo";
  request.base_params = {{"a", "5"}};
  const SweepResults results = run_sweep(registry, request);
  ASSERT_EQ(results.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(results.rows[0].result.metrics[0].value, 50.0);
}

TEST(Sweep, PointCount) {
  EXPECT_EQ(sweep_point_count({}), 1u);
  EXPECT_EQ(sweep_point_count({{"a", {"1", "2", "3"}}}), 3u);
  EXPECT_EQ(sweep_point_count({{"a", {"1", "2"}}, {"b", {"1", "2", "3"}}}),
            6u);
}

TEST(Sweep, CsvHasHeaderAndOneLinePerRun) {
  const ScenarioRegistry registry = echo_registry();
  SweepRequest request;
  request.scenario = "echo";
  request.axes = {{"a", {"1", "2"}}, {"b", {"3", "4"}}};
  const SweepResults results = run_sweep(registry, request);
  std::ostringstream out;
  write_csv(out, results);
  const std::string csv = out.str();
  std::size_t lines = 0;
  for (const char c : csv) lines += (c == '\n');
  EXPECT_EQ(lines, 5u);  // header + 4 runs
  EXPECT_EQ(csv.rfind("a,b,a_times_10,b_plus_1,node_count,error\n", 0), 0u);
  EXPECT_NE(csv.find("\n2,4,20,5,16,\n"), std::string::npos);
}

TEST(Sweep, JsonSerializesParamsMetricsAndColumnMetadata) {
  const ScenarioRegistry registry = echo_registry();
  SweepRequest request;
  request.scenario = "echo";
  request.base_params = {{"a", "2"}};
  const SweepResults results = run_sweep(registry, request);
  std::ostringstream out;
  write_json(out, results);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"scenario\":\"echo\""), std::string::npos);
  EXPECT_NE(json.find("\"a\":\"2\""), std::string::npos);
  EXPECT_NE(json.find("\"a_times_10\":20"), std::string::npos);
  EXPECT_NE(json.find("\"columns\":[{\"name\":\"a_times_10\""),
            std::string::npos);
  EXPECT_NE(json.find("\"higher_is_better\":true"), std::string::npos);
}

TEST(Sweep, CsvRoundTripsThroughAFile) {
  // --output's contract: what lands in the file is byte-identical to the
  // in-memory serialization and survives a read-back.
  const ScenarioRegistry registry = echo_registry();
  SweepRequest request;
  request.scenario = "echo";
  request.axes = {{"a", {"1", "2"}}};
  const SweepResults results = run_sweep(registry, request);

  std::ostringstream expected;
  write_csv(expected, results);

  const std::string path =
      ::testing::TempDir() + "/macosim_roundtrip_test.csv";
  {
    std::ofstream out(path);
    ASSERT_TRUE(out.is_open());
    write_csv(out, results);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::stringstream read_back;
  read_back << in.rdbuf();
  EXPECT_EQ(read_back.str(), expected.str());
  std::remove(path.c_str());
}

// ---- end to end on a real scenario (small sizes keep this fast) ----

TEST(Sweep, GemmTwoByTwoOnBuiltinRegistry) {
  const ScenarioRegistry registry = ScenarioRegistry::builtin();
  SweepRequest request;
  request.scenario = "gemm";
  request.base_params = {{"size", "512"}};
  request.axes = {{"nodes", {"1", "4"}}, {"matlb", {"true", "false"}}};
  request.threads = 4;
  const SweepResults results = run_sweep(registry, request);
  ASSERT_EQ(results.rows.size(), 4u);
  EXPECT_EQ(results.failures(), 0u);
  for (const SweepRow& row : results.rows) {
    const exp::Metric* gflops = row.result.find("gflops");
    ASSERT_NE(gflops, nullptr);
    EXPECT_GT(gflops->value, 0.0);
    EXPECT_EQ(gflops->unit, "GFLOP/s");
  }
}

TEST(Sweep, UnsetNodesFollowsNodeCount) {
  // `nodes` left unset tracks the instantiated node_count, so a node_count
  // sweep actually activates the extra nodes instead of sticking at the
  // schema's paper-platform default.
  const ScenarioRegistry registry = ScenarioRegistry::builtin();
  SweepRequest request;
  request.scenario = "gemm";
  request.base_params = {{"size", "1024"}};
  request.axes = {{"node_count", {"1", "16"}}};
  const SweepResults results = run_sweep(registry, request);
  ASSERT_EQ(results.rows.size(), 2u);
  ASSERT_EQ(results.failures(), 0u);
  const exp::Metric* one = results.rows[0].result.find("gflops");
  const exp::Metric* sixteen = results.rows[1].result.find("gflops");
  ASSERT_NE(one, nullptr);
  ASSERT_NE(sixteen, nullptr);
  EXPECT_GT(sixteen->value, 2.0 * one->value);
}

TEST(Sweep, AnalyticOnlyScenarioRejectsDetailedFidelityUpFront) {
  const ScenarioRegistry registry = ScenarioRegistry::builtin();
  SweepRequest request;
  request.scenario = "hpl";
  request.base_params = {{"fidelity", "detailed"}};
  EXPECT_THROW(run_sweep(registry, request), std::invalid_argument);
}

// ---- campaign store resume ----

// An echo-like scenario that counts executions, so resume tests can assert
// exactly which points ran.
Scenario counting_scenario(std::shared_ptr<std::atomic<int>> runs) {
  Scenario s;
  s.name = "counted";
  s.description = "test scenario counting its executions";
  s.schema.u64("a", 0, "echoed knob", 0, 1000);
  s.run = [runs = std::move(runs)](const ScenarioRequest& request) {
    runs->fetch_add(1);
    ScenarioResult result;
    result.add("a_times_10",
               static_cast<double>(request.params.u64("a") * 10));
    return result;
  };
  return s;
}

TEST(Sweep, StoreResumeExecutesOnlyTheRemainingPoints) {
  const std::string path =
      ::testing::TempDir() + "/macosim_resume_test.mdb";
  std::remove(path.c_str());
  auto runs = std::make_shared<std::atomic<int>>(0);
  ScenarioRegistry registry;
  ASSERT_TRUE(registry.add(counting_scenario(runs)));

  // First campaign: points a=1,2 execute and land in the store.
  SweepRequest request;
  request.scenario = "counted";
  request.axes = {{"a", {"1", "2"}}};
  {
    store::CampaignStore db(path);
    const SweepResults results = run_sweep(registry, request, &db);
    EXPECT_EQ(results.cached(), 0u);
    EXPECT_EQ(db.size(), 2u);
  }
  EXPECT_EQ(runs->load(), 2);

  // The "interrupted at point 2, restarted with two more points" rerun:
  // only a=3,4 may execute, yet every row must carry its metrics.
  request.axes = {{"a", {"1", "2", "3", "4"}}};
  request.threads = 4;
  {
    store::CampaignStore db(path);
    const SweepResults results = run_sweep(registry, request, &db);
    ASSERT_EQ(results.rows.size(), 4u);
    EXPECT_EQ(results.failures(), 0u);
    EXPECT_EQ(results.cached(), 2u);
    EXPECT_TRUE(results.rows[0].cached);
    EXPECT_TRUE(results.rows[1].cached);
    EXPECT_FALSE(results.rows[2].cached);
    EXPECT_FALSE(results.rows[3].cached);
    for (std::size_t i = 0; i < 4; ++i) {
      const exp::Metric* metric = results.rows[i].result.find("a_times_10");
      ASSERT_NE(metric, nullptr) << "row " << i;
      EXPECT_DOUBLE_EQ(metric->value, 10.0 * static_cast<double>(i + 1));
    }
    EXPECT_EQ(db.size(), 4u);
  }
  EXPECT_EQ(runs->load(), 4);

  // A third identical run is satisfied entirely from the store.
  {
    store::CampaignStore db(path);
    const SweepResults results = run_sweep(registry, request, &db);
    EXPECT_EQ(results.cached(), 4u);
  }
  EXPECT_EQ(runs->load(), 4);
  std::remove(path.c_str());
}

TEST(Sweep, StoreResumeSurvivesATornTail) {
  // The acceptance scenario: a campaign killed mid-write. Truncating the
  // file mid-record must cost exactly the torn point — the rerun executes
  // it (and nothing else) again.
  const std::string path = ::testing::TempDir() + "/macosim_torn_test.mdb";
  std::remove(path.c_str());
  auto runs = std::make_shared<std::atomic<int>>(0);
  ScenarioRegistry registry;
  ASSERT_TRUE(registry.add(counting_scenario(runs)));
  SweepRequest request;
  request.scenario = "counted";
  request.axes = {{"a", {"1", "2", "3"}}};
  {
    store::CampaignStore db(path);
    run_sweep(registry, request, &db);
  }
  EXPECT_EQ(runs->load(), 3);
  // Kill the tail: chop the last 5 bytes, tearing record 3's frame.
  std::string contents;
  {
    std::ifstream in(path, std::ios::binary);
    std::stringstream buffer;
    buffer << in.rdbuf();
    contents = buffer.str();
  }
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size() - 5));
  }
  {
    store::CampaignStore db(path);
    EXPECT_GT(db.recovered_dropped_bytes(), 0u);
    const SweepResults results = run_sweep(registry, request, &db);
    EXPECT_EQ(results.cached(), 2u);
    EXPECT_EQ(results.failures(), 0u);
    EXPECT_EQ(db.size(), 3u);
  }
  EXPECT_EQ(runs->load(), 4);  // only the torn point re-ran
  std::remove(path.c_str());
}

TEST(Sweep, StoreSchemaChangeInvalidatesCachedPoints) {
  // Same scenario name, different schema (a widened range): cached points
  // must not be reused across the schema change.
  const std::string path =
      ::testing::TempDir() + "/macosim_schema_test.mdb";
  std::remove(path.c_str());
  auto runs = std::make_shared<std::atomic<int>>(0);
  SweepRequest request;
  request.scenario = "counted";
  request.base_params = {{"a", "7"}};
  {
    ScenarioRegistry registry;
    ASSERT_TRUE(registry.add(counting_scenario(runs)));
    store::CampaignStore db(path);
    run_sweep(registry, request, &db);
    run_sweep(registry, request, &db);
    EXPECT_EQ(runs->load(), 1);  // second run was cached
  }
  {
    ScenarioRegistry registry;
    Scenario changed = counting_scenario(runs);
    changed.schema = exp::ParamSchema();
    changed.schema.u64("a", 0, "echoed knob", 0, 2000);  // widened
    ASSERT_TRUE(registry.add(changed));
    store::CampaignStore db(path);
    const SweepResults results = run_sweep(registry, request, &db);
    EXPECT_EQ(results.cached(), 0u);
  }
  EXPECT_EQ(runs->load(), 2);
  std::remove(path.c_str());
}

TEST(Sweep, FailedPointsAreRecordedButNotResumedFrom) {
  const std::string path =
      ::testing::TempDir() + "/macosim_failed_test.mdb";
  std::remove(path.c_str());
  const ScenarioRegistry registry = echo_registry();
  SweepRequest request;
  request.scenario = "echo";
  request.axes = {{"fail", {"false", "true"}}};
  {
    store::CampaignStore db(path);
    const SweepResults results = run_sweep(registry, request, &db);
    EXPECT_EQ(results.failures(), 1u);
    EXPECT_EQ(db.size(), 2u);  // the failure is part of campaign history
    EXPECT_FALSE(db.records()[1].ok() && db.records()[0].ok());
  }
  {
    store::CampaignStore db(path);
    const SweepResults results = run_sweep(registry, request, &db);
    // The good point resumes; the failed one re-executes (and re-fails).
    EXPECT_EQ(results.cached(), 1u);
    EXPECT_EQ(results.failures(), 1u);
  }
  std::remove(path.c_str());
}

// ---- declarative cross-field constraints ----

TEST(Registry, ConstraintViolationsSurfaceAsTypedDiagnostics) {
  const ScenarioRegistry registry = ScenarioRegistry::builtin();
  // kept > group is now a schema-level rule, visible before any run.
  const Scenario* sparsity = registry.find("ext_sparsity");
  ASSERT_NE(sparsity, nullptr);
  ASSERT_FALSE(sparsity->schema.constraints().empty());
  EXPECT_THROW(sparsity->schema.bind({{"kept", "8"}, {"group", "4"}}),
               std::invalid_argument);
  // The detailed-fidelity size cap on gemm.
  const Scenario* gemm = registry.find("gemm");
  ASSERT_NE(gemm, nullptr);
  EXPECT_NO_THROW(
      gemm->schema.bind({{"fidelity", "detailed"}, {"size", "2048"}}));
  EXPECT_THROW(
      gemm->schema.bind({{"fidelity", "detailed"}, {"size", "4096"}}),
      std::invalid_argument);
  EXPECT_NO_THROW(
      gemm->schema.bind({{"fidelity", "analytic"}, {"size", "65536"}}));
}

TEST(Sweep, ConstraintViolationIsIsolatedToItsRow) {
  // A sweep mixing legal and illegal combinations: the illegal point gets
  // a row error naming the rule, the rest run.
  const ScenarioRegistry registry = ScenarioRegistry::builtin();
  SweepRequest request;
  request.scenario = "ext_sparsity";
  request.base_params = {{"group", "4"}};
  request.axes = {{"kept", {"2", "4", "8"}}};
  const SweepResults results = run_sweep(registry, request);
  ASSERT_EQ(results.rows.size(), 3u);
  EXPECT_TRUE(results.rows[0].ok());
  EXPECT_TRUE(results.rows[1].ok());
  EXPECT_FALSE(results.rows[2].ok());
  EXPECT_NE(results.rows[2].error.find("kept <= group"),
            std::string::npos);
}

TEST(HardwareKnobs, MeshCapacityIsADeclaredConstraint) {
  ASSERT_FALSE(hardware_schema().constraints().empty());
  EXPECT_THROW(hardware_schema().bind({{"node_count", "64"}}),
               std::invalid_argument);
  EXPECT_NO_THROW(hardware_schema().bind({{"node_count", "64"},
                                          {"mesh_width", "8"},
                                          {"mesh_height", "8"}}));
}

TEST(Sweep, CacheGeometryKnobsAreSweepable) {
  // The ROADMAP's "not yet sweepable" knobs: shrinking L3 slices must
  // change analytic results (smaller stash working set => lower gflops on
  // a DRAM-pressured shape), proving the knob reaches the timing model.
  const ScenarioRegistry registry = ScenarioRegistry::builtin();
  SweepRequest request;
  request.scenario = "gemm";
  request.base_params = {{"size", "2048"}, {"nodes", "16"}};
  request.axes = {{"l3_slice_kib", {"64", "2048"}}};
  const SweepResults results = run_sweep(registry, request);
  ASSERT_EQ(results.rows.size(), 2u);
  ASSERT_EQ(results.failures(), 0u);
  const exp::Metric* small = results.rows[0].result.find("gflops");
  const exp::Metric* big = results.rows[1].result.find("gflops");
  ASSERT_NE(small, nullptr);
  ASSERT_NE(big, nullptr);
  EXPECT_LT(small->value, big->value);
}

// ---- cross-schema constraints ----

TEST(Registry, NodesVersusNodeCountIsADeclaredCrossRule) {
  const ScenarioRegistry registry = ScenarioRegistry::builtin();
  for (const char* name : {"gemm", "hpl", "baselines", "fig7_scalability"}) {
    const Scenario* scenario = registry.find(name);
    ASSERT_NE(scenario, nullptr) << name;
    const bool declared = std::any_of(
        scenario->cross_rules.begin(), scenario->cross_rules.end(),
        [](const CrossRule& rule) {
          return rule.rule == "nodes <= node_count";
        });
    EXPECT_TRUE(declared) << name;
  }
}

TEST(Sweep, CrossSchemaViolationFailsThePointWithTheRuleText) {
  // Explicit nodes beyond the instantiated hardware used to clamp
  // silently; now the point fails naming the declared rule, and the legal
  // points of the same sweep still run.
  const ScenarioRegistry registry = ScenarioRegistry::builtin();
  SweepRequest request;
  request.scenario = "gemm";
  request.base_params = {{"size", "512"}, {"node_count", "4"}};
  request.axes = {{"nodes", {"2", "4", "8"}}};
  const SweepResults results = run_sweep(registry, request);
  ASSERT_EQ(results.rows.size(), 3u);
  EXPECT_TRUE(results.rows[0].ok());
  EXPECT_TRUE(results.rows[1].ok());
  ASSERT_FALSE(results.rows[2].ok());
  EXPECT_NE(results.rows[2].error.find("nodes <= node_count"),
            std::string::npos);
}

TEST(Sweep, UnsetNodesStillFollowsNodeCountUnderTheCrossRule) {
  // The rule only bites explicitly-set nodes; the defaulting behaviour of
  // UnsetNodesFollowsNodeCount is unchanged.
  const ScenarioRegistry registry = ScenarioRegistry::builtin();
  SweepRequest request;
  request.scenario = "gemm";
  request.base_params = {{"size", "512"}, {"node_count", "2"}};
  const SweepResults results = run_sweep(registry, request);
  ASSERT_EQ(results.rows.size(), 1u);
  EXPECT_TRUE(results.rows[0].ok()) << results.rows[0].error;
}

// ---- fidelity=sampled through the driver ----

TEST(Sweep, SampledFidelityRunsBeyondTheDetailedCap) {
  // The acceptance point: every GEMM dimension beyond 2048 — rejected by
  // fidelity=detailed — completes under fidelity=sampled with error-bar
  // metrics attached.
  const ScenarioRegistry registry = ScenarioRegistry::builtin();
  SweepRequest request;
  request.scenario = "gemm";
  request.base_params = {{"size", "2176"},   {"tile", "128"},
                         {"nodes", "1"},     {"fidelity", "sampled"},
                         {"sample_frac", "0.000001"}};
  const SweepResults results = run_sweep(registry, request);
  ASSERT_EQ(results.rows.size(), 1u);
  ASSERT_TRUE(results.rows[0].ok()) << results.rows[0].error;
  const exp::Metric* makespan = results.rows[0].result.find("makespan_ms");
  const exp::Metric* ci = results.rows[0].result.find("makespan_ms_ci95");
  const exp::Metric* sampled =
      results.rows[0].result.find("sampled_tiles");
  const exp::Metric* total = results.rows[0].result.find("total_tiles");
  ASSERT_NE(makespan, nullptr);
  ASSERT_NE(ci, nullptr);
  ASSERT_NE(sampled, nullptr);
  ASSERT_NE(total, nullptr);
  EXPECT_GT(makespan->value, 0.0);
  EXPECT_GT(ci->value, 0.0);
  EXPECT_EQ(total->value, 17.0 * 17.0 * 17.0);
  EXPECT_LT(sampled->value, total->value);

  // The same size through fidelity=detailed is a typed row error that
  // points at the sampled remedy.
  request.base_params["fidelity"] = "detailed";
  const SweepResults rejected = run_sweep(registry, request);
  ASSERT_EQ(rejected.rows.size(), 1u);
  ASSERT_FALSE(rejected.rows[0].ok());
  EXPECT_NE(rejected.rows[0].error.find("size <= 2048"),
            std::string::npos);
}

TEST(Cli, ParsesStoreCompactCommand) {
  const CliParse parse =
      parse_cli({"store", "compact", "--store", "campaign.mdb"});
  ASSERT_TRUE(parse.ok) << parse.error;
  EXPECT_EQ(parse.options.command, CliCommand::kStoreCompact);
  EXPECT_EQ(parse.options.store_path, "campaign.mdb");

  EXPECT_FALSE(parse_cli({"store"}).ok);
  EXPECT_FALSE(parse_cli({"store", "compact"}).ok);  // needs --store
  EXPECT_FALSE(parse_cli({"store", "vacuum", "--store", "x"}).ok);
  EXPECT_FALSE(
      parse_cli({"store", "compact", "--store", "x", "--bogus"}).ok);
  const CliParse help = parse_cli({"store", "--help"});
  ASSERT_TRUE(help.ok);
  EXPECT_TRUE(help.options.show_help);
}

}  // namespace
}  // namespace maco::driver
