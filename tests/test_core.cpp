// System-level pieces: config, mapper, GEMM+ scheduler and the timing model
// (the Fig. 6/7 mechanisms).
#include <gtest/gtest.h>

#include "core/config.hpp"
#include "core/gemm_mapper.hpp"
#include "core/gemm_plus.hpp"
#include "core/timing_model.hpp"

namespace maco::core {
namespace {

TEST(Config, DerivedQuantities) {
  const SystemConfig config = SystemConfig::maco_default();
  EXPECT_EQ(config.node_count, 16u);
  EXPECT_NEAR(config.mmae_peak_flops(sa::Precision::kFp64), 80e9, 1e6);
  EXPECT_NEAR(config.mmae_peak_flops(sa::Precision::kFp32), 160e9, 1e6);
  EXPECT_NEAR(config.cpu_peak_flops(sa::Precision::kFp64), 35.2e9, 1e6);
  EXPECT_EQ(config.l3_total_bytes(), 32ull * 1024 * 1024);
  EXPECT_NEAR(config.dram_total_bandwidth(), 204.8e9, 1e6);
  EXPECT_NEAR(config.node_link_bandwidth(), 64e9, 1e6);
}

TEST(Mapper, GridChoicesAreSquareish) {
  EXPECT_EQ(choose_grid(1), (std::pair<unsigned, unsigned>{1, 1}));
  EXPECT_EQ(choose_grid(2), (std::pair<unsigned, unsigned>{1, 2}));
  EXPECT_EQ(choose_grid(4), (std::pair<unsigned, unsigned>{2, 2}));
  EXPECT_EQ(choose_grid(8), (std::pair<unsigned, unsigned>{2, 4}));
  EXPECT_EQ(choose_grid(16), (std::pair<unsigned, unsigned>{4, 4}));
}

TEST(Mapper, FullCoverageNoOverlap) {
  const auto plan = partition_gemm(4096, 4096, 1024, 16);
  ASSERT_EQ(plan.size(), 16u);
  // Every C element covered exactly once.
  std::uint64_t covered = 0;
  for (const auto& node : plan) {
    for (const auto& tile : node.c_tiles) {
      covered += tile.rows * tile.cols;
    }
  }
  EXPECT_EQ(covered, 4096ull * 4096);
  // Fig. 5: node 0 owns the top-left block.
  EXPECT_EQ(plan[0].row_begin, 0u);
  EXPECT_EQ(plan[0].col_begin, 0u);
}

TEST(Mapper, BalancedWork) {
  const auto plan = partition_gemm(4096, 4096, 2048, 16);
  const std::uint64_t peak = critical_path_macs(plan);
  std::uint64_t total = 0;
  for (const auto& node : plan) total += node.macs;
  EXPECT_NEAR(static_cast<double>(peak) * 16 / static_cast<double>(total),
              1.0, 0.05);
}

TEST(Mapper, UnevenDimensionsStillCover) {
  const auto plan = partition_gemm(1000, 3000, 500, 8);
  std::uint64_t covered = 0;
  for (const auto& node : plan) {
    for (const auto& tile : node.c_tiles) covered += tile.rows * tile.cols;
  }
  EXPECT_EQ(covered, 1000ull * 3000);
}

TEST(GemmPlus, SerialSumsStages) {
  std::vector<GemmPlusStage> stages(3, GemmPlusStage{1000, 400, 100});
  const auto serial = schedule_gemm_plus(stages, /*overlap=*/false);
  EXPECT_EQ(serial.total_ps, 3u * 1500);
  EXPECT_EQ(serial.overlap_fraction, 0.0);
}

TEST(GemmPlus, PipelineHidesCpuWork) {
  std::vector<GemmPlusStage> stages(8, GemmPlusStage{1000, 400, 100});
  const auto piped = schedule_gemm_plus(stages, /*overlap=*/true);
  const auto serial = schedule_gemm_plus(stages, /*overlap=*/false);
  EXPECT_LT(piped.total_ps, serial.total_ps);
  EXPECT_GT(piped.overlap_fraction, 0.8);
  // Lower bound: the MMAE busy time plus first stash.
  EXPECT_GE(piped.total_ps, 8u * 1000 + 100);
}

TEST(GemmPlus, CpuBoundStagesExposeCpuTime) {
  std::vector<GemmPlusStage> stages(4, GemmPlusStage{100, 1000, 0});
  const auto piped = schedule_gemm_plus(stages, true);
  // CPU work dominates: the schedule cannot beat the CPU serial chain.
  EXPECT_GE(piped.total_ps, 4u * 100);
  EXPECT_GE(piped.cpu_busy_ps, 4u * 1000);
}

// ---------------- timing model ----------------

class TimingModelTest : public ::testing::Test {
 protected:
  TimingModelTest() : model_(SystemConfig::maco_default()) {}
  SystemTimingModel model_;
};

TEST_F(TimingModelTest, SingleNodeHighEfficiencyWithPrediction) {
  TimingOptions options;
  options.shape = sa::TileShape{1024, 1024, 1024};
  const SystemTiming timing = model_.run(options);
  EXPECT_GT(timing.mean_efficiency, 0.90);
  EXPECT_LE(timing.mean_efficiency, 1.0);
}

TEST_F(TimingModelTest, PredictionGapMatchesFig6Shape) {
  TimingOptions with;
  with.shape = sa::TileShape{1024, 1024, 1024};
  TimingOptions without = with;
  without.use_matlb = false;

  const double eff_with = model_.run(with).mean_efficiency;
  const double eff_without = model_.run(without).mean_efficiency;
  const double gap = eff_with - eff_without;
  // Paper Fig. 6: maximum gap 6.5% at 1024.
  EXPECT_GT(gap, 0.03);
  EXPECT_LT(gap, 0.12);

  // Below TLB reach the gap collapses (<2% at 256).
  TimingOptions small_with = with;
  small_with.shape = sa::TileShape{256, 256, 256};
  TimingOptions small_without = small_with;
  small_without.use_matlb = false;
  const double small_gap = model_.run(small_with).mean_efficiency -
                           model_.run(small_without).mean_efficiency;
  EXPECT_LT(small_gap, 0.02);
}

TEST_F(TimingModelTest, TranslationEstimateTlbReachKnee) {
  TimingOptions options;
  options.shape = sa::TileShape{256, 256, 256};
  const auto resident =
      model_.estimate_translation(options, options.shape);
  options.shape = sa::TileShape{2048, 2048, 2048};
  const auto thrash = model_.estimate_translation(options, options.shape);
  EXPECT_LT(resident.walks_per_tile, 2.0);   // fits sTLB reach
  EXPECT_GT(thrash.walks_per_tile, 16.0);    // recurring misses
}

TEST_F(TimingModelTest, ScalabilityLossAtSixteenNodes) {
  TimingOptions one;
  one.shape = sa::TileShape{4096, 4096, 4096};
  one.active_nodes = 1;
  TimingOptions sixteen = one;
  sixteen.active_nodes = 16;

  const double eff1 = model_.run(one).mean_efficiency;
  const double eff16 = model_.run(sixteen).mean_efficiency;
  EXPECT_GT(eff1, eff16);           // contention costs something
  EXPECT_GT(eff16, 0.80);           // but the paper reports ~90% average
  EXPECT_LT(eff1 - eff16, 0.15);    // ~10% loss, not a collapse
}

TEST_F(TimingModelTest, CooperativeSplitsWork) {
  TimingOptions coop;
  coop.shape = sa::TileShape{4096, 4096, 4096};
  coop.active_nodes = 16;
  coop.cooperative = true;
  const SystemTiming timing = model_.run(coop);
  // 16 nodes cooperating finish ~16x faster than one node.
  TimingOptions solo = coop;
  solo.active_nodes = 1;
  solo.cooperative = false;
  const SystemTiming single = model_.run(solo);
  const double speedup = static_cast<double>(single.makespan_ps) /
                         static_cast<double>(timing.makespan_ps);
  EXPECT_GT(speedup, 12.0);
  EXPECT_LE(speedup, 16.5);
}

TEST_F(TimingModelTest, AggregateCyclesMatchValidatedModel) {
  // With no SIMD override the local closed form must agree with the
  // sa::compute_sa_timing-validated formula.
  TimingOptions options;
  options.shape = sa::TileShape{192, 128, 64};
  options.inner = 64;
  const std::uint64_t cycles =
      model_.aggregate_sa_cycles(options.shape, options);
  const sa::SaTiming tile =
      sa::compute_sa_timing(sa::TileShape{64, 64, 64},
                            SystemConfig::maco_default().mmae.sa);
  EXPECT_EQ(cycles, tile.total_cycles * (3 * 2 * 1));
}

TEST_F(TimingModelTest, StashOffCostsThroughput) {
  // A single node at FP64 is compute-bound regardless of stash (its ~10 GB/s
  // demand never stresses the memory system); the benefit shows when all 16
  // nodes share the DDR supply and locking trims the re-stream traffic.
  TimingOptions with;
  with.shape = sa::TileShape{4096, 4096, 4096};
  with.active_nodes = 16;
  TimingOptions without = with;
  without.use_stash_lock = false;
  EXPECT_GT(model_.run(with).total_gflops,
            model_.run(without).total_gflops);
}

TEST_F(TimingModelTest, LayersAggregateThroughput) {
  TimingOptions options;
  options.active_nodes = 16;
  std::vector<sa::TileShape> layers = {
      sa::TileShape{1024, 1024, 1024}, sa::TileShape{2048, 2048, 2048}};
  const SystemTiming timing = model_.run_layers(layers, options);
  EXPECT_GT(timing.total_gflops, 0.0);
  EXPECT_GT(timing.makespan_ps, 0u);
}

}  // namespace
}  // namespace maco::core

namespace maco::core {
namespace {

TEST(PageSizeAblation, HugePagesEraseThePredictionGap) {
  const SystemTimingModel model(SystemConfig::maco_default());
  TimingOptions with;
  with.shape = sa::TileShape{2048, 2048, 2048};
  with.page_bytes = 2 * 1024 * 1024;
  TimingOptions without = with;
  without.use_matlb = false;
  const double gap = model.run(with).mean_efficiency -
                     model.run(without).mean_efficiency;
  EXPECT_LT(gap, 0.01);  // nothing left to predict away
  EXPECT_LT(model.run(without).translation.walks_per_tile, 1.0);
}

}  // namespace
}  // namespace maco::core
