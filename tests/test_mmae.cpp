// MMAE end-to-end: STQ semantics, DMA with predictive vs blocking
// translation, and full GEMM tasks through the accelerator controller
// (functional data + task lifecycle + exceptions).
#include <gtest/gtest.h>

#include <algorithm>

#include "mmae/accelerator_controller.hpp"
#include "mmae/stq.hpp"
#include "sa/host_matrix.hpp"
#include "util/rng.hpp"

namespace maco::mmae {
namespace {

// Fixed-latency, bandwidth-limited backend over physical memory.
class TestBackend final : public MemoryBackend {
 public:
  explicit TestBackend(mem::PhysicalMemory& memory, double bytes_per_second = 64e9,
                       sim::TimePs latency = 10'000)
      : memory_(memory), bw_(bytes_per_second), latency_(latency) {}

  sim::TimePs read(int, vm::PhysAddr pa, void* out, std::uint32_t bytes,
                   sim::TimePs start) override {
    memory_.read(pa, out, bytes);
    bytes_read += bytes;
    return start + latency_ + transfer_ps(bytes);
  }
  sim::TimePs write(int, vm::PhysAddr pa, const void* data,
                    std::uint32_t bytes, sim::TimePs start) override {
    memory_.write(pa, data, bytes);
    bytes_written += bytes;
    return start + latency_ + transfer_ps(bytes);
  }
  sim::TimePs stash(int, vm::PhysAddr, std::uint32_t bytes, bool lock,
                    sim::TimePs start) override {
    stashed_bytes += bytes;
    if (lock) locked_bytes += bytes;
    return start + latency_ + transfer_ps(bytes);
  }

  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t stashed_bytes = 0;
  std::uint64_t locked_bytes = 0;

 private:
  sim::TimePs transfer_ps(std::uint32_t bytes) const {
    return static_cast<sim::TimePs>(bytes / bw_ * 1e12);
  }
  mem::PhysicalMemory& memory_;
  double bw_;
  sim::TimePs latency_;
};

TEST(Stq, PushDecodeExecuteLifecycle) {
  SlaveTaskQueue stq(2);
  isa::GemmParams gemm;
  gemm.m = gemm.n = gemm.k = 64;
  EXPECT_TRUE(stq.push(3, isa::Mnemonic::kMaCfg, gemm.pack(), 7));
  const auto pending = stq.next_pending();
  ASSERT_TRUE(pending.has_value());
  const StqEntry& e = stq.entry(*pending);
  EXPECT_EQ(e.maid, 3u);
  EXPECT_EQ(e.asid, 7);
  EXPECT_EQ(std::get<isa::GemmParams>(e.params), gemm);
  stq.mark_running(*pending);
  stq.complete(*pending, cpu::ExceptionType::kNone);
  EXPECT_EQ(stq.entry(*pending).state, StqState::kDone);
  stq.release(*pending);
  EXPECT_EQ(stq.occupied(), 0u);
}

TEST(Stq, FifoOrderAcrossEntries) {
  SlaveTaskQueue stq(4);
  isa::MoveParams move;
  move.row_bytes = 64;
  stq.push(0, isa::Mnemonic::kMaMove, move.pack(), 1);
  stq.push(1, isa::Mnemonic::kMaMove, move.pack(), 1);
  EXPECT_EQ(*stq.next_pending(), 0u);
  stq.mark_running(0);
  EXPECT_EQ(*stq.next_pending(), 1u);
}

TEST(Stq, FullQueueRejects) {
  SlaveTaskQueue stq(1);
  isa::MoveParams move;
  move.row_bytes = 64;
  EXPECT_TRUE(stq.push(0, isa::Mnemonic::kMaMove, move.pack(), 1));
  EXPECT_FALSE(stq.push(1, isa::Mnemonic::kMaMove, move.pack(), 1));
}

// ---------------- full-node fixture ----------------

class MmaeFixture : public ::testing::Test {
 protected:
  MmaeFixture()
      : backend_(memory_), walk_oracle_(8'000),
        space_(kAsid, 0x0100000000, 0x1000000000) {
    cpu_ = std::make_unique<cpu::CpuCore>(engine_, 0, cpu::CpuConfig{},
                                          walk_oracle_);
    MmaeConfig config;
    ac_ = std::make_unique<AcceleratorController>(engine_, 0, config,
                                                  backend_, memory_, *cpu_);
    cpu_->attach_accelerator(ac_.get());
    cpu_->set_context(kAsid, &space_.page_table());
  }

  vm::MatrixDesc alloc_matrix(std::uint64_t rows, std::uint64_t cols) {
    vm::MatrixDesc desc;
    desc.rows = rows;
    desc.cols = cols;
    desc.elem_bytes = 8;
    desc.base = space_.alloc(rows * cols * 8);
    return desc;
  }

  void write_matrix(const vm::MatrixDesc& desc, const sa::HostMatrix& m) {
    for (std::uint64_t r = 0; r < desc.rows; ++r) {
      for (std::uint64_t c = 0; c < desc.cols; ++c) {
        memory_.write_f64(*space_.page_table().translate(
                              desc.element_addr(r, c)),
                          m.at(r, c));
      }
    }
  }

  sa::HostMatrix read_matrix(const vm::MatrixDesc& desc) {
    sa::HostMatrix out(desc.rows, desc.cols);
    for (std::uint64_t r = 0; r < desc.rows; ++r) {
      for (std::uint64_t c = 0; c < desc.cols; ++c) {
        out.at(r, c) = memory_.read_f64(
            *space_.page_table().translate(desc.element_addr(r, c)));
      }
    }
    return out;
  }

  // Dispatch a GEMM through the MPAIS path and run to completion.
  cpu::Maid dispatch_gemm(const isa::GemmParams& params) {
    cpu_->regs().write_param_block(10, params.pack());
    cpu_->execute_source("ma_cfg x5, x10");
    engine_.run();
    return static_cast<cpu::Maid>(cpu_->regs().read(5));
  }

  static constexpr vm::Asid kAsid = 4;
  sim::SimEngine engine_;
  mem::PhysicalMemory memory_;
  TestBackend backend_;
  vm::FixedLatencyOracle walk_oracle_;
  vm::AddressSpace space_;
  std::unique_ptr<cpu::CpuCore> cpu_;
  std::unique_ptr<AcceleratorController> ac_;
};

TEST_F(MmaeFixture, GemmMatchesReference) {
  util::Rng rng(11);
  const std::uint64_t m = 96, n = 80, k = 72;
  const auto a_desc = alloc_matrix(m, k);
  const auto b_desc = alloc_matrix(k, n);
  const auto c_desc = alloc_matrix(m, n);
  const auto a = sa::HostMatrix::random(m, k, rng);
  const auto b = sa::HostMatrix::random(k, n, rng);
  const auto c = sa::HostMatrix::random(m, n, rng);
  write_matrix(a_desc, a);
  write_matrix(b_desc, b);
  write_matrix(c_desc, c);

  isa::GemmParams params;
  params.a_base = a_desc.base;
  params.b_base = b_desc.base;
  params.c_base = c_desc.base;
  params.m = m;
  params.n = n;
  params.k = k;
  const cpu::Maid maid = dispatch_gemm(params);

  EXPECT_TRUE(cpu_->mtq().entry(maid).done);
  EXPECT_FALSE(cpu_->mtq().entry(maid).exception_en);

  sa::HostMatrix expected = c;
  sa::reference_gemm(a, b, expected);
  EXPECT_TRUE(read_matrix(c_desc).approx_equal(expected, 1e-9));

  ASSERT_EQ(ac_->reports().size(), 1u);
  const TaskReport& report = ac_->reports().front();
  EXPECT_EQ(report.macs, m * n * k);
  EXPECT_GT(report.end, report.start);
  EXPECT_GT(report.dma_bytes, 0u);
}

TEST_F(MmaeFixture, NonAccumulateOverwritesC) {
  util::Rng rng(13);
  const std::uint64_t dim = 64;
  const auto a_desc = alloc_matrix(dim, dim);
  const auto b_desc = alloc_matrix(dim, dim);
  const auto c_desc = alloc_matrix(dim, dim);
  const auto a = sa::HostMatrix::random(dim, dim, rng);
  const auto b = sa::HostMatrix::random(dim, dim, rng);
  write_matrix(a_desc, a);
  write_matrix(b_desc, b);
  write_matrix(c_desc, sa::HostMatrix::random(dim, dim, rng));  // garbage

  isa::GemmParams params;
  params.a_base = a_desc.base;
  params.b_base = b_desc.base;
  params.c_base = c_desc.base;
  params.m = params.n = params.k = dim;
  params.accumulate = false;
  dispatch_gemm(params);

  sa::HostMatrix expected(dim, dim);
  sa::reference_gemm(a, b, expected);
  EXPECT_TRUE(read_matrix(c_desc).approx_equal(expected, 1e-9));
}

TEST_F(MmaeFixture, UnmappedMatrixRaisesPageFault) {
  isa::GemmParams params;
  params.a_base = 0x7FFF00000000ull;  // never mapped
  params.b_base = params.a_base + (1 << 20);
  params.c_base = params.a_base + (2 << 20);
  params.m = params.n = params.k = 64;
  const cpu::Maid maid = dispatch_gemm(params);
  const cpu::MtqEntry& entry = cpu_->mtq().entry(maid);
  EXPECT_TRUE(entry.done);
  EXPECT_TRUE(entry.exception_en);
  EXPECT_EQ(entry.exception_type, cpu::ExceptionType::kPageFault);
}

TEST_F(MmaeFixture, OversizedInnerTileRaisesBufferOverflow) {
  const auto a_desc = alloc_matrix(256, 256);
  isa::GemmParams params;
  params.a_base = params.b_base = params.c_base = a_desc.base;
  params.m = params.n = params.k = 256;
  params.inner_tile_rows = 256;  // 256×64×8 = 128 KiB > 32 KiB bank
  const cpu::Maid maid = dispatch_gemm(params);
  EXPECT_EQ(cpu_->mtq().entry(maid).exception_type,
            cpu::ExceptionType::kBufferOverflow);
}

TEST_F(MmaeFixture, ZeroDimensionRaisesInvalidConfig) {
  isa::GemmParams params;
  params.m = 0;
  params.n = params.k = 64;
  const cpu::Maid maid = dispatch_gemm(params);
  EXPECT_EQ(cpu_->mtq().entry(maid).exception_type,
            cpu::ExceptionType::kInvalidConfig);
}

TEST_F(MmaeFixture, MoveCopiesData) {
  const auto src = alloc_matrix(16, 64);
  const auto dst = alloc_matrix(16, 64);
  util::Rng rng(17);
  const auto values = sa::HostMatrix::random(16, 64, rng);
  write_matrix(src, values);

  isa::MoveParams move;
  move.src = src.base;
  move.dst = dst.base;
  move.rows = 16;
  move.row_bytes = 64 * 8;
  move.src_stride = src.stride();
  move.dst_stride = dst.stride();
  cpu_->regs().write_param_block(10, move.pack());
  cpu_->execute_source("ma_move x5, x10");
  engine_.run();

  EXPECT_TRUE(read_matrix(dst).approx_equal(values, 0.0));
}

TEST_F(MmaeFixture, InitZeroesRegion) {
  const auto dst = alloc_matrix(8, 64);
  util::Rng rng(19);
  write_matrix(dst, sa::HostMatrix::random(8, 64, rng));

  isa::InitParams init;
  init.dst = dst.base;
  init.rows = 8;
  init.row_bytes = 64 * 8;
  init.stride = dst.stride();
  cpu_->regs().write_param_block(10, init.pack());
  cpu_->execute_source("ma_init x5, x10");
  engine_.run();

  const auto result = read_matrix(dst);
  for (std::uint64_t r = 0; r < 8; ++r) {
    for (std::uint64_t c = 0; c < 64; ++c) {
      EXPECT_DOUBLE_EQ(result.at(r, c), 0.0);
    }
  }
}

TEST_F(MmaeFixture, StashIssuesPrefetchWithLock) {
  const auto m = alloc_matrix(16, 64);
  isa::StashParams stash;
  stash.base = m.base;
  stash.rows = 16;
  stash.row_bytes = 64 * 8;
  stash.stride = m.stride();
  stash.lock = true;
  cpu_->regs().write_param_block(10, stash.pack());
  cpu_->execute_source("ma_stash x5, x10");
  engine_.run();
  EXPECT_EQ(backend_.stashed_bytes, 16u * 64 * 8);
  EXPECT_EQ(backend_.locked_bytes, 16u * 64 * 8);
}

TEST_F(MmaeFixture, BackToBackTasksSerializeInOrder) {
  util::Rng rng(23);
  const auto a_desc = alloc_matrix(64, 64);
  const auto b_desc = alloc_matrix(64, 64);
  const auto c_desc = alloc_matrix(64, 64);
  write_matrix(a_desc, sa::HostMatrix::random(64, 64, rng));
  write_matrix(b_desc, sa::HostMatrix::random(64, 64, rng));
  write_matrix(c_desc, sa::HostMatrix(64, 64));

  isa::GemmParams params;
  params.a_base = a_desc.base;
  params.b_base = b_desc.base;
  params.c_base = c_desc.base;
  params.m = params.n = params.k = 64;
  cpu_->regs().write_param_block(10, params.pack());
  cpu_->execute_source("ma_cfg x5, x10");
  cpu_->execute_source("ma_cfg x6, x10");
  engine_.run();

  ASSERT_EQ(ac_->reports().size(), 2u);
  EXPECT_GE(ac_->reports()[1].start, ac_->reports()[0].end);
  EXPECT_TRUE(cpu_->mtq().entry(0).done);
  EXPECT_TRUE(cpu_->mtq().entry(1).done);
}

TEST_F(MmaeFixture, MatlbReducesBlockingWalks) {
  util::Rng rng(29);
  const std::uint64_t dim = 128;
  const auto a_desc = alloc_matrix(dim, dim);
  const auto b_desc = alloc_matrix(dim, dim);
  const auto c_desc = alloc_matrix(dim, dim);
  write_matrix(a_desc, sa::HostMatrix::random(dim, dim, rng));
  write_matrix(b_desc, sa::HostMatrix::random(dim, dim, rng));
  write_matrix(c_desc, sa::HostMatrix(dim, dim));

  isa::GemmParams params;
  params.a_base = a_desc.base;
  params.b_base = b_desc.base;
  params.c_base = c_desc.base;
  params.m = params.n = params.k = dim;
  dispatch_gemm(params);
  const TaskReport with_matlb = ac_->reports().back();
  EXPECT_GT(with_matlb.matlb_hits, 0u);
  // The prediction covers nearly all page touches.
  EXPECT_LT(with_matlb.blocking_walks, with_matlb.matlb_hits / 4 + 4);
}

}  // namespace
}  // namespace maco::mmae

namespace maco::mmae {
namespace {

TEST(DmaPipelining, OutstandingRequestsOverlapLatency) {
  // With N outstanding requests, a latency-bound stream runs ~N times
  // faster than strict serialization.
  mem::PhysicalMemory memory;
  const sim::TimePs latency = 100'000;  // 100 ns per burst
  TestBackend backend(memory, /*bytes_per_second=*/1e18, latency);

  vm::PageTable table(0x4000'0000);
  for (std::uint64_t off = 0; off < 512 * 1024; off += vm::kPageSize) {
    table.map(0x10000000 + off, 0x10000000 + off);
  }
  vm::FixedLatencyOracle oracle(1000);
  cpu::Mmu mmu("dma.mmu", cpu::MmuConfig{}, oracle);
  TranslationContext ctx;
  ctx.asid = 1;
  ctx.table = &table;
  ctx.mmu = &mmu;

  const Region2D region{0x10000000, 64, 512, 4096};  // 64 page-new bursts
  std::vector<std::uint8_t> buffer(region.total_bytes());

  DmaConfig pipelined;
  pipelined.max_outstanding = 8;
  DmaConfig serial;
  serial.max_outstanding = 1;

  DmaEngine fast("dma.fast", 0, pipelined, backend, memory);
  DmaEngine slow("dma.slow", 0, serial, backend, memory);
  const auto fast_result = fast.read_region(region, buffer, ctx, 0);
  const auto slow_result = slow.read_region(region, buffer, ctx, 0);
  ASSERT_FALSE(fast_result.fault);
  ASSERT_FALSE(slow_result.fault);
  // Serial: ~64 x 100ns. Pipelined: ~64/8 x 100ns (plus walk stalls).
  EXPECT_GT(slow_result.end_time, 6 * fast_result.end_time);
}

}  // namespace
}  // namespace maco::mmae
