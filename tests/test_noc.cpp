#include <gtest/gtest.h>

#include <map>

#include "noc/link_load_model.hpp"
#include "noc/mesh.hpp"
#include "sim/engine.hpp"

namespace maco::noc {
namespace {

TEST(Router, XyRouting) {
  Router r(5, 1, 1, RouterConfig{});  // node 5 of a 4×4 mesh
  EXPECT_EQ(r.route(3, 1), Port::kEast);
  EXPECT_EQ(r.route(0, 1), Port::kWest);
  EXPECT_EQ(r.route(1, 3), Port::kSouth);
  EXPECT_EQ(r.route(1, 0), Port::kNorth);
  EXPECT_EQ(r.route(1, 1), Port::kLocal);
  // X before Y: a diagonal destination goes east first.
  EXPECT_EQ(r.route(3, 3), Port::kEast);
}

TEST(Router, BufferSpaceEnforced) {
  RouterConfig config;
  config.vc_depth = 2;
  Router r(0, 0, 0, config);
  Packet pkt;
  EXPECT_TRUE(r.has_buffer_space(Port::kLocal, 0));
  r.accept_flit(Port::kLocal, 0, Flit{&pkt, true, false});
  r.accept_flit(Port::kLocal, 0, Flit{&pkt, false, true});
  EXPECT_FALSE(r.has_buffer_space(Port::kLocal, 0));
  EXPECT_TRUE(r.has_buffer_space(Port::kLocal, 1));  // other VC independent
}

class MeshTest : public ::testing::Test {
 protected:
  MeshTest() : mesh_(engine_, MeshConfig{}) {
    for (unsigned n = 0; n < mesh_.node_count(); ++n) {
      mesh_.register_endpoint(static_cast<NodeId>(n), [this, n](const Packet& p) {
        received_[n].push_back(p);
      });
    }
  }

  sim::SimEngine engine_;
  MeshNetwork mesh_;
  std::map<unsigned, std::vector<Packet>> received_;
};

TEST_F(MeshTest, DeliversSinglePacket) {
  Packet pkt;
  pkt.src = 0;
  pkt.dst = 15;
  pkt.payload_bytes = 64;
  mesh_.inject(pkt);
  engine_.run();
  ASSERT_EQ(received_[15].size(), 1u);
  EXPECT_EQ(received_[15][0].src, 0);
  EXPECT_EQ(mesh_.packets_delivered(), 1u);
}

TEST_F(MeshTest, LatencyScalesWithDistance) {
  Packet near;
  near.src = 0;
  near.dst = 1;
  near.payload_bytes = 0;
  mesh_.inject(near);
  engine_.run();
  const double lat_near = mesh_.mean_packet_latency_ps();

  sim::SimEngine engine2;
  MeshNetwork mesh2(engine2, MeshConfig{});
  mesh2.register_endpoint(15, [](const Packet&) {});
  Packet far;
  far.src = 0;
  far.dst = 15;
  far.payload_bytes = 0;
  mesh2.inject(far);
  engine2.run();
  EXPECT_GT(mesh2.mean_packet_latency_ps(), lat_near);
}

TEST_F(MeshTest, SelfDelivery) {
  Packet pkt;
  pkt.src = 3;
  pkt.dst = 3;
  pkt.payload_bytes = 8;
  mesh_.inject(pkt);
  engine_.run();
  EXPECT_EQ(received_[3].size(), 1u);
}

TEST_F(MeshTest, ManyToOneAllArrive) {
  for (unsigned src = 0; src < 16; ++src) {
    Packet pkt;
    pkt.src = static_cast<NodeId>(src);
    pkt.dst = 5;
    pkt.payload_bytes = 64;
    mesh_.inject(pkt);
  }
  engine_.run();
  EXPECT_EQ(received_[5].size(), 16u);
}

TEST_F(MeshTest, AllToAllUniformDelivers) {
  unsigned expected = 0;
  for (unsigned src = 0; src < 16; ++src) {
    for (unsigned dst = 0; dst < 16; ++dst) {
      if (src == dst) continue;
      Packet pkt;
      pkt.src = static_cast<NodeId>(src);
      pkt.dst = static_cast<NodeId>(dst);
      pkt.payload_bytes = 32;
      pkt.msg_class = (src + dst) % 2 ? MsgClass::kResponse
                                      : MsgClass::kRequest;
      mesh_.inject(pkt);
      ++expected;
    }
  }
  engine_.run();
  EXPECT_EQ(mesh_.packets_delivered(), expected);
}

TEST_F(MeshTest, MultiFlitPacketStaysContiguous) {
  // Two big packets from different sources to the same destination: wormhole
  // ownership must keep each packet's flits together (delivery happens once,
  // on the tail).
  Packet a;
  a.src = 0;
  a.dst = 15;
  a.payload_bytes = 256;  // ~9 flits
  Packet b;
  b.src = 3;
  b.dst = 15;
  b.payload_bytes = 256;
  mesh_.inject(a);
  mesh_.inject(b);
  engine_.run();
  EXPECT_EQ(received_[15].size(), 2u);
}

TEST_F(MeshTest, FlitCountsMatchPayload) {
  EXPECT_EQ(mesh_.flits_for(0), 1u);        // header only
  EXPECT_EQ(mesh_.flits_for(24), 1u);       // 24+8 = 32 -> one flit
  EXPECT_EQ(mesh_.flits_for(25), 2u);
  EXPECT_EQ(mesh_.flits_for(64), 3u);       // 72 bytes -> 3 flits
}

TEST(MeshThroughput, SaturatesNearLinkRate) {
  // Stream many single-flit packets across one link: delivered flit rate
  // should approach 1 flit/cycle.
  sim::SimEngine engine;
  MeshConfig config;
  config.width = 2;
  config.height = 1;
  MeshNetwork mesh(engine, config);
  mesh.register_endpoint(1, [](const Packet&) {});
  const unsigned packets = 200;
  for (unsigned i = 0; i < packets; ++i) {
    Packet pkt;
    pkt.src = 0;
    pkt.dst = 1;
    pkt.payload_bytes = 16;  // single flit
    mesh.inject(pkt);
  }
  const sim::TimePs end = engine.run();
  const double cycles = static_cast<double>(end) / config.cycle_ps;
  EXPECT_LT(cycles, packets * 1.5 + 20);  // near 1 packet/cycle
  EXPECT_EQ(mesh.packets_delivered(), packets);
}

TEST(LinkLoad, HopCount) {
  LinkLoadModel model(LinkLoadConfig{});
  EXPECT_EQ(model.hop_count(0, 0), 0u);
  EXPECT_EQ(model.hop_count(0, 3), 3u);
  EXPECT_EQ(model.hop_count(0, 15), 6u);
  EXPECT_EQ(model.hop_count(5, 6), 1u);
}

TEST(LinkLoad, SingleFlowUtilization) {
  LinkLoadModel model(LinkLoadConfig{});
  model.add_flow(0, 3, 32e9);  // half a 64 GB/s link
  EXPECT_DOUBLE_EQ(model.max_utilization(), 0.5);
  EXPECT_DOUBLE_EQ(model.path_utilization(0, 3), 0.5);
  EXPECT_DOUBLE_EQ(model.flow_rate_scale(0, 3), 1.0);
}

TEST(LinkLoad, OversubscriptionSlowsFlows) {
  LinkLoadModel model(LinkLoadConfig{});
  model.add_flow(0, 3, 64e9);
  model.add_flow(1, 3, 64e9);  // shares links 1->2->3
  EXPECT_GT(model.max_utilization(), 1.0);
  EXPECT_LT(model.flow_rate_scale(1, 3), 1.0);
}

TEST(LinkLoad, DisjointPathsDoNotInterfere) {
  LinkLoadModel model(LinkLoadConfig{});
  model.add_flow(0, 1, 64e9);
  model.add_flow(8, 9, 64e9);
  EXPECT_DOUBLE_EQ(model.path_utilization(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(model.path_utilization(8, 9), 1.0);
  EXPECT_DOUBLE_EQ(model.max_utilization(), 1.0);
}

TEST(LinkLoad, EjectionLinkCounted) {
  LinkLoadModel model(LinkLoadConfig{});
  // Two flows converging on node 3's ejection port.
  model.add_flow(0, 3, 48e9);
  model.add_flow(7, 3, 48e9);
  EXPECT_GT(model.path_utilization(0, 3), 1.0);  // 96 GB/s into one ejector
}

// Cross-validation: the analytic model's saturation prediction matches the
// flit-level mesh for a two-flows-one-link pattern.
TEST(LinkLoadValidation, MatchesFlitLevelSaturation) {
  sim::SimEngine engine;
  MeshConfig config;
  config.width = 4;
  config.height = 1;
  MeshNetwork mesh(engine, config);
  mesh.register_endpoint(3, [](const Packet&) {});
  // Nodes 0 and 1 each stream to node 3; the 2->3 link is the bottleneck.
  const unsigned per_source = 100;
  for (unsigned i = 0; i < per_source; ++i) {
    for (NodeId src : {0, 1}) {
      Packet pkt;
      pkt.src = src;
      pkt.dst = 3;
      pkt.payload_bytes = 24;  // single flit
      mesh.inject(pkt);
    }
  }
  const sim::TimePs end = engine.run();
  const double cycles = static_cast<double>(end) / config.cycle_ps;
  // 200 flits through one link ≈ 200 cycles (±fill).
  EXPECT_NEAR(cycles, 200.0, 30.0);

  LinkLoadConfig llc;
  llc.width = 4;
  llc.height = 1;
  LinkLoadModel model(llc);
  model.add_flow(0, 3, 64e9);
  model.add_flow(1, 3, 64e9);
  EXPECT_NEAR(model.max_utilization(), 2.0, 1e-9);  // 2× oversubscribed
}

}  // namespace
}  // namespace maco::noc

namespace maco::noc {
namespace {

TEST(MeshVc, DifferentMessageClassesUseDifferentVcs) {
  // Requests and responses travel in separate virtual channels: a long
  // request wormhole must not block a response on the same physical link.
  sim::SimEngine engine;
  MeshConfig config;
  config.width = 4;
  config.height = 1;
  MeshNetwork mesh(engine, config);
  std::vector<std::uint64_t> arrivals;
  mesh.register_endpoint(3, [&arrivals](const Packet& pkt) {
    arrivals.push_back(pkt.id);
  });

  Packet big;  // 16-flit request wormhole 0 -> 3
  big.src = 0;
  big.dst = 3;
  big.payload_bytes = 500;
  big.msg_class = MsgClass::kRequest;
  const auto big_id = mesh.inject(big);

  Packet small;  // single-flit response right behind it
  small.src = 0;
  small.dst = 3;
  small.payload_bytes = 8;
  small.msg_class = MsgClass::kResponse;
  const auto small_id = mesh.inject(small);

  engine.run();
  ASSERT_EQ(arrivals.size(), 2u);
  // The response overtakes the long request thanks to its own VC.
  EXPECT_EQ(arrivals.front(), small_id);
  EXPECT_EQ(arrivals.back(), big_id);
}

TEST(MeshVc, SameClassKeepsFifo) {
  sim::SimEngine engine;
  MeshConfig config;
  config.width = 4;
  config.height = 1;
  MeshNetwork mesh(engine, config);
  std::vector<std::uint64_t> arrivals;
  mesh.register_endpoint(3, [&arrivals](const Packet& pkt) {
    arrivals.push_back(pkt.id);
  });
  Packet big;
  big.src = 0;
  big.dst = 3;
  big.payload_bytes = 500;
  const auto first = mesh.inject(big);
  Packet small = big;
  small.payload_bytes = 8;
  const auto second = mesh.inject(small);
  engine.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals.front(), first);   // same VC: wormhole order holds
  EXPECT_EQ(arrivals.back(), second);
}

}  // namespace
}  // namespace maco::noc
