// Failure injection at whole-system level: faults, exhaustion, and
// recovery flows that the module tests only exercise in isolation.
//
// These tests assert MACO's headline robustness claims over Gemmini-class
// designs (Section I): exception events are *recorded per task* in the MTQ,
// a faulting task terminates without wedging the MMAE, other processes and
// subsequent tasks are unaffected, and MA_CLEAR restores the entry.
#include <gtest/gtest.h>

#include "core/maco_system.hpp"
#include "util/rng.hpp"

namespace maco::core {
namespace {

SystemConfig one_node_config() {
  SystemConfig config = SystemConfig::maco_default();
  config.node_count = 1;
  return config;
}

isa::GemmParams gemm_of(const vm::MatrixDesc& a, const vm::MatrixDesc& b,
                        const vm::MatrixDesc& c) {
  isa::GemmParams params;
  params.a_base = a.base;
  params.b_base = b.base;
  params.c_base = c.base;
  params.m = static_cast<std::uint32_t>(a.rows);
  params.k = static_cast<std::uint32_t>(a.cols);
  params.n = static_cast<std::uint32_t>(b.cols);
  return params;
}

class FaultFixture : public ::testing::Test {
 protected:
  FaultFixture() : system_(one_node_config()), rng_(1234) {
    process_ = &system_.create_process();
    system_.schedule_process(0, *process_);
    a_desc_ = system_.alloc_matrix(*process_, 64, 64);
    b_desc_ = system_.alloc_matrix(*process_, 64, 64);
    c_desc_ = system_.alloc_matrix(*process_, 64, 64);
    a_ = sa::HostMatrix::random(64, 64, rng_);
    b_ = sa::HostMatrix::random(64, 64, rng_);
    system_.write_matrix(*process_, a_desc_, a_);
    system_.write_matrix(*process_, b_desc_, b_);
    system_.write_matrix(*process_, c_desc_, sa::HostMatrix(64, 64));
  }

  // Dispatches `params` on node 0, runs to completion, returns the entry.
  const cpu::MtqEntry& dispatch(const isa::GemmParams& params) {
    cpu::CpuCore& cpu = system_.node(0).cpu();
    cpu.regs().write_param_block(10, params.pack());
    cpu.execute_source("ma_cfg x5, x10");
    system_.run();
    return cpu.mtq().entry(static_cast<cpu::Maid>(cpu.regs().read(5)));
  }

  MacoSystem system_;
  util::Rng rng_;
  Process* process_ = nullptr;
  vm::MatrixDesc a_desc_, b_desc_, c_desc_;
  sa::HostMatrix a_, b_;
};

TEST_F(FaultFixture, UnmappedAFaults) {
  isa::GemmParams params = gemm_of(a_desc_, b_desc_, c_desc_);
  params.a_base = 0x7f00'0000'0000ull;  // never mapped
  const auto& entry = dispatch(params);
  EXPECT_TRUE(entry.done);
  EXPECT_TRUE(entry.exception_en);
  EXPECT_EQ(entry.exception_type, cpu::ExceptionType::kPageFault);
}

TEST_F(FaultFixture, UnmappedBFaults) {
  isa::GemmParams params = gemm_of(a_desc_, b_desc_, c_desc_);
  params.b_base = 0x7f00'0000'0000ull;
  const auto& entry = dispatch(params);
  EXPECT_TRUE(entry.exception_en);
  EXPECT_EQ(entry.exception_type, cpu::ExceptionType::kPageFault);
}

TEST_F(FaultFixture, UnmappedCFaults) {
  isa::GemmParams params = gemm_of(a_desc_, b_desc_, c_desc_);
  params.c_base = 0x7f00'0000'0000ull;
  const auto& entry = dispatch(params);
  EXPECT_TRUE(entry.exception_en);
  EXPECT_EQ(entry.exception_type, cpu::ExceptionType::kPageFault);
}

TEST_F(FaultFixture, PartiallyMappedOperandFaults) {
  // A matrix descriptor that runs past its mapped footprint: the early
  // tiles translate, a later page faults mid-task.
  isa::GemmParams params = gemm_of(a_desc_, b_desc_, c_desc_);
  params.m = 128;  // a_desc_ only maps 64 rows
  const auto& entry = dispatch(params);
  EXPECT_TRUE(entry.exception_en);
  EXPECT_EQ(entry.exception_type, cpu::ExceptionType::kPageFault);
}

TEST_F(FaultFixture, FaultDoesNotWedgeSubsequentTasks) {
  isa::GemmParams bad = gemm_of(a_desc_, b_desc_, c_desc_);
  bad.a_base = 0x7f00'0000'0000ull;
  cpu::CpuCore& cpu = system_.node(0).cpu();
  cpu.regs().write_param_block(10, bad.pack());
  cpu.execute_source("ma_cfg x5, x10");
  system_.run();
  cpu.execute_source("ma_clear x5");
  EXPECT_EQ(cpu.mtq().occupied(), 0u);

  // The same node immediately runs a clean GEMM with correct numerics.
  const auto& entry = dispatch(gemm_of(a_desc_, b_desc_, c_desc_));
  EXPECT_TRUE(entry.done);
  EXPECT_FALSE(entry.exception_en);
  sa::HostMatrix expected(64, 64);
  sa::reference_gemm(a_, b_, expected);
  EXPECT_TRUE(
      system_.read_matrix(*process_, c_desc_).approx_equal(expected, 1e-9));
}

TEST_F(FaultFixture, ZeroDimensionRejectedAsInvalidConfig) {
  isa::GemmParams params = gemm_of(a_desc_, b_desc_, c_desc_);
  params.n = 0;
  const auto& entry = dispatch(params);
  EXPECT_TRUE(entry.exception_en);
  EXPECT_EQ(entry.exception_type, cpu::ExceptionType::kInvalidConfig);
}

TEST_F(FaultFixture, OversizedInnerTileRejected) {
  isa::GemmParams params = gemm_of(a_desc_, b_desc_, c_desc_);
  params.inner_tile_rows = 4096;  // 4096*64*8 bytes >> 64 KiB A bank
  params.inner_tile_cols = 4096;
  const auto& entry = dispatch(params);
  EXPECT_TRUE(entry.exception_en);
  EXPECT_NE(entry.exception_type, cpu::ExceptionType::kNone);
}

TEST_F(FaultFixture, MoveFromUnmappedSourceFaults) {
  isa::MoveParams move;
  move.src = 0x7f00'0000'0000ull;
  move.dst = c_desc_.base;
  move.rows = 4;
  move.row_bytes = 512;
  move.src_stride = 512;
  move.dst_stride = 512;
  cpu::CpuCore& cpu = system_.node(0).cpu();
  cpu.regs().write_param_block(10, move.pack());
  cpu.execute_source("ma_move x5, x10");
  system_.run();
  const auto& entry =
      cpu.mtq().entry(static_cast<cpu::Maid>(cpu.regs().read(5)));
  EXPECT_TRUE(entry.exception_en);
  EXPECT_EQ(entry.exception_type, cpu::ExceptionType::kPageFault);
}

TEST_F(FaultFixture, InitOnUnmappedDestinationFaults) {
  isa::InitParams init;
  init.dst = 0x7f00'0000'0000ull;
  init.rows = 4;
  init.row_bytes = 512;
  init.stride = 512;
  cpu::CpuCore& cpu = system_.node(0).cpu();
  cpu.regs().write_param_block(10, init.pack());
  cpu.execute_source("ma_init x5, x10");
  system_.run();
  const auto& entry =
      cpu.mtq().entry(static_cast<cpu::Maid>(cpu.regs().read(5)));
  EXPECT_TRUE(entry.exception_en);
  EXPECT_EQ(entry.exception_type, cpu::ExceptionType::kPageFault);
}

TEST_F(FaultFixture, MtqExhaustionReturnsSentinelAndRecovers) {
  cpu::CpuCore& cpu = system_.node(0).cpu();
  const isa::GemmParams params = gemm_of(a_desc_, b_desc_, c_desc_);
  cpu.regs().write_param_block(10, params.pack());

  // Fill every MTQ entry without draining the simulator.
  const unsigned capacity = cpu.mtq().capacity();
  std::vector<cpu::Maid> maids;
  for (unsigned i = 0; i < capacity; ++i) {
    cpu.execute_source("ma_cfg x5, x10");
    const std::uint64_t maid = cpu.regs().read(5);
    ASSERT_NE(maid, cpu::kMaidAllocFailed) << "entry " << i;
    maids.push_back(static_cast<cpu::Maid>(maid));
  }
  // One more must fail with the documented sentinel.
  auto stats = cpu.execute_source("ma_cfg x6, x10");
  EXPECT_EQ(cpu.regs().read(6), cpu::kMaidAllocFailed);
  EXPECT_EQ(stats.mtq_alloc_failures, 1u);

  // Drain, release one entry, and allocation works again.
  system_.run();
  cpu.regs().write(7, maids.front());
  cpu.execute_source("ma_state x8, x7");
  cpu.execute_source("ma_cfg x6, x10");
  EXPECT_NE(cpu.regs().read(6), cpu::kMaidAllocFailed);
  system_.run();
}

TEST_F(FaultFixture, StqRejectionSurfacesAsInvalidConfig) {
  // An MMAE whose STQ is smaller than the MTQ: dispatches beyond the slave
  // capacity are refused and surfaced in the MTQ as exceptions.
  SystemConfig config = one_node_config();
  config.mmae.stq_entries = 2;
  MacoSystem small(config);
  Process& process = small.create_process();
  small.schedule_process(0, process);
  const auto a = small.alloc_matrix(process, 64, 64);
  const auto b = small.alloc_matrix(process, 64, 64);
  const auto c = small.alloc_matrix(process, 64, 64);
  util::Rng rng(5);
  small.write_matrix(process, a, sa::HostMatrix::random(64, 64, rng));
  small.write_matrix(process, b, sa::HostMatrix::random(64, 64, rng));
  small.write_matrix(process, c, sa::HostMatrix(64, 64));

  cpu::CpuCore& cpu = small.node(0).cpu();
  cpu.regs().write_param_block(10, gemm_of(a, b, c).pack());
  cpu::CpuCore::ExecStats stats;
  const auto program = isa::assemble(
      "ma_cfg x5, x10\n"
      "ma_cfg x6, x10\n"
      "ma_cfg x7, x10\n");  // third exceeds the 2-entry STQ
  ASSERT_TRUE(program.ok());
  for (const auto& instruction : program.program) {
    cpu.step(instruction, stats);
  }
  EXPECT_EQ(stats.submit_rejections, 1u);
  const auto& rejected =
      cpu.mtq().entry(static_cast<cpu::Maid>(cpu.regs().read(7)));
  EXPECT_TRUE(rejected.exception_en);
  EXPECT_EQ(rejected.exception_type, cpu::ExceptionType::kInvalidConfig);

  // The two accepted tasks still complete cleanly.
  small.run();
  EXPECT_TRUE(cpu.mtq().entry(static_cast<cpu::Maid>(cpu.regs().read(5))).done);
  EXPECT_TRUE(cpu.mtq().entry(static_cast<cpu::Maid>(cpu.regs().read(6))).done);
}

TEST(FaultIsolation, FaultingProcessDoesNotDisturbPeer) {
  // Two processes on one node: process A's task faults, process B's task
  // (queued behind it) completes with correct numerics.
  MacoSystem system(one_node_config());
  Process& pa = system.create_process();
  Process& pb = system.create_process();
  util::Rng rng(9);

  const auto b_a = system.alloc_matrix(pb, 64, 64);
  const auto b_b = system.alloc_matrix(pb, 64, 64);
  const auto b_c = system.alloc_matrix(pb, 64, 64);
  const auto bm_a = sa::HostMatrix::random(64, 64, rng);
  const auto bm_b = sa::HostMatrix::random(64, 64, rng);
  system.write_matrix(pb, b_a, bm_a);
  system.write_matrix(pb, b_b, bm_b);
  system.write_matrix(pb, b_c, sa::HostMatrix(64, 64));

  cpu::CpuCore& cpu = system.node(0).cpu();

  system.schedule_process(0, pa);
  isa::GemmParams bad;
  bad.a_base = bad.b_base = bad.c_base = 0x7f00'0000'0000ull;
  bad.m = bad.n = bad.k = 64;
  cpu.regs().write_param_block(10, bad.pack());
  cpu.execute_source("ma_cfg x5, x10");

  system.schedule_process(0, pb);
  cpu.regs().write_param_block(10, gemm_of(b_a, b_b, b_c).pack());
  cpu.execute_source("ma_cfg x6, x10");

  system.run();

  const auto& entry_a =
      cpu.mtq().entry(static_cast<cpu::Maid>(cpu.regs().read(5)));
  const auto& entry_b =
      cpu.mtq().entry(static_cast<cpu::Maid>(cpu.regs().read(6)));
  EXPECT_TRUE(entry_a.exception_en);
  EXPECT_EQ(entry_a.asid, pa.asid);
  EXPECT_TRUE(entry_b.done);
  EXPECT_FALSE(entry_b.exception_en);

  sa::HostMatrix expected(64, 64);
  sa::reference_gemm(bm_a, bm_b, expected);
  EXPECT_TRUE(system.read_matrix(pb, b_c).approx_equal(expected, 1e-9));
}

TEST(FaultIsolation, ExceptionEntrySurvivesProcessSwitchUntilCleared) {
  // Fig. 3 state 4: the exception stays recorded across context switches
  // until software runs MA_CLEAR.
  MacoSystem system(one_node_config());
  Process& pa = system.create_process();
  Process& pb = system.create_process();
  cpu::CpuCore& cpu = system.node(0).cpu();

  system.schedule_process(0, pa);
  isa::GemmParams bad;
  bad.a_base = bad.b_base = bad.c_base = 0x7f00'0000'0000ull;
  bad.m = bad.n = bad.k = 64;
  cpu.regs().write_param_block(10, bad.pack());
  cpu.execute_source("ma_cfg x5, x10");
  system.run();
  const auto maid = static_cast<cpu::Maid>(cpu.regs().read(5));

  system.schedule_process(0, pb);  // switch away
  EXPECT_TRUE(cpu.mtq().entry(maid).exception_en);
  EXPECT_EQ(cpu.mtq().entry(maid).asid, pa.asid);

  system.schedule_process(0, pa);  // switch back; still there
  EXPECT_TRUE(cpu.mtq().entry(maid).exception_en);
  cpu.execute_source("ma_clear x5");
  EXPECT_FALSE(cpu.mtq().entry(maid).valid);
  EXPECT_FALSE(cpu.mtq().entry(maid).exception_en);
}

}  // namespace
}  // namespace maco::core
