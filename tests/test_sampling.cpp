// The sampled-fidelity estimation subsystem (src/sampling/): tile-space
// stratification, the seeded stratified sampler, the estimator's
// statistics (scaling, finite-population correction, adaptive refinement)
// and the end-to-end fidelity=sampled backend against exhaustive detailed
// runs and the analytic model.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>
#include <tuple>

#include "core/detailed_runner.hpp"
#include "core/timing_model.hpp"
#include "exp/backend.hpp"
#include "sampling/estimator.hpp"
#include "sampling/sampled_runner.hpp"
#include "sampling/sampler.hpp"
#include "sampling/tile_space.hpp"

namespace maco::sampling {
namespace {

std::uint64_t total_count(const std::vector<Stratum>& strata) {
  std::uint64_t total = 0;
  for (const Stratum& s : strata) total += s.population();
  return total;
}

// ---- tile space ----

TEST(TileSpace, DivisibleGridIsOneInteriorStratum) {
  const auto strata = enumerate_strata({sa::TileShape{512, 512, 512}}, 256);
  ASSERT_EQ(strata.size(), 1u);
  EXPECT_EQ(strata[0].partial_mask, 0);
  EXPECT_EQ(strata[0].position_class(), "interior");
  EXPECT_EQ(strata[0].count, 8u);
  EXPECT_EQ(strata[0].tile_shape.m, 256u);
  EXPECT_EQ(strata[0].tile_shape.n, 256u);
  EXPECT_EQ(strata[0].tile_shape.k, 256u);
}

TEST(TileSpace, IrregularGridProducesAllEightPositionClasses) {
  // 576 = 2*256 + 64: a 3^3 grid whose last index along every dim is a
  // 64-wide remainder — interior, three edges, three ridges, one corner.
  const auto strata = enumerate_strata({sa::TileShape{576, 576, 576}}, 256);
  ASSERT_EQ(strata.size(), 8u);
  EXPECT_EQ(total_count(strata), 27u);
  std::uint64_t interior = 0, edge = 0, ridge = 0, corner = 0;
  for (const Stratum& s : strata) {
    if (s.position_class() == "interior") interior += s.count;
    if (s.position_class() == "edge") edge += s.count;
    if (s.position_class() == "ridge") ridge += s.count;
    if (s.position_class() == "corner") corner += s.count;
    // Every tile of a stratum shares one shape: partial dims are 64 wide.
    EXPECT_EQ(s.tile_shape.m, (s.partial_mask & kPartialM) ? 64u : 256u);
    EXPECT_EQ(s.tile_shape.n, (s.partial_mask & kPartialN) ? 64u : 256u);
    EXPECT_EQ(s.tile_shape.k, (s.partial_mask & kPartialK) ? 64u : 256u);
  }
  EXPECT_EQ(interior, 8u);
  EXPECT_EQ(edge, 12u);
  EXPECT_EQ(ridge, 6u);
  EXPECT_EQ(corner, 1u);
}

TEST(TileSpace, ExactDimsContributeNoPartialStrata) {
  // K divides evenly, M/N do not: no stratum may mark K partial.
  const auto strata =
      enumerate_strata({sa::TileShape{300, 300, 512}}, 256);
  ASSERT_EQ(strata.size(), 4u);
  for (const Stratum& s : strata) {
    EXPECT_EQ(s.partial_mask & kPartialK, 0);
  }
  EXPECT_EQ(total_count(strata), 2u * 2u * 2u);
}

TEST(TileSpace, CoordsCoverTheStratumAndPinPartialDims) {
  const auto strata = enumerate_strata({sa::TileShape{576, 576, 576}}, 256);
  for (const Stratum& s : strata) {
    std::set<std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>> seen;
    for (std::uint64_t flat = 0; flat < s.count; ++flat) {
      const TileCoord coord = stratum_coord(s, flat);
      EXPECT_LT(coord.im, s.grid_m);
      EXPECT_LT(coord.in, s.grid_n);
      EXPECT_LT(coord.ik, s.grid_k);
      if (s.partial_mask & kPartialM) {
        EXPECT_EQ(coord.im, s.grid_m - 1);
      }
      if (s.partial_mask & kPartialN) {
        EXPECT_EQ(coord.in, s.grid_n - 1);
      }
      if (s.partial_mask & kPartialK) {
        EXPECT_EQ(coord.ik, s.grid_k - 1);
      }
      seen.insert({coord.im, coord.in, coord.ik});
    }
    EXPECT_EQ(seen.size(), s.count);  // distinct coordinates
    EXPECT_THROW(stratum_coord(s, s.count), std::out_of_range);
  }
}

TEST(TileSpace, IdenticalLayersCollapseWithMultiplicity) {
  const sa::TileShape big{512, 512, 512};
  const sa::TileShape small{256, 256, 256};
  const auto strata = enumerate_strata({big, small, big, big}, 256);
  ASSERT_EQ(strata.size(), 2u);
  EXPECT_EQ(strata[0].multiplicity, 3u);  // big appears three times
  EXPECT_EQ(strata[0].population(), 3u * 8u);
  EXPECT_EQ(strata[1].multiplicity, 1u);
  EXPECT_EQ(strata[1].population(), 1u);
}

TEST(TileSpace, PageOffsetsTrackTilePosition) {
  // Layer 512x512x520 (K irregular so A offsets vary): tile (im=1, ik=1)
  // starts A at element 1*256*520 + 1*256 => byte offset mod 4096.
  const auto strata = enumerate_strata({sa::TileShape{512, 512, 520}}, 256);
  const Stratum* interior = nullptr;
  for (const Stratum& s : strata) {
    if (s.partial_mask == 0) interior = &s;
  }
  ASSERT_NE(interior, nullptr);
  TileCoord coord;
  coord.im = 1;
  coord.in = 1;
  coord.ik = 1;
  const TileOffsets offsets = tile_page_offsets(*interior, coord);
  EXPECT_EQ(offsets.a, ((1ull * 256 * 520 + 256) * 8) % 4096);
  EXPECT_EQ(offsets.b, ((1ull * 256 * 512 + 256) * 8) % 4096);
  EXPECT_EQ(offsets.c, ((1ull * 256 * 512 + 256) * 8) % 4096);
  EXPECT_LT(offsets.a, 4096u);
}

TEST(TileSpace, CooperativeCountsPartitionEveryStratumExactly) {
  const auto strata = enumerate_strata({sa::TileShape{576, 576, 576}}, 128);
  for (const unsigned nodes : {1u, 2u, 4u, 6u, 16u}) {
    for (const Stratum& s : strata) {
      std::uint64_t assigned = 0;
      for (unsigned node = 0; node < nodes; ++node) {
        assigned += cooperative_node_count(s, nodes, node);
      }
      EXPECT_EQ(assigned, s.count)
          << "stratum mask " << int(s.partial_mask) << " over " << nodes
          << " nodes";
    }
  }
}

// ---- sampler ----

TEST(Sampler, AllocationFloorsCapsAndClamps) {
  EXPECT_EQ(allocate_samples(1000, 0.05, 2, 0), 50u);
  EXPECT_EQ(allocate_samples(10, 0.05, 2, 0), 2u);    // floor
  EXPECT_EQ(allocate_samples(1, 0.05, 2, 0), 1u);     // population clamp
  EXPECT_EQ(allocate_samples(1000000, 0.5, 2, 64), 64u);  // cap
  EXPECT_EQ(allocate_samples(8, 1.0, 2, 0), 8u);      // exhaustive
}

TEST(Sampler, SameSeedReproducesTheDraw) {
  const auto strata = enumerate_strata({sa::TileShape{4096, 4096, 4096}},
                                       256);
  ASSERT_EQ(strata.size(), 1u);
  StratumDraw a(strata[0], 42);
  StratumDraw b(strata[0], 42);
  const auto coords_a = a.extend(20);
  const auto coords_b = b.extend(20);
  ASSERT_EQ(coords_a.size(), 20u);
  ASSERT_EQ(coords_a.size(), coords_b.size());
  for (std::size_t i = 0; i < coords_a.size(); ++i) {
    EXPECT_EQ(coords_a[i].im, coords_b[i].im);
    EXPECT_EQ(coords_a[i].in, coords_b[i].in);
    EXPECT_EQ(coords_a[i].ik, coords_b[i].ik);
  }
  StratumDraw c(strata[0], 43);
  const auto coords_c = c.extend(20);
  bool any_differs = false;
  for (std::size_t i = 0; i < coords_c.size(); ++i) {
    any_differs = any_differs || coords_c[i].im != coords_a[i].im ||
                  coords_c[i].in != coords_a[i].in ||
                  coords_c[i].ik != coords_a[i].ik;
  }
  EXPECT_TRUE(any_differs);
}

TEST(Sampler, ExtendDrawsDistinctTilesUntilExhaustion) {
  const auto strata = enumerate_strata({sa::TileShape{512, 512, 512}}, 128);
  ASSERT_EQ(strata.size(), 1u);
  ASSERT_EQ(strata[0].count, 64u);
  StratumDraw draw(strata[0], 7);
  std::set<std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>> seen;
  const auto take = [&](std::uint64_t additional) {
    for (const TileCoord& coord : draw.extend(additional)) {
      EXPECT_TRUE(seen.insert({coord.im, coord.in, coord.ik}).second)
          << "duplicate draw";
    }
  };
  take(10);
  EXPECT_EQ(draw.drawn(), 10u);
  take(30);
  EXPECT_EQ(draw.drawn(), 40u);
  take(100);  // over-ask: exhausts the stratum exactly
  EXPECT_EQ(draw.drawn(), 64u);
  EXPECT_TRUE(draw.exhausted());
  EXPECT_TRUE(draw.extend(5).empty());
}

// ---- estimator (synthetic populations, no simulation) ----

// A deterministic synthetic population: the "span" of a tile is a function
// of its coordinates, so sampling means and variances are predictable and
// reproducible.
TileSample synthetic_sample(const TileCoord& coord, double base,
                            double wiggle) {
  TileSample sample;
  const double position =
      static_cast<double>((coord.im * 31 + coord.in * 17 + coord.ik * 7) %
                          10);
  sample.span_ps = base + wiggle * position;
  sample.sa_busy_ps = 0.8 * sample.span_ps;
  sample.translation_stall_ps = 0.05 * sample.span_ps;
  sample.blocking_walks = 1.0;
  sample.matlb_hits = 10.0;
  return sample;
}

MeasureFn synthetic_measure(double base, double wiggle,
                            std::uint64_t* calls = nullptr) {
  return [base, wiggle, calls](const std::vector<TileRequest>& requests) {
    std::vector<TileSample> samples;
    for (const TileRequest& request : requests) {
      if (calls != nullptr) ++*calls;
      samples.push_back(synthetic_sample(request.coord, base, wiggle));
    }
    return samples;
  };
}

TEST(Estimator, ExhaustiveSamplingReproducesTheExactTotal) {
  const auto strata = enumerate_strata({sa::TileShape{576, 576, 576}}, 256);
  EstimateRequest request;
  request.sample_frac = 1.0;
  request.peak_macs_per_second = 1e12;
  const core::SystemTiming timing =
      estimate_timing(strata, request, synthetic_measure(1e6, 1e4));
  // Every tile sampled: the estimate is the exact population sum and the
  // statistical SE vanishes (finite-population correction at n == N).
  double exact = 0.0;
  for (const Stratum& s : strata) {
    for (std::uint64_t flat = 0; flat < s.count; ++flat) {
      exact += synthetic_sample(stratum_coord(s, flat), 1e6, 1e4).span_ps;
    }
  }
  EXPECT_NEAR(static_cast<double>(timing.makespan_ps), exact, 1.0);
  EXPECT_EQ(timing.sampling.makespan_se_ps, 0.0);
  EXPECT_EQ(timing.sampling.sampled_tiles, 27u);
  EXPECT_EQ(timing.sampling.total_tiles, 27u);
  EXPECT_EQ(timing.sampling.strata, 8u);
  // The reported interval still carries the systematic model margin.
  EXPECT_NEAR(timing.sampling.makespan_ci95_ps, kModelMarginFrac * exact,
              1.0);
}

TEST(Estimator, SameSeedIsBitIdenticalDifferentSeedResamples) {
  const auto strata =
      enumerate_strata({sa::TileShape{4096, 4096, 4096}}, 256);
  EstimateRequest request;
  request.sample_frac = 0.01;
  request.sample_seed = 5;
  request.peak_macs_per_second = 1e12;
  const auto measure = synthetic_measure(1e6, 5e4);
  const core::SystemTiming a = estimate_timing(strata, request, measure);
  const core::SystemTiming b = estimate_timing(strata, request, measure);
  EXPECT_EQ(a.makespan_ps, b.makespan_ps);
  EXPECT_EQ(a.sampling.makespan_se_ps, b.sampling.makespan_se_ps);
  request.sample_seed = 6;
  const core::SystemTiming c = estimate_timing(strata, request, measure);
  EXPECT_NE(a.makespan_ps, c.makespan_ps);  // different tiles drawn
  // Both estimates of the same population agree within their intervals.
  EXPECT_NEAR(static_cast<double>(a.makespan_ps),
              static_cast<double>(c.makespan_ps),
              a.sampling.makespan_ci95_ps + c.sampling.makespan_ci95_ps);
}

TEST(Estimator, AdaptiveModeStopsAtTheCiTarget) {
  const auto strata =
      enumerate_strata({sa::TileShape{8192, 8192, 8192}}, 256);
  ASSERT_EQ(strata.size(), 1u);  // 32^3 = 32768 interior tiles

  // Without a target: the initial allocation is all that runs.
  EstimateRequest request;
  request.sample_frac = 0.001;  // ~33 tiles
  request.peak_macs_per_second = 1e12;
  std::uint64_t baseline_calls = 0;
  const core::SystemTiming coarse = estimate_timing(
      strata, request,
      synthetic_measure(1e6, 3e5, &baseline_calls));
  ASSERT_GT(coarse.sampling.makespan_se_ps, 0.0);

  // With a target tighter than the coarse run achieved: adaptive rounds
  // must add samples until the relative statistical CI reaches it.
  const double coarse_rel = 1.96 * coarse.sampling.makespan_se_ps /
                            static_cast<double>(coarse.makespan_ps);
  request.ci_target = coarse_rel / 2.0;
  std::uint64_t adaptive_calls = 0;
  const core::SystemTiming refined = estimate_timing(
      strata, request,
      synthetic_measure(1e6, 3e5, &adaptive_calls));
  EXPECT_GT(adaptive_calls, baseline_calls);
  EXPECT_GT(refined.sampling.sampled_tiles,
            coarse.sampling.sampled_tiles);
  const double refined_rel = 1.96 * refined.sampling.makespan_se_ps /
                             static_cast<double>(refined.makespan_ps);
  EXPECT_LE(refined_rel, request.ci_target);
}

TEST(Estimator, CooperativeMakespanIsTheCriticalNode) {
  // A 1x5x1 tile grid over 2 nodes (choose_grid(2) = 1x2, so the split
  // runs along N): node 0 owns 2 C-tile columns, node 1 owns 3 — the
  // makespan is node 1's span, not the mean.
  const auto strata =
      enumerate_strata({sa::TileShape{256, 1280, 256}}, 256);
  ASSERT_EQ(strata.size(), 1u);
  ASSERT_EQ(strata[0].count, 5u);
  EstimateRequest request;
  request.sample_frac = 1.0;
  request.cooperative = true;
  request.active_nodes = 2;
  request.peak_macs_per_second = 1e12;
  const core::SystemTiming timing = estimate_timing(
      strata, request, synthetic_measure(1e6, 0.0));
  ASSERT_EQ(timing.nodes.size(), 2u);
  const double spans[2] = {static_cast<double>(timing.nodes[0].span_ps),
                           static_cast<double>(timing.nodes[1].span_ps)};
  EXPECT_NEAR(spans[0] + spans[1], 5e6, 1.0);
  EXPECT_NEAR(static_cast<double>(timing.makespan_ps),
              std::max(spans[0], spans[1]), 1.0);
  EXPECT_NEAR(std::max(spans[0], spans[1]), 3e6, 1.0);
  // Exact MAC bookkeeping: the two nodes cover the workload once.
  const sa::TileShape workload{256, 1280, 256};
  EXPECT_EQ(timing.nodes[0].macs + timing.nodes[1].macs, workload.macs());
}

TEST(Estimator, RejectsBadRequests) {
  const auto strata = enumerate_strata({sa::TileShape{512, 512, 512}}, 256);
  const auto measure = synthetic_measure(1e6, 0.0);
  EstimateRequest request;
  request.sample_frac = 0.0;
  EXPECT_THROW(estimate_timing(strata, request, measure),
               std::invalid_argument);
  request.sample_frac = 1.5;
  EXPECT_THROW(estimate_timing(strata, request, measure),
               std::invalid_argument);
  request.sample_frac = 0.5;
  request.active_nodes = 0;
  EXPECT_THROW(estimate_timing(strata, request, measure),
               std::invalid_argument);
  EXPECT_THROW(estimate_timing({}, EstimateRequest{}, measure),
               std::invalid_argument);
}

// ---- end to end on the detailed machine ----

core::TimingOptions sampled_options(std::uint64_t size, std::uint64_t tile) {
  core::TimingOptions options;
  options.shape = sa::TileShape{size, size, size};
  options.active_nodes = 1;
  options.tile_rows = tile;
  options.tile_cols = tile;
  options.sample_frac = 1.0;
  return options;
}

TEST(SampledRunner, MatchesExhaustiveDetailedWithinTheReportedCi) {
  const core::SystemConfig config = core::SystemConfig::maco_default();
  const core::TimingOptions options = sampled_options(384, 128);
  const core::SystemTiming sampled = run_sampled_gemm(config, options);
  core::TimingOptions exhaustive = options;
  exhaustive.tile_rows = 1024;
  exhaustive.tile_cols = 1024;
  const core::SystemTiming detailed =
      core::run_detailed_gemm(config, exhaustive);
  ASSERT_GT(sampled.makespan_ps, 0u);
  ASSERT_TRUE(sampled.sampling.present());
  EXPECT_EQ(sampled.sampling.sampled_tiles, 27u);
  EXPECT_NEAR(static_cast<double>(sampled.makespan_ps),
              static_cast<double>(detailed.makespan_ps),
              sampled.sampling.makespan_ci95_ps)
      << "sampled " << sampled.makespan_ps << " vs detailed "
      << detailed.makespan_ps;
  EXPECT_NEAR(sampled.mean_efficiency, detailed.mean_efficiency, 0.12);
}

TEST(SampledRunner, CiCoversTheAnalyticModelAtCrossValidationSize) {
  const core::SystemConfig config = core::SystemConfig::maco_default();
  const core::TimingOptions options = sampled_options(512, 256);
  const core::SystemTiming sampled = run_sampled_gemm(config, options);
  const core::SystemTiming analytic =
      core::SystemTimingModel(config).run(options);
  EXPECT_NEAR(static_cast<double>(sampled.makespan_ps),
              static_cast<double>(analytic.makespan_ps),
              sampled.sampling.makespan_ci95_ps)
      << "sampled " << sampled.makespan_ps << " vs analytic "
      << analytic.makespan_ps;
}

TEST(SampledRunner, DeterministicSeedingReproducesIdenticalEstimates) {
  const core::SystemConfig config = core::SystemConfig::maco_default();
  core::TimingOptions options = sampled_options(640, 128);
  options.sample_frac = 0.05;  // a strict subset of the 125-tile grid
  const core::SystemTiming once = run_sampled_gemm(config, options);
  const core::SystemTiming twice = run_sampled_gemm(config, options);
  EXPECT_EQ(once.makespan_ps, twice.makespan_ps);
  EXPECT_EQ(once.sampling.sampled_tiles, twice.sampling.sampled_tiles);
  EXPECT_EQ(once.sampling.makespan_se_ps, twice.sampling.makespan_se_ps);
  EXPECT_EQ(once.total_gflops, twice.total_gflops);
  EXPECT_LT(once.sampling.sampled_tiles, once.sampling.total_tiles);
}

TEST(SampledRunner, ParallelWorkersProduceTheSequentialResult) {
  // Batches are independent MacoSystems writing disjoint measurement
  // slots, so worker parallelism must not change a single bit of the
  // estimate.
  const core::SystemConfig config = core::SystemConfig::maco_default();
  core::TimingOptions options = sampled_options(640, 128);
  options.sample_frac = 0.05;
  const core::SystemTiming sequential = run_sampled_gemm(config, options);
  options.sample_workers = 3;
  const core::SystemTiming parallel = run_sampled_gemm(config, options);
  EXPECT_EQ(sequential.makespan_ps, parallel.makespan_ps);
  EXPECT_EQ(sequential.sampling.makespan_se_ps,
            parallel.sampling.makespan_se_ps);
  EXPECT_EQ(sequential.total_gflops, parallel.total_gflops);
}

TEST(SampledRunner, LiftsTheDetailedSizeCap) {
  // Every dimension beyond kDetailedMaxDim: the detailed backend rejects
  // the shape, the sampled backend estimates it from a handful of tiles.
  const core::SystemConfig config = core::SystemConfig::maco_default();
  core::TimingOptions options = sampled_options(2176, 128);  // 17^3 tiles
  options.sample_frac = 1e-6;  // floor: 2 sampled tiles
  ASSERT_GT(options.shape.m, core::kDetailedMaxDim);
  EXPECT_THROW(core::run_detailed_gemm(config, options),
               std::invalid_argument);
  const core::SystemTiming sampled = run_sampled_gemm(config, options);
  EXPECT_GT(sampled.makespan_ps, 0u);
  EXPECT_GT(sampled.total_gflops, 0.0);
  EXPECT_EQ(sampled.sampling.total_tiles, 17u * 17u * 17u);
  EXPECT_EQ(sampled.sampling.sampled_tiles, 2u);
  // And the estimate lands in the physically-plausible band.
  EXPECT_GT(sampled.mean_efficiency, 0.5);
  EXPECT_LE(sampled.mean_efficiency, 1.0);
}

TEST(SampledRunner, CooperativeModeSplitsTheWorkAcrossNodes) {
  const core::SystemConfig config = core::SystemConfig::maco_default();
  core::TimingOptions options = sampled_options(512, 256);
  // Both estimates share the sampled per-tile means, so the split shows
  // up as pure scaling: 2x2x2 tile grid, 4 nodes => 2 tiles per node
  // cooperatively vs all 8 independently.
  options.sample_frac = 0.3;  // floor of 2 sampled tiles
  const core::SystemTiming independent = run_sampled_gemm(config, options);
  options.cooperative = true;
  options.active_nodes = 4;
  const core::SystemTiming cooperative = run_sampled_gemm(config, options);
  ASSERT_EQ(cooperative.nodes.size(), 4u);
  EXPECT_LT(static_cast<double>(cooperative.makespan_ps),
            0.5 * static_cast<double>(independent.makespan_ps));
  std::uint64_t macs = 0;
  for (const core::NodeTiming& node : cooperative.nodes) macs += node.macs;
  EXPECT_EQ(macs, options.shape.macs());
}

TEST(SampledRunner, LayerSequencesAccumulateAndCollapseDuplicates) {
  const core::SystemConfig config = core::SystemConfig::maco_default();
  const core::TimingOptions options = sampled_options(256, 128);
  const sa::TileShape layer{256, 256, 256};
  const core::SystemTiming once = run_sampled_layers(config, {layer},
                                                     options);
  const core::SystemTiming thrice =
      run_sampled_layers(config, {layer, layer, layer}, options);
  // Identical layers collapse into multiplicity: same sampled tiles, three
  // times the estimated work and time.
  EXPECT_EQ(thrice.sampling.sampled_tiles, once.sampling.sampled_tiles);
  EXPECT_EQ(thrice.sampling.total_tiles, 3 * once.sampling.total_tiles);
  EXPECT_NEAR(static_cast<double>(thrice.makespan_ps),
              3.0 * static_cast<double>(once.makespan_ps),
              1e-6 * static_cast<double>(once.makespan_ps) + 1.0);
  EXPECT_EQ(thrice.nodes[0].macs, 3 * once.nodes[0].macs);
}

TEST(SampledRunner, RejectsUnusableConfigurations) {
  const core::SystemConfig config = core::SystemConfig::maco_default();
  core::TimingOptions options = sampled_options(512, 256);
  options.tile_rows = core::kDetailedMaxDim + 1;
  options.tile_cols = options.tile_rows;
  EXPECT_THROW(run_sampled_gemm(config, options), std::invalid_argument);
  options = sampled_options(512, 256);
  options.tile_cols = 128;  // non-square first-level tile
  EXPECT_THROW(run_sampled_gemm(config, options), std::invalid_argument);
  options = sampled_options(512, 256);
  options.sample_frac = 0.0;
  EXPECT_THROW(run_sampled_gemm(config, options), std::invalid_argument);
  options = sampled_options(512, 256);
  options.use_stash_lock = false;  // analytic-only knob
  EXPECT_THROW(run_sampled_gemm(config, options), std::invalid_argument);
}

TEST(Backend, SampledIsAFirstClassFidelity) {
  EXPECT_EQ(exp::fidelity_name(exp::Fidelity::kSampled), "sampled");
  EXPECT_EQ(exp::parse_fidelity("sampled"), exp::Fidelity::kSampled);
  const core::SystemConfig config = core::SystemConfig::maco_default();
  const auto backend = exp::make_backend(exp::Fidelity::kSampled, config);
  EXPECT_EQ(backend->fidelity(), exp::Fidelity::kSampled);
  const core::SystemTiming timing = backend->run(sampled_options(384, 128));
  EXPECT_TRUE(timing.sampling.present());
  EXPECT_GT(timing.total_gflops, 0.0);
}

}  // namespace
}  // namespace maco::sampling
