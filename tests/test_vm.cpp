#include <gtest/gtest.h>

#include "vm/page_table.hpp"
#include "vm/tlb.hpp"
#include "vm/walker.hpp"

namespace maco::vm {
namespace {

TEST(PageTable, MapAndTranslate) {
  PageTable pt(0x1000000);
  pt.map(0x10000000, 0x5000);
  const auto pa = pt.translate(0x10000123);
  ASSERT_TRUE(pa.has_value());
  EXPECT_EQ(*pa, 0x5123u);
}

TEST(PageTable, UnmappedFaults) {
  PageTable pt(0x1000000);
  EXPECT_FALSE(pt.translate(0xdeadbeef000).has_value());
  pt.map(0x2000, 0x9000);
  EXPECT_TRUE(pt.is_mapped(0x2000));
  EXPECT_FALSE(pt.is_mapped(0x3000));
}

TEST(PageTable, RemapOverwrites) {
  PageTable pt(0x1000000);
  pt.map(0x4000, 0x8000);
  pt.map(0x4000, 0xA000);
  EXPECT_EQ(*pt.translate(0x4000), 0xA000u);
  EXPECT_EQ(pt.mapped_page_count(), 1u);
}

TEST(PageTable, WalkTraceHasFourLevels) {
  PageTable pt(0x1000000);
  pt.map(0x7000000000, 0xB000);
  const auto trace = pt.walk(0x7000000042);
  EXPECT_TRUE(trace.valid);
  EXPECT_EQ(trace.levels, 4);
  EXPECT_EQ(trace.phys, 0xB042u);
  // PTE addresses must be distinct and inside the table region.
  for (int i = 0; i < 4; ++i) {
    EXPECT_GE(trace.pte_addr[i], 0x1000000u);
    for (int j = i + 1; j < 4; ++j) {
      EXPECT_NE(trace.pte_addr[i], trace.pte_addr[j]);
    }
  }
}

TEST(PageTable, WalkFaultReportsLevel) {
  PageTable pt(0x1000000);
  const auto trace = pt.walk(0x123456789000);
  EXPECT_FALSE(trace.valid);
  EXPECT_EQ(trace.levels, 1);  // root entry empty: one read, then fault
}

TEST(PageTable, SharedInteriorNodes) {
  PageTable pt(0x1000000);
  pt.map(0x10000000, 0x1000);
  const auto nodes_before = pt.node_count();
  pt.map(0x10001000, 0x2000);  // same leaf node
  EXPECT_EQ(pt.node_count(), nodes_before);
}

TEST(AddressSpace, AllocBacksPages) {
  AddressSpace space(3, 0x1000000, 0x100000000);
  const VirtAddr base = space.alloc(10000);
  EXPECT_EQ(page_offset(base), 0u);
  // Every page of the allocation translates.
  for (std::uint64_t off = 0; off < 10000; off += kPageSize) {
    EXPECT_TRUE(space.page_table().translate(base + off).has_value());
  }
  EXPECT_EQ(space.page_table().mapped_page_count(), 3u);  // ceil(10000/4096)
}

TEST(AddressSpace, DistinctAllocationsDisjoint) {
  AddressSpace space(3, 0x1000000, 0x100000000);
  const VirtAddr a = space.alloc(4096);
  const VirtAddr b = space.alloc(4096);
  EXPECT_NE(a, b);
  const auto pa = space.page_table().translate(a);
  const auto pb = space.page_table().translate(b);
  ASSERT_TRUE(pa && pb);
  EXPECT_NE(*pa, *pb);
}

TEST(Tlb, HitAfterInsert) {
  Tlb tlb("t", 4);
  EXPECT_FALSE(tlb.lookup(1, 100).has_value());
  tlb.insert(1, 100, 200);
  const auto ppn = tlb.lookup(1, 100);
  ASSERT_TRUE(ppn.has_value());
  EXPECT_EQ(*ppn, 200u);
  EXPECT_EQ(tlb.hits(), 1u);
  EXPECT_EQ(tlb.misses(), 1u);
}

TEST(Tlb, AsidIsolation) {
  Tlb tlb("t", 4);
  tlb.insert(1, 100, 200);
  EXPECT_FALSE(tlb.lookup(2, 100).has_value());
}

TEST(Tlb, LruEviction) {
  Tlb tlb("t", 2);
  tlb.insert(1, 10, 0);
  tlb.insert(1, 20, 0);
  tlb.lookup(1, 10);       // refresh 10 -> 20 becomes LRU
  tlb.insert(1, 30, 0);    // evicts 20
  EXPECT_TRUE(tlb.contains(1, 10));
  EXPECT_FALSE(tlb.contains(1, 20));
  EXPECT_TRUE(tlb.contains(1, 30));
  EXPECT_EQ(tlb.evictions(), 1u);
}

TEST(Tlb, InvalidateAsid) {
  Tlb tlb("t", 8);
  tlb.insert(1, 10, 0);
  tlb.insert(2, 20, 0);
  tlb.invalidate_asid(1);
  EXPECT_FALSE(tlb.contains(1, 10));
  EXPECT_TRUE(tlb.contains(2, 20));
}

TEST(Tlb, CapacityIsRespected) {
  Tlb tlb("t", 16);
  for (std::uint64_t i = 0; i < 100; ++i) tlb.insert(1, i, i);
  EXPECT_EQ(tlb.size(), 16u);
}

TEST(Walker, ChargesPerLevelLatency) {
  PageTable pt(0x1000000);
  pt.map(0x10000000, 0x5000);
  FixedLatencyOracle memory(10'000);  // 10 ns per PTE read
  PageTableWalker walker(memory, /*walk_cache_entries=*/0);
  const WalkOutcome outcome = walker.walk(1, pt, 0x10000000);
  EXPECT_TRUE(outcome.valid);
  EXPECT_EQ(outcome.memory_accesses, 4);
  EXPECT_EQ(outcome.latency, 40'000u);
}

TEST(Walker, WalkCacheSkipsUpperLevels) {
  PageTable pt(0x1000000);
  pt.map(0x10000000, 0x5000);
  pt.map(0x10001000, 0x6000);  // same 2 MiB region
  FixedLatencyOracle memory(10'000);
  PageTableWalker walker(memory, 16);
  const auto first = walker.walk(1, pt, 0x10000000);
  EXPECT_EQ(first.memory_accesses, 4);
  const auto second = walker.walk(1, pt, 0x10001000);
  EXPECT_TRUE(second.valid);
  EXPECT_EQ(second.memory_accesses, 1);  // leaf only
  EXPECT_EQ(walker.walk_cache_hits(), 1u);
}

TEST(Walker, WalkCacheIsAsidTagged) {
  PageTable pt(0x1000000);
  pt.map(0x10000000, 0x5000);
  FixedLatencyOracle memory(10'000);
  PageTableWalker walker(memory, 16);
  walker.walk(1, pt, 0x10000000);
  const auto other = walker.walk(2, pt, 0x10000000);
  EXPECT_EQ(other.memory_accesses, 4);  // different ASID: no cache reuse
}

TEST(Walker, FaultCounted) {
  PageTable pt(0x1000000);
  FixedLatencyOracle memory(10'000);
  PageTableWalker walker(memory);
  const auto outcome = walker.walk(1, pt, 0xABCDE000);
  EXPECT_FALSE(outcome.valid);
  EXPECT_EQ(walker.faults(), 1u);
}

}  // namespace
}  // namespace maco::vm
