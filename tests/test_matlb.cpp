// Tests for the paper's Fig. 4 predictive address translation.
#include <gtest/gtest.h>

#include <unordered_set>

#include "vm/matlb.hpp"

namespace maco::vm {
namespace {

// The Fig. 4 scenario: FP64 matrix with 1024 columns (8 KiB rows, two 4 KiB
// pages per row), tile <ttr,ttc> = <4,64>.
TEST(Prediction, Fig4RowsCoverTwoPages) {
  MatrixDesc m{0x40000000, 1024, 1024, 8, 0};
  // Tile at column 0: 64 elements * 8 B = 512 B per row, one page per row.
  TileDesc left{0, 0, 4, 64};
  const auto entries_left = predict_page_entries(m, left);
  EXPECT_EQ(entries_left.size(), 4u);  // one first-element per row page

  // Case 1 of Fig. 4: a tile whose rows cross a page boundary yields two
  // entries per row.
  TileDesc crossing{0, 480, 4, 64};  // bytes 3840..4352 cross the 4 KiB line
  const auto entries_crossing = predict_page_entries(m, crossing);
  EXPECT_EQ(entries_crossing.size(), 8u);
}

TEST(Prediction, EntriesAreStreamOrdered) {
  MatrixDesc m{0x40000000, 16, 1024, 8, 0};
  TileDesc t{0, 0, 16, 1024};  // full rows: 2 pages each
  const auto entries = predict_page_entries(m, t);
  ASSERT_EQ(entries.size(), 32u);
  for (std::size_t i = 1; i < entries.size(); ++i) {
    // Within a row the addresses ascend; across rows they restart.
    if (i % 2 == 1) {
      EXPECT_GT(entries[i], entries[i - 1]);
    }
  }
}

TEST(Prediction, FirstEntryIsTileOrigin) {
  MatrixDesc m{0x40000000, 64, 512, 8, 0};
  TileDesc t{3, 17, 4, 64};
  const auto entries = predict_page_entries(m, t);
  ASSERT_FALSE(entries.empty());
  EXPECT_EQ(entries.front(), m.element_addr(3, 17));
}

TEST(Prediction, SmallMatrixSharesPages) {
  // 256-column FP64 rows are 2 KiB: two rows share a page, so a 4-row tile
  // at column 0 touches only 2 distinct pages.
  MatrixDesc m{0x40000000, 256, 256, 8, 0};
  TileDesc t{0, 0, 4, 64};
  EXPECT_LE(distinct_pages(m, t), 3u);
}

TEST(Prediction, PageEntriesCoverEveryTouchedPage) {
  MatrixDesc m{0x40000000, 32, 700, 8, 0};
  TileDesc t{5, 100, 20, 300};
  std::unordered_set<std::uint64_t> expected;
  for (std::uint64_t r = t.row0; r < t.row0 + t.rows; ++r) {
    for (std::uint64_t c = t.col0; c < t.col0 + t.cols; ++c) {
      expected.insert(vpn_of(m.element_addr(r, c)));
    }
  }
  std::unordered_set<std::uint64_t> predicted;
  for (const VirtAddr va : predict_page_entries(m, t)) {
    predicted.insert(vpn_of(va));
  }
  EXPECT_EQ(predicted, expected);
}

class MatlbTest : public ::testing::Test {
 protected:
  MatlbTest()
      : table_(0x1000000), memory_(10'000), walker_(memory_),
        matlb_("test.matlb", 256) {}

  void map_matrix(const MatrixDesc& m) {
    const std::uint64_t bytes = m.footprint_bytes();
    for (std::uint64_t off = 0; off < bytes + kPageSize; off += kPageSize) {
      const VirtAddr va = (m.base & ~(kPageSize - 1)) + off;
      if (!table_.is_mapped(va)) table_.map(va, 0x100000000ull + off);
    }
  }

  PageTable table_;
  FixedLatencyOracle memory_;
  PageTableWalker walker_;
  Matlb matlb_;
};

TEST_F(MatlbTest, PrefillThenStreamHits) {
  MatrixDesc m{0x40000000, 64, 1024, 8, 0};
  map_matrix(m);
  TileDesc t{0, 0, 64, 64};
  const auto report = matlb_.prefill(1, table_, walker_, m, t, 0);
  EXPECT_EQ(report.faults, 0u);
  EXPECT_GT(report.predicted_pages, 0u);

  // Stream through the tile rows in order: every page lookup hits.
  sim::TimePs now = report.total_walk_latency + 1;
  for (std::uint64_t r = 0; r < t.rows; ++r) {
    const VirtAddr va = m.element_addr(r, 0);
    const auto result = matlb_.lookup(va, now);
    EXPECT_TRUE(result.hit) << "row " << r;
    EXPECT_EQ(result.wait, 0u);
    // Physical address must match the page table.
    EXPECT_EQ(result.phys, *table_.translate(va));
  }
  EXPECT_EQ(matlb_.misses(), 0u);
}

TEST_F(MatlbTest, LatePredictionReportsWait) {
  MatrixDesc m{0x40000000, 16, 1024, 8, 0};
  map_matrix(m);
  TileDesc t{0, 0, 16, 64};
  matlb_.prefill(1, table_, walker_, m, t, /*start=*/1'000'000);
  // Looking up immediately (before walks complete) must surface a wait.
  const auto result = matlb_.lookup(m.element_addr(0, 0), /*now=*/0);
  EXPECT_TRUE(result.hit);
  EXPECT_GT(result.wait, 0u);
  EXPECT_EQ(matlb_.late_predictions(), 1u);
}

TEST_F(MatlbTest, StreamRetirementDiscardsPassedEntries) {
  MatrixDesc m{0x40000000, 8, 1024, 8, 0};
  map_matrix(m);
  TileDesc t{0, 0, 8, 64};
  matlb_.prefill(1, table_, walker_, m, t, 0);
  const std::size_t before = matlb_.size();
  // Jump straight to row 4: rows 0-3's entries retire.
  const auto result = matlb_.lookup(m.element_addr(4, 0), 1'000'000);
  EXPECT_TRUE(result.hit);
  EXPECT_EQ(matlb_.retired(), 4u);
  EXPECT_LT(matlb_.size(), before);
}

TEST_F(MatlbTest, MissAfterFlush) {
  MatrixDesc m{0x40000000, 8, 1024, 8, 0};
  map_matrix(m);
  matlb_.prefill(1, table_, walker_, m, TileDesc{0, 0, 8, 64}, 0);
  matlb_.flush();
  const auto result = matlb_.lookup(m.element_addr(0, 0), 1'000'000);
  EXPECT_FALSE(result.hit);
}

TEST_F(MatlbTest, CapacityBoundsPredictions) {
  Matlb tiny("tiny", 4);
  MatrixDesc m{0x40000000, 64, 1024, 8, 0};
  map_matrix(m);
  const auto report =
      tiny.prefill(1, table_, walker_, m, TileDesc{0, 0, 64, 64}, 0);
  EXPECT_EQ(report.predicted_pages, 4u);
  EXPECT_GT(report.dropped_capacity, 0u);
}

TEST_F(MatlbTest, UnmappedPageReportsFault) {
  MatrixDesc m{0x7F0000000, 4, 512, 8, 0};  // never mapped
  const auto report =
      matlb_.prefill(1, table_, walker_, m, TileDesc{0, 0, 4, 64}, 0);
  EXPECT_GT(report.faults, 0u);
}

}  // namespace
}  // namespace maco::vm

namespace maco::vm {
namespace {

TEST(PageSizeParam, LargerPagesTouchFewerPages) {
  const MatrixDesc matrix{0x40000000, 2048, 2048, 8, 0};
  const TileDesc tile{512, 1024, 64, 64};
  const auto p4k = predict_page_entries(matrix, tile, 4096);
  const auto p64k = predict_page_entries(matrix, tile, 65536);
  const auto p2m = predict_page_entries(matrix, tile, 2 * 1024 * 1024);
  EXPECT_GT(p4k.size(), p64k.size());
  EXPECT_GE(p64k.size(), p2m.size());
  EXPECT_GE(p2m.size(), 1u);
}

TEST(PageSizeParam, DefaultOverloadIsFourKiB) {
  const MatrixDesc matrix{0x40000000, 256, 256, 8, 0};
  const TileDesc tile{0, 0, 64, 64};
  EXPECT_EQ(predict_page_entries(matrix, tile).size(),
            predict_page_entries(matrix, tile, kPageSize).size());
}

}  // namespace
}  // namespace maco::vm
