#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "isa/encoding.hpp"
#include "isa/params.hpp"
#include "isa/regfile.hpp"

namespace maco::isa {
namespace {

TEST(Encoding, RoundTripAllMnemonics) {
  for (int op = 0; op <= static_cast<int>(Mnemonic::kMaClear); ++op) {
    Instruction in;
    in.op = static_cast<Mnemonic>(op);
    in.rd = 5;
    in.rn = 10;
    const auto out = decode(encode(in));
    ASSERT_TRUE(out.has_value()) << mnemonic_name(in.op);
    EXPECT_EQ(*out, in);
  }
}

TEST(Encoding, RejectsForeignWords) {
  EXPECT_FALSE(decode(0x00000000).has_value());
  EXPECT_FALSE(decode(0xD503201F).has_value());  // ARMv8 NOP
  // Reserved bits must be zero.
  const std::uint32_t word = encode({Mnemonic::kMaCfg, 1, 2}) | (1u << 7);
  EXPECT_FALSE(decode(word).has_value());
}

TEST(Encoding, MajorOpcodeInTopByte) {
  const std::uint32_t word = encode({Mnemonic::kMaRead, 3, 4});
  EXPECT_EQ(word >> 24, kMpaisMajorOpcode);
}

TEST(RegFile, ZeroRegisterReadsZero) {
  RegFile regs;
  regs.write(kZeroRegister, 0xDEAD);
  EXPECT_EQ(regs.read(kZeroRegister), 0u);
}

TEST(RegFile, ParamBlockRoundTrip) {
  RegFile regs;
  ParamBlock block{1, 2, 3, 4, 5, 6};
  regs.write_param_block(10, block);
  EXPECT_EQ(regs.read_param_block(10), block);
  EXPECT_EQ(regs.read(12), 3u);
}

TEST(Params, GemmRoundTrip) {
  GemmParams p;
  p.a_base = 0x100000000;
  p.b_base = 0x200000000;
  p.c_base = 0x300000000;
  p.m = 4096;
  p.n = 9216;
  p.k = 1024;
  p.precision = sa::Precision::kFp16;
  p.accumulate = false;
  p.tile_rows = 1024;
  p.tile_cols = 1024;
  p.inner_tile_rows = 64;
  p.inner_tile_cols = 64;
  EXPECT_EQ(GemmParams::unpack(p.pack()), p);
}

TEST(Params, GemmDefaultsMatchPaperTiling) {
  const GemmParams p;
  EXPECT_EQ(p.tile_rows, 1024);
  EXPECT_EQ(p.tile_cols, 1024);
  EXPECT_EQ(p.inner_tile_rows, 64);
  EXPECT_EQ(p.inner_tile_cols, 64);
}

TEST(Params, MoveRoundTrip) {
  MoveParams p;
  p.src = 0xAAAA0000;
  p.dst = 0xBBBB0000;
  p.rows = 64;
  p.row_bytes = 512;
  p.src_stride = 8192;
  p.dst_stride = 512;
  EXPECT_EQ(MoveParams::unpack(p.pack()), p);
}

TEST(Params, InitRoundTrip) {
  InitParams p;
  p.dst = 0xCCCC0000;
  p.rows = 128;
  p.row_bytes = 1024;
  p.stride = 4096;
  p.pattern = 0;
  EXPECT_EQ(InitParams::unpack(p.pack()), p);
}

TEST(Params, StashRoundTrip) {
  StashParams p;
  p.base = 0xDDDD0000;
  p.rows = 1024;
  p.row_bytes = 8192;
  p.stride = 8192;
  p.lock = true;
  EXPECT_EQ(StashParams::unpack(p.pack()), p);
}

TEST(Assembler, ParsesProgram) {
  const auto result = assemble(R"(
    ; dispatch a GEMM, params in x10..x15
    ma_cfg   x5, x10
    ma_read  x6, x5     # poll
    ma_state x7, x5
    ma_clear x5
  )");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.program.size(), 4u);
  EXPECT_EQ(result.program[0].op, Mnemonic::kMaCfg);
  EXPECT_EQ(result.program[0].rd, 5);
  EXPECT_EQ(result.program[0].rn, 10);
  EXPECT_EQ(result.program[3].op, Mnemonic::kMaClear);
  EXPECT_EQ(result.program[3].rn, 5);
}

TEST(Assembler, ReportsErrors) {
  const auto bad_mnemonic = assemble("ma_bogus x1, x2");
  EXPECT_FALSE(bad_mnemonic.ok());
  const auto bad_register = assemble("ma_cfg x1, x99");
  EXPECT_FALSE(bad_register.ok());
  const auto bad_arity = assemble("ma_cfg x1");
  EXPECT_FALSE(bad_arity.ok());
  const auto overflow_block = assemble("ma_cfg x1, x28");  // x28..x33 invalid
  EXPECT_FALSE(overflow_block.ok());
}

TEST(Assembler, RegisterParsing) {
  EXPECT_EQ(parse_register("x0"), 0);
  EXPECT_EQ(parse_register("X30"), 30);
  EXPECT_EQ(parse_register("xzr"), 31);
  EXPECT_EQ(parse_register("w5"), -1);
  EXPECT_EQ(parse_register("x31"), -1);  // only xzr names 31
  EXPECT_EQ(parse_register("x32"), -1);
}

TEST(Assembler, DisassembleRoundTrip) {
  const std::string source = "ma_cfg x5, x10\nma_state x6, x5\nma_clear x5\n";
  const auto first = assemble(source);
  ASSERT_TRUE(first.ok());
  const auto second = assemble(disassemble(first.program));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.program, second.program);
}

TEST(Assembler, WordsMatchEncode) {
  const auto result = assemble("ma_move x3, x20");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.words[0], encode(result.program[0]));
}

}  // namespace
}  // namespace maco::isa
