// Property-based and parameterized sweeps across modules.
//
// Where the per-module tests pin specific behaviours, these tests assert
// *invariants* over swept/randomized inputs: conservation (every packet
// delivered once, every C element covered once), agreement between
// independent implementations (closed-form vs cycle-accurate, prediction vs
// brute force, assembler vs disassembler), and bounds (utilization <= 1,
// efficiency in (0,1]).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "core/gemm_mapper.hpp"
#include "core/gemm_plus.hpp"
#include "core/timing_model.hpp"
#include "isa/assembler.hpp"
#include "isa/params.hpp"
#include "mem/cache.hpp"
#include "mem/directory.hpp"
#include "noc/link_load_model.hpp"
#include "noc/mesh.hpp"
#include "sa/latency_model.hpp"
#include "sa/systolic_array.hpp"
#include "sim/engine.hpp"
#include "util/bits.hpp"
#include "util/rng.hpp"
#include "vm/matlb.hpp"
#include "vm/page_table.hpp"
#include "vm/tlb.hpp"

namespace maco {
namespace {

// ---------------------------------------------------------------- util ----

TEST(UtilProperty, AlignHelpersAgreeWithArithmetic) {
  util::Rng rng(11);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t value = rng.next_below(1'000'000'007ull);
    // Mix of power-of-two and arbitrary alignments (clock periods etc.).
    const std::uint64_t aligns[] = {1, 2, 64, 455, 500, 4096, 12'345};
    for (const std::uint64_t a : aligns) {
      const std::uint64_t down = util::align_down(value, a);
      const std::uint64_t up = util::align_up(value, a);
      EXPECT_EQ(down % a, 0u);
      EXPECT_EQ(up % a, 0u);
      EXPECT_LE(down, value);
      EXPECT_GE(up, value);
      EXPECT_LT(value - down, a);
      EXPECT_LT(up - value, a);
    }
  }
}

TEST(UtilProperty, CeilDivMatchesDefinition) {
  util::Rng rng(12);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t a = rng.next_below(1'000'000);
    const std::uint64_t b = 1 + rng.next_below(999);
    const std::uint64_t q = util::ceil_div(a, b);
    EXPECT_GE(q * b, a);
    EXPECT_LT((q - (q ? 1 : 0)) * b, a + b);
  }
}

// ------------------------------------------------------------------ sa ----

struct SaShapeCase {
  std::uint64_t m, n, k;
  sa::Precision precision;
};

class SaAgreement : public ::testing::TestWithParam<SaShapeCase> {};

// The closed-form latency model must agree exactly with the cycle-accurate
// array for every shape and SIMD mode — the system timing model (and hence
// every paper figure) rests on this.
TEST_P(SaAgreement, ClosedFormMatchesCycleAccurate) {
  const SaShapeCase c = GetParam();
  sa::SaConfig config;
  config.precision = c.precision;
  sa::SystolicArray array(config);

  util::Rng rng(99);
  const auto a = sa::HostMatrix::random(c.m, c.k, rng);
  const auto b = sa::HostMatrix::random(c.k, c.n, rng);
  sa::HostMatrix out(c.m, c.n);
  const sa::SaRunResult run = array.run(a, b, out);

  const sa::SaTiming timing =
      sa::compute_sa_timing(sa::TileShape{c.m, c.n, c.k}, config);
  EXPECT_EQ(run.cycles, timing.total_cycles)
      << "shape " << c.m << "x" << c.n << "x" << c.k;
  EXPECT_EQ(run.macs, c.m * c.n * c.k);
  EXPECT_LE(run.utilization, 1.0 + 1e-12);

  sa::HostMatrix expected(c.m, c.n);
  sa::reference_gemm(a, b, expected);
  EXPECT_TRUE(out.approx_equal(expected, 1e-9));
}

INSTANTIATE_TEST_SUITE_P(
    ShapeSweep, SaAgreement,
    ::testing::Values(
        SaShapeCase{4, 4, 4, sa::Precision::kFp64},
        SaShapeCase{16, 16, 16, sa::Precision::kFp64},
        SaShapeCase{64, 64, 64, sa::Precision::kFp64},
        SaShapeCase{64, 64, 64, sa::Precision::kFp32},
        SaShapeCase{64, 64, 64, sa::Precision::kFp16},
        SaShapeCase{17, 5, 9, sa::Precision::kFp64},    // ragged
        SaShapeCase{1, 64, 64, sa::Precision::kFp64},   // single row
        SaShapeCase{64, 1, 64, sa::Precision::kFp64},   // single col
        SaShapeCase{64, 64, 1, sa::Precision::kFp64},   // rank-1 update
        SaShapeCase{3, 3, 3, sa::Precision::kFp16},     // smaller than array
        SaShapeCase{33, 29, 31, sa::Precision::kFp32},  // primes
        SaShapeCase{128, 8, 24, sa::Precision::kFp64}));

TEST(SaProperty, RandomShapesFunctionalAndTimed) {
  util::Rng rng(4242);
  for (int trial = 0; trial < 20; ++trial) {
    const std::uint64_t m = 1 + rng.next_below(48);
    const std::uint64_t n = 1 + rng.next_below(48);
    const std::uint64_t k = 1 + rng.next_below(48);
    const auto precision = static_cast<sa::Precision>(rng.next_below(3));
    sa::SaConfig config;
    config.precision = precision;
    sa::SystolicArray array(config);
    const auto a = sa::HostMatrix::random(m, k, rng);
    const auto b = sa::HostMatrix::random(k, n, rng);
    sa::HostMatrix out(m, n);
    const auto run = array.run(a, b, out);
    const auto timing = sa::compute_sa_timing(sa::TileShape{m, n, k}, config);
    ASSERT_EQ(run.cycles, timing.total_cycles)
        << m << "x" << n << "x" << k << " precision "
        << static_cast<int>(precision);
    sa::HostMatrix expected(m, n);
    sa::reference_gemm(a, b, expected);
    ASSERT_TRUE(out.approx_equal(expected, 1e-9));
  }
}

TEST(SaProperty, MoreSimdWaysNeverSlower) {
  for (std::uint64_t m : {8ull, 64ull, 100ull}) {
    const sa::TileShape shape{m, 64, 64};
    sa::SaConfig fp64, fp32, fp16;
    fp64.precision = sa::Precision::kFp64;
    fp32.precision = sa::Precision::kFp32;
    fp16.precision = sa::Precision::kFp16;
    const auto c64 = sa::compute_sa_timing(shape, fp64).total_cycles;
    const auto c32 = sa::compute_sa_timing(shape, fp32).total_cycles;
    const auto c16 = sa::compute_sa_timing(shape, fp16).total_cycles;
    EXPECT_LE(c32, c64);
    EXPECT_LE(c16, c32);
  }
}

// ------------------------------------------------------------------ vm ----

// predict_page_entries must enumerate exactly the pages a brute-force walk
// of the tile's elements touches, in stream order.
TEST(VmProperty, PredictionMatchesBruteForce) {
  util::Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    vm::MatrixDesc matrix;
    matrix.base = (1 + rng.next_below(1000)) * vm::kPageSize +
                  rng.next_below(4096);  // deliberately unaligned base
    matrix.rows = 1 + rng.next_below(300);
    matrix.cols = 1 + rng.next_below(300);
    matrix.elem_bytes = (rng.next_below(2)) ? 8 : 4;

    vm::TileDesc tile;
    tile.row0 = rng.next_below(matrix.rows);
    tile.col0 = rng.next_below(matrix.cols);
    tile.rows = 1 + rng.next_below((matrix.rows - tile.row0));
    tile.cols = 1 + rng.next_below((matrix.cols - tile.col0));

    // Brute force: touch every element row-major, record page transitions.
    std::vector<std::uint64_t> expected_pages;
    for (std::uint64_t r = tile.row0; r < tile.row0 + tile.rows; ++r) {
      for (std::uint64_t c = tile.col0; c < tile.col0 + tile.cols; ++c) {
        for (std::uint64_t byte = 0; byte < matrix.elem_bytes; ++byte) {
          const std::uint64_t page =
              (matrix.element_addr(r, c) + byte) / vm::kPageSize;
          if (expected_pages.empty() || expected_pages.back() != page) {
            expected_pages.push_back(page);
          }
        }
      }
    }

    const auto predicted = vm::predict_page_entries(matrix, tile);
    ASSERT_EQ(predicted.size(), expected_pages.size()) << "trial " << trial;
    for (std::size_t i = 0; i < predicted.size(); ++i) {
      EXPECT_EQ(predicted[i] / vm::kPageSize, expected_pages[i]);
    }

    // distinct_pages agrees with the set of the stream.
    const std::set<std::uint64_t> unique(expected_pages.begin(),
                                         expected_pages.end());
    EXPECT_EQ(vm::distinct_pages(matrix, tile), unique.size());
  }
}

TEST(VmProperty, PageTableTranslateRoundTrip) {
  vm::PageTable table(/*table_region_base=*/0x4000'0000);
  util::Rng rng(13);
  std::map<vm::VirtAddr, vm::PhysAddr> truth;
  for (int i = 0; i < 500; ++i) {
    const vm::VirtAddr va =
        (rng.next_below((1ull << 36))) & ~(vm::kPageSize - 1);
    const vm::PhysAddr pa =
        (0x1'0000'0000ull + i * vm::kPageSize);
    table.map(va, pa);
    truth[va] = pa;
  }
  for (const auto& [va, pa] : truth) {
    ASSERT_TRUE(table.is_mapped(va));
    const auto got = table.translate(va + 123 % vm::kPageSize);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got & ~(vm::kPageSize - 1), pa);
    // The walk trace reaches the leaf in exactly kLevels reads.
    const auto trace = table.walk(va);
    EXPECT_TRUE(trace.valid);
    EXPECT_EQ(trace.levels, vm::PageTable::kLevels);
  }
  // Unmapped addresses fault.
  EXPECT_FALSE(table.translate(0x7000'0000'0000ull).has_value());
}

TEST(VmProperty, TlbLruNeverExceedsCapacityAndEvictsOldest) {
  vm::Tlb tlb("prop.tlb", 64);
  for (std::uint64_t vpn = 0; vpn < 200; ++vpn) {
    tlb.insert(1, vpn, vpn + 1000);
    EXPECT_LE(tlb.size(), 64u);
  }
  // The newest 64 survive, all older are gone.
  for (std::uint64_t vpn = 200 - 64; vpn < 200; ++vpn) {
    EXPECT_TRUE(tlb.contains(1, vpn)) << vpn;
  }
  for (std::uint64_t vpn = 0; vpn < 200 - 64; ++vpn) {
    EXPECT_FALSE(tlb.contains(1, vpn)) << vpn;
  }
  // Touching an entry protects it from eviction.
  vm::Tlb lru("prop.lru", 4);
  for (std::uint64_t vpn = 0; vpn < 4; ++vpn) lru.insert(1, vpn, vpn);
  ASSERT_TRUE(lru.lookup(1, 0).has_value());  // refresh vpn 0
  lru.insert(1, 100, 100);                    // evicts vpn 1, not 0
  EXPECT_TRUE(lru.contains(1, 0));
  EXPECT_FALSE(lru.contains(1, 1));
}

TEST(VmProperty, TlbAsidIsolation) {
  vm::Tlb tlb("prop.asid", 32);
  tlb.insert(1, 5, 100);
  tlb.insert(2, 5, 200);
  EXPECT_EQ(tlb.lookup(1, 5).value(), 100u);
  EXPECT_EQ(tlb.lookup(2, 5).value(), 200u);
  tlb.invalidate_asid(1);
  EXPECT_FALSE(tlb.contains(1, 5));
  EXPECT_TRUE(tlb.contains(2, 5));
}

// ----------------------------------------------------------------- noc ----

TEST(NocProperty, AllPacketsDeliveredExactlyOnceUnderRandomTraffic) {
  sim::SimEngine engine;
  noc::MeshConfig config;
  noc::MeshNetwork mesh(engine, config);

  std::map<std::uint64_t, int> delivered_count;
  for (int node = 0; node < 16; ++node) {
    mesh.register_endpoint(node, [&delivered_count](const noc::Packet& pkt) {
      ++delivered_count[pkt.id];
    });
  }

  util::Rng rng(2718);
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 400; ++i) {
    noc::Packet pkt;
    pkt.src = static_cast<noc::NodeId>(rng.next_below(16));
    pkt.dst = static_cast<noc::NodeId>(rng.next_below(16));
    pkt.payload_bytes = 8 + static_cast<std::uint32_t>(rng.next_below(256));
    pkt.msg_class = static_cast<noc::MsgClass>(rng.next_below(2));
    ids.push_back(mesh.inject(pkt));
  }
  engine.run();

  EXPECT_EQ(mesh.packets_delivered(), ids.size());
  for (const std::uint64_t id : ids) {
    EXPECT_EQ(delivered_count[id], 1) << "packet " << id;
  }
}

TEST(NocProperty, PerFlowFifoOrdering) {
  // Wormhole + deterministic X-Y routing: packets of one (src,dst,class)
  // flow must arrive in injection order.
  sim::SimEngine engine;
  noc::MeshConfig config;
  noc::MeshNetwork mesh(engine, config);
  std::vector<std::uint64_t> arrivals;
  mesh.register_endpoint(10, [&arrivals](const noc::Packet& pkt) {
    arrivals.push_back(pkt.id);
  });
  std::vector<std::uint64_t> injected;
  for (int i = 0; i < 50; ++i) {
    noc::Packet pkt;
    pkt.src = 5;
    pkt.dst = 10;
    pkt.payload_bytes = 24 + 32 * (i % 3);  // mixed lengths
    injected.push_back(mesh.inject(pkt));
  }
  engine.run();
  EXPECT_EQ(arrivals, injected);
}

TEST(NocProperty, HopCountIsManhattanDistance) {
  noc::LinkLoadConfig config;
  noc::LinkLoadModel model(config);
  for (int src = 0; src < 16; ++src) {
    for (int dst = 0; dst < 16; ++dst) {
      const int sx = src % 4, sy = src / 4, dx = dst % 4, dy = dst / 4;
      EXPECT_EQ(model.hop_count(src, dst),
                static_cast<unsigned>(std::abs(sx - dx) + std::abs(sy - dy)));
    }
  }
}

TEST(NocProperty, LinkLoadConservation) {
  // Total load summed over all links equals sum over flows of
  // rate * (hops + 1 ejection link).
  noc::LinkLoadConfig config;
  noc::LinkLoadModel model(config);
  util::Rng rng(31);
  double expected_total = 0.0;
  for (int i = 0; i < 64; ++i) {
    const noc::NodeId src = static_cast<noc::NodeId>(rng.next_below(16));
    const noc::NodeId dst = static_cast<noc::NodeId>(rng.next_below(16));
    const double rate = 1e9 + static_cast<double>(rng.next_below(1000000));
    model.add_flow(src, dst, rate);
    expected_total += rate * (model.hop_count(src, dst) + 1);
  }
  // max_utilization * capacity bounds every link; we check conservation via
  // a probe flow on every path instead of exposing raw loads: the weaker
  // invariant max >= average must hold.
  const double links = 16.0 * 5.0;
  EXPECT_GE(model.max_utilization() * config.link_bytes_per_second,
            expected_total / links);
}

// ----------------------------------------------------------------- mem ----

TEST(MemProperty, CacheNeverExceedsCapacityAndLockPinsLines) {
  mem::SetAssocCache cache("prop.cache",
                           mem::CacheConfig{16 * 1024, 4, 64});
  util::Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    cache.access(rng.next_below((1 << 22)) & ~63ull, rng.next_below(2),
                 mem::CoherenceState::kShared);
  }
  // Lock one line, thrash its set, confirm it survives.
  const std::uint64_t victim_addr = 0x100000;
  cache.access(victim_addr, false, mem::CoherenceState::kShared);
  ASSERT_TRUE(cache.lock(victim_addr));
  const std::uint64_t sets = 16 * 1024 / 4 / 64;
  for (int way = 0; way < 64; ++way) {
    cache.access(victim_addr + (way + 1) * sets * 64, false,
                 mem::CoherenceState::kShared);
  }
  EXPECT_TRUE(cache.probe(victim_addr).has_value());
  EXPECT_TRUE(cache.is_locked(victim_addr));
  cache.unlock(victim_addr);
}

TEST(MemProperty, DirectorySingleWriterInvariant) {
  mem::DramController dram("prop.dram", mem::DramConfig{});
  mem::DirectoryCcm ccm("prop.ccm", mem::CcmConfig{}, dram,
                        [](int, std::uint64_t) { return sim::TimePs{1000}; });
  util::Rng rng(17);
  sim::TimePs now = 0;
  const std::uint64_t lines[] = {0x1000, 0x2000, 0x3000};
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t line = lines[rng.next_below(3)];
    const int node = static_cast<int>(rng.next_below(8));
    const auto type = (rng.next_below(2)) ? mem::CcmReqType::kGetM
                                           : mem::CcmReqType::kGetS;
    ccm.handle({type, node, line}, now);
    now += 1000;

    // Invariant: at most one node sees Modified; if one does, no other node
    // sees any valid state for that line.
    for (const std::uint64_t l : lines) {
      int modified = 0, valid = 0;
      for (int n = 0; n < 8; ++n) {
        const auto state = ccm.node_view(n, l);
        if (state == mem::CoherenceState::kModified) ++modified;
        if (state != mem::CoherenceState::kInvalid) ++valid;
      }
      ASSERT_LE(modified, 1);
      if (modified == 1) {
        ASSERT_EQ(valid, 1);
      }
    }
  }
}

TEST(MemProperty, DramBandwidthLawHolds) {
  // N back-to-back transfers of S bytes take at least N*S/BW seconds.
  mem::DramConfig config;
  mem::DramController dram("prop.dram", config);
  sim::TimePs t = 0;
  const std::uint64_t bytes = 4096;
  const int n = 100;
  for (int i = 0; i < n; ++i) t = dram.access(t, bytes);
  const double seconds = sim::to_seconds(t);
  EXPECT_GE(seconds, n * bytes / config.bandwidth_bytes_per_second * 0.999);
}

// ----------------------------------------------------------------- isa ----

TEST(IsaProperty, ParamBlocksRoundTripUnderFuzz) {
  util::Rng rng(23);
  for (int i = 0; i < 300; ++i) {
    isa::GemmParams g;
    g.a_base = (rng() & ((1ull << 48) - 1));
    g.b_base = (rng() & ((1ull << 48) - 1));
    g.c_base = (rng() & ((1ull << 48) - 1));
    g.m = static_cast<std::uint32_t>(rng());
    g.n = static_cast<std::uint32_t>(rng());
    g.k = static_cast<std::uint32_t>(rng());
    g.precision = static_cast<sa::Precision>(rng.next_below(3));
    g.accumulate = rng.next_below(2);
    g.tile_rows = static_cast<std::uint16_t>(rng());
    g.tile_cols = static_cast<std::uint16_t>(rng());
    g.inner_tile_rows = static_cast<std::uint16_t>(rng());
    g.inner_tile_cols = static_cast<std::uint16_t>(rng());
    EXPECT_EQ(isa::GemmParams::unpack(g.pack()), g);

    isa::MoveParams mv;
    mv.src = rng();
    mv.dst = rng();
    mv.rows = static_cast<std::uint32_t>(rng());
    mv.row_bytes = static_cast<std::uint32_t>(rng());
    mv.src_stride = rng();
    mv.dst_stride = rng();
    EXPECT_EQ(isa::MoveParams::unpack(mv.pack()), mv);

    isa::InitParams init;
    init.dst = rng();
    init.rows = static_cast<std::uint32_t>(rng());
    init.row_bytes = static_cast<std::uint32_t>(rng());
    init.stride = rng();
    init.pattern = rng();
    EXPECT_EQ(isa::InitParams::unpack(init.pack()), init);

    isa::StashParams stash;
    stash.base = rng();
    stash.rows = static_cast<std::uint32_t>(rng());
    stash.row_bytes = static_cast<std::uint32_t>(rng());
    stash.stride = rng();
    stash.lock = rng.next_below(2);
    EXPECT_EQ(isa::StashParams::unpack(stash.pack()), stash);
  }
}

TEST(IsaProperty, AssembleDisassembleRoundTrip) {
  util::Rng rng(29);
  for (int i = 0; i < 200; ++i) {
    std::vector<isa::Instruction> program;
    for (int j = 0; j < 8; ++j) {
      isa::Instruction instruction;
      instruction.op = static_cast<isa::Mnemonic>(rng.next_below(7));
      instruction.rd = static_cast<std::uint8_t>(rng.next_below(31));
      // Param-block instructions require Rn..Rn+5 below XZR (rn <= 25).
      instruction.rn = static_cast<std::uint8_t>(rng.next_below(25));
      program.push_back(instruction);
    }
    const auto result = isa::assemble(isa::disassemble(program));
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result.program.size(), program.size());
    for (std::size_t j = 0; j < program.size(); ++j) {
      EXPECT_EQ(result.program[j].op, program[j].op);
      EXPECT_EQ(result.program[j].rn, program[j].rn);
      // MA_CLEAR has no rd operand; it reads the MAID from Rn.
      if (program[j].op != isa::Mnemonic::kMaClear) {
        EXPECT_EQ(result.program[j].rd, program[j].rd);
      }
    }
  }
}

TEST(IsaProperty, EncodeDecodeRoundTrip) {
  for (int op = 0; op < 7; ++op) {
    for (std::uint8_t rd : {0, 5, 17, 30}) {
      // rn is a param-block base for MA_MOVE/INIT/STASH/CFG: Rn+5 < XZR.
      for (std::uint8_t rn : {0, 10, 20, 25}) {
        isa::Instruction instruction;
        instruction.op = static_cast<isa::Mnemonic>(op);
        instruction.rd = rd;
        instruction.rn = rn;
        const auto decoded = isa::decode(isa::encode(instruction));
        ASSERT_TRUE(decoded.has_value());
        EXPECT_EQ(decoded->op, instruction.op);
        EXPECT_EQ(decoded->rd, rd);
        EXPECT_EQ(decoded->rn, rn);
      }
    }
  }
}

// ---------------------------------------------------------------- core ----

TEST(MapperProperty, RandomShapesCoverExactlyOnce) {
  util::Rng rng(37);
  for (int trial = 0; trial < 40; ++trial) {
    const std::uint64_t m = 1 + rng.next_below(5000);
    const std::uint64_t n = 1 + rng.next_below(5000);
    const unsigned nodes = 1 + static_cast<unsigned>(rng.next_below(16));
    const auto plan = core::partition_gemm(m, n, 512, nodes, 256, 256);

    // Coverage check on a coarse grid plus exact area accounting.
    std::uint64_t covered = 0;
    for (const auto& node : plan) {
      for (const auto& tile : node.c_tiles) {
        covered += tile.rows * tile.cols;
        EXPECT_LE(tile.row0 + tile.rows, m);
        EXPECT_LE(tile.col0 + tile.cols, n);
      }
    }
    ASSERT_EQ(covered, m * n) << m << "x" << n << " over " << nodes;

    // No overlap: sample random points and count owners.
    for (int s = 0; s < 50; ++s) {
      const std::uint64_t r = rng.next_below(m);
      const std::uint64_t c = rng.next_below(n);
      int owners = 0;
      for (const auto& node : plan) {
        for (const auto& tile : node.c_tiles) {
          if (r >= tile.row0 && r < tile.row0 + tile.rows &&
              c >= tile.col0 && c < tile.col0 + tile.cols) {
            ++owners;
          }
        }
      }
      ASSERT_EQ(owners, 1);
    }

    // Critical path never below the perfect split.
    const std::uint64_t total = m * n * 512;
    EXPECT_GE(core::critical_path_macs(plan) * nodes, total);
  }
}

TEST(GemmPlusProperty, ScheduleBounds) {
  util::Rng rng(41);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<core::GemmPlusStage> stages;
    sim::TimePs sum_gemm = 0, sum_cpu = 0, sum_all = 0;
    const int n = 1 + static_cast<int>(rng.next_below(12));
    for (int i = 0; i < n; ++i) {
      core::GemmPlusStage stage;
      stage.gemm_ps = rng.next_below(10000);
      stage.cpu_post_ps = rng.next_below(10000);
      stage.stash_ps = rng.next_below(2000);
      stages.push_back(stage);
      sum_gemm += stage.gemm_ps;
      sum_cpu += stage.cpu_post_ps;
      sum_all += stage.gemm_ps + stage.cpu_post_ps + stage.stash_ps;
    }
    const auto serial = core::schedule_gemm_plus(stages, false);
    const auto piped = core::schedule_gemm_plus(stages, true);
    // Pipelining never loses, never beats the resource bounds.
    EXPECT_LE(piped.total_ps, serial.total_ps);
    EXPECT_GE(piped.total_ps, sum_gemm);
    EXPECT_GE(piped.total_ps, sum_cpu);
    EXPECT_EQ(serial.total_ps, sum_all);
    EXPECT_GE(piped.overlap_fraction, 0.0);
    EXPECT_LE(piped.overlap_fraction, 1.0);
  }
}

TEST(TimingModelProperty, EfficiencyBoundedAndConsistent) {
  const core::SystemTimingModel model(core::SystemConfig::maco_default());
  util::Rng rng(43);
  for (int trial = 0; trial < 25; ++trial) {
    core::TimingOptions options;
    options.shape = sa::TileShape{256 + rng.next_below(4096),
                                  256 + rng.next_below(4096),
                                  256 + rng() % 4096};
    options.active_nodes = 1 + static_cast<unsigned>(rng.next_below(16));
    options.cooperative = rng.next_below(2);
    options.use_matlb = rng.next_below(2);
    options.use_stash_lock = rng.next_below(2);
    const auto timing = model.run(options);
    ASSERT_GT(timing.mean_efficiency, 0.0);
    ASSERT_LE(timing.mean_efficiency, 1.0 + 1e-9);
    ASSERT_GT(timing.total_gflops, 0.0);
    ASSERT_GT(timing.makespan_ps, 0u);
    // Throughput identity: total_gflops == total FLOPs / makespan.
    const double total_macs =
        options.cooperative
            ? static_cast<double>(options.shape.macs())
            : static_cast<double>(options.shape.macs()) * options.active_nodes;
    const double expect_gflops =
        2.0 * total_macs / (static_cast<double>(timing.makespan_ps) * 1e-12) /
        1e9;
    ASSERT_NEAR(timing.total_gflops, expect_gflops, expect_gflops * 1e-6);
  }
}

TEST(TimingModelProperty, FeaturesNeverHurt) {
  // Turning a feature ON never reduces throughput, over a sweep of shapes
  // and node counts.
  const core::SystemTimingModel model(core::SystemConfig::maco_default());
  for (const std::uint64_t size : {512ull, 1024ull, 4096ull}) {
    for (const unsigned nodes : {1u, 8u, 16u}) {
      core::TimingOptions base;
      base.shape = sa::TileShape{size, size, size};
      base.active_nodes = nodes;

      core::TimingOptions no_matlb = base;
      no_matlb.use_matlb = false;
      core::TimingOptions no_stash = base;
      no_stash.use_stash_lock = false;

      const double full = model.run(base).total_gflops;
      EXPECT_GE(full, model.run(no_matlb).total_gflops * 0.9999)
          << size << "/" << nodes;
      EXPECT_GE(full, model.run(no_stash).total_gflops * 0.9999)
          << size << "/" << nodes;
    }
  }
}

}  // namespace
}  // namespace maco
