// Pluggable DRAM and interconnect backends: timing units of the queued
// bank/row-buffer model, the two-leg icnt protocol, cross-backend
// agreement and separation on the detailed machine, typed rejection of
// invalid fidelity x backend combinations, and the sweep-JSON import path
// that feeds committed benchmark trajectories into campaign stores.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <stdexcept>
#include <string>

#include "core/detailed_runner.hpp"
#include "driver/scenario_registry.hpp"
#include "driver/store_import.hpp"
#include "driver/sweep_runner.hpp"
#include "mem/dram.hpp"
#include "mem/queued_dram.hpp"
#include "noc/icnt.hpp"
#include "store/campaign_store.hpp"
#include "util/json.hpp"

namespace {

using namespace maco;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

mem::DramConfig queued_config() {
  mem::DramConfig config;
  config.kind = mem::DramKind::kQueued;
  return config;
}

// 64 B at 25.6 GB/s is 2.5 ns of bus time.
constexpr sim::TimePs kXfer = 2'500;
constexpr std::uint64_t kLine = 64;

// ---------------- queued DRAM timing units ----------------

TEST(QueuedDram, ClosedRowAccessMatchesSimpleFlatLatency) {
  // t_rcd + t_cas equals the flat model's access latency by calibration,
  // so a cold isolated access completes at the same instant under both
  // backends — the low-load agreement anchor.
  mem::DramController simple("s", mem::DramConfig{});
  mem::QueuedDramController queued("q", queued_config());
  EXPECT_EQ(simple.access(0, 0, kLine), queued.access(0, 0, kLine));
  EXPECT_EQ(queued.row_misses(), 1u);
}

TEST(QueuedDram, RowHitPaysCasOnly) {
  mem::QueuedDramController dram("q", queued_config());
  dram.access(0, 0, kLine);  // opens row 0 of bank 0
  const sim::TimePs quiet = 1'000'000;  // past every booked resource
  EXPECT_EQ(dram.access(quiet, kLine, kLine),
            quiet + dram.config().t_cas_ps + kXfer);
  EXPECT_EQ(dram.row_hits(), 1u);
}

TEST(QueuedDram, RowConflictPaysPrechargeActivateCas) {
  mem::QueuedDramController dram("q", queued_config());
  dram.access(0, 0, kLine);  // opens row 0 of bank 0
  const sim::TimePs quiet = 1'000'000;
  const std::uint64_t same_bank_next_row = dram.addr_of(0, 1, 0);
  EXPECT_EQ(dram.access(quiet, same_bank_next_row, kLine),
            quiet + dram.config().t_rp_ps + dram.config().t_rcd_ps +
                dram.config().t_cas_ps + kXfer);
  EXPECT_EQ(dram.row_conflicts(), 1u);
}

TEST(QueuedDram, ActToActSpacingDelaysRapidReactivation) {
  mem::DramConfig config = queued_config();
  config.t_rc_ps = 400'000;  // larger than any command sequence here
  mem::QueuedDramController dram("q", config);
  dram.access(0, 0, kLine);  // ACT at 0 -> next ACT >= 400 ns
  const std::uint64_t same_bank_next_row = dram.addr_of(0, 1, 0);
  // The conflict's activate is t_rc-bound, not precharge-bound.
  EXPECT_EQ(dram.access(100'000, same_bank_next_row, kLine),
            config.t_rc_ps + config.t_rcd_ps + config.t_cas_ps + kXfer);
}

TEST(QueuedDram, InterleaveRoundTrips) {
  mem::QueuedDramController dram("q", queued_config());
  for (unsigned bank : {0u, 3u, 7u}) {
    for (std::uint64_t row : {0ull, 1ull, 129ull}) {
      const std::uint64_t addr = dram.addr_of(bank, row, 64);
      EXPECT_EQ(dram.bank_of(addr), bank);
      EXPECT_EQ(dram.row_of(addr), row);
    }
  }
  // Consecutive row-buffer-sized blocks rotate across banks.
  EXPECT_EQ(dram.bank_of(0), 0u);
  EXPECT_EQ(dram.bank_of(dram.config().row_buffer_bytes), 1u);
}

TEST(QueuedDram, BankConflictStrideIsMonotonicallySlower) {
  // Saturating line streams. Holding the bank set fixed, conflicts must
  // cost more than hits (same bank: CAS-paced vs t_rc-paced), and for an
  // all-conflict stream, concentrating it on one bank must cost more than
  // rotating it across every bank (per-bank t_rc overlaps).
  const auto makespan = [](std::uint64_t stride) {
    mem::QueuedDramController dram("q", queued_config());
    sim::TimePs done = 0;
    for (std::uint64_t i = 0; i < 2048; ++i) {
      done = std::max(done, dram.access(0, i * stride, kLine));
    }
    return done;
  };
  const mem::DramConfig config = queued_config();
  const sim::TimePs one_bank_hits = makespan(0);
  const sim::TimePs rotating_conflicts = makespan(config.row_buffer_bytes);
  const sim::TimePs one_bank_conflicts =
      makespan(config.row_buffer_bytes * config.banks);
  EXPECT_LT(one_bank_hits, one_bank_conflicts);
  EXPECT_LT(rotating_conflicts, one_bank_conflicts);
}

TEST(DramModel, UtilizationWindowReopensAtResetStats) {
  // Regression: utilization() divides by time since the LAST reset, not
  // since construction — a long idle span before reset_stats(now) must
  // not dilute the fresh window.
  mem::DramController dram("s", mem::DramConfig{});
  const sim::TimePs idle_until = 10'000'000;
  dram.reset_stats(idle_until);
  dram.access(idle_until, 0, kLine);
  EXPECT_DOUBLE_EQ(dram.utilization(idle_until + kXfer), 1.0);
}

TEST(DramModel, ParseKindRejectsUnknownNamingChoices) {
  EXPECT_EQ(mem::parse_dram_kind("queued"), mem::DramKind::kQueued);
  try {
    mem::parse_dram_kind("fancy");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("simple|queued"),
              std::string::npos);
  }
}

// ---------------- icnt backends ----------------

noc::IcntConfig icnt_config(noc::IcntKind kind) {
  noc::IcntConfig config;
  config.kind = kind;
  return config;
}

TEST(Icnt, ParseKindRejectsUnknownNamingChoices) {
  EXPECT_EQ(noc::parse_icnt_kind("flit"), noc::IcntKind::kFlit);
  try {
    noc::parse_icnt_kind("torus");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("analytic|flit"),
              std::string::npos);
  }
}

TEST(Icnt, AnalyticLegsPreserveTheClosedForm) {
  // Request leg zero (the home slice is consulted at injection time, as
  // the pre-trait code did) and the response leg the full 2*(hops+1)
  // round trip, load-blind.
  noc::AnalyticIcnt icnt(icnt_config(noc::IcntKind::kAnalytic));
  const unsigned hops = icnt.hop_count(0, 15);  // corner to corner: 6
  EXPECT_EQ(hops, 6u);
  for (int repeat = 0; repeat < 3; ++repeat) {
    EXPECT_EQ(icnt.request_leg_ps(0, 0, 15), 0);
    EXPECT_EQ(icnt.response_leg_ps(0, 15, 0, kLine),
              static_cast<sim::TimePs>(2 * (hops + 1)) *
                  icnt.config().hop_ps);
  }
  EXPECT_EQ(icnt.unloaded_round_trip_ps(0, 15, kLine),
            icnt.response_leg_ps(0, 15, 0, kLine));
}

TEST(Icnt, FlitUnloadedRoundTripExceedsAnalyticBySerialization) {
  // Same route, same cycle time: the flit model adds the payload's
  // (flits - 1) serialization cycles on top of the hop pipeline.
  noc::AnalyticIcnt analytic(icnt_config(noc::IcntKind::kAnalytic));
  noc::FlitIcnt flit(icnt_config(noc::IcntKind::kFlit));
  const sim::TimePs extra =
      static_cast<sim::TimePs>(flit.flits_for(kLine) - 1) *
      flit.config().cycle_ps;
  EXPECT_EQ(flit.unloaded_round_trip_ps(0, 15, kLine),
            analytic.unloaded_round_trip_ps(0, 15, kLine) + extra);
}

TEST(Icnt, FlitLegsBookLinksSoOverlappingTransfersContend) {
  noc::FlitIcnt flit(icnt_config(noc::IcntKind::kFlit));
  EXPECT_EQ(flit.busy_horizon_ps(), 0);
  const sim::TimePs first = flit.response_leg_ps(0, 15, 0, kLine);
  const sim::TimePs horizon = flit.busy_horizon_ps();
  EXPECT_GT(horizon, 0);
  // The same route at the same instant queues behind the first wormhole.
  const sim::TimePs second = flit.response_leg_ps(0, 15, 0, kLine);
  EXPECT_GT(second, first);
  EXPECT_GT(flit.busy_horizon_ps(), horizon);
  // Request legs are counted transfers too.
  EXPECT_EQ(flit.transfers(), 0u);
  flit.request_leg_ps(0, 0, 15);
  EXPECT_EQ(flit.transfers(), 1u);
}

// ---------------- detailed-machine cross-validation ----------------

core::TimingOptions detailed_options(std::uint64_t size) {
  core::TimingOptions options;
  options.shape = {size, size, size};
  options.active_nodes = 1;
  return options;
}

TEST(BackendCrossValidation, QueuedAgreesWithSimpleAtLowLoad) {
  // One node, compute-bound GEMM: the command timings are calibrated so
  // the banked model reproduces the flat model within 5% when the DRAM is
  // far from saturation (the ISSUE's agreement acceptance bound).
  core::SystemConfig config = core::SystemConfig::maco_default();
  config.dram.kind = mem::DramKind::kSimple;
  const core::SystemTiming simple =
      core::run_detailed_gemm(config, detailed_options(512));
  config.dram.kind = mem::DramKind::kQueued;
  const core::SystemTiming queued =
      core::run_detailed_gemm(config, detailed_options(512));
  ASSERT_GT(simple.makespan_ps, 0);
  const double ratio = static_cast<double>(queued.makespan_ps) /
                       static_cast<double>(simple.makespan_ps);
  EXPECT_GT(ratio, 0.95);
  EXPECT_LT(ratio, 1.05);
}

TEST(BackendCrossValidation, FlitIcntAddsContentionOverAnalytic) {
  core::SystemConfig config = core::SystemConfig::maco_default();
  core::TimingOptions options = detailed_options(256);
  options.active_nodes = 4;
  config.icnt = noc::IcntKind::kAnalytic;
  const core::SystemTiming analytic =
      core::run_detailed_gemm(config, options);
  config.icnt = noc::IcntKind::kFlit;
  const core::SystemTiming flit = core::run_detailed_gemm(config, options);
  // Booked links can only delay transfers, and four nodes sharing mesh
  // links must observe some contention — but not runaway queueing.
  EXPECT_GE(flit.makespan_ps, analytic.makespan_ps);
  EXPECT_LT(flit.makespan_ps, 2 * analytic.makespan_ps);
}

// ---------------- typed rejection through the sweep runner ----------------

driver::SweepRequest one_point(const std::string& scenario,
                               std::map<std::string, std::string> params) {
  driver::SweepRequest request;
  request.scenario = scenario;
  request.base_params = std::move(params);
  return request;
}

TEST(BackendKnobs, QueuedUnderAnalyticFidelityFailsWithTheRule) {
  const driver::ScenarioRegistry registry =
      driver::ScenarioRegistry::builtin();
  const driver::SweepResults results = driver::run_sweep(
      registry,
      one_point("gemm", {{"fidelity", "analytic"}, {"dram", "queued"}}),
      nullptr);
  ASSERT_EQ(results.rows.size(), 1u);
  EXPECT_FALSE(results.rows[0].ok());
  EXPECT_NE(results.rows[0].error.find("cross-schema constraint"),
            std::string::npos);
  EXPECT_NE(results.rows[0].error.find("fidelity=detailed|sampled"),
            std::string::npos);
}

TEST(BackendKnobs, QueuedOnlyKnobsRequireQueuedDram) {
  const driver::ScenarioRegistry registry =
      driver::ScenarioRegistry::builtin();
  const driver::SweepResults results = driver::run_sweep(
      registry, one_point("micro_dram", {{"dram_banks", "16"}}), nullptr);
  ASSERT_EQ(results.rows.size(), 1u);
  EXPECT_FALSE(results.rows[0].ok());
  EXPECT_NE(results.rows[0].error.find("require dram=queued"),
            std::string::npos);
}

// ---------------- sweep-JSON import ----------------

TEST(JsonParser, ParsesDocumentsAndRejectsMalformedInput) {
  const util::JsonValue doc = util::parse_json(
      R"({"name":"aé\n","n":-2.5e3,"ok":true,"none":null,)"
      R"("list":[1,2]})");
  EXPECT_EQ(doc.find("name")->as_string(), "a\xc3\xa9\n");
  EXPECT_DOUBLE_EQ(doc.find("n")->as_number(), -2500.0);
  EXPECT_TRUE(doc.find("ok")->as_bool());
  EXPECT_TRUE(doc.find("none")->is_null());
  EXPECT_EQ(doc.find("list")->as_array().size(), 2u);
  EXPECT_EQ(doc.find("missing"), nullptr);
  EXPECT_THROW(util::parse_json("{\"a\":1,}"), std::runtime_error);
  EXPECT_THROW(util::parse_json("[1] trailing"), std::runtime_error);
  EXPECT_THROW(util::parse_json("{\"a\" 1}"), std::runtime_error);
  EXPECT_THROW(util::parse_json(""), std::runtime_error);
}

TEST(StoreImport, ImportedRowsAreFingerprintedAndIdempotent) {
  const driver::ScenarioRegistry registry =
      driver::ScenarioRegistry::builtin();
  const std::string json =
      R"({"scenario":"micro_dram",)"
      R"("columns":[{"name":"makespan_us","unit":"us",)"
      R"("higher_is_better":false}],)"
      R"("rows":[{"params":{"dram":"queued","stride_bytes":"16384"},)"
      R"("metrics":{"makespan_us":312.3}},)"
      R"({"params":{"dram":"simple"},"metrics":{"makespan_us":5.2}},)"
      R"({"params":{"dram":"simple","accesses":"1"},"metrics":{},)"
      R"("error":"boom"}]})";
  const std::string path = temp_path("backend_import.mdb");
  std::filesystem::remove(path);
  {
    store::CampaignStore store(path);
    const driver::ImportSummary summary =
        driver::import_sweep_json(registry, json, store);
    EXPECT_EQ(summary.imported, 2u);
    EXPECT_EQ(summary.skipped, 0u);
    EXPECT_EQ(summary.errored, 1u);
    // Same trajectory again: every point already present.
    const driver::ImportSummary again =
        driver::import_sweep_json(registry, json, store);
    EXPECT_EQ(again.imported, 0u);
    EXPECT_EQ(again.skipped, 2u);
  }
  store::CampaignStore store(path, store::CampaignStore::Mode::kReadOnly);
  ASSERT_EQ(store.size(), 2u);
  const store::CampaignRecord& record = store.records()[0];
  // Defaults were filled by the bind and the explicit subset preserved, so
  // the fingerprint matches what a live sweep of the same point computes.
  EXPECT_EQ(record.fingerprint, record.computed_fingerprint());
  EXPECT_EQ(record.params.at("dram"), "queued");
  EXPECT_EQ(record.params.at("accesses"), "4096");
  EXPECT_TRUE(record.explicit_params.count("stride_bytes"));
  EXPECT_FALSE(record.explicit_params.count("accesses"));
  ASSERT_EQ(record.metrics.size(), 1u);
  EXPECT_EQ(record.metrics[0].unit, "us");
  EXPECT_FALSE(record.metrics[0].higher_is_better);
}

TEST(StoreImport, RejectsUnknownParametersAndScenarios) {
  const driver::ScenarioRegistry registry =
      driver::ScenarioRegistry::builtin();
  const std::string path = temp_path("backend_import_bad.mdb");
  std::filesystem::remove(path);
  store::CampaignStore store(path);
  EXPECT_THROW(driver::import_sweep_json(
                   registry, R"({"scenario":"nope","rows":[]})", store),
               std::invalid_argument);
  try {
    driver::import_sweep_json(
        registry,
        R"({"scenario":"micro_dram",)"
        R"("rows":[{"params":{"bogus":"1"},"metrics":{}}]})",
        store);
    FAIL() << "expected a schema-drift error";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("row 0"), std::string::npos);
    EXPECT_NE(std::string(error.what()).find("bogus"), std::string::npos);
  }
  // A row violating a cross-schema rule cannot be imported either: the
  // micro_dram scenario pins icnt=analytic.
  EXPECT_THROW(driver::import_sweep_json(
                   registry,
                   R"({"scenario":"micro_dram",)"
                   R"("rows":[{"params":{"icnt":"flit"},"metrics":{}}]})",
                   store),
               std::runtime_error);
  EXPECT_EQ(store.size(), 0u);
}

}  // namespace
