#include <gtest/gtest.h>

#include "cpu/core.hpp"
#include "cpu/mmu.hpp"
#include "cpu/mtq.hpp"
#include "cpu/scalar_kernels.hpp"

namespace maco::cpu {
namespace {

// ---------------- MTQ: the Fig. 3 state machine ----------------

TEST(Mtq, AllocateSetsValidAndAsid) {
  MasterTaskQueue mtq(4);
  const auto maid = mtq.allocate(7);
  ASSERT_TRUE(maid.has_value());
  const MtqEntry& e = mtq.entry(*maid);
  EXPECT_TRUE(e.valid);
  EXPECT_FALSE(e.done);
  EXPECT_EQ(e.asid, 7);
  EXPECT_TRUE(e.asid_valid);
}

TEST(Mtq, ExhaustionFailsAllocation) {
  MasterTaskQueue mtq(2);
  EXPECT_TRUE(mtq.allocate(1).has_value());
  EXPECT_TRUE(mtq.allocate(1).has_value());
  EXPECT_FALSE(mtq.allocate(1).has_value());
  EXPECT_EQ(mtq.allocation_failures(), 1u);
}

TEST(Mtq, NormalLifecycle) {
  // Fig. 3 states 1 -> 2: task performs, completes without exceptions,
  // MA_STATE releases the entry.
  MasterTaskQueue mtq(4);
  const Maid maid = *mtq.allocate(3);
  mtq.mark_done(maid);
  const auto snapshot = mtq.read_and_release(maid);
  ASSERT_TRUE(snapshot.has_value());
  EXPECT_TRUE(snapshot->done);
  EXPECT_FALSE(snapshot->exception_en);
  // Entry is free again (ASID = NULL).
  EXPECT_FALSE(mtq.entry(maid).valid);
  EXPECT_FALSE(mtq.entry(maid).asid_valid);
  EXPECT_EQ(mtq.occupied(), 0u);
}

TEST(Mtq, StateThreeAsidMismatchDetectable) {
  // Fig. 3 state 3: the entry was released and re-allocated to process #01;
  // process #00 can still detect completion via Done + ASID mismatch.
  MasterTaskQueue mtq(1);
  const Maid maid = *mtq.allocate(/*asid=*/0);
  mtq.mark_done(maid);
  ASSERT_TRUE(mtq.read_and_release(maid).has_value());
  const Maid reused = *mtq.allocate(/*asid=*/1);
  EXPECT_EQ(reused, maid);  // same entry re-used
  const auto view = mtq.read(maid);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->asid, 1);  // ASID no longer matches process #00
  EXPECT_FALSE(view->done);
}

TEST(Mtq, ExceptionPathRequiresClear) {
  // Fig. 3 state 4: exception terminates the task; MA_STATE does not free
  // the entry, MA_CLEAR does.
  MasterTaskQueue mtq(2);
  const Maid maid = *mtq.allocate(5);
  mtq.mark_exception(maid, ExceptionType::kPageFault);
  const auto snapshot = mtq.read_and_release(maid);
  ASSERT_TRUE(snapshot.has_value());
  EXPECT_TRUE(snapshot->exception_en);
  EXPECT_EQ(snapshot->exception_type, ExceptionType::kPageFault);
  EXPECT_TRUE(mtq.entry(maid).valid);  // still allocated
  EXPECT_TRUE(mtq.clear(maid));
  EXPECT_FALSE(mtq.entry(maid).valid);
}

TEST(Mtq, PackStateEncodesFields) {
  MtqEntry e;
  e.valid = true;
  e.done = true;
  e.exception_en = true;
  e.exception_type = ExceptionType::kBufferOverflow;
  e.asid = 0x1234;
  e.asid_valid = true;
  const std::uint64_t word = pack_state(e);
  EXPECT_EQ(word & 1, 1u);
  EXPECT_EQ((word >> 1) & 1, 1u);
  EXPECT_EQ((word >> 2) & 1, 1u);
  EXPECT_EQ((word >> 4) & 0xF,
            static_cast<std::uint64_t>(ExceptionType::kBufferOverflow));
  EXPECT_EQ((word >> 16) & 0xFFFF, 0x1234u);
  EXPECT_EQ((word >> 32) & 1, 1u);
}

// ---------------- MMU ----------------

class MmuTest : public ::testing::Test {
 protected:
  MmuTest() : table_(0x1000000), oracle_(10'000), mmu_("mmu", MmuConfig{}, oracle_) {
    table_.map(0x40000000, 0x5000);
  }
  vm::PageTable table_;
  vm::FixedLatencyOracle oracle_;
  Mmu mmu_;
};

TEST_F(MmuTest, WalkThenTlbHits) {
  const auto first = mmu_.translate(1, table_, 0x40000123);
  EXPECT_TRUE(first.valid);
  EXPECT_EQ(first.source, TranslationSource::kPageWalk);
  EXPECT_EQ(first.phys, 0x5123u);

  const auto second = mmu_.translate(1, table_, 0x40000456);
  EXPECT_EQ(second.source, TranslationSource::kL1Tlb);
  EXPECT_EQ(second.latency, 0u);
}

TEST_F(MmuTest, AcceleratorPathSkipsL1) {
  const auto first = mmu_.translate_for_accelerator(1, table_, 0x40000000);
  EXPECT_TRUE(first.valid);
  // sTLB is filled, L1 DTLB is not.
  EXPECT_TRUE(mmu_.shared_tlb().contains(1, 0x40000));
  EXPECT_FALSE(mmu_.l1_tlb().contains(1, 0x40000));
  const auto second = mmu_.translate_for_accelerator(1, table_, 0x40000008);
  EXPECT_EQ(second.source, TranslationSource::kSharedTlb);
}

TEST_F(MmuTest, CpuPathBenefitsFromAcceleratorFills) {
  // The MMAE's walks warm the shared TLB for the CPU too.
  mmu_.translate_for_accelerator(1, table_, 0x40000000);
  const auto cpu_side = mmu_.translate(1, table_, 0x40000000);
  EXPECT_EQ(cpu_side.source, TranslationSource::kSharedTlb);
}

TEST_F(MmuTest, FaultOnUnmapped) {
  const auto result = mmu_.translate(1, table_, 0x90000000);
  EXPECT_FALSE(result.valid);
  EXPECT_EQ(result.source, TranslationSource::kFault);
}

// ---------------- kernel cost models ----------------

TEST(Kernels, GemmScalesWithWork) {
  CpuKernelModel k;
  const auto small = k.gemm_cycles(64, 64, 64, sa::Precision::kFp32);
  const auto big = k.gemm_cycles(128, 128, 128, sa::Precision::kFp32);
  EXPECT_NEAR(static_cast<double>(big) / small, 8.0, 0.1);
}

TEST(Kernels, Fp32DoublesThroughput) {
  CpuKernelModel k;
  const auto fp64 = k.gemm_cycles(256, 256, 256, sa::Precision::kFp64);
  const auto fp32 = k.gemm_cycles(256, 256, 256, sa::Precision::kFp32);
  EXPECT_NEAR(static_cast<double>(fp64) / fp32, 2.0, 0.1);
}

TEST(Kernels, PeakMatchesTableIV) {
  CpuKernelModel k;
  EXPECT_NEAR(k.peak_flops(sa::Precision::kFp64), 35.2e9, 1e8);
  EXPECT_NEAR(k.peak_flops(sa::Precision::kFp32), 70.4e9, 1e8);
}

TEST(Kernels, SoftmaxCostExceedsRelu) {
  CpuKernelModel k;
  const auto softmax = k.softmax_cycles(384, 384, sa::Precision::kFp32);
  const auto relu = k.relu_cycles(384 * 384, sa::Precision::kFp32);
  EXPECT_GT(softmax, relu);
}

// ---------------- CpuCore MPAIS execution ----------------

class RecordingPort final : public AcceleratorPort {
 public:
  struct Submission {
    Maid maid;
    isa::Mnemonic op;
    isa::ParamBlock params;
    vm::Asid asid;
  };
  bool submit(Maid maid, isa::Mnemonic op, const isa::ParamBlock& params,
              vm::Asid asid) override {
    if (reject) return false;
    submissions.push_back({maid, op, params, asid});
    return true;
  }
  std::vector<Submission> submissions;
  bool reject = false;
};

class CpuCoreTest : public ::testing::Test {
 protected:
  CpuCoreTest()
      : oracle_(10'000), core_(engine_, 0, CpuConfig{}, oracle_),
        table_(0x1000000) {
    core_.attach_accelerator(&port_);
    core_.set_context(9, &table_);
  }
  sim::SimEngine engine_;
  vm::FixedLatencyOracle oracle_;
  RecordingPort port_;
  CpuCore core_;
  vm::PageTable table_;
};

TEST_F(CpuCoreTest, MaCfgAllocatesAndSubmits) {
  isa::GemmParams gemm;
  gemm.m = gemm.n = gemm.k = 128;
  core_.regs().write_param_block(10, gemm.pack());
  const auto stats = core_.execute_source("ma_cfg x5, x10");
  EXPECT_EQ(stats.tasks_dispatched, 1u);
  ASSERT_EQ(port_.submissions.size(), 1u);
  EXPECT_EQ(port_.submissions[0].asid, 9);
  EXPECT_EQ(core_.regs().read(5), port_.submissions[0].maid);
  EXPECT_EQ(isa::GemmParams::unpack(port_.submissions[0].params), gemm);
}

TEST_F(CpuCoreTest, MaidFailureSentinelWhenMtqFull) {
  isa::GemmParams gemm;
  gemm.m = gemm.n = gemm.k = 64;
  core_.regs().write_param_block(10, gemm.pack());
  // Fill the MTQ (default 8 entries).
  for (unsigned i = 0; i < core_.config().mtq_entries; ++i) {
    core_.execute_source("ma_cfg x5, x10");
  }
  const auto stats = core_.execute_source("ma_cfg x5, x10");
  EXPECT_EQ(stats.mtq_alloc_failures, 1u);
  EXPECT_EQ(core_.regs().read(5), kMaidAllocFailed);
}

TEST_F(CpuCoreTest, ReadAndStateQueryMtq) {
  isa::GemmParams gemm;
  gemm.m = gemm.n = gemm.k = 64;
  core_.regs().write_param_block(10, gemm.pack());
  core_.execute_source("ma_cfg x5, x10");
  const Maid maid = static_cast<Maid>(core_.regs().read(5));
  core_.mtq().mark_done(maid);

  core_.execute_source("ma_read x6, x5");
  const std::uint64_t read_word = core_.regs().read(6);
  EXPECT_EQ(read_word & 0b11, 0b11u);  // valid | done

  core_.execute_source("ma_state x7, x5");
  EXPECT_EQ(core_.regs().read(7) & 0b11, 0b11u);
  EXPECT_FALSE(core_.mtq().entry(maid).valid);  // released
}

TEST_F(CpuCoreTest, ClearRecoversFromRejectedSubmit) {
  port_.reject = true;
  isa::GemmParams gemm;
  gemm.m = gemm.n = gemm.k = 64;
  core_.regs().write_param_block(10, gemm.pack());
  const auto stats = core_.execute_source("ma_cfg x5, x10");
  EXPECT_EQ(stats.submit_rejections, 1u);
  const Maid maid = static_cast<Maid>(core_.regs().read(5));
  EXPECT_TRUE(core_.mtq().entry(maid).exception_en);
  core_.execute_source("ma_clear x5");
  EXPECT_FALSE(core_.mtq().entry(maid).valid);
}

TEST_F(CpuCoreTest, IssueCyclesAccumulate) {
  isa::GemmParams gemm;
  gemm.m = gemm.n = gemm.k = 64;
  core_.regs().write_param_block(10, gemm.pack());
  const auto stats = core_.execute_source(R"(
    ma_cfg x5, x10
    ma_read x6, x5
  )");
  EXPECT_EQ(stats.instructions, 2u);
  EXPECT_EQ(stats.cycles, 12u);  // 8 (cfg) + 4 (read)
}

}  // namespace
}  // namespace maco::cpu
