#include <gtest/gtest.h>

#include "mem/cache.hpp"
#include "mem/directory.hpp"
#include "mem/dram.hpp"
#include "mem/physical_memory.hpp"

namespace maco::mem {
namespace {

TEST(PhysicalMemory, ReadBackWritten) {
  PhysicalMemory memory;
  const double value = 3.14159;
  memory.write_f64(0x1000, value);
  EXPECT_DOUBLE_EQ(memory.read_f64(0x1000), value);
}

TEST(PhysicalMemory, UntouchedReadsZero) {
  PhysicalMemory memory;
  EXPECT_DOUBLE_EQ(memory.read_f64(0xDEAD000), 0.0);
}

TEST(PhysicalMemory, CrossBlockTransfer) {
  PhysicalMemory memory;
  std::vector<std::uint8_t> data(10000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 7);
  }
  memory.write(4000, data.data(), data.size());  // spans 3+ blocks
  std::vector<std::uint8_t> out(data.size());
  memory.read(4000, out.data(), out.size());
  EXPECT_EQ(data, out);
}

TEST(PhysicalMemory, SparseResidency) {
  PhysicalMemory memory;
  memory.write_f64(0, 1.0);
  memory.write_f64(1ull << 40, 2.0);  // far apart: only 2 blocks resident
  EXPECT_EQ(memory.resident_blocks(), 2u);
}

TEST(PhysicalMemory, Fill) {
  PhysicalMemory memory;
  memory.fill(100, 8192, 0xAB);
  std::uint8_t byte = 0;
  memory.read(100 + 8191, &byte, 1);
  EXPECT_EQ(byte, 0xAB);
  memory.read(100 + 8192, &byte, 1);
  EXPECT_EQ(byte, 0);
}

TEST(Cache, HitAfterMiss) {
  SetAssocCache cache("c", CacheConfig{4096, 4, 64});
  const auto miss = cache.access(0x1000, false);
  EXPECT_FALSE(miss.hit);
  EXPECT_TRUE(miss.allocated);
  const auto hit = cache.access(0x1000, false);
  EXPECT_TRUE(hit.hit);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(Cache, WriteSetsModified) {
  SetAssocCache cache("c", CacheConfig{4096, 4, 64});
  cache.access(0x1000, true);
  EXPECT_EQ(*cache.probe(0x1000), CoherenceState::kModified);
}

TEST(Cache, LruEvictionWithinSet) {
  // Direct construction of a conflict set: 4 KiB, 2-way, 64 B lines = 32
  // sets; addresses 32*64 apart map to the same set.
  SetAssocCache cache("c", CacheConfig{4096, 2, 64});
  const std::uint64_t stride = 32 * 64;
  cache.access(0 * stride, false);
  cache.access(1 * stride, false);
  cache.access(0 * stride, false);      // refresh way 0
  const auto result = cache.access(2 * stride, false);
  EXPECT_TRUE(result.evicted);
  EXPECT_EQ(result.victim_addr, 1 * stride);
}

TEST(Cache, DirtyVictimNeedsWriteback) {
  SetAssocCache cache("c", CacheConfig{4096, 2, 64});
  const std::uint64_t stride = 32 * 64;
  cache.access(0 * stride, true);  // modified
  cache.access(1 * stride, false);
  cache.access(2 * stride, false);  // evicts way LRU = the modified line
  EXPECT_EQ(cache.writebacks(), 1u);
}

TEST(Cache, LockedLinesSurviveEviction) {
  SetAssocCache cache("c", CacheConfig{4096, 2, 64});
  const std::uint64_t stride = 32 * 64;
  cache.access(0 * stride, false);
  EXPECT_TRUE(cache.lock(0 * stride));
  cache.access(1 * stride, false);
  cache.access(2 * stride, false);  // must evict the unlocked way
  EXPECT_TRUE(cache.probe(0 * stride).has_value());
  EXPECT_TRUE(cache.is_locked(0 * stride));
}

TEST(Cache, AllWaysLockedFailsAllocation) {
  SetAssocCache cache("c", CacheConfig{4096, 2, 64});
  const std::uint64_t stride = 32 * 64;
  cache.access(0 * stride, false);
  cache.access(1 * stride, false);
  cache.lock(0 * stride);
  cache.lock(1 * stride);
  const auto result = cache.access(2 * stride, false);
  EXPECT_FALSE(result.allocated);
  EXPECT_EQ(cache.locked_lines(), 2u);
}

TEST(Cache, UnlockRestoresEvictability) {
  SetAssocCache cache("c", CacheConfig{4096, 2, 64});
  const std::uint64_t stride = 32 * 64;
  cache.access(0 * stride, false);
  cache.lock(0 * stride);
  cache.unlock(0 * stride);
  EXPECT_EQ(cache.locked_lines(), 0u);
  cache.access(1 * stride, false);
  cache.access(2 * stride, false);
  // With no locks, one of the first two lines has been evicted.
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(Dram, LatencyAndBandwidth) {
  DramController dram("d", DramConfig{25.6e9, 60'000});
  // 64 B at 25.6 GB/s = 2.5 ns transfer + 60 ns latency.
  const sim::TimePs done = dram.access(0, 64);
  EXPECT_NEAR(static_cast<double>(done), 62'500.0, 100.0);
}

TEST(Dram, BackToBackSerializesOnBus) {
  DramController dram("d", DramConfig{25.6e9, 60'000});
  const sim::TimePs first = dram.access(0, 1 << 20);   // ~41 us transfer
  const sim::TimePs second = dram.access(0, 1 << 20);  // queued behind it
  EXPECT_GT(second, first);
  EXPECT_NEAR(static_cast<double>(second - first), 40'960'000.0, 50'000.0);
}

TEST(Dram, IdleBusRecovers) {
  DramController dram("d", DramConfig{25.6e9, 60'000});
  dram.access(0, 64);
  // A request far in the future sees an idle bus.
  const sim::TimePs t = 10'000'000;
  const sim::TimePs done = dram.access(t, 64);
  EXPECT_NEAR(static_cast<double>(done - t), 62'500.0, 100.0);
}

class DirectoryTest : public ::testing::Test {
 protected:
  DirectoryTest()
      : dram_("dram", DramConfig{}),
        ccm_("ccm", CcmConfig{}, dram_,
             [this](int node, std::uint64_t line) {
               recalls_.push_back({node, line});
               return sim::TimePs{5'000};
             }) {}

  DramController dram_;
  std::vector<std::pair<int, std::uint64_t>> recalls_;
  DirectoryCcm ccm_;
};

TEST_F(DirectoryTest, GetSFillsFromDramThenHits) {
  const auto first = ccm_.handle({CcmReqType::kGetS, 0, 0x1000}, 0);
  EXPECT_FALSE(first.l3_hit);
  EXPECT_TRUE(first.dram_accessed);
  const auto second = ccm_.handle({CcmReqType::kGetS, 1, 0x1000}, 100'000);
  EXPECT_TRUE(second.l3_hit);
  EXPECT_FALSE(second.dram_accessed);
  EXPECT_EQ(ccm_.sharer_mask(0x1000), 0b11u);
}

TEST_F(DirectoryTest, GetMRecallsOwner) {
  ccm_.handle({CcmReqType::kGetM, 0, 0x1000}, 0);
  EXPECT_EQ(ccm_.node_view(0, 0x1000), CoherenceState::kModified);
  const auto response = ccm_.handle({CcmReqType::kGetM, 1, 0x1000}, 100'000);
  EXPECT_TRUE(response.recalled);
  ASSERT_EQ(recalls_.size(), 1u);
  EXPECT_EQ(recalls_[0].first, 0);
  EXPECT_EQ(ccm_.node_view(1, 0x1000), CoherenceState::kModified);
  EXPECT_EQ(ccm_.node_view(0, 0x1000), CoherenceState::kInvalid);
}

TEST_F(DirectoryTest, GetSAfterOwnerDowngrades) {
  ccm_.handle({CcmReqType::kGetM, 0, 0x1000}, 0);
  const auto response = ccm_.handle({CcmReqType::kGetS, 1, 0x1000}, 100'000);
  EXPECT_TRUE(response.recalled);
  // MOESI: old owner keeps a dirty-shared copy.
  EXPECT_EQ(ccm_.node_view(0, 0x1000), CoherenceState::kShared);
  EXPECT_EQ(ccm_.node_view(1, 0x1000), CoherenceState::kShared);
}

TEST_F(DirectoryTest, StashWarmsL3) {
  const auto stash = ccm_.handle({CcmReqType::kStash, 0, 0x2000}, 0);
  EXPECT_TRUE(stash.dram_accessed);
  EXPECT_EQ(ccm_.stash_fills(), 1u);
  const auto read = ccm_.handle({CcmReqType::kGetS, 0, 0x2000}, 1'000'000);
  EXPECT_TRUE(read.l3_hit);
}

TEST_F(DirectoryTest, StashLockPinsLine) {
  ccm_.handle({CcmReqType::kStashLock, 0, 0x3000}, 0);
  EXPECT_TRUE(ccm_.line_locked(0x3000));
  ccm_.handle({CcmReqType::kUnlock, 0, 0x3000}, 1000);
  EXPECT_FALSE(ccm_.line_locked(0x3000));
}

TEST_F(DirectoryTest, PutMMakesL3CopyDirty) {
  ccm_.handle({CcmReqType::kGetM, 0, 0x4000}, 0);
  ccm_.handle({CcmReqType::kPutM, 0, 0x4000}, 50'000);
  EXPECT_EQ(ccm_.node_view(0, 0x4000), CoherenceState::kInvalid);
  EXPECT_EQ(*ccm_.l3().probe(line_addr(0x4000)), CoherenceState::kModified);
}

TEST_F(DirectoryTest, RepeatedStashHitsAreCheap) {
  ccm_.handle({CcmReqType::kStash, 0, 0x5000}, 0);
  const auto again = ccm_.handle({CcmReqType::kStash, 0, 0x5000}, 100'000);
  EXPECT_TRUE(again.l3_hit);
  EXPECT_EQ(ccm_.stash_hits(), 1u);
}

}  // namespace
}  // namespace maco::mem

namespace maco::mem {
namespace {

TEST(StreamingStore, PutFullAllocatesWithoutDramFetch) {
  DramController dram("ss.dram", DramConfig{});
  DirectoryCcm ccm("ss.ccm", CcmConfig{}, dram);
  const auto response =
      ccm.handle({CcmReqType::kPutFull, 0, 0x4000}, 0);
  // No fetch: the line lands in L3 without a DRAM read.
  EXPECT_FALSE(response.l3_hit);
  EXPECT_EQ(dram.requests(), 0u);
  EXPECT_EQ(ccm.node_view(0, 0x4000), CoherenceState::kModified);
  // A later read hits the L3.
  const auto read = ccm.handle({CcmReqType::kGetS, 0, 0x4000}, 1000);
  EXPECT_TRUE(read.l3_hit);
  EXPECT_FALSE(read.dram_accessed);
}

TEST(StreamingStore, PutFullInvalidatesOtherSharers) {
  DramController dram("ss.dram", DramConfig{});
  int recalled_node = -1;
  DirectoryCcm ccm("ss.ccm", CcmConfig{}, dram,
                   [&](int node, std::uint64_t) {
                     recalled_node = node;
                     return sim::TimePs{500};
                   });
  ccm.handle({CcmReqType::kGetS, 1, 0x4000}, 0);
  const auto response = ccm.handle({CcmReqType::kPutFull, 0, 0x4000}, 1000);
  EXPECT_TRUE(response.recalled);
  EXPECT_EQ(recalled_node, 1);
  EXPECT_EQ(ccm.node_view(1, 0x4000), CoherenceState::kInvalid);
  EXPECT_EQ(ccm.node_view(0, 0x4000), CoherenceState::kModified);
}

TEST(SliceInterleave, StripedAddressesUseAllSets) {
  // A slice that only ever sees every 16th line must strip the interleave
  // bits, or a 16x-strided stream would collapse onto 1/16th of the sets.
  DramController dram("il.dram", DramConfig{});
  CcmConfig config;
  config.slice_interleave = 16;
  DirectoryCcm ccm("il.ccm", config, dram);

  // Stream (slice 0's share of) a working set half the slice capacity.
  const std::uint64_t lines = config.l3.size_bytes / kLineBytes / 2;
  for (std::uint64_t i = 0; i < lines; ++i) {
    ccm.handle({CcmReqType::kGetS, 0, i * 16 * kLineBytes}, 0);
  }
  // Everything fits: a second pass is all hits.
  std::uint64_t hits = 0;
  for (std::uint64_t i = 0; i < lines; ++i) {
    if (ccm.handle({CcmReqType::kGetS, 0, i * 16 * kLineBytes}, 0).l3_hit) {
      ++hits;
    }
  }
  EXPECT_EQ(hits, lines);
}

TEST(UnqueuedLatency, PteReadsDoNotInheritBusBacklog) {
  DramController dram("uq.dram", DramConfig{});
  DirectoryCcm ccm("uq.ccm", CcmConfig{}, dram);
  // Push the DRAM bus far into the future with data traffic.
  for (int i = 0; i < 1000; ++i) {
    dram.access(0, 4096);
  }
  const sim::TimePs backlog = dram.busy_until();
  ASSERT_GT(backlog, 100'000u);
  // An unqueued miss must not see the backlog as latency.
  const auto response =
      ccm.handle({CcmReqType::kGetS, 0, 0x9000}, 0, /*queue_dram=*/false);
  EXPECT_TRUE(response.dram_accessed);
  EXPECT_LT(response.latency, 100'000u);  // service time, not backlog
}

}  // namespace
}  // namespace maco::mem
