#include <gtest/gtest.h>

#include "workloads/dnn_models.hpp"
#include "workloads/gemm_workload.hpp"
#include "workloads/hpl.hpp"

namespace maco::wl {
namespace {

TEST(Workload, SquareGemmShape) {
  const Workload w = square_gemm(1024);
  ASSERT_EQ(w.layers.size(), 1u);
  EXPECT_EQ(w.layers[0].shape.m, 1024u);
  EXPECT_EQ(w.total_flops(), 2ull * 1024 * 1024 * 1024);
  EXPECT_EQ(w.precision, sa::Precision::kFp64);
}

TEST(Workload, PaperSizeSweeps) {
  EXPECT_EQ(fig6_sizes().size(), 6u);
  EXPECT_EQ(fig6_sizes().front(), 256u);
  EXPECT_EQ(fig6_sizes().back(), 9216u);
  EXPECT_EQ(fig7_sizes().size(), 11u);  // 256..9216 as in Fig. 7's x-axis
}

TEST(Workload, ExpandedShapesHonorRepeat) {
  Workload w;
  w.layers.push_back(Layer{"x", sa::TileShape{8, 8, 8}, PostOp::kNone, 3});
  w.layers.push_back(Layer{"y", sa::TileShape{4, 4, 4}, PostOp::kNone, 1});
  EXPECT_EQ(w.expanded_shapes().size(), 4u);
}

TEST(Dnn, Resnet50LayerInventory) {
  const Workload w = resnet50(8);
  EXPECT_EQ(w.name, "Resnet-50");
  EXPECT_EQ(w.precision, sa::Precision::kFp32);
  EXPECT_GT(w.layers.size(), 15u);
  // He et al. report ~3.8 G multiply-adds per image; total_flops() counts a
  // MAC as 2 FLOPs, and our GEMM-only inventory (no shortcuts/pooling)
  // lands at ~3.5 GMACs, i.e. ~7.0 GFLOPs per image.
  const double gflops = static_cast<double>(w.total_flops()) / 1e9;
  EXPECT_GT(gflops, 8 * 6.0);
  EXPECT_LT(gflops, 8 * 8.5);
}

TEST(Dnn, Resnet50Conv1Shape) {
  const Workload w = resnet50(1);
  const Layer& conv1 = w.layers.front();
  EXPECT_EQ(conv1.shape.m, 64u);          // output channels
  EXPECT_EQ(conv1.shape.n, 112u * 112u);  // output pixels
  EXPECT_EQ(conv1.shape.k, 3u * 7 * 7);   // in_ch × kernel²
}

TEST(Dnn, BertBlockStructure) {
  const Workload w = bert_base(8, 384);
  ASSERT_EQ(w.layers.size(), 6u);  // qkv/scores/context/proj/ffn1/ffn2
  for (const auto& layer : w.layers) EXPECT_EQ(layer.repeat, 12u);
  // FFN1: tokens × 4H × H.
  const Layer& ffn1 = w.layers[4];
  EXPECT_EQ(ffn1.shape.m, 8u * 384);
  EXPECT_EQ(ffn1.shape.n, 4u * 768);
  EXPECT_EQ(ffn1.shape.k, 768u);
  EXPECT_EQ(ffn1.post, PostOp::kGelu);
  // Scores carry the softmax.
  EXPECT_EQ(w.layers[1].post, PostOp::kSoftmax);
}

TEST(Dnn, Gpt3IsLargestWorkload) {
  const Workload gpt = gpt3(1, 2048);
  const Workload bert = bert_base(8, 384);
  const Workload resnet = resnet50(8);
  EXPECT_GT(gpt.total_flops(), bert.total_flops());
  EXPECT_GT(bert.total_flops(), resnet.total_flops());
  // GPT-3 per-token cost ≈ 2 × 12 × H² × layers; sanity band for seq 2048.
  const double tflops = static_cast<double>(gpt.total_flops()) / 1e12;
  EXPECT_GT(tflops, 500.0);
  EXPECT_LT(tflops, 1500.0);
}

TEST(Hpl, TrailingUpdateShapes) {
  const auto shapes = hpl_trailing_updates(2048, 256);
  ASSERT_EQ(shapes.size(), 7u);
  EXPECT_EQ(shapes.front().m, 2048u - 256);
  EXPECT_EQ(shapes.front().k, 256u);
  EXPECT_EQ(shapes.back().m, 256u);
}

TEST(Hpl, GemmFlopsApproachLuFlops) {
  // Trailing updates dominate LU: their FLOPs should be most of 2/3·N³.
  const Workload w = hpl_workload(4096, 128);
  const double gemm_flops = static_cast<double>(w.total_flops());
  const double lu = lu_flops(4096);
  EXPECT_GT(gemm_flops / lu, 0.90);
  EXPECT_LT(gemm_flops / lu, 1.01);
}

TEST(Hpl, WorkloadIsFp64) {
  EXPECT_EQ(hpl_workload(1024).precision, sa::Precision::kFp64);
}

}  // namespace
}  // namespace maco::wl

namespace maco::wl {
namespace {

TEST(Hpl, TrailingUpdateShapesShrinkToPanel) {
  const auto shapes = hpl_trailing_updates(2048, 256);
  ASSERT_EQ(shapes.size(), 7u);  // 2048/256 - 1
  EXPECT_EQ(shapes.front().m, 1792u);
  EXPECT_EQ(shapes.front().k, 256u);
  EXPECT_EQ(shapes.back().m, 256u);
  for (std::size_t i = 1; i < shapes.size(); ++i) {
    EXPECT_LT(shapes[i].m, shapes[i - 1].m);
    EXPECT_EQ(shapes[i].m, shapes[i].n);  // trailing blocks are square
  }
}

TEST(Hpl, UpdateFlopsApproachTwoThirdsNCubed) {
  // GEMM updates carry ~2/3 N^3 as N/nb grows.
  const std::uint64_t n = 16384;
  double update_flops = 0.0;
  for (const auto& shape : hpl_trailing_updates(n, 256)) {
    update_flops += static_cast<double>(shape.flops());
  }
  EXPECT_NEAR(update_flops / lu_flops(n), 1.0, 0.05);
}

TEST(Dnn, Gpt3ShapesMatchArchitecture) {
  const Workload w = gpt3(1, 2048);
  ASSERT_EQ(w.layers.size(), 6u);
  for (const auto& layer : w.layers) EXPECT_EQ(layer.repeat, 96u);
  const Layer& qkv = w.layers[0];
  EXPECT_EQ(qkv.shape.m, 2048u);
  EXPECT_EQ(qkv.shape.n, 3u * 12288);
  EXPECT_EQ(qkv.shape.k, 12288u);
}

TEST(Dnn, BertPostOpsCoverTheNonGemmWork) {
  // The GEMM+ scheme needs the non-GEMM ops attached to their layers.
  const Workload w = bert_base(8, 384);
  int softmax = 0, layernorm = 0, gelu = 0;
  for (const auto& layer : w.layers) {
    if (layer.post == PostOp::kSoftmax) ++softmax;
    if (layer.post == PostOp::kLayerNorm) ++layernorm;
    if (layer.post == PostOp::kGelu) ++gelu;
  }
  EXPECT_EQ(softmax, 1);
  EXPECT_EQ(layernorm, 2);
  EXPECT_EQ(gelu, 1);
}

TEST(Workload, TotalFlopsSumLayerFlopsWithRepeats) {
  Workload w;
  w.layers.push_back(Layer{"a", sa::TileShape{8, 8, 8}, PostOp::kNone, 3});
  w.layers.push_back(Layer{"b", sa::TileShape{4, 4, 4}, PostOp::kNone, 2});
  EXPECT_EQ(w.total_flops(), 3u * 2 * 512 + 2u * 2 * 64);
  EXPECT_EQ(w.total_macs(), 3u * 512 + 2u * 64);
}

}  // namespace
}  // namespace maco::wl
