// MappedGemmRunner: the Fig. 5 multi-node mapping as a library call,
// verified functionally against the host reference over node counts,
// shapes, tilings and accumulate modes.
#include <gtest/gtest.h>

#include "core/mapped_gemm.hpp"
#include "util/rng.hpp"

namespace maco::core {
namespace {

SystemConfig config_with(unsigned nodes) {
  SystemConfig config = SystemConfig::maco_default();
  config.node_count = nodes;
  return config;
}

struct Operands {
  vm::MatrixDesc a_desc, b_desc, c_desc;
  sa::HostMatrix a, b, c0;
};

Operands make_operands(MacoSystem& system, Process& process, util::Rng& rng,
                       std::uint64_t m, std::uint64_t n, std::uint64_t k,
                       bool nonzero_c = false) {
  Operands ops;
  ops.a = sa::HostMatrix::random(m, k, rng);
  ops.b = sa::HostMatrix::random(k, n, rng);
  ops.c0 = nonzero_c ? sa::HostMatrix::random(m, n, rng)
                     : sa::HostMatrix(m, n);
  ops.a_desc = system.alloc_matrix(process, m, k);
  ops.b_desc = system.alloc_matrix(process, k, n);
  ops.c_desc = system.alloc_matrix(process, m, n);
  system.write_matrix(process, ops.a_desc, ops.a);
  system.write_matrix(process, ops.b_desc, ops.b);
  system.write_matrix(process, ops.c_desc, ops.c0);
  return ops;
}

sa::HostMatrix expected_of(const Operands& ops, bool accumulate) {
  sa::HostMatrix expected =
      accumulate ? ops.c0 : sa::HostMatrix(ops.a.rows(), ops.b.cols());
  sa::reference_gemm(ops.a, ops.b, expected);
  return expected;
}

struct MappedCase {
  unsigned nodes;
  std::uint64_t m, n, k;
  std::uint64_t tile;  // tile_rows == tile_cols
};

class MappedSweep : public ::testing::TestWithParam<MappedCase> {};

TEST_P(MappedSweep, MatchesReference) {
  const MappedCase c = GetParam();
  MacoSystem system(config_with(c.nodes));
  Process& process = system.create_process();
  util::Rng rng(1000 + c.nodes + c.m);
  const Operands ops = make_operands(system, process, rng, c.m, c.n, c.k);

  MappedGemmRunner runner(system);
  MappedGemmOptions options;
  options.tile_rows = c.tile;
  options.tile_cols = c.tile;
  const MappedGemmResult result =
      runner.run(process, ops.a_desc, ops.b_desc, ops.c_desc, options);

  ASSERT_TRUE(result.ok) << "exception "
                         << cpu::exception_type_name(result.first_exception);
  EXPECT_EQ(result.nodes_used, c.nodes);
  EXPECT_GT(result.gemm_tasks, 0u);
  EXPECT_GT(result.makespan_ps, 0u);
  EXPECT_TRUE(system.read_matrix(process, ops.c_desc)
                  .approx_equal(expected_of(ops, true), 1e-9));
}

INSTANTIATE_TEST_SUITE_P(
    NodeAndShapeSweep, MappedSweep,
    ::testing::Values(MappedCase{1, 96, 96, 64, 1024},
                      MappedCase{2, 128, 96, 64, 1024},
                      MappedCase{4, 128, 128, 96, 1024},
                      MappedCase{4, 100, 132, 52, 1024},  // ragged
                      MappedCase{8, 160, 160, 64, 1024},
                      MappedCase{4, 128, 128, 64, 64},    // many tiles/node
                      MappedCase{2, 96, 192, 48, 64}));

TEST(MappedGemm, OverwriteModeIgnoresPriorC) {
  MacoSystem system(config_with(2));
  Process& process = system.create_process();
  util::Rng rng(77);
  const Operands ops =
      make_operands(system, process, rng, 96, 96, 64, /*nonzero_c=*/true);

  MappedGemmRunner runner(system);
  MappedGemmOptions options;
  options.accumulate = false;
  const auto result =
      runner.run(process, ops.a_desc, ops.b_desc, ops.c_desc, options);
  ASSERT_TRUE(result.ok);
  EXPECT_TRUE(system.read_matrix(process, ops.c_desc)
                  .approx_equal(expected_of(ops, false), 1e-9));
}

TEST(MappedGemm, AccumulateModeAddsToPriorC) {
  MacoSystem system(config_with(2));
  Process& process = system.create_process();
  util::Rng rng(78);
  const Operands ops =
      make_operands(system, process, rng, 96, 96, 64, /*nonzero_c=*/true);

  MappedGemmRunner runner(system);
  const auto result =
      runner.run(process, ops.a_desc, ops.b_desc, ops.c_desc, {});
  ASSERT_TRUE(result.ok);
  EXPECT_TRUE(system.read_matrix(process, ops.c_desc)
                  .approx_equal(expected_of(ops, true), 1e-9));
}

TEST(MappedGemm, StashOffStillCorrect) {
  MacoSystem system(config_with(4));
  Process& process = system.create_process();
  util::Rng rng(79);
  const Operands ops = make_operands(system, process, rng, 128, 128, 64);

  MappedGemmRunner runner(system);
  MappedGemmOptions options;
  options.stash_lock = false;
  const auto result =
      runner.run(process, ops.a_desc, ops.b_desc, ops.c_desc, options);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.stash_tasks, 0u);
  EXPECT_TRUE(system.read_matrix(process, ops.c_desc)
                  .approx_equal(expected_of(ops, true), 1e-9));
}

TEST(MappedGemm, StashLockWarmsL3ForTheGemmWave) {
  // With stash+lock, the GEMM wave's DMA traffic hits the L3; the stash
  // fills show up in the CCM counters.
  MacoSystem system(config_with(1));
  Process& process = system.create_process();
  util::Rng rng(80);
  const Operands ops = make_operands(system, process, rng, 96, 96, 96);

  MappedGemmRunner runner(system);
  const auto result =
      runner.run(process, ops.a_desc, ops.b_desc, ops.c_desc, {});
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.stash_tasks, 2u);

  std::uint64_t stash_fills = 0;
  for (unsigned slice = 0; slice < system.config().ccm_count; ++slice) {
    stash_fills += system.ccm_for(static_cast<vm::PhysAddr>(slice) *
                                  mem::kLineBytes)
                       .stash_fills();
  }
  EXPECT_GT(stash_fills, 0u);
}

TEST(MappedGemm, MoreNodesFasterWhenComputeDominates) {
  // On a compute-dominated shape, 4 nodes beat 1 node end to end. (Tiny
  // GEMMs legitimately don't scale: the packing waves dominate.)
  sim::TimePs span1 = 0, span4 = 0;
  for (const unsigned nodes : {1u, 4u}) {
    MacoSystem system(config_with(nodes));
    Process& process = system.create_process();
    util::Rng local(42);
    const Operands ops = make_operands(system, process, local, 384, 384, 96);
    MappedGemmRunner runner(system);
    const auto result =
        runner.run(process, ops.a_desc, ops.b_desc, ops.c_desc, {});
    ASSERT_TRUE(result.ok);
    (nodes == 1 ? span1 : span4) = result.makespan_ps;
  }
  EXPECT_LT(span4, span1);
  EXPECT_GT(static_cast<double>(span1) / static_cast<double>(span4), 2.0);
}

}  // namespace
}  // namespace maco::core
