// Timeline collection and rendering.
#include <gtest/gtest.h>

#include "core/mapped_gemm.hpp"
#include "trace/timeline.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace maco::trace {
namespace {

TEST(Timeline, BoundsAndDuration) {
  Timeline timeline;
  timeline.add("cpu", "setup", 100, 300);
  timeline.add("mmae", "gemm", 200, 900);
  EXPECT_EQ(timeline.begin_ps(), 100u);
  EXPECT_EQ(timeline.end_ps(), 900u);
  EXPECT_EQ(timeline.spans()[1].duration(), 700u);
}

TEST(Timeline, AsciiRowsPerTrackInFirstAppearanceOrder) {
  Timeline timeline;
  timeline.add("node1.mmae", "b", 0, 50);
  timeline.add("node0.mmae", "a", 50, 100);
  const std::string chart = timeline.render_ascii(10);
  const auto pos1 = chart.find("node1.mmae");
  const auto pos0 = chart.find("node0.mmae");
  ASSERT_NE(pos1, std::string::npos);
  ASSERT_NE(pos0, std::string::npos);
  EXPECT_LT(pos1, pos0);  // first appearance first
}

TEST(Timeline, AsciiMarksSpanCells) {
  Timeline timeline;
  timeline.add("t", "xxg", 0, 500);    // mark 'G'
  timeline.add("t", "yyh", 500, 1000); // mark 'H'
  const std::string chart = timeline.render_ascii(10);
  EXPECT_NE(chart.find('G'), std::string::npos);
  EXPECT_NE(chart.find('H'), std::string::npos);
}

TEST(Timeline, ChromeJsonShape) {
  Timeline timeline;
  timeline.add("node0.mmae", "ma_cfg", 1'000'000, 3'000'000);
  const std::string json = timeline.to_chrome_json();
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"dur\": 2"), std::string::npos);
  EXPECT_EQ(json.front(), '[');
}

TEST(Timeline, ChromeJsonEscapesNamesAndTracks) {
  Timeline timeline;
  // Fault spans carry exception text that can hold quotes, backslashes
  // and control characters; the JSON must stay parseable.
  timeline.add("track \"zero\"", "fault: \"bad\\page\"\n\ttab", 0, 100);
  const std::string json = timeline.to_chrome_json();
  const util::JsonValue doc = util::parse_json(json);
  ASSERT_TRUE(doc.is_array());
  ASSERT_EQ(doc.as_array().size(), 1u);
  const util::JsonValue& event = doc.as_array()[0];
  EXPECT_EQ(event.find("name")->as_string(), "fault: \"bad\\page\"\n\ttab");
  EXPECT_EQ(event.find("tid")->as_string(), "track \"zero\"");
}

TEST(Timeline, ImportsMmaeReportsFromARealRun) {
  core::SystemConfig config = core::SystemConfig::maco_default();
  config.node_count = 2;
  core::MacoSystem system(config);
  core::Process& process = system.create_process();
  util::Rng rng(5);

  const auto a_desc = system.alloc_matrix(process, 96, 64);
  const auto b_desc = system.alloc_matrix(process, 64, 96);
  const auto c_desc = system.alloc_matrix(process, 96, 96);
  system.write_matrix(process, a_desc, sa::HostMatrix::random(96, 64, rng));
  system.write_matrix(process, b_desc, sa::HostMatrix::random(64, 96, rng));
  system.write_matrix(process, c_desc, sa::HostMatrix(96, 96));

  core::MappedGemmRunner runner(system);
  ASSERT_TRUE(runner.run(process, a_desc, b_desc, c_desc, {}).ok);

  Timeline timeline;
  for (unsigned node = 0; node < system.node_count(); ++node) {
    timeline.import_reports("node" + std::to_string(node) + ".mmae",
                            system.node(node).mmae().reports());
  }
  // Stashes + packs + GEMMs + unpacks from both nodes.
  EXPECT_GE(timeline.spans().size(), 8u);
  EXPECT_GT(timeline.end_ps(), timeline.begin_ps());
  // The chart renders one row per node.
  const std::string chart = timeline.render_ascii(40);
  EXPECT_NE(chart.find("node0.mmae"), std::string::npos);
  EXPECT_NE(chart.find("node1.mmae"), std::string::npos);
}

}  // namespace
}  // namespace maco::trace
