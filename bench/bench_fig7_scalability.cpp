// Fig. 7: scalability — average computational efficiency per compute node
// as the active node count grows (1/2/4/8/16), across matrix sizes
// 256..9216.
//
// As in the paper, every active node runs an independent FP64 GEMM of the
// given size (no inter-node cooperation); the shared resources — L3 slice
// capacity, mesh links, DDR channels — are what couple them.
#include <iostream>

#include "core/timing_model.hpp"
#include "util/table.hpp"
#include "workloads/gemm_workload.hpp"

int main() {
  using namespace maco;

  const core::SystemTimingModel model(core::SystemConfig::maco_default());
  const unsigned node_counts[] = {1, 2, 4, 8, 16};

  util::Table t({"Matrix size", "Single-core", "Dual-core", "Quad-core",
                 "Octa-core", "Hexadeca-core"});

  double sum[5] = {};
  std::size_t rows = 0;
  for (const std::uint64_t size : wl::fig7_sizes()) {
    auto row = t.row();
    row.cell(std::to_string(size));
    for (std::size_t i = 0; i < 5; ++i) {
      core::TimingOptions options;
      options.shape = sa::TileShape{size, size, size};
      options.precision = sa::Precision::kFp64;
      options.active_nodes = node_counts[i];
      options.cooperative = false;  // independent workload per node
      const double eff = model.run(options).mean_efficiency;
      row.percent(eff);
      sum[i] += eff;
    }
    ++rows;
  }
  {
    auto row = t.row();
    row.cell("average");
    for (std::size_t i = 0; i < 5; ++i) {
      row.percent(sum[i] / static_cast<double>(rows));
    }
  }
  t.print(std::cout,
          "Fig. 7: per-node computational efficiency vs active node count "
          "(independent FP64 GEMM per node)");
  std::cout << "\nShape checks: multi-node loss concentrated at 16 nodes on"
               "\n  large matrices (shared-memory-system ceiling); paper"
               " reports ~10% loss\n  and ~90% average efficiency across"
               " all test cases.\n";
  return 0;
}
