// Ablation: decomposes MACO's gains into its two mapping/translation
// features — predictive address translation (mATLB, Section IV.A) and data
// stash+lock (Section IV.B) — on a 2x2 on/off grid, for a paper-scale
// square GEMM and for BERT, plus sensitivity sweeps over the design
// constants DESIGN.md calls out (inner tile size, DDR efficiency).
#include <iostream>

#include "baselines/comparison.hpp"
#include "core/timing_model.hpp"
#include "util/table.hpp"
#include "workloads/dnn_models.hpp"
#include "workloads/gemm_workload.hpp"

namespace {

using namespace maco;

void feature_grid() {
  const core::SystemTimingModel model(core::SystemConfig::maco_default());

  util::Table t({"mATLB", "stash+lock", "4096^3 FP64 x16 (GFLOPS)",
                 "efficiency", "translation walks/tile"});
  for (const bool matlb : {true, false}) {
    for (const bool stash : {true, false}) {
      core::TimingOptions options;
      options.shape = sa::TileShape{4096, 4096, 4096};
      options.active_nodes = 16;
      options.cooperative = false;  // independent per node, as in Fig. 7
      options.use_matlb = matlb;
      options.use_stash_lock = stash;
      const core::SystemTiming timing = model.run(options);
      t.row()
          .cell(matlb ? "on" : "off")
          .cell(stash ? "on" : "off")
          .cell(timing.total_gflops, 1)
          .percent(timing.mean_efficiency)
          .cell(timing.translation.walks_per_tile, 1);
    }
  }
  t.print(std::cout,
          "Feature ablation: predictive translation x stash+lock "
          "(16 nodes, independent 4096^3 FP64 GEMMs)");
  std::cout << "\n";
}

void bert_grid() {
  const core::SystemConfig config = core::SystemConfig::maco_default();
  const baseline::Comparator comparator(config, 16);
  const wl::Workload bert = wl::bert_base(8, 384);

  util::Table t({"mATLB", "stash+lock", "CPU/MMAE overlap",
                 "BERT (GFLOPS)"});
  for (const bool matlb : {true, false}) {
    for (const bool stash : {true, false}) {
      for (const bool overlap : {true, false}) {
        core::TimingOptions options;
        options.active_nodes = 16;
        options.use_matlb = matlb;
        options.use_stash_lock = stash;
        const auto result =
            comparator.run_accelerated(bert, "ablation", options, overlap);
        t.row()
            .cell(matlb ? "on" : "off")
            .cell(stash ? "on" : "off")
            .cell(overlap ? "on" : "off")
            .cell(result.gflops, 1);
      }
    }
  }
  t.print(std::cout, "Feature ablation on BERT (all three mechanisms)");
  std::cout << "\n";
}

void inner_tile_sweep() {
  const core::SystemTimingModel model(core::SystemConfig::maco_default());
  util::Table t({"Inner tile <ttr,ttc>", "2048^3 FP64 single node",
                 "efficiency"});
  for (const std::uint64_t inner : {16ull, 32ull, 64ull, 128ull}) {
    core::TimingOptions options;
    options.shape = sa::TileShape{2048, 2048, 2048};
    options.inner = inner;
    const core::SystemTiming timing = model.run(options);
    std::string label = "<";
    label += std::to_string(inner);
    label += ",";
    label += std::to_string(inner);
    label += ">";
    t.row()
        .cell(label)
        .cell(timing.total_gflops, 1)
        .percent(timing.mean_efficiency);
  }
  t.print(std::cout,
          "Second-level tile size sensitivity (paper uses <64,64>)");
  std::cout << "\n";
}

void page_size_sweep() {
  // What-if: larger translation pages. At 2 MiB the sTLB's reach covers
  // every working set, recurring walks vanish, and predictive translation
  // no longer buys anything — confirming the §IV.A premise that the gain
  // exists exactly because 4 KiB pages outrun the TLB.
  const core::SystemTimingModel model(core::SystemConfig::maco_default());
  util::Table t({"Page size", "walks/tile (2048^3)", "Gap with vs without"
                 " prediction"});
  for (const std::uint64_t page : {4096ull, 65536ull, 2097152ull}) {
    core::TimingOptions with;
    with.shape = sa::TileShape{2048, 2048, 2048};
    with.page_bytes = page;
    core::TimingOptions without = with;
    without.use_matlb = false;
    const auto twith = model.run(with);
    const auto twithout = model.run(without);
    t.row()
        .cell(page >= 1024 * 1024
                  ? std::to_string(page / (1024 * 1024)) + " MiB"
                  : std::to_string(page / 1024) + " KiB")
        .cell(twithout.translation.walks_per_tile, 1)
        .percent(twith.mean_efficiency - twithout.mean_efficiency);
  }
  t.print(std::cout,
          "Translation page-size sensitivity (single node, FP64)");
  std::cout << "\n";
}

void dram_efficiency_sweep() {
  util::Table t({"DDR efficiency", "16-node eff (4096^3)",
                 "1-node eff (4096^3)"});
  for (const double eff : {0.60, 0.72, 0.85, 1.00}) {
    core::SystemConfig config = core::SystemConfig::maco_default();
    config.dram_efficiency = eff;
    const core::SystemTimingModel model(config);
    core::TimingOptions options;
    options.shape = sa::TileShape{4096, 4096, 4096};
    options.active_nodes = 16;
    const double e16 = model.run(options).mean_efficiency;
    options.active_nodes = 1;
    const double e1 = model.run(options).mean_efficiency;
    t.row().percent(eff).percent(e16).percent(e1);
  }
  t.print(std::cout,
          "Sensitivity of the Fig. 7 multi-node loss to sustained DDR "
          "efficiency (calibrated value: 0.72)");
  std::cout << "\n";
}

}  // namespace

int main() {
  feature_grid();
  bert_grid();
  inner_tile_sweep();
  page_size_sweep();
  dram_efficiency_sweep();
  return 0;
}
