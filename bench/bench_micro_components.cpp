// Micro-benchmarks of the simulator's component models.
//
// These are not paper figures; they quantify the substrate itself — how
// fast each detailed model simulates — and catch performance regressions
// that would make the paper-scale sweeps intractable. Built against
// google-benchmark when available, the vendored minibench harness (same
// API subset) otherwise.
#ifdef MACO_HAVE_GOOGLE_BENCHMARK
#include <benchmark/benchmark.h>
#else
#include "minibench.hpp"
#endif

#include "core/timing_model.hpp"
#include "isa/assembler.hpp"
#include "mem/cache.hpp"
#include "mem/directory.hpp"
#include "mem/dram.hpp"
#include "noc/mesh.hpp"
#include "sa/systolic_array.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"
#include "vm/matlb.hpp"
#include "vm/tlb.hpp"

namespace {

using namespace maco;

// Cycle-accurate systolic-array GEMM (functional + timing).
void BM_SystolicArrayTile(benchmark::State& state) {
  const std::uint64_t dim = static_cast<std::uint64_t>(state.range(0));
  sa::SystolicArray array(sa::SaConfig{});
  util::Rng rng(1);
  const auto a = sa::HostMatrix::random(dim, dim, rng);
  const auto b = sa::HostMatrix::random(dim, dim, rng);
  for (auto _ : state) {
    sa::HostMatrix c(dim, dim);
    const auto result = array.run(a, b, c);
    benchmark::DoNotOptimize(result.cycles);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(dim * dim * dim));
}
BENCHMARK(BM_SystolicArrayTile)->Arg(16)->Arg(32)->Arg(64);

// Closed-form tile latency (used millions of times by the timing model).
void BM_SaLatencyClosedForm(benchmark::State& state) {
  const sa::SaConfig config{};
  for (auto _ : state) {
    const auto timing =
        sa::compute_sa_timing(sa::TileShape{64, 64, 64}, config);
    benchmark::DoNotOptimize(timing.total_cycles);
  }
}
BENCHMARK(BM_SaLatencyClosedForm);

// Fully-associative TLB lookup under a thrashing VPN stream.
void BM_TlbLookup(benchmark::State& state) {
  vm::Tlb tlb("bench.tlb", static_cast<std::size_t>(state.range(0)));
  const vm::Asid asid = 1;
  std::uint64_t vpn = 0;
  for (auto _ : state) {
    if (!tlb.lookup(asid, vpn)) tlb.insert(asid, vpn, vpn);
    vpn = (vpn + 1) % (2 * static_cast<std::uint64_t>(state.range(0)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TlbLookup)->Arg(48)->Arg(1024);

// mATLB page-entry prediction for one inner tile (Fig. 4 enumeration).
void BM_MatlbPrediction(benchmark::State& state) {
  const vm::MatrixDesc matrix{0x10000000, 4096, 4096, 8, 0};
  for (auto _ : state) {
    const auto pages =
        vm::predict_page_entries(matrix, vm::TileDesc{1024, 2048, 64, 64});
    benchmark::DoNotOptimize(pages.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MatlbPrediction);

// Flit-level mesh: single-flit packets across the 4x4 mesh diagonal.
void BM_MeshFlitTraffic(benchmark::State& state) {
  for (auto _ : state) {
    sim::SimEngine engine;
    noc::MeshNetwork mesh(engine, noc::MeshConfig{});
    mesh.register_endpoint(15, [](const noc::Packet&) {});
    for (int i = 0; i < 64; ++i) {
      noc::Packet pkt;
      pkt.src = 0;
      pkt.dst = 15;
      pkt.payload_bytes = 24;
      mesh.inject(pkt);
    }
    engine.run();
    benchmark::DoNotOptimize(mesh.packets_delivered());
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_MeshFlitTraffic);

// Set-associative cache stream (hit path).
void BM_CacheHitStream(benchmark::State& state) {
  mem::SetAssocCache cache("bench.l1d",
                           mem::CacheConfig{48 * 1024, 4, mem::kLineBytes});
  for (std::uint64_t line = 0; line < 48 * 1024 / 64; ++line) {
    cache.access(line * 64, false, mem::CoherenceState::kShared);
  }
  std::uint64_t addr = 0;
  for (auto _ : state) {
    const auto result =
        cache.access(addr, false, mem::CoherenceState::kShared);
    benchmark::DoNotOptimize(result.hit);
    addr = (addr + 64) % (48 * 1024);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheHitStream);

// Directory CCM request handling (GetS on a warm L3).
void BM_DirectoryGetS(benchmark::State& state) {
  mem::DramController dram("bench.dram", mem::DramConfig{});
  mem::DirectoryCcm ccm("bench.ccm", mem::CcmConfig{}, dram,
                        [](int, std::uint64_t) { return sim::TimePs{5000}; });
  sim::TimePs now = 0;
  std::uint64_t addr = 0;
  for (auto _ : state) {
    const auto response =
        ccm.handle({mem::CcmReqType::kGetS, 0, addr % (1 << 20)}, now);
    benchmark::DoNotOptimize(response.latency);
    now += 1000;
    addr += 64;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DirectoryGetS);

// MPAIS assembler throughput.
void BM_Assembler(benchmark::State& state) {
  const std::string source =
      "ma_stash x7, x16\n"
      "ma_cfg   x5, x10\n"
      "ma_read  x6, x5\n"
      "ma_state x6, x5\n";
  for (auto _ : state) {
    const auto result = isa::assemble(source);
    benchmark::DoNotOptimize(result.program.size());
  }
  state.SetItemsProcessed(state.iterations() * 4);
}
BENCHMARK(BM_Assembler);

// Whole-system timing model: one Fig. 7 data point.
void BM_SystemTimingModel(benchmark::State& state) {
  const core::SystemTimingModel model(core::SystemConfig::maco_default());
  core::TimingOptions options;
  options.shape = sa::TileShape{2048, 2048, 2048};
  options.active_nodes = 16;
  for (auto _ : state) {
    const auto timing = model.run(options);
    benchmark::DoNotOptimize(timing.mean_efficiency);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SystemTimingModel);

}  // namespace

BENCHMARK_MAIN();
