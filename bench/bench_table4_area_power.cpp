// Table IV: CPU core vs MMAE — frequency, area, power, FMACs, peak
// performance, plus the MMAE area breakdown footnote and the ratios the
// paper argues from (25% relative area, 9x GFLOPS/mm2, 2x GFLOPS/W).
//
// All values come from the analytic area/power model whose unit constants
// are calibrated once against the paper's published totals (see
// model/area_power.hpp); the ratios are then derived, not restated.
#include <cstdio>
#include <iostream>

#include "model/area_power.hpp"
#include "util/table.hpp"

int main() {
  using namespace maco;

  const model::AreaPowerModel m;
  const model::UnitSummary cpu = m.cpu_summary();
  const model::UnitSummary mmae = m.mmae_summary();

  util::Table t({"Unit", "Freq (GHz)", "Area (mm2)", "Power (W)", "FMACs",
                 "Peak Perf (GFLOPS)"});
  t.row()
      .cell("CPU")
      .cell(cpu.frequency_ghz, 1)
      .cell(cpu.area_mm2, 2)
      .cell(cpu.power_watts, 2)
      .cell(static_cast<int>(cpu.fmacs))
      .cell(util::format_double(cpu.peak_gflops_fp64, 1) + " (FP64) / " +
            util::format_double(cpu.peak_gflops_fp32, 0) + " (FP32)");
  t.row()
      .cell("MMAE")
      .cell(mmae.frequency_ghz, 1)
      .cell(mmae.area_mm2, 2)
      .cell(mmae.power_watts, 2)
      .cell(static_cast<int>(mmae.fmacs))
      .cell(util::format_double(mmae.peak_gflops_fp64, 0) + " (FP64) / " +
            util::format_double(mmae.peak_gflops_fp32, 0) + " (FP32) / " +
            util::format_double(mmae.peak_gflops_fp16, 0) + " (FP16)");
  t.print(std::cout, "Table IV: comparison of the CPU core and MMAE");
  std::puts("  (paper: CPU 2.2 GHz / 6.25 mm2 / 2.0 W / 8 FMACs / 35.2/71;"
            " MMAE 2.5 GHz / 1.58 mm2 / 1.5 W / 16 FMACs / 80/160/320)\n");

  const model::AreaBreakdown area = m.mmae_area(model::MmaeParams{});
  util::Table b({"MMAE component", "Area (mm2)", "Share"});
  b.row().cell("Buffers").cell(area.buffers_mm2, 3).percent(
      area.buffers_fraction());
  b.row().cell("Systolic array").cell(area.sa_mm2, 3).percent(
      area.sa_fraction());
  b.row().cell("Accelerator controller").cell(area.ac_mm2, 3).percent(
      area.ac_fraction());
  b.row().cell("Accelerator data engine").cell(area.ade_mm2, 3).percent(
      area.ade_fraction());
  b.print(std::cout, "Table IV footnote: MMAE area breakdown");
  std::puts("  (paper: Buffers 36.7%, SA 24.7%, AC 23.4%, ADE 15.8%)\n");

  util::Table r({"Derived ratio", "Model", "Paper"});
  r.row()
      .cell("MMAE area / CPU area")
      .percent(mmae.area_mm2 / cpu.area_mm2)
      .cell("25%");
  r.row()
      .cell("MMAE peak / CPU peak (FP64)")
      .cell(mmae.peak_gflops_fp64 / cpu.peak_gflops_fp64, 2)
      .cell("over 2x");
  r.row()
      .cell("area efficiency ratio (GFLOPS/mm2)")
      .cell(mmae.area_efficiency() / cpu.area_efficiency(), 2)
      .cell("9x");
  r.row()
      .cell("power efficiency ratio (GFLOPS/W)")
      .cell(mmae.power_efficiency() / cpu.power_efficiency(), 2)
      .cell("2x (see EXPERIMENTS.md)");
  r.row()
      .cell("MMAE power reduction vs CPU")
      .percent(1.0 - mmae.power_watts / cpu.power_watts)
      .cell("25% lower");
  r.print(std::cout, "Ratios the paper argues from");
  return 0;
}
