// Simulator-throughput micro-bench for the detailed backend: how many
// simulated MMAE cycles per wall-clock second each exec mode sustains on a
// detailed GEMM, and the event-vs-lockstep speedup ratio.
//
// The ratio (not the absolute rates, which depend on the host machine) is
// what the CI perf gate tracks; `macosim --scenario speed --json ...`
// produces the committed BENCH_speed.json baseline in store-import format.
// This standalone binary is the interactive companion: sweep sizes and node
// counts, print the full table, optionally write the same JSON.
//
// Usage: bench_detailed_throughput [--size N]... [--nodes N] [--reps N]
//                                  [--json FILE]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "core/detailed_runner.hpp"
#include "core/timing_model.hpp"
#include "util/table.hpp"

namespace {

using namespace maco;

struct Measurement {
  std::uint64_t size = 0;
  double event_mcyc_per_s = 0.0;
  double lockstep_mcyc_per_s = 0.0;
  double speedup = 0.0;
  bool makespan_match = false;
};

double best_wall_seconds(const core::SystemConfig& config,
                         const core::TimingOptions& options,
                         std::uint64_t reps, sim::TimePs* makespan_ps) {
  double best = std::numeric_limits<double>::infinity();
  for (std::uint64_t rep = 0; rep < reps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    const core::SystemTiming timing =
        core::run_detailed_gemm(config, options);
    const auto end = std::chrono::steady_clock::now();
    best =
        std::min(best, std::chrono::duration<double>(end - start).count());
    *makespan_ps = timing.makespan_ps;
  }
  return std::max(best, 1e-9);
}

Measurement measure(std::uint64_t size, unsigned nodes, std::uint64_t reps) {
  core::SystemConfig config = core::SystemConfig::maco_default();
  core::TimingOptions options;
  options.shape = sa::TileShape{size, size, size};
  options.precision = sa::Precision::kFp64;
  options.active_nodes = nodes;

  sim::TimePs event_ps = 0;
  sim::TimePs lockstep_ps = 0;
  config.exec = core::ExecMode::kEventDriven;
  const double event_s = best_wall_seconds(config, options, reps, &event_ps);
  config.exec = core::ExecMode::kLockstep;
  const double lockstep_s =
      best_wall_seconds(config, options, reps, &lockstep_ps);

  // Simulated work in MMAE cycles (both modes cover the same makespan).
  const auto mcycles = [&](sim::TimePs makespan) {
    return static_cast<double>(makespan) * config.mmae.frequency_hz / 1e12 /
           1e6;
  };
  Measurement m;
  m.size = size;
  m.event_mcyc_per_s = mcycles(event_ps) / event_s;
  m.lockstep_mcyc_per_s = mcycles(lockstep_ps) / lockstep_s;
  m.speedup = m.lockstep_mcyc_per_s > 0.0
                  ? m.event_mcyc_per_s / m.lockstep_mcyc_per_s
                  : 0.0;
  m.makespan_match = event_ps == lockstep_ps;
  return m;
}

void write_json(const std::string& path, const Measurement& m,
                unsigned nodes, std::uint64_t reps) {
  std::ofstream out(path);
  out << "{\n"
      << "  \"scenario\": \"speed\",\n"
      << "  \"columns\": [\n"
      << "    {\"name\": \"speedup_event_vs_lockstep\", \"unit\": \"\", "
         "\"higher_is_better\": true},\n"
      << "    {\"name\": \"makespan_match\", \"unit\": \"\", "
         "\"higher_is_better\": true}\n"
      << "  ],\n"
      << "  \"rows\": [\n"
      << "    {\n"
      << "      \"params\": {\"nodes\": \"" << nodes << "\", \"reps\": \""
      << reps << "\", \"size\": \"" << m.size << "\"},\n"
      << "      \"metrics\": {\"speedup_event_vs_lockstep\": " << m.speedup
      << ", \"makespan_match\": " << (m.makespan_match ? "1.0" : "0.0")
      << "}\n"
      << "    }\n"
      << "  ]\n"
      << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::uint64_t> sizes;
  unsigned nodes = 4;
  std::uint64_t reps = 3;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "bench_detailed_throughput: " << arg
                  << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--size") {
      sizes.push_back(std::stoull(value()));
    } else if (arg == "--nodes") {
      nodes = static_cast<unsigned>(std::stoul(value()));
    } else if (arg == "--reps") {
      reps = std::stoull(value());
    } else if (arg == "--json") {
      json_path = value();
    } else {
      std::cerr << "usage: bench_detailed_throughput [--size N]... "
                   "[--nodes N] [--reps N] [--json FILE]\n";
      return 2;
    }
  }
  if (sizes.empty()) sizes = {128, 256};

  maco::util::Table t({"Size", "Nodes", "Event Mcyc/s", "Lockstep Mcyc/s",
                       "Speedup", "Makespan match"});
  Measurement last;
  for (const std::uint64_t size : sizes) {
    last = measure(size, nodes, reps);
    auto row = t.row();
    row.cell(std::to_string(size));
    row.cell(std::to_string(nodes));
    row.cell(last.event_mcyc_per_s);
    row.cell(last.lockstep_mcyc_per_s);
    row.cell(last.speedup);
    row.cell(last.makespan_match ? "yes" : "NO");
  }
  std::cout << "bench_detailed_throughput: simulated MMAE cycles per "
               "wall-second, exec=event vs exec=lockstep\n";
  t.print(std::cout);

  if (!json_path.empty()) {
    // Baseline rows mirror the CI gate's --set flags; the last size wins.
    write_json(json_path, last, nodes, reps);
    std::cout << "wrote " << json_path << " (size=" << last.size
              << " nodes=" << nodes << " reps=" << reps << ")\n";
  }
  return 0;
}
