// Extension study (beyond the paper): structured 2:4 weight sparsity on
// the MMAE's systolic array.
//
// The paper's related work surveys sparse CPU engines (SAVE, SparCE,
// VEGETA) but MACO itself is dense. This bench quantifies what the natural
// extension buys: B (weights) pruned 2:4 along the reduction axis,
// compressed preloads, and an index-select stage per pass.
#include <iostream>

#include "sa/sparse.hpp"
#include "util/table.hpp"
#include "workloads/dnn_models.hpp"

namespace {

using namespace maco;

void tile_level() {
  util::Table t({"Tile (m x n x k)", "Dense cycles", "2:4 cycles",
                 "Speedup", "1:4 speedup"});
  const sa::SparseSaConfig half{};
  sa::SparseSaConfig quarter;
  quarter.kept = 1;
  for (const std::uint64_t k : {64ull, 128ull, 256ull, 1024ull}) {
    const sa::TileShape shape{64, 64, k};
    const auto s2 = sa::compute_sparse_sa_timing(shape, half);
    const auto s1 = sa::compute_sparse_sa_timing(shape, quarter);
    t.row()
        .cell("64 x 64 x " + std::to_string(k))
        .cell(s2.dense_cycles)
        .cell(s2.sparse_cycles)
        .cell(s2.speedup, 2)
        .cell(s1.speedup, 2);
  }
  t.print(std::cout,
          "Per-tile systolic timing, dense vs structured-sparse B "
          "(4x4 array, FP64 mode)");
  std::cout << "\n";
}

void network_level() {
  // DNN weights pruned 2:4 (the usual recipe: attention/FFN weights
  // pruned, activations dense): per-layer speedup weighted by layer time.
  util::Table t({"Network", "Dense SA cycles", "2:4 SA cycles",
                 "End-to-end SA speedup"});
  const sa::SparseSaConfig config{};
  for (const auto& workload :
       {wl::resnet50(8), wl::bert_base(8, 384), wl::gpt3(1, 2048)}) {
    double dense = 0.0, sparse = 0.0;
    for (const auto& shape : workload.expanded_shapes()) {
      // Tile the layer as the AC does (64-wide inner tiles).
      const std::uint64_t tiles =
          ((shape.m + 63) / 64) * ((shape.n + 63) / 64);
      const sa::TileShape tile{64, 64, shape.k};
      const auto timing = sa::compute_sparse_sa_timing(tile, config);
      dense += static_cast<double>(timing.dense_cycles) *
               static_cast<double>(tiles);
      sparse += static_cast<double>(timing.sparse_cycles) *
                static_cast<double>(tiles);
    }
    t.row()
        .cell(workload.name)
        .cell(dense / 1e9, 2)
        .cell(sparse / 1e9, 2)
        .cell(dense / sparse, 2);
  }
  t.print(std::cout,
          "Network-level (giga-cycles of array time, weights pruned 2:4)");
  std::cout << "\nWith 64-wide inner tiles the select overhead amortizes "
               "everywhere, so 2:4\npruning sits just under its 2x bound "
               "across all three networks.\n";
}

}  // namespace

int main() {
  tile_level();
  network_level();
  return 0;
}
