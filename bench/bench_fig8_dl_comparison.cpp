// Fig. 8: comparison with state-of-the-art solutions on deep-learning
// inference workloads (ResNet-50, BERT, GPT-3; FP32).
//
// All five systems are normalized to 256 processing elements (16x16, one
// FP32 MAC per PE per cycle) as in the paper:
//   Baseline-1  MACO, CPU only (software GEMM on the vector units)
//   Baseline-2  MACO with MMAEs, without the Section IV.B mapping scheme
//   Gem5-RASA   one core with an in-pipeline 16x16 engine (tightly coupled)
//   Gemmini     one host core with a 16x16 loosely-coupled engine
//   MACO        16 nodes x (CPU + 4x4 MMAE), full mapping scheme
#include <iostream>

#include "baselines/comparison.hpp"
#include "util/table.hpp"
#include "workloads/dnn_models.hpp"

int main() {
  using namespace maco;

  const baseline::Comparator comparator(core::SystemConfig::maco_default(),
                                        16);
  const std::vector<wl::Workload> workloads = {
      wl::resnet50(8), wl::bert_base(8, 384), wl::gpt3(1, 2048)};

  util::Table t({"System", "Resnet-50", "BERT", "GPT3", "Geomean ratio"});
  std::vector<std::vector<baseline::ComparisonResult>> all;
  all.reserve(workloads.size());
  for (const auto& workload : workloads) {
    all.push_back(comparator.run_all(workload));
  }

  const std::size_t systems = all.front().size();
  const std::size_t maco_index = systems - 1;
  for (std::size_t s = 0; s < systems; ++s) {
    auto row = t.row();
    row.cell(all.front()[s].system);
    double ratio_product = 1.0;
    for (std::size_t w = 0; w < workloads.size(); ++w) {
      row.cell(all[w][s].gflops, 1);
      ratio_product *= all[w][maco_index].gflops / all[w][s].gflops;
    }
    const double geomean =
        std::pow(ratio_product, 1.0 / static_cast<double>(workloads.size()));
    row.cell(s == maco_index
                 ? std::string("1.00x")
                 : "MACO " + util::format_double(geomean, 2) + "x faster");
  }
  t.print(std::cout,
          "Fig. 8: throughput (GFLOPS) on DL inference, all systems at "
          "256 PEs, FP32");

  // The headline claim.
  double best = 0.0;
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    best = std::max(best, all[w][maco_index].gflops);
  }
  std::cout << "\nMACO peak across workloads: "
            << util::format_double(best / 1000.0, 2) << " TFLOPS at "
            << util::format_double(
                   best * 1e9 / comparator.accelerator_peak_flops() * 100.0,
                   1)
            << "% of the normalized 1.28 TFLOPS peak"
            << " (paper: up to 1.1 TFLOPS at 88%).\n"
            << "Paper ratios: 3.30x Baseline-1, 1.45x Baseline-2, "
               "1.35x RASA, 1.30x Gemmini (averages).\n";
  return 0;
}
