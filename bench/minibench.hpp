// Minimal vendored timing harness, API-compatible with the subset of
// google-benchmark that bench_micro_components.cpp uses (State iteration,
// range args, DoNotOptimize, SetItemsProcessed, BENCHMARK/BENCHMARK_MAIN).
// Built only when the real library is absent (see bench/CMakeLists.txt), so
// the substrate perf gate runs everywhere. Numbers are comparable run to
// run, not to google-benchmark's (no CPU-frequency pinning, simpler
// adaptive iteration control).
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace benchmark {

class State {
 public:
  explicit State(std::vector<std::int64_t> ranges)
      : ranges_(std::move(ranges)) {}

  std::int64_t range(std::size_t index = 0) const {
    return index < ranges_.size() ? ranges_[index] : 0;
  }

  void SetItemsProcessed(std::int64_t items) { items_processed_ = items; }

  std::int64_t iterations() const { return iterations_; }
  std::int64_t items_processed() const { return items_processed_; }
  double elapsed_seconds() const { return elapsed_seconds_; }

  // `for (auto _ : state)` protocol: KeepRunning() counts an iteration and
  // decides adaptively when the sample is long enough. The clock is read
  // once per batch (batch size doubles), not per iteration, so timing
  // overhead stays off the measured loop.
  bool KeepRunning() {
    if (iterations_ == 0) {
      start_ = std::chrono::steady_clock::now();
      batch_left_ = 1;
      batch_size_ = 1;
    }
    if (batch_left_ == 0) {
      elapsed_seconds_ = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start_)
                             .count();
      if (elapsed_seconds_ >= kMinSeconds || iterations_ >= kMaxIterations) {
        return false;
      }
      if (batch_size_ < kMaxBatch) batch_size_ *= 2;
      batch_left_ = batch_size_;
    }
    --batch_left_;
    ++iterations_;
    return true;
  }

  // The yielded value has a user-provided destructor so `for (auto _ : ...)`
  // does not trip -Wunused-but-set-variable under -Wall -Wextra.
  struct IterationMark {
    ~IterationMark() {}
  };

  struct Iterator {
    State* state;
    bool operator!=(const Iterator&) const { return state->KeepRunning(); }
    Iterator& operator++() { return *this; }
    IterationMark operator*() const { return IterationMark(); }
  };
  Iterator begin() { return Iterator{this}; }
  Iterator end() { return Iterator{this}; }

 private:
  static constexpr double kMinSeconds = 0.05;
  static constexpr std::int64_t kMaxIterations = 100000000;
  static constexpr std::int64_t kMaxBatch = 8192;

  std::vector<std::int64_t> ranges_;
  std::int64_t iterations_ = 0;
  std::int64_t items_processed_ = 0;
  double elapsed_seconds_ = 0.0;
  std::int64_t batch_left_ = 0;
  std::int64_t batch_size_ = 1;
  std::chrono::steady_clock::time_point start_;
};

template <typename T>
inline void DoNotOptimize(const T& value) {
#if defined(__GNUC__) || defined(__clang__)
  asm volatile("" : : "r,m"(value) : "memory");
#else
  static volatile const T* sink;
  sink = &value;
#endif
}

namespace internal {

struct Benchmark {
  std::string name;
  void (*function)(State&);
  std::vector<std::int64_t> args;  // one registered run per element

  Benchmark* Arg(std::int64_t value) {
    args.push_back(value);
    return this;
  }
};

inline std::vector<Benchmark>& registry() {
  static std::vector<Benchmark> benchmarks;
  return benchmarks;
}

// The returned pointer is only dereferenced by the same static
// initializer's ->Arg() chain, which completes before the next BENCHMARK
// registration can reallocate the registry.
inline Benchmark* Register(const char* name, void (*function)(State&)) {
  registry().push_back(Benchmark{name, function, {}});
  return &registry().back();
}

inline int RunAll() {
  std::printf("minibench (vendored fallback harness; install "
              "google-benchmark for calibrated numbers)\n");
  std::printf("%-32s %14s %14s %16s\n", "benchmark", "iterations",
              "ns/iter", "items/s");
  for (Benchmark& bench : registry()) {
    std::vector<std::vector<std::int64_t>> runs;
    if (bench.args.empty()) {
      runs.push_back({});
    } else {
      for (const std::int64_t arg : bench.args) runs.push_back({arg});
    }
    for (const std::vector<std::int64_t>& ranges : runs) {
      State state(ranges);
      bench.function(state);
      std::string label = bench.name;
      if (!ranges.empty()) {
        // Two appends, not operator+(const char*, string&&): the moved-in
        // temporary trips a GCC 12 -Wrestrict false positive under -O2.
        label += '/';
        label += std::to_string(ranges[0]);
      }
      const double ns_per_iter =
          state.iterations() > 0
              ? state.elapsed_seconds() * 1e9 /
                    static_cast<double>(state.iterations())
              : 0.0;
      char items_text[32] = "-";
      if (state.items_processed() > 0 && state.elapsed_seconds() > 0.0) {
        std::snprintf(items_text, sizeof items_text, "%.3g",
                      static_cast<double>(state.items_processed()) /
                          state.elapsed_seconds());
      }
      std::printf("%-32s %14lld %14.1f %16s\n", label.c_str(),
                  static_cast<long long>(state.iterations()), ns_per_iter,
                  items_text);
    }
  }
  return 0;
}

}  // namespace internal

}  // namespace benchmark

#define MINIBENCH_CONCAT_IMPL(a, b) a##b
#define MINIBENCH_CONCAT(a, b) MINIBENCH_CONCAT_IMPL(a, b)

#define BENCHMARK(function)                                        \
  static ::benchmark::internal::Benchmark* MINIBENCH_CONCAT(       \
      minibench_registration_, __LINE__) =                         \
      ::benchmark::internal::Register(#function, function)

#define BENCHMARK_MAIN() \
  int main() { return ::benchmark::internal::RunAll(); }
