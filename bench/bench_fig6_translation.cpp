// Fig. 6: computational efficiency with vs without predictive address
// translation (the mATLB of Section IV.A).
//
// Setup mirrors the paper: one compute node, FP64 HPL-style square GEMMs,
// 4 KiB pages, first-level tiling <Tr,Tc> = <1024,1024>, second-level
// <ttr,ttc> = <64,64>, sizes 256..9216. "Without prediction" makes every
// sTLB miss a blocking page-table walk on the DMA stream; "with" lets the
// mATLB walk ahead during the previous tile's compute.
#include <iostream>

#include "core/timing_model.hpp"
#include "util/table.hpp"
#include "workloads/gemm_workload.hpp"

int main() {
  using namespace maco;

  const core::SystemTimingModel model(core::SystemConfig::maco_default());

  util::Table t({"Matrix size", "With prediction", "Without prediction",
                 "Gap", "sTLB walks/tile", "Paper gap"});
  const char* paper_gap[] = {"<2%", "~2.6%", "6.5% (max)", "6.3%", "6.3%",
                             "6.3%"};
  std::size_t row = 0;

  for (const std::uint64_t size : wl::fig6_sizes()) {
    core::TimingOptions with;
    with.shape = sa::TileShape{size, size, size};
    with.precision = sa::Precision::kFp64;
    with.active_nodes = 1;
    with.tile_rows = 1024;
    with.tile_cols = 1024;
    with.inner = 64;
    core::TimingOptions without = with;
    without.use_matlb = false;

    const core::SystemTiming timing_with = model.run(with);
    const core::SystemTiming timing_without = model.run(without);
    const double gap =
        timing_with.mean_efficiency - timing_without.mean_efficiency;

    t.row()
        .cell(std::to_string(size))
        .percent(timing_with.mean_efficiency)
        .percent(timing_without.mean_efficiency)
        .percent(gap)
        .cell(timing_without.translation.walks_per_tile, 1)
        .cell(paper_gap[row++]);
  }
  t.print(std::cout,
          "Fig. 6: MACO with/without page-table address prediction "
          "(single node, FP64, 4 KiB pages, T=<1024,1024>, tt=<64,64>)");
  std::cout << "\nShape checks: gap < 2% below the sTLB-reach knee (256/512),"
               "\n  maximum near 1024, ~6.3% plateau beyond (paper: max 6.5%"
               " at 1024).\n";
  return 0;
}
