// Serving-substrate micro-benchmarks: how many simulated requests per
// second of host wall time the serve loop sustains. The loop is O(1) per
// request with the machine memoized per distinct batch size, so
// million-request streams must stay cheap — these catch regressions that
// would make paper-scale serving sweeps intractable.
#ifdef MACO_HAVE_GOOGLE_BENCHMARK
#include <benchmark/benchmark.h>
#else
#include "minibench.hpp"
#endif

#include <memory>

#include "core/config.hpp"
#include "serve/server.hpp"
#include "util/latency_histogram.hpp"

namespace {

using namespace maco;

// Seeded Poisson schedule generation (sort included).
void BM_LoadGeneratorPoisson(benchmark::State& state) {
  serve::ArrivalConfig config;
  config.rate_rps = 1000.0;
  config.requests = static_cast<std::uint64_t>(state.range(0));
  config.tenants = 4;
  for (auto _ : state) {
    const auto schedule = serve::LoadGenerator(config).schedule();
    benchmark::DoNotOptimize(schedule.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LoadGeneratorPoisson)->Arg(10000)->Arg(100000);

// Log-bucketed histogram hot path.
void BM_LatencyHistogramRecord(benchmark::State& state) {
  util::LatencyHistogram histogram;
  double value = 0.001;
  for (auto _ : state) {
    histogram.record(value);
    value = value < 1000.0 ? value * 1.37 : 0.001;
  }
  benchmark::DoNotOptimize(histogram.count());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LatencyHistogramRecord);

// The whole serve loop, open loop at a rate that exercises batching:
// items/s here is simulated requests per host second.
void BM_ServeOpenLoop(benchmark::State& state) {
  serve::ServeConfig config;
  config.arrival.rate_rps = 4000.0;
  config.arrival.requests = static_cast<std::uint64_t>(state.range(0));
  config.arrival.tenants = 4;
  config.policy.max_batch = 8;
  config.policy.timeout_ps = 200 * sim::kPsPerUs;
  serve::CostModelOptions options;
  for (auto _ : state) {
    const auto cost = serve::make_analytic_cost_model(
        core::SystemConfig::maco_default(), serve::serve_model("tiny", 0),
        options);
    const serve::ServeReport report = serve::serve(*cost, config);
    benchmark::DoNotOptimize(report.completed);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ServeOpenLoop)->Arg(10000)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();
