// Tables I–III: the paper's configuration tables, regenerated from the
// implementation (not restated by hand) so drift between code and paper
// parameters is visible.
//
//   Table I   CPU core architectural parameters   <- cpu::CpuConfig
//   Table II  the MPAIS instruction set           <- isa encodings/assembler
//   Table III MTQ entry fields + Fig. 3 states    <- cpu::MasterTaskQueue
#include <cstdio>
#include <iostream>

#include "core/config.hpp"
#include "core/detailed_runner.hpp"
#include "cpu/mtq.hpp"
#include "driver/hardware_knobs.hpp"
#include "isa/encoding.hpp"
#include "sampling/estimator.hpp"
#include "util/table.hpp"

namespace {

void table1_cpu_parameters() {
  using namespace maco;
  const core::SystemConfig config = core::SystemConfig::maco_default();
  const cpu::CpuConfig& cpu = config.cpu;

  util::Table t({"Architectural Parameter", "Value"});
  t.row().cell("instruction width").cell("64-bit");
  t.row().cell("data bus width").cell("256-bit mesh links (CHI-like)");
  t.row()
      .cell("pipeline stages")
      .cell(std::to_string(cpu.pipeline_stages) + "+");
  t.row().cell("instruction execution order").cell("out-of-order (modeled)");
  t.row()
      .cell("multi-issue ability")
      .cell(std::to_string(cpu.issue_width) + "-issue");
  t.row()
      .cell("frequency")
      .cell(util::format_double(cpu.frequency_hz / 1e9, 1) + " GHz");
  t.row()
      .cell("L1 ICache")
      .cell(std::to_string(cpu.l1i.size_bytes / 1024) + " KiB, " +
            std::to_string(cpu.l1i.ways) + "-way set associative");
  t.row()
      .cell("L1 DCache")
      .cell(std::to_string(cpu.l1d.size_bytes / 1024) + " KiB, " +
            std::to_string(cpu.l1d.ways) + "-way set associative");
  t.row()
      .cell("L2 Cache")
      .cell(std::to_string(cpu.l2.size_bytes / 1024) + " KiB, private");
  t.row()
      .cell("L1 ITLB/DTLB")
      .cell(std::to_string(cpu.mmu.l1_tlb_entries) +
            " entries, fully associative");
  t.row()
      .cell("L2 TLB")
      .cell(std::to_string(cpu.mmu.l2_tlb_entries) +
            " entries, fully associative");
  t.row().cell("MTQ entries").cell(std::to_string(cpu.mtq_entries));
  t.print(std::cout, "Table I: architectural parameters of a CPU core");
  std::puts("");
}

void table2_mpais_instructions() {
  using namespace maco;
  util::Table t({"Function", "Instruction", "Usage", "Opcode"});
  struct Row {
    const char* function;
    isa::Mnemonic mnemonic;
    const char* usage;
  };
  const Row rows[] = {
      {"Data migration", isa::Mnemonic::kMaMove, "MA_MOVE Rd, Rn"},
      {"Data migration", isa::Mnemonic::kMaInit, "MA_INIT Rd, Rn"},
      {"Data migration", isa::Mnemonic::kMaStash, "MA_STASH Rd, Rn"},
      {"GEMM computing", isa::Mnemonic::kMaCfg, "MA_CFG Rd, Rn"},
      {"Task management", isa::Mnemonic::kMaRead, "MA_READ Rd, Rn"},
      {"Task management", isa::Mnemonic::kMaState, "MA_STATE Rd, Rn"},
      {"Task management", isa::Mnemonic::kMaClear, "MA_CLEAR Rn"},
  };
  for (const Row& row : rows) {
    isa::Instruction instruction;
    instruction.op = row.mnemonic;
    instruction.rd = 5;
    instruction.rn = 10;
    char opcode[16];
    std::snprintf(opcode, sizeof(opcode), "0x%08x",
                  isa::encode(instruction));
    t.row()
        .cell(row.function)
        .cell(isa::mnemonic_name(row.mnemonic))
        .cell(row.usage)
        .cell(opcode);
  }
  t.print(std::cout,
          "Table II: the MPAIS instruction set (encodings from the "
          "assembler, rd=x5, rn=x10)");
  std::puts("");
}

void table3_mtq_entry() {
  using namespace maco;
  util::Table t({"Field", "Description"});
  t.row().cell("Valid").cell("entry is allocated");
  t.row().cell("Done").cell("task completed");
  t.row().cell("ASID").cell("process identifier (NULL when free)");
  t.row()
      .cell("exception_en")
      .cell("exception occurred during task execution");
  t.row()
      .cell("exception_type")
      .cell("page_fault | invalid_config | buffer_overflow | bus_error");
  t.print(std::cout, "Table III: fields of an MTQ entry");

  // Fig. 3 state walk on a live MTQ.
  cpu::MasterTaskQueue mtq(4);
  std::puts("\nFig. 3 state walk (live MasterTaskQueue):");
  const auto maid = mtq.allocate(/*asid=*/0);
  std::printf("  MA_CFG by process #00      -> valid=%d done=%d\n",
              mtq.entry(*maid).valid, mtq.entry(*maid).done);
  mtq.mark_done(*maid);
  std::printf("  task done, no exceptions   -> valid=%d done=%d\n",
              mtq.entry(*maid).valid, mtq.entry(*maid).done);
  mtq.read_and_release(*maid);
  std::printf("  MA_STATE (query + release) -> valid=%d done=%d\n",
              mtq.entry(*maid).valid, mtq.entry(*maid).done);
  const auto maid2 = mtq.allocate(/*asid=*/1);
  mtq.mark_exception(*maid2, cpu::ExceptionType::kPageFault);
  std::printf("  task completes with fault  -> valid=%d done=%d exc=%s\n",
              mtq.entry(*maid2).valid, mtq.entry(*maid2).done,
              cpu::exception_type_name(mtq.entry(*maid2).exception_type));
  mtq.clear(*maid2);
  std::printf("  MA_CLEAR                   -> valid=%d done=%d exc=%s\n",
              mtq.entry(*maid2).valid, mtq.entry(*maid2).done,
              cpu::exception_type_name(mtq.entry(*maid2).exception_type));
  std::puts("");
}

// Appendix: which of the platform parameters above are sweepable from the
// macosim CLI, straight from the driver's typed hardware schema — the same
// single source --list-scenarios and the sweep runner validate against.
void appendix_sweepable_knobs() {
  maco::driver::print_hardware_knob_table(
      std::cout, "Appendix: hardware knobs sweepable via `macosim --sweep`");
  std::puts("");
}

// Appendix: the fidelity ladder behind `--set fidelity=...`, with the
// governing limits quoted from the implementation constants so this table
// can never drift from what the backends actually enforce.
void appendix_fidelity_ladder() {
  std::puts("Appendix: execution fidelities (macosim --set fidelity=...)");
  std::puts(
      "  analytic  closed forms + contention models; any shape,\n"
      "            microseconds per point");
  std::printf(
      "  detailed  flit-level MacoSystem end to end; independent GEMMs,\n"
      "            each dimension <= %llu\n",
      static_cast<unsigned long long>(maco::core::kDetailedMaxDim));
  std::printf(
      "  sampled   stratified tile sampling on the detailed machine; any\n"
      "            shape, cooperative + multi-layer, error bars = 1.96 SE\n"
      "            + %.0f%% model margin (see src/sampling/estimator.hpp)\n",
      100.0 * maco::sampling::kModelMarginFrac);
  std::puts("");
}

}  // namespace

int main() {
  table1_cpu_parameters();
  table2_mpais_instructions();
  table3_mtq_entry();
  appendix_sweepable_knobs();
  appendix_fidelity_ladder();
  return 0;
}
