// Execution timelines: collect per-component activity spans and render
// them as an ASCII Gantt chart (for terminal output) or Chrome trace JSON
// (load in chrome://tracing or Perfetto).
//
// The spans come from the simulator's own bookkeeping — MMAE task reports,
// GEMM+ schedules — so a timeline is a faithful picture of what the timing
// model computed, not a separate estimate.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mmae/accelerator_controller.hpp"
#include "sim/time.hpp"

namespace maco::trace {

struct Span {
  std::string track;  // row label, e.g. "node0.mmae"
  std::string name;   // span label, e.g. "MA_CFG 64x64x64"
  sim::TimePs start = 0;
  sim::TimePs end = 0;

  sim::TimePs duration() const noexcept {
    return end > start ? end - start : 0;
  }
};

class Timeline {
 public:
  void add(Span span);
  void add(std::string track, std::string name, sim::TimePs start,
           sim::TimePs end);

  // Imports every task report of an MMAE as spans on `track`.
  void import_reports(const std::string& track,
                      const std::vector<mmae::TaskReport>& reports);

  const std::vector<Span>& spans() const noexcept { return spans_; }
  sim::TimePs begin_ps() const noexcept;
  sim::TimePs end_ps() const noexcept;

  // ASCII Gantt: one row per track, `width` columns spanning the timeline.
  // Span cells show the first letter of the span name; '.' is idle.
  std::string render_ascii(std::size_t width = 72) const;

  // Chrome trace event format (complete events, microsecond timestamps).
  std::string to_chrome_json() const;

 private:
  std::vector<Span> spans_;
};

}  // namespace maco::trace
