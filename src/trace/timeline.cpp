#include "trace/timeline.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "isa/encoding.hpp"
#include "util/assert.hpp"
#include "util/json.hpp"

namespace maco::trace {

void Timeline::add(Span span) {
  MACO_ASSERT_MSG(span.end >= span.start,
                  "span '" << span.name << "' ends before it starts");
  spans_.push_back(std::move(span));
}

void Timeline::add(std::string track, std::string name, sim::TimePs start,
                   sim::TimePs end) {
  add(Span{std::move(track), std::move(name), start, end});
}

void Timeline::import_reports(const std::string& track,
                              const std::vector<mmae::TaskReport>& reports) {
  for (const mmae::TaskReport& report : reports) {
    Span span;
    span.track = track;
    span.name = isa::mnemonic_name(report.op);
    span.start = report.start;
    span.end = report.end;
    add(std::move(span));
  }
}

sim::TimePs Timeline::begin_ps() const noexcept {
  sim::TimePs begin = ~sim::TimePs{0};
  for (const Span& span : spans_) begin = std::min(begin, span.start);
  return spans_.empty() ? 0 : begin;
}

sim::TimePs Timeline::end_ps() const noexcept {
  sim::TimePs end = 0;
  for (const Span& span : spans_) end = std::max(end, span.end);
  return end;
}

std::string Timeline::render_ascii(std::size_t width) const {
  if (spans_.empty() || width == 0) return "(empty timeline)\n";
  const sim::TimePs t0 = begin_ps();
  const sim::TimePs t1 = end_ps();
  const double span_ps = std::max<double>(1.0, static_cast<double>(t1 - t0));

  // Stable track order: first appearance.
  std::vector<std::string> order;
  std::map<std::string, std::string> rows;
  std::size_t label_width = 0;
  for (const Span& span : spans_) {
    if (!rows.count(span.track)) {
      order.push_back(span.track);
      rows[span.track] = std::string(width, '.');
      label_width = std::max(label_width, span.track.size());
    }
  }
  for (const Span& span : spans_) {
    std::string& row = rows[span.track];
    const auto col = [&](sim::TimePs t) {
      const double f = static_cast<double>(t - t0) / span_ps;
      return std::min(width - 1,
                      static_cast<std::size_t>(f * static_cast<double>(width)));
    };
    const char mark = span.name.empty()
                          ? '#'
                          : static_cast<char>(std::toupper(
                                static_cast<unsigned char>(span.name.back())));
    for (std::size_t c = col(span.start); c <= col(span.end == span.start
                                                       ? span.end
                                                       : span.end - 1);
         ++c) {
      row[c] = mark;
    }
  }

  std::ostringstream out;
  out << "timeline " << (t1 - t0) / 1e6 << " us ("
      << "1 col = " << span_ps / static_cast<double>(width) / 1e6 << " us)\n";
  for (const std::string& track : order) {
    out << "  " << track << std::string(label_width - track.size(), ' ')
        << " |" << rows[track] << "|\n";
  }
  return out.str();
}

std::string Timeline::to_chrome_json() const {
  std::ostringstream out;
  out << "[";
  bool first = true;
  for (const Span& span : spans_) {
    if (!first) out << ",";
    first = false;
    // Complete event ("X"): ts/dur in microseconds.
    out << "\n  {\"name\": \"" << util::json_escape(span.name)
        << "\", \"cat\": \"maco\", "
        << "\"ph\": \"X\", \"pid\": 0, \"tid\": \""
        << util::json_escape(span.track) << "\", "
        << "\"ts\": " << static_cast<double>(span.start) / 1e6 << ", "
        << "\"dur\": " << static_cast<double>(span.duration()) / 1e6 << "}";
  }
  out << "\n]\n";
  return out.str();
}

}  // namespace maco::trace
