// GEMM+ scheduling (paper Section IV.B, Fig. 5(c)).
//
// Real workloads interleave GEMM layers with non-GEMM work (softmax,
// layernorm, activations). MACO's mapping scheme software-pipelines them:
// while the MMAE computes GEMM tile i, the CPU runs the non-GEMM stage of
// tile i-1, and stash requests prefetch tile i+1's operands into the L3.
// Baseline-2 is the same machine without this scheme: stages serialize and
// operands stream from DRAM.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace maco::core {

struct GemmPlusStage {
  sim::TimePs gemm_ps = 0;      // MMAE time for this stage's GEMM
  sim::TimePs cpu_post_ps = 0;  // CPU time for the stage's non-GEMM work
  sim::TimePs stash_ps = 0;     // prefetch time for the next stage's data
};

struct GemmPlusResult {
  sim::TimePs total_ps = 0;
  sim::TimePs mmae_busy_ps = 0;
  sim::TimePs cpu_busy_ps = 0;
  // Fraction of CPU work hidden under MMAE compute (1.0 = fully overlapped).
  double overlap_fraction = 0.0;
};

// Pipelined schedule: stage i's GEMM overlaps stage i-1's post-processing
// and stage i+1's stash. Serial schedule (overlap = false): each stage is
// gemm -> post, back to back, and stash time is charged up front.
GemmPlusResult schedule_gemm_plus(const std::vector<GemmPlusStage>& stages,
                                  bool overlap);

}  // namespace maco::core
