#include "core/detailed_runner.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>

#include "core/maco_system.hpp"
#include "isa/encoding.hpp"
#include "isa/params.hpp"
#include "obs/collector.hpp"
#include "obs/host_profile.hpp"
#include "os/scheduler.hpp"
#include "sa/host_matrix.hpp"
#include "util/rng.hpp"
#include "vm/types.hpp"

namespace maco::core {
namespace {

// `fidelity` names the backend the user actually selected ("detailed", or
// "sampled" when the detailed machine runs underneath the estimator), so
// typed diagnostics point at the right knob value.
[[noreturn]] void unsupported(const char* fidelity, const std::string& what) {
  throw std::invalid_argument(std::string("fidelity=") + fidelity + " " +
                              what);
}

// The execution constraints shared by whole-GEMM and tile-subset runs.
void check_machine_supported(const SystemConfig& config,
                             const TimingOptions& options,
                             const char* fidelity) {
  if (!options.use_stash_lock) {
    unsupported(fidelity,
                "always models the stash+lock scheme; stash_lock=false is "
                "analytic-only");
  }
  if (options.page_bytes != 4096) {
    unsupported(fidelity,
                "uses the hardware 4 KiB page tables; page_bytes is "
                "analytic-only");
  }
  if (options.tlb_entries_override != 0 || options.engine_overlap != 1.0 ||
      options.sync_overhead_per_tile_ps != 0 ||
      options.dma_bandwidth_scale != 1.0 ||
      options.simd_ways_override != 0 || options.sa_rows_override != 0 ||
      options.sa_cols_override != 0 || options.pte_always_cold ||
      options.pte_walks_warm) {
    unsupported(fidelity,
                "does not support the analytic baseline overrides");
  }
  if (options.tile_rows > 65535 || options.tile_cols > 65535 ||
      options.inner > 65535) {
    unsupported(fidelity, "encodes tile sizes in 16-bit MPAIS fields");
  }
  if (config.node_count == 0) unsupported(fidelity, "needs at least one node");
}

void check_supported(const SystemConfig& config,
                     const TimingOptions& options) {
  if (options.cooperative) {
    unsupported("detailed",
                "runs one independent GEMM per node; cooperative splitting "
                "is analytic-only (set cooperative=false, or use "
                "fidelity=sampled which estimates cooperative runs)");
  }
  check_machine_supported(config, options, "detailed");
  const std::uint64_t largest =
      std::max({options.shape.m, options.shape.n, options.shape.k});
  if (largest > kDetailedMaxDim) {
    unsupported("detailed",
                "caps each GEMM dimension at " +
                    std::to_string(kDetailedMaxDim) + " (got " +
                    std::to_string(largest) +
                    "); use fidelity=sampled for statistically-estimated "
                    "detailed numbers at this scale, or fidelity=analytic "
                    "for the closed-form model");
  }
  if (options.shape.m == 0 || options.shape.n == 0 || options.shape.k == 0) {
    unsupported("detailed", "needs a non-empty GEMM shape");
  }
}

// Builds one GEMM task (build_detailed_gemm_task) and issues it `tasks`
// times through the node's CPU — the direct programming path of
// run_detailed_tiles, which measures MMAE task spans without OS overhead.
void program_gemm_tasks(MacoSystem& system, unsigned node, Process& process,
                        const sa::TileShape& shape,
                        const TimingOptions& options,
                        std::uint64_t a_offset, std::uint64_t b_offset,
                        std::uint64_t c_offset, std::uint64_t data_seed,
                        unsigned tasks) {
  const isa::GemmParams gemm =
      build_detailed_gemm_task(system, process, shape, options, a_offset,
                               b_offset, c_offset, data_seed);
  cpu::CpuCore& cpu = system.node(node).cpu();
  cpu.regs().write_param_block(10, gemm.pack());
  for (unsigned t = 0; t < tasks; ++t) {
    cpu.execute_source("ma_cfg x5, x10");
  }
}

void check_task_reports(unsigned node, std::size_t expected,
                        const std::vector<mmae::TaskReport>& reports) {
  if (reports.size() < expected) {
    throw std::runtime_error("detailed run failed on node " +
                             std::to_string(node) + ": only " +
                             std::to_string(reports.size()) + " of " +
                             std::to_string(expected) +
                             " task(s) completed");
  }
  for (const mmae::TaskReport& report : reports) {
    if (report.exception != cpu::ExceptionType::kNone) {
      throw std::runtime_error("detailed run failed on node " +
                               std::to_string(node) +
                               ": task raised an exception");
    }
  }
}

}  // namespace

isa::GemmParams build_detailed_gemm_task(
    MacoSystem& system, Process& process, const sa::TileShape& shape,
    const TimingOptions& options, std::uint64_t a_page_offset,
    std::uint64_t b_page_offset, std::uint64_t c_page_offset,
    std::uint64_t data_seed) {
  util::Rng rng(0x9e3779b9u ^ data_seed);

  // One extra page per matrix makes room for the in-page shift; the
  // MatrixDesc base is the shifted address, so every element access (host
  // writes and the MMAE's DMA streams alike) sees the shifted layout.
  const auto alloc_shifted = [&](std::uint64_t rows, std::uint64_t cols,
                                 std::uint64_t offset) {
    vm::MatrixDesc desc;
    if (offset == 0) {
      desc = system.alloc_matrix(process, rows, cols);
    } else {
      const std::uint64_t bytes =
          rows * cols * sizeof(double) + vm::kPageSize;
      const std::uint64_t padded_rows =
          (bytes + cols * sizeof(double) - 1) / (cols * sizeof(double));
      desc = system.alloc_matrix(process, padded_rows, cols);
      desc.rows = rows;
      desc.base += offset;
    }
    return desc;
  };

  const auto a = alloc_shifted(shape.m, shape.k, a_page_offset);
  const auto b = alloc_shifted(shape.k, shape.n, b_page_offset);
  const auto c = alloc_shifted(shape.m, shape.n, c_page_offset);
  system.write_matrix(process, a,
                      sa::HostMatrix::random(shape.m, shape.k, rng));
  system.write_matrix(process, b,
                      sa::HostMatrix::random(shape.k, shape.n, rng));
  system.write_matrix(process, c, sa::HostMatrix(shape.m, shape.n));

  isa::GemmParams gemm;
  gemm.a_base = a.base;
  gemm.b_base = b.base;
  gemm.c_base = c.base;
  gemm.m = static_cast<std::uint32_t>(shape.m);
  gemm.n = static_cast<std::uint32_t>(shape.n);
  gemm.k = static_cast<std::uint32_t>(shape.k);
  gemm.precision = options.precision;
  gemm.tile_rows = static_cast<std::uint16_t>(
      std::min<std::uint64_t>(options.tile_rows, 65535));
  gemm.tile_cols = static_cast<std::uint16_t>(
      std::min<std::uint64_t>(options.tile_cols, 65535));
  gemm.inner_tile_rows = static_cast<std::uint16_t>(options.inner);
  gemm.inner_tile_cols = static_cast<std::uint16_t>(options.inner);
  return gemm;
}

SystemTiming run_detailed_gemm(const SystemConfig& config,
                               const TimingOptions& options,
                               obs::RunObservation* observation) {
  check_supported(config, options);

  SystemConfig detailed_config = config;
  detailed_config.node_count = std::max(
      1u, std::min(options.active_nodes, config.node_count));
  detailed_config.mmae.use_matlb = options.use_matlb;

  obs::ScopedPhase setup_phase("setup");
  MacoSystem system(detailed_config);
  const unsigned nodes = system.node_count();

  // One independent GEMM per node (Fig. 7's independent mode), each in
  // its own process/address space with real random operands, driven by
  // the OS scheduler instead of hand-programmed CPUs. With a single-task
  // job per node, round-robin lands job i on node i and every dispatch
  // happens before the engine first runs — the MMAE-side timing is the
  // same as the historic direct path, and the run additionally exercises
  // (and reports) the real OS machinery: context switches, MA_STATE
  // harvesting, MTQ backoff, demand repair.
  os::Scheduler::Options sched_options;
  sched_options.nodes = nodes;
  os::Scheduler scheduler(system, sched_options);
  for (unsigned n = 0; n < nodes; ++n) {
    Process& process = system.create_process();
    os::Job& job = scheduler.add_job(process);
    job.tasks.push_back(os::GemmTask{build_detailed_gemm_task(
        system, process, options.shape, options, /*a_page_offset=*/0,
        /*b_page_offset=*/0, /*c_page_offset=*/0, /*data_seed=*/n)});
  }
  setup_phase.stop();

  obs::ScopedPhase sim_phase("sim");
  const os::SchedulerStats sched_stats = scheduler.run_all();
  sim_phase.stop();
  obs::ScopedPhase collect_phase("collect");
  if (sched_stats.tasks_failed > 0) {
    throw std::runtime_error(
        "detailed run failed: " + std::to_string(sched_stats.tasks_failed) +
        " task(s) raised unrepairable exceptions under the scheduler");
  }

  const double peak_macs = detailed_config.mmae_peak_macs(options.precision);
  const auto tiles_along = [&](std::uint64_t extent) {
    return (extent + options.inner - 1) / options.inner;
  };
  const double inner_tiles = static_cast<double>(
      tiles_along(options.shape.m) * tiles_along(options.shape.n) *
      tiles_along(options.shape.k));

  SystemTiming timing;
  double walks = 0.0;
  double predicted = 0.0;
  double stall_ps = 0.0;
  std::uint64_t total_macs = 0;
  for (unsigned n = 0; n < nodes; ++n) {
    const auto& reports = system.node(n).mmae().reports();
    // A repaired page fault leaves an exception report before the
    // successful retry, so take the last clean report on the node (the
    // completed attempt of its one task).
    const mmae::TaskReport* completed = nullptr;
    for (const mmae::TaskReport& candidate : reports) {
      if (candidate.exception == cpu::ExceptionType::kNone) {
        completed = &candidate;
      }
    }
    if (completed == nullptr) {
      throw std::runtime_error("detailed run failed on node " +
                               std::to_string(n) +
                               ": no completed task report");
    }
    const mmae::TaskReport& report = *completed;
    NodeTiming node;
    node.span_ps = report.end - report.start;
    node.compute_ps = report.sa_busy_ps;
    node.translation_exposed_ps = report.translation_stall_ps;
    node.macs = report.macs;
    node.efficiency = report.efficiency(peak_macs);
    node.gflops = report.duration_seconds() > 0.0
                      ? 2.0 * static_cast<double>(report.macs) /
                            report.duration_seconds() / 1e9
                      : 0.0;
    timing.makespan_ps = std::max(timing.makespan_ps, report.end);
    timing.mean_efficiency += node.efficiency;
    total_macs += report.macs;
    walks += static_cast<double>(report.blocking_walks);
    predicted += static_cast<double>(report.matlb_hits);
    stall_ps += static_cast<double>(report.translation_stall_ps);
    timing.nodes.push_back(node);
  }
  timing.mean_efficiency /= static_cast<double>(nodes);
  const double makespan_s = sim::to_seconds(timing.makespan_ps);
  timing.total_gflops =
      makespan_s > 0.0
          ? 2.0 * static_cast<double>(total_macs) / makespan_s / 1e9
          : 0.0;

  const double total_tiles = inner_tiles * static_cast<double>(nodes);
  timing.translation.walks_per_tile = walks / total_tiles;
  timing.translation.pages_per_tile = (walks + predicted) / total_tiles;
  timing.translation.stall_per_tile_ps =
      static_cast<sim::TimePs>(stall_ps / total_tiles);

  timing.os.present = true;
  timing.os.context_switches = sched_stats.context_switches;
  timing.os.mtq_full_backoffs = sched_stats.mtq_full_backoffs;
  timing.os.faults_repaired = sched_stats.faults_repaired;
  timing.os.scheduling_rounds = sched_stats.scheduling_rounds;
  timing.os.tasks_completed = sched_stats.tasks_completed;

  if (observation != nullptr) {
    if (observation->want_trace) {
      for (unsigned n = 0; n < nodes; ++n) {
        const std::string track = "node" + std::to_string(n) + ".mmae";
        sim::TimePs job_start = ~sim::TimePs{0};
        sim::TimePs job_end = 0;
        for (const mmae::TaskReport& report : system.node(n).mmae().reports()) {
          obs::SpanRec span;
          span.track = track;
          // A repaired fault shows up as its own attempt before the retry.
          span.name = report.exception == cpu::ExceptionType::kNone
                          ? std::string(isa::mnemonic_name(report.op))
                          : std::string("fault:") +
                                cpu::exception_type_name(report.exception);
          span.start = report.start;
          span.end = report.end;
          job_start = std::min(job_start, report.start);
          job_end = std::max(job_end, report.end);
          observation->spans.push_back(std::move(span));
        }
        if (job_end > 0) {
          observation->spans.push_back(obs::SpanRec{
              "os", "job" + std::to_string(n), job_start, job_end});
        }
      }
    }
    if (observation->want_counters) obs::collect(system, *observation);
  }
  return timing;
}

std::vector<DetailedTileMeasurement> run_detailed_tiles(
    const SystemConfig& config, const TimingOptions& options,
    const std::vector<DetailedTileJob>& jobs, unsigned concurrent,
    unsigned workers) {
  check_machine_supported(config, options, "sampled");
  for (const DetailedTileJob& job : jobs) {
    const std::uint64_t largest =
        std::max({job.shape.m, job.shape.n, job.shape.k});
    if (largest > kDetailedMaxDim) {
      unsupported("sampled",
                  "caps each tile dimension at " +
                      std::to_string(kDetailedMaxDim) + " (got " +
                      std::to_string(largest) +
                      "); shrink the first-level tile");
    }
    if (job.shape.m == 0 || job.shape.n == 0 || job.shape.k == 0) {
      unsupported("sampled", "needs non-empty tile shapes");
    }
    if (job.a_page_offset >= vm::kPageSize ||
        job.b_page_offset >= vm::kPageSize ||
        job.c_page_offset >= vm::kPageSize) {
      unsupported("sampled", "wants in-page offsets below the 4 KiB page "
                             "size");
    }
  }
  if (jobs.empty()) return {};

  concurrent = std::max(1u, std::min(concurrent, config.node_count));
  const std::size_t batches = (jobs.size() + concurrent - 1) / concurrent;

  std::vector<DetailedTileMeasurement> measurements(jobs.size());

  // One batch = one fresh MacoSystem running up to `concurrent` tiles, one
  // per node, all nodes concurrently — co-scheduled tiles share the NoC,
  // the CCM slices and the DRAM channels, so contention is part of every
  // sample just as it is in a real mapped run.
  const auto run_batch = [&](std::size_t batch) {
    const std::size_t begin = batch * concurrent;
    const std::size_t end = std::min(jobs.size(), begin + concurrent);
    const unsigned width = static_cast<unsigned>(end - begin);

    SystemConfig batch_config = config;
    batch_config.node_count = width;
    batch_config.mmae.use_matlb = options.use_matlb;

    MacoSystem system(batch_config);
    for (unsigned n = 0; n < width; ++n) {
      const DetailedTileJob& job = jobs[begin + n];
      Process& process = system.create_process();
      system.schedule_process(n, process);
      program_gemm_tasks(system, n, process, job.shape, options,
                         job.a_page_offset, job.b_page_offset,
                         job.c_page_offset, job.data_seed,
                         job.warmup_tasks + 1);
    }
    system.run();

    for (unsigned n = 0; n < width; ++n) {
      const DetailedTileJob& job = jobs[begin + n];
      const auto& reports = system.node(n).mmae().reports();
      check_task_reports(n, job.warmup_tasks + 1, reports);
      const mmae::TaskReport& report = reports[job.warmup_tasks];
      DetailedTileMeasurement& m = measurements[begin + n];
      m.span_ps = report.end - report.start;
      m.sa_busy_ps = report.sa_busy_ps;
      m.translation_stall_ps = report.translation_stall_ps;
      m.macs = report.macs;
      m.dma_bytes = report.dma_bytes;
      m.blocking_walks = report.blocking_walks;
      m.matlb_hits = report.matlb_hits;
    }
  };

  workers = std::max(1u, std::min<unsigned>(
                             workers, static_cast<unsigned>(batches)));
  if (workers <= 1) {
    for (std::size_t batch = 0; batch < batches; ++batch) run_batch(batch);
  } else {
    // Batches share nothing (each owns its MacoSystem) and write disjoint
    // measurement slots, so a plain atomic cursor distributes them. The
    // first thrown error wins; remaining batches still drain.
    std::atomic<std::size_t> cursor{0};
    std::mutex error_mutex;
    std::exception_ptr first_error;
    const auto worker = [&]() {
      while (true) {
        const std::size_t batch =
            cursor.fetch_add(1, std::memory_order_relaxed);
        if (batch >= batches) return;
        try {
          run_batch(batch);
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      }
    };
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (unsigned i = 0; i < workers; ++i) threads.emplace_back(worker);
    for (std::thread& thread : threads) thread.join();
    if (first_error) std::rethrow_exception(first_error);
  }
  return measurements;
}

}  // namespace maco::core
