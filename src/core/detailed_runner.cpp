#include "core/detailed_runner.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "core/maco_system.hpp"
#include "isa/params.hpp"
#include "sa/host_matrix.hpp"
#include "util/rng.hpp"

namespace maco::core {
namespace {

[[noreturn]] void unsupported(const std::string& what) {
  throw std::invalid_argument("fidelity=detailed " + what);
}

void check_supported(const SystemConfig& config,
                     const TimingOptions& options) {
  if (options.cooperative) {
    unsupported("runs one independent GEMM per node; cooperative splitting "
                "is analytic-only (set cooperative=false)");
  }
  if (!options.use_stash_lock) {
    unsupported("always models the stash+lock scheme; stash_lock=false is "
                "analytic-only");
  }
  if (options.page_bytes != 4096) {
    unsupported("uses the hardware 4 KiB page tables; page_bytes is "
                "analytic-only");
  }
  if (options.tlb_entries_override != 0 || options.engine_overlap != 1.0 ||
      options.sync_overhead_per_tile_ps != 0 ||
      options.dma_bandwidth_scale != 1.0 ||
      options.simd_ways_override != 0 || options.sa_rows_override != 0 ||
      options.sa_cols_override != 0 || options.pte_always_cold ||
      options.pte_walks_warm) {
    unsupported("does not support the analytic baseline overrides");
  }
  const std::uint64_t largest =
      std::max({options.shape.m, options.shape.n, options.shape.k});
  if (largest > kDetailedMaxDim) {
    unsupported("caps each GEMM dimension at " +
                std::to_string(kDetailedMaxDim) + " (got " +
                std::to_string(largest) +
                "); use fidelity=analytic for paper-scale shapes");
  }
  if (options.shape.m == 0 || options.shape.n == 0 || options.shape.k == 0) {
    unsupported("needs a non-empty GEMM shape");
  }
  if (options.tile_rows > 65535 || options.tile_cols > 65535 ||
      options.inner > 65535) {
    unsupported("encodes tile sizes in 16-bit MPAIS fields");
  }
  if (config.node_count == 0) unsupported("needs at least one node");
}

}  // namespace

SystemTiming run_detailed_gemm(const SystemConfig& config,
                               const TimingOptions& options) {
  check_supported(config, options);

  SystemConfig detailed_config = config;
  detailed_config.node_count = std::max(
      1u, std::min(options.active_nodes, config.node_count));
  detailed_config.mmae.use_matlb = options.use_matlb;

  MacoSystem system(detailed_config);
  const unsigned nodes = system.node_count();

  // Program one independent GEMM per node (Fig. 7's independent mode),
  // each in its own process/address space with real random operands.
  for (unsigned n = 0; n < nodes; ++n) {
    Process& process = system.create_process();
    system.schedule_process(n, process);
    util::Rng rng(0x9e3779b9u + n);

    const auto a = system.alloc_matrix(process, options.shape.m,
                                       options.shape.k);
    const auto b = system.alloc_matrix(process, options.shape.k,
                                       options.shape.n);
    const auto c = system.alloc_matrix(process, options.shape.m,
                                       options.shape.n);
    system.write_matrix(process, a,
                        sa::HostMatrix::random(options.shape.m,
                                               options.shape.k, rng));
    system.write_matrix(process, b,
                        sa::HostMatrix::random(options.shape.k,
                                               options.shape.n, rng));
    system.write_matrix(process, c,
                        sa::HostMatrix(options.shape.m, options.shape.n));

    isa::GemmParams gemm;
    gemm.a_base = a.base;
    gemm.b_base = b.base;
    gemm.c_base = c.base;
    gemm.m = static_cast<std::uint32_t>(options.shape.m);
    gemm.n = static_cast<std::uint32_t>(options.shape.n);
    gemm.k = static_cast<std::uint32_t>(options.shape.k);
    gemm.precision = options.precision;
    gemm.tile_rows = static_cast<std::uint16_t>(options.tile_rows);
    gemm.tile_cols = static_cast<std::uint16_t>(options.tile_cols);
    gemm.inner_tile_rows = static_cast<std::uint16_t>(options.inner);
    gemm.inner_tile_cols = static_cast<std::uint16_t>(options.inner);

    cpu::CpuCore& cpu = system.node(n).cpu();
    cpu.regs().write_param_block(10, gemm.pack());
    cpu.execute_source("ma_cfg x5, x10");
  }

  system.run();

  const double peak_macs = detailed_config.mmae_peak_macs(options.precision);
  const auto tiles_along = [&](std::uint64_t extent) {
    return (extent + options.inner - 1) / options.inner;
  };
  const double inner_tiles = static_cast<double>(
      tiles_along(options.shape.m) * tiles_along(options.shape.n) *
      tiles_along(options.shape.k));

  SystemTiming timing;
  double walks = 0.0;
  double predicted = 0.0;
  double stall_ps = 0.0;
  std::uint64_t total_macs = 0;
  for (unsigned n = 0; n < nodes; ++n) {
    cpu::CpuCore& cpu = system.node(n).cpu();
    const auto& entry =
        cpu.mtq().entry(static_cast<cpu::Maid>(cpu.regs().read(5)));
    if (!entry.done || entry.exception_en) {
      throw std::runtime_error("detailed run failed on node " +
                               std::to_string(n) + ": task " +
                               (entry.done ? "raised an exception"
                                           : "never completed"));
    }
    const mmae::TaskReport& report = system.node(n).mmae().reports().front();
    NodeTiming node;
    node.span_ps = report.end - report.start;
    node.compute_ps = report.sa_busy_ps;
    node.translation_exposed_ps = report.translation_stall_ps;
    node.macs = report.macs;
    node.efficiency = report.efficiency(peak_macs);
    node.gflops = report.duration_seconds() > 0.0
                      ? 2.0 * static_cast<double>(report.macs) /
                            report.duration_seconds() / 1e9
                      : 0.0;
    timing.makespan_ps = std::max(timing.makespan_ps, report.end);
    timing.mean_efficiency += node.efficiency;
    total_macs += report.macs;
    walks += static_cast<double>(report.blocking_walks);
    predicted += static_cast<double>(report.matlb_hits);
    stall_ps += static_cast<double>(report.translation_stall_ps);
    timing.nodes.push_back(node);
  }
  timing.mean_efficiency /= static_cast<double>(nodes);
  const double makespan_s = sim::to_seconds(timing.makespan_ps);
  timing.total_gflops =
      makespan_s > 0.0
          ? 2.0 * static_cast<double>(total_macs) / makespan_s / 1e9
          : 0.0;

  const double total_tiles = inner_tiles * static_cast<double>(nodes);
  timing.translation.walks_per_tile = walks / total_tiles;
  timing.translation.pages_per_tile = (walks + predicted) / total_tiles;
  timing.translation.stall_per_tile_ps =
      static_cast<sim::TimePs>(stall_ps / total_tiles);
  return timing;
}

}  // namespace maco::core
