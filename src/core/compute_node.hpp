// One MACO compute node: a CPU core plus its associated MMAE, wired
// together (accelerator port, shared sTLB, completion path into the MTQ).
#pragma once

#include <memory>

#include "cpu/core.hpp"
#include "mmae/accelerator_controller.hpp"

namespace maco::core {

class ComputeNode {
 public:
  ComputeNode(sim::SimEngine& engine, int node_id,
              const cpu::CpuConfig& cpu_config,
              const mmae::MmaeConfig& mmae_config,
              mmae::MemoryBackend& backend, mem::PhysicalMemory& memory,
              vm::MemoryLatencyOracle& walk_memory);

  int id() const noexcept { return id_; }
  cpu::CpuCore& cpu() noexcept { return *cpu_; }
  mmae::AcceleratorController& mmae() noexcept { return *mmae_; }

 private:
  int id_;
  std::unique_ptr<cpu::CpuCore> cpu_;
  std::unique_ptr<mmae::AcceleratorController> mmae_;
};

}  // namespace maco::core
