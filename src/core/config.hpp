// System-level configuration: the paper's published parameters (Table I,
// Table IV, Section III.A) plus the calibrated model constants DESIGN.md
// documents. Everything a bench varies lives here.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "cpu/core.hpp"
#include "mem/directory.hpp"
#include "mem/dram.hpp"
#include "mmae/accelerator_controller.hpp"
#include "noc/icnt.hpp"
#include "noc/link_load_model.hpp"
#include "noc/mesh.hpp"
#include "sa/types.hpp"

namespace maco::core {

// How the detailed machine advances time. Both modes produce bit-identical
// makespans (pinned by tests/test_equivalence.cpp):
//  - kEventDriven (default): the engine jumps the clock to the next pending
//    event or clock-domain edge (quiescence fast-forward), and the systolic
//    array evaluates its result directly in the array's accumulation order;
//  - kLockstep: the reference drive — per-cycle mesh self-scheduling and
//    register-level PE simulation. ~10-25× slower; kept for equivalence
//    testing and as the baseline of the `speed` scenario / perf gate.
enum class ExecMode : unsigned { kEventDriven = 0, kLockstep = 1 };

const char* exec_mode_name(ExecMode mode) noexcept;
ExecMode parse_exec_mode(const std::string& name);

// Observability level of the detailed machine. kOff (default) records
// nothing beyond what components count anyway and is bit-identical in
// timing to a build without the knob; kCounters additionally enables
// per-link NoC traffic accounting and, after the run, publishes every
// component counter into the engine's StatRegistry under hierarchical
// dotted names so obs::collect can roll them into metrics. Profiling
// never feeds back into timing (pinned by tests/test_obs.cpp).
enum class ProfileMode : unsigned { kOff = 0, kCounters = 1 };

const char* profile_mode_name(ProfileMode mode) noexcept;
ProfileMode parse_profile_mode(const std::string& name);

struct SystemConfig {
  unsigned node_count = 16;  // up to 16 homogeneous compute nodes
  cpu::CpuConfig cpu{};
  mmae::MmaeConfig mmae{};
  noc::MeshConfig mesh{};            // flit-level validation network
  noc::LinkLoadConfig link_load{};   // analytic contention model
  unsigned ccm_count = 16;           // one L3 slice per mesh node
  mem::CcmConfig ccm{};
  unsigned dram_channels = 4;
  mem::DramConfig dram{};                   // per-channel backend + timings
  noc::IcntKind icnt = noc::IcntKind::kAnalytic;  // detailed-machine NoC
  ExecMode exec = ExecMode::kEventDriven;   // detailed-machine scheduler
  ProfileMode profile = ProfileMode::kOff;  // observability (see obs/)

  // Fast-model latency constants (calibrated; see DESIGN.md §5).
  sim::TimePs noc_hop_ps = 500;            // one NoC cycle per hop
  sim::TimePs pte_cold_latency_ps = 80'000;  // leaf PTE read when the page
                                             // table line is cold (DRAM)
  sim::TimePs pte_warm_latency_ps = 14'000;  // leaf PTE read hitting L3
  // Unhideable pipeline bubble per blocking walk when translation is NOT
  // predicted: the A-operand stream stalls the array until the walk's
  // address resolves; address-ahead issue recovers all but this residue.
  // Calibrated against Fig. 6's 6.3-6.5% plateau.
  sim::TimePs pte_exposed_bubble_ps = 6'500;
  // Sustained fraction of DDR pin bandwidth (row misses, refresh, rw
  // turnaround). Total effective supply = channels * bw * efficiency.
  double dram_efficiency = 0.72;
  // Mesh positions of the DDR controllers (edge nodes), for NoC fill flows.
  std::array<noc::NodeId, 4> dram_node_ids{0, 3, 12, 15};
  // Without stash+lock, tile reads are latency-bound DRAM round trips; the
  // DMA queues are sized to the array they feed, so sustainable bandwidth
  // is (PEs * inflight-bytes-per-PE) / loaded round trip.
  unsigned dma_inflight_bytes_per_pe = 32;
  double dram_row_miss_factor = 1.5;  // strided tile rows reopen DRAM rows

  // ---- derived quantities ----
  double mmae_peak_macs(sa::Precision p) const noexcept {
    return mmae.frequency_hz * mmae.sa.rows * mmae.sa.cols * sa::simd_ways(p);
  }
  double mmae_peak_flops(sa::Precision p) const noexcept {
    return 2.0 * mmae_peak_macs(p);
  }
  double cpu_peak_flops(sa::Precision p) const noexcept {
    return 2.0 * cpu.frequency_hz * cpu.kernels.macs_per_cycle(p);
  }
  std::uint64_t l3_total_bytes() const noexcept {
    return static_cast<std::uint64_t>(ccm_count) * ccm.l3.size_bytes;
  }
  double dram_total_bandwidth() const noexcept {
    return dram_channels * dram.bandwidth_bytes_per_second;
  }
  // Per-direction NoC link bandwidth (256-bit @ 2 GHz = 64 GB/s).
  double node_link_bandwidth() const noexcept {
    return link_load.link_bytes_per_second;
  }
  // The detailed machine's interconnect backend, derived from the mesh
  // geometry so the icnt trait can never desynchronize from it.
  noc::IcntConfig icnt_config() const noexcept {
    noc::IcntConfig c;
    c.kind = icnt;
    c.width = mesh.width;
    c.height = mesh.height;
    c.hop_ps = noc_hop_ps;
    c.flit_bytes = mesh.flit_bytes;
    c.header_bytes = mesh.header_bytes;
    c.cycle_ps = mesh.cycle_ps;
    return c;
  }

  // The paper's configuration.
  static SystemConfig maco_default();
};

}  // namespace maco::core
