#include "core/gemm_plus.hpp"

#include <algorithm>
#include <array>

namespace maco::core {

GemmPlusResult schedule_gemm_plus(const std::vector<GemmPlusStage>& stages,
                                  bool overlap) {
  GemmPlusResult result;
  if (stages.empty()) return result;

  for (const auto& stage : stages) {
    result.mmae_busy_ps += stage.gemm_ps;
    result.cpu_busy_ps += stage.cpu_post_ps;
  }

  if (!overlap) {
    // Serial: stash, then GEMM, then post-processing, for every stage.
    for (const auto& stage : stages) {
      result.total_ps += stage.stash_ps + stage.gemm_ps + stage.cpu_post_ps;
    }
    result.overlap_fraction = 0.0;
    return result;
  }

  // Software pipeline (Fig. 5(c)). Three serialized resources:
  //   MMAE  - runs the GEMMs back to back,
  //   CPU   - runs each stage's post-op after its GEMM completes,
  //   stash - the next stage's prefetch rides under the current GEMM.
  // Output buffers are double-banked: the MMAE writes stage s into bank
  // s%2, which it may not overwrite (stage s+2) until the CPU has consumed
  // stage s's post-op.
  sim::TimePs mmae_t = stages.front().stash_ps;  // first operands must land
  sim::TimePs cpu_t = 0;
  std::array<sim::TimePs, 2> bank_free{0, 0};
  for (std::size_t s = 0; s < stages.size(); ++s) {
    const std::size_t bank = s % 2;
    const sim::TimePs start = std::max(mmae_t, bank_free[bank]);
    const sim::TimePs end = start + stages[s].gemm_ps;
    // Next stage's stash overlaps this GEMM (exposed only if longer).
    const sim::TimePs next_stash =
        s + 1 < stages.size() ? stages[s + 1].stash_ps : 0;
    mmae_t = std::max(end, start + next_stash);
    // The CPU is one resource: post-ops serialize on it.
    const sim::TimePs cpu_start = std::max(end, cpu_t);
    cpu_t = cpu_start + stages[s].cpu_post_ps;
    bank_free[bank] = cpu_t;
  }
  result.total_ps = std::max(mmae_t, cpu_t);

  // CPU work not hidden under MMAE activity: the tail past the last GEMM.
  const sim::TimePs exposed_cpu =
      result.total_ps > mmae_t ? result.total_ps - mmae_t : 0;
  result.overlap_fraction =
      result.cpu_busy_ps
          ? static_cast<double>(result.cpu_busy_ps -
                                std::min(exposed_cpu, result.cpu_busy_ps)) /
                static_cast<double>(result.cpu_busy_ps)
          : 1.0;
  return result;
}

}  // namespace maco::core
