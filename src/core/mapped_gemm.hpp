// MappedGemmRunner: the paper's Fig. 5 multi-node GEMM mapping as a
// library feature over the detailed system.
//
// partition_gemm() splits C into per-node 2D blocks; this runner turns the
// plan into per-node MPAIS programs and drives them to completion:
//
//   per node:  MA_STASH  A row-slab + B column-panel into L3 (locked)
//              MA_MOVE   pack the strided B panel into a dense scratch
//              per C tile:
//                MA_MOVE  pack the C block          (strided -> dense)
//                MA_CFG   GEMM on dense operands    (A slab is naturally
//                                                    dense: full rows)
//                MA_MOVE  unpack the updated block  (dense -> strided)
//
// exactly the packing discipline real BLAS/HPL uses, expressed in the
// paper's data-migration instructions. Tiles are dispatched in waves that
// respect the 8-entry MTQ; all nodes run concurrently within a wave.
#pragma once

#include <cstdint>
#include <vector>

#include "core/gemm_mapper.hpp"
#include "core/maco_system.hpp"

namespace maco::core {

struct MappedGemmOptions {
  unsigned nodes = 0;  // 0 => all nodes of the system
  std::uint64_t tile_rows = 1024;  // first-level tiling <Tr, Tc>
  std::uint64_t tile_cols = 1024;
  bool stash_lock = true;   // Section IV.B prefetch+lock before compute
  bool accumulate = true;   // C += A*B (false: C = A*B)
};

struct MappedGemmResult {
  bool ok = false;
  unsigned nodes_used = 0;
  std::uint64_t gemm_tasks = 0;
  std::uint64_t move_tasks = 0;
  std::uint64_t stash_tasks = 0;
  std::uint64_t waves = 0;
  sim::TimePs makespan_ps = 0;     // first dispatch to last completion
  std::uint64_t total_dma_bytes = 0;
  cpu::ExceptionType first_exception = cpu::ExceptionType::kNone;
};

class MappedGemmRunner {
 public:
  explicit MappedGemmRunner(MacoSystem& system) : system_(system) {}

  // C (m×n) [+]= A (m×k) * B (k×n); all three dense in `process`'s space.
  MappedGemmResult run(Process& process, const vm::MatrixDesc& a,
                       const vm::MatrixDesc& b, const vm::MatrixDesc& c,
                       const MappedGemmOptions& options = {});

 private:
  struct NodeScratch {
    vm::MatrixDesc b_panel;  // dense k × node_cols
    vm::MatrixDesc c_block;  // dense tile_rows × tile_cols
  };

  MacoSystem& system_;
};

}  // namespace maco::core
