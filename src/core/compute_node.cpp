#include "core/compute_node.hpp"

namespace maco::core {

ComputeNode::ComputeNode(sim::SimEngine& engine, int node_id,
                         const cpu::CpuConfig& cpu_config,
                         const mmae::MmaeConfig& mmae_config,
                         mmae::MemoryBackend& backend,
                         mem::PhysicalMemory& memory,
                         vm::MemoryLatencyOracle& walk_memory)
    : id_(node_id) {
  cpu_ = std::make_unique<cpu::CpuCore>(engine, node_id, cpu_config,
                                        walk_memory);
  mmae_ = std::make_unique<mmae::AcceleratorController>(
      engine, node_id, mmae_config, backend, memory, *cpu_);
  cpu_->attach_accelerator(mmae_.get());
}

}  // namespace maco::core
