// Multi-node GEMM mapping (paper Section IV.B, Fig. 5).
//
// The original matrices are tiled and the resulting C sub-matrices are
// assigned to compute nodes: node (gr, gc) of a gr×gc grid owns the C tiles
// whose (row-block, col-block) falls in its stripe. A row of the grid shares
// A panels; a column shares B panels — the stash requests each node issues
// therefore overlap, and the CCM's L3 serves the shared panels once.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "sa/latency_model.hpp"
#include "vm/layout.hpp"

namespace maco::core {

struct NodePlan {
  int node = 0;
  std::vector<vm::TileDesc> c_tiles;  // output tiles this node computes
  std::uint64_t macs = 0;             // total useful work assigned

  // The A rows / B cols this node touches (for stash planning).
  std::uint64_t row_begin = 0, row_end = 0;
  std::uint64_t col_begin = 0, col_end = 0;
};

// Picks the most square gr×gc factorization of `nodes` (gr <= gc).
std::pair<unsigned, unsigned> choose_grid(unsigned nodes);

// Partitions C (m×n, K-depth k) over `nodes` compute nodes in 2D blocks of
// at most tile_rows×tile_cols (first-level tiles). Every element of C is
// covered exactly once; work imbalance is at most one tile row/column.
std::vector<NodePlan> partition_gemm(std::uint64_t m, std::uint64_t n,
                                     std::uint64_t k, unsigned nodes,
                                     std::uint64_t tile_rows = 1024,
                                     std::uint64_t tile_cols = 1024);

// Largest per-node MAC count over the plan (the parallel critical path).
std::uint64_t critical_path_macs(const std::vector<NodePlan>& plan);

}  // namespace maco::core
