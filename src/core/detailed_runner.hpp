// Detailed-fidelity GEMM execution: TimingOptions in, SystemTiming out.
//
// The adapter between the experiment API and MacoSystem: it instantiates
// the whole chip, programs one independent GEMM per active node through the
// real MPAIS path (MA_CFG -> MTQ -> STQ -> DMA -> systolic array -> memory,
// with real data) and condenses the per-node TaskReports into the same
// SystemTiming record the analytic SystemTimingModel produces, so the two
// fidelities are interchangeable behind exp::ExecutionBackend.
//
// Detailed runs are orders of magnitude slower than the closed forms, so
// the entry point enforces the analytic-only knobs and a size cap with
// typed diagnostics instead of silently mis-modeling or running for hours.
// Beyond the cap, run_detailed_tiles executes an arbitrary subset of
// first-level tiles (each a small GEMM task) — the measurement primitive of
// the fidelity=sampled estimator in src/sampling/, which lifts the cap by
// simulating a stratified sample of the tile grid instead of all of it.
#pragma once

#include <vector>

#include "core/config.hpp"
#include "core/timing_model.hpp"
#include "isa/params.hpp"
#include "obs/observation.hpp"

namespace maco::core {

class MacoSystem;
struct Process;

// Largest per-dimension GEMM size run_detailed_gemm accepts (a full
// detailed node at this size already simulates hundreds of inner tiles).
inline constexpr std::uint64_t kDetailedMaxDim = 2048;

// Throws std::invalid_argument when `options` asks for something the
// detailed machine cannot honor (cooperative splitting, stash_lock=false,
// tlb/overlap baseline overrides, a dimension beyond kDetailedMaxDim).
// Execution is driven through os::Scheduler (one single-task job per
// active node), so the returned SystemTiming carries the OS counters in
// `timing.os`.
//
// With a non-null `observation` the run additionally captures what its
// want_* flags ask for — registry counters and NoC traffic
// (want_counters, meaningful under config.profile=counters) and per-node
// MMAE task spans plus OS job spans (want_trace). Capture happens after
// the engine quiesces and never changes the returned timing.
SystemTiming run_detailed_gemm(const SystemConfig& config,
                               const TimingOptions& options,
                               obs::RunObservation* observation = nullptr);

// Allocates the three operand matrices of one GEMM task in `process`
// (shifted into their pages by the byte offsets), writes seeded random
// data, and returns the MA_CFG parameter block — without issuing it.
// Dispatch belongs to the caller: directly through a node's CPU, or as an
// os::GemmTask under the scheduler (run_detailed_gemm, serve's detailed
// batch-cost oracle).
isa::GemmParams build_detailed_gemm_task(
    MacoSystem& system, Process& process, const sa::TileShape& shape,
    const TimingOptions& options, std::uint64_t a_page_offset,
    std::uint64_t b_page_offset, std::uint64_t c_page_offset,
    std::uint64_t data_seed);

// One first-level tile to execute as its own GEMM task. The in-page byte
// offsets reproduce where the tile's operand sub-blocks would start inside
// the full matrices, so translation behaviour (page touches, sTLB/mATLB
// hits) varies with tile position exactly as it would in a monolithic run.
struct DetailedTileJob {
  sa::TileShape shape;
  std::uint64_t a_page_offset = 0;  // bytes, < 4 KiB, 8-byte aligned
  std::uint64_t b_page_offset = 0;
  std::uint64_t c_page_offset = 0;
  std::uint64_t data_seed = 0;      // operand RNG stream
  // Identical tasks issued (and discarded) before the measured one, so the
  // measurement sees warm TLB/PTW/L3 state — the steady state an interior
  // tile of a long mapped run executes in (the stash+lock discipline keeps
  // panels L3-resident between tiles).
  unsigned warmup_tasks = 1;
};

// What the measured (post-warmup) task of one tile job reported.
struct DetailedTileMeasurement {
  sim::TimePs span_ps = 0;               // steady-state task span
  sim::TimePs sa_busy_ps = 0;
  sim::TimePs translation_stall_ps = 0;
  std::uint64_t macs = 0;
  std::uint64_t dma_bytes = 0;
  std::uint64_t blocking_walks = 0;
  std::uint64_t matlb_hits = 0;
};

// Executes an arbitrary set of tile GEMMs on the detailed system and
// returns one measurement per job, in job order. Jobs run `concurrent` at
// a time (one per node of a fresh MacoSystem instantiation, so co-scheduled
// tiles contend for the NoC/CCM/DRAM like a real mapped run); `workers`
// batches may be simulated on parallel host threads (each batch owns its
// system — nothing is shared). Throws std::invalid_argument on unsupported
// options or a tile dimension beyond kDetailedMaxDim.
std::vector<DetailedTileMeasurement> run_detailed_tiles(
    const SystemConfig& config, const TimingOptions& options,
    const std::vector<DetailedTileJob>& jobs, unsigned concurrent = 1,
    unsigned workers = 1);

}  // namespace maco::core
