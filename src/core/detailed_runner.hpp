// Detailed-fidelity GEMM execution: TimingOptions in, SystemTiming out.
//
// The adapter between the experiment API and MacoSystem: it instantiates
// the whole chip, programs one independent GEMM per active node through the
// real MPAIS path (MA_CFG -> MTQ -> STQ -> DMA -> systolic array -> memory,
// with real data) and condenses the per-node TaskReports into the same
// SystemTiming record the analytic SystemTimingModel produces, so the two
// fidelities are interchangeable behind exp::ExecutionBackend.
//
// Detailed runs are orders of magnitude slower than the closed forms, so
// the entry point enforces the analytic-only knobs and a size cap with
// typed diagnostics instead of silently mis-modeling or running for hours.
#pragma once

#include "core/config.hpp"
#include "core/timing_model.hpp"

namespace maco::core {

// Largest per-dimension GEMM size run_detailed_gemm accepts (a full
// detailed node at this size already simulates hundreds of inner tiles).
inline constexpr std::uint64_t kDetailedMaxDim = 2048;

// Throws std::invalid_argument when `options` asks for something the
// detailed machine cannot honor (cooperative splitting, stash_lock=false,
// tlb/overlap baseline overrides, a dimension beyond kDetailedMaxDim).
SystemTiming run_detailed_gemm(const SystemConfig& config,
                               const TimingOptions& options);

}  // namespace maco::core
