#include "core/gemm_mapper.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/bits.hpp"

namespace maco::core {

std::pair<unsigned, unsigned> choose_grid(unsigned nodes) {
  MACO_ASSERT_MSG(nodes > 0, "grid for zero nodes");
  unsigned best_r = 1;
  for (unsigned r = 1; r * r <= nodes; ++r) {
    if (nodes % r == 0) best_r = r;
  }
  return {best_r, nodes / best_r};
}

std::vector<NodePlan> partition_gemm(std::uint64_t m, std::uint64_t n,
                                     std::uint64_t k, unsigned nodes,
                                     std::uint64_t tile_rows,
                                     std::uint64_t tile_cols) {
  MACO_ASSERT(m > 0 && n > 0 && k > 0 && nodes > 0);
  const auto [grid_rows, grid_cols] = choose_grid(nodes);

  // Row/column block boundaries: as even as possible.
  auto boundaries = [](std::uint64_t extent, unsigned parts) {
    std::vector<std::uint64_t> b(parts + 1, 0);
    for (unsigned i = 0; i <= parts; ++i) {
      b[i] = extent * i / parts;
    }
    return b;
  };
  const auto row_b = boundaries(m, grid_rows);
  const auto col_b = boundaries(n, grid_cols);

  std::vector<NodePlan> plans;
  plans.reserve(nodes);
  for (unsigned gr = 0; gr < grid_rows; ++gr) {
    for (unsigned gc = 0; gc < grid_cols; ++gc) {
      NodePlan plan;
      plan.node = static_cast<int>(gr * grid_cols + gc);
      plan.row_begin = row_b[gr];
      plan.row_end = row_b[gr + 1];
      plan.col_begin = col_b[gc];
      plan.col_end = col_b[gc + 1];
      for (std::uint64_t r = plan.row_begin; r < plan.row_end;
           r += tile_rows) {
        const std::uint64_t rows = std::min(tile_rows, plan.row_end - r);
        for (std::uint64_t c = plan.col_begin; c < plan.col_end;
             c += tile_cols) {
          const std::uint64_t cols = std::min(tile_cols, plan.col_end - c);
          plan.c_tiles.push_back(vm::TileDesc{r, c, rows, cols});
          plan.macs += rows * cols * k;
        }
      }
      plans.push_back(std::move(plan));
    }
  }
  return plans;
}

std::uint64_t critical_path_macs(const std::vector<NodePlan>& plan) {
  std::uint64_t peak = 0;
  for (const auto& p : plan) peak = std::max(peak, p.macs);
  return peak;
}

}  // namespace maco::core
