#include "core/timing_model.hpp"

#include <algorithm>
#include <cmath>

#include "core/gemm_mapper.hpp"
#include "noc/link_load_model.hpp"
#include "sa/systolic_array.hpp"
#include "util/assert.hpp"
#include "util/bits.hpp"
#include "vm/matlb.hpp"
#include "vm/tlb.hpp"

namespace maco::core {

SystemTimingModel::SystemTimingModel(const SystemConfig& config)
    : config_(config) {}

unsigned SystemTimingModel::effective_ways(
    const TimingOptions& options) const noexcept {
  return options.simd_ways_override ? options.simd_ways_override
                                    : sa::simd_ways(options.precision);
}

sa::SaConfig SystemTimingModel::sa_config_for(
    const TimingOptions& options) const noexcept {
  sa::SaConfig sa = config_.mmae.sa;
  sa.precision = options.precision;
  if (options.sa_rows_override) sa.rows = options.sa_rows_override;
  if (options.sa_cols_override) sa.cols = options.sa_cols_override;
  return sa;
}

std::uint64_t SystemTimingModel::aggregate_sa_cycles(
    const sa::TileShape& shape, const TimingOptions& options) const {
  const std::uint64_t i = options.inner;
  const sa::SaConfig sa = sa_config_for(options);
  const std::uint64_t ways = effective_ways(options);
  const std::uint64_t p_rows = sa.rows;
  const std::uint64_t p_cols = sa.cols;

  // Same closed form as sa::compute_sa_timing, parameterized on `ways` so
  // the Fig. 8 PE normalization (simd_ways_override = 1) can be applied;
  // tests assert agreement with the validated model when ways match.
  auto tile_cycles = [&](std::uint64_t m, std::uint64_t n,
                         std::uint64_t k) -> std::uint64_t {
    const std::uint64_t kb = util::ceil_div(k, p_rows);
    const std::uint64_t nb = util::ceil_div(n, p_cols);
    std::uint64_t slots = util::ceil_div(m, ways);
    if (kb > 1 && nb * slots < p_rows) {
      slots = util::ceil_div(p_rows, nb);  // C-buffer RAW hazard padding
    }
    const std::uint64_t stream =
        kb * nb * slots + (p_rows - 1) + (p_cols - 1);
    const std::uint64_t preload =
        sa.double_buffered_b ? p_rows : kb * nb * p_rows;
    return stream + preload;
  };

  // Tile the shape into inner³ blocks; at most 8 distinct block shapes.
  auto split = [&](std::uint64_t extent) {
    return std::pair<std::uint64_t, std::uint64_t>{extent / i, extent % i};
  };
  const auto [fm, rm] = split(shape.m);
  const auto [fn, rn] = split(shape.n);
  const auto [fk, rk] = split(shape.k);

  std::uint64_t total = 0;
  for (const auto& [count_m, dim_m] :
       {std::pair{fm, i}, std::pair{std::uint64_t(rm ? 1 : 0), rm}}) {
    for (const auto& [count_n, dim_n] :
         {std::pair{fn, i}, std::pair{std::uint64_t(rn ? 1 : 0), rn}}) {
      for (const auto& [count_k, dim_k] :
           {std::pair{fk, i}, std::pair{std::uint64_t(rk ? 1 : 0), rk}}) {
        const std::uint64_t count = count_m * count_n * count_k;
        if (count == 0) continue;
        total += count * tile_cycles(dim_m, dim_n, dim_k);
      }
    }
  }
  return total;
}

TranslationEstimate SystemTimingModel::estimate_translation(
    const TimingOptions& options, const sa::TileShape& node_shape) const {
  TranslationEstimate estimate;
  const std::uint64_t i = options.inner;
  const std::uint64_t elem = sa::element_bytes(options.precision);
  const std::size_t tlb_entries =
      options.tlb_entries_override ? options.tlb_entries_override
                                   : config_.cpu.mmu.l2_tlb_entries;

  // Synthetic address space: bases far apart so pages never alias.
  const vm::MatrixDesc a{0x100000000000ull, node_shape.m, node_shape.k, elem,
                         0};
  const vm::MatrixDesc b{0x200000000000ull, node_shape.k, node_shape.n, elem,
                         0};
  const vm::MatrixDesc c{0x300000000000ull, node_shape.m, node_shape.n, elem,
                         0};

  vm::Tlb stlb("estimate.stlb", tlb_entries);
  const vm::Asid asid = 1;

  std::uint64_t tiles_seen = 0;
  std::uint64_t measured_tiles = 0;
  std::uint64_t measured_pages = 0;
  std::uint64_t measured_walks = 0;

  // Steady-state measurement: compulsory first-touch walks happen once per
  // page over the whole GEMM (and are pre-walked by the stash stream), so
  // the cost that matters is the *recurring* miss rate. Small shapes are
  // warmed with one complete sweep and measured over a second; shapes too
  // large to sweep within the budget are measured mid-first-pass, where
  // recurring misses dominate anyway.
  const std::uint64_t total_tiles = util::ceil_div(node_shape.m, i) *
                                    util::ceil_div(node_shape.n, i) *
                                    util::ceil_div(node_shape.k, i);
  constexpr std::uint64_t kTileCap = 3072;
  const bool two_sweeps = total_tiles <= kTileCap;
  const std::uint64_t warmup = two_sweeps ? total_tiles : kTileCap / 2;
  const std::uint64_t budget =
      two_sweeps ? 2 * total_tiles : kTileCap;

  auto touch_region = [&](const vm::MatrixDesc& m, const vm::TileDesc& t,
                          bool measure) {
    const auto pages = vm::predict_page_entries(m, t, options.page_bytes);
    for (const vm::VirtAddr va : pages) {
      const std::uint64_t vpn = va / options.page_bytes;
      if (measure) ++measured_pages;
      if (!stlb.lookup(asid, vpn)) {
        stlb.insert(asid, vpn, vpn);  // identity fill: only reach matters
        if (measure) ++measured_walks;
      }
    }
  };

  bool done = false;
  for (int sweep = 0; sweep < 2 && !done; ++sweep) {
    for (std::uint64_t mm = 0; mm < node_shape.m && !done; mm += i) {
      const std::uint64_t mrows = std::min(i, node_shape.m - mm);
      for (std::uint64_t nn = 0; nn < node_shape.n && !done; nn += i) {
        const std::uint64_t ncols = std::min(i, node_shape.n - nn);
        for (std::uint64_t kk = 0; kk < node_shape.k && !done; kk += i) {
          const std::uint64_t kdepth = std::min(i, node_shape.k - kk);
          const bool measure = tiles_seen >= warmup;
          touch_region(a, vm::TileDesc{mm, kk, mrows, kdepth}, measure);
          touch_region(b, vm::TileDesc{kk, nn, kdepth, ncols}, measure);
          if (kk == 0) {
            touch_region(c, vm::TileDesc{mm, nn, mrows, ncols}, measure);
          }
          if (measure) ++measured_tiles;
          ++tiles_seen;
          if (tiles_seen >= budget) done = true;
        }
      }
    }
  }

  if (measured_tiles == 0) return estimate;
  estimate.pages_per_tile =
      static_cast<double>(measured_pages) / static_cast<double>(measured_tiles);
  estimate.walks_per_tile =
      static_cast<double>(measured_walks) / static_cast<double>(measured_tiles);

  // Per-walk leaf-PTE latency. Engines that walk through the host MMU's
  // page-walk caches stay warm; a standalone walker is always cold; by
  // default the leaf is cold once walks recur enough that the data stream
  // evicts the page-table lines from L3.
  sim::TimePs per_walk;
  if (options.pte_always_cold) {
    per_walk = config_.pte_cold_latency_ps;
  } else if (options.pte_walks_warm) {
    per_walk = config_.pte_warm_latency_ps;
  } else {
    per_walk = estimate.walks_per_tile > 4.0 ? config_.pte_cold_latency_ps
                                             : config_.pte_warm_latency_ps;
  }
  estimate.stall_per_tile_ps = static_cast<sim::TimePs>(
      estimate.walks_per_tile * static_cast<double>(per_walk));
  return estimate;
}

SystemTiming SystemTimingModel::run(const TimingOptions& options) const {
  MACO_ASSERT(options.active_nodes >= 1 &&
              options.active_nodes <= config_.node_count);
  MACO_ASSERT(options.shape.m > 0 && options.shape.n > 0 &&
              options.shape.k > 0);

  // Per-node shape.
  sa::TileShape node_shape = options.shape;
  if (options.cooperative && options.active_nodes > 1) {
    const auto [gr, gc] = choose_grid(options.active_nodes);
    node_shape.m = util::ceil_div(options.shape.m, gr);
    node_shape.n = util::ceil_div(options.shape.n, gc);
  }

  const std::uint64_t i = options.inner;
  const unsigned ways = effective_ways(options);
  const std::uint64_t elem = sa::element_bytes(options.precision);
  const double mmae_hz = config_.mmae.frequency_hz;
  const sa::SaConfig sa = sa_config_for(options);
  const double peak_macs_node = mmae_hz * sa.rows * sa.cols * ways;

  // ---- Compute time ----
  const std::uint64_t total_cycles = aggregate_sa_cycles(node_shape, options);
  const double compute_ps_total =
      static_cast<double>(total_cycles) * 1e12 / mmae_hz;
  const std::uint64_t n_tiles = util::ceil_div(node_shape.m, i) *
                                util::ceil_div(node_shape.n, i) *
                                util::ceil_div(node_shape.k, i);
  const double compute_tile_ps = compute_ps_total / static_cast<double>(n_tiles);

  // ---- DMA bytes ----
  const std::uint64_t k_tiles = util::ceil_div(node_shape.k, i);
  const double bytes_tile =
      static_cast<double>(elem) *
      (static_cast<double>(i) * i +      // A tile
       static_cast<double>(i) * i +      // B tile
       2.0 * i * i / static_cast<double>(k_tiles));  // C load+store amortized

  // ---- Translation behaviour ----
  const TranslationEstimate translation =
      estimate_translation(options, node_shape);

  // ---- L3 / DRAM sourcing ----
  // Panel working set per node vs its L3 share decides how much of the tile
  // traffic re-streams from DRAM.
  const double panel_ws =
      static_cast<double>(elem) *
      (static_cast<double>(options.tile_rows) * node_shape.k +
       static_cast<double>(node_shape.k) * options.tile_cols +
       static_cast<double>(options.tile_rows) * options.tile_cols);
  const double l3_share = static_cast<double>(config_.l3_total_bytes()) /
                          options.active_nodes;
  double dram_fraction;
  if (!options.use_stash_lock) {
    // Without the stash+lock mapping scheme nothing guarantees residency:
    // tile loads stream from DRAM (compulsory + conflict).
    dram_fraction = 1.0;
  } else if (panel_ws <= l3_share) {
    // Panels locked in L3: only compulsory traffic reaches DRAM.
    const double total_l3_traffic = bytes_tile * static_cast<double>(n_tiles);
    const double compulsory =
        static_cast<double>(elem) *
        (static_cast<double>(node_shape.m) * node_shape.k +
         static_cast<double>(node_shape.k) * node_shape.n +
         2.0 * node_shape.m * node_shape.n);
    dram_fraction = std::min(1.0, compulsory / total_l3_traffic);
  } else {
    dram_fraction = std::clamp(1.0 - l3_share / panel_ws, 0.0, 1.0);
  }

  // ---- Fixed-point on tile time with NoC + DRAM contention ----
  double link_bw =
      config_.node_link_bandwidth() * options.dma_bandwidth_scale * 0.9;
  if (!options.use_stash_lock) {
    // Without stash+lock tile reads are DRAM round trips; the DMA queues
    // (sized to the array they feed) bound the outstanding bytes, so the
    // sustainable rate is inflight / loaded latency (Little's law).
    const double inflight_bytes = static_cast<double>(
        config_.dma_inflight_bytes_per_pe * sa.rows * sa.cols);
    const double loaded_rt_ps =
        static_cast<double>(config_.dram.access_latency_ps) *
            config_.dram_row_miss_factor +
        8.0 * static_cast<double>(config_.noc_hop_ps) + 10'000.0;
    link_bw = std::min(link_bw, inflight_bytes / (loaded_rt_ps * 1e-12));
  }
  double tile_time = std::max(compute_tile_ps, 1.0);
  double dma_tile = 0.0;
  for (int iter = 0; iter < 6; ++iter) {
    const double byte_rate = bytes_tile / (tile_time * 1e-12);  // B/s

    // NoC: responses flow from every L3 slice (address-interleaved) to each
    // active node, and DDR fills flow from the edge controllers into the
    // home slices.
    noc::LinkLoadModel loads(config_.link_load);
    for (unsigned nid = 0; nid < options.active_nodes; ++nid) {
      for (unsigned slice = 0; slice < config_.ccm_count; ++slice) {
        loads.add_flow(static_cast<noc::NodeId>(slice),
                       static_cast<noc::NodeId>(nid),
                       byte_rate / config_.ccm_count);
      }
    }
    const double fill_rate_per_slice =
        byte_rate * dram_fraction * options.active_nodes / config_.ccm_count;
    for (unsigned slice = 0; slice < config_.ccm_count; ++slice) {
      const noc::NodeId ddr =
          config_.dram_node_ids[slice % config_.dram_node_ids.size()];
      loads.add_flow(ddr, static_cast<noc::NodeId>(slice),
                     fill_rate_per_slice);
    }
    const double noc_util = loads.max_utilization() *
                            config_.node_link_bandwidth() / link_bw;
    const double noc_scale = noc_util > 1.0 ? 1.0 / noc_util : 1.0;

    const double t_noc = bytes_tile / (link_bw * noc_scale) * 1e12;
    // Effective DDR supply per active node (pin bandwidth derated by row
    // miss / refresh / turnaround losses).
    const double dram_bw_node = config_.dram_total_bandwidth() *
                                config_.dram_efficiency /
                                options.active_nodes;
    const double t_dram =
        dram_fraction > 0.0
            ? bytes_tile * dram_fraction / dram_bw_node * 1e12
            : 0.0;
    // Without stash, first-touch DRAM latency is exposed per burst row.
    const double latency_exposure =
        options.use_stash_lock
            ? 0.0
            : 2.0 * static_cast<double>(config_.dram.access_latency_ps) *
                  dram_fraction;

    dma_tile = std::max(t_noc, t_dram) + latency_exposure;

    // Translation. With mATLB the walks run ahead during the previous
    // tile's compute slack; only overflow work leaks onto the critical path
    // (and the walker pipelines it, hence the 0.1 residue). Without mATLB
    // each walk blocks the DMA stream (serialized into dma_tile) and leaves
    // an unhideable issue bubble on the array.
    double translation_exposed = 0.0;
    double compute_eff = compute_tile_ps;
    if (!options.use_matlb) {
      const double stall = static_cast<double>(translation.stall_per_tile_ps);
      // The array-issue bubble applies to standalone walkers whose misses
      // halt the operand stream; engines translating through the host MMU's
      // page-walk caches replay in-pipeline and only pay the stream stall.
      const double bubbles =
          options.pte_walks_warm
              ? 0.0
              : translation.walks_per_tile *
                    static_cast<double>(config_.pte_exposed_bubble_ps);
      translation_exposed = bubbles;
      dma_tile += stall;
      compute_eff += bubbles;
    } else {
      const double hidden_budget = std::max(0.0, compute_tile_ps - dma_tile);
      const double walk_work =
          static_cast<double>(translation.stall_per_tile_ps);
      translation_exposed = std::max(0.0, walk_work - hidden_budget) * 0.1;
      dma_tile += translation_exposed;
    }

    // Compute/DMA overlap: a loosely-coupled engine hides min(dma, compute);
    // tighter coupling (engine_overlap < 1) exposes part of the DMA.
    const double o = options.engine_overlap;
    double t = std::max(compute_eff, o * dma_tile) + (1.0 - o) * dma_tile;
    t += static_cast<double>(options.sync_overhead_per_tile_ps);
    if (std::abs(t - tile_time) < 1.0) {
      tile_time = t;
      break;
    }
    tile_time = t;
  }

  // ---- Assemble ----
  SystemTiming result;
  result.translation = translation;
  const double span_ps = tile_time * static_cast<double>(n_tiles);
  const std::uint64_t macs_node = node_shape.macs();
  const double eff =
      static_cast<double>(macs_node) / (span_ps * 1e-12) / peak_macs_node;

  result.nodes.resize(options.active_nodes);
  for (auto& node : result.nodes) {
    node.span_ps = static_cast<sim::TimePs>(span_ps);
    node.compute_ps = static_cast<sim::TimePs>(compute_ps_total);
    node.dma_tile_ps = static_cast<sim::TimePs>(dma_tile);
    node.translation_exposed_ps = static_cast<sim::TimePs>(
        static_cast<double>(translation.stall_per_tile_ps) *
        static_cast<double>(n_tiles));
    node.macs = macs_node;
    node.efficiency = eff;
    node.gflops = 2.0 * static_cast<double>(macs_node) / (span_ps * 1e-12) /
                  1e9;
  }
  result.mean_efficiency = eff;
  result.makespan_ps = static_cast<sim::TimePs>(span_ps);
  // Cooperative: aggregate covers the whole original GEMM; independent:
  // each node completed its own copy.
  const double total_macs =
      options.cooperative
          ? static_cast<double>(options.shape.macs())
          : static_cast<double>(macs_node) * options.active_nodes;
  result.total_gflops = 2.0 * total_macs / (span_ps * 1e-12) / 1e9;
  return result;
}

SystemTiming SystemTimingModel::run_layers(
    const std::vector<sa::TileShape>& layers, TimingOptions options) const {
  MACO_ASSERT(!layers.empty());
  options.cooperative = true;
  double total_ps = 0.0;
  double total_flops = 0.0;
  SystemTiming last;
  for (const sa::TileShape& layer : layers) {
    options.shape = layer;
    last = run(options);
    total_ps += static_cast<double>(last.makespan_ps);
    total_flops += 2.0 * static_cast<double>(layer.macs());
  }
  SystemTiming result = last;
  result.makespan_ps = static_cast<sim::TimePs>(total_ps);
  result.total_gflops = total_flops / (total_ps * 1e-12) / 1e9;
  const sa::SaConfig sa = sa_config_for(options);
  const double peak_total = 2.0 * config_.mmae.frequency_hz * sa.rows *
                            sa.cols * effective_ways(options) *
                            options.active_nodes;
  result.mean_efficiency = result.total_gflops * 1e9 / peak_total;
  return result;
}

}  // namespace maco::core
