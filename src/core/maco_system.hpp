// MacoSystem: the whole chip, detailed mode.
//
// Compute nodes, distributed L3/CCM slices, DRAM channels and the physical
// backing store wired together. The memory backend charges NoC hop latency
// and per-node injection-port serialization plus the CCM/DRAM costs for
// every cache-line transfer; the flit-level mesh is instantiated alongside
// for validation traffic. This mode runs real data end-to-end (MPAIS program
// -> MTQ/STQ -> DMA -> systolic array -> memory) and is exercised by the
// integration tests and examples; paper-scale sweeps use
// core::SystemTimingModel instead.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/compute_node.hpp"
#include "core/config.hpp"
#include "mem/directory.hpp"
#include "mem/dram.hpp"
#include "mem/physical_memory.hpp"
#include "noc/icnt.hpp"
#include "noc/link_load_model.hpp"
#include "noc/mesh.hpp"
#include "sa/host_matrix.hpp"
#include "sim/engine.hpp"
#include "vm/page_table.hpp"

namespace maco::core {

// A simulated process: ASID + address space.
struct Process {
  vm::Asid asid = 0;
  std::unique_ptr<vm::AddressSpace> space;
};

class MacoSystem;

// Timing+functional memory path used by the MMAEs' DMA engines.
class SystemMemoryBackend final : public mmae::MemoryBackend {
 public:
  explicit SystemMemoryBackend(MacoSystem& system) : system_(system) {}

  sim::TimePs read(int node, vm::PhysAddr pa, void* out, std::uint32_t bytes,
                   sim::TimePs start) override;
  sim::TimePs write(int node, vm::PhysAddr pa, const void* data,
                    std::uint32_t bytes, sim::TimePs start) override;
  sim::TimePs stash(int node, vm::PhysAddr pa, std::uint32_t bytes, bool lock,
                    sim::TimePs start) override;

 private:
  sim::TimePs transfer(int node, vm::PhysAddr pa, std::uint32_t bytes,
                       mem::CcmReqType type, bool lock, sim::TimePs start);
  MacoSystem& system_;
};

// Page-table walks issued by a node's MMU: PTE reads go through the L3/CCM
// path like any other line, so page-table locality emerges naturally.
class WalkMemoryOracle final : public vm::MemoryLatencyOracle {
 public:
  WalkMemoryOracle(MacoSystem& system, int node)
      : system_(system), node_(node) {}
  sim::TimePs read_latency(vm::PhysAddr addr, std::uint32_t bytes) override;

 private:
  MacoSystem& system_;
  int node_;
};

class MacoSystem {
 public:
  explicit MacoSystem(const SystemConfig& config = SystemConfig::maco_default());
  ~MacoSystem();

  const SystemConfig& config() const noexcept { return config_; }
  sim::SimEngine& engine() noexcept { return engine_; }
  mem::PhysicalMemory& memory() noexcept { return memory_; }
  noc::MeshNetwork& mesh() noexcept { return *mesh_; }

  unsigned node_count() const noexcept {
    return static_cast<unsigned>(nodes_.size());
  }
  ComputeNode& node(unsigned index);

  // ---- processes ----
  Process& create_process();
  Process& process(vm::Asid asid);
  // Installs the process context on a node (simulated OS context switch).
  void schedule_process(unsigned node_index, Process& process);

  // ---- matrix helpers (host-side, functional) ----
  vm::MatrixDesc alloc_matrix(Process& process, std::uint64_t rows,
                              std::uint64_t cols);
  // Lazily-backed variant (reserved VA, no frames): the MMAE faults on
  // first touch and the OS layer (os::Scheduler) repairs via demand paging.
  vm::MatrixDesc alloc_matrix_lazy(Process& process, std::uint64_t rows,
                                   std::uint64_t cols);
  void write_matrix(Process& process, const vm::MatrixDesc& desc,
                    const sa::HostMatrix& values);
  sa::HostMatrix read_matrix(Process& process, const vm::MatrixDesc& desc);

  // ---- memory-system internals (used by the backend/oracle) ----
  mem::DirectoryCcm& ccm_for(vm::PhysAddr pa);
  unsigned ccm_home_node(vm::PhysAddr pa) const noexcept;
  mem::DramModel& dram_for(vm::PhysAddr pa);
  // Enumeration by index (used by obs::collect's counter walk).
  unsigned dram_channel_count() const noexcept {
    return static_cast<unsigned>(drams_.size());
  }
  const mem::DramModel& dram_channel(unsigned index) const {
    return *drams_.at(index);
  }
  unsigned ccm_slice_count() const noexcept {
    return static_cast<unsigned>(ccms_.size());
  }
  const mem::DirectoryCcm& ccm_slice(unsigned index) const {
    return *ccms_.at(index);
  }
  // The interconnect backend the `icnt` knob selected (charges NoC time
  // per line transfer; analytic reproduces the historic hop formula).
  noc::IcntModel& icnt() noexcept { return *icnt_; }
  // Per-node injection port: serializes a node's outstanding transfers.
  sim::TimePs& node_port_free(int node) { return node_port_free_.at(node); }
  double node_link_bandwidth() const noexcept {
    return config_.node_link_bandwidth();
  }

  void run() { engine_.run(); }

 private:
  SystemConfig config_;
  sim::SimEngine engine_;
  mem::PhysicalMemory memory_;
  std::unique_ptr<SystemMemoryBackend> backend_;
  std::vector<std::unique_ptr<WalkMemoryOracle>> walk_oracles_;
  std::vector<std::unique_ptr<mem::DramModel>> drams_;
  std::vector<std::unique_ptr<mem::DirectoryCcm>> ccms_;
  std::unique_ptr<noc::IcntModel> icnt_;
  std::unique_ptr<noc::MeshNetwork> mesh_;
  std::vector<std::unique_ptr<ComputeNode>> nodes_;
  std::vector<sim::TimePs> node_port_free_;
  std::unordered_map<vm::Asid, std::unique_ptr<Process>> processes_;
  vm::Asid next_asid_ = 1;
};

}  // namespace maco::core
