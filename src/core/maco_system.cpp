#include "core/maco_system.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/bits.hpp"

namespace maco::core {

// ---------------- SystemMemoryBackend ----------------

sim::TimePs SystemMemoryBackend::transfer(int node, vm::PhysAddr pa,
                                          std::uint32_t bytes,
                                          mem::CcmReqType type, bool lock,
                                          sim::TimePs start) {
  // Serialize on the node's injection port at link bandwidth.
  sim::TimePs& port_free = system_.node_port_free(node);
  sim::TimePs t = std::max(start, port_free);
  const double bw = system_.node_link_bandwidth();
  const auto wire_ps = static_cast<sim::TimePs>(
      static_cast<double>(bytes) / bw * 1e12);

  // Line-granular CCM transactions; the slowest line bounds completion
  // (lines pipeline through the network back to back).
  sim::TimePs ready = t;
  const std::uint64_t first = mem::line_addr(pa);
  const std::uint64_t last = mem::line_addr(pa + bytes - 1);
  for (std::uint64_t line = first; line <= last; line += mem::kLineBytes) {
    mem::DirectoryCcm& ccm = system_.ccm_for(line);
    const unsigned home = system_.ccm_home_node(line);
    mem::CcmRequest request;
    request.type = (type == mem::CcmReqType::kStash && lock)
                       ? mem::CcmReqType::kStashLock
                       : type;
    // Stores covering a whole line stream without a fetch (the DMA writes
    // every byte, so read-for-ownership data would be thrown away).
    if (type == mem::CcmReqType::kGetM && line >= pa &&
        line + mem::kLineBytes <= pa + bytes) {
      request.type = mem::CcmReqType::kPutFull;
    }
    request.node = node;
    request.addr = line;
    // Two-leg protocol: the home slice services the request at its ARRIVAL
    // time, so a queueing interconnect and a queueing DRAM each charge
    // their own backlog exactly once (handing the slice the injection time
    // would bill the network wait again as memory wait).
    noc::IcntModel& icnt = system_.icnt();
    const sim::TimePs req_arrive =
        t + icnt.request_leg_ps(t, node, home);
    const mem::CcmResponse response = ccm.handle(request, req_arrive);
    const sim::TimePs data_ready = req_arrive + response.latency;
    const sim::TimePs line_ready =
        data_ready +
        icnt.response_leg_ps(data_ready, home, node, mem::kLineBytes);
    ready = std::max(ready, line_ready);
  }
  port_free = t + wire_ps;
  return std::max(ready, port_free);
}

sim::TimePs SystemMemoryBackend::read(int node, vm::PhysAddr pa, void* out,
                                      std::uint32_t bytes, sim::TimePs start) {
  system_.memory().read(pa, out, bytes);
  return transfer(node, pa, bytes, mem::CcmReqType::kGetS, false, start);
}

sim::TimePs SystemMemoryBackend::write(int node, vm::PhysAddr pa,
                                       const void* data, std::uint32_t bytes,
                                       sim::TimePs start) {
  system_.memory().write(pa, data, bytes);
  return transfer(node, pa, bytes, mem::CcmReqType::kGetM, false, start);
}

sim::TimePs SystemMemoryBackend::stash(int node, vm::PhysAddr pa,
                                       std::uint32_t bytes, bool lock,
                                       sim::TimePs start) {
  return transfer(node, pa, bytes, mem::CcmReqType::kStash, lock, start);
}

// ---------------- WalkMemoryOracle ----------------

sim::TimePs WalkMemoryOracle::read_latency(vm::PhysAddr addr,
                                           std::uint32_t /*bytes*/) {
  mem::DirectoryCcm& ccm = system_.ccm_for(addr);
  const unsigned home = system_.ccm_home_node(addr);
  mem::CcmRequest request;
  request.type = mem::CcmReqType::kGetS;
  request.node = node_;
  request.addr = mem::line_addr(addr);
  // The walker has no notion of current time, so the PTE read must not
  // book the shared DRAM bus or NoC links (a stale timestamp would surface
  // the backlog as walk latency); it still updates L3 state, so page-table
  // locality emerges across walks.
  const mem::CcmResponse response =
      ccm.handle(request, 0, /*queue_dram=*/false);
  return system_.icnt().unloaded_round_trip_ps(node_, home,
                                               mem::kLineBytes) +
         response.latency;
}

// ---------------- MacoSystem ----------------

MacoSystem::MacoSystem(const SystemConfig& config) : config_(config) {
  // The exec mode selects both time-advance strategies at once: the mesh's
  // drive (clock-domain jumps vs one event per NoC cycle) and the systolic
  // array's functional path (direct order-preserving evaluation vs
  // register-level PE simulation). Both pairs are bit-equivalent.
  config_.mesh.event_driven = config_.exec == ExecMode::kEventDriven;
  config_.mmae.sa.exact_pe_sim = config_.exec == ExecMode::kLockstep;

  backend_ = std::make_unique<SystemMemoryBackend>(*this);

  drams_.reserve(config_.dram_channels);
  for (unsigned ch = 0; ch < config_.dram_channels; ++ch) {
    drams_.push_back(mem::make_dram_model("dram" + std::to_string(ch),
                                          config_.dram));
  }

  ccms_.reserve(config_.ccm_count);
  // Addresses interleave across slices at line granularity; tell the slice
  // so it strips those bits before set indexing.
  config_.ccm.slice_interleave = config_.ccm_count;
  for (unsigned s = 0; s < config_.ccm_count; ++s) {
    // Channel interleaving: slice s drains to channel s % channels.
    mem::DramModel& dram = *drams_[s % config_.dram_channels];
    ccms_.push_back(std::make_unique<mem::DirectoryCcm>(
        "ccm" + std::to_string(s), config_.ccm, dram));
  }

  icnt_ = noc::make_icnt_model(config_.icnt_config());
  // Per-link traffic accounting is the one observability hook that must
  // record during the run; it never feeds back into timing.
  if (config_.profile == ProfileMode::kCounters) icnt_->enable_link_stats();
  mesh_ = std::make_unique<noc::MeshNetwork>(engine_, config_.mesh);

  node_port_free_.assign(config_.node_count, 0);
  nodes_.reserve(config_.node_count);
  walk_oracles_.reserve(config_.node_count);
  for (unsigned n = 0; n < config_.node_count; ++n) {
    walk_oracles_.push_back(
        std::make_unique<WalkMemoryOracle>(*this, static_cast<int>(n)));
    nodes_.push_back(std::make_unique<ComputeNode>(
        engine_, static_cast<int>(n), config_.cpu, config_.mmae, *backend_,
        memory_, *walk_oracles_.back()));
    // Multi-process translation: the MMAE resolves page tables through the
    // system's process registry, independent of the CPU's current context
    // (MTQ/STQ survive process switches).
    nodes_.back()->mmae().set_page_table_lookup(
        [this](vm::Asid asid) -> const vm::PageTable* {
          const auto it = processes_.find(asid);
          return it == processes_.end() ? nullptr
                                        : &it->second->space->page_table();
        });
  }
}

MacoSystem::~MacoSystem() = default;

ComputeNode& MacoSystem::node(unsigned index) {
  MACO_ASSERT_MSG(index < nodes_.size(), "node " << index);
  return *nodes_[index];
}

Process& MacoSystem::create_process() {
  const vm::Asid asid = next_asid_++;
  auto process = std::make_unique<Process>();
  process->asid = asid;
  // Carve disjoint physical regions per process: page tables low, frames
  // high; the sparse backing store only materializes touched pages.
  const vm::PhysAddr pt_base =
      0x0800'0000'0000ull + static_cast<vm::PhysAddr>(asid) * 0x0001'0000'0000ull;
  const vm::PhysAddr frame_base =
      0x1000'0000'0000ull + static_cast<vm::PhysAddr>(asid) * 0x0040'0000'0000ull;
  process->space =
      std::make_unique<vm::AddressSpace>(asid, pt_base, frame_base);
  auto [it, inserted] = processes_.emplace(asid, std::move(process));
  MACO_ASSERT(inserted);
  return *it->second;
}

Process& MacoSystem::process(vm::Asid asid) {
  const auto it = processes_.find(asid);
  MACO_ASSERT_MSG(it != processes_.end(), "unknown ASID " << asid);
  return *it->second;
}

void MacoSystem::schedule_process(unsigned node_index, Process& process) {
  node(node_index).cpu().set_context(process.asid,
                                     &process.space->page_table());
}

vm::MatrixDesc MacoSystem::alloc_matrix(Process& process, std::uint64_t rows,
                                        std::uint64_t cols) {
  vm::MatrixDesc desc;
  desc.rows = rows;
  desc.cols = cols;
  desc.elem_bytes = sizeof(double);
  desc.base = process.space->alloc(rows * cols * sizeof(double));
  return desc;
}

vm::MatrixDesc MacoSystem::alloc_matrix_lazy(Process& process,
                                             std::uint64_t rows,
                                             std::uint64_t cols) {
  vm::MatrixDesc desc;
  desc.rows = rows;
  desc.cols = cols;
  desc.elem_bytes = sizeof(double);
  desc.base = process.space->reserve(rows * cols * sizeof(double));
  return desc;
}

void MacoSystem::write_matrix(Process& process, const vm::MatrixDesc& desc,
                              const sa::HostMatrix& values) {
  MACO_ASSERT(values.rows() == desc.rows && values.cols() == desc.cols);
  const vm::PageTable& table = process.space->page_table();
  for (std::uint64_t r = 0; r < desc.rows; ++r) {
    for (std::uint64_t c = 0; c < desc.cols; ++c) {
      const vm::VirtAddr va = desc.element_addr(r, c);
      const auto pa = table.translate(va);
      MACO_ASSERT_MSG(pa.has_value(), "unmapped VA in write_matrix");
      memory_.write_f64(*pa, values.at(r, c));
    }
  }
}

sa::HostMatrix MacoSystem::read_matrix(Process& process,
                                       const vm::MatrixDesc& desc) {
  sa::HostMatrix out(desc.rows, desc.cols);
  const vm::PageTable& table = process.space->page_table();
  for (std::uint64_t r = 0; r < desc.rows; ++r) {
    for (std::uint64_t c = 0; c < desc.cols; ++c) {
      const vm::VirtAddr va = desc.element_addr(r, c);
      const auto pa = table.translate(va);
      MACO_ASSERT_MSG(pa.has_value(), "unmapped VA in read_matrix");
      out.at(r, c) = memory_.read_f64(*pa);
    }
  }
  return out;
}

mem::DirectoryCcm& MacoSystem::ccm_for(vm::PhysAddr pa) {
  return *ccms_[ccm_home_node(pa)];
}

unsigned MacoSystem::ccm_home_node(vm::PhysAddr pa) const noexcept {
  // Line-interleaved home slices spread traffic uniformly over the mesh.
  return static_cast<unsigned>((pa / mem::kLineBytes) % config_.ccm_count);
}

mem::DramModel& MacoSystem::dram_for(vm::PhysAddr pa) {
  return *drams_[ccm_home_node(pa) % config_.dram_channels];
}

}  // namespace maco::core
