// System-level GEMM timing model.
//
// Register-level simulation of a 9216³ GEMM is intractable, so the benches
// use this model: per-inner-tile systolic latency comes from the closed form
// validated against the cycle-accurate array; translation behaviour comes
// from simulating the real sTLB over the exact page-touch sequence the DMA
// streams generate (vm::predict_page_entries); NoC contention comes from the
// X-Y link-load model validated against the flit-level mesh; DRAM pressure
// from the channel bandwidth model. Baselines parameterize the same model
// (coupling, overlap, translation policy) rather than hard-coding ratios.
#pragma once

#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "sa/latency_model.hpp"

namespace maco::core {

struct TimingOptions {
  sa::TileShape shape;  // the GEMM each node runs (independent mode) or the
                        // whole GEMM split over nodes (cooperative mode)
  sa::Precision precision = sa::Precision::kFp64;
  unsigned active_nodes = 1;
  bool cooperative = false;

  bool use_matlb = true;      // predictive address translation (Fig. 4/6)
  bool use_stash_lock = true; // L3 prefetch + lock mapping scheme (§IV.B)

  // First/second-level tiling (paper: <1024,1024> / <64,64>).
  std::uint64_t tile_rows = 1024;
  std::uint64_t tile_cols = 1024;
  std::uint64_t inner = 64;
  // Translation page size (what-if studies; the paper and hardware use 4 KiB).
  std::uint64_t page_bytes = 4096;

  // Baseline knobs (MACO defaults):
  std::size_t tlb_entries_override = 0;  // 0 => config's shared TLB size
  double engine_overlap = 1.0;   // fraction of DMA hidden under compute;
                                 // <1 models tightly-coupled contention
  sim::TimePs sync_overhead_per_tile_ps = 0;  // fence-style per-tile sync
  double dma_bandwidth_scale = 1.0;  // <1: engine fed through a narrower port
  unsigned simd_ways_override = 0;   // 0 => from precision. Fig. 8 uses 1 to
                                     // normalize all systems to 16×16 PEs.
  // Array geometry override (0 = config). Fig. 8's comparators are
  // single-node systems with one 16×16 array at the same total PE count.
  unsigned sa_rows_override = 0;
  unsigned sa_cols_override = 0;
  // Per-walk leaf-PTE latency policy. Default: heuristic (cold when walks
  // recur enough to thrash the L3's page-table lines, warm otherwise).
  bool pte_always_cold = false;  // standalone walker, no PWC (stress case)
  bool pte_walks_warm = false;   // walks ride the host MMU's page-walk
                                 // caches (in-core / host-PTW engines)

  // fidelity=sampled knobs (read only by the sampled estimator; the other
  // backends ignore them, so a fidelity sweep can carry them harmlessly).
  double sample_frac = 0.05;      // fraction of each stratum simulated
  std::uint64_t sample_seed = 1;  // stratified-draw seed (deterministic)
  double ci_target = 0.0;         // >0: adaptive sampling until the relative
                                  // 95% statistical CI half-width <= target
  unsigned sample_workers = 1;    // concurrent tile-batch simulations
};

struct TranslationEstimate {
  double pages_per_tile = 0.0;        // page touches per inner tile
  double walks_per_tile = 0.0;        // sTLB misses per inner tile
  sim::TimePs stall_per_tile_ps = 0;  // blocking-walk latency per tile
};

struct NodeTiming {
  sim::TimePs span_ps = 0;
  sim::TimePs compute_ps = 0;      // systolic-array busy time
  sim::TimePs dma_tile_ps = 0;     // steady-state DMA time per tile
  sim::TimePs translation_exposed_ps = 0;  // total stall on the critical path
  std::uint64_t macs = 0;
  double efficiency = 0.0;  // vs the node's peak at this precision
  double gflops = 0.0;
};

// Statistical qualifiers a sampled-fidelity estimate carries alongside the
// point values; sampled_tiles == 0 on exhaustive (analytic/detailed) runs.
struct SamplingStats {
  std::uint64_t total_tiles = 0;    // tile-space size of the estimation
  std::uint64_t sampled_tiles = 0;  // tiles actually simulated
  std::uint64_t strata = 0;         // position/layer classes
  double makespan_se_ps = 0.0;      // standard error of makespan_ps
  double makespan_ci95_ps = 0.0;    // 95% half-width (statistical + model
                                    // margin; see sampling/estimator.hpp)

  bool present() const noexcept { return sampled_tiles > 0; }
  double rel_ci95(double makespan_ps_value) const noexcept {
    return makespan_ps_value > 0.0 ? makespan_ci95_ps / makespan_ps_value
                                   : 0.0;
  }
};

// Software-scheduler counters carried by runs driven through os::Scheduler
// (fidelity=detailed); present=false on closed-form and sampled estimates,
// which never enter the OS layer. A plain mirror of os::SchedulerStats so
// the core timing types stay below the OS layer in the include graph.
struct OsStats {
  bool present = false;
  std::uint64_t context_switches = 0;
  std::uint64_t mtq_full_backoffs = 0;
  std::uint64_t faults_repaired = 0;
  std::uint64_t scheduling_rounds = 0;
  std::uint64_t tasks_completed = 0;
};

struct SystemTiming {
  std::vector<NodeTiming> nodes;
  double mean_efficiency = 0.0;  // average per-node efficiency (Fig. 7 y-axis)
  double total_gflops = 0.0;     // aggregate throughput (Fig. 8 y-axis)
  sim::TimePs makespan_ps = 0;
  TranslationEstimate translation;
  SamplingStats sampling;        // fidelity=sampled only
  OsStats os;                    // fidelity=detailed only
};

class SystemTimingModel {
 public:
  explicit SystemTimingModel(const SystemConfig& config);

  SystemTiming run(const TimingOptions& options) const;

  // Runs a sequence of GEMM layers (a DNN) back to back; cooperative across
  // the active nodes. Returns aggregate throughput over the whole network.
  SystemTiming run_layers(const std::vector<sa::TileShape>& layers,
                          TimingOptions options) const;

  // Exposed for tests: the sTLB/page-geometry simulation.
  TranslationEstimate estimate_translation(const TimingOptions& options,
                                           const sa::TileShape& node_shape)
      const;

  // Total systolic cycles to sweep `shape` in inner³ tiles (edge-exact).
  std::uint64_t aggregate_sa_cycles(const sa::TileShape& shape,
                                    const TimingOptions& options) const;

  const SystemConfig& config() const noexcept { return config_; }

 private:
  unsigned effective_ways(const TimingOptions& options) const noexcept;
  sa::SaConfig sa_config_for(const TimingOptions& options) const noexcept;

  SystemConfig config_;
};

}  // namespace maco::core
