#include "core/config.hpp"

#include <stdexcept>

namespace maco::core {

const char* exec_mode_name(ExecMode mode) noexcept {
  return mode == ExecMode::kLockstep ? "lockstep" : "event";
}

ExecMode parse_exec_mode(const std::string& name) {
  if (name == "event") return ExecMode::kEventDriven;
  if (name == "lockstep") return ExecMode::kLockstep;
  throw std::invalid_argument("unknown exec mode '" + name +
                              "' (expected event|lockstep)");
}

const char* profile_mode_name(ProfileMode mode) noexcept {
  return mode == ProfileMode::kCounters ? "counters" : "off";
}

ProfileMode parse_profile_mode(const std::string& name) {
  if (name == "off") return ProfileMode::kOff;
  if (name == "counters") return ProfileMode::kCounters;
  throw std::invalid_argument("unknown profile mode '" + name +
                              "' (expected off|counters)");
}

SystemConfig SystemConfig::maco_default() {
  SystemConfig config;
  // Table I / Table IV values are already the defaults of the component
  // configs; restate the load-bearing ones so this function documents the
  // whole platform.
  config.node_count = 16;

  config.cpu.frequency_hz = 2.2e9;
  config.cpu.issue_width = 4;
  config.cpu.mmu.l1_tlb_entries = 48;
  config.cpu.mmu.l2_tlb_entries = 1024;

  config.mmae.frequency_hz = 2.5e9;
  config.mmae.sa.rows = 4;
  config.mmae.sa.cols = 4;
  config.mmae.use_matlb = true;

  config.mesh.width = 4;
  config.mesh.height = 4;
  config.mesh.flit_bytes = 32;   // 256-bit
  config.mesh.cycle_ps = 500;    // 2 GHz

  config.link_load.width = 4;
  config.link_load.height = 4;
  config.link_load.link_bytes_per_second = 64.0e9;

  config.ccm_count = 16;
  config.ccm.l3.size_bytes = 2 * 1024 * 1024;  // 32 MiB system cache total
  config.ccm.l3.ways = 16;

  config.dram_channels = 4;
  config.dram.bandwidth_bytes_per_second = 51.2e9;  // DDR4-3200 x2 per ctrl
  config.dram.access_latency_ps = 60'000;
  return config;
}

}  // namespace maco::core
