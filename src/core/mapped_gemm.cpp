#include "core/mapped_gemm.hpp"

#include <algorithm>
#include <string>

#include "util/assert.hpp"

namespace maco::core {

namespace {

// One pending MPAIS dispatch: which node ran it and the MAID it returned.
struct Dispatched {
  unsigned node = 0;
  cpu::Maid maid = 0;
};

isa::MoveParams pack_params(const vm::MatrixDesc& src_matrix,
                            const vm::TileDesc& block, vm::VirtAddr dst) {
  isa::MoveParams move;
  move.src = src_matrix.element_addr(block.row0, block.col0);
  move.dst = dst;
  move.rows = static_cast<std::uint32_t>(block.rows);
  move.row_bytes =
      static_cast<std::uint32_t>(block.cols * src_matrix.elem_bytes);
  move.src_stride = src_matrix.stride();
  move.dst_stride = block.cols * src_matrix.elem_bytes;
  return move;
}

isa::MoveParams unpack_params(vm::VirtAddr src,
                              const vm::MatrixDesc& dst_matrix,
                              const vm::TileDesc& block) {
  isa::MoveParams move;
  move.src = src;
  move.dst = dst_matrix.element_addr(block.row0, block.col0);
  move.rows = static_cast<std::uint32_t>(block.rows);
  move.row_bytes =
      static_cast<std::uint32_t>(block.cols * dst_matrix.elem_bytes);
  move.src_stride = block.cols * dst_matrix.elem_bytes;
  move.dst_stride = dst_matrix.stride();
  return move;
}

}  // namespace

MappedGemmResult MappedGemmRunner::run(Process& process,
                                       const vm::MatrixDesc& a,
                                       const vm::MatrixDesc& b,
                                       const vm::MatrixDesc& c,
                                       const MappedGemmOptions& options) {
  MACO_ASSERT(a.cols == b.rows && c.rows == a.rows && c.cols == b.cols);
  MappedGemmResult result;

  const unsigned nodes = std::min<unsigned>(
      options.nodes ? options.nodes : system_.node_count(),
      system_.node_count());
  const auto plan = partition_gemm(c.rows, c.cols, a.cols, nodes,
                                   options.tile_rows, options.tile_cols);
  result.nodes_used = nodes;

  constexpr int kParams = 10;    // x10..x15: parameter block
  constexpr int kMaidBase = 20;  // x20..: MAIDs of the current wave

  std::vector<Dispatched> wave;
  std::vector<int> slot_of(plan.size(), 0);
  const auto dispatch = [&](unsigned node, std::size_t plan_index,
                            const char* mnemonic,
                            const isa::ParamBlock& params) {
    cpu::CpuCore& cpu = system_.node(node).cpu();
    cpu.regs().write_param_block(kParams, params);
    const int slot = slot_of[plan_index]++;
    cpu.execute_source(std::string(mnemonic) + " x" +
                       std::to_string(kMaidBase + slot) + ", x" +
                       std::to_string(kParams));
    const std::uint64_t maid = cpu.regs().read(kMaidBase + slot);
    MACO_ASSERT_MSG(maid != cpu::kMaidAllocFailed,
                    "mapped GEMM overflowed the MTQ");
    wave.push_back(Dispatched{node, static_cast<cpu::Maid>(maid)});
  };

  // Drains the simulator, checks every dispatched task, releases entries.
  const auto drain_wave = [&]() -> bool {
    system_.run();
    ++result.waves;
    bool ok = true;
    for (const Dispatched& d : wave) {
      cpu::CpuCore& cpu = system_.node(d.node).cpu();
      const cpu::MtqEntry& entry = cpu.mtq().entry(d.maid);
      if (!entry.done || entry.exception_en) {
        ok = false;
        if (result.first_exception == cpu::ExceptionType::kNone) {
          result.first_exception = entry.exception_type;
        }
      }
      cpu.regs().write(9, d.maid);
      cpu.execute_source("ma_state x8, x9");
    }
    wave.clear();
    std::fill(slot_of.begin(), slot_of.end(), 0);
    return ok;
  };

  // Scratch per node: a dense B panel (k x <=tile_cols, repacked when the
  // tile's column range changes) and a dense C block.
  struct Packed {
    vm::MatrixDesc b_panel;
    vm::MatrixDesc c_block;
    std::uint64_t b_col0 = ~0ull;  // column range currently packed
    std::uint64_t b_cols = 0;
  };
  std::vector<Packed> scratch(plan.size());
  const std::uint64_t panel_cols = std::min(options.tile_cols, c.cols);
  const std::uint64_t block_rows = std::min(options.tile_rows, c.rows);

  // Stash wave (Section IV.B): lock each node's operand panels in L3.
  for (std::size_t i = 0; i < plan.size(); ++i) {
    const NodePlan& node_plan = plan[i];
    const unsigned node = static_cast<unsigned>(node_plan.node);
    system_.schedule_process(node, process);
    if (node_plan.c_tiles.empty()) continue;

    scratch[i].b_panel = system_.alloc_matrix(process, b.rows, panel_cols);
    scratch[i].c_block =
        system_.alloc_matrix(process, block_rows, panel_cols);

    if (options.stash_lock) {
      isa::StashParams stash_a;  // A row-slab: dense full rows
      stash_a.base = a.element_addr(node_plan.row_begin, 0);
      stash_a.rows = static_cast<std::uint32_t>(node_plan.row_end -
                                                node_plan.row_begin);
      stash_a.row_bytes = static_cast<std::uint32_t>(a.cols * a.elem_bytes);
      stash_a.stride = a.stride();
      stash_a.lock = true;
      dispatch(node, i, "ma_stash", stash_a.pack());

      isa::StashParams stash_b;  // B column-panel: strided rows
      stash_b.base = b.element_addr(0, node_plan.col_begin);
      stash_b.rows = static_cast<std::uint32_t>(b.rows);
      stash_b.row_bytes = static_cast<std::uint32_t>(
          (node_plan.col_end - node_plan.col_begin) * b.elem_bytes);
      stash_b.stride = b.stride();
      stash_b.lock = true;
      dispatch(node, i, "ma_stash", stash_b.pack());
      result.stash_tasks += 2;
    }
  }
  if (!wave.empty() && !drain_wave()) return result;

  // Tile waves: nodes advance their tile lists in lock step. Each wave per
  // node is at most pack-B + (pack-C | init-C) + GEMM + unpack-C = 4 MTQ
  // entries, within the 8-entry budget.
  std::size_t max_tiles = 0;
  for (const auto& node_plan : plan) {
    max_tiles = std::max(max_tiles, node_plan.c_tiles.size());
  }
  for (std::size_t t = 0; t < max_tiles; ++t) {
    for (std::size_t i = 0; i < plan.size(); ++i) {
      const NodePlan& node_plan = plan[i];
      if (t >= node_plan.c_tiles.size()) continue;
      const unsigned node = static_cast<unsigned>(node_plan.node);
      const vm::TileDesc& tile = node_plan.c_tiles[t];

      // Repack the dense B panel when this tile's column range moved.
      if (scratch[i].b_col0 != tile.col0 ||
          scratch[i].b_cols != tile.cols) {
        dispatch(node, i, "ma_move",
                 pack_params(b,
                             vm::TileDesc{0, tile.col0, b.rows, tile.cols},
                             scratch[i].b_panel.base)
                     .pack());
        ++result.move_tasks;
        scratch[i].b_col0 = tile.col0;
        scratch[i].b_cols = tile.cols;
      }

      if (options.accumulate) {
        dispatch(node, i, "ma_move",
                 pack_params(c, tile, scratch[i].c_block.base).pack());
      } else {
        isa::InitParams zero;
        zero.dst = scratch[i].c_block.base;
        zero.rows = static_cast<std::uint32_t>(tile.rows);
        zero.row_bytes =
            static_cast<std::uint32_t>(tile.cols * c.elem_bytes);
        zero.stride = tile.cols * c.elem_bytes;
        dispatch(node, i, "ma_init", zero.pack());
      }
      ++result.move_tasks;

      isa::GemmParams gemm;
      gemm.a_base = a.element_addr(tile.row0, 0);
      gemm.b_base = scratch[i].b_panel.base;
      gemm.c_base = scratch[i].c_block.base;
      gemm.m = static_cast<std::uint32_t>(tile.rows);
      gemm.k = static_cast<std::uint32_t>(a.cols);
      gemm.n = static_cast<std::uint32_t>(tile.cols);
      gemm.accumulate = true;  // scratch C holds the block's prior value
      dispatch(node, i, "ma_cfg", gemm.pack());
      ++result.gemm_tasks;

      dispatch(node, i, "ma_move",
               unpack_params(scratch[i].c_block.base, c, tile).pack());
      ++result.move_tasks;
    }
    if (!drain_wave()) return result;
  }

  // Aggregate the timeline from the MMAE task reports.
  sim::TimePs first = ~sim::TimePs{0}, last = 0;
  for (std::size_t i = 0; i < plan.size(); ++i) {
    const auto& reports =
        system_.node(static_cast<unsigned>(plan[i].node)).mmae().reports();
    for (const auto& report : reports) {
      first = std::min(first, report.start);
      last = std::max(last, report.end);
      result.total_dma_bytes += report.dma_bytes;
    }
  }
  result.makespan_ps = last > first ? last - first : 0;
  result.ok = true;
  return result;
}

}  // namespace maco::core
