// Query, pivot and comparison over campaign-store records.
//
// select() filters records by exact canonical key=value matches; build_table
// pivots the survivors into a report table (parameters that never vary are
// folded into a fixed-params preamble instead of repeating per row);
// compare_campaigns matches points across two stores by fingerprint —
// optionally ignoring chosen keys, so two campaigns that differ only in one
// A/B knob line up — and flags direction-aware metric deltas beyond a
// relative tolerance as regressions.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "store/record.hpp"

namespace maco::store {

// Exact-match filter; the pseudo-key "scenario" matches the scenario name,
// every other key matches the record's canonical parameter text.
std::vector<const CampaignRecord*> select(
    const std::vector<CampaignRecord>& records,
    const std::map<std::string, std::string>& where);

struct TableColumn {
  std::string name;
  std::string unit;              // metric columns only
  bool higher_is_better = true;  // metric columns only
};

struct CampaignTable {
  std::map<std::string, std::string> fixed_params;  // constant across rows
  std::vector<std::string> param_columns;           // varying, sorted
  std::vector<TableColumn> metric_columns;          // union, first seen
  std::vector<const CampaignRecord*> rows;

  std::size_t failures() const noexcept;
};

// `metrics` restricts the metric columns (empty = all). Records are kept in
// the order given (append order from the store).
CampaignTable build_table(const std::vector<const CampaignRecord*>& records,
                          const std::vector<std::string>& metrics = {});

enum class ReportFormat { kTable, kCsv, kJson, kMarkdown };

void write_table(std::ostream& out, const CampaignTable& table,
                 ReportFormat format);

// ---- campaign comparison ----

struct CompareOptions {
  double tolerance = 0.02;           // relative; 0.02 = 2%
  std::vector<std::string> ignore;   // params dropped before matching
  std::vector<std::string> metrics;  // restrict deltas (empty = all)
};

// Error-bar awareness: a metric X whose record carries a companion metric
// named X_ci95 (the 95% interval half-width fidelity=sampled emits) is
// compared interval-to-interval — a delta beyond tolerance is only flagged
// when [current +- ci] and [baseline +- ci] do not overlap, so statistical
// noise in sampled estimates cannot masquerade as a regression. The
// companions themselves (X_ci95, X_se) are qualifiers, not results, and
// are excluded from the delta list.
struct MetricDelta {
  std::string metric;
  std::string unit;
  bool higher_is_better = true;
  double baseline = 0.0;
  double current = 0.0;
  double ci_baseline = 0.0;  // 95% half-widths (0 = exact value)
  double ci_current = 0.0;
  double rel_change = 0.0;  // (current - baseline) / |baseline|
  bool regression = false;  // current worse beyond tolerance
  bool improvement = false;
};

struct PointComparison {
  const CampaignRecord* current = nullptr;
  const CampaignRecord* baseline = nullptr;
  std::vector<MetricDelta> deltas;
};

struct CampaignComparison {
  std::vector<PointComparison> points;  // matched pairs
  std::size_t current_only = 0;         // points with no partner
  std::size_t baseline_only = 0;
  // Distinct points collapsed onto an already-used identity by --ignore
  // (the store sweeps an ignored knob): they are excluded from matching,
  // and silently excluding them would make a regression gate lie.
  std::size_t current_collapsed = 0;
  std::size_t baseline_collapsed = 0;

  std::size_t regressions() const noexcept;
  std::size_t improvements() const noexcept;
};

// `current` is the campaign under test (report --store), `baseline` the
// reference (report --compare): a regression means current moved in its
// metric's bad direction relative to baseline by more than the tolerance.
CampaignComparison compare_campaigns(
    const std::vector<const CampaignRecord*>& current,
    const std::vector<const CampaignRecord*>& baseline,
    const CompareOptions& options);

// Regression-focused rendering; kTable and kMarkdown list every matched
// metric, kCsv/kJson carry the full delta data.
void write_comparison(std::ostream& out, const CampaignComparison& comparison,
                      ReportFormat format,
                      const CompareOptions& options);

}  // namespace maco::store
