#include "store/campaign_store.hpp"

#include <bit>
#include <filesystem>
#include <sstream>
#include <stdexcept>

#include "store/fingerprint.hpp"

namespace maco::store {
namespace {

constexpr char kFileMagic[8] = {'M', 'A', 'C', 'O', 'C', 'D', 'B', '1'};
constexpr std::uint32_t kFormatVersion = 1;
constexpr std::uint32_t kFrameMagic = 0x4d435245;  // "MCRE"
constexpr std::size_t kHeaderBytes = sizeof kFileMagic + sizeof(std::uint32_t);
// A frame claiming more than this is treated as corruption, not a record.
constexpr std::uint32_t kMaxPayloadBytes = 1u << 30;

void put_u32(std::string& out, std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<char>((value >> shift) & 0xff));
  }
}

void put_u64(std::string& out, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<char>((value >> shift) & 0xff));
  }
}

void put_f64(std::string& out, double value) {
  put_u64(out, std::bit_cast<std::uint64_t>(value));
}

void put_string(std::string& out, const std::string& text) {
  put_u32(out, static_cast<std::uint32_t>(text.size()));
  out += text;
}

// Bounds-checked sequential decoder over one payload.
class Reader {
 public:
  explicit Reader(const std::string& data) : data_(data) {}

  std::uint32_t u32() {
    std::uint32_t value = 0;
    for (int shift = 0; shift < 32; shift += 8) {
      value |= static_cast<std::uint32_t>(byte()) << shift;
    }
    return value;
  }

  std::uint64_t u64() {
    std::uint64_t value = 0;
    for (int shift = 0; shift < 64; shift += 8) {
      value |= static_cast<std::uint64_t>(byte()) << shift;
    }
    return value;
  }

  double f64() { return std::bit_cast<double>(u64()); }

  bool boolean() { return byte() != 0; }

  std::string str() {
    const std::uint32_t size = u32();
    if (size > data_.size() - pos_) {
      throw std::runtime_error("campaign record: string runs past payload");
    }
    std::string text = data_.substr(pos_, size);
    pos_ += size;
    return text;
  }

  bool exhausted() const noexcept { return pos_ == data_.size(); }

 private:
  unsigned char byte() {
    if (pos_ >= data_.size()) {
      throw std::runtime_error("campaign record: payload truncated");
    }
    return static_cast<unsigned char>(data_[pos_++]);
  }

  const std::string& data_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string encode_record(const CampaignRecord& record) {
  std::string payload;
  put_u64(payload, record.fingerprint);
  put_u64(payload, record.schema_hash);
  put_string(payload, record.scenario);
  put_string(payload, record.fidelity);
  put_u32(payload, static_cast<std::uint32_t>(record.params.size()));
  for (const auto& [key, value] : record.params) {
    put_string(payload, key);
    put_string(payload, value);
    payload.push_back(record.explicit_params.count(key) != 0 ? '\1' : '\0');
  }
  put_u32(payload, static_cast<std::uint32_t>(record.metrics.size()));
  for (const exp::Metric& metric : record.metrics) {
    put_string(payload, metric.name);
    put_f64(payload, metric.value);
    put_string(payload, metric.unit);
    payload.push_back(metric.higher_is_better ? '\1' : '\0');
  }
  put_string(payload, record.error);
  put_f64(payload, record.wall_ms);
  return payload;
}

CampaignRecord decode_record(const std::string& payload) {
  Reader reader(payload);
  CampaignRecord record;
  record.fingerprint = reader.u64();
  record.schema_hash = reader.u64();
  record.scenario = reader.str();
  record.fidelity = reader.str();
  const std::uint32_t param_count = reader.u32();
  for (std::uint32_t i = 0; i < param_count; ++i) {
    std::string key = reader.str();
    std::string value = reader.str();
    const bool explicitly_set = reader.boolean();
    if (explicitly_set) record.explicit_params.insert(key);
    record.params.emplace(std::move(key), std::move(value));
  }
  const std::uint32_t metric_count = reader.u32();
  for (std::uint32_t i = 0; i < metric_count; ++i) {
    exp::Metric metric;
    metric.name = reader.str();
    metric.value = reader.f64();
    metric.unit = reader.str();
    metric.higher_is_better = reader.boolean();
    record.metrics.push_back(std::move(metric));
  }
  record.error = reader.str();
  record.wall_ms = reader.f64();
  if (!reader.exhausted()) {
    throw std::runtime_error("campaign record: trailing bytes in payload");
  }
  return record;
}

CampaignStore::CampaignStore(std::string path, Mode mode)
    : path_(std::move(path)), mode_(mode) {
  load();
}

void CampaignStore::load() {
  namespace fs = std::filesystem;
  const bool writable = mode_ == Mode::kAppend;
  std::string contents;
  {
    std::ifstream in(path_, std::ios::binary);
    if (in) {
      std::ostringstream buffer;
      buffer << in.rdbuf();
      contents = buffer.str();
    } else if (!writable) {
      throw std::runtime_error("campaign store: cannot read '" + path_ +
                               "'");
    }
  }

  std::string header;
  header.append(kFileMagic, sizeof kFileMagic);
  put_u32(header, kFormatVersion);

  std::size_t valid_end = 0;
  if (contents.size() < kHeaderBytes) {
    // Empty or killed mid-header-write: nothing recoverable; a writable
    // store starts fresh, a read-only one must at least carry the magic.
    if (!contents.empty() &&
        header.compare(0, contents.size(), contents) != 0) {
      throw std::runtime_error("campaign store: '" + path_ +
                               "' is not a campaign store (bad magic)");
    }
    dropped_bytes_ = contents.size();
  } else {
    if (contents.compare(0, sizeof kFileMagic, kFileMagic,
                         sizeof kFileMagic) != 0) {
      throw std::runtime_error("campaign store: '" + path_ +
                               "' is not a campaign store (bad magic)");
    }
    if (contents.compare(0, kHeaderBytes, header) != 0) {
      throw std::runtime_error(
          "campaign store: '" + path_ +
          "' has an unsupported format version (want " +
          std::to_string(kFormatVersion) + ")");
    }
    valid_end = kHeaderBytes;
    std::size_t pos = kHeaderBytes;
    const auto remaining = [&] { return contents.size() - pos; };
    while (true) {
      constexpr std::size_t kFrameOverhead =
          2 * sizeof(std::uint32_t) + sizeof(std::uint64_t);
      if (remaining() < kFrameOverhead) break;
      const std::string frame_header =
          contents.substr(pos, 2 * sizeof(std::uint32_t));
      Reader frame(frame_header);
      if (frame.u32() != kFrameMagic) break;
      const std::uint32_t payload_size = frame.u32();
      if (payload_size > kMaxPayloadBytes ||
          remaining() < kFrameOverhead + payload_size) {
        break;
      }
      const std::string payload =
          contents.substr(pos + 2 * sizeof(std::uint32_t), payload_size);
      const std::string checksum_bytes = contents.substr(
          pos + 2 * sizeof(std::uint32_t) + payload_size,
          sizeof(std::uint64_t));
      Reader checksum_reader(checksum_bytes);
      if (checksum_reader.u64() != fnv1a64(payload)) break;
      CampaignRecord record;
      try {
        record = decode_record(payload);
      } catch (const std::runtime_error&) {
        break;
      }
      pos += kFrameOverhead + payload_size;
      valid_end = pos;
      if (record.ok()) {
        ok_index_[{record.fingerprint, record.schema_hash}] =
            records_.size();
      }
      records_.push_back(std::move(record));
    }
    dropped_bytes_ = contents.size() - valid_end;
  }

  if (!writable) return;

  const fs::path parent = fs::path(path_).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    fs::create_directories(parent, ec);  // open failure reports the error
  }
  // A torn tail is truncated away so the next frame lands on a clean
  // boundary; a new or empty file gets its header written first.
  if (dropped_bytes_ > 0) {
    std::error_code ec;
    fs::resize_file(path_, valid_end, ec);
    if (ec) {
      throw std::runtime_error("campaign store: cannot truncate torn tail "
                               "of '" + path_ + "': " + ec.message());
    }
  }
  out_.open(path_, std::ios::binary | std::ios::out | std::ios::app);
  if (out_ && valid_end == 0) {
    out_.write(header.data(), static_cast<std::streamsize>(header.size()));
    out_.flush();
  }
  if (!out_) {
    throw std::runtime_error("campaign store: cannot write '" + path_ +
                             "'");
  }
}

void CampaignStore::append(const CampaignRecord& record) {
  if (record.computed_fingerprint() != record.fingerprint) {
    throw std::logic_error(
        "campaign store: record fingerprint does not match its params");
  }
  const std::string payload = encode_record(record);
  std::string frame;
  frame.reserve(payload.size() + 16);
  put_u32(frame, kFrameMagic);
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  frame += payload;
  put_u64(frame, fnv1a64(payload));

  const std::lock_guard<std::mutex> lock(mutex_);
  if (mode_ != Mode::kAppend) {
    throw std::runtime_error("campaign store: '" + path_ +
                             "' is open read-only");
  }
  out_.write(frame.data(), static_cast<std::streamsize>(frame.size()));
  out_.flush();
  if (!out_) {
    throw std::runtime_error("campaign store: write to '" + path_ +
                             "' failed");
  }
  if (record.ok()) {
    ok_index_[{record.fingerprint, record.schema_hash}] = records_.size();
  }
  records_.push_back(record);
}

bool CampaignStore::contains(std::uint64_t fingerprint,
                             std::uint64_t schema_hash) const {
  return find(fingerprint, schema_hash) != nullptr;
}

const CampaignRecord* CampaignStore::find(std::uint64_t fingerprint,
                                          std::uint64_t schema_hash) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = ok_index_.find({fingerprint, schema_hash});
  return it == ok_index_.end() ? nullptr : &records_[it->second];
}

CampaignStore::CompactionResult CampaignStore::compact(
    const std::string& path) {
  namespace fs = std::filesystem;
  // Read-only open: recovery drops a torn tail from the view; the rewrite
  // then persists only whole, checksummed records.
  const CampaignStore store(path, Mode::kReadOnly);

  // The latest record of each point wins, whatever its outcome — a final
  // error record is the point's current state and must survive, while
  // every record an append superseded (earlier re-runs, errors a retry
  // fixed) is dropped.
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::size_t> latest;
  for (std::size_t i = 0; i < store.records().size(); ++i) {
    const CampaignRecord& record = store.records()[i];
    latest[{record.fingerprint, record.schema_hash}] = i;
  }

  const std::string temp_path = path + ".compact.tmp";
  {
    std::ofstream out(temp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("campaign store: cannot write '" +
                               temp_path + "'");
    }
    std::string header;
    header.append(kFileMagic, sizeof kFileMagic);
    put_u32(header, kFormatVersion);
    out.write(header.data(), static_cast<std::streamsize>(header.size()));
    for (std::size_t i = 0; i < store.records().size(); ++i) {
      const CampaignRecord& record = store.records()[i];
      if (latest[{record.fingerprint, record.schema_hash}] != i) continue;
      const std::string payload = encode_record(record);
      std::string frame;
      frame.reserve(payload.size() + 16);
      put_u32(frame, kFrameMagic);
      put_u32(frame, static_cast<std::uint32_t>(payload.size()));
      frame += payload;
      put_u64(frame, fnv1a64(payload));
      out.write(frame.data(), static_cast<std::streamsize>(frame.size()));
    }
    out.flush();
    if (!out) {
      throw std::runtime_error("campaign store: write to '" + temp_path +
                               "' failed");
    }
  }
  std::error_code ec;
  fs::rename(temp_path, path, ec);
  if (ec) {
    throw std::runtime_error("campaign store: cannot replace '" + path +
                             "' with the compacted store: " + ec.message());
  }
  CompactionResult result;
  result.kept = latest.size();
  result.dropped = store.records().size() - latest.size();
  return result;
}

bool CampaignStore::lookup(std::uint64_t fingerprint,
                           std::uint64_t schema_hash,
                           CampaignRecord& out) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = ok_index_.find({fingerprint, schema_hash});
  if (it == ok_index_.end()) return false;
  out = records_[it->second];
  return true;
}

}  // namespace maco::store
