#include "store/fingerprint.hpp"

#include <algorithm>

namespace maco::store {

std::uint64_t fnv1a64(std::string_view text, std::uint64_t seed) noexcept {
  std::uint64_t hash = seed;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

namespace {

// The canonical text's metacharacters ('\n' line separator, '=' key/value
// separator, '!' explicitness marker, '\\' itself) are escaped inside keys
// and values, so a string parameter containing them cannot forge another
// point's identity (e.g. a value ending in '!' aliasing the explicit
// marker).
void append_escaped(std::string& text, const std::string& piece) {
  for (const char c : piece) {
    switch (c) {
      case '\\': text += "\\\\"; break;
      case '\n': text += "\\n"; break;
      case '=': text += "\\="; break;
      case '!': text += "\\!"; break;
      default: text += c;
    }
  }
}

}  // namespace

std::string canonical_point_text(
    const std::string& scenario,
    const std::map<std::string, std::string>& params,
    const std::set<std::string>& explicit_params,
    const std::vector<std::string>& ignore) {
  // std::map iteration is already name-sorted, so the text is stable
  // regardless of declaration or command-line order.
  std::string text;
  append_escaped(text, scenario);
  text += '\n';
  for (const auto& [key, value] : params) {
    if (std::find(ignore.begin(), ignore.end(), key) != ignore.end()) {
      continue;
    }
    append_escaped(text, key);
    text += '=';
    append_escaped(text, value);
    if (explicit_params.count(key) != 0) text += '!';
    text += '\n';
  }
  return text;
}

std::uint64_t point_fingerprint(
    const std::string& scenario,
    const std::map<std::string, std::string>& params,
    const std::set<std::string>& explicit_params,
    const std::vector<std::string>& ignore) {
  return fnv1a64(
      canonical_point_text(scenario, params, explicit_params, ignore));
}

void canonical_params(const exp::ParamSet& bound,
                      std::map<std::string, std::string>& params,
                      std::set<std::string>& explicit_params) {
  for (const auto& [name, value] : bound.values()) {
    params[name] = value.to_string();
    if (bound.was_set(name)) explicit_params.insert(name);
  }
}

std::uint64_t schema_digest(const exp::ParamSchema& schema,
                            std::uint64_t seed) {
  std::uint64_t hash = seed;
  for (const exp::ParamDecl& decl : schema.decls()) {
    hash = fnv1a64(decl.name, hash);
    hash = fnv1a64(exp::param_type_name(decl.type), hash);
    hash = fnv1a64(decl.default_value.to_string(), hash);
    hash = fnv1a64(decl.range_text(), hash);
  }
  for (const exp::ParamConstraint& constraint : schema.constraints()) {
    hash = fnv1a64(constraint.rule, hash);
  }
  return hash;
}

}  // namespace maco::store
