// Sweep-point and schema fingerprints for the campaign store.
//
// A sweep point's identity is its canonical text: the scenario name plus
// every bound parameter (defaults included) in ParamValue::to_string form,
// sorted by name, with explicitly-set parameters marked — scenarios may
// treat an explicit value differently from an identical default (`nodes`
// follows node_count only while unset), so explicitness is part of the
// identity. The FNV-1a hash of that text is the fingerprint resume keys on;
// the schema digest hashes the declarations + constraints so a schema change
// invalidates cached points instead of silently reusing them.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "exp/param_schema.hpp"

namespace maco::store {

inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;

// FNV-1a over `text`, chainable through `seed`.
std::uint64_t fnv1a64(std::string_view text,
                      std::uint64_t seed = kFnvOffset) noexcept;

// Canonical text of one sweep point from already-canonical params (a
// CampaignRecord, or bound ParamSets flattened by canonical_params).
// Parameters named in `ignore` are dropped — `report --ignore KEY` uses
// this to match points across an A/B knob.
std::string canonical_point_text(
    const std::string& scenario,
    const std::map<std::string, std::string>& params,
    const std::set<std::string>& explicit_params,
    const std::vector<std::string>& ignore = {});

std::uint64_t point_fingerprint(
    const std::string& scenario,
    const std::map<std::string, std::string>& params,
    const std::set<std::string>& explicit_params,
    const std::vector<std::string>& ignore = {});

// Flattens bound ParamSets (scenario knobs + hardware knobs; disjoint key
// spaces) to canonical text, filling `params` and `explicit_params`.
void canonical_params(const exp::ParamSet& bound,
                      std::map<std::string, std::string>& params,
                      std::set<std::string>& explicit_params);

// Digest of a schema: every declaration (name, type, default, range,
// choices) and every constraint rule, chainable through `seed` so the
// scenario schema and the hardware schema fold into one digest.
std::uint64_t schema_digest(const exp::ParamSchema& schema,
                            std::uint64_t seed = kFnvOffset);

}  // namespace maco::store
