// The campaign store: an append-only, single-file results database.
//
// File layout (all integers little-endian):
//
//   header : 8-byte magic "MACOCDB1", u32 format version
//   record : u32 frame magic, u32 payload size, payload, u64 FNV-1a of the
//            payload
//
// The payload serializes one CampaignRecord (length-prefixed strings,
// bit-cast doubles). Appends happen under one mutex with a flush per
// record, so sweep workers stream points in concurrently and a crash loses
// at most the in-flight point. Opening scans the file front to back and
// stops at the first torn or corrupt frame — a record cut short by a kill
// is dropped (and, in writable mode, truncated away) while every record
// before it is recovered.
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "store/record.hpp"

namespace maco::store {

class CampaignStore {
 public:
  enum class Mode {
    kAppend,    // create if missing, recover, truncate a torn tail, allow
                // append()
    kReadOnly,  // existing file only; recovery drops the torn tail from the
                // in-memory view without touching the file
  };

  // Throws std::runtime_error on an unopenable file, a foreign magic or an
  // unsupported version. Missing parent directories are created in append
  // mode.
  explicit CampaignStore(std::string path, Mode mode = Mode::kAppend);

  const std::string& path() const noexcept { return path_; }

  // Serialized and flushed; safe to call from concurrent sweep workers.
  // Throws std::logic_error when the record's stored fingerprint does not
  // match its params (a caller bug), std::runtime_error on a write failure
  // or a read-only store.
  void append(const CampaignRecord& record);

  // True when an error-free record with this fingerprint and schema hash
  // exists — the resume predicate: failed points and points recorded under
  // a different schema re-run instead of being reused.
  bool contains(std::uint64_t fingerprint,
                std::uint64_t schema_hash) const;

  // The latest error-free record with this fingerprint and schema hash;
  // nullptr when absent. Pointers stay valid until the next append().
  const CampaignRecord* find(std::uint64_t fingerprint,
                             std::uint64_t schema_hash) const;

  // Copying variant of find(), safe against concurrent append() (which may
  // reallocate the record vector) — what sweep workers use.
  bool lookup(std::uint64_t fingerprint, std::uint64_t schema_hash,
              CampaignRecord& out) const;

  // Every recovered record, append order (duplicates possible: a re-run
  // point appends again; find() prefers the latest).
  const std::vector<CampaignRecord>& records() const noexcept {
    return records_;
  }

  std::size_t size() const noexcept { return records_.size(); }

  // Bytes of torn/corrupt tail dropped during recovery (0 for a clean
  // file).
  std::size_t recovered_dropped_bytes() const noexcept {
    return dropped_bytes_;
  }

  struct CompactionResult {
    std::size_t kept = 0;     // records in the rewritten store
    std::size_t dropped = 0;  // superseded re-run/error records removed
  };

  // Rewrites the store at `path` keeping only the LATEST record of every
  // (fingerprint, schema hash) point — superseded re-runs and error
  // records that a later run replaced disappear, append order of the
  // survivors is preserved. The rewrite goes to a temp file that atomically
  // replaces the original, so a crash mid-compaction leaves the store
  // intact. Throws std::runtime_error on an unreadable store or a write
  // failure. Not safe against a concurrent writer of the same file.
  static CompactionResult compact(const std::string& path);

 private:
  void load();

  std::string path_;
  Mode mode_;
  std::ofstream out_;
  mutable std::mutex mutex_;
  std::vector<CampaignRecord> records_;
  // (fingerprint, schema hash) -> index of the latest error-free record;
  // both halves key the lookup so records from one schema version never
  // shadow still-valid records from another.
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::size_t> ok_index_;
  std::size_t dropped_bytes_ = 0;
};

// Payload (de)serialization, exposed for the durability tests.
std::string encode_record(const CampaignRecord& record);
// Throws std::runtime_error on a malformed payload.
CampaignRecord decode_record(const std::string& payload);

}  // namespace maco::store
