// One campaign-store record: everything needed to identify, reuse and
// report a sweep point without re-running it.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "exp/results.hpp"
#include "store/fingerprint.hpp"

namespace maco::store {

struct CampaignRecord {
  std::uint64_t fingerprint = 0;   // point_fingerprint of the fields below
  std::uint64_t schema_hash = 0;   // scenario schema + hardware schema digest
  std::string scenario;
  std::string fidelity;            // execution backend of the run
  // The full bound parameter set in canonical text form (defaults
  // included); explicit_params marks the user-supplied subset.
  std::map<std::string, std::string> params;
  std::set<std::string> explicit_params;
  std::vector<exp::Metric> metrics;
  std::string error;               // non-empty when the run threw
  double wall_ms = 0.0;            // wall time of the run

  bool ok() const noexcept { return error.empty(); }

  // Recomputes the fingerprint from the identity fields (what append()
  // verifies and `report --ignore` re-derives with keys dropped).
  std::uint64_t computed_fingerprint(
      const std::vector<std::string>& ignore = {}) const {
    return point_fingerprint(scenario, params, explicit_params, ignore);
  }
};

}  // namespace maco::store
