#include "store/query.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>
#include <sstream>
#include <unordered_map>

#include "util/table.hpp"

namespace maco::store {
namespace {

using exp::format_metric_value;
using exp::json_escape;

std::string param_or_empty(const CampaignRecord& record,
                           const std::string& key) {
  const auto it = record.params.find(key);
  return it == record.params.end() ? std::string() : it->second;
}

const exp::Metric* find_metric(const CampaignRecord& record,
                               const std::string& name) {
  for (const exp::Metric& metric : record.metrics) {
    if (metric.name == name) return &metric;
  }
  return nullptr;
}

// X_ci95 / X_se columns are statistical qualifiers of metric X, and the
// tile-coverage counters describe the sampling plan rather than the
// machine (both emitted by fidelity=sampled) — none are results to diff
// on their own.
bool is_error_bar_metric(const std::string& name) {
  return name.ends_with("_ci95") || name.ends_with("_se") ||
         name == "sampled_tiles" || name == "total_tiles";
}

// The 95% half-width companion of `name` (0 when the record carries none —
// an exhaustive run's value is a point, not an interval).
double ci95_of(const CampaignRecord& record, const std::string& name) {
  const exp::Metric* ci = find_metric(record, name + "_ci95");
  return ci != nullptr && std::isfinite(ci->value) ? std::abs(ci->value)
                                                   : 0.0;
}

// "gemm size=512! nodes=4" — the scenario plus the user-set knobs, the
// compact human identity of a point in comparison output.
std::string point_label(const CampaignRecord& record) {
  std::string label = record.scenario;
  for (const std::string& key : record.explicit_params) {
    label += ' ';
    label += key;
    label += '=';
    label += param_or_empty(record, key);
  }
  return label;
}

std::string percent_text(double rel_change) {
  if (std::isnan(rel_change)) return "n/a";
  if (!std::isfinite(rel_change)) return rel_change > 0 ? "+inf%" : "-inf%";
  std::ostringstream out;
  out.precision(2);
  out << std::fixed << (rel_change >= 0 ? "+" : "") << rel_change * 100.0
      << '%';
  return out.str();
}

const char* delta_status(const MetricDelta& delta) {
  if (delta.regression) return "REGRESSION";
  if (delta.improvement) return "improvement";
  return "ok";
}

}  // namespace

std::vector<const CampaignRecord*> select(
    const std::vector<CampaignRecord>& records,
    const std::map<std::string, std::string>& where) {
  std::vector<const CampaignRecord*> selected;
  for (const CampaignRecord& record : records) {
    const bool matches = std::all_of(
        where.begin(), where.end(), [&](const auto& clause) {
          if (clause.first == "scenario") {
            return record.scenario == clause.second;
          }
          const auto it = record.params.find(clause.first);
          return it != record.params.end() && it->second == clause.second;
        });
    if (matches) selected.push_back(&record);
  }
  return selected;
}

std::size_t CampaignTable::failures() const noexcept {
  std::size_t count = 0;
  for (const CampaignRecord* row : rows) {
    if (!row->ok()) ++count;
  }
  return count;
}

CampaignTable build_table(const std::vector<const CampaignRecord*>& records,
                          const std::vector<std::string>& metrics) {
  CampaignTable table;
  table.rows = records;
  if (records.empty()) return table;

  // A parameter column is "fixed" when every record agrees on its value
  // (absence counts as a distinct value, so cross-scenario mixes keep the
  // column); fixed columns collapse into the preamble.
  std::map<std::string, std::string> first_value;
  std::map<std::string, bool> varies;
  const bool one_scenario = std::all_of(
      records.begin(), records.end(), [&](const CampaignRecord* r) {
        return r->scenario == records.front()->scenario;
      });
  for (const CampaignRecord* record : records) {
    for (const auto& [key, value] : record->params) {
      const auto [it, inserted] = first_value.emplace(key, value);
      if (!inserted && it->second != value) varies[key] = true;
    }
  }
  for (const CampaignRecord* record : records) {
    for (auto& [key, value] : first_value) {
      if (record->params.count(key) == 0) varies[key] = true;
    }
  }
  if (!one_scenario) table.param_columns.push_back("scenario");
  for (const auto& [key, value] : first_value) {
    if (varies.count(key) != 0) {
      table.param_columns.push_back(key);
    } else {
      table.fixed_params.emplace(key, value);
    }
  }

  // A metric sharing its name with a parameter (a scenario echoing a swept
  // `size`) is dropped — the parameter column already carries the value.
  const auto want_metric = [&](const std::string& name) {
    if (first_value.count(name) != 0) return false;
    return metrics.empty() ||
           std::find(metrics.begin(), metrics.end(), name) != metrics.end();
  };
  for (const CampaignRecord* record : records) {
    for (const exp::Metric& metric : record->metrics) {
      if (!want_metric(metric.name)) continue;
      const bool seen = std::any_of(
          table.metric_columns.begin(), table.metric_columns.end(),
          [&](const TableColumn& column) {
            return column.name == metric.name;
          });
      if (!seen) {
        table.metric_columns.push_back(TableColumn{
            metric.name, metric.unit, metric.higher_is_better});
      }
    }
  }
  return table;
}

namespace {

void write_table_csv(std::ostream& out, const CampaignTable& table) {
  // CSV keeps every parameter (fixed ones first) so the file stands alone
  // for machine processing; only the console/markdown views collapse them.
  bool first = true;
  const auto emit = [&](const std::string& cell) {
    if (!first) out << ',';
    util::write_csv_cell(out, cell);
    first = false;
  };
  for (const auto& [key, value] : table.fixed_params) emit(key);
  for (const std::string& key : table.param_columns) emit(key);
  for (const TableColumn& column : table.metric_columns) emit(column.name);
  emit("error");
  out << '\n';
  for (const CampaignRecord* record : table.rows) {
    first = true;
    for (const auto& [key, value] : table.fixed_params) {
      emit(param_or_empty(*record, key));
    }
    for (const std::string& key : table.param_columns) {
      emit(key == "scenario" && record->params.count(key) == 0
               ? record->scenario
               : param_or_empty(*record, key));
    }
    for (const TableColumn& column : table.metric_columns) {
      const exp::Metric* metric = find_metric(*record, column.name);
      emit(metric == nullptr ? std::string()
                             : format_metric_value(metric->value));
    }
    emit(record->error);
    out << '\n';
  }
}

void write_table_json(std::ostream& out, const CampaignTable& table) {
  out << "{\"fixed_params\":{";
  bool first = true;
  for (const auto& [key, value] : table.fixed_params) {
    if (!first) out << ',';
    out << '"' << json_escape(key) << "\":\"" << json_escape(value) << '"';
    first = false;
  }
  out << "},\"columns\":[";
  first = true;
  for (const TableColumn& column : table.metric_columns) {
    if (!first) out << ',';
    out << "{\"name\":\"" << json_escape(column.name) << "\",\"unit\":\""
        << json_escape(column.unit) << "\",\"higher_is_better\":"
        << (column.higher_is_better ? "true" : "false") << '}';
    first = false;
  }
  out << "],\"rows\":[";
  bool first_row = true;
  for (const CampaignRecord* record : table.rows) {
    if (!first_row) out << ',';
    first_row = false;
    out << "{\"scenario\":\"" << json_escape(record->scenario)
        << "\",\"fidelity\":\"" << json_escape(record->fidelity)
        << "\",\"params\":{";
    first = true;
    for (const auto& [key, value] : record->params) {
      if (!first) out << ',';
      out << '"' << json_escape(key) << "\":\"" << json_escape(value)
          << '"';
      first = false;
    }
    out << "},\"metrics\":{";
    first = true;
    for (const exp::Metric& metric : record->metrics) {
      if (!first) out << ',';
      out << '"' << json_escape(metric.name) << "\":";
      if (std::isfinite(metric.value)) {
        out << format_metric_value(metric.value);
      } else {
        out << "null";
      }
      first = false;
    }
    out << "},\"wall_ms\":" << format_metric_value(record->wall_ms);
    if (!record->ok()) {
      out << ",\"error\":\"" << json_escape(record->error) << '"';
    }
    out << '}';
  }
  out << "]}\n";
}

std::string markdown_escape(const std::string& text) {
  std::string escaped;
  escaped.reserve(text.size());
  for (const char c : text) {
    if (c == '|') escaped += "\\|";
    else if (c == '\n') escaped += ' ';
    else escaped += c;
  }
  return escaped;
}

void write_table_markdown(std::ostream& out, const CampaignTable& table) {
  if (!table.fixed_params.empty()) {
    out << "Fixed:";
    for (const auto& [key, value] : table.fixed_params) {
      out << " `" << key << "=" << value << "`";
    }
    out << "\n\n";
  }
  out << '|';
  for (const std::string& key : table.param_columns) {
    out << ' ' << markdown_escape(key) << " |";
  }
  for (const TableColumn& column : table.metric_columns) {
    out << ' ' << markdown_escape(column.name);
    if (!column.unit.empty()) out << " [" << markdown_escape(column.unit)
                                  << ']';
    out << " |";
  }
  out << " error |\n|";
  for (std::size_t i = 0;
       i < table.param_columns.size() + table.metric_columns.size() + 1;
       ++i) {
    out << "---|";
  }
  out << '\n';
  for (const CampaignRecord* record : table.rows) {
    out << '|';
    for (const std::string& key : table.param_columns) {
      out << ' '
          << markdown_escape(
                 key == "scenario" && record->params.count(key) == 0
                     ? record->scenario
                     : param_or_empty(*record, key))
          << " |";
    }
    for (const TableColumn& column : table.metric_columns) {
      const exp::Metric* metric = find_metric(*record, column.name);
      out << ' '
          << (metric == nullptr ? std::string()
                                : format_metric_value(metric->value))
          << " |";
    }
    out << ' ' << markdown_escape(record->error) << " |\n";
  }
}

void write_table_console(std::ostream& out, const CampaignTable& table) {
  for (const auto& [key, value] : table.fixed_params) {
    out << "  fixed: " << key << " = " << value << "\n";
  }
  std::vector<std::string> headers = table.param_columns;
  for (const TableColumn& column : table.metric_columns) {
    headers.push_back(column.unit.empty()
                          ? column.name
                          : column.name + " [" + column.unit + "]");
  }
  headers.push_back("error");
  util::Table t(headers);
  for (const CampaignRecord* record : table.rows) {
    auto row = t.row();
    for (const std::string& key : table.param_columns) {
      row.cell(key == "scenario" && record->params.count(key) == 0
                   ? record->scenario
                   : param_or_empty(*record, key));
    }
    for (const TableColumn& column : table.metric_columns) {
      if (const exp::Metric* metric = find_metric(*record, column.name)) {
        row.cell(metric->value, 4);
      } else {
        row.cell("");
      }
    }
    row.cell(record->error);
  }
  std::ostringstream title;
  title << table.rows.size() << " point(s)";
  if (table.failures() > 0) title << ", " << table.failures() << " FAILED";
  t.print(out, title.str());
}

}  // namespace

void write_table(std::ostream& out, const CampaignTable& table,
                 ReportFormat format) {
  switch (format) {
    case ReportFormat::kTable: write_table_console(out, table); return;
    case ReportFormat::kCsv: write_table_csv(out, table); return;
    case ReportFormat::kJson: write_table_json(out, table); return;
    case ReportFormat::kMarkdown: write_table_markdown(out, table); return;
  }
}

std::size_t CampaignComparison::regressions() const noexcept {
  std::size_t count = 0;
  for (const PointComparison& point : points) {
    for (const MetricDelta& delta : point.deltas) {
      count += delta.regression ? 1 : 0;
    }
  }
  return count;
}

std::size_t CampaignComparison::improvements() const noexcept {
  std::size_t count = 0;
  for (const PointComparison& point : points) {
    for (const MetricDelta& delta : point.deltas) {
      count += delta.improvement ? 1 : 0;
    }
  }
  return count;
}

CampaignComparison compare_campaigns(
    const std::vector<const CampaignRecord*>& current,
    const std::vector<const CampaignRecord*>& baseline,
    const CompareOptions& options) {
  CampaignComparison comparison;
  // Latest error-free record per (possibly ignore-reduced) fingerprint.
  // A later record with the same full fingerprint supersedes a re-run;
  // one with a DIFFERENT full fingerprint means --ignore collapsed two
  // genuinely distinct points (the store sweeps an ignored knob) — count
  // it so the summary can say data was excluded.
  const auto index = [&](const std::vector<const CampaignRecord*>& records,
                         std::size_t& collapsed) {
    std::unordered_map<std::uint64_t, const CampaignRecord*> map;
    for (const CampaignRecord* record : records) {
      if (!record->ok()) continue;
      const auto [it, inserted] =
          map.emplace(record->computed_fingerprint(options.ignore), record);
      if (!inserted) {
        if (it->second->fingerprint != record->fingerprint) ++collapsed;
        it->second = record;
      }
    }
    return map;
  };
  const auto current_index = index(current, comparison.current_collapsed);
  const auto baseline_index =
      index(baseline, comparison.baseline_collapsed);
  for (const CampaignRecord* record : current) {
    if (!record->ok()) continue;
    const std::uint64_t key = record->computed_fingerprint(options.ignore);
    if (current_index.at(key) != record) continue;  // superseded duplicate
    const auto partner = baseline_index.find(key);
    if (partner == baseline_index.end()) {
      ++comparison.current_only;
      continue;
    }
    PointComparison point;
    point.current = record;
    point.baseline = partner->second;
    for (const exp::Metric& metric : record->metrics) {
      if (!options.metrics.empty() &&
          std::find(options.metrics.begin(), options.metrics.end(),
                    metric.name) == options.metrics.end()) {
        continue;
      }
      if (is_error_bar_metric(metric.name)) continue;
      const exp::Metric* reference =
          find_metric(*point.baseline, metric.name);
      if (reference == nullptr) continue;
      MetricDelta delta;
      delta.metric = metric.name;
      delta.unit = metric.unit;
      delta.higher_is_better = metric.higher_is_better;
      delta.baseline = reference->value;
      delta.current = metric.value;
      if (!std::isfinite(reference->value) ||
          !std::isfinite(metric.value)) {
        // NaN/inf cannot be judged numerically, and letting a metric that
        // degraded to NaN read as "ok" would green-light exactly what the
        // gate exists to catch: only an identical non-finite pair passes.
        const bool unchanged =
            reference->value == metric.value ||
            (std::isnan(reference->value) && std::isnan(metric.value));
        delta.rel_change =
            unchanged ? 0.0 : std::numeric_limits<double>::quiet_NaN();
        delta.regression = !unchanged;
        point.deltas.push_back(std::move(delta));
        continue;
      }
      if (reference->value != 0.0) {
        delta.rel_change = (metric.value - reference->value) /
                           std::abs(reference->value);
      } else if (metric.value == 0.0) {
        delta.rel_change = 0.0;
      } else {
        delta.rel_change = metric.value > 0.0
                               ? std::numeric_limits<double>::infinity()
                               : -std::numeric_limits<double>::infinity();
      }
      const double worsening =
          metric.higher_is_better ? -delta.rel_change : delta.rel_change;
      delta.regression = worsening > options.tolerance;
      delta.improvement = -worsening > options.tolerance;
      // Error-bar widening: sampled estimates carry X_ci95 companions;
      // when the two intervals overlap, the movement is within the
      // estimates' joint uncertainty and is neither a regression nor an
      // improvement.
      delta.ci_current = ci95_of(*record, metric.name);
      delta.ci_baseline = ci95_of(*point.baseline, metric.name);
      if ((delta.regression || delta.improvement) &&
          std::abs(metric.value - reference->value) <=
              delta.ci_current + delta.ci_baseline) {
        delta.regression = false;
        delta.improvement = false;
      }
      point.deltas.push_back(std::move(delta));
    }
    comparison.points.push_back(std::move(point));
  }
  std::size_t matched_baseline = 0;
  for (const auto& [key, record] : baseline_index) {
    matched_baseline += current_index.count(key) != 0 ? 1 : 0;
  }
  comparison.baseline_only = baseline_index.size() - matched_baseline;
  return comparison;
}

namespace {

void write_comparison_console(std::ostream& out,
                              const CampaignComparison& comparison,
                              const CompareOptions& options,
                              bool markdown) {
  std::ostringstream summary;
  summary << comparison.points.size() << " matched point(s), "
          << comparison.regressions() << " regression(s), "
          << comparison.improvements() << " improvement(s)";
  if (comparison.current_only > 0 || comparison.baseline_only > 0) {
    summary << ", " << comparison.current_only << " current-only, "
            << comparison.baseline_only << " baseline-only";
  }
  if (comparison.current_collapsed > 0 ||
      comparison.baseline_collapsed > 0) {
    summary << ", " << comparison.current_collapsed << "+"
            << comparison.baseline_collapsed
            << " point(s) EXCLUDED by --ignore collapse";
  }
  summary << " (tolerance " << percent_text(options.tolerance).substr(1)
          << ")";
  if (markdown) {
    out << "**" << summary.str() << "**\n\n"
        << "| point | metric | baseline | current | change | status |\n"
        << "|---|---|---|---|---|---|\n";
    for (const PointComparison& point : comparison.points) {
      for (const MetricDelta& delta : point.deltas) {
        out << "| " << markdown_escape(point_label(*point.current)) << " | "
            << markdown_escape(delta.metric) << " | "
            << format_metric_value(delta.baseline) << " | "
            << format_metric_value(delta.current) << " | "
            << percent_text(delta.rel_change) << " | "
            << delta_status(delta) << " |\n";
      }
    }
    return;
  }
  util::Table t(
      {"point", "metric", "baseline", "current", "change", "status"});
  for (const PointComparison& point : comparison.points) {
    for (const MetricDelta& delta : point.deltas) {
      t.row()
          .cell(point_label(*point.current))
          .cell(delta.metric)
          .cell(format_metric_value(delta.baseline))
          .cell(format_metric_value(delta.current))
          .cell(percent_text(delta.rel_change))
          .cell(delta_status(delta));
    }
  }
  t.print(out, summary.str());
}

void write_comparison_csv(std::ostream& out,
                          const CampaignComparison& comparison) {
  out << "point,metric,unit,baseline,current,rel_change,status\n";
  for (const PointComparison& point : comparison.points) {
    for (const MetricDelta& delta : point.deltas) {
      util::write_csv_cell(out, point_label(*point.current));
      out << ',';
      util::write_csv_cell(out, delta.metric);
      out << ',';
      util::write_csv_cell(out, delta.unit);
      out << ',' << format_metric_value(delta.baseline) << ','
          << format_metric_value(delta.current) << ','
          << format_metric_value(delta.rel_change) << ','
          << delta_status(delta) << '\n';
    }
  }
}

// inf/nan metric values round-trip through the store but have no JSON
// literal; every number in the comparison document goes through this.
std::string json_number(double value) {
  return std::isfinite(value) ? format_metric_value(value)
                              : std::string("null");
}

void write_comparison_json(std::ostream& out,
                           const CampaignComparison& comparison,
                           const CompareOptions& options) {
  out << "{\"tolerance\":" << format_metric_value(options.tolerance)
      << ",\"matched\":" << comparison.points.size()
      << ",\"regressions\":" << comparison.regressions()
      << ",\"improvements\":" << comparison.improvements()
      << ",\"current_only\":" << comparison.current_only
      << ",\"baseline_only\":" << comparison.baseline_only
      << ",\"current_collapsed\":" << comparison.current_collapsed
      << ",\"baseline_collapsed\":" << comparison.baseline_collapsed
      << ",\"points\":[";
  bool first_point = true;
  for (const PointComparison& point : comparison.points) {
    if (!first_point) out << ',';
    first_point = false;
    out << "{\"point\":\"" << json_escape(point_label(*point.current))
        << "\",\"deltas\":[";
    bool first = true;
    for (const MetricDelta& delta : point.deltas) {
      if (!first) out << ',';
      first = false;
      out << "{\"metric\":\"" << json_escape(delta.metric)
          << "\",\"baseline\":" << json_number(delta.baseline)
          << ",\"current\":" << json_number(delta.current);
      if (delta.ci_baseline > 0.0 || delta.ci_current > 0.0) {
        out << ",\"ci95_baseline\":" << json_number(delta.ci_baseline)
            << ",\"ci95_current\":" << json_number(delta.ci_current);
      }
      out << ",\"rel_change\":" << json_number(delta.rel_change)
          << ",\"status\":\"" << delta_status(delta) << "\"}";
    }
    out << "]}";
  }
  out << "]}\n";
}

}  // namespace

void write_comparison(std::ostream& out,
                      const CampaignComparison& comparison,
                      ReportFormat format, const CompareOptions& options) {
  switch (format) {
    case ReportFormat::kTable:
      write_comparison_console(out, comparison, options, false);
      return;
    case ReportFormat::kMarkdown:
      write_comparison_console(out, comparison, options, true);
      return;
    case ReportFormat::kCsv:
      write_comparison_csv(out, comparison);
      return;
    case ReportFormat::kJson:
      write_comparison_json(out, comparison, options);
      return;
  }
}

}  // namespace maco::store
