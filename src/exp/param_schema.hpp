// Declarative parameter schemas for the experiment API.
//
// A ParamSchema is the single description of what a scenario (or the
// hardware-knob namespace) accepts: per parameter a name, a type, a default,
// an optional numeric range or enum choice list, and a description. The CLI
// grammar, --list-scenarios, the sweep runner's up-front validation and the
// scenario bodies all consume the same schema, so user text is parsed and
// range-checked exactly once — ParamSchema::bind turns a raw key=value map
// into a fully-typed, fully-defaulted ParamSet or throws a typed diagnostic.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "exp/param_value.hpp"

namespace maco::exp {

struct ParamDecl {
  std::string name;
  ParamType type = ParamType::kString;
  ParamValue default_value;
  std::string description;

  // Inclusive numeric range; the full-type range means "unbounded" and is
  // omitted from help text.
  std::uint64_t min_u64 = 0;
  std::uint64_t max_u64 = std::numeric_limits<std::uint64_t>::max();
  double min_f64 = std::numeric_limits<double>::lowest();
  double max_f64 = std::numeric_limits<double>::max();

  std::vector<std::string> choices;  // kEnum: the legal spellings

  bool bounded() const noexcept;
  // "[1,16]" for bounded numerics, "fp64|fp32|fp16" for enums, "" otherwise.
  std::string range_text() const;
};

// A declarative cross-field constraint: a human-readable rule (what
// --list-scenarios prints) plus the predicate that enforces it over a fully
// bound ParamSet. Per-value checks belong on the ParamDecl; constraints
// relate two or more parameters (kept <= group, fidelity=detailed size cap,
// node_count vs mesh capacity).
struct ParamConstraint {
  std::string rule;  // e.g. "kept <= group"
  std::function<bool(const class ParamSet&)> satisfied;
};

// The typed parameters of one run: every declared parameter is present
// (explicit or default). Accessors throw std::logic_error on an undeclared
// name or a type mismatch — both scenario-code bugs, since values only enter
// through the schema.
class ParamSet {
 public:
  std::uint64_t u64(std::string_view name) const;
  double f64(std::string_view name) const;
  bool flag(std::string_view name) const;
  const std::string& str(std::string_view name) const;  // enum or string

  const ParamValue& value(std::string_view name) const;
  bool has(std::string_view name) const noexcept;
  // True when the user supplied `name` explicitly (vs the schema default).
  bool was_set(std::string_view name) const noexcept;

  const std::map<std::string, ParamValue>& values() const noexcept {
    return values_;
  }

 private:
  friend class ParamSchema;
  std::map<std::string, ParamValue> values_;
  std::set<std::string> explicit_;
};

class ParamSchema {
 public:
  // Builder-style declaration helpers (return *this for chaining).
  ParamSchema& u64(std::string name, std::uint64_t default_value,
                   std::string description,
                   std::uint64_t min = 0,
                   std::uint64_t max =
                       std::numeric_limits<std::uint64_t>::max());
  ParamSchema& f64(std::string name, double default_value,
                   std::string description,
                   double min = std::numeric_limits<double>::lowest(),
                   double max = std::numeric_limits<double>::max());
  ParamSchema& flag(std::string name, bool default_value,
                    std::string description);
  ParamSchema& enumerant(std::string name, std::string default_value,
                         std::vector<std::string> choices,
                         std::string description);
  ParamSchema& str(std::string name, std::string default_value,
                   std::string description);

  // Declares a cross-field constraint checked by bind() after defaults are
  // filled; a violated rule throws std::invalid_argument naming it. The
  // rule text is surfaced by --list-scenarios next to the parameters it
  // relates, so users see "kept <= group" before any run.
  ParamSchema& constrain(std::string rule,
                         std::function<bool(const ParamSet&)> satisfied);

  // Appends every declaration and constraint of `other` (duplicate names
  // throw).
  ParamSchema& merge(const ParamSchema& other);

  const std::vector<ParamConstraint>& constraints() const noexcept {
    return constraints_;
  }

  const std::vector<ParamDecl>& decls() const noexcept { return decls_; }
  const ParamDecl* find(std::string_view name) const noexcept;
  bool has(std::string_view name) const noexcept {
    return find(name) != nullptr;
  }

  // Parses one user-supplied value against its declaration. Throws
  // std::invalid_argument with a typed diagnostic on an unknown name, a
  // malformed value, an out-of-range number or an unknown enum choice.
  ParamValue parse(std::string_view name, const std::string& text) const;

  // Validates the whole raw map and fills defaults for absent parameters.
  ParamSet bind(const std::map<std::string, std::string>& raw) const;

  // The all-defaults ParamSet (bind of an empty map).
  ParamSet defaults() const;

 private:
  ParamSchema& add(ParamDecl decl);
  std::vector<ParamDecl> decls_;
  std::vector<ParamConstraint> constraints_;
};

}  // namespace maco::exp
