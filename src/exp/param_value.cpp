#include "exp/param_value.hpp"

#include <stdexcept>

#include "exp/results.hpp"

namespace maco::exp {
namespace {

[[noreturn]] void type_mismatch(ParamType actual, const char* wanted) {
  throw std::logic_error(std::string("ParamValue type mismatch: holds ") +
                         param_type_name(actual) + ", accessed as " + wanted);
}

}  // namespace

const char* param_type_name(ParamType type) noexcept {
  switch (type) {
    case ParamType::kU64: return "u64";
    case ParamType::kF64: return "f64";
    case ParamType::kBool: return "bool";
    case ParamType::kEnum: return "enum";
    case ParamType::kString: return "string";
  }
  return "?";
}

ParamValue ParamValue::u64(std::uint64_t value) {
  return ParamValue(ParamType::kU64, value);
}

ParamValue ParamValue::f64(double value) {
  return ParamValue(ParamType::kF64, value);
}

ParamValue ParamValue::boolean(bool value) {
  return ParamValue(ParamType::kBool, value);
}

ParamValue ParamValue::enumerant(std::string value) {
  return ParamValue(ParamType::kEnum, std::move(value));
}

ParamValue ParamValue::str(std::string value) {
  return ParamValue(ParamType::kString, std::move(value));
}

std::uint64_t ParamValue::as_u64() const {
  if (type_ != ParamType::kU64) type_mismatch(type_, "u64");
  return std::get<std::uint64_t>(value_);
}

double ParamValue::as_f64() const {
  if (type_ == ParamType::kU64) {
    return static_cast<double>(std::get<std::uint64_t>(value_));
  }
  if (type_ != ParamType::kF64) type_mismatch(type_, "f64");
  return std::get<double>(value_);
}

bool ParamValue::as_bool() const {
  if (type_ != ParamType::kBool) type_mismatch(type_, "bool");
  return std::get<bool>(value_);
}

const std::string& ParamValue::as_str() const {
  if (type_ != ParamType::kEnum && type_ != ParamType::kString) {
    type_mismatch(type_, "enum/string");
  }
  return std::get<std::string>(value_);
}

std::string ParamValue::to_string() const {
  switch (type_) {
    case ParamType::kU64:
      return std::to_string(std::get<std::uint64_t>(value_));
    case ParamType::kF64:
      // The canonical number format (integral doubles without a decimal
      // point, 10 significant digits otherwise) — shared with the metric
      // writers so parse(to_string()) round-trips and nothing drifts.
      return format_metric_value(std::get<double>(value_));
    case ParamType::kBool:
      return std::get<bool>(value_) ? "true" : "false";
    case ParamType::kEnum:
    case ParamType::kString:
      return std::get<std::string>(value_);
  }
  return {};
}

}  // namespace maco::exp
