#include "exp/param_schema.hpp"

#include <charconv>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace maco::exp {
namespace {

std::string format_f64(double value) { return ParamValue::f64(value).to_string(); }

[[noreturn]] void bad_value(std::string_view name, const std::string& text,
                            const std::string& wanted) {
  throw std::invalid_argument("parameter '" + std::string(name) +
                              "': expected " + wanted + ", got '" + text +
                              "'");
}

}  // namespace

bool ParamDecl::bounded() const noexcept {
  switch (type) {
    case ParamType::kU64:
      return min_u64 != 0 ||
             max_u64 != std::numeric_limits<std::uint64_t>::max();
    case ParamType::kF64:
      return min_f64 != std::numeric_limits<double>::lowest() ||
             max_f64 != std::numeric_limits<double>::max();
    default:
      return false;
  }
}

std::string ParamDecl::range_text() const {
  switch (type) {
    case ParamType::kU64:
      if (!bounded()) return {};
      if (max_u64 == std::numeric_limits<std::uint64_t>::max()) {
        return "[" + std::to_string(min_u64) + ",...]";
      }
      return "[" + std::to_string(min_u64) + "," + std::to_string(max_u64) +
             "]";
    case ParamType::kF64:
      if (!bounded()) return {};
      return "[" + format_f64(min_f64) + "," + format_f64(max_f64) + "]";
    case ParamType::kEnum: {
      std::string text;
      for (const std::string& choice : choices) {
        if (!text.empty()) text += '|';
        text += choice;
      }
      return text;
    }
    case ParamType::kBool:
    case ParamType::kString:
      return {};
  }
  return {};
}

std::uint64_t ParamSet::u64(std::string_view name) const {
  return value(name).as_u64();
}

double ParamSet::f64(std::string_view name) const {
  return value(name).as_f64();
}

bool ParamSet::flag(std::string_view name) const {
  return value(name).as_bool();
}

const std::string& ParamSet::str(std::string_view name) const {
  return value(name).as_str();
}

const ParamValue& ParamSet::value(std::string_view name) const {
  const auto it = values_.find(std::string(name));
  if (it == values_.end()) {
    throw std::logic_error("ParamSet: no parameter '" + std::string(name) +
                           "' (not declared in the scenario's schema?)");
  }
  return it->second;
}

bool ParamSet::has(std::string_view name) const noexcept {
  return values_.count(std::string(name)) != 0;
}

bool ParamSet::was_set(std::string_view name) const noexcept {
  return explicit_.count(std::string(name)) != 0;
}

ParamSchema& ParamSchema::add(ParamDecl decl) {
  if (has(decl.name)) {
    throw std::logic_error("ParamSchema: duplicate parameter '" + decl.name +
                           "'");
  }
  decls_.push_back(std::move(decl));
  return *this;
}

ParamSchema& ParamSchema::u64(std::string name, std::uint64_t default_value,
                              std::string description, std::uint64_t min,
                              std::uint64_t max) {
  ParamDecl decl;
  decl.name = std::move(name);
  decl.type = ParamType::kU64;
  decl.default_value = ParamValue::u64(default_value);
  decl.description = std::move(description);
  decl.min_u64 = min;
  decl.max_u64 = max;
  if (default_value < min || default_value > max) {
    throw std::logic_error("ParamSchema: u64 '" + decl.name + "' default " +
                           std::to_string(default_value) +
                           " is outside its range " + decl.range_text());
  }
  return add(std::move(decl));
}

ParamSchema& ParamSchema::f64(std::string name, double default_value,
                              std::string description, double min,
                              double max) {
  ParamDecl decl;
  decl.name = std::move(name);
  decl.type = ParamType::kF64;
  decl.default_value = ParamValue::f64(default_value);
  decl.description = std::move(description);
  decl.min_f64 = min;
  decl.max_f64 = max;
  if (!std::isfinite(default_value) ||
      !(default_value >= min && default_value <= max)) {
    throw std::logic_error("ParamSchema: f64 '" + decl.name + "' default " +
                           decl.default_value.to_string() +
                           " is outside its range " + decl.range_text());
  }
  return add(std::move(decl));
}

ParamSchema& ParamSchema::flag(std::string name, bool default_value,
                               std::string description) {
  ParamDecl decl;
  decl.name = std::move(name);
  decl.type = ParamType::kBool;
  decl.default_value = ParamValue::boolean(default_value);
  decl.description = std::move(description);
  return add(std::move(decl));
}

ParamSchema& ParamSchema::enumerant(std::string name,
                                    std::string default_value,
                                    std::vector<std::string> choices,
                                    std::string description) {
  ParamDecl decl;
  decl.name = std::move(name);
  decl.type = ParamType::kEnum;
  decl.description = std::move(description);
  decl.choices = std::move(choices);
  bool default_known = false;
  for (const std::string& choice : decl.choices) {
    default_known = default_known || choice == default_value;
  }
  if (!default_known) {
    throw std::logic_error("ParamSchema: enum '" + decl.name +
                           "' default '" + default_value +
                           "' is not one of its choices");
  }
  decl.default_value = ParamValue::enumerant(std::move(default_value));
  return add(std::move(decl));
}

ParamSchema& ParamSchema::str(std::string name, std::string default_value,
                              std::string description) {
  ParamDecl decl;
  decl.name = std::move(name);
  decl.type = ParamType::kString;
  decl.default_value = ParamValue::str(std::move(default_value));
  decl.description = std::move(description);
  return add(std::move(decl));
}

ParamSchema& ParamSchema::constrain(
    std::string rule, std::function<bool(const ParamSet&)> satisfied) {
  if (!satisfied) {
    throw std::logic_error("ParamSchema: constraint '" + rule +
                           "' has no predicate");
  }
  constraints_.push_back(
      ParamConstraint{std::move(rule), std::move(satisfied)});
  return *this;
}

ParamSchema& ParamSchema::merge(const ParamSchema& other) {
  for (const ParamDecl& decl : other.decls_) add(decl);
  for (const ParamConstraint& constraint : other.constraints_) {
    constraints_.push_back(constraint);
  }
  return *this;
}

const ParamDecl* ParamSchema::find(std::string_view name) const noexcept {
  for (const ParamDecl& decl : decls_) {
    if (decl.name == name) return &decl;
  }
  return nullptr;
}

ParamValue ParamSchema::parse(std::string_view name,
                              const std::string& text) const {
  const ParamDecl* decl = find(name);
  if (decl == nullptr) {
    throw std::invalid_argument("unknown parameter '" + std::string(name) +
                                "'");
  }
  switch (decl->type) {
    case ParamType::kU64: {
      std::uint64_t value = 0;
      const char* begin = text.data();
      const char* end = begin + text.size();
      const auto [ptr, ec] = std::from_chars(begin, end, value);
      if (ec != std::errc{} || ptr != end) {
        bad_value(name, text, "an unsigned integer (u64)");
      }
      if (value < decl->min_u64 || value > decl->max_u64) {
        bad_value(name, text, "a u64 in " + decl->range_text());
      }
      return ParamValue::u64(value);
    }
    case ParamType::kF64: {
      double value = 0.0;
      try {
        std::size_t consumed = 0;
        value = std::stod(text, &consumed);
        if (consumed != text.size()) bad_value(name, text, "a number (f64)");
      } catch (const std::invalid_argument&) {
        bad_value(name, text, "a number (f64)");
      } catch (const std::out_of_range&) {
        bad_value(name, text, "a representable number (f64)");
      }
      // Negated comparisons so NaN (for which both orderings are false)
      // cannot slip through the range check.
      if (!std::isfinite(value) ||
          !(value >= decl->min_f64 && value <= decl->max_f64)) {
        bad_value(name, text,
                  decl->bounded() ? "an f64 in " + decl->range_text()
                                  : "a finite f64");
      }
      return ParamValue::f64(value);
    }
    case ParamType::kBool: {
      if (text == "1" || text == "true" || text == "on" || text == "yes") {
        return ParamValue::boolean(true);
      }
      if (text == "0" || text == "false" || text == "off" || text == "no") {
        return ParamValue::boolean(false);
      }
      bad_value(name, text, "a boolean (true/false/1/0/on/off)");
    }
    case ParamType::kEnum: {
      for (const std::string& choice : decl->choices) {
        if (text == choice) return ParamValue::enumerant(text);
      }
      bad_value(name, text, "one of " + decl->range_text());
    }
    case ParamType::kString:
      return ParamValue::str(text);
  }
  bad_value(name, text, "a value");  // unreachable
}

ParamSet ParamSchema::bind(const std::map<std::string, std::string>& raw)
    const {
  ParamSet set;
  for (const auto& [key, text] : raw) {
    set.values_.insert_or_assign(key, parse(key, text));
    set.explicit_.insert(key);
  }
  for (const ParamDecl& decl : decls_) {
    set.values_.emplace(decl.name, decl.default_value);
  }
  // Cross-field constraints run over the fully-defaulted set, so a rule
  // like "kept <= group" also catches an explicit value clashing with a
  // default.
  for (const ParamConstraint& constraint : constraints_) {
    if (!constraint.satisfied(set)) {
      throw std::invalid_argument("constraint '" + constraint.rule +
                                  "' violated by the given parameters");
    }
  }
  return set;
}

ParamSet ParamSchema::defaults() const { return bind({}); }

}  // namespace maco::exp
