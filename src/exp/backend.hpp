// Pluggable fidelity backends for the experiment API.
//
// An ExecutionBackend turns TimingOptions into SystemTiming at a chosen
// fidelity: `analytic` evaluates core::SystemTimingModel (closed forms +
// contention models, paper-scale in microseconds), `detailed` executes the
// GEMM end to end on core::MacoSystem with the flit-level mesh and real
// data (small shapes only), `sampled` simulates a seeded stratified sample
// of the first-level tile grid on the same detailed machine and scales the
// per-stratum means to full-workload estimates with confidence intervals
// (src/sampling/ — paper-scale shapes, no size cap). Scenarios declare
// which fidelities they support in their ParamSchema; the sweep runner
// selects the backend per point from the `fidelity` parameter.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "core/config.hpp"
#include "core/timing_model.hpp"
#include "obs/observation.hpp"

namespace maco::exp {

enum class Fidelity { kAnalytic, kDetailed, kSampled };

std::string_view fidelity_name(Fidelity fidelity) noexcept;
// Throws std::invalid_argument on an unknown spelling.
Fidelity parse_fidelity(std::string_view name);

class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;

  virtual Fidelity fidelity() const noexcept = 0;

  // One GEMM (options.shape) under the scenario's execution options.
  // A non-null `observation` asks the backend to capture counters/spans
  // per its want_* flags; only the detailed backend records anything (the
  // analytic and sampled rungs have no machine to observe), and capture
  // never changes the returned timing.
  virtual core::SystemTiming run(const core::TimingOptions& options,
                                 obs::RunObservation* observation =
                                     nullptr) = 0;

  // A layer sequence (a DNN / HPL trailing updates) back to back; layer
  // observations fold into `observation` with spans offset so the trace
  // reads as one run.
  virtual core::SystemTiming run_layers(
      const std::vector<sa::TileShape>& layers,
      const core::TimingOptions& options,
      obs::RunObservation* observation = nullptr) = 0;
};

std::unique_ptr<ExecutionBackend> make_backend(
    Fidelity fidelity, const core::SystemConfig& config);

}  // namespace maco::exp
