#include "exp/backend.hpp"

#include <stdexcept>
#include <string>

#include "core/detailed_runner.hpp"
#include "sampling/sampled_runner.hpp"

namespace maco::exp {
namespace {

class AnalyticBackend final : public ExecutionBackend {
 public:
  explicit AnalyticBackend(const core::SystemConfig& config)
      : model_(config) {}

  Fidelity fidelity() const noexcept override {
    return Fidelity::kAnalytic;
  }

  core::SystemTiming run(const core::TimingOptions& options,
                         obs::RunObservation* /*observation*/) override {
    return model_.run(options);
  }

  core::SystemTiming run_layers(
      const std::vector<sa::TileShape>& layers,
      const core::TimingOptions& options,
      obs::RunObservation* /*observation*/) override {
    return model_.run_layers(layers, options);
  }

 private:
  core::SystemTimingModel model_;
};

class DetailedBackend final : public ExecutionBackend {
 public:
  explicit DetailedBackend(const core::SystemConfig& config)
      : config_(config) {}

  Fidelity fidelity() const noexcept override {
    return Fidelity::kDetailed;
  }

  core::SystemTiming run(const core::TimingOptions& options,
                         obs::RunObservation* observation) override {
    return core::run_detailed_gemm(config_, options, observation);
  }

  core::SystemTiming run_layers(
      const std::vector<sa::TileShape>& layers,
      const core::TimingOptions& options,
      obs::RunObservation* observation) override {
    // Layers execute back to back. Per-node spans/work and translation
    // stats accumulate over the whole sequence (translation weighted by
    // each layer's makespan), so the aggregate SystemTiming is internally
    // consistent rather than describing only the last layer.
    if (layers.empty()) {
      throw std::invalid_argument("run_layers: empty layer list");
    }
    core::TimingOptions layer_options = options;
    core::SystemTiming result;
    double total_ps = 0.0;
    double walks_weighted = 0.0;
    double pages_weighted = 0.0;
    double stall_weighted = 0.0;
    for (const sa::TileShape& layer : layers) {
      layer_options.shape = layer;
      obs::RunObservation layer_observation;
      obs::RunObservation* layer_obs_ptr = nullptr;
      if (observation != nullptr) {
        layer_observation.want_counters = observation->want_counters;
        layer_observation.want_trace = observation->want_trace;
        layer_obs_ptr = &layer_observation;
      }
      const core::SystemTiming timing =
          core::run_detailed_gemm(config_, layer_options, layer_obs_ptr);
      if (observation != nullptr) {
        // Shift this layer's spans past the layers already accumulated so
        // the merged trace shows the back-to-back sequence.
        observation->merge(layer_observation,
                           static_cast<sim::TimePs>(total_ps));
      }
      if (result.nodes.empty()) result.nodes.resize(timing.nodes.size());
      for (std::size_t i = 0; i < timing.nodes.size(); ++i) {
        result.nodes[i].span_ps += timing.nodes[i].span_ps;
        result.nodes[i].compute_ps += timing.nodes[i].compute_ps;
        result.nodes[i].dma_tile_ps += timing.nodes[i].dma_tile_ps;
        result.nodes[i].translation_exposed_ps +=
            timing.nodes[i].translation_exposed_ps;
        result.nodes[i].macs += timing.nodes[i].macs;
      }
      const double weight = static_cast<double>(timing.makespan_ps);
      total_ps += weight;
      walks_weighted += timing.translation.walks_per_tile * weight;
      pages_weighted += timing.translation.pages_per_tile * weight;
      stall_weighted +=
          static_cast<double>(timing.translation.stall_per_tile_ps) *
          weight;
    }
    const double peak_macs = config_.mmae_peak_macs(options.precision);
    std::uint64_t total_macs = 0;
    for (core::NodeTiming& node : result.nodes) {
      const double span_s = sim::to_seconds(node.span_ps);
      node.gflops = span_s > 0.0
                        ? 2.0 * static_cast<double>(node.macs) / span_s / 1e9
                        : 0.0;
      node.efficiency =
          span_s > 0.0 && peak_macs > 0.0
              ? static_cast<double>(node.macs) / span_s / peak_macs
              : 0.0;
      result.mean_efficiency += node.efficiency;
      total_macs += node.macs;
    }
    result.mean_efficiency /= static_cast<double>(result.nodes.size());
    result.makespan_ps = static_cast<sim::TimePs>(total_ps);
    result.total_gflops =
        total_ps > 0.0
            ? 2.0 * static_cast<double>(total_macs) / (total_ps * 1e-12) /
                  1e9
            : 0.0;
    if (total_ps > 0.0) {
      result.translation.walks_per_tile = walks_weighted / total_ps;
      result.translation.pages_per_tile = pages_weighted / total_ps;
      result.translation.stall_per_tile_ps =
          static_cast<sim::TimePs>(stall_weighted / total_ps);
    }
    return result;
  }

 private:
  core::SystemConfig config_;
};

class SampledBackend final : public ExecutionBackend {
 public:
  explicit SampledBackend(const core::SystemConfig& config)
      : config_(config) {}

  Fidelity fidelity() const noexcept override {
    return Fidelity::kSampled;
  }

  core::SystemTiming run(const core::TimingOptions& options,
                         obs::RunObservation* /*observation*/) override {
    return sampling::run_sampled_gemm(config_, options);
  }

  core::SystemTiming run_layers(
      const std::vector<sa::TileShape>& layers,
      const core::TimingOptions& options,
      obs::RunObservation* /*observation*/) override {
    return sampling::run_sampled_layers(config_, layers, options);
  }

 private:
  core::SystemConfig config_;
};

}  // namespace

std::string_view fidelity_name(Fidelity fidelity) noexcept {
  switch (fidelity) {
    case Fidelity::kAnalytic: return "analytic";
    case Fidelity::kDetailed: return "detailed";
    case Fidelity::kSampled: return "sampled";
  }
  return "?";
}

Fidelity parse_fidelity(std::string_view name) {
  if (name == "analytic") return Fidelity::kAnalytic;
  if (name == "detailed") return Fidelity::kDetailed;
  if (name == "sampled") return Fidelity::kSampled;
  throw std::invalid_argument("unknown fidelity '" + std::string(name) +
                              "' (want analytic|detailed|sampled)");
}

std::unique_ptr<ExecutionBackend> make_backend(
    Fidelity fidelity, const core::SystemConfig& config) {
  // Backstop behind the declared cross-schema rules, for callers that
  // build a SystemConfig directly: the analytic closed forms have no
  // banked-DRAM or flit-level interconnect terms, so a non-default
  // backend there would be silently ignored.
  if (fidelity == Fidelity::kAnalytic &&
      (config.dram.kind != mem::DramKind::kSimple ||
       config.icnt != noc::IcntKind::kAnalytic)) {
    throw std::invalid_argument(
        "fidelity=analytic supports only dram=simple with icnt=analytic; "
        "run dram=queued or icnt=flit under fidelity=detailed|sampled");
  }
  switch (fidelity) {
    case Fidelity::kAnalytic:
      return std::make_unique<AnalyticBackend>(config);
    case Fidelity::kDetailed:
      return std::make_unique<DetailedBackend>(config);
    case Fidelity::kSampled:
      return std::make_unique<SampledBackend>(config);
  }
  throw std::invalid_argument("unknown fidelity");
}

}  // namespace maco::exp
