// Structured experiment results.
//
// A scenario emits Metric records — name, value, unit, direction — instead
// of bare name/double pairs. The sweep runner's CSV and JSON writers, the
// console table and the tests all consume metrics through the formatting
// helpers here, so there is exactly one value-serialization path.
#pragma once

#include <string>
#include <vector>

namespace maco::exp {

struct Metric {
  std::string name;
  double value = 0.0;
  std::string unit;              // "" for dimensionless metrics
  bool higher_is_better = true;  // direction for campaign-level comparisons
};

// Latency-percentile naming convention: a metric whose name contains a
// percentile segment ("p50", "p95", "p999" between underscores or at
// either end) or the word "latency" measures time-to-respond, where less
// is better. Callers that don't state a direction get this inference, so
// a scenario can't accidentally declare latency_p99_ms as
// higher-is-better; an explicit direction always wins.
bool lower_is_better_metric_name(std::string_view name) noexcept;

struct ScenarioResult {
  std::vector<Metric> metrics;

  // Chrome/Perfetto trace JSON for this run; empty unless the caller asked
  // for a trace (ScenarioRequest::collect_trace) AND the scenario produced
  // spans. The sweep runner writes it to <trace_out>/<point>.trace.json —
  // it never flows into CSV/JSON metric tables or the campaign store.
  std::string trace_json;

  // Direction inferred from the name (see lower_is_better_metric_name).
  void add(std::string name, double value, std::string unit = {}) {
    const bool higher = !lower_is_better_metric_name(name);
    metrics.push_back(Metric{std::move(name), value, std::move(unit),
                             higher});
  }

  void add(std::string name, double value, std::string unit,
           bool higher_is_better) {
    metrics.push_back(Metric{std::move(name), value, std::move(unit),
                             higher_is_better});
  }

  // nullptr when no metric has that name.
  const Metric* find(std::string_view name) const noexcept;
};

// Compact canonical number format shared by every writer: integers without
// a decimal point, everything else at 10 significant digits.
std::string format_metric_value(double value);

// JSON string escaping (quotes, backslash, control characters).
std::string json_escape(const std::string& text);

}  // namespace maco::exp
