// Typed parameter values for the experiment API.
//
// A ParamValue is one validated scenario or hardware parameter: an unsigned
// integer, a double, a boolean, one member of a declared enum, or a free
// string. Values are produced by ParamSchema::parse (never directly from
// user text), so every consumer downstream of the schema works with typed
// data and typed accessor errors are programmer errors, not user errors.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

namespace maco::exp {

enum class ParamType { kU64, kF64, kBool, kEnum, kString };

const char* param_type_name(ParamType type) noexcept;

class ParamValue {
 public:
  ParamValue() : type_(ParamType::kU64), value_(std::uint64_t{0}) {}

  static ParamValue u64(std::uint64_t value);
  static ParamValue f64(double value);
  static ParamValue boolean(bool value);
  static ParamValue enumerant(std::string value);
  static ParamValue str(std::string value);

  ParamType type() const noexcept { return type_; }

  // Typed accessors; throw std::logic_error on a type mismatch (the schema
  // guarantees well-typed values, so a mismatch is a scenario-code bug).
  std::uint64_t as_u64() const;
  double as_f64() const;  // also widens a kU64 value
  bool as_bool() const;
  const std::string& as_str() const;  // kEnum or kString

  // Canonical text form (what the CSV/JSON writers and --list-scenarios
  // print); parse(to_string()) round-trips.
  std::string to_string() const;

  bool operator==(const ParamValue&) const = default;

 private:
  ParamValue(ParamType type, std::variant<std::uint64_t, double, bool,
                                          std::string> value)
      : type_(type), value_(std::move(value)) {}

  ParamType type_;
  std::variant<std::uint64_t, double, bool, std::string> value_;
};

}  // namespace maco::exp
