#include "exp/results.hpp"

#include <cmath>
#include <cstddef>
#include <sstream>
#include <string_view>

#include "util/json.hpp"

namespace maco::exp {

namespace {

bool is_percentile_token(std::string_view token) noexcept {
  if (token.size() < 2 || token.front() != 'p') return false;
  for (const char c : token.substr(1)) {
    if (c < '0' || c > '9') return false;
  }
  return true;
}

}  // namespace

bool lower_is_better_metric_name(std::string_view name) noexcept {
  if (name.find("latency") != std::string_view::npos) return true;
  while (!name.empty()) {
    const std::size_t underscore = name.find('_');
    if (is_percentile_token(name.substr(0, underscore))) return true;
    if (underscore == std::string_view::npos) break;
    name.remove_prefix(underscore + 1);
  }
  return false;
}

const Metric* ScenarioResult::find(std::string_view name) const noexcept {
  for (const Metric& metric : metrics) {
    if (metric.name == name) return &metric;
  }
  return nullptr;
}

std::string format_metric_value(double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::abs(value) < 1e15) {
    std::ostringstream out;
    out << static_cast<long long>(value);
    return out.str();
  }
  std::ostringstream out;
  out.precision(10);
  out << value;
  return out.str();
}

std::string json_escape(const std::string& text) {
  return util::json_escape(text);
}

}  // namespace maco::exp
