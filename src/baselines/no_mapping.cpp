// Baseline-2: MACO hardware without the Section IV.B mapping scheme —
// no stash/lock (tile operands are latency-bound DRAM round trips instead
// of locked L3 hits) and no CPU/MMAE software pipelining (non-GEMM stages
// serialize behind their GEMMs).
#include "baselines/comparison.hpp"

namespace maco::baseline {

ComparisonResult Comparator::run_baseline2_no_mapping(
    const wl::Workload& workload) const {
  core::TimingOptions options;
  options.active_nodes = nodes_;
  options.use_matlb = true;      // the mATLB is architecture, not mapping
  options.use_stash_lock = false;
  return run_accelerated(workload, "Baseline-2", options,
                         /*overlap=*/false);
}

}  // namespace maco::baseline
