// Gem5-RASA-like tightly-coupled configuration.
//
// RASA (Jeong et al., DAC'21) places one 16x16 matrix engine inside a CPU
// core's pipeline (the paper's equal-PE normalization): engine traffic
// moves through the core's load/store path (a fraction of a dedicated DMA's
// bandwidth), translation rides the core MMU — page-walk caches keep walks
// warm, but every walk still blocks the in-order load stream — and
// sub-stage pipelining overlaps compute with loads only partially. The
// core cannot run the non-GEMM stages concurrently with its own engine.
#include "baselines/comparison.hpp"

namespace maco::baseline {

ComparisonResult Comparator::run_rasa_like(
    const wl::Workload& workload) const {
  core::TimingOptions options;
  options.active_nodes = 1;            // single core + in-pipeline engine
  options.sa_rows_override = 16;       // one 16x16 array (256 PEs)
  options.sa_cols_override = 16;
  options.inner = 128;                 // register-tile blocking (their §III)
  options.use_matlb = false;
  options.use_stash_lock = false;
  options.pte_walks_warm = true;       // core MMU page-walk caches
  options.engine_overlap = 0.75;       // sub-stage pipelining (their §IV)
  options.dma_bandwidth_scale = 0.85;  // through the core's LSU/L2 port
  return run_accelerated(workload, "Gem5-RASA", options,
                         /*overlap=*/false);
}

}  // namespace maco::baseline
