// Baseline-1: MACO with CPU only — GEMM runs in software on the cores'
// vector units through the cache hierarchy; MMAEs are unused.
#include "baselines/comparison.hpp"
#include "model/roofline.hpp"

namespace maco::baseline {

ComparisonResult Comparator::run_baseline1_cpu_only(
    const wl::Workload& workload) const {
  const cpu::CpuKernelModel& kernels = config_.cpu.kernels;
  const sa::Precision precision = workload.precision;

  double total_ps = 0.0;
  for (const auto& layer : workload.layers) {
    const auto& s = layer.shape;
    // Compute side: software GEMM split over the cores.
    const sim::Cycles cycles =
        kernels.gemm_cycles(s.m, s.n, s.k, precision) / nodes_ + 1;
    const double compute_ps =
        static_cast<double>(kernels.cycles_to_ps(cycles));
    // Memory side: L2-blocked traffic against the shared DRAM channels.
    const double ai = model::gemm_arithmetic_intensity(
        s.m, s.n, s.k, 256, 256, sa::element_bytes(precision));
    const double flops = static_cast<double>(s.flops());
    const double mem_ps =
        flops / ai / config_.dram_total_bandwidth() * 1e12;
    const double layer_ps = std::max(compute_ps, mem_ps) +
                            static_cast<double>(post_op_time_ps(layer, precision));
    total_ps += layer_ps * layer.repeat;
  }

  ComparisonResult result;
  result.system = "Baseline-1";
  result.workload = workload.name;
  result.time_ps = static_cast<sim::TimePs>(total_ps);
  result.gflops = static_cast<double>(workload.total_flops()) /
                  (total_ps * 1e-12) / 1e9;
  result.efficiency = result.gflops * 1e9 / cpu_peak_flops(precision);
  return result;
}

}  // namespace maco::baseline
