#include "baselines/comparison.hpp"

#include "core/gemm_plus.hpp"
#include "util/assert.hpp"

namespace maco::baseline {

Comparator::Comparator(const core::SystemConfig& config, unsigned nodes)
    : config_(config), nodes_(nodes) {
  MACO_ASSERT(nodes >= 1 && nodes <= config.node_count);
}

double Comparator::accelerator_peak_flops() const noexcept {
  // Normalized: one MAC per PE per cycle (paper: "same number of processing
  // elements (16×16)"), 16 PEs per node.
  return 2.0 * config_.mmae.frequency_hz * config_.mmae.sa.rows *
         config_.mmae.sa.cols * nodes_;
}

double Comparator::cpu_peak_flops(sa::Precision precision) const noexcept {
  return config_.cpu_peak_flops(precision) * nodes_;
}

sim::TimePs Comparator::post_op_time_ps(const wl::Layer& layer,
                                        sa::Precision precision) const {
  const cpu::CpuKernelModel& k = config_.cpu.kernels;
  const std::uint64_t m = layer.shape.m;
  const std::uint64_t n = layer.shape.n;
  sim::Cycles cycles = 0;
  switch (layer.post) {
    case wl::PostOp::kNone: return 0;
    case wl::PostOp::kBiasAdd: cycles = k.bias_add_cycles(m * n, precision); break;
    case wl::PostOp::kRelu: cycles = k.relu_cycles(m * n, precision); break;
    case wl::PostOp::kGelu: cycles = k.gelu_cycles(m * n, precision); break;
    case wl::PostOp::kSoftmax: cycles = k.softmax_cycles(m, n, precision); break;
    case wl::PostOp::kLayerNorm:
      cycles = k.layernorm_cycles(m, n, precision);
      break;
  }
  // The post-op parallelizes over the nodes' C partitions.
  return k.cycles_to_ps(cycles / nodes_ + 1);
}

sim::TimePs Comparator::stash_time_ps(const wl::Layer& layer,
                                      sa::Precision precision) const {
  // MA_STASH prefetches the next layer's B operand (weights) DRAM -> L3.
  const double bytes = static_cast<double>(layer.shape.k) * layer.shape.n *
                       sa::element_bytes(precision);
  return static_cast<sim::TimePs>(
      bytes / config_.dram_total_bandwidth() * 1e12);
}

ComparisonResult Comparator::run_accelerated(const wl::Workload& workload,
                                             std::string system,
                                             core::TimingOptions options,
                                             bool overlap_post_ops) const {
  const core::SystemTimingModel model(config_);
  options.cooperative = true;
  options.precision = workload.precision;
  options.simd_ways_override = 1;  // PE-count normalization (see header)

  std::vector<core::GemmPlusStage> stages;
  for (const auto& layer : workload.layers) {
    options.shape = layer.shape;
    const core::SystemTiming timing = model.run(options);
    core::GemmPlusStage stage;
    stage.gemm_ps = timing.makespan_ps;
    stage.cpu_post_ps = post_op_time_ps(layer, workload.precision);
    stage.stash_ps =
        options.use_stash_lock ? stash_time_ps(layer, workload.precision) : 0;
    for (unsigned r = 0; r < layer.repeat; ++r) stages.push_back(stage);
  }

  const core::GemmPlusResult schedule =
      core::schedule_gemm_plus(stages, overlap_post_ops);

  ComparisonResult result;
  result.system = std::move(system);
  result.workload = workload.name;
  result.time_ps = schedule.total_ps;
  const double seconds = sim::to_seconds(schedule.total_ps);
  result.gflops =
      static_cast<double>(workload.total_flops()) / seconds / 1e9;
  result.efficiency = result.gflops * 1e9 / accelerator_peak_flops();
  return result;
}

ComparisonResult Comparator::run_maco(const wl::Workload& workload) const {
  core::TimingOptions options;
  options.active_nodes = nodes_;
  options.use_matlb = true;
  options.use_stash_lock = true;
  return run_accelerated(workload, "MACO", options, /*overlap=*/true);
}

std::vector<ComparisonResult> Comparator::run_all(
    const wl::Workload& workload) const {
  return {run_baseline1_cpu_only(workload),
          run_baseline2_no_mapping(workload), run_rasa_like(workload),
          run_gemmini_like(workload), run_maco(workload)};
}

}  // namespace maco::baseline
