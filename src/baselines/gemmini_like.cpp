// Gemmini-like loosely-coupled configuration.
//
// Gemmini (Genc et al., DAC'21) couples one 16x16 systolic array (the
// paper's equal-PE normalization) to a single host core: the engine has
// its own DMA on one memory port, translates through a modest accelerator
// TLB whose misses walk via the host PTW (page-walk caches keep the leaves
// warm, but each walk blocks the stream), has no stash/lock scheme, and
// synchronizes with RoCC fences. The single shared accelerator context
// serializes CPU post-ops behind each GEMM.
#include "baselines/comparison.hpp"

namespace maco::baseline {

ComparisonResult Comparator::run_gemmini_like(
    const wl::Workload& workload) const {
  core::TimingOptions options;
  options.active_nodes = 1;            // one host core + one accelerator
  options.sa_rows_override = 16;       // one 16x16 array (256 PEs)
  options.sa_cols_override = 16;
  options.inner = 128;                 // scratchpad-sized blocking
  options.use_matlb = false;
  options.use_stash_lock = false;
  options.tlb_entries_override = 512;  // accelerator TLB + host L2 TLB reach
  options.pte_walks_warm = true;       // walks via host PTW with PWC
  options.sync_overhead_per_tile_ps = 400;  // fence/RoCC round trip, amortized
  return run_accelerated(workload, "Gemmini", options,
                         /*overlap=*/false);
}

}  // namespace maco::baseline
