// Fig. 8 comparison harness.
//
// Five systems run the same DNN GEMM workloads at the same PE count
// (16×16 = 256 PEs, i.e. 16 nodes × 16 FMACs, one FP32 MAC per PE — the
// paper's normalization):
//
//   Baseline-1  MACO with CPU only: GEMMs on the cores' vector units.
//   Baseline-2  MACO with MMAEs but without the §IV.B mapping scheme:
//               no stash/lock (operands stream from DRAM) and no
//               CPU/MMAE software pipelining (post-ops serialize).
//   Gem5-RASA   tightly-coupled matrix engine: shares the core's DTLB
//               (48-entry reach) and LSU path, partial compute/DMA overlap
//               from its sub-stage pipelining, no CPU post-op concurrency.
//   Gemmini     loosely-coupled engine: own DMA but blocking TLB with cold
//               page-table walks, no stash/lock, fence-style sync,
//               post-ops serialized on the CPU.
//   MACO        full system: mATLB + stash/lock + GEMM+ pipelining.
//
// Every system is a parameterization of core::SystemTimingModel plus the
// CPU kernel models — no ratio is hard-coded.
#pragma once

#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/timing_model.hpp"
#include "workloads/gemm_workload.hpp"

namespace maco::baseline {

struct ComparisonResult {
  std::string system;
  std::string workload;
  double gflops = 0.0;
  double efficiency = 0.0;  // vs the system's own peak at this PE count
  sim::TimePs time_ps = 0;
};

class Comparator {
 public:
  explicit Comparator(const core::SystemConfig& config, unsigned nodes = 16);

  ComparisonResult run_maco(const wl::Workload& workload) const;
  ComparisonResult run_baseline1_cpu_only(const wl::Workload& workload) const;
  ComparisonResult run_baseline2_no_mapping(const wl::Workload& workload) const;
  ComparisonResult run_rasa_like(const wl::Workload& workload) const;
  ComparisonResult run_gemmini_like(const wl::Workload& workload) const;

  // All five, in the paper's Fig. 8 order.
  std::vector<ComparisonResult> run_all(const wl::Workload& workload) const;

  // Accelerated peak at the normalized PE count (FLOP/s).
  double accelerator_peak_flops() const noexcept;
  double cpu_peak_flops(sa::Precision precision) const noexcept;

  // Shared plumbing for the accelerated systems.
  ComparisonResult run_accelerated(const wl::Workload& workload,
                                   std::string system,
                                   core::TimingOptions options,
                                   bool overlap_post_ops) const;
  sim::TimePs post_op_time_ps(const wl::Layer& layer,
                              sa::Precision precision) const;
  sim::TimePs stash_time_ps(const wl::Layer& layer,
                            sa::Precision precision) const;

 private:
  core::SystemConfig config_;
  unsigned nodes_;
};

}  // namespace maco::baseline
