// Tile-space enumeration for the sampled-fidelity estimator.
//
// A GEMM layer (M, N, K) tiled with first-level tile T partitions into a
// ceil(M/T) x ceil(N/T) x ceil(K/T) grid of tile GEMMs. Tiles fall into
// strata by position class — which dimensions are cut short by the matrix
// edge — and every tile inside a stratum has the SAME shape, so a stratum
// is a homogeneous population the estimator can sample from. Multi-layer
// workloads stratify additionally by layer; identical layer shapes (the 96
// GPT-3 decoder blocks, HPL's repeated trailing updates) collapse into one
// stratum set with a multiplicity, so the sample budget scales with the
// number of DISTINCT shapes rather than network depth.
//
// Strata are described arithmetically (counts, not materialized tile
// lists): a 1024^3-tile grid is enumerable even though its tiles are not.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sa/latency_model.hpp"

namespace maco::sampling {

// One tile's position in a layer's first-level tile grid.
struct TileCoord {
  std::uint32_t layer = 0;  // index into the unique-layer list
  std::uint64_t im = 0;     // tile-grid position along M
  std::uint64_t in = 0;     // along N
  std::uint64_t ik = 0;     // along K
};

// Bit i of partial_mask set => dimension i is the matrix-edge remainder.
inline constexpr std::uint8_t kPartialM = 1;
inline constexpr std::uint8_t kPartialN = 2;
inline constexpr std::uint8_t kPartialK = 4;

struct Stratum {
  std::uint32_t layer = 0;        // unique-layer index
  std::uint8_t partial_mask = 0;  // kPartialM/N/K bits
  sa::TileShape tile_shape;       // shape of EVERY tile in this stratum
  sa::TileShape layer_shape;      // the full layer GEMM
  std::uint64_t tile = 0;         // first-level tile edge
  std::uint64_t count = 0;        // tiles in one layer instance
  std::uint64_t multiplicity = 1; // identical layers collapsed into this one

  // Tile-grid geometry of the layer (for flat-index -> coordinate maps).
  std::uint64_t grid_m = 0, grid_n = 0, grid_k = 0;
  // Index counts of this stratum along each dim (full dims: grid-1 or grid
  // depending on whether a remainder exists; partial dims: exactly 1).
  std::uint64_t span_m = 0, span_n = 0, span_k = 0;

  std::uint64_t population() const noexcept { return count * multiplicity; }
  std::uint64_t inner_tiles(std::uint64_t inner) const noexcept {
    const auto along = [&](std::uint64_t extent) {
      return (extent + inner - 1) / inner;
    };
    return along(tile_shape.m) * along(tile_shape.n) * along(tile_shape.k);
  }
  // "interior", "edge", "ridge" or "corner" by how many dims are partial.
  std::string position_class() const;
};

// Stratifies `layers` (deduplicated by shape, multiplicities recorded)
// tiled with first-level tile `tile`. Throws std::invalid_argument on an
// empty layer list, a zero tile, or an empty layer shape.
std::vector<Stratum> enumerate_strata(
    const std::vector<sa::TileShape>& layers, std::uint64_t tile);

// The coordinates of tile `flat` (0 <= flat < stratum.count) within its
// stratum, row-major over (m, n, k) index spans.
TileCoord stratum_coord(const Stratum& stratum, std::uint64_t flat);

// In-page byte offsets (mod 4 KiB) of the tile's A/B/C sub-blocks within
// the full row-major FP64 layer matrices — what makes two same-shape tiles
// at different positions translate differently.
struct TileOffsets {
  std::uint64_t a = 0, b = 0, c = 0;
};
TileOffsets tile_page_offsets(const Stratum& stratum, const TileCoord& coord);

// Balanced 1-D split of `tiles` grid positions over `parts` (first
// `tiles % parts` parts get one extra): [begin, end) of part `index`.
std::pair<std::uint64_t, std::uint64_t> split_range(std::uint64_t tiles,
                                                    std::uint64_t parts,
                                                    std::uint64_t index);

// How many tiles of `stratum` a cooperative run assigns to node `node` of
// `nodes` (C tiles partitioned over the most-square node grid, every node
// computing all K chunks of its C tiles — core::partition_gemm's layout).
std::uint64_t cooperative_node_count(const Stratum& stratum, unsigned nodes,
                                     unsigned node);

}  // namespace maco::sampling
