#include "sampling/estimator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "sampling/sampler.hpp"

namespace maco::sampling {
namespace {

// Accumulated observations of one stratum across adaptive rounds.
struct StratumState {
  const Stratum* stratum = nullptr;
  StratumDraw draw;
  std::vector<TileSample> samples;

  StratumState(const Stratum& s, std::uint64_t seed)
      : stratum(&s), draw(s, seed) {}

  std::uint64_t n() const noexcept { return samples.size(); }
  std::uint64_t population() const noexcept {
    return stratum->population();
  }

  double mean_span() const noexcept { return mean(&TileSample::span_ps); }
  // Unbiased sample variance of the tile span; 0 until two samples exist.
  double var_span() const noexcept {
    if (samples.size() < 2) return 0.0;
    const double mu = mean_span();
    double sum = 0.0;
    for (const TileSample& s : samples) {
      const double d = s.span_ps - mu;
      sum += d * d;
    }
    return sum / static_cast<double>(samples.size() - 1);
  }
  double mean(double TileSample::* field) const noexcept {
    if (samples.empty()) return 0.0;
    double sum = 0.0;
    for (const TileSample& s : samples) sum += s.*field;
    return sum / static_cast<double>(samples.size());
  }
  // Variance contribution of this stratum to a total scaled by `count`
  // tiles: count^2 * s^2/n * (1 - n/N), the stratified-sampling form with
  // finite-population correction.
  double total_variance(double count) const noexcept {
    if (samples.size() < 2) return 0.0;
    const double n = static_cast<double>(samples.size());
    const double N = static_cast<double>(population());
    const double fpc = std::max(0.0, 1.0 - n / N);
    return count * count * var_span() / n * fpc;
  }
  bool can_grow(std::uint64_t cap) const noexcept {
    return !draw.exhausted() && (cap == 0 || n() < cap);
  }
};

// Per-node tile count of one stratum (the scaling factor of its mean):
// independent mode replicates the whole grid on every node, cooperative
// mode partitions the C-tile grid over the node grid.
double node_count_of(const Stratum& stratum, const EstimateRequest& request,
                     unsigned node) {
  const double mult = static_cast<double>(stratum.multiplicity);
  if (!request.cooperative) {
    return static_cast<double>(stratum.count) * mult;
  }
  return static_cast<double>(cooperative_node_count(
             stratum, request.active_nodes, node)) *
         mult;
}

void measure_round(std::vector<StratumState>& states,
                   const std::vector<std::pair<std::size_t, std::uint64_t>>&
                       additions,
                   const MeasureFn& measure) {
  std::vector<TileRequest> requests;
  for (const auto& [index, additional] : additions) {
    for (const TileCoord& coord : states[index].draw.extend(additional)) {
      requests.push_back(TileRequest{index, coord});
    }
  }
  if (requests.empty()) return;
  const std::vector<TileSample> samples = measure(requests);
  if (samples.size() != requests.size()) {
    throw std::logic_error("sampling measure callback returned " +
                           std::to_string(samples.size()) + " sample(s) for " +
                           std::to_string(requests.size()) + " request(s)");
  }
  for (std::size_t i = 0; i < samples.size(); ++i) {
    states[requests[i].stratum].samples.push_back(samples[i]);
  }
}

}  // namespace

core::SystemTiming estimate_timing(const std::vector<Stratum>& strata,
                                   const EstimateRequest& request,
                                   const MeasureFn& measure) {
  if (strata.empty()) {
    throw std::invalid_argument("fidelity=sampled found no tile strata");
  }
  if (!(request.sample_frac > 0.0) || request.sample_frac > 1.0) {
    throw std::invalid_argument(
        "fidelity=sampled wants sample_frac in (0, 1]");
  }
  if (request.active_nodes == 0) {
    throw std::invalid_argument("fidelity=sampled needs at least one node");
  }

  std::vector<StratumState> states;
  states.reserve(strata.size());
  for (const Stratum& stratum : strata) {
    states.emplace_back(stratum, request.sample_seed);
  }

  // Initial allocation: proportional with a floor, one batched measure.
  {
    std::vector<std::pair<std::size_t, std::uint64_t>> additions;
    for (std::size_t i = 0; i < states.size(); ++i) {
      additions.emplace_back(
          i, allocate_samples(states[i].stratum->count, request.sample_frac,
                              request.min_samples, request.sample_cap));
    }
    measure_round(states, additions, measure);
  }

  // The makespan estimate (and its variance) under the current samples.
  // Independent mode: every node runs the same tile population, so node 0
  // is the critical path. Cooperative: the node with the largest estimate.
  const auto makespan_of = [&](unsigned node, double& variance) {
    double total = 0.0;
    variance = 0.0;
    for (const StratumState& state : states) {
      const double count = node_count_of(*state.stratum, request, node);
      total += count * state.mean_span();
      variance += state.total_variance(count);
    }
    return total;
  };
  const auto critical_node = [&]() {
    if (!request.cooperative) return 0u;
    unsigned best = 0;
    double best_span = -1.0;
    double ignored = 0.0;
    for (unsigned node = 0; node < request.active_nodes; ++node) {
      const double span = makespan_of(node, ignored);
      if (span > best_span) {
        best_span = span;
        best = node;
      }
    }
    return best;
  };

  // Adaptive refinement: grow the stratum whose variance contribution to
  // the critical path is largest until the relative statistical CI meets
  // the target (or nothing can grow).
  if (request.ci_target > 0.0) {
    for (unsigned round = 0; round < request.max_rounds; ++round) {
      const unsigned node = critical_node();
      double variance = 0.0;
      const double makespan = makespan_of(node, variance);
      if (makespan <= 0.0) break;
      const double rel_ci = 1.96 * std::sqrt(variance) / makespan;
      if (rel_ci <= request.ci_target) break;

      std::size_t best = states.size();
      double best_contribution = 0.0;
      for (std::size_t i = 0; i < states.size(); ++i) {
        if (!states[i].can_grow(request.sample_cap)) continue;
        const double count =
            node_count_of(*states[i].stratum, request, node);
        const double contribution = states[i].total_variance(count);
        if (best == states.size() || contribution > best_contribution) {
          best = i;
          best_contribution = contribution;
        }
      }
      if (best == states.size() || best_contribution <= 0.0) break;
      std::uint64_t additional =
          std::max<std::uint64_t>(1, states[best].n() / 2);
      if (request.sample_cap != 0) {
        // can_grow guarantees headroom; the growth step must not blow
        // through the cap that bounds the simulation bill.
        additional =
            std::min(additional, request.sample_cap - states[best].n());
      }
      measure_round(states, {{best, additional}}, measure);
    }
  }

  // ---- assemble the full-workload SystemTiming ----
  core::SystemTiming timing;
  const unsigned nodes = request.active_nodes;
  const unsigned critical = critical_node();
  double critical_variance = 0.0;
  const double critical_span = makespan_of(critical, critical_variance);

  std::uint64_t total_macs = 0;
  for (unsigned node = 0; node < nodes; ++node) {
    core::NodeTiming node_timing;
    double span = 0.0;
    double compute = 0.0;
    double stall = 0.0;
    double macs = 0.0;
    for (const StratumState& state : states) {
      const double count = node_count_of(*state.stratum, request, node);
      span += count * state.mean_span();
      compute += count * state.mean(&TileSample::sa_busy_ps);
      stall += count * state.mean(&TileSample::translation_stall_ps);
      macs += count * static_cast<double>(state.stratum->tile_shape.macs());
    }
    node_timing.span_ps = static_cast<sim::TimePs>(span);
    node_timing.compute_ps = static_cast<sim::TimePs>(compute);
    node_timing.translation_exposed_ps = static_cast<sim::TimePs>(stall);
    node_timing.macs = static_cast<std::uint64_t>(macs);
    const double span_s = span * 1e-12;
    node_timing.gflops = span_s > 0.0 ? 2.0 * macs / span_s / 1e9 : 0.0;
    node_timing.efficiency =
        span_s > 0.0 && request.peak_macs_per_second > 0.0
            ? macs / span_s / request.peak_macs_per_second
            : 0.0;
    timing.mean_efficiency += node_timing.efficiency;
    total_macs += node_timing.macs;
    timing.nodes.push_back(node_timing);
  }
  timing.mean_efficiency /= static_cast<double>(nodes);
  timing.makespan_ps = static_cast<sim::TimePs>(critical_span);
  const double makespan_s = critical_span * 1e-12;
  timing.total_gflops =
      makespan_s > 0.0
          ? 2.0 * static_cast<double>(total_macs) / makespan_s / 1e9
          : 0.0;

  // Translation per inner tile over the whole tile population.
  double walks = 0.0;
  double pages = 0.0;
  double stall = 0.0;
  double inner_tiles = 0.0;
  std::uint64_t total_tiles = 0;
  std::uint64_t sampled_tiles = 0;
  for (const StratumState& state : states) {
    const double population = static_cast<double>(state.population());
    walks += population * state.mean(&TileSample::blocking_walks);
    pages += population * (state.mean(&TileSample::blocking_walks) +
                           state.mean(&TileSample::matlb_hits));
    stall += population * state.mean(&TileSample::translation_stall_ps);
    inner_tiles += population * static_cast<double>(
                                    state.stratum->inner_tiles(request.inner));
    total_tiles += state.population();
    sampled_tiles += state.n();
  }
  if (inner_tiles > 0.0) {
    timing.translation.walks_per_tile = walks / inner_tiles;
    timing.translation.pages_per_tile = pages / inner_tiles;
    timing.translation.stall_per_tile_ps =
        static_cast<sim::TimePs>(stall / inner_tiles);
  }

  timing.sampling.total_tiles = total_tiles;
  timing.sampling.sampled_tiles = sampled_tiles;
  timing.sampling.strata = strata.size();
  timing.sampling.makespan_se_ps = std::sqrt(critical_variance);
  timing.sampling.makespan_ci95_ps =
      1.96 * timing.sampling.makespan_se_ps +
      kModelMarginFrac * critical_span;
  return timing;
}

}  // namespace maco::sampling
