#include "sampling/sampled_runner.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "core/detailed_runner.hpp"
#include "sampling/estimator.hpp"
#include "sampling/tile_space.hpp"

namespace maco::sampling {
namespace {

[[noreturn]] void unsupported(const std::string& what) {
  throw std::invalid_argument("fidelity=sampled " + what);
}

// Mixes a tile's identity into the operand-data seed so every sampled tile
// carries its own deterministic random operands.
std::uint64_t tile_data_seed(std::uint64_t base, const TileCoord& coord) {
  std::uint64_t h = base ^ 0x9e3779b97f4a7c15ull;
  for (const std::uint64_t part :
       {static_cast<std::uint64_t>(coord.layer), coord.im, coord.in,
        coord.ik}) {
    h ^= part + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
  return h;
}

}  // namespace

core::SystemTiming run_sampled_layers(
    const core::SystemConfig& config,
    const std::vector<sa::TileShape>& layers,
    const core::TimingOptions& options) {
  const std::uint64_t tile = options.tile_rows;
  if (tile == 0 || tile > core::kDetailedMaxDim) {
    unsupported("simulates one first-level tile per task, so tile must be "
                "in [1, " +
                std::to_string(core::kDetailedMaxDim) + "] (got " +
                std::to_string(tile) + "); shrink --set tile=...");
  }
  if (options.tile_cols != options.tile_rows) {
    unsupported("uses square first-level tiles (tile_rows == tile_cols)");
  }
  if (!(options.sample_frac > 0.0) || options.sample_frac > 1.0) {
    unsupported("wants sample_frac in (0, 1]");
  }

  const unsigned active_nodes = std::max(
      1u, std::min(options.active_nodes, config.node_count));

  const std::vector<Stratum> strata = enumerate_strata(layers, tile);

  EstimateRequest request;
  request.sample_frac = options.sample_frac;
  request.sample_seed = options.sample_seed;
  request.ci_target = options.ci_target;
  request.active_nodes = active_nodes;
  request.cooperative = options.cooperative;
  request.inner = options.inner;
  request.peak_macs_per_second = config.mmae_peak_macs(options.precision);

  // The measurement callback: sampled coordinates become tile jobs on the
  // detailed system — in-page operand offsets reproduce each tile's
  // position in the full matrices, `active_nodes` tiles run concurrently
  // per system instantiation (NoC/CCM/DRAM contention included), and one
  // warm-up task per tile puts the measured task in the steady state an
  // interior tile of a long mapped run executes in.
  const MeasureFn measure = [&](const std::vector<TileRequest>& requests) {
    std::vector<core::DetailedTileJob> jobs;
    jobs.reserve(requests.size());
    for (const TileRequest& tile_request : requests) {
      const Stratum& stratum = strata[tile_request.stratum];
      const TileOffsets offsets =
          tile_page_offsets(stratum, tile_request.coord);
      core::DetailedTileJob job;
      job.shape = stratum.tile_shape;
      job.a_page_offset = offsets.a;
      job.b_page_offset = offsets.b;
      job.c_page_offset = offsets.c;
      job.data_seed = tile_data_seed(options.sample_seed,
                                     tile_request.coord);
      jobs.push_back(job);
    }
    const std::vector<core::DetailedTileMeasurement> measurements =
        core::run_detailed_tiles(config, options, jobs, active_nodes,
                                 options.sample_workers);
    std::vector<TileSample> samples;
    samples.reserve(measurements.size());
    for (const core::DetailedTileMeasurement& m : measurements) {
      TileSample sample;
      sample.span_ps = static_cast<double>(m.span_ps);
      sample.sa_busy_ps = static_cast<double>(m.sa_busy_ps);
      sample.translation_stall_ps =
          static_cast<double>(m.translation_stall_ps);
      sample.blocking_walks = static_cast<double>(m.blocking_walks);
      sample.matlb_hits = static_cast<double>(m.matlb_hits);
      samples.push_back(sample);
    }
    return samples;
  };

  return estimate_timing(strata, request, measure);
}

core::SystemTiming run_sampled_gemm(const core::SystemConfig& config,
                                    const core::TimingOptions& options) {
  return run_sampled_layers(config, {options.shape}, options);
}

}  // namespace maco::sampling
