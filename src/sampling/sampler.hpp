// Deterministic stratified sampling over tile strata.
//
// Sample sizes are allocated proportionally to stratum population (with a
// floor so every stratum contributes a variance estimate), and tiles are
// drawn without replacement from each stratum by a seeded xoshiro stream —
// the same seed always reproduces the same draw, so sampled estimates are
// bit-identical run to run and resumable through the campaign store. A
// StratumDraw survives across adaptive rounds: extend() draws additional
// distinct tiles from where the stream left off.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "sampling/tile_space.hpp"
#include "util/rng.hpp"

namespace maco::sampling {

// Tiles a stratum should contribute for a requested sampling fraction:
// max(min_samples, round(frac * population)), clamped to the population
// and to `cap` (which bounds the simulation bill on astronomically large
// grids; 0 = no cap).
std::uint64_t allocate_samples(std::uint64_t population, double frac,
                               std::uint64_t min_samples, std::uint64_t cap);

// A without-replacement draw from one stratum, extendable across rounds.
class StratumDraw {
 public:
  StratumDraw(const Stratum& stratum, std::uint64_t seed);

  // Draws up to `additional` tiles not drawn before; returns the new
  // coordinates (fewer when the stratum population is exhausted).
  std::vector<TileCoord> extend(std::uint64_t additional);

  std::uint64_t drawn() const noexcept { return drawn_.size(); }
  bool exhausted() const noexcept {
    return drawn_.size() >= stratum_.count;
  }
  const Stratum& stratum() const noexcept { return stratum_; }

 private:
  Stratum stratum_;
  util::Rng rng_;
  std::unordered_set<std::uint64_t> drawn_;
};

}  // namespace maco::sampling
