// Stratified estimation of detailed-fidelity timing from sampled tiles.
//
// Classic stratified survey estimation over the tile grid: every stratum
// contributes its sampled mean scaled by its population, the variance of
// the total carries the finite-population correction (1 - n/N), and the
// 95% interval half-width is 1.96 standard errors plus a fixed relative
// model margin covering the systematic part the statistics cannot see
// (per-task boundary effects of slicing a monolithic GEMM into tile tasks,
// and the detailed machine's own cross-validation envelope against the
// analytic model). Adaptive mode re-invests samples where the variance
// contribution is largest until the relative statistical CI meets the
// target.
//
// The estimator never touches MacoSystem: tiles to simulate go out through
// a MeasureFn callback, so tests can drive the statistics with synthetic
// populations and the runner can batch real simulations.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/timing_model.hpp"
#include "sampling/tile_space.hpp"

namespace maco::sampling {

// Relative systematic margin folded into the reported 95% interval (see
// file comment). Calibrated against exhaustive detailed runs and the
// analytic model at cross-validation sizes (512/576 with 256-tiles: tile
// slicing biases the estimate 3-7% high; the analytic model sits another
// ~4% fast) — both stay inside the margin, asserted in
// tests/test_sampling.cpp.
inline constexpr double kModelMarginFrac = 0.10;

// One simulated tile's observation, in picoseconds/counts. MAC counts are
// NOT sampled: they are exact per stratum (tile_shape.macs()), so the
// estimator derives them from the strata instead.
struct TileSample {
  double span_ps = 0.0;
  double sa_busy_ps = 0.0;
  double translation_stall_ps = 0.0;
  double blocking_walks = 0.0;
  double matlb_hits = 0.0;
};

struct TileRequest {
  std::size_t stratum = 0;  // index into the strata vector
  TileCoord coord;
};

// Simulates the requested tiles and returns one sample per request, in
// request order.
using MeasureFn =
    std::function<std::vector<TileSample>(const std::vector<TileRequest>&)>;

struct EstimateRequest {
  double sample_frac = 0.05;
  std::uint64_t sample_seed = 1;
  double ci_target = 0.0;          // >0 enables adaptive refinement
  std::uint64_t min_samples = 2;   // per stratum (variance needs two)
  std::uint64_t sample_cap = 4096; // per stratum, bounds the simulation bill
  unsigned max_rounds = 16;        // adaptive refinement rounds

  unsigned active_nodes = 1;
  bool cooperative = false;        // split the grid over nodes vs replicate
  std::uint64_t inner = 64;        // second-level tile (inner-tile counts)
  double peak_macs_per_second = 0; // per-node peak at the run's precision
};

// Runs the sampling plan over `strata` through `measure` and assembles the
// full-workload SystemTiming estimate (SamplingStats filled in). Throws
// std::invalid_argument on an empty strata list or a non-positive
// sample_frac.
core::SystemTiming estimate_timing(const std::vector<Stratum>& strata,
                                   const EstimateRequest& request,
                                   const MeasureFn& measure);

}  // namespace maco::sampling
