#include "sampling/tile_space.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <tuple>

#include "core/gemm_mapper.hpp"
#include "vm/types.hpp"

namespace maco::sampling {
namespace {

int popcount3(std::uint8_t mask) {
  return ((mask >> 0) & 1) + ((mask >> 1) & 1) + ((mask >> 2) & 1);
}

}  // namespace

std::string Stratum::position_class() const {
  switch (popcount3(partial_mask)) {
    case 0: return "interior";
    case 1: return "edge";
    case 2: return "ridge";
    default: return "corner";
  }
}

std::vector<Stratum> enumerate_strata(
    const std::vector<sa::TileShape>& layers, std::uint64_t tile) {
  if (layers.empty()) {
    throw std::invalid_argument("fidelity=sampled needs at least one layer");
  }
  if (tile == 0) {
    throw std::invalid_argument("fidelity=sampled needs a non-zero tile");
  }

  // Deduplicate layers by shape; stratum count then scales with distinct
  // shapes, not network depth (GPT-3's 96 identical decoder blocks fold
  // into multiplicity-96 strata).
  std::vector<std::pair<sa::TileShape, std::uint64_t>> unique;
  std::map<std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>,
           std::size_t>
      seen;
  for (const sa::TileShape& layer : layers) {
    if (layer.m == 0 || layer.n == 0 || layer.k == 0) {
      throw std::invalid_argument("fidelity=sampled needs non-empty layers");
    }
    const auto key = std::make_tuple(layer.m, layer.n, layer.k);
    const auto it = seen.find(key);
    if (it != seen.end()) {
      ++unique[it->second].second;
    } else {
      seen.emplace(key, unique.size());
      unique.emplace_back(layer, 1);
    }
  }

  std::vector<Stratum> strata;
  for (std::size_t l = 0; l < unique.size(); ++l) {
    const sa::TileShape& shape = unique[l].first;
    const std::uint64_t grid_m = (shape.m + tile - 1) / tile;
    const std::uint64_t grid_n = (shape.n + tile - 1) / tile;
    const std::uint64_t grid_k = (shape.k + tile - 1) / tile;
    const std::uint64_t rem_m = shape.m % tile;
    const std::uint64_t rem_n = shape.n % tile;
    const std::uint64_t rem_k = shape.k % tile;

    // Along each dim: the count and tile extent of the full vs partial
    // index classes. A dim with no remainder has no partial class.
    const auto spans = [&](std::uint64_t grid, std::uint64_t rem,
                           bool partial) -> std::pair<std::uint64_t,
                                                      std::uint64_t> {
      if (partial) return {rem != 0 ? 1u : 0u, rem};
      return {rem != 0 ? grid - 1 : grid, tile};
    };

    for (std::uint8_t mask = 0; mask < 8; ++mask) {
      const auto [span_m, edge_m] =
          spans(grid_m, rem_m, (mask & kPartialM) != 0);
      const auto [span_n, edge_n] =
          spans(grid_n, rem_n, (mask & kPartialN) != 0);
      const auto [span_k, edge_k] =
          spans(grid_k, rem_k, (mask & kPartialK) != 0);
      const std::uint64_t count = span_m * span_n * span_k;
      if (count == 0) continue;
      Stratum s;
      s.layer = static_cast<std::uint32_t>(l);
      s.partial_mask = mask;
      s.tile_shape = sa::TileShape{edge_m, edge_n, edge_k};
      s.layer_shape = shape;
      s.tile = tile;
      s.count = count;
      s.multiplicity = unique[l].second;
      s.grid_m = grid_m;
      s.grid_n = grid_n;
      s.grid_k = grid_k;
      s.span_m = span_m;
      s.span_n = span_n;
      s.span_k = span_k;
      strata.push_back(s);
    }
  }
  return strata;
}

TileCoord stratum_coord(const Stratum& stratum, std::uint64_t flat) {
  if (flat >= stratum.count) {
    throw std::out_of_range("stratum_coord: flat index beyond the stratum");
  }
  const std::uint64_t ik_local = flat % stratum.span_k;
  const std::uint64_t in_local = (flat / stratum.span_k) % stratum.span_n;
  const std::uint64_t im_local = flat / (stratum.span_k * stratum.span_n);
  TileCoord coord;
  coord.layer = stratum.layer;
  coord.im = (stratum.partial_mask & kPartialM) ? stratum.grid_m - 1
                                                : im_local;
  coord.in = (stratum.partial_mask & kPartialN) ? stratum.grid_n - 1
                                                : in_local;
  coord.ik = (stratum.partial_mask & kPartialK) ? stratum.grid_k - 1
                                                : ik_local;
  return coord;
}

TileOffsets tile_page_offsets(const Stratum& stratum,
                              const TileCoord& coord) {
  // Start-element offsets of the sub-blocks in the row-major FP64 layer
  // matrices; products wrap mod 2^64, which preserves the value mod the
  // 4 KiB page size (4096 divides 2^64).
  const std::uint64_t t = stratum.tile;
  const std::uint64_t n_cols = stratum.layer_shape.n;
  const std::uint64_t k_cols = stratum.layer_shape.k;
  TileOffsets offsets;
  offsets.a = ((coord.im * t * k_cols + coord.ik * t) * sizeof(double)) &
              (vm::kPageSize - 1);
  offsets.b = ((coord.ik * t * n_cols + coord.in * t) * sizeof(double)) &
              (vm::kPageSize - 1);
  offsets.c = ((coord.im * t * n_cols + coord.in * t) * sizeof(double)) &
              (vm::kPageSize - 1);
  return offsets;
}

std::pair<std::uint64_t, std::uint64_t> split_range(std::uint64_t tiles,
                                                    std::uint64_t parts,
                                                    std::uint64_t index) {
  return {tiles * index / parts, tiles * (index + 1) / parts};
}

std::uint64_t cooperative_node_count(const Stratum& stratum, unsigned nodes,
                                     unsigned node) {
  const auto [grid_rows, grid_cols] = core::choose_grid(nodes);
  const unsigned row = node / grid_cols;
  const unsigned col = node % grid_cols;
  const auto [row_begin, row_end] =
      split_range(stratum.grid_m, grid_rows, row);
  const auto [col_begin, col_end] =
      split_range(stratum.grid_n, grid_cols, col);

  // Count of this stratum's indices along one dim that fall in [begin,
  // end): the full class occupies [0, span), the partial class exactly
  // {grid - 1}.
  const auto overlap = [](bool partial, std::uint64_t span,
                          std::uint64_t grid, std::uint64_t begin,
                          std::uint64_t end) -> std::uint64_t {
    if (partial) return (grid - 1 >= begin && grid - 1 < end) ? 1 : 0;
    const std::uint64_t hi = std::min(span, end);
    const std::uint64_t lo = std::min(span, begin);
    return hi > lo ? hi - lo : 0;
  };
  const std::uint64_t m_count =
      overlap((stratum.partial_mask & kPartialM) != 0, stratum.span_m,
              stratum.grid_m, row_begin, row_end);
  const std::uint64_t n_count =
      overlap((stratum.partial_mask & kPartialN) != 0, stratum.span_n,
              stratum.grid_n, col_begin, col_end);
  return m_count * n_count * stratum.span_k;
}

}  // namespace maco::sampling
