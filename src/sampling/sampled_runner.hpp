// fidelity=sampled: detailed-fidelity estimates beyond the detailed cap.
//
// The third execution backend. Where fidelity=detailed simulates every
// cycle of a (<= 2048-dim, independent-only) GEMM and fidelity=analytic
// evaluates closed forms, fidelity=sampled stratifies the workload's
// first-level tile grid by position class (interior / edge / ridge /
// corner) and layer shape, simulates a seeded random sample of tiles per
// stratum on the real core::MacoSystem (via core::run_detailed_tiles), and
// scales the per-stratum means to full-workload totals with standard-error
// and confidence-interval qualifiers. This lifts the 2048 size cap AND the
// independent-mode restriction: paper-scale gpt3/hpl points get
// detailed-machine numbers at a small fraction of the simulation bill.
#pragma once

#include <vector>

#include "core/config.hpp"
#include "core/timing_model.hpp"

namespace maco::sampling {

// One GEMM (options.shape) estimated from sampled tiles. Reads the
// sample_* / ci_target knobs of TimingOptions; throws std::invalid_argument
// on an unusable configuration (tile beyond core::kDetailedMaxDim,
// sample_frac outside (0, 1], analytic-only overrides).
core::SystemTiming run_sampled_gemm(const core::SystemConfig& config,
                                    const core::TimingOptions& options);

// A layer sequence back to back; identical layer shapes collapse into
// multiplicity-weighted strata, so the sample budget scales with distinct
// shapes rather than network depth.
core::SystemTiming run_sampled_layers(const core::SystemConfig& config,
                                      const std::vector<sa::TileShape>& layers,
                                      const core::TimingOptions& options);

}  // namespace maco::sampling
