#include "sampling/sampler.hpp"

#include <algorithm>
#include <cmath>

namespace maco::sampling {

std::uint64_t allocate_samples(std::uint64_t population, double frac,
                               std::uint64_t min_samples,
                               std::uint64_t cap) {
  const double requested = frac * static_cast<double>(population);
  std::uint64_t n = requested >= 1.0
                        ? static_cast<std::uint64_t>(std::llround(requested))
                        : 0;
  n = std::max(n, min_samples);
  if (cap != 0) n = std::min(n, cap);
  return std::min(n, population);
}

StratumDraw::StratumDraw(const Stratum& stratum, std::uint64_t seed)
    : stratum_(stratum),
      // Fold the stratum identity into the seed so every stratum draws
      // from its own stream regardless of enumeration order.
      rng_(seed ^ (0x9e3779b97f4a7c15ull * (stratum.layer + 1)) ^
           (0xbf58476d1ce4e5b9ull * (stratum.partial_mask + 1))) {}

std::vector<TileCoord> StratumDraw::extend(std::uint64_t additional) {
  std::vector<TileCoord> coords;
  const std::uint64_t target =
      std::min(stratum_.count,
               static_cast<std::uint64_t>(drawn_.size()) + additional);
  coords.reserve(static_cast<std::size_t>(target - drawn_.size()));

  // Dense draws walk the index space in a seeded random order would need
  // O(population) state; rejection stays O(samples) and the draw density
  // is capped well below 1 except on tiny strata, where the fallback walk
  // below finishes the draw exactly.
  std::uint64_t rejections = 0;
  while (drawn_.size() < target) {
    const std::uint64_t flat = rng_.next_below(stratum_.count);
    if (drawn_.insert(flat).second) {
      coords.push_back(stratum_coord(stratum_, flat));
      rejections = 0;
    } else if (++rejections > 64) {
      // Draw density too high for rejection: sweep the remaining indices
      // in order (deterministic, and only reachable on small strata).
      for (std::uint64_t flat_seq = 0;
           flat_seq < stratum_.count && drawn_.size() < target;
           ++flat_seq) {
        if (drawn_.insert(flat_seq).second) {
          coords.push_back(stratum_coord(stratum_, flat_seq));
        }
      }
      break;
    }
  }
  return coords;
}

}  // namespace maco::sampling
