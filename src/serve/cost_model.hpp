// Batch execution-cost oracles for the serve loop.
//
// The serving simulation separates WHEN work happens (serve::Server's
// event loop in virtual time) from HOW LONG work takes (this oracle). A
// BatchCostModel answers one question — the makespan of an admitted batch
// of B requests of the served model — and because a serve stream asks it
// for the same handful of batch sizes millions of times, implementations
// memoize by batch size: a million-request stream costs a few machine
// evaluations plus O(1) per request.
//
// Two rungs mirror the fidelity ladder:
//  * analytic — core::SystemTimingModel::run_layers on the model's GEMM
//    list, each instance owning an equal static share of the active nodes
//    (paper-scale models, microseconds per distinct batch size);
//  * detailed — the batch's GEMM task list executed on a real MacoSystem
//    through os::Scheduler, one process per concurrent model instance so
//    co-resident instances contend for MTQ/NoC/CCM/DRAM exactly as the
//    multi-process machinery of Section III.C does. The measured makespan
//    is charged in engine virtual time, and the scheduler's own counters
//    (context switches, MTQ backoffs, fault repairs) accumulate for the
//    serve report.
#pragma once

#include <cstdint>
#include <memory>

#include "core/config.hpp"
#include "obs/observation.hpp"
#include "os/scheduler.hpp"
#include "serve/workload.hpp"
#include "sim/time.hpp"

namespace maco::serve {

class BatchCostModel {
 public:
  virtual ~BatchCostModel() = default;

  // Makespan of one admitted batch of `batch` requests, in simulated ps.
  // Deterministic: equal batch sizes return equal makespans.
  virtual sim::TimePs batch_makespan_ps(unsigned batch) = 0;

  // Scheduler counters accumulated over every measurement so far; nullptr
  // when the model does not run through os::Scheduler (analytic).
  virtual const os::SchedulerStats* scheduler_stats() const noexcept {
    return nullptr;
  }

  // Hardware counters and NoC traffic accumulated over every measurement
  // so far; nullptr unless the model runs a detailed machine with
  // config.profile=counters.
  virtual const obs::RunObservation* observation() const noexcept {
    return nullptr;
  }
};

struct CostModelOptions {
  unsigned nodes = 16;        // active compute nodes shared by all instances
  unsigned instances = 1;     // concurrent model instances (>= 1)
  std::uint64_t tile = 1024;  // first-level tile (analytic)
  std::uint64_t inner = 64;   // systolic tile (both)
};

// Each instance runs the model cooperatively on nodes/instances nodes
// (at least 1). Throws std::invalid_argument on instances > nodes.
std::unique_ptr<BatchCostModel> make_analytic_cost_model(
    const core::SystemConfig& config, const ServeModel& model,
    const CostModelOptions& options);

// Measures each distinct batch size once: a fresh MacoSystem with
// `options.nodes` nodes, `options.instances` processes each submitting
// the batch's full GEMM task list, driven to completion by os::Scheduler;
// the engine-time makespan is the charged cost. Model dimensions must fit
// the detailed machine (checked per layer at measurement time with a
// typed diagnostic naming the offending shape).
std::unique_ptr<BatchCostModel> make_detailed_cost_model(
    const core::SystemConfig& config, const ServeModel& model,
    const CostModelOptions& options);

}  // namespace maco::serve
