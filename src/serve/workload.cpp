#include "serve/workload.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "graph/builtin_models.hpp"
#include "graph/lowering.hpp"
#include "util/rng.hpp"
#include "workloads/dnn_models.hpp"

namespace maco::serve {

const char* arrival_kind_name(ArrivalKind kind) noexcept {
  switch (kind) {
    case ArrivalKind::kPoisson: return "poisson";
    case ArrivalKind::kUniform: return "uniform";
    case ArrivalKind::kTrace: return "trace";
  }
  return "?";
}

ArrivalKind parse_arrival_kind(const std::string& name) {
  if (name == "poisson") return ArrivalKind::kPoisson;
  if (name == "uniform") return ArrivalKind::kUniform;
  if (name == "trace") return ArrivalKind::kTrace;
  throw std::invalid_argument("unknown arrival process '" + name +
                              "' (want poisson|uniform|trace)");
}

LoadGenerator::LoadGenerator(const ArrivalConfig& config) : config_(config) {}

std::vector<Request> LoadGenerator::schedule() const {
  if (config_.tenants == 0) {
    throw std::invalid_argument("load generator needs >= 1 tenant");
  }
  // Two independent seeded streams so the arrival timeline is unchanged
  // by the tenant count (and vice versa): sweeping `tenants` compares the
  // same traffic divided differently.
  util::Rng arrival_rng(0x5eefull ^ (config_.seed * 0x9e3779b97f4a7c15ull));
  util::Rng tenant_rng(0x7e4a ^ (config_.seed * 0xbf58476d1ce4e5b9ull));

  std::vector<Request> requests;
  const auto push = [&](double arrival_s, int pinned_tenant) {
    Request request;
    request.id = requests.size();
    request.tenant =
        pinned_tenant >= 0
            ? static_cast<unsigned>(pinned_tenant) % config_.tenants
            : static_cast<unsigned>(tenant_rng.next_below(config_.tenants));
    request.arrival_ps = static_cast<sim::TimePs>(
        std::llround(arrival_s * static_cast<double>(sim::kPsPerSecond)));
    requests.push_back(request);
  };

  switch (config_.kind) {
    case ArrivalKind::kPoisson: {
      if (!(config_.rate_rps > 0.0)) {
        throw std::invalid_argument("poisson arrivals need rate_rps > 0");
      }
      double t = 0.0;
      for (std::uint64_t i = 0; i < config_.requests; ++i) {
        // Exponential inter-arrival; 1 - U keeps the argument in (0, 1].
        t += -std::log(1.0 - arrival_rng.next_double()) / config_.rate_rps;
        push(t, -1);
      }
      break;
    }
    case ArrivalKind::kUniform: {
      if (!(config_.rate_rps > 0.0)) {
        throw std::invalid_argument("uniform arrivals need rate_rps > 0");
      }
      for (std::uint64_t i = 0; i < config_.requests; ++i) {
        push(static_cast<double>(i + 1) / config_.rate_rps, -1);
      }
      break;
    }
    case ArrivalKind::kTrace: {
      if (config_.trace.empty()) {
        throw std::invalid_argument("trace arrivals need a non-empty trace");
      }
      for (const TraceEntry& entry : config_.trace) {
        if (!(entry.arrival_s >= 0.0) || !std::isfinite(entry.arrival_s)) {
          throw std::invalid_argument(
              "trace arrival times must be finite and >= 0");
        }
        push(entry.arrival_s, entry.tenant);
      }
      break;
    }
  }

  // Stable: simultaneous arrivals keep trace/id order.
  std::stable_sort(requests.begin(), requests.end(),
                   [](const Request& a, const Request& b) {
                     return a.arrival_ps < b.arrival_ps;
                   });
  for (std::size_t i = 0; i < requests.size(); ++i) {
    requests[i].id = i;
  }
  return requests;
}

std::vector<TraceEntry> parse_trace(const std::string& text) {
  std::vector<TraceEntry> entries;
  std::istringstream lines(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(lines, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    std::istringstream fields(line);
    TraceEntry entry;
    if (!(fields >> entry.arrival_s)) {
      throw std::runtime_error("trace line " + std::to_string(lineno) +
                               ": expected 'SECONDS [TENANT]', got '" +
                               line + "'");
    }
    if (fields >> entry.tenant) {
      if (entry.tenant < 0) {
        throw std::runtime_error("trace line " + std::to_string(lineno) +
                                 ": tenant must be >= 0");
      }
    }
    std::string trailing;
    if (fields >> trailing) {
      throw std::runtime_error("trace line " + std::to_string(lineno) +
                               ": trailing text '" + trailing + "'");
    }
    if (!std::isfinite(entry.arrival_s) || entry.arrival_s < 0.0) {
      throw std::runtime_error("trace line " + std::to_string(lineno) +
                               ": arrival seconds must be finite and >= 0");
    }
    entries.push_back(entry);
  }
  return entries;
}

std::vector<sa::TileShape> ServeModel::layers(unsigned batch) const {
  if (batch == 0) {
    throw std::invalid_argument("a served batch has >= 1 request");
  }
  if (name == "tiny") {
    // A three-layer MLP over 16 tokens per request: small enough that one
    // batch fits the detailed machine (m = 16*batch <= 2048 for
    // batch <= 128) yet batch-sensitive like the real models. The
    // manifest's seq_len default of 16 supplies the per-request tokens.
    graph::LoweringOptions options;
    options.batch = batch;
    return graph::lower(graph::builtin_graph("tiny"), options)
        .workload.expanded_shapes();
  }
  if (name == "resnet50") return wl::resnet50(batch).expanded_shapes();
  if (name == "bert") {
    return wl::bert_base(batch, seq_len).expanded_shapes();
  }
  if (name == "gpt3") return wl::gpt3(batch, seq_len).expanded_shapes();
  throw std::invalid_argument("unknown served model '" + name + "'");
}

ServeModel serve_model(const std::string& name, unsigned seq_len) {
  ServeModel model;
  model.name = name;
  model.seq_len = seq_len;
  if (name == "tiny") {
    model.precision = sa::Precision::kFp32;
    model.seq_len = 0;
  } else if (name == "resnet50") {
    model.seq_len = 0;
  } else if (name != "bert" && name != "gpt3") {
    throw std::invalid_argument("unknown served model '" + name +
                                "' (want tiny|resnet50|bert|gpt3)");
  }
  // Validate eagerly so a bad name fails at configuration time.
  (void)model.layers(1);
  return model;
}

}  // namespace maco::serve
