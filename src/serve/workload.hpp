// Serving load generation: request streams in simulated time.
//
// A serving simulation starts from an arrival process. This header owns
// everything up to admission: the Request record that flows through the
// serve pipeline (arrival -> admission -> batch -> schedule -> complete,
// timestamps charged in engine virtual time), the seeded-deterministic
// open-loop generators (Poisson, uniform, trace-driven replay) and the
// model catalogue that maps a served model name to the GEMM layer list one
// batch of B requests executes. Closed-loop (fixed-concurrency, think
// time) arrivals depend on completions, so they are produced incrementally
// by serve::Server using the same seeded streams; the generator here
// covers every schedule that can be fixed before the simulation runs.
//
// Determinism contract: the same ArrivalConfig (including seed) yields a
// bit-identical schedule — arrival times, tenants, order — on every run,
// platform and thread count. All randomness flows through util::Rng.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sa/types.hpp"
#include "sim/time.hpp"
#include "workloads/gemm_workload.hpp"

namespace maco::serve {

// One inference request travelling through the serving pipeline. The
// timestamps after `arrival_ps` are filled in by serve::Server as the
// request passes each stage.
struct Request {
  std::uint64_t id = 0;
  unsigned tenant = 0;
  sim::TimePs arrival_ps = 0;      // entered the tenant's admission queue
  sim::TimePs batch_close_ps = 0;  // the batch it joined was sealed
  sim::TimePs exec_start_ps = 0;   // the batch began executing
  sim::TimePs completion_ps = 0;   // the batch's makespan elapsed

  sim::TimePs latency_ps() const noexcept {
    return completion_ps - arrival_ps;
  }
  sim::TimePs batching_delay_ps() const noexcept {
    return batch_close_ps - arrival_ps;
  }
  sim::TimePs queueing_delay_ps() const noexcept {
    return exec_start_ps - batch_close_ps;
  }
  sim::TimePs execution_ps() const noexcept {
    return completion_ps - exec_start_ps;
  }
};

enum class ArrivalKind {
  kPoisson,  // exponential inter-arrival times at rate_rps
  kUniform,  // deterministic equal spacing at rate_rps
  kTrace,    // replay of explicit arrival timestamps
};

const char* arrival_kind_name(ArrivalKind kind) noexcept;
// Throws std::invalid_argument on an unknown spelling.
ArrivalKind parse_arrival_kind(const std::string& name);

// One trace-driven arrival: a timestamp, optionally pinned to a tenant
// (-1 = assigned from the seeded tenant stream like generated arrivals).
struct TraceEntry {
  double arrival_s = 0.0;
  int tenant = -1;
};

struct ArrivalConfig {
  ArrivalKind kind = ArrivalKind::kPoisson;
  double rate_rps = 100.0;        // aggregate open-loop arrival rate
  unsigned tenants = 1;           // requests are assigned uniformly
  std::uint64_t requests = 1000;  // schedule length (kPoisson/kUniform)
  std::uint64_t seed = 1;
  // kTrace: arrivals replayed verbatim (sorted internally);
  // `requests`/`rate_rps` are ignored for the timeline.
  std::vector<TraceEntry> trace;
};

class LoadGenerator {
 public:
  explicit LoadGenerator(const ArrivalConfig& config);

  // The full open-loop schedule, sorted by arrival time, ids in arrival
  // order. Deterministic in the config (see header contract). Throws
  // std::invalid_argument on a non-positive rate or an empty trace.
  std::vector<Request> schedule() const;

  const ArrivalConfig& config() const noexcept { return config_; }

 private:
  ArrivalConfig config_;
};

// Parses trace text into ArrivalConfig::trace: one arrival per line,
// either "SECONDS" or "SECONDS TENANT"; blank lines and #-comments are
// skipped. Lines with an explicit tenant pin the request to that tenant
// (modulo the configured tenant count); others are assigned from the
// seeded stream. Throws std::runtime_error on a malformed line.
std::vector<TraceEntry> parse_trace(const std::string& text);

// ---- served models ----

// A model the serve loop can host: `layers(batch)` is the GEMM task list
// one admitted batch of `batch` requests executes (batch scales the GEMM
// M/N dims exactly as the offline workload generators do).
struct ServeModel {
  std::string name;
  sa::Precision precision = sa::Precision::kFp32;
  unsigned seq_len = 0;  // 0 when the model has no sequence dimension

  std::vector<sa::TileShape> layers(unsigned batch) const;
};

// Catalogue: tiny (a three-layer MLP small enough for the detailed
// machine), resnet50, bert, gpt3 (the offline workload generators at the
// batch size of the admitted batch). Throws std::invalid_argument on an
// unknown name.
ServeModel serve_model(const std::string& name, unsigned seq_len);

}  // namespace maco::serve
