#include "serve/server.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <queue>
#include <stdexcept>
#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace maco::serve {
namespace {

constexpr sim::TimePs kNever = std::numeric_limits<sim::TimePs>::max();

double ps_to_ms(sim::TimePs ps) {
  return static_cast<double>(ps) / 1e9;
}

double ps_to_s(sim::TimePs ps) {
  return static_cast<double>(ps) / static_cast<double>(sim::kPsPerSecond);
}

// Discrete-event loop over three event kinds — request arrival, batcher
// forced-close deadline, batch completion — merged in virtual time. Ties
// resolve completion, then arrival, then deadline, so a request arriving
// exactly at a deadline still joins the closing window.
class ServeLoop {
 public:
  ServeLoop(BatchCostModel& cost, const ServeConfig& config)
      : cost_(cost),
        config_(config),
        batcher_(config.arrival.tenants, config.policy),
        think_rng_(0x7417ull ^ (config.arrival.seed * 0x94d049bb133111ebull)) {
    if (config.instances == 0) {
      throw std::invalid_argument("serve needs >= 1 model instance");
    }
    if (config.arrival.tenants == 0) {
      throw std::invalid_argument("serve needs >= 1 tenant");
    }
    if (config.closed_loop && config.concurrency == 0) {
      throw std::invalid_argument("closed loop needs >= 1 session");
    }
    if (config.closed_loop &&
        (!std::isfinite(config.think_s) || config.think_s < 0.0)) {
      throw std::invalid_argument("closed loop think_s must be >= 0");
    }
    for (unsigned i = 0; i < config.instances; ++i) {
      instances_.push({0, i});
    }
    if (config.closed_loop) {
      const unsigned sessions = static_cast<unsigned>(std::min<std::uint64_t>(
          config.concurrency, config.arrival.requests));
      for (unsigned session = 0; session < sessions; ++session) {
        spawn(session % config.arrival.tenants, think_delay_ps());
      }
    } else {
      records_ = LoadGenerator(config.arrival).schedule();
    }
  }

  ServeReport run() {
    while (step()) {
    }
    return finish();
  }

 private:
  struct Pending {  // a not-yet-admitted arrival (closed loop)
    sim::TimePs at;
    std::uint64_t id;
    bool operator>(const Pending& other) const noexcept {
      return at != other.at ? at > other.at : id > other.id;
    }
  };

  struct Completion {
    sim::TimePs at;
    std::uint64_t seq;  // dispatch order breaks timestamp ties
    Batch batch;
    sim::TimePs exec_start;
    unsigned instance;  // which model instance ran the batch
    bool operator>(const Completion& other) const noexcept {
      return at != other.at ? at > other.at : seq > other.seq;
    }
  };

  using InstanceSlot = std::pair<sim::TimePs, unsigned>;  // free-at, index

  sim::TimePs think_delay_ps() {
    if (config_.think_s <= 0.0) return 0;
    const double wait =
        -std::log(1.0 - think_rng_.next_double()) * config_.think_s;
    return static_cast<sim::TimePs>(
        std::llround(wait * static_cast<double>(sim::kPsPerSecond)));
  }

  void spawn(unsigned tenant, sim::TimePs at) {  // closed loop only
    if (issued_ >= config_.arrival.requests) return;
    ++issued_;
    Request request;
    request.id = records_.size();
    request.tenant = tenant;
    request.arrival_ps = at;
    pending_.push(Pending{at, request.id});
    records_.push_back(request);
  }

  sim::TimePs next_arrival() const {
    if (config_.closed_loop) {
      return pending_.empty() ? kNever : pending_.top().at;
    }
    return cursor_ < records_.size() ? records_[cursor_].arrival_ps : kNever;
  }

  bool step() {
    const sim::TimePs t_completion =
        completions_.empty() ? kNever : completions_.top().at;
    const sim::TimePs t_arrival = next_arrival();
    const sim::TimePs t_deadline =
        batcher_.next_deadline().value_or(kNever);
    const sim::TimePs now = std::min({t_completion, t_arrival, t_deadline});
    if (now == kNever) return false;

    if (t_completion == now) {
      complete(completions_.top());
      completions_.pop();
    } else if (t_arrival == now) {
      const std::uint64_t id =
          config_.closed_loop ? admit_pending() : records_[cursor_++].id;
      batcher_.enqueue(id, records_[id].tenant, now);
    }
    // Deadline events need no handler of their own: collect() seals every
    // queue whose window expired at or before `now`.
    for (Batch& batch : batcher_.collect(now)) {
      dispatch(std::move(batch));
    }
    return true;
  }

  std::uint64_t admit_pending() {
    const std::uint64_t id = pending_.top().id;
    pending_.pop();
    return id;
  }

  void dispatch(Batch batch) {
    const InstanceSlot slot = instances_.top();
    instances_.pop();
    // The instance free times of every earlier batch are already known, so
    // greedy earliest-free assignment at seal time is exact FIFO dispatch.
    const sim::TimePs start = std::max(batch.close_ps, slot.first);
    const sim::TimePs done = start + cost_.batch_makespan_ps(batch.size());
    instances_.push({done, slot.second});
    completions_.push(Completion{done, dispatch_seq_++, std::move(batch),
                                 start, slot.second});
  }

  void complete(const Completion& completion) {
    ++report_.batches;
    if (config_.record_trace) {
      report_.batch_log.push_back(ServeReport::BatchTrace{
          completion.instance, completion.seq,
          static_cast<unsigned>(completion.batch.requests.size()),
          completion.batch.close_ps, completion.exec_start, completion.at});
    }
    for (const std::uint64_t id : completion.batch.requests) {
      Request& request = records_[id];
      request.batch_close_ps = completion.batch.close_ps;
      request.exec_start_ps = completion.exec_start;
      request.completion_ps = completion.at;
      record(request);
      if (config_.closed_loop) {
        spawn(request.tenant, completion.at + think_delay_ps());
      }
    }
  }

  void record(const Request& request) {
    const double latency = ps_to_ms(request.completion_ps -
                                    request.arrival_ps);
    report_.latency_ms.record(latency);
    report_.batching_ms.record(
        ps_to_ms(request.batch_close_ps - request.arrival_ps));
    report_.queueing_ms.record(
        ps_to_ms(request.exec_start_ps - request.batch_close_ps));
    report_.execution_ms.record(
        ps_to_ms(request.completion_ps - request.exec_start_ps));
    ++report_.completed;
    if (report_.tenants.size() < config_.arrival.tenants) {
      report_.tenants.resize(config_.arrival.tenants);
    }
    TenantReport& tenant = report_.tenants[request.tenant];
    ++tenant.completed;
    tenant.latency_ms.record(latency);
    const bool within_slo = latency <= config_.slo_ms;
    if (within_slo) ++tenant.slo_met;
    last_arrival_ps_ = std::max(last_arrival_ps_, request.arrival_ps);
    last_completion_ps_ = std::max(last_completion_ps_, request.completion_ps);
  }

  ServeReport finish() {
    report_.tenants.resize(config_.arrival.tenants);
    report_.duration_s = ps_to_s(last_completion_ps_);
    const double arrival_span_s = ps_to_s(last_arrival_ps_);
    const double completed = static_cast<double>(report_.completed);
    if (arrival_span_s > 0.0) {
      report_.offered_rps = completed / arrival_span_s;
    }
    std::uint64_t slo_met = 0;
    double tenant_sum = 0.0;
    double tenant_sq = 0.0;
    for (const TenantReport& tenant : report_.tenants) {
      slo_met += tenant.slo_met;
      const double share = static_cast<double>(tenant.completed);
      tenant_sum += share;
      tenant_sq += share * share;
    }
    if (report_.duration_s > 0.0) {
      report_.throughput_rps = completed / report_.duration_s;
      report_.goodput_rps =
          static_cast<double>(slo_met) / report_.duration_s;
    }
    if (report_.completed > 0) {
      report_.slo_attainment =
          static_cast<double>(slo_met) / completed;
      report_.fairness =  // Jain's index over per-tenant completions
          tenant_sum * tenant_sum /
          (static_cast<double>(report_.tenants.size()) * tenant_sq);
    }
    if (report_.batches > 0) {
      report_.mean_batch = completed / static_cast<double>(report_.batches);
    }
    if (const os::SchedulerStats* stats = cost_.scheduler_stats()) {
      report_.scheduler = *stats;
      report_.has_scheduler_stats = true;
    }
    if (config_.record_trace) {
      // Every spawned request has completed by now (the loop drains), so
      // the records are the full lifecycle log.
      report_.request_log = std::move(records_);
    }
    return std::move(report_);
  }

  BatchCostModel& cost_;
  const ServeConfig& config_;
  DynamicBatcher batcher_;
  util::Rng think_rng_;

  std::vector<Request> records_;
  std::size_t cursor_ = 0;       // open loop: next schedule entry
  std::uint64_t issued_ = 0;     // closed loop: requests created so far
  std::uint64_t dispatch_seq_ = 0;
  std::priority_queue<Pending, std::vector<Pending>, std::greater<>>
      pending_;
  std::priority_queue<Completion, std::vector<Completion>, std::greater<>>
      completions_;
  std::priority_queue<InstanceSlot, std::vector<InstanceSlot>,
                      std::greater<>>
      instances_;

  sim::TimePs last_arrival_ps_ = 0;
  sim::TimePs last_completion_ps_ = 0;
  ServeReport report_;
};

}  // namespace

ServeReport serve(BatchCostModel& cost, const ServeConfig& config) {
  return ServeLoop(cost, config).run();
}

}  // namespace maco::serve
