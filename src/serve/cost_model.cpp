#include "serve/cost_model.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <string>

#include "core/detailed_runner.hpp"
#include "core/maco_system.hpp"
#include "core/timing_model.hpp"
#include "obs/collector.hpp"
#include "obs/host_profile.hpp"

namespace maco::serve {
namespace {

unsigned nodes_per_instance(const CostModelOptions& options) {
  if (options.instances == 0) {
    throw std::invalid_argument("cost model needs >= 1 model instance");
  }
  if (options.instances > options.nodes) {
    throw std::invalid_argument(
        "instances " + std::to_string(options.instances) +
        " exceed the " + std::to_string(options.nodes) +
        " active nodes (each instance needs at least one node)");
  }
  return std::max(1u, options.nodes / options.instances);
}

class AnalyticCostModel final : public BatchCostModel {
 public:
  AnalyticCostModel(const core::SystemConfig& config, ServeModel model,
                    const CostModelOptions& options)
      : model_(std::move(model)), timing_model_(config) {
    options_.precision = model_.precision;
    options_.active_nodes = nodes_per_instance(options);
    options_.cooperative = options_.active_nodes > 1;
    options_.tile_rows = options.tile;
    options_.tile_cols = options.tile;
    options_.inner = options.inner;
  }

  sim::TimePs batch_makespan_ps(unsigned batch) override {
    const auto cached = memo_.find(batch);
    if (cached != memo_.end()) return cached->second;
    const core::SystemTiming timing =
        timing_model_.run_layers(model_.layers(batch), options_);
    memo_.emplace(batch, timing.makespan_ps);
    return timing.makespan_ps;
  }

 private:
  ServeModel model_;
  core::SystemTimingModel timing_model_;
  core::TimingOptions options_;
  std::map<unsigned, sim::TimePs> memo_;
};

class DetailedCostModel final : public BatchCostModel {
 public:
  DetailedCostModel(const core::SystemConfig& config, ServeModel model,
                    const CostModelOptions& options)
      : config_(config), model_(std::move(model)), options_(options) {
    (void)nodes_per_instance(options);  // validates instances vs nodes
    config_.node_count = std::min(options.nodes, config.node_count);
  }

  sim::TimePs batch_makespan_ps(unsigned batch) override {
    const auto cached = memo_.find(batch);
    if (cached != memo_.end()) return cached->second;
    const sim::TimePs makespan = measure(batch);
    memo_.emplace(batch, makespan);
    return makespan;
  }

  const os::SchedulerStats* scheduler_stats() const noexcept override {
    return &stats_;
  }

  const obs::RunObservation* observation() const noexcept override {
    return config_.profile == core::ProfileMode::kCounters ? &observation_
                                                           : nullptr;
  }

 private:
  sim::TimePs measure(unsigned batch) {
    const std::vector<sa::TileShape> layers = model_.layers(batch);
    for (const sa::TileShape& layer : layers) {
      const std::uint64_t largest = std::max({layer.m, layer.n, layer.k});
      if (largest > core::kDetailedMaxDim) {
        throw std::invalid_argument(
            "serve fidelity=detailed: model '" + model_.name +
            "' at batch " + std::to_string(batch) + " has a " +
            std::to_string(layer.m) + "x" + std::to_string(layer.n) + "x" +
            std::to_string(layer.k) + " layer exceeding the detailed " +
            "machine's " + std::to_string(core::kDetailedMaxDim) +
            "-per-dimension cap; lower max_batch, or use model=tiny or "
            "fidelity=analytic");
      }
    }

    // A fresh system per distinct batch size: engine time starts at zero,
    // so the scheduler-driven makespan IS the batch cost. All instances
    // co-run as separate processes — the measurement bakes in the
    // multi-process contention a loaded server would see.
    obs::ScopedPhase setup_phase("setup");
    core::MacoSystem system(config_);
    os::Scheduler::Options sched_options;
    sched_options.nodes = system.node_count();
    os::Scheduler scheduler(system, sched_options);

    core::TimingOptions task_options;
    task_options.precision = model_.precision;
    task_options.tile_rows = options_.tile;
    task_options.tile_cols = options_.tile;
    task_options.inner = options_.inner;
    std::uint64_t data_seed = 0;
    for (unsigned instance = 0; instance < options_.instances; ++instance) {
      core::Process& process = system.create_process();
      os::Job& job = scheduler.add_job(process);
      for (const sa::TileShape& layer : layers) {
        job.tasks.push_back(os::GemmTask{core::build_detailed_gemm_task(
            system, process, layer, task_options, /*a_page_offset=*/0,
            /*b_page_offset=*/0, /*c_page_offset=*/0, data_seed++)});
      }
    }

    setup_phase.stop();
    obs::ScopedPhase sim_phase("sim");
    const os::SchedulerStats run_stats = scheduler.run_all();
    sim_phase.stop();
    obs::ScopedPhase collect_phase("collect");
    accumulate(run_stats);
    if (run_stats.tasks_failed > 0) {
      throw std::runtime_error(
          "serve fidelity=detailed: batch measurement left " +
          std::to_string(run_stats.tasks_failed) + " task(s) failed");
    }
    if (config_.profile == core::ProfileMode::kCounters) {
      observation_.want_counters = true;
      obs::collect(system, observation_);
    }
    return system.engine().now();
  }

  void accumulate(const os::SchedulerStats& run) noexcept {
    stats_.context_switches += run.context_switches;
    stats_.tasks_completed += run.tasks_completed;
    stats_.tasks_failed += run.tasks_failed;
    stats_.faults_repaired += run.faults_repaired;
    stats_.pages_mapped += run.pages_mapped;
    stats_.mtq_full_backoffs += run.mtq_full_backoffs;
    stats_.scheduling_rounds += run.scheduling_rounds;
  }

  core::SystemConfig config_;
  ServeModel model_;
  CostModelOptions options_;
  os::SchedulerStats stats_;
  obs::RunObservation observation_;  // counters summed over measurements
  std::map<unsigned, sim::TimePs> memo_;
};

}  // namespace

std::unique_ptr<BatchCostModel> make_analytic_cost_model(
    const core::SystemConfig& config, const ServeModel& model,
    const CostModelOptions& options) {
  return std::make_unique<AnalyticCostModel>(config, model, options);
}

std::unique_ptr<BatchCostModel> make_detailed_cost_model(
    const core::SystemConfig& config, const ServeModel& model,
    const CostModelOptions& options) {
  return std::make_unique<DetailedCostModel>(config, model, options);
}

}  // namespace maco::serve
