// The multi-tenant serve loop.
//
// A discrete-event simulation in virtual time that wires the pieces
// together: requests arrive (open-loop from a LoadGenerator schedule, or
// closed-loop from a fixed pool of sessions with exponential think time),
// the DynamicBatcher admits them into per-tenant queues and seals batches,
// and sealed batches run on one of `instances` concurrent model instances
// whose execution cost comes from a BatchCostModel. Every request is
// charged three delays in simulated picoseconds — batching (arrival to
// seal), queueing (seal to execution start) and execution (batch
// makespan) — and the report aggregates them into latency percentiles,
// throughput, SLO goodput and per-tenant fairness.
//
// The loop is O(log instances) per batch and O(1) per request, so
// million-request streams are cheap; the machine is only evaluated once
// per distinct batch size (see serve/cost_model.hpp).
#pragma once

#include <cstdint>
#include <vector>

#include "os/scheduler.hpp"
#include "serve/batcher.hpp"
#include "serve/cost_model.hpp"
#include "serve/workload.hpp"
#include "util/latency_histogram.hpp"

namespace maco::serve {

struct ServeConfig {
  ArrivalConfig arrival;  // tenants/requests/seed also govern closed loop
  BatchPolicy policy;
  unsigned instances = 1;  // concurrent model instances (executors)
  double slo_ms = 10.0;    // latency objective for goodput accounting

  // Closed loop: `concurrency` sessions each keep one request in flight
  // and re-issue after an exponential think time with mean `think_s`.
  // arrival.kind / arrival.rate_rps are ignored; arrival.tenants,
  // arrival.requests (total issued) and arrival.seed still apply.
  bool closed_loop = false;
  unsigned concurrency = 8;
  double think_s = 0.0;

  // Keep the per-request and per-batch timestamp logs in the report so a
  // lifecycle trace can be rendered (--trace-out). Off by default: the
  // logs are O(requests) memory that million-request streams don't want.
  bool record_trace = false;
};

struct TenantReport {
  std::uint64_t completed = 0;
  std::uint64_t slo_met = 0;
  util::LatencyHistogram latency_ms;
};

struct ServeReport {
  std::uint64_t completed = 0;       // requests served to completion
  std::uint64_t batches = 0;         // batches executed
  double duration_s = 0.0;           // simulated time to last completion
  double offered_rps = 0.0;          // admitted / span of arrivals
  double throughput_rps = 0.0;       // completed / duration_s
  double goodput_rps = 0.0;          // completions within slo / duration_s
  double slo_attainment = 0.0;       // fraction of completions within slo
  double mean_batch = 0.0;           // completed / batches
  double fairness = 0.0;             // Jain index over tenant completions

  // End-to-end latency plus its three components, all in milliseconds.
  util::LatencyHistogram latency_ms;
  util::LatencyHistogram batching_ms;   // arrival -> batch seal
  util::LatencyHistogram queueing_ms;   // seal -> execution start
  util::LatencyHistogram execution_ms;  // execution start -> completion

  std::vector<TenantReport> tenants;

  // Accumulated os::Scheduler counters when the cost model measures
  // through the detailed machine; all-zero (and flagged absent) otherwise.
  os::SchedulerStats scheduler;
  bool has_scheduler_stats = false;

  // One executed batch (config.record_trace only): which instance ran it
  // and its seal/start/completion times.
  struct BatchTrace {
    unsigned instance = 0;
    std::uint64_t seq = 0;       // dispatch order
    unsigned size = 0;           // requests in the batch
    sim::TimePs close_ps = 0;    // batch sealed
    sim::TimePs exec_start_ps = 0;
    sim::TimePs completion_ps = 0;
  };

  // Trace logs (empty unless config.record_trace): every served request
  // with its lifecycle timestamps filled in, and every executed batch.
  std::vector<Request> request_log;
  std::vector<BatchTrace> batch_log;
};

// Runs the serve simulation to completion (every admitted request served)
// and returns the report. Deterministic: equal configs give bit-identical
// reports regardless of host, thread count or wall-clock. Throws
// std::invalid_argument on inconsistent configuration.
ServeReport serve(BatchCostModel& cost, const ServeConfig& config);

}  // namespace maco::serve
