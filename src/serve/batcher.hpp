// Admission queues and dynamic batching.
//
// Requests are admitted into per-tenant FIFO queues; the batcher seals a
// tenant's queue into a Batch under the classic dynamic-batching policy:
// the moment the queue reaches `max_batch` waiting requests, or when the
// oldest waiting request has waited `timeout_ps` (whichever comes first).
// Batches never mix tenants — a tenant is a model instance's admission
// domain, so a batch maps to one GEMM task list of one model at one batch
// size. timeout_ps == 0 degenerates to no batching: every request seals
// alone at its own arrival instant.
//
// The batcher is a pure state machine over simulated time: the serve loop
// feeds it arrivals (enqueue) and clock advances (collect), and asks for
// the next forced-close deadline so the event loop knows when to wake.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "serve/workload.hpp"
#include "sim/time.hpp"

namespace maco::serve {

struct BatchPolicy {
  unsigned max_batch = 8;            // seal immediately at this size
  sim::TimePs timeout_ps = 1000000;  // oldest-waiter age forcing a seal
};

// One sealed batch, ready for execution.
struct Batch {
  unsigned tenant = 0;
  std::vector<std::uint64_t> requests;  // request ids, admission order
  sim::TimePs close_ps = 0;             // when the batch was sealed

  unsigned size() const noexcept {
    return static_cast<unsigned>(requests.size());
  }
};

class DynamicBatcher {
 public:
  DynamicBatcher(unsigned tenants, const BatchPolicy& policy);

  // Admits a request at `now` (its arrival time). Time must not go
  // backwards across calls. Sealed batches accumulate internally; drain
  // them with collect().
  void enqueue(std::uint64_t request_id, unsigned tenant, sim::TimePs now);

  // Earliest forced-close deadline over all tenants with waiting
  // requests; nullopt when every queue is empty.
  std::optional<sim::TimePs> next_deadline() const;

  // Advances the batcher clock to `now`, sealing every tenant queue whose
  // deadline has passed, and returns all batches sealed so far (size- and
  // timeout-sealed alike) in seal order.
  std::vector<Batch> collect(sim::TimePs now);

  // True when no request is waiting and no sealed batch is uncollected.
  bool idle() const noexcept;

  // Lifetime counters for the serve report.
  std::uint64_t batches_sealed() const noexcept { return batches_sealed_; }
  std::uint64_t requests_admitted() const noexcept {
    return requests_admitted_;
  }

 private:
  struct Waiting {
    std::uint64_t request_id;
    sim::TimePs arrival_ps;
  };

  void seal(unsigned tenant, sim::TimePs close_ps);

  BatchPolicy policy_;
  std::vector<std::deque<Waiting>> queues_;  // per tenant
  std::vector<Batch> sealed_;
  std::uint64_t batches_sealed_ = 0;
  std::uint64_t requests_admitted_ = 0;
};

}  // namespace maco::serve
