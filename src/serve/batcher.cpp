#include "serve/batcher.hpp"

#include <algorithm>
#include <utility>

#include "util/assert.hpp"

namespace maco::serve {

DynamicBatcher::DynamicBatcher(unsigned tenants, const BatchPolicy& policy)
    : policy_(policy), queues_(tenants) {
  MACO_ASSERT(tenants >= 1 && policy.max_batch >= 1);
}

void DynamicBatcher::seal(unsigned tenant, sim::TimePs close_ps) {
  std::deque<Waiting>& queue = queues_[tenant];
  Batch batch;
  batch.tenant = tenant;
  batch.close_ps = close_ps;
  const unsigned take =
      std::min<unsigned>(policy_.max_batch,
                         static_cast<unsigned>(queue.size()));
  batch.requests.reserve(take);
  for (unsigned i = 0; i < take; ++i) {
    batch.requests.push_back(queue.front().request_id);
    queue.pop_front();
  }
  ++batches_sealed_;
  sealed_.push_back(std::move(batch));
}

void DynamicBatcher::enqueue(std::uint64_t request_id, unsigned tenant,
                             sim::TimePs now) {
  MACO_ASSERT(tenant < queues_.size());
  ++requests_admitted_;
  queues_[tenant].push_back(Waiting{request_id, now});
  if (queues_[tenant].size() >= policy_.max_batch ||
      policy_.timeout_ps == 0) {
    seal(tenant, now);
  }
}

std::optional<sim::TimePs> DynamicBatcher::next_deadline() const {
  std::optional<sim::TimePs> deadline;
  for (const std::deque<Waiting>& queue : queues_) {
    if (queue.empty()) continue;
    const sim::TimePs due = queue.front().arrival_ps + policy_.timeout_ps;
    if (!deadline || due < *deadline) deadline = due;
  }
  return deadline;
}

std::vector<Batch> DynamicBatcher::collect(sim::TimePs now) {
  for (unsigned tenant = 0; tenant < queues_.size(); ++tenant) {
    // A seal can leave further timed-out waiters behind (more than
    // max_batch arrived inside one window): keep sealing until the
    // oldest survivor is within its window.
    while (!queues_[tenant].empty() &&
           queues_[tenant].front().arrival_ps + policy_.timeout_ps <= now) {
      seal(tenant, queues_[tenant].front().arrival_ps + policy_.timeout_ps);
    }
  }
  return std::exchange(sealed_, {});
}

bool DynamicBatcher::idle() const noexcept {
  if (!sealed_.empty()) return false;
  for (const std::deque<Waiting>& queue : queues_) {
    if (!queue.empty()) return false;
  }
  return true;
}

}  // namespace maco::serve
