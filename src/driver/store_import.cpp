#include "driver/store_import.hpp"

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>

#include "driver/hardware_knobs.hpp"
#include "exp/results.hpp"
#include "store/fingerprint.hpp"
#include "util/json.hpp"

namespace maco::driver {
namespace {

struct ColumnInfo {
  std::string unit;
  bool higher_is_better = true;
};

// One row of the sweep JSON -> one CampaignRecord, re-bound through the
// current schemas. Returns an empty optional-style flag via record.error
// only for rows the FILE marked as failed; schema/rule violations throw.
store::CampaignRecord import_row(
    const Scenario& scenario, std::uint64_t schema_hash,
    const std::map<std::string, ColumnInfo>& columns,
    const util::JsonValue& row) {
  const util::JsonValue* params = row.find("params");
  if (params == nullptr) {
    throw std::runtime_error("row has no \"params\" object");
  }
  std::map<std::string, std::string> scenario_raw;
  std::map<std::string, std::string> hardware_raw;
  for (const auto& [key, value] : params->as_object()) {
    if (scenario.schema.has(key)) {
      scenario_raw[key] = value.as_string();
    } else if (hardware_schema().has(key)) {
      hardware_raw[key] = value.as_string();
    } else {
      throw std::invalid_argument(
          "scenario '" + scenario.name + "' has no parameter '" + key +
          "' and it is not a hardware knob (schema drift since this "
          "trajectory was recorded?)");
    }
  }
  const exp::ParamSet hardware_params = hardware_schema().bind(hardware_raw);
  const exp::ParamSet scenario_params = scenario.schema.bind(scenario_raw);
  for (const CrossRule& rule : scenario.cross_rules) {
    if (!rule.satisfied(scenario_params, hardware_params)) {
      throw std::invalid_argument("scenario '" + scenario.name +
                                  "' violates cross-schema constraint '" +
                                  rule.rule + "'");
    }
  }

  store::CampaignRecord record;
  record.scenario = scenario.name;
  record.schema_hash = schema_hash;
  store::canonical_params(scenario_params, record.params,
                          record.explicit_params);
  store::canonical_params(hardware_params, record.params,
                          record.explicit_params);
  record.fingerprint = record.computed_fingerprint();
  record.fidelity = scenario_params.has("fidelity")
                        ? scenario_params.str("fidelity")
                        : "analytic";

  if (const util::JsonValue* metrics = row.find("metrics")) {
    for (const auto& [name, value] : metrics->as_object()) {
      // Non-finite metric values serialize as null; there is no value to
      // import for them.
      if (value.is_null()) continue;
      exp::Metric metric;
      metric.name = name;
      metric.value = value.as_number();
      const auto info = columns.find(name);
      if (info != columns.end()) {
        metric.unit = info->second.unit;
        metric.higher_is_better = info->second.higher_is_better;
      } else {
        // No column metadata (hand-written or truncated JSON): fall back
        // to the same name-based inference ScenarioResult::add uses, so
        // an imported latency_p95_ms still gates as lower-is-better.
        metric.higher_is_better =
            !exp::lower_is_better_metric_name(name);
      }
      record.metrics.push_back(std::move(metric));
    }
  }
  if (const util::JsonValue* error = row.find("error")) {
    record.error = error->as_string();
  }
  return record;
}

}  // namespace

ImportSummary import_sweep_json(const ScenarioRegistry& registry,
                                const std::string& json_text,
                                store::CampaignStore& store) {
  const util::JsonValue doc = util::parse_json(json_text);
  const util::JsonValue* scenario_name = doc.find("scenario");
  if (scenario_name == nullptr || !scenario_name->is_string()) {
    throw std::runtime_error("sweep JSON has no \"scenario\" string");
  }
  const Scenario* scenario = registry.find(scenario_name->as_string());
  if (scenario == nullptr) {
    throw std::invalid_argument("unknown scenario '" +
                                scenario_name->as_string() +
                                "' in sweep JSON");
  }

  // Unit/direction metadata rides in the "columns" array; a metric not
  // described there imports as dimensionless with its direction inferred
  // from the name (percentile/latency names are lower-is-better, the
  // rest higher — exp::lower_is_better_metric_name).
  std::map<std::string, ColumnInfo> columns;
  if (const util::JsonValue* cols = doc.find("columns")) {
    for (const util::JsonValue& col : cols->as_array()) {
      const util::JsonValue* name = col.find("name");
      if (name == nullptr) continue;
      ColumnInfo info;
      if (const util::JsonValue* unit = col.find("unit")) {
        info.unit = unit->as_string();
      }
      if (const util::JsonValue* dir = col.find("higher_is_better")) {
        info.higher_is_better = dir->as_bool();
      }
      columns[name->as_string()] = info;
    }
  }

  const util::JsonValue* rows = doc.find("rows");
  if (rows == nullptr || !rows->is_array()) {
    throw std::runtime_error("sweep JSON has no \"rows\" array");
  }

  // The same resume key a live sweep of this scenario would use, computed
  // from the schemas as they are NOW.
  const std::uint64_t schema_hash = store::schema_digest(
      hardware_schema(), store::schema_digest(scenario->schema));

  ImportSummary summary;
  std::size_t index = 0;
  for (const util::JsonValue& row : rows->as_array()) {
    store::CampaignRecord record;
    try {
      record = import_row(*scenario, schema_hash, columns, row);
    } catch (const std::exception& error) {
      throw std::runtime_error("sweep JSON row " + std::to_string(index) +
                               ": " + error.what());
    }
    ++index;
    if (!record.ok()) {
      ++summary.errored;
      continue;
    }
    if (store.contains(record.fingerprint, record.schema_hash)) {
      ++summary.skipped;
      continue;
    }
    store.append(record);
    ++summary.imported;
  }
  return summary;
}

}  // namespace maco::driver
