// `macosim graph validate|show FILE` — schema-check a model manifest and
// print the lowered layer table without running any simulation.
//
// Like trace_cmd, this is pure string-to-string rendering so tests can
// exercise it without a CLI process; errors surface as the typed
// exceptions of the layers below (util::FileError, graph::GraphError).
#pragma once

#include <string>

#include "graph/lowering.hpp"

namespace maco::driver {

// Loads and validates `path`, returning a one-line summary
// ("<file>: ok (model NAME, N ops, M tensors)"). Invalid manifests throw.
std::string validate_manifest(const std::string& path);

// Loads `path`, lowers it with `options`, and renders the per-layer GEMM
// table (op, kind, shapes, FLOPs, bytes) plus the per-op contribution
// summary. Invalid manifests throw.
std::string show_manifest(const std::string& path,
                          const graph::LoweringOptions& options);

}  // namespace maco::driver
