// Scenario registry of the `macosim` driver.
//
// A scenario is one named, parameterized experiment: every workload
// (src/workloads/), baseline comparison (src/baselines/) and paper
// figure/table bench (bench/) is registered here so one CLI can run and
// sweep all of them. Each scenario declares a typed exp::ParamSchema (the
// single parser for its knobs) and consumes a fully-validated
// exp::ParamSet; scenarios that execute the MACO machine do so through an
// exp::ExecutionBackend selected by the `fidelity` parameter, so the same
// experiment can run against the analytic timing model or the detailed
// flit-level system.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/config.hpp"
#include "exp/backend.hpp"
#include "exp/param_schema.hpp"
#include "exp/results.hpp"

namespace maco::driver {

using exp::ScenarioResult;

// One fully-validated run: the hardware config (knobs already applied) and
// the scenario's typed parameters (defaults filled by the schema).
struct ScenarioRequest {
  core::SystemConfig config = core::SystemConfig::maco_default();
  exp::ParamSet params;

  // Ask the scenario to record execution spans and return them as
  // ScenarioResult::trace_json (driver --trace-out). Only scenarios that
  // run a detailed machine or the serve loop produce spans; others ignore
  // the flag and leave trace_json empty.
  bool collect_trace = false;

  // The `fidelity` parameter when the scenario declares one (analytic
  // otherwise), and the matching execution backend over `config`.
  exp::Fidelity fidelity() const;
  std::unique_ptr<exp::ExecutionBackend> backend() const;
};

// A declarative constraint ACROSS the two schemas of a sweep point: the
// scenario's parameters and the hardware knobs are bound separately, so a
// rule relating them (e.g. `nodes <= node_count`) cannot live on either
// ParamSchema alone. The sweep runner evaluates cross rules on every point
// after both binds and fails the point with the rule text;
// --list-scenarios prints them next to the schema's own constraints.
struct CrossRule {
  std::string rule;  // e.g. "nodes <= node_count"
  std::function<bool(const exp::ParamSet& scenario,
                     const exp::ParamSet& hardware)>
      satisfied;
};

struct Scenario {
  std::string name;
  std::string description;
  exp::ParamSchema schema;
  std::vector<CrossRule> cross_rules;  // scenario-vs-hardware constraints
  std::function<ScenarioResult(const ScenarioRequest&)> run;
  // A serial scenario never runs on more than one sweep worker at a time
  // (e.g. wall-clock micro-benches, whose numbers concurrency would skew).
  bool serial = false;

  bool has_param(std::string_view key) const noexcept {
    return schema.has(key);
  }
};

// The fidelities a scenario accepts, as "analytic|detailed|..." from its
// declared `fidelity` choices — "analytic (fixed)" for scenarios without
// the parameter (no detailed machine). Printed by --list-scenarios.
std::string fidelity_summary(const Scenario& scenario);

class ScenarioRegistry {
 public:
  // Returns false (and leaves the registry unchanged) on a duplicate name.
  bool add(Scenario scenario);

  // nullptr when unknown.
  const Scenario* find(std::string_view name) const noexcept;

  std::vector<std::string> names() const;
  const std::vector<Scenario>& scenarios() const noexcept {
    return scenarios_;
  }

  // A registry pre-populated with every built-in scenario.
  static ScenarioRegistry builtin();

 private:
  std::vector<Scenario> scenarios_;
};

}  // namespace maco::driver
