// Scenario registry of the `macosim` driver.
//
// A scenario is one named, parameterized experiment: every workload
// (src/workloads/), baseline comparison (src/baselines/) and paper
// figure/table bench (bench/) is registered here so one CLI can run and
// sweep all of them. A scenario takes a fully-built SystemConfig plus its
// own parameters and returns a flat list of named metrics — one result row.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "core/config.hpp"

namespace maco::driver {

// Parameters of one run: scenario knobs only (hardware knobs have already
// been folded into `config` by apply_config_params).
struct ScenarioRequest {
  core::SystemConfig config = core::SystemConfig::maco_default();
  std::map<std::string, std::string> params;

  // Typed accessors; throw std::invalid_argument on malformed values.
  std::uint64_t param_u64(const std::string& key, std::uint64_t fallback)
      const;
  double param_double(const std::string& key, double fallback) const;
  bool param_bool(const std::string& key, bool fallback) const;
  std::string param_str(const std::string& key, std::string fallback) const;
  sa::Precision param_precision(const std::string& key,
                                sa::Precision fallback) const;
};

// One result row: ordered metric name/value pairs.
struct ScenarioResult {
  std::vector<std::pair<std::string, double>> metrics;

  void add(std::string name, double value) {
    metrics.emplace_back(std::move(name), value);
  }
};

struct ParamSpec {
  std::string name;
  std::string default_value;
  std::string description;
};

struct Scenario {
  std::string name;
  std::string description;
  std::vector<ParamSpec> params;
  std::function<ScenarioResult(const ScenarioRequest&)> run;
  // A serial scenario never runs on more than one sweep worker at a time
  // (e.g. wall-clock micro-benches, whose numbers concurrency would skew).
  bool serial = false;

  bool has_param(std::string_view key) const noexcept;
};

class ScenarioRegistry {
 public:
  // Returns false (and leaves the registry unchanged) on a duplicate name.
  bool add(Scenario scenario);

  // nullptr when unknown.
  const Scenario* find(std::string_view name) const noexcept;

  std::vector<std::string> names() const;
  const std::vector<Scenario>& scenarios() const noexcept {
    return scenarios_;
  }

  // A registry pre-populated with every built-in scenario.
  static ScenarioRegistry builtin();

 private:
  std::vector<Scenario> scenarios_;
};

// Hardware knobs: folds recognized keys (node_count, mesh_width,
// mesh_height, sa_rows, sa_cols, dram_channels, dram_efficiency, ccm_count,
// matlb_entries, inner_k) into `config` and erases them from `params`.
// Returns the list of keys it consumed.
std::vector<std::string> apply_config_params(
    std::map<std::string, std::string>& params, core::SystemConfig& config);

// The config-knob names apply_config_params recognizes.
const std::vector<std::string>& config_param_names();

}  // namespace maco::driver
