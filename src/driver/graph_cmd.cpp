#include "driver/graph_cmd.hpp"

#include <sstream>
#include <string>

#include "sa/types.hpp"
#include "util/table.hpp"

namespace maco::driver {
namespace {

std::string mib(std::uint64_t bytes) {
  return util::format_double(static_cast<double>(bytes) / (1024.0 * 1024.0),
                             2);
}

std::string gflop(std::uint64_t flops) {
  return util::format_double(static_cast<double>(flops) * 1e-9, 3);
}

}  // namespace

std::string validate_manifest(const std::string& path) {
  graph::ModelGraph graph = graph::load_model_graph(path);
  std::ostringstream out;
  out << path << ": ok (model " << graph.name << ", " << graph.ops.size()
      << " ops, " << graph.tensors.size() << " tensors)";
  return out.str();
}

std::string show_manifest(const std::string& path,
                          const graph::LoweringOptions& options) {
  graph::ModelGraph graph = graph::load_model_graph(path);
  graph::LoweredModel model = graph::lower(graph, options);

  std::ostringstream out;
  out << "model " << model.workload.name << " (precision "
      << sa::precision_name(model.workload.precision) << ", phase "
      << graph::phase_name(model.phase) << ", batch " << model.batch
      << ", seq_len " << model.seq_len << ", tokens " << model.tokens
      << ")\n";

  util::Table layers(
      {"Layer", "M", "N", "K", "Repeat", "Post", "GFLOP", "MiB"});
  for (std::size_t col = 1; col <= 4; ++col)
    layers.set_align(col, util::Align::kRight);
  layers.set_align(6, util::Align::kRight);
  layers.set_align(7, util::Align::kRight);
  const std::uint64_t ebytes = sa::element_bytes(model.workload.precision);
  for (const wl::Layer& layer : model.workload.layers) {
    const sa::TileShape& s = layer.shape;
    const std::uint64_t bytes =
        (static_cast<std::uint64_t>(s.m) * s.k +
         static_cast<std::uint64_t>(s.k) * s.n +
         static_cast<std::uint64_t>(s.m) * s.n) *
        ebytes * layer.repeat;
    layers.row()
        .cell(layer.name)
        .cell(std::uint64_t{s.m})
        .cell(std::uint64_t{s.n})
        .cell(std::uint64_t{s.k})
        .cell(std::uint64_t{layer.repeat})
        .cell(wl::post_op_name(layer.post))
        .cell(gflop(layer.flops()))
        .cell(mib(bytes));
  }
  layers.print(out, "Lowered layers");
  out << "\n";

  util::Table ops({"Op", "Kind", "Layers", "GFLOP", "MiB", "FLOPs%"});
  ops.set_align(2, util::Align::kRight);
  ops.set_align(3, util::Align::kRight);
  ops.set_align(4, util::Align::kRight);
  ops.set_align(5, util::Align::kRight);
  for (const graph::OpContribution& op : model.ops) {
    std::string layers_cell =
        op.layer_count == 0 ? "fused:" + op.fused_into
                            : std::to_string(op.layer_count);
    ops.row()
        .cell(op.op)
        .cell(graph::op_kind_name(op.kind))
        .cell(std::move(layers_cell))
        .cell(gflop(op.flops))
        .cell(mib(op.bytes))
        .percent(op.flops_frac);
  }
  ops.print(out, "Per-op contribution");
  out << "\ntotal: " << gflop(model.total_flops()) << " GFLOP, "
      << mib(model.total_bytes) << " MiB moved, "
      << model.workload.layers.size() << " layers from "
      << model.ops.size() << " ops\n";
  return out.str();
}

}  // namespace maco::driver
