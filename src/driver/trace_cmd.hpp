// The `macosim trace` subcommand: terminal rendering of --trace-out files.
//
// Reads a Chrome/Perfetto trace JSON back (the one format every trace in
// the tree is written in — obs/trace_writer.cpp), and renders it without
// leaving the terminal: an ASCII Gantt of the spans, and, when the file
// carries the writer's NoC sidecar (the "maco"."noc" object), a per-node
// link-utilization heatmap plus an optional per-link CSV. Rendering is
// pure string-to-struct so tests can drive it without touching files.
#pragma once

#include <cstddef>
#include <string>

namespace maco::driver {

struct TraceRender {
  std::string gantt;     // span summary + ASCII Gantt
  std::string noc_text;  // heatmap + hottest links; "" without NoC data
  std::string noc_csv;   // node,x,y,dir,flits,busy_ps,util rows; "" without
};

// Parses `json_text` — an object with a "traceEvents" array (what
// --trace-out writes) or a bare event array — and renders every complete
// ("X") event as a Gantt span. Throws std::runtime_error on malformed
// JSON or a document with no traceEvents.
TraceRender render_trace(const std::string& json_text, std::size_t width);

}  // namespace maco::driver
