// Command-line front end of the unified `macosim` driver.
//
// One grammar covers every workload, baseline and hardware knob:
//
//   macosim --list-scenarios
//   macosim --scenario gemm --set size=4096 --set precision=fp32
//   macosim --scenario gemm --set fidelity=detailed --set size=512
//   macosim --scenario gemm --sweep nodes=1,4,16 --sweep size=1024,4096
//           --threads 4 --output sweep.json --format json
//   macosim --scenario gemm --sweep size=1024,4096 --store campaign.mdb
//   macosim report --store campaign.mdb --where nodes=16
//   macosim report --store new.mdb --compare baseline.mdb --tolerance 0.05
//   macosim store compact --store campaign.mdb
//   macosim store import BENCH_dram.json --store baseline.mdb
//   macosim graph validate examples/models/bert-block.json
//   macosim graph show examples/models/gpt3-block.json --phase decode
//
// Parsing is pure (no I/O, no exit()) so tests can drive it directly.
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

namespace maco::driver {

// One `--sweep key=v1,v2,...` axis, in command-line order.
struct SweepAxis {
  std::string key;
  std::vector<std::string> values;
};

enum class CliCommand {
  kSweep,         // the default: run/sweep one scenario
  kReport,        // query/compare a campaign store
  kStoreCompact,  // rewrite a store keeping the latest record per point
  kStoreImport,   // load sweep-runner JSON (e.g. BENCH_*.json) into a store
  kTrace,         // render a --trace-out JSON as ASCII Gantt + NoC heatmap
  kGraphValidate,  // schema-check a model manifest, print a summary
  kGraphShow,      // print a manifest's lowered layer table (no run)
};

struct CliOptions {
  CliCommand command = CliCommand::kSweep;
  bool show_help = false;
  bool list_scenarios = false;
  bool quiet = false;
  std::string scenario;
  std::map<std::string, std::string> params;  // --set key=value overrides
  std::vector<SweepAxis> sweeps;              // --sweep axes (Cartesian)
  unsigned threads = 1;
  std::string output_path;    // --output FILE (format from --format)
  std::string output_format;  // sweep: "csv"/"json"; report: +"md"/"table"
  std::string csv_path;       // --csv: empty => default; "-" => stdout
  std::string json_path;      // --json: empty => no JSON output
  std::string store_path;     // --store: campaign database (both commands)
  std::string import_path;    // store import: the sweep JSON to load
  std::string trace_out;      // --trace-out DIR: per-point trace JSONs

  // `trace` only: render one trace file in the terminal.
  std::string trace_path;     // the .trace.json to render
  unsigned trace_width = 72;  // --width: Gantt columns
  std::string noc_csv_path;   // --noc-csv FILE: per-link utilization CSV

  // `graph validate|show` only: the manifest plus lowering overrides
  // (0 = the manifest's own defaults; see graph::LoweringOptions).
  std::string graph_file;
  unsigned graph_batch = 0;      // --batch
  unsigned graph_seq_len = 0;    // --seq-len
  std::string graph_phase = "prefill";  // --phase prefill|decode
  unsigned graph_moe_top_k = 0;  // --moe-top-k

  // `report` only:
  std::string compare_path;                   // --compare OTHER_STORE
  std::map<std::string, std::string> where;   // --where key=value filters
  std::vector<std::string> metrics;           // --metric NAME columns
  std::vector<std::string> ignore_keys;       // --ignore KEY (matching)
  double tolerance = 0.02;                    // --tolerance FRACTION
};

struct CliParse {
  bool ok = false;
  CliOptions options;
  std::string error;  // set when !ok
};

// Parses argv[1..]; never exits or prints.
CliParse parse_cli(const std::vector<std::string>& args);

// Splits "key=v1,v2,v3" into an axis; empty key/values => ok=false.
struct AxisParse {
  bool ok = false;
  SweepAxis axis;
  std::string error;
};
AxisParse parse_axis(const std::string& spec);

// The --help text.
std::string usage();

}  // namespace maco::driver
