// Hardware configuration knobs of the `macosim` driver.
//
// One typed schema describes every core::SystemConfig field that can be set
// or swept from the CLI — geometry (nodes, mesh, systolic array), memory
// system (DRAM channels/efficiency, L2/L3 sizes, sTLB entries, DMA queue
// depths) and accelerator internals (mATLB entries, inner K-chunk). The
// sweep runner validates values against this schema before any run and
// folds the explicitly-set ones into the per-point SystemConfig.
#pragma once

#include <iosfwd>
#include <string>

#include "core/config.hpp"
#include "exp/param_schema.hpp"

namespace maco::driver {

// The declarative schema (types, defaults matching
// SystemConfig::maco_default(), ranges, descriptions).
const exp::ParamSchema& hardware_schema();

// Folds every explicitly-set knob of `params` into `config`; defaults are
// left to the SystemConfig the caller built. `params` must come from
// hardware_schema() (values are already validated and typed). Throws
// std::invalid_argument on cross-field violations the per-value schema
// cannot express (node_count/ccm_count/DDR controllers vs mesh capacity).
void apply_hardware_params(const exp::ParamSet& params,
                           core::SystemConfig& config);

// Renders the knob schema as a name/type/default/range/description table —
// the one rendering path shared by `--list-scenarios` and the bench_tables
// appendix, so the two cannot drift.
void print_hardware_knob_table(std::ostream& out, const std::string& title);

}  // namespace maco::driver
