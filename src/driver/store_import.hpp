// `macosim store import`: load sweep-runner JSON into a campaign store.
//
// The sweep runner's JSON output (driver/sweep_runner.cpp, write_json) is
// the interchange format for committed benchmark trajectories: a canonical
// sweep's results live in the repository as BENCH_*.json, CI imports them
// into a store and `macosim report --compare` gates fresh runs against
// them. Import does NOT trust the file's identity: every row's parameters
// are re-bound through the current scenario and hardware schemas — typed
// validation, cross-schema rules, canonicalization and fingerprinting all
// run exactly as they would for a live sweep — so a committed trajectory
// whose schema has since drifted fails loudly instead of silently
// mismatching every point.
#pragma once

#include <cstddef>
#include <string>

#include "driver/scenario_registry.hpp"
#include "store/campaign_store.hpp"

namespace maco::driver {

struct ImportSummary {
  std::size_t imported = 0;  // rows appended to the store
  std::size_t skipped = 0;   // rows whose point the store already had
  std::size_t errored = 0;   // rows with a recorded error (not imported:
                             // a failed run carries no reusable result)
};

// Parses `json_text` (write_json format: scenario, metric columns, rows of
// params + metrics) and appends each row to `store` as a CampaignRecord
// fingerprinted under the CURRENT schema digest. Rows already present in
// the store (same fingerprint and schema hash, error-free) are skipped, so
// importing the same trajectory twice is idempotent. Throws
// std::invalid_argument / std::runtime_error naming the offending row on
// malformed input, unknown scenarios/parameters, or rule violations.
ImportSummary import_sweep_json(const ScenarioRegistry& registry,
                                const std::string& json_text,
                                store::CampaignStore& store);

}  // namespace maco::driver
