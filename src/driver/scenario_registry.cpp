#include "driver/scenario_registry.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "baselines/comparison.hpp"
#include "core/detailed_runner.hpp"
#include "core/timing_model.hpp"
#include "graph/builtin_models.hpp"
#include "graph/lowering.hpp"
#include "mem/cache.hpp"
#include "mem/queued_dram.hpp"
#include "model/area_power.hpp"
#include "obs/collector.hpp"
#include "obs/observation.hpp"
#include "obs/trace_writer.hpp"
#include "sa/sparse.hpp"
#include "serve/server.hpp"
#include "util/file.hpp"
#include "workloads/dnn_models.hpp"
#include "workloads/gemm_workload.hpp"
#include "workloads/hpl.hpp"

namespace maco::driver {
namespace {

const std::vector<std::string>& precision_choices() {
  static const std::vector<std::string> choices = {"fp64", "fp32", "fp16"};
  return choices;
}

sa::Precision precision_from(const std::string& name) {
  if (name == "fp64") return sa::Precision::kFp64;
  if (name == "fp32") return sa::Precision::kFp32;
  if (name == "fp16") return sa::Precision::kFp16;
  throw std::invalid_argument("unknown precision '" + name + "'");
}

// Schema shared by every timing scenario. Defaults that the old string API
// resolved "per scenario" at run time are now declared per scenario.
// `nodes` follows the instantiated node_count unless set explicitly, so a
// node_count sweep activates the extra nodes; the declared 16 documents
// the paper platform.
void declare_nodes(exp::ParamSchema& s, const char* description) {
  s.u64("nodes", 16, description, 1, 64);
}

// The cross-schema companion of declare_nodes: an explicitly-set `nodes`
// must fit the instantiated hardware (unset `nodes` follows node_count, so
// it can never violate the rule). Declared, checked per point by the sweep
// runner and printed by --list-scenarios — the historic silent clamp in
// active_nodes_from under-reported what the user asked for.
CrossRule nodes_fit_hardware_rule() {
  return CrossRule{
      "nodes <= node_count",
      [](const exp::ParamSet& scenario, const exp::ParamSet& hardware) {
        return !scenario.was_set("nodes") ||
               scenario.u64("nodes") <= hardware.u64("node_count");
      }};
}

// The dram/icnt backend traits and the exec scheduler exist on the detailed
// machine only. For a scenario that declares `fidelity`, an analytic point
// must keep the defaults (the closed forms have no banked-DRAM/flit/
// scheduler terms, so a non-default choice would be silently ignored —
// make it a typed error naming the valid combos instead).
CrossRule backends_need_detail_rule() {
  return CrossRule{
      "dram=queued|icnt=flit|exec=lockstep require fidelity=detailed|"
      "sampled (fidelity=analytic supports the defaults only)",
      [](const exp::ParamSet& scenario, const exp::ParamSet& hardware) {
        return scenario.str("fidelity") != "analytic" ||
               (hardware.str("dram") == "simple" &&
                hardware.str("icnt") == "analytic" &&
                hardware.str("exec") == "event");
      }};
}

// profile=counters publishes the detailed machine's component counters;
// the closed forms have nothing to publish, so a counters point that
// doesn't run the detailed backend would silently report no counters —
// make it a typed error instead. Scenarios whose fidelity list excludes
// "detailed" reject profile=counters outright through this rule.
CrossRule profile_needs_detailed_rule() {
  return CrossRule{
      "profile=counters requires fidelity=detailed",
      [](const exp::ParamSet& scenario, const exp::ParamSet& hardware) {
        return hardware.str("profile") != "counters" ||
               scenario.str("fidelity") == "detailed";
      }};
}

// The same guard for scenarios with no detailed machine at all (no
// `fidelity` parameter): backend/scheduler/observability knobs are
// inapplicable.
CrossRule backends_fixed_rule() {
  return CrossRule{
      "dram=simple, icnt=analytic, exec=event, profile=off (scenario has "
      "no detailed machine)",
      [](const exp::ParamSet&, const exp::ParamSet& hardware) {
        return hardware.str("dram") == "simple" &&
               hardware.str("icnt") == "analytic" &&
               hardware.str("exec") == "event" &&
               hardware.str("profile") == "off";
      }};
}

unsigned active_nodes_from(const ScenarioRequest& request) {
  if (!request.params.was_set("nodes")) {
    return request.config.node_count;
  }
  const std::uint64_t nodes = request.params.u64("nodes");
  // Backstop for callers that build a ScenarioRequest directly; sweep
  // points are rejected earlier by the declared `nodes <= node_count`
  // cross rule.
  if (nodes > request.config.node_count) {
    throw std::invalid_argument(
        "nodes " + std::to_string(nodes) + " exceeds node_count " +
        std::to_string(request.config.node_count) +
        " (raise --set node_count=... or lower nodes)");
  }
  return static_cast<unsigned>(nodes);
}

bool supports_sampled(const std::vector<std::string>& fidelities) {
  return std::find(fidelities.begin(), fidelities.end(), "sampled") !=
         fidelities.end();
}

// The fidelity=sampled estimator's knobs; declared by every scenario that
// lists "sampled" among its fidelities.
void declare_sampling_knobs(exp::ParamSchema& s) {
  s.f64("sample_frac", 0.05, "tile fraction simulated per stratum "
        "(fidelity=sampled)", 1e-9, 1.0);
  s.u64("sample_seed", 1, "stratified-draw seed (fidelity=sampled)");
  s.f64("ci_target", 0.0, "adaptive sampling until relative 95% CI <= "
        "target; 0 disables (fidelity=sampled)", 0.0, 1.0);
  s.u64("sample_workers", 1, "parallel tile-batch simulations "
        "(fidelity=sampled)", 1, 64);
}

exp::ParamSchema timing_schema(const char* default_precision,
                               bool default_cooperative,
                               std::vector<std::string> fidelities) {
  const bool sampled = supports_sampled(fidelities);
  exp::ParamSchema s;
  declare_nodes(s, "active compute nodes (defaults to node_count)");
  s.enumerant("precision", default_precision, precision_choices(),
              "MAC precision");
  s.flag("matlb", true, "predictive address translation on/off");
  s.flag("stash_lock", true, "L3 stash+lock mapping on/off");
  s.flag("cooperative", default_cooperative,
         "split one GEMM across nodes");
  s.u64("tile", 1024, "first-level tile rows/cols", 1, 65535);
  s.u64("inner", 64, "second-level (systolic) tile", 1, 65535);
  s.u64("page_bytes", 4096, "translation page size", 256, 1048576);
  s.enumerant("fidelity", "analytic", std::move(fidelities),
              "execution backend");
  if (sampled) {
    declare_sampling_knobs(s);
    s.constrain("fidelity=sampled requires tile <= " +
                    std::to_string(core::kDetailedMaxDim),
                [](const exp::ParamSet& p) {
                  return p.str("fidelity") != "sampled" ||
                         p.u64("tile") <= core::kDetailedMaxDim;
                });
  }
  return s;
}

// Copies the declare_sampling_knobs values into TimingOptions; a no-op
// for schemas without them (fidelity lists that exclude "sampled").
void apply_sampling_knobs(core::TimingOptions& options,
                          const exp::ParamSet& params) {
  if (!params.has("sample_frac")) return;
  options.sample_frac = params.f64("sample_frac");
  options.sample_seed = params.u64("sample_seed");
  options.ci_target = params.f64("ci_target");
  options.sample_workers =
      static_cast<unsigned>(params.u64("sample_workers"));
}

core::TimingOptions timing_options_from(const ScenarioRequest& request) {
  core::TimingOptions options;
  options.precision = precision_from(request.params.str("precision"));
  options.active_nodes = active_nodes_from(request);
  options.cooperative = request.params.flag("cooperative");
  options.use_matlb = request.params.flag("matlb");
  options.use_stash_lock = request.params.flag("stash_lock");
  options.tile_rows = request.params.u64("tile");
  options.tile_cols = options.tile_rows;
  options.inner = request.params.u64("inner");
  options.page_bytes = request.params.u64("page_bytes");
  apply_sampling_knobs(options, request.params);
  return options;
}

// core::OsStats -> os_* metrics: every run driven through os::Scheduler
// (fidelity=detailed GEMM, serve's detailed batch oracle) reports the OS
// software counters instead of discarding them. All are diagnostics; the
// event counters gate as lower-is-better so a scheduling regression (more
// backoffs, more repair round-trips) shows up in report --compare.
void add_os_metrics(ScenarioResult& result, const core::OsStats& os) {
  result.add("os_context_switches",
             static_cast<double>(os.context_switches), "",
             /*higher_is_better=*/false);
  result.add("os_mtq_full_backoffs",
             static_cast<double>(os.mtq_full_backoffs), "",
             /*higher_is_better=*/false);
  result.add("os_faults_repaired",
             static_cast<double>(os.faults_repaired), "",
             /*higher_is_better=*/false);
  result.add("os_scheduling_rounds",
             static_cast<double>(os.scheduling_rounds), "",
             /*higher_is_better=*/false);
  result.add("os_tasks_completed",
             static_cast<double>(os.tasks_completed));
}

void add_system_metrics(ScenarioResult& result,
                        const core::SystemTiming& timing) {
  result.add("gflops", timing.total_gflops, "GFLOP/s");
  result.add("mean_efficiency", timing.mean_efficiency);
  result.add("makespan_ms", static_cast<double>(timing.makespan_ps) / 1e9,
             "ms", /*higher_is_better=*/false);
  result.add("walks_per_tile", timing.translation.walks_per_tile, "",
             /*higher_is_better=*/false);
  result.add("pages_per_tile", timing.translation.pages_per_tile, "",
             /*higher_is_better=*/false);
  if (timing.sampling.present()) {
    // Error-bar companions: metric X's 95% half-width is X_ci95, the
    // convention store::compare_campaigns keys interval overlap on. The
    // throughput/efficiency intervals follow from the makespan's relative
    // width (both are exact-MAC counts divided by the estimated time).
    const double rel =
        timing.sampling.rel_ci95(static_cast<double>(timing.makespan_ps));
    result.add("makespan_ms_ci95",
               timing.sampling.makespan_ci95_ps / 1e9, "ms",
               /*higher_is_better=*/false);
    result.add("makespan_ms_se", timing.sampling.makespan_se_ps / 1e9,
               "ms", /*higher_is_better=*/false);
    result.add("gflops_ci95", rel * timing.total_gflops, "GFLOP/s",
               /*higher_is_better=*/false);
    result.add("mean_efficiency_ci95", rel * timing.mean_efficiency, "",
               /*higher_is_better=*/false);
    result.add("sampled_tiles",
               static_cast<double>(timing.sampling.sampled_tiles));
    result.add("total_tiles",
               static_cast<double>(timing.sampling.total_tiles));
  }
  if (timing.os.present) {
    add_os_metrics(result, timing.os);
  }
}

// Runs the backend with `observation` attached when the request wants
// counters (profile=counters) or a trace (--trace-out); a plain run
// otherwise, so unobserved points take the exact historic path.
core::SystemTiming run_observed(const ScenarioRequest& request,
                                exp::ExecutionBackend& backend,
                                const core::TimingOptions& options,
                                obs::RunObservation& observation) {
  observation.want_counters =
      request.config.profile == core::ProfileMode::kCounters;
  observation.want_trace = request.collect_trace;
  if (!observation.want_counters && !observation.want_trace) {
    return backend.run(options);
  }
  return backend.run(options, &observation);
}

// Rolls a filled observation into the result: counter-derived metrics
// (l2_hit_rate, dram_row_hit_rate, noc_max_link_util, ...) when counters
// were collected, and the Chrome/Perfetto trace JSON when the request
// asked for a trace and the run produced spans.
void add_observation_outputs(const ScenarioRequest& request,
                             const obs::RunObservation& observation,
                             ScenarioResult& result) {
  if (observation.want_counters) {
    obs::add_counter_metrics(result, observation);
  }
  if (request.collect_trace && !observation.spans.empty()) {
    result.trace_json = obs::to_perfetto_json(observation);
  }
}

ScenarioResult run_workload_layers(const ScenarioRequest& request,
                                   const wl::Workload& workload) {
  const auto backend = request.backend();
  const core::TimingOptions options = timing_options_from(request);
  const core::SystemTiming timing =
      backend->run_layers(workload.expanded_shapes(), options);
  ScenarioResult result;
  result.add("total_gflop", static_cast<double>(workload.total_flops()) / 1e9,
             "GFLOP");
  add_system_metrics(result, timing);
  return result;
}

Scenario gemm_scenario() {
  Scenario s;
  s.name = "gemm";
  s.description =
      "square GEMM on the full MACO system (independent per node by "
      "default, as Fig. 7)";
  s.schema = timing_schema("fp64", /*default_cooperative=*/false,
                           {"analytic", "detailed", "sampled"});
  s.schema.u64("size", 4096, "square matrix dimension", 1, 1048576);
  s.schema.constrain(
      "fidelity=detailed requires size <= " +
          std::to_string(core::kDetailedMaxDim),
      [](const exp::ParamSet& p) {
        return p.str("fidelity") != "detailed" ||
               p.u64("size") <= core::kDetailedMaxDim;
      });
  s.cross_rules.push_back(nodes_fit_hardware_rule());
  s.cross_rules.push_back(backends_need_detail_rule());
  s.cross_rules.push_back(profile_needs_detailed_rule());
  s.run = [](const ScenarioRequest& request) {
    const auto backend = request.backend();
    core::TimingOptions options = timing_options_from(request);
    const std::uint64_t size = request.params.u64("size");
    options.shape = sa::TileShape{size, size, size};
    obs::RunObservation observation;
    const core::SystemTiming timing =
        run_observed(request, *backend, options, observation);
    ScenarioResult result;
    result.add("size", static_cast<double>(size));
    add_system_metrics(result, timing);
    add_observation_outputs(request, observation, result);
    return result;
  };
  return s;
}

Scenario hpl_scenario() {
  Scenario s;
  s.name = "hpl";
  s.description =
      "HPL right-looking LU trailing-update GEMM sequence (FP64, "
      "cooperative)";
  s.schema = timing_schema("fp64", /*default_cooperative=*/true,
                           {"analytic", "sampled"});
  s.schema.u64("n", 16384, "LU problem size", 1, 1048576);
  s.schema.u64("nb", 256, "panel width", 1, 65535);
  s.cross_rules.push_back(nodes_fit_hardware_rule());
  s.cross_rules.push_back(backends_need_detail_rule());
  s.cross_rules.push_back(profile_needs_detailed_rule());
  s.run = [](const ScenarioRequest& request) {
    return run_workload_layers(
        request,
        wl::hpl_workload(request.params.u64("n"), request.params.u64("nb")));
  };
  return s;
}

Scenario dnn_scenario(std::string name, std::string description,
                      const char* default_precision,
                      std::function<wl::Workload(const ScenarioRequest&)>
                          make_workload) {
  Scenario s;
  s.name = std::move(name);
  s.description = std::move(description);
  s.schema = timing_schema(default_precision, /*default_cooperative=*/true,
                           {"analytic", "sampled"});
  s.cross_rules.push_back(nodes_fit_hardware_rule());
  s.cross_rules.push_back(backends_need_detail_rule());
  s.cross_rules.push_back(profile_needs_detailed_rule());
  s.run = [make_workload = std::move(make_workload)](
              const ScenarioRequest& request) {
    return run_workload_layers(request, make_workload(request));
  };
  return s;
}

wl::Workload named_workload(const ScenarioRequest& request,
                            const std::string& name) {
  if (name == "resnet50") {
    return wl::resnet50(
        static_cast<unsigned>(request.params.u64("batch")));
  }
  if (name == "bert") {
    return wl::bert_base(
        static_cast<unsigned>(request.params.u64("batch")),
        static_cast<unsigned>(request.params.u64("seq_len")));
  }
  if (name == "gpt3") {
    return wl::gpt3(static_cast<unsigned>(request.params.u64("batch")),
                    static_cast<unsigned>(request.params.u64("seq_len")));
  }
  if (name == "gemm") {
    return wl::square_gemm(request.params.u64("size"),
                           precision_from(request.params.str("precision")));
  }
  throw std::invalid_argument("unknown workload '" + name + "'");
}

// "MACO" -> "maco", "CPU-only" -> "cpu_only": stable metric-name suffixes.
std::string metric_key(const std::string& system) {
  std::string key = system;
  std::transform(key.begin(), key.end(), key.begin(), [](char c) {
    return std::isalnum(static_cast<unsigned char>(c))
               ? static_cast<char>(
                     std::tolower(static_cast<unsigned char>(c)))
               : '_';
  });
  return key;
}

Scenario baselines_scenario() {
  Scenario s;
  s.name = "baselines";
  s.description =
      "Fig. 8 five-system comparison (CPU-only, no-mapping, RASA-like, "
      "Gemmini-like, MACO) on one workload";
  s.schema.enumerant("workload", "bert",
                     {"resnet50", "bert", "gpt3", "gemm"},
                     "compared workload");
  s.schema.u64("size", 4096, "matrix size (workload=gemm)", 1, 1048576);
  s.schema.u64("batch", 8, "batch size (DNN workloads)", 1, 4096);
  s.schema.u64("seq_len", 384, "sequence length (bert/gpt3)", 1, 65536);
  s.schema.enumerant("precision", "fp32", precision_choices(),
                     "workload=gemm precision");
  declare_nodes(s.schema, "MACO node count (others are single-node)");
  s.cross_rules.push_back(nodes_fit_hardware_rule());
  s.cross_rules.push_back(backends_fixed_rule());
  s.run = [](const ScenarioRequest& request) {
    const baseline::Comparator comparator(request.config,
                                          active_nodes_from(request));
    const wl::Workload workload =
        named_workload(request, request.params.str("workload"));
    ScenarioResult result;
    double maco_gflops = 0.0;
    double best_rival = 0.0;
    for (const baseline::ComparisonResult& run :
         comparator.run_all(workload)) {
      result.add("gflops_" + metric_key(run.system), run.gflops, "GFLOP/s");
      if (run.system == "MACO") {
        maco_gflops = run.gflops;
      } else {
        best_rival = std::max(best_rival, run.gflops);
      }
    }
    result.add("speedup_vs_best_rival",
               best_rival > 0.0 ? maco_gflops / best_rival : 0.0, "x");
    return result;
  };
  return s;
}

Scenario fig6_scenario() {
  Scenario s;
  s.name = "fig6_translation";
  s.description =
      "Fig. 6: efficiency with vs without predictive address translation "
      "(single node, FP64)";
  s.schema.u64("size", 4096, "square matrix dimension", 1, 1048576);
  s.schema.u64("page_bytes", 4096, "translation page size", 256, 1048576);
  s.schema.enumerant("fidelity", "analytic", {"analytic"},
                     "execution backend");
  s.cross_rules.push_back(backends_need_detail_rule());
  s.cross_rules.push_back(profile_needs_detailed_rule());
  s.run = [](const ScenarioRequest& request) {
    const auto backend = request.backend();
    const std::uint64_t size = request.params.u64("size");
    core::TimingOptions options;
    options.shape = sa::TileShape{size, size, size};
    options.precision = sa::Precision::kFp64;
    options.active_nodes = 1;
    options.page_bytes = request.params.u64("page_bytes");
    options.use_matlb = true;
    const core::SystemTiming with = backend->run(options);
    options.use_matlb = false;
    const core::SystemTiming without = backend->run(options);
    ScenarioResult result;
    result.add("size", static_cast<double>(size));
    result.add("efficiency_with", with.mean_efficiency);
    result.add("efficiency_without", without.mean_efficiency);
    result.add("gap", with.mean_efficiency - without.mean_efficiency);
    result.add("walks_per_tile", with.translation.walks_per_tile, "",
               /*higher_is_better=*/false);
    return result;
  };
  return s;
}

Scenario fig7_scenario() {
  Scenario s;
  s.name = "fig7_scalability";
  s.description =
      "Fig. 7: per-node efficiency vs active node count (independent FP64 "
      "GEMM per node)";
  s.schema.u64("size", 4096, "square matrix dimension", 1, 1048576);
  declare_nodes(s.schema, "active compute nodes (defaults to node_count)");
  s.schema.enumerant("fidelity", "analytic",
                     {"analytic", "detailed", "sampled"},
                     "execution backend");
  declare_sampling_knobs(s.schema);
  s.schema.constrain(
      "fidelity=detailed requires size <= " +
          std::to_string(core::kDetailedMaxDim),
      [](const exp::ParamSet& p) {
        return p.str("fidelity") != "detailed" ||
               p.u64("size") <= core::kDetailedMaxDim;
      });
  s.cross_rules.push_back(nodes_fit_hardware_rule());
  s.cross_rules.push_back(backends_need_detail_rule());
  s.cross_rules.push_back(profile_needs_detailed_rule());
  s.run = [](const ScenarioRequest& request) {
    const auto backend = request.backend();
    const std::uint64_t size = request.params.u64("size");
    core::TimingOptions options;
    options.shape = sa::TileShape{size, size, size};
    options.precision = sa::Precision::kFp64;
    options.cooperative = false;
    options.active_nodes = active_nodes_from(request);
    apply_sampling_knobs(options, request.params);
    obs::RunObservation observation;
    const core::SystemTiming timing =
        run_observed(request, *backend, options, observation);
    ScenarioResult result;
    result.add("size", static_cast<double>(size));
    result.add("nodes", options.active_nodes);
    add_system_metrics(result, timing);
    add_observation_outputs(request, observation, result);
    return result;
  };
  return s;
}

Scenario fig8_scenario() {
  Scenario s;
  s.name = "fig8_dl_comparison";
  s.description =
      "Fig. 8: five-system geomean over ResNet-50 + BERT + GPT-3 (FP32, 256 "
      "PEs)";
  declare_nodes(s.schema, "MACO node count");
  s.cross_rules.push_back(nodes_fit_hardware_rule());
  s.cross_rules.push_back(backends_fixed_rule());
  s.run = [](const ScenarioRequest& request) {
    const baseline::Comparator comparator(request.config,
                                          active_nodes_from(request));
    const std::vector<wl::Workload> workloads = {
        wl::resnet50(8), wl::bert_base(8, 384), wl::gpt3(1, 2048)};
    // system name -> product of per-workload gflops (for the geomean).
    std::vector<std::pair<std::string, double>> products;
    for (const wl::Workload& workload : workloads) {
      const auto runs = comparator.run_all(workload);
      if (products.empty()) {
        for (const auto& run : runs) products.emplace_back(run.system, 1.0);
      }
      for (std::size_t i = 0; i < runs.size(); ++i) {
        products[i].second *= runs[i].gflops;
      }
    }
    ScenarioResult result;
    double maco = 0.0;
    double baseline1 = 0.0;
    for (auto& [system, product] : products) {
      const double geomean =
          std::pow(product, 1.0 / static_cast<double>(workloads.size()));
      result.add("geomean_gflops_" + metric_key(system), geomean, "GFLOP/s");
      if (system == "MACO") maco = geomean;
      if (baseline1 == 0.0) baseline1 = geomean;  // first system in order
    }
    result.add("maco_vs_baseline1",
               baseline1 > 0.0 ? maco / baseline1 : 0.0, "x");
    return result;
  };
  return s;
}

Scenario ablation_scenario() {
  Scenario s;
  s.name = "ablation_features";
  s.description =
      "mATLB / stash+lock 2x2 feature grid on a paper-scale FP64 GEMM";
  s.schema.u64("size", 4096, "square matrix dimension", 1, 1048576);
  declare_nodes(s.schema, "active compute nodes (defaults to node_count)");
  s.schema.enumerant("fidelity", "analytic", {"analytic"},
                     "execution backend");
  s.cross_rules.push_back(nodes_fit_hardware_rule());
  s.cross_rules.push_back(backends_need_detail_rule());
  s.cross_rules.push_back(profile_needs_detailed_rule());
  s.run = [](const ScenarioRequest& request) {
    const auto backend = request.backend();
    const std::uint64_t size = request.params.u64("size");
    ScenarioResult result;
    result.add("size", static_cast<double>(size));
    for (const bool matlb : {true, false}) {
      for (const bool stash : {true, false}) {
        core::TimingOptions options;
        options.shape = sa::TileShape{size, size, size};
        options.precision = sa::Precision::kFp64;
        options.active_nodes = active_nodes_from(request);
        options.use_matlb = matlb;
        options.use_stash_lock = stash;
        const core::SystemTiming timing = backend->run(options);
        const std::string key = std::string("eff_matlb") +
                                (matlb ? "1" : "0") + "_stash" +
                                (stash ? "1" : "0");
        result.add(key, timing.mean_efficiency);
      }
    }
    return result;
  };
  return s;
}

Scenario area_power_scenario() {
  Scenario s;
  s.name = "area_power";
  s.description =
      "Table IV: CPU vs MMAE area/power model and the paper's efficiency "
      "ratios";
  s.cross_rules.push_back(backends_fixed_rule());
  s.run = [](const ScenarioRequest&) {
    const model::AreaPowerModel m;
    const model::UnitSummary cpu = m.cpu_summary();
    const model::UnitSummary mmae = m.mmae_summary();
    ScenarioResult result;
    result.add("cpu_area_mm2", cpu.area_mm2, "mm2",
               /*higher_is_better=*/false);
    result.add("cpu_power_w", cpu.power_watts, "W",
               /*higher_is_better=*/false);
    result.add("cpu_peak_gflops_fp64", cpu.peak_gflops_fp64, "GFLOP/s");
    result.add("mmae_area_mm2", mmae.area_mm2, "mm2",
               /*higher_is_better=*/false);
    result.add("mmae_power_w", mmae.power_watts, "W",
               /*higher_is_better=*/false);
    result.add("mmae_peak_gflops_fp64", mmae.peak_gflops_fp64, "GFLOP/s");
    result.add("relative_area", mmae.area_mm2 / cpu.area_mm2, "x",
               /*higher_is_better=*/false);
    result.add("area_efficiency_ratio",
               mmae.area_efficiency() / cpu.area_efficiency(), "x");
    result.add("power_efficiency_ratio",
               mmae.power_efficiency() / cpu.power_efficiency(), "x");
    return result;
  };
  return s;
}

Scenario sparsity_scenario() {
  Scenario s;
  s.name = "ext_sparsity";
  s.description =
      "extension study: structured N:M weight sparsity on the systolic "
      "array (tile-level timing)";
  s.schema.u64("m", 64, "tile rows", 1, 65536);
  s.schema.u64("n", 64, "tile cols", 1, 65536);
  s.schema.u64("k", 256, "reduction depth", 1, 1048576);
  s.schema.u64("kept", 2, "nonzeros kept per group", 1, 64);
  s.schema.u64("group", 4, "sparsity group size", 1, 64);
  s.schema.constrain("kept <= group", [](const exp::ParamSet& p) {
    return p.u64("kept") <= p.u64("group");
  });
  s.cross_rules.push_back(backends_fixed_rule());
  s.run = [](const ScenarioRequest& request) {
    const sa::TileShape shape{request.params.u64("m"),
                              request.params.u64("n"),
                              request.params.u64("k")};
    sa::SparseSaConfig config;
    config.kept = static_cast<unsigned>(request.params.u64("kept"));
    config.group = static_cast<unsigned>(request.params.u64("group"));
    const sa::SparseSaTiming timing =
        sa::compute_sparse_sa_timing(shape, config);
    ScenarioResult result;
    result.add("dense_cycles", static_cast<double>(timing.dense_cycles),
               "cycles", /*higher_is_better=*/false);
    result.add("sparse_cycles", static_cast<double>(timing.sparse_cycles),
               "cycles", /*higher_is_better=*/false);
    result.add("speedup", timing.speedup, "x");
    result.add("k_compressed", static_cast<double>(timing.k_compressed));
    return result;
  };
  return s;
}

Scenario tables_scenario() {
  Scenario s;
  s.name = "tables";
  s.description =
      "Tables I-III sanity metrics: key architectural parameters as "
      "implemented";
  s.cross_rules.push_back(backends_fixed_rule());
  s.run = [](const ScenarioRequest& request) {
    const core::SystemConfig& config = request.config;
    ScenarioResult result;
    result.add("node_count", config.node_count);
    result.add("cpu_ghz", config.cpu.frequency_hz / 1e9, "GHz");
    result.add("cpu_issue_width", config.cpu.issue_width);
    result.add("mtq_entries", config.cpu.mtq_entries);
    result.add("mmae_ghz", config.mmae.frequency_hz / 1e9, "GHz");
    result.add("sa_rows", config.mmae.sa.rows);
    result.add("sa_cols", config.mmae.sa.cols);
    result.add("matlb_entries",
               static_cast<double>(config.mmae.matlb_entries));
    result.add("l3_mib",
               static_cast<double>(config.l3_total_bytes()) / (1 << 20),
               "MiB");
    result.add("peak_gflops_fp64",
               config.node_count *
                   config.mmae_peak_flops(sa::Precision::kFp64) / 1e9,
               "GFLOP/s");
    return result;
  };
  return s;
}

Scenario micro_components_scenario() {
  Scenario s;
  s.name = "micro_components";
  s.description =
      "substrate micro-bench: timing-model evaluations per second (wall "
      "clock; always runs serially)";
  s.serial = true;
  s.schema.u64("size", 2048, "square GEMM evaluated per iteration", 1,
               1048576);
  s.schema.u64("iterations", 20, "model evaluations to time", 1, 100000);
  s.cross_rules.push_back(backends_fixed_rule());
  s.run = [](const ScenarioRequest& request) {
    const core::SystemTimingModel model(request.config);
    core::TimingOptions options;
    const std::uint64_t size = request.params.u64("size");
    options.shape = sa::TileShape{size, size, size};
    options.precision = sa::Precision::kFp64;
    options.active_nodes = request.config.node_count;
    const std::uint64_t iterations = request.params.u64("iterations");
    double checksum = 0.0;
    const auto start = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < iterations; ++i) {
      checksum += model.run(options).mean_efficiency;
    }
    const auto end = std::chrono::steady_clock::now();
    const double seconds =
        std::chrono::duration<double>(end - start).count();
    ScenarioResult result;
    result.add("evals_per_second",
               seconds > 0.0 ? static_cast<double>(iterations) / seconds
                             : 0.0,
               "1/s");
    result.add("mean_efficiency",
               checksum / static_cast<double>(iterations));
    return result;
  };
  return s;
}

Scenario micro_dram_scenario() {
  Scenario s;
  s.name = "micro_dram";
  s.description =
      "DRAM backend micro-bench: a fixed-stride line-read stream driven "
      "straight into dram=simple|queued (deterministic, no machine)";
  s.schema.u64("accesses", 4096, "64B line reads issued", 1, 10'000'000);
  s.schema.u64("stride_bytes", 64,
               "address stride between consecutive reads (row_buffer_kib*"
               "1024*dram_banks lands every read in one bank)",
               1, 1u << 30);
  s.schema.u64("issue_gap_ps", 0,
               "idle time between issues; 0 saturates the channel", 0,
               1'000'000'000);
  // This scenario never touches the NoC or the engine, and the
  // hardware-schema constraint already ties the bank knobs to dram=queued;
  // reject the remaining inapplicable traits explicitly.
  s.cross_rules.push_back(CrossRule{
      "icnt=analytic, exec=event, profile=off (micro_dram exercises the "
      "DRAM model only)",
      [](const exp::ParamSet&, const exp::ParamSet& hardware) {
        return hardware.str("icnt") == "analytic" &&
               hardware.str("exec") == "event" &&
               hardware.str("profile") == "off";
      }});
  s.run = [](const ScenarioRequest& request) {
    const auto dram = mem::make_dram_model("micro", request.config.dram);
    const std::uint64_t accesses = request.params.u64("accesses");
    const std::uint64_t stride = request.params.u64("stride_bytes");
    const auto gap =
        static_cast<sim::TimePs>(request.params.u64("issue_gap_ps"));
    sim::TimePs makespan = 0;
    for (std::uint64_t i = 0; i < accesses; ++i) {
      const sim::TimePs done =
          dram->access(static_cast<sim::TimePs>(i) * gap, i * stride,
                       mem::kLineBytes);
      makespan = std::max(makespan, done);
    }
    ScenarioResult result;
    result.add("makespan_us", static_cast<double>(makespan) / 1e6, "us",
               /*higher_is_better=*/false);
    result.add("reads_per_us",
               makespan > 0
                   ? static_cast<double>(accesses) /
                         (static_cast<double>(makespan) / 1e6)
                   : 0.0,
               "1/us");
    result.add("bus_utilization", dram->utilization(makespan));
    if (const auto* queued =
            dynamic_cast<const mem::QueuedDramController*>(dram.get())) {
      result.add("row_hit_rate", queued->row_hit_rate());
      result.add("row_conflicts",
                 static_cast<double>(queued->row_conflicts()), "",
                 /*higher_is_better=*/false);
    }
    return result;
  };
  return s;
}

// Simulator-throughput bench behind the CI perf gate (docs/PERF.md): runs
// the SAME detailed GEMM under exec=event and exec=lockstep in one process
// and reports the ratio of simulated-cycles-per-wall-second. The committed
// BENCH_speed.json baseline compares against the ratio (plus the makespan
// equality bit), not the absolute rates — absolutes vary with the host
// machine, the ratio does not.
Scenario speed_scenario() {
  Scenario s;
  s.name = "speed";
  s.description =
      "simulator-throughput bench: detailed GEMM under exec=event vs "
      "exec=lockstep, reporting the speedup (wall clock; always serial)";
  s.serial = true;
  s.schema.u64("size", 256, "square GEMM per node", 32,
               core::kDetailedMaxDim);
  s.schema.u64("nodes", 4, "active compute nodes", 1, 64);
  s.schema.u64("reps", 3, "timed repetitions per mode; best wall time kept",
               1, 100);
  s.cross_rules.push_back(nodes_fit_hardware_rule());
  s.cross_rules.push_back(CrossRule{
      "exec=event, profile=off (speed times both exec modes itself; "
      "counter publication would skew the wall clock)",
      [](const exp::ParamSet&, const exp::ParamSet& hardware) {
        return hardware.str("exec") == "event" &&
               hardware.str("profile") == "off";
      }});
  s.run = [](const ScenarioRequest& request) {
    core::TimingOptions options;
    const std::uint64_t size = request.params.u64("size");
    options.shape = sa::TileShape{size, size, size};
    options.precision = sa::Precision::kFp64;
    options.active_nodes = static_cast<unsigned>(std::min<std::uint64_t>(
        request.params.u64("nodes"), request.config.node_count));
    const std::uint64_t reps = request.params.u64("reps");

    // CI self-test hook: sleeping inside the event-mode timed region is a
    // deliberate throughput regression, which the trajectory gate must
    // catch with exit 3 (a step in ci.yml asserts exactly that).
    long handicap_ms = 0;
    if (const char* env = std::getenv("MACO_SPEED_HANDICAP_MS")) {
      handicap_ms = std::strtol(env, nullptr, 10);
    }

    const auto time_mode = [&](core::ExecMode mode, double* best_wall_s) {
      core::SystemConfig config = request.config;
      config.exec = mode;
      core::SystemTiming timing;
      double best = std::numeric_limits<double>::infinity();
      for (std::uint64_t rep = 0; rep < reps; ++rep) {
        const auto start = std::chrono::steady_clock::now();
        if (mode == core::ExecMode::kEventDriven && handicap_ms > 0) {
          std::this_thread::sleep_for(
              std::chrono::milliseconds(handicap_ms));
        }
        timing = core::run_detailed_gemm(config, options);
        const auto end = std::chrono::steady_clock::now();
        best = std::min(best,
                        std::chrono::duration<double>(end - start).count());
      }
      *best_wall_s = std::max(best, 1e-9);
      return timing;
    };

    double event_wall_s = 0.0;
    double lockstep_wall_s = 0.0;
    const core::SystemTiming event_timing =
        time_mode(core::ExecMode::kEventDriven, &event_wall_s);
    const core::SystemTiming lockstep_timing =
        time_mode(core::ExecMode::kLockstep, &lockstep_wall_s);

    // Simulated work in MMAE cycles; both modes simulate the same makespan
    // (asserted by the makespan_match metric and tests/test_equivalence),
    // so the throughput ratio reduces to a wall-time ratio.
    const auto mcycles = [&](const core::SystemTiming& timing) {
      return static_cast<double>(timing.makespan_ps) *
             request.config.mmae.frequency_hz / 1e12 / 1e6;
    };
    const double event_rate = mcycles(event_timing) / event_wall_s;
    const double lockstep_rate = mcycles(lockstep_timing) / lockstep_wall_s;

    ScenarioResult result;
    result.add("speedup_event_vs_lockstep",
               lockstep_rate > 0.0 ? event_rate / lockstep_rate : 0.0);
    result.add("makespan_match",
               event_timing.makespan_ps == lockstep_timing.makespan_ps
                   ? 1.0
                   : 0.0);
    result.add("event_mcycles_per_s", event_rate, "Mcyc/s");
    result.add("lockstep_mcycles_per_s", lockstep_rate, "Mcyc/s");
    result.add("makespan_ms",
               static_cast<double>(event_timing.makespan_ps) / 1e9, "ms",
               /*higher_is_better=*/false);
    return result;
  };
  return s;
}

// The serve subsystem as a scenario: open/closed-loop request streams,
// per-tenant dynamic batching, latency percentiles and SLO goodput.
Scenario serve_scenario() {
  Scenario s;
  s.name = "serve";
  s.description =
      "multi-tenant serving: open-loop (poisson/uniform/trace) or "
      "closed-loop request streams through dynamic batching, reporting "
      "latency percentiles, goodput and fairness";
  s.schema.enumerant("model", "tiny", {"tiny", "resnet50", "bert", "gpt3"},
                     "served model (tiny fits fidelity=detailed)");
  s.schema.u64("seq_len", 384, "sequence length (bert/gpt3)", 1, 65536);
  s.schema.enumerant("arrival", "poisson",
                     {"poisson", "uniform", "trace", "closed"},
                     "arrival process; closed = fixed-concurrency loop");
  s.schema.f64("arrival_rate_rps", 200.0,
               "aggregate open-loop arrival rate", 1e-6, 1e12);
  s.schema.u64("requests", 2000, "requests to serve", 1, 100'000'000);
  s.schema.u64("tenants", 2, "admission domains sharing the machine", 1,
               1024);
  s.schema.u64("max_batch", 8, "seal a batch at this size", 1, 4096);
  s.schema.u64("batch_timeout_us", 200,
               "oldest-waiter age forcing a seal; 0 = no batching", 0,
               1'000'000'000);
  s.schema.f64("slo_ms", 10.0, "latency objective for goodput", 1e-9,
               1e12);
  s.schema.u64("instances", 1, "concurrent model instances", 1, 64);
  s.schema.u64("seed", 1, "arrival/tenant/think stream seed");
  s.schema.str("trace_file", "",
               "arrival=trace: file of 'SECONDS [TENANT]' lines");
  s.schema.u64("concurrency", 8, "arrival=closed: in-flight sessions", 1,
               1'000'000);
  s.schema.f64("think_ms", 0.0, "arrival=closed: mean think time", 0.0,
               1e12);
  declare_nodes(s.schema, "active compute nodes (defaults to node_count)");
  s.schema.enumerant("fidelity", "analytic", {"analytic", "detailed"},
                     "batch cost oracle backend");
  s.schema.constrain("arrival=trace requires trace_file",
                     [](const exp::ParamSet& p) {
                       return p.str("arrival") != "trace" ||
                              !p.str("trace_file").empty();
                     });
  s.schema.constrain(
      "fidelity=detailed requires model=tiny and max_batch <= 128 (the "
      "detailed machine's dimension cap)",
      [](const exp::ParamSet& p) {
        return p.str("fidelity") != "detailed" ||
               (p.str("model") == "tiny" && p.u64("max_batch") <= 128);
      });
  s.cross_rules.push_back(nodes_fit_hardware_rule());
  s.cross_rules.push_back(backends_need_detail_rule());
  s.cross_rules.push_back(profile_needs_detailed_rule());
  s.run = [](const ScenarioRequest& request) {
    const exp::ParamSet& p = request.params;
    const serve::ServeModel model = serve::serve_model(
        p.str("model"), static_cast<unsigned>(p.u64("seq_len")));

    serve::ServeConfig config;
    config.arrival.rate_rps = p.f64("arrival_rate_rps");
    config.arrival.tenants = static_cast<unsigned>(p.u64("tenants"));
    config.arrival.requests = p.u64("requests");
    config.arrival.seed = p.u64("seed");
    const std::string& arrival = p.str("arrival");
    if (arrival == "closed") {
      config.closed_loop = true;
      config.concurrency = static_cast<unsigned>(p.u64("concurrency"));
      config.think_s = p.f64("think_ms") / 1e3;
    } else if (arrival == "trace") {
      config.arrival.kind = serve::ArrivalKind::kTrace;
      config.arrival.trace =
          serve::parse_trace(util::read_text_file(p.str("trace_file")));
    } else {
      config.arrival.kind = serve::parse_arrival_kind(arrival);
    }
    config.policy.max_batch = static_cast<unsigned>(p.u64("max_batch"));
    config.policy.timeout_ps = p.u64("batch_timeout_us") * sim::kPsPerUs;
    config.instances = static_cast<unsigned>(p.u64("instances"));
    config.slo_ms = p.f64("slo_ms");
    config.record_trace = request.collect_trace;

    serve::CostModelOptions cost_options;
    cost_options.nodes = active_nodes_from(request);
    cost_options.instances = config.instances;
    const auto cost =
        request.fidelity() == exp::Fidelity::kDetailed
            ? serve::make_detailed_cost_model(request.config, model,
                                              cost_options)
            : serve::make_analytic_cost_model(request.config, model,
                                              cost_options);
    const serve::ServeReport report = serve::serve(*cost, config);

    ScenarioResult result;
    result.add("completed", static_cast<double>(report.completed));
    result.add("batches", static_cast<double>(report.batches));
    result.add("mean_batch", report.mean_batch);
    result.add("duration_s", report.duration_s, "s",
               /*higher_is_better=*/false);
    result.add("offered_rps", report.offered_rps, "req/s");
    result.add("throughput_rps", report.throughput_rps, "req/s");
    result.add("goodput_rps", report.goodput_rps, "req/s");
    result.add("slo_attainment", report.slo_attainment);
    // Percentile/latency names: direction inferred (lower is better).
    result.add("latency_p50_ms", report.latency_ms.quantile(0.50), "ms");
    result.add("latency_p95_ms", report.latency_ms.quantile(0.95), "ms");
    result.add("latency_p99_ms", report.latency_ms.quantile(0.99), "ms");
    result.add("latency_p999_ms", report.latency_ms.quantile(0.999), "ms");
    result.add("latency_mean_ms", report.latency_ms.mean(), "ms");
    result.add("batching_mean_ms", report.batching_ms.mean(), "ms",
               /*higher_is_better=*/false);
    result.add("queueing_mean_ms", report.queueing_ms.mean(), "ms",
               /*higher_is_better=*/false);
    result.add("execution_mean_ms", report.execution_ms.mean(), "ms",
               /*higher_is_better=*/false);
    double worst_p95 = 0.0;
    for (const serve::TenantReport& tenant : report.tenants) {
      if (tenant.completed == 0) continue;
      worst_p95 = std::max(worst_p95, tenant.latency_ms.quantile(0.95));
    }
    result.add("worst_tenant_p95_ms", worst_p95, "ms");
    result.add("fairness", report.fairness);
    if (report.has_scheduler_stats) {
      core::OsStats os;
      os.present = true;
      os.context_switches = report.scheduler.context_switches;
      os.mtq_full_backoffs = report.scheduler.mtq_full_backoffs;
      os.faults_repaired = report.scheduler.faults_repaired;
      os.scheduling_rounds = report.scheduler.scheduling_rounds;
      os.tasks_completed = report.scheduler.tasks_completed;
      add_os_metrics(result, os);
    }
    const obs::RunObservation* measured = cost->observation();
    if (request.collect_trace || measured != nullptr) {
      obs::RunObservation observation;
      observation.want_counters = measured != nullptr;
      observation.want_trace = request.collect_trace;
      if (measured != nullptr) {
        // Counters and NoC traffic summed over every distinct batch-size
        // measurement the cost oracle ran on the detailed machine.
        observation.merge(*measured, 0);
      }
      // One track per model instance (executed batches) and per tenant
      // (request lifecycle: wait = arrival->seal, queue = seal->start,
      // exec = start->completion).
      for (const serve::ServeReport::BatchTrace& batch : report.batch_log) {
        observation.spans.push_back(obs::SpanRec{
            "instance" + std::to_string(batch.instance),
            "batch" + std::to_string(batch.seq) + " x" +
                std::to_string(batch.size),
            batch.exec_start_ps, batch.completion_ps});
      }
      for (const serve::Request& req : report.request_log) {
        const std::string track = "tenant" + std::to_string(req.tenant);
        const std::string id = "req" + std::to_string(req.id);
        observation.spans.push_back(obs::SpanRec{
            track, id + " wait", req.arrival_ps, req.batch_close_ps});
        observation.spans.push_back(obs::SpanRec{
            track, id + " queue", req.batch_close_ps, req.exec_start_ps});
        observation.spans.push_back(obs::SpanRec{
            track, id + " exec", req.exec_start_ps, req.completion_ps});
      }
      add_observation_outputs(request, observation, result);
    }
    return result;
  };
  return s;
}

// `model_file` accepts either a path to a manifest JSON or the name of an
// embedded builtin (the examples/models/ file stems), so the scenario
// works without a source checkout.
graph::ModelGraph load_graph_model(const std::string& spec) {
  for (const graph::BuiltinManifest& builtin : graph::builtin_manifests()) {
    if (spec == builtin.name) return graph::parse_model_graph(builtin.json);
  }
  return graph::load_model_graph(spec);
}

Scenario graph_scenario() {
  Scenario s;
  s.name = "graph";
  s.description =
      "lower a model-manifest DNN graph (docs/GRAPHS.md) onto the machine";
  s.schema = timing_schema("fp32", /*default_cooperative=*/true,
                           {"analytic", "detailed", "sampled"});
  s.schema.str("model_file", "",
               "manifest path, or a builtin name (tiny|resnet50-stage|"
               "bert-block|gpt3-block|moe-mlp)");
  s.schema.u64("batch", 0, "batch size (0 = manifest default)", 0, 4096);
  s.schema.u64("seq_len", 0, "sequence length (0 = manifest default)", 0,
               65536);
  s.schema.enumerant("phase", "prefill", {"prefill", "decode"},
                     "prefill: M scales with batch*seq_len; decode: one "
                     "token per sequence (M = batch)");
  s.schema.u64("moe_top_k", 0,
               "experts activated per token (0 = the op's attr, itself "
               "defaulting to 2)", 0, 64);
  s.schema.constrain("model_file must be set",
                     [](const exp::ParamSet& p) {
                       return !p.str("model_file").empty();
                     });
  s.cross_rules.push_back(nodes_fit_hardware_rule());
  s.cross_rules.push_back(backends_need_detail_rule());
  s.cross_rules.push_back(profile_needs_detailed_rule());
  s.run = [](const ScenarioRequest& request) {
    const exp::ParamSet& p = request.params;
    const graph::ModelGraph model = load_graph_model(p.str("model_file"));
    graph::LoweringOptions lowering;
    lowering.batch = p.u64("batch");
    lowering.seq_len = p.u64("seq_len");
    lowering.phase = graph::parse_phase(p.str("phase"));
    lowering.moe_top_k = p.u64("moe_top_k");
    const graph::LoweredModel lowered = graph::lower(model, lowering);

    core::TimingOptions options = timing_options_from(request);
    // The manifest's precision wins unless the knob was set explicitly
    // (the schema default would otherwise override fp16 manifests).
    if (!p.was_set("precision")) {
      options.precision = lowered.workload.precision;
    }
    const auto backend = request.backend();
    obs::RunObservation observation;
    observation.want_counters =
        request.config.profile == core::ProfileMode::kCounters;
    observation.want_trace = request.collect_trace;
    const bool observe =
        observation.want_counters || observation.want_trace;
    const core::SystemTiming timing = backend->run_layers(
        lowered.workload.expanded_shapes(), options,
        observe ? &observation : nullptr);

    ScenarioResult result;
    result.add("batch", static_cast<double>(lowered.batch));
    result.add("seq_len", static_cast<double>(lowered.seq_len));
    result.add("tokens", static_cast<double>(lowered.tokens));
    result.add("graph_ops", static_cast<double>(model.ops.size()));
    result.add("lowered_layers",
               static_cast<double>(lowered.workload.layers.size()));
    result.add("total_gflop",
               static_cast<double>(lowered.total_flops()) / 1e9, "GFLOP");
    result.add("gb_moved",
               static_cast<double>(lowered.total_bytes) / 1e9, "GB");
    add_system_metrics(result, timing);
    // Per-op share of the lowered FLOPs, so report --compare shows which
    // op a regression concentrates in.
    for (const graph::OpContribution& op : lowered.ops) {
      result.add("op_flops_frac_" + metric_key(op.op), op.flops_frac);
    }
    add_observation_outputs(request, observation, result);
    return result;
  };
  return s;
}

}  // namespace

std::string fidelity_summary(const Scenario& scenario) {
  const exp::ParamDecl* fidelity = scenario.schema.find("fidelity");
  if (fidelity == nullptr) return "analytic (fixed)";
  std::string summary;
  for (const std::string& choice : fidelity->choices) {
    if (!summary.empty()) summary += "|";
    summary += choice;
  }
  return summary;
}

exp::Fidelity ScenarioRequest::fidelity() const {
  if (!params.has("fidelity")) return exp::Fidelity::kAnalytic;
  return exp::parse_fidelity(params.str("fidelity"));
}

std::unique_ptr<exp::ExecutionBackend> ScenarioRequest::backend() const {
  return exp::make_backend(fidelity(), config);
}

bool ScenarioRegistry::add(Scenario scenario) {
  if (find(scenario.name) != nullptr) return false;
  scenarios_.push_back(std::move(scenario));
  return true;
}

const Scenario* ScenarioRegistry::find(std::string_view name) const noexcept {
  for (const Scenario& scenario : scenarios_) {
    if (scenario.name == name) return &scenario;
  }
  return nullptr;
}

std::vector<std::string> ScenarioRegistry::names() const {
  std::vector<std::string> names;
  names.reserve(scenarios_.size());
  for (const Scenario& scenario : scenarios_) names.push_back(scenario.name);
  return names;
}

ScenarioRegistry ScenarioRegistry::builtin() {
  ScenarioRegistry registry;
  registry.add(gemm_scenario());
  registry.add(hpl_scenario());
  {
    Scenario resnet = dnn_scenario(
        "resnet50", "ResNet-50 inference GEMM sequence (FP32)", "fp32",
        [](const ScenarioRequest& request) {
          return wl::resnet50(
              static_cast<unsigned>(request.params.u64("batch")));
        });
    resnet.schema.u64("batch", 8, "inference batch size", 1, 4096);
    registry.add(std::move(resnet));
  }
  {
    Scenario bert = dnn_scenario(
        "bert", "BERT-Base encoder stack (FP32)", "fp32",
        [](const ScenarioRequest& request) {
          return wl::bert_base(
              static_cast<unsigned>(request.params.u64("batch")),
              static_cast<unsigned>(request.params.u64("seq_len")));
        });
    bert.schema.u64("batch", 8, "inference batch size", 1, 4096);
    bert.schema.u64("seq_len", 384, "sequence length", 1, 65536);
    registry.add(std::move(bert));
  }
  {
    Scenario gpt3 = dnn_scenario(
        "gpt3", "GPT-3 175B decoder forward pass (FP32)", "fp32",
        [](const ScenarioRequest& request) {
          return wl::gpt3(
              static_cast<unsigned>(request.params.u64("batch")),
              static_cast<unsigned>(request.params.u64("seq_len")));
        });
    gpt3.schema.u64("batch", 1, "batch size", 1, 4096);
    gpt3.schema.u64("seq_len", 2048, "tokens per forward pass", 1, 65536);
    registry.add(std::move(gpt3));
  }
  registry.add(baselines_scenario());
  registry.add(fig6_scenario());
  registry.add(fig7_scenario());
  registry.add(fig8_scenario());
  registry.add(ablation_scenario());
  registry.add(area_power_scenario());
  registry.add(sparsity_scenario());
  registry.add(tables_scenario());
  registry.add(micro_components_scenario());
  registry.add(micro_dram_scenario());
  registry.add(speed_scenario());
  registry.add(serve_scenario());
  registry.add(graph_scenario());
  return registry;
}

}  // namespace maco::driver
