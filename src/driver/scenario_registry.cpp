#include "driver/scenario_registry.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "baselines/comparison.hpp"
#include "core/timing_model.hpp"
#include "model/area_power.hpp"
#include "sa/sparse.hpp"
#include "workloads/dnn_models.hpp"
#include "workloads/gemm_workload.hpp"
#include "workloads/hpl.hpp"

namespace maco::driver {
namespace {

[[noreturn]] void bad_param(const std::string& key, const std::string& value,
                            const char* wanted) {
  throw std::invalid_argument("parameter '" + key + "': expected " + wanted +
                              ", got '" + value + "'");
}

// Scenario params shared by every timing-model workload scenario.
std::vector<ParamSpec> timing_params() {
  return {
      {"nodes", "16", "active compute nodes"},
      {"precision", "", "fp64|fp32|fp16 (default per scenario)"},
      {"matlb", "true", "predictive address translation on/off"},
      {"stash_lock", "true", "L3 stash+lock mapping on/off"},
      {"cooperative", "", "split one GEMM across nodes (default per "
                          "scenario)"},
      {"tile", "1024", "first-level tile rows/cols"},
      {"inner", "64", "second-level (systolic) tile"},
      {"page_bytes", "4096", "translation page size"},
  };
}

core::TimingOptions timing_options_from(const ScenarioRequest& request,
                                        sa::Precision default_precision,
                                        bool default_cooperative) {
  core::TimingOptions options;
  options.precision =
      request.param_precision("precision", default_precision);
  options.active_nodes = static_cast<unsigned>(std::min<std::uint64_t>(
      request.param_u64("nodes", request.config.node_count),
      request.config.node_count));
  options.cooperative =
      request.param_bool("cooperative", default_cooperative);
  options.use_matlb = request.param_bool("matlb", true);
  options.use_stash_lock = request.param_bool("stash_lock", true);
  options.tile_rows = request.param_u64("tile", options.tile_rows);
  options.tile_cols = options.tile_rows;
  options.inner = request.param_u64("inner", options.inner);
  options.page_bytes = request.param_u64("page_bytes", options.page_bytes);
  return options;
}

void add_system_metrics(ScenarioResult& result,
                        const core::SystemTiming& timing) {
  result.add("gflops", timing.total_gflops);
  result.add("mean_efficiency", timing.mean_efficiency);
  result.add("makespan_ms", static_cast<double>(timing.makespan_ps) / 1e9);
  result.add("walks_per_tile", timing.translation.walks_per_tile);
  result.add("pages_per_tile", timing.translation.pages_per_tile);
}

ScenarioResult run_workload_layers(const ScenarioRequest& request,
                                   const wl::Workload& workload,
                                   bool default_cooperative) {
  const core::SystemTimingModel model(request.config);
  const core::TimingOptions options =
      timing_options_from(request, workload.precision, default_cooperative);
  const core::SystemTiming timing =
      model.run_layers(workload.expanded_shapes(), options);
  ScenarioResult result;
  result.add("total_gflop", static_cast<double>(workload.total_flops()) / 1e9);
  add_system_metrics(result, timing);
  return result;
}

Scenario gemm_scenario() {
  Scenario s;
  s.name = "gemm";
  s.description =
      "square GEMM on the full MACO system (independent per node by "
      "default, as Fig. 7)";
  s.params = timing_params();
  s.params.push_back({"size", "4096", "square matrix dimension"});
  s.run = [](const ScenarioRequest& request) {
    const core::SystemTimingModel model(request.config);
    core::TimingOptions options =
        timing_options_from(request, sa::Precision::kFp64,
                            /*default_cooperative=*/false);
    const std::uint64_t size = request.param_u64("size", 4096);
    options.shape = sa::TileShape{size, size, size};
    const core::SystemTiming timing = model.run(options);
    ScenarioResult result;
    result.add("size", static_cast<double>(size));
    add_system_metrics(result, timing);
    return result;
  };
  return s;
}

Scenario hpl_scenario() {
  Scenario s;
  s.name = "hpl";
  s.description =
      "HPL right-looking LU trailing-update GEMM sequence (FP64, "
      "cooperative)";
  s.params = timing_params();
  s.params.push_back({"n", "16384", "LU problem size"});
  s.params.push_back({"nb", "256", "panel width"});
  s.run = [](const ScenarioRequest& request) {
    const std::uint64_t n = request.param_u64("n", 16384);
    const std::uint64_t nb = request.param_u64("nb", 256);
    return run_workload_layers(request, wl::hpl_workload(n, nb),
                               /*default_cooperative=*/true);
  };
  return s;
}

Scenario dnn_scenario(std::string name, std::string description,
                      std::function<wl::Workload(const ScenarioRequest&)>
                          make_workload,
                      std::vector<ParamSpec> extra_params) {
  Scenario s;
  s.name = std::move(name);
  s.description = std::move(description);
  s.params = timing_params();
  for (ParamSpec& spec : extra_params) s.params.push_back(std::move(spec));
  s.run = [make_workload = std::move(make_workload)](
              const ScenarioRequest& request) {
    return run_workload_layers(request, make_workload(request),
                               /*default_cooperative=*/true);
  };
  return s;
}

wl::Workload named_workload(const ScenarioRequest& request,
                            const std::string& name) {
  if (name == "resnet50") {
    return wl::resnet50(
        static_cast<unsigned>(request.param_u64("batch", 8)));
  }
  if (name == "bert") {
    return wl::bert_base(
        static_cast<unsigned>(request.param_u64("batch", 8)),
        static_cast<unsigned>(request.param_u64("seq_len", 384)));
  }
  if (name == "gpt3") {
    return wl::gpt3(static_cast<unsigned>(request.param_u64("batch", 1)),
                    static_cast<unsigned>(request.param_u64("seq_len", 2048)));
  }
  if (name == "gemm") {
    return wl::square_gemm(request.param_u64("size", 4096),
                           request.param_precision("precision",
                                                   sa::Precision::kFp32));
  }
  throw std::invalid_argument("unknown workload '" + name +
                              "' (want resnet50|bert|gpt3|gemm)");
}

Scenario baselines_scenario() {
  Scenario s;
  s.name = "baselines";
  s.description =
      "Fig. 8 five-system comparison (CPU-only, no-mapping, RASA-like, "
      "Gemmini-like, MACO) on one workload";
  s.params = {
      {"workload", "bert", "resnet50|bert|gpt3|gemm"},
      {"size", "4096", "matrix size (workload=gemm)"},
      {"batch", "8", "batch size (DNN workloads)"},
      {"seq_len", "384", "sequence length (bert/gpt3)"},
      {"precision", "fp32", "workload=gemm precision"},
      {"nodes", "16", "MACO node count (others are single-node)"},
  };
  s.run = [](const ScenarioRequest& request) {
    const unsigned nodes = static_cast<unsigned>(std::min<std::uint64_t>(
        request.param_u64("nodes", 16), request.config.node_count));
    const baseline::Comparator comparator(request.config, nodes);
    const wl::Workload workload =
        named_workload(request, request.param_str("workload", "bert"));
    ScenarioResult result;
    double maco_gflops = 0.0;
    double best_rival = 0.0;
    for (const baseline::ComparisonResult& run :
         comparator.run_all(workload)) {
      // Stable metric names: "gflops_maco", "gflops_gemmini", ...
      std::string key = run.system;
      std::transform(key.begin(), key.end(), key.begin(), [](char c) {
        return std::isalnum(static_cast<unsigned char>(c))
                   ? static_cast<char>(
                         std::tolower(static_cast<unsigned char>(c)))
                   : '_';
      });
      result.add("gflops_" + key, run.gflops);
      if (run.system == "MACO") {
        maco_gflops = run.gflops;
      } else {
        best_rival = std::max(best_rival, run.gflops);
      }
    }
    result.add("speedup_vs_best_rival",
               best_rival > 0.0 ? maco_gflops / best_rival : 0.0);
    return result;
  };
  return s;
}

Scenario fig6_scenario() {
  Scenario s;
  s.name = "fig6_translation";
  s.description =
      "Fig. 6: efficiency with vs without predictive address translation "
      "(single node, FP64)";
  s.params = {
      {"size", "4096", "square matrix dimension"},
      {"page_bytes", "4096", "translation page size"},
  };
  s.run = [](const ScenarioRequest& request) {
    const core::SystemTimingModel model(request.config);
    const std::uint64_t size = request.param_u64("size", 4096);
    core::TimingOptions options;
    options.shape = sa::TileShape{size, size, size};
    options.precision = sa::Precision::kFp64;
    options.active_nodes = 1;
    options.page_bytes = request.param_u64("page_bytes", 4096);
    options.use_matlb = true;
    const core::SystemTiming with = model.run(options);
    options.use_matlb = false;
    const core::SystemTiming without = model.run(options);
    ScenarioResult result;
    result.add("size", static_cast<double>(size));
    result.add("efficiency_with", with.mean_efficiency);
    result.add("efficiency_without", without.mean_efficiency);
    result.add("gap", with.mean_efficiency - without.mean_efficiency);
    result.add("walks_per_tile", with.translation.walks_per_tile);
    return result;
  };
  return s;
}

Scenario fig7_scenario() {
  Scenario s;
  s.name = "fig7_scalability";
  s.description =
      "Fig. 7: per-node efficiency vs active node count (independent FP64 "
      "GEMM per node)";
  s.params = {
      {"size", "4096", "square matrix dimension"},
      {"nodes", "16", "active compute nodes"},
  };
  s.run = [](const ScenarioRequest& request) {
    const core::SystemTimingModel model(request.config);
    const std::uint64_t size = request.param_u64("size", 4096);
    core::TimingOptions options;
    options.shape = sa::TileShape{size, size, size};
    options.precision = sa::Precision::kFp64;
    options.cooperative = false;
    options.active_nodes = static_cast<unsigned>(std::min<std::uint64_t>(
        request.param_u64("nodes", 16), request.config.node_count));
    const core::SystemTiming timing = model.run(options);
    ScenarioResult result;
    result.add("size", static_cast<double>(size));
    result.add("nodes", options.active_nodes);
    add_system_metrics(result, timing);
    return result;
  };
  return s;
}

Scenario fig8_scenario() {
  Scenario s;
  s.name = "fig8_dl_comparison";
  s.description =
      "Fig. 8: five-system geomean over ResNet-50 + BERT + GPT-3 (FP32, 256 "
      "PEs)";
  s.params = {{"nodes", "16", "MACO node count"}};
  s.run = [](const ScenarioRequest& request) {
    const unsigned nodes = static_cast<unsigned>(std::min<std::uint64_t>(
        request.param_u64("nodes", 16), request.config.node_count));
    const baseline::Comparator comparator(request.config, nodes);
    const std::vector<wl::Workload> workloads = {
        wl::resnet50(8), wl::bert_base(8, 384), wl::gpt3(1, 2048)};
    // system name -> product of per-workload gflops (for the geomean).
    std::vector<std::pair<std::string, double>> products;
    for (const wl::Workload& workload : workloads) {
      const auto runs = comparator.run_all(workload);
      if (products.empty()) {
        for (const auto& run : runs) products.emplace_back(run.system, 1.0);
      }
      for (std::size_t i = 0; i < runs.size(); ++i) {
        products[i].second *= runs[i].gflops;
      }
    }
    ScenarioResult result;
    double maco = 0.0;
    double baseline1 = 0.0;
    for (auto& [system, product] : products) {
      const double geomean =
          std::pow(product, 1.0 / static_cast<double>(workloads.size()));
      std::string key = system;
      std::transform(key.begin(), key.end(), key.begin(), [](char c) {
        return std::isalnum(static_cast<unsigned char>(c))
                   ? static_cast<char>(
                         std::tolower(static_cast<unsigned char>(c)))
                   : '_';
      });
      result.add("geomean_gflops_" + key, geomean);
      if (system == "MACO") maco = geomean;
      if (baseline1 == 0.0) baseline1 = geomean;  // first system in order
    }
    result.add("maco_vs_baseline1",
               baseline1 > 0.0 ? maco / baseline1 : 0.0);
    return result;
  };
  return s;
}

Scenario ablation_scenario() {
  Scenario s;
  s.name = "ablation_features";
  s.description =
      "mATLB / stash+lock 2x2 feature grid on a paper-scale FP64 GEMM";
  s.params = {
      {"size", "4096", "square matrix dimension"},
      {"nodes", "16", "active compute nodes"},
  };
  s.run = [](const ScenarioRequest& request) {
    const core::SystemTimingModel model(request.config);
    const std::uint64_t size = request.param_u64("size", 4096);
    ScenarioResult result;
    result.add("size", static_cast<double>(size));
    for (const bool matlb : {true, false}) {
      for (const bool stash : {true, false}) {
        core::TimingOptions options;
        options.shape = sa::TileShape{size, size, size};
        options.precision = sa::Precision::kFp64;
        options.active_nodes = static_cast<unsigned>(std::min<std::uint64_t>(
            request.param_u64("nodes", 16), request.config.node_count));
        options.use_matlb = matlb;
        options.use_stash_lock = stash;
        const core::SystemTiming timing = model.run(options);
        const std::string key = std::string("eff_matlb") +
                                (matlb ? "1" : "0") + "_stash" +
                                (stash ? "1" : "0");
        result.add(key, timing.mean_efficiency);
      }
    }
    return result;
  };
  return s;
}

Scenario area_power_scenario() {
  Scenario s;
  s.name = "area_power";
  s.description =
      "Table IV: CPU vs MMAE area/power model and the paper's efficiency "
      "ratios";
  s.run = [](const ScenarioRequest&) {
    const model::AreaPowerModel m;
    const model::UnitSummary cpu = m.cpu_summary();
    const model::UnitSummary mmae = m.mmae_summary();
    ScenarioResult result;
    result.add("cpu_area_mm2", cpu.area_mm2);
    result.add("cpu_power_w", cpu.power_watts);
    result.add("cpu_peak_gflops_fp64", cpu.peak_gflops_fp64);
    result.add("mmae_area_mm2", mmae.area_mm2);
    result.add("mmae_power_w", mmae.power_watts);
    result.add("mmae_peak_gflops_fp64", mmae.peak_gflops_fp64);
    result.add("relative_area", mmae.area_mm2 / cpu.area_mm2);
    result.add("area_efficiency_ratio",
               mmae.area_efficiency() / cpu.area_efficiency());
    result.add("power_efficiency_ratio",
               mmae.power_efficiency() / cpu.power_efficiency());
    return result;
  };
  return s;
}

Scenario sparsity_scenario() {
  Scenario s;
  s.name = "ext_sparsity";
  s.description =
      "extension study: structured N:M weight sparsity on the systolic "
      "array (tile-level timing)";
  s.params = {
      {"m", "64", "tile rows"},
      {"n", "64", "tile cols"},
      {"k", "256", "reduction depth"},
      {"kept", "2", "nonzeros kept per group"},
      {"group", "4", "sparsity group size"},
  };
  s.run = [](const ScenarioRequest& request) {
    const sa::TileShape shape{request.param_u64("m", 64),
                              request.param_u64("n", 64),
                              request.param_u64("k", 256)};
    sa::SparseSaConfig config;
    config.kept = static_cast<unsigned>(request.param_u64("kept", 2));
    config.group = static_cast<unsigned>(request.param_u64("group", 4));
    const sa::SparseSaTiming timing =
        sa::compute_sparse_sa_timing(shape, config);
    ScenarioResult result;
    result.add("dense_cycles", static_cast<double>(timing.dense_cycles));
    result.add("sparse_cycles", static_cast<double>(timing.sparse_cycles));
    result.add("speedup", timing.speedup);
    result.add("k_compressed", static_cast<double>(timing.k_compressed));
    return result;
  };
  return s;
}

Scenario tables_scenario() {
  Scenario s;
  s.name = "tables";
  s.description =
      "Tables I-III sanity metrics: key architectural parameters as "
      "implemented";
  s.run = [](const ScenarioRequest& request) {
    const core::SystemConfig& config = request.config;
    ScenarioResult result;
    result.add("node_count", config.node_count);
    result.add("cpu_ghz", config.cpu.frequency_hz / 1e9);
    result.add("cpu_issue_width", config.cpu.issue_width);
    result.add("mtq_entries", config.cpu.mtq_entries);
    result.add("mmae_ghz", config.mmae.frequency_hz / 1e9);
    result.add("sa_rows", config.mmae.sa.rows);
    result.add("sa_cols", config.mmae.sa.cols);
    result.add("matlb_entries",
               static_cast<double>(config.mmae.matlb_entries));
    result.add("l3_mib",
               static_cast<double>(config.l3_total_bytes()) / (1 << 20));
    result.add("peak_gflops_fp64",
               config.node_count *
                   config.mmae_peak_flops(sa::Precision::kFp64) / 1e9);
    return result;
  };
  return s;
}

Scenario micro_components_scenario() {
  Scenario s;
  s.name = "micro_components";
  s.description =
      "substrate micro-bench: timing-model evaluations per second (wall "
      "clock; always runs serially)";
  s.serial = true;
  s.params = {
      {"size", "2048", "square GEMM evaluated per iteration"},
      {"iterations", "20", "model evaluations to time"},
  };
  s.run = [](const ScenarioRequest& request) {
    const core::SystemTimingModel model(request.config);
    core::TimingOptions options;
    const std::uint64_t size = request.param_u64("size", 2048);
    options.shape = sa::TileShape{size, size, size};
    options.precision = sa::Precision::kFp64;
    options.active_nodes = request.config.node_count;
    const std::uint64_t iterations = request.param_u64("iterations", 20);
    double checksum = 0.0;
    const auto start = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < iterations; ++i) {
      checksum += model.run(options).mean_efficiency;
    }
    const auto end = std::chrono::steady_clock::now();
    const double seconds =
        std::chrono::duration<double>(end - start).count();
    ScenarioResult result;
    result.add("evals_per_second",
               seconds > 0.0 ? static_cast<double>(iterations) / seconds
                             : 0.0);
    result.add("mean_efficiency",
               checksum / static_cast<double>(iterations));
    return result;
  };
  return s;
}

}  // namespace

std::uint64_t ScenarioRequest::param_u64(const std::string& key,
                                         std::uint64_t fallback) const {
  const auto it = params.find(key);
  if (it == params.end()) return fallback;
  std::uint64_t value = 0;
  const char* begin = it->second.data();
  const char* end = begin + it->second.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) {
    bad_param(key, it->second, "an unsigned integer");
  }
  return value;
}

double ScenarioRequest::param_double(const std::string& key,
                                     double fallback) const {
  const auto it = params.find(key);
  if (it == params.end()) return fallback;
  try {
    std::size_t consumed = 0;
    const double value = std::stod(it->second, &consumed);
    if (consumed != it->second.size()) {
      bad_param(key, it->second, "a number");
    }
    return value;
  } catch (const std::invalid_argument&) {
    bad_param(key, it->second, "a number");
  } catch (const std::out_of_range&) {
    bad_param(key, it->second, "a representable number");
  }
}

bool ScenarioRequest::param_bool(const std::string& key,
                                 bool fallback) const {
  const auto it = params.find(key);
  if (it == params.end()) return fallback;
  const std::string& value = it->second;
  if (value == "1" || value == "true" || value == "on" || value == "yes") {
    return true;
  }
  if (value == "0" || value == "false" || value == "off" || value == "no") {
    return false;
  }
  bad_param(key, value, "a boolean (true/false/1/0/on/off)");
}

std::string ScenarioRequest::param_str(const std::string& key,
                                       std::string fallback) const {
  const auto it = params.find(key);
  return it == params.end() ? fallback : it->second;
}

sa::Precision ScenarioRequest::param_precision(const std::string& key,
                                               sa::Precision fallback) const {
  const auto it = params.find(key);
  if (it == params.end()) return fallback;
  const std::string& value = it->second;
  if (value == "fp64") return sa::Precision::kFp64;
  if (value == "fp32") return sa::Precision::kFp32;
  if (value == "fp16") return sa::Precision::kFp16;
  bad_param(key, value, "fp64|fp32|fp16");
}

bool Scenario::has_param(std::string_view key) const noexcept {
  for (const ParamSpec& spec : params) {
    if (spec.name == key) return true;
  }
  return false;
}

bool ScenarioRegistry::add(Scenario scenario) {
  if (find(scenario.name) != nullptr) return false;
  scenarios_.push_back(std::move(scenario));
  return true;
}

const Scenario* ScenarioRegistry::find(std::string_view name) const noexcept {
  for (const Scenario& scenario : scenarios_) {
    if (scenario.name == name) return &scenario;
  }
  return nullptr;
}

std::vector<std::string> ScenarioRegistry::names() const {
  std::vector<std::string> names;
  names.reserve(scenarios_.size());
  for (const Scenario& scenario : scenarios_) names.push_back(scenario.name);
  return names;
}

ScenarioRegistry ScenarioRegistry::builtin() {
  ScenarioRegistry registry;
  registry.add(gemm_scenario());
  registry.add(hpl_scenario());
  registry.add(dnn_scenario(
      "resnet50", "ResNet-50 inference GEMM sequence (FP32)",
      [](const ScenarioRequest& request) {
        return wl::resnet50(
            static_cast<unsigned>(request.param_u64("batch", 8)));
      },
      {{"batch", "8", "inference batch size"}}));
  registry.add(dnn_scenario(
      "bert", "BERT-Base encoder stack (FP32)",
      [](const ScenarioRequest& request) {
        return wl::bert_base(
            static_cast<unsigned>(request.param_u64("batch", 8)),
            static_cast<unsigned>(request.param_u64("seq_len", 384)));
      },
      {{"batch", "8", "inference batch size"},
       {"seq_len", "384", "sequence length"}}));
  registry.add(dnn_scenario(
      "gpt3", "GPT-3 175B decoder forward pass (FP32)",
      [](const ScenarioRequest& request) {
        return wl::gpt3(
            static_cast<unsigned>(request.param_u64("batch", 1)),
            static_cast<unsigned>(request.param_u64("seq_len", 2048)));
      },
      {{"batch", "1", "batch size"},
       {"seq_len", "2048", "tokens per forward pass"}}));
  registry.add(baselines_scenario());
  registry.add(fig6_scenario());
  registry.add(fig7_scenario());
  registry.add(fig8_scenario());
  registry.add(ablation_scenario());
  registry.add(area_power_scenario());
  registry.add(sparsity_scenario());
  registry.add(tables_scenario());
  registry.add(micro_components_scenario());
  return registry;
}

const std::vector<std::string>& config_param_names() {
  static const std::vector<std::string> names = {
      "node_count",   "mesh_width",      "mesh_height",
      "sa_rows",      "sa_cols",         "dram_channels",
      "dram_efficiency", "ccm_count",    "matlb_entries",
      "inner_k",
  };
  return names;
}

std::vector<std::string> apply_config_params(
    std::map<std::string, std::string>& params, core::SystemConfig& config) {
  std::vector<std::string> consumed;
  const auto take_u64 = [&](const char* key, auto apply) {
    const auto it = params.find(key);
    if (it == params.end()) return;
    std::uint64_t value = 0;
    const char* begin = it->second.data();
    const char* end = begin + it->second.size();
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{} || ptr != end || value == 0) {
      bad_param(key, it->second, "a positive integer");
    }
    apply(value);
    consumed.push_back(key);
    params.erase(it);
  };

  take_u64("node_count", [&](std::uint64_t v) {
    config.node_count = static_cast<unsigned>(v);
  });
  take_u64("mesh_width", [&](std::uint64_t v) {
    config.mesh.width = static_cast<unsigned>(v);
  });
  take_u64("mesh_height", [&](std::uint64_t v) {
    config.mesh.height = static_cast<unsigned>(v);
  });
  take_u64("sa_rows", [&](std::uint64_t v) {
    config.mmae.sa.rows = static_cast<unsigned>(v);
  });
  take_u64("sa_cols", [&](std::uint64_t v) {
    config.mmae.sa.cols = static_cast<unsigned>(v);
  });
  take_u64("dram_channels", [&](std::uint64_t v) {
    config.dram_channels = static_cast<unsigned>(v);
  });
  take_u64("ccm_count", [&](std::uint64_t v) {
    config.ccm_count = static_cast<unsigned>(v);
  });
  take_u64("matlb_entries", [&](std::uint64_t v) {
    config.mmae.matlb_entries = static_cast<std::size_t>(v);
  });
  take_u64("inner_k", [&](std::uint64_t v) {
    config.mmae.inner_k = static_cast<unsigned>(v);
  });

  const auto efficiency = params.find("dram_efficiency");
  if (efficiency != params.end()) {
    try {
      std::size_t consumed_chars = 0;
      const double value = std::stod(efficiency->second, &consumed_chars);
      if (consumed_chars != efficiency->second.size() || value <= 0.0 ||
          value > 1.0) {
        bad_param("dram_efficiency", efficiency->second, "a value in (0,1]");
      }
      config.dram_efficiency = value;
    } catch (const std::logic_error&) {
      bad_param("dram_efficiency", efficiency->second, "a value in (0,1]");
    }
    consumed.push_back("dram_efficiency");
    params.erase(efficiency);
  }
  return consumed;
}

}  // namespace maco::driver
