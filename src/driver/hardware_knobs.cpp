#include "driver/hardware_knobs.hpp"

#include "mem/dram.hpp"
#include "noc/icnt.hpp"
#include "util/table.hpp"

namespace maco::driver {

const exp::ParamSchema& hardware_schema() {
  // Defaults come from the platform config itself, so --list-scenarios can
  // never drift from what SystemConfig::maco_default() actually builds.
  static const exp::ParamSchema schema = [] {
    const core::SystemConfig d = core::SystemConfig::maco_default();
    exp::ParamSchema s;
    s.u64("node_count", d.node_count, "compute nodes instantiated", 1, 64);
    s.u64("mesh_width", d.mesh.width, "flit-level mesh width", 1, 32);
    s.u64("mesh_height", d.mesh.height, "flit-level mesh height", 1, 32);
    s.u64("sa_rows", d.mmae.sa.rows, "systolic array rows per MMAE", 1,
          256);
    s.u64("sa_cols", d.mmae.sa.cols, "systolic array columns per MMAE", 1,
          256);
    s.u64("dram_channels", d.dram_channels, "DDR channels", 1, 64);
    s.f64("dram_efficiency", d.dram_efficiency,
          "sustained fraction of DDR pin bandwidth", 0.01, 1.0);
    // Backend traits: which DRAM/interconnect model the detailed machine
    // instantiates. `simple`/`analytic` preserve the historic behavior.
    s.enumerant("dram", std::string(mem::dram_kind_name(d.dram.kind)),
                {"simple", "queued"},
                "DRAM backend: flat-latency token bucket or banked "
                "row-buffer model (fidelity=detailed|sampled)");
    s.enumerant("icnt", std::string(noc::icnt_kind_name(d.icnt)),
                {"analytic", "flit"},
                "interconnect backend: X-Y hop formula or flit-level "
                "link booking (fidelity=detailed|sampled)");
    s.enumerant("exec", std::string(core::exec_mode_name(d.exec)),
                {"event", "lockstep"},
                "detailed-machine time advance: event-driven with "
                "quiescence fast-forward or the bit-equivalent lock-step "
                "reference (fidelity=detailed|sampled)");
    s.enumerant("profile", std::string(core::profile_mode_name(d.profile)),
                {"off", "counters"},
                "observability: publish component counters into the "
                "engine StatRegistry and roll them into metrics "
                "(fidelity=detailed; off is zero-overhead)");
    s.u64("dram_banks", d.dram.banks, "banks per DDR channel (dram=queued)",
          1, 64);
    s.u64("row_buffer_kib", d.dram.row_buffer_bytes / 1024,
          "row buffer (DRAM page) per bank in KiB (dram=queued)", 1, 64);
    s.u64("t_rc_ps", d.dram.t_rc_ps,
          "minimum same-bank ACT-to-ACT spacing in ps (dram=queued)",
          1'000, 1'000'000);
    s.u64("ccm_count", d.ccm_count, "L3/CCM slices", 1, 64);
    s.u64("matlb_entries", d.mmae.matlb_entries, "mATLB capacity", 1,
          65536);
    s.u64("inner_k", d.mmae.inner_k, "second-level K chunk", 1, 65535);
    s.u64("l2_kib", d.cpu.l2.size_bytes / 1024,
          "private L2 cache per CPU core (KiB)", 64, 16384);
    s.u64("l3_slice_kib", d.ccm.l3.size_bytes / 1024,
          "L3 capacity per CCM slice (KiB)", 64, 65536);
    s.u64("stlb_entries", d.cpu.mmu.l2_tlb_entries,
          "shared (L2) TLB entries per node", 16, 65536);
    s.u64("dma_outstanding", d.mmae.dma.max_outstanding,
          "DMA bursts in flight before issue stalls", 1, 256);
    s.u64("stq_entries", d.mmae.stq_entries,
          "slave task queue depth per MMAE", 1, 256);
    // Mesh capacity rules, declared so --list-scenarios surfaces them and
    // bind() rejects a violating point before any run; the deeper DDR
    // placement check (which needs the resulting SystemConfig) stays in
    // apply_hardware_params.
    s.constrain("node_count <= mesh_width*mesh_height",
                [](const exp::ParamSet& p) {
                  return p.u64("node_count") <=
                         p.u64("mesh_width") * p.u64("mesh_height");
                });
    s.constrain("ccm_count <= mesh_width*mesh_height",
                [](const exp::ParamSet& p) {
                  return p.u64("ccm_count") <=
                         p.u64("mesh_width") * p.u64("mesh_height");
                });
    // Bank-model knobs are meaningless under the flat controller; setting
    // one there is a typo or a misunderstanding, not a sweep point.
    s.constrain("dram_banks/row_buffer_kib/t_rc_ps require dram=queued",
                [](const exp::ParamSet& p) {
                  return p.str("dram") == "queued" ||
                         (!p.was_set("dram_banks") &&
                          !p.was_set("row_buffer_kib") &&
                          !p.was_set("t_rc_ps"));
                });
    return s;
  }();
  return schema;
}

void apply_hardware_params(const exp::ParamSet& params,
                           core::SystemConfig& config) {
  const auto u64_knob = [&](const char* name, auto apply) {
    if (params.was_set(name)) apply(params.u64(name));
  };
  u64_knob("node_count", [&](std::uint64_t v) {
    config.node_count = static_cast<unsigned>(v);
  });
  // The flit-level mesh and the analytic link-load model describe the same
  // network; resizing one without the other would silently desynchronize
  // the two fidelities.
  u64_knob("mesh_width", [&](std::uint64_t v) {
    config.mesh.width = static_cast<unsigned>(v);
    config.link_load.width = static_cast<unsigned>(v);
  });
  u64_knob("mesh_height", [&](std::uint64_t v) {
    config.mesh.height = static_cast<unsigned>(v);
    config.link_load.height = static_cast<unsigned>(v);
  });
  u64_knob("sa_rows", [&](std::uint64_t v) {
    config.mmae.sa.rows = static_cast<unsigned>(v);
  });
  u64_knob("sa_cols", [&](std::uint64_t v) {
    config.mmae.sa.cols = static_cast<unsigned>(v);
  });
  u64_knob("dram_channels", [&](std::uint64_t v) {
    config.dram_channels = static_cast<unsigned>(v);
  });
  u64_knob("ccm_count", [&](std::uint64_t v) {
    config.ccm_count = static_cast<unsigned>(v);
  });
  u64_knob("matlb_entries", [&](std::uint64_t v) {
    config.mmae.matlb_entries = static_cast<std::size_t>(v);
  });
  u64_knob("inner_k", [&](std::uint64_t v) {
    config.mmae.inner_k = static_cast<unsigned>(v);
  });
  u64_knob("l2_kib", [&](std::uint64_t v) {
    config.cpu.l2.size_bytes = static_cast<std::size_t>(v) * 1024;
  });
  u64_knob("l3_slice_kib", [&](std::uint64_t v) {
    config.ccm.l3.size_bytes = static_cast<std::size_t>(v) * 1024;
  });
  u64_knob("stlb_entries", [&](std::uint64_t v) {
    config.cpu.mmu.l2_tlb_entries = static_cast<std::size_t>(v);
  });
  u64_knob("dma_outstanding", [&](std::uint64_t v) {
    config.mmae.dma.max_outstanding = static_cast<unsigned>(v);
  });
  u64_knob("stq_entries", [&](std::uint64_t v) {
    config.mmae.stq_entries = static_cast<unsigned>(v);
  });
  if (params.was_set("dram_efficiency")) {
    config.dram_efficiency = params.f64("dram_efficiency");
  }
  if (params.has("dram")) {
    config.dram.kind = mem::parse_dram_kind(params.str("dram"));
  }
  if (params.has("icnt")) {
    config.icnt = noc::parse_icnt_kind(params.str("icnt"));
  }
  if (params.has("exec")) {
    config.exec = core::parse_exec_mode(params.str("exec"));
  }
  if (params.has("profile")) {
    config.profile = core::parse_profile_mode(params.str("profile"));
  }
  u64_knob("dram_banks", [&](std::uint64_t v) {
    config.dram.banks = static_cast<unsigned>(v);
  });
  u64_knob("row_buffer_kib", [&](std::uint64_t v) {
    config.dram.row_buffer_bytes = v * 1024;
  });
  u64_knob("t_rc_ps", [&](std::uint64_t v) {
    config.dram.t_rc_ps = static_cast<sim::TimePs>(v);
  });

  // Cross-field constraints the per-value schema cannot express: every
  // node, CCM slice and DDR controller needs a mesh position.
  const std::uint64_t mesh_positions =
      static_cast<std::uint64_t>(config.mesh.width) * config.mesh.height;
  if (config.node_count > mesh_positions) {
    throw std::invalid_argument(
        "node_count " + std::to_string(config.node_count) + " exceeds the " +
        std::to_string(config.mesh.width) + "x" +
        std::to_string(config.mesh.height) +
        " mesh; raise mesh_width/mesh_height");
  }
  if (config.ccm_count > mesh_positions) {
    throw std::invalid_argument(
        "ccm_count " + std::to_string(config.ccm_count) + " exceeds the " +
        std::to_string(config.mesh.width) + "x" +
        std::to_string(config.mesh.height) +
        " mesh; raise mesh_width/mesh_height");
  }
  for (const noc::NodeId dram_node : config.dram_node_ids) {
    if (static_cast<std::uint64_t>(dram_node) >= mesh_positions) {
      throw std::invalid_argument(
          "mesh " + std::to_string(config.mesh.width) + "x" +
          std::to_string(config.mesh.height) +
          " cannot host the DDR controller at mesh node " +
          std::to_string(dram_node) + "; the platform needs at least 16 "
          "mesh positions");
    }
  }
}

void print_hardware_knob_table(std::ostream& out, const std::string& title) {
  util::Table table({"Hardware knob", "Type", "Default", "Range",
                     "Description"});
  for (const exp::ParamDecl& decl : hardware_schema().decls()) {
    table.row()
        .cell(decl.name)
        .cell(exp::param_type_name(decl.type))
        .cell(decl.default_value.to_string())
        .cell(decl.range_text())
        .cell(decl.description);
  }
  table.print(out, title);
  for (const exp::ParamConstraint& constraint :
       hardware_schema().constraints()) {
    out << "  constraint: " << constraint.rule << "\n";
  }
}

}  // namespace maco::driver
