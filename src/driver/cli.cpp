#include "driver/cli.hpp"

#include <charconv>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace maco::driver {
namespace {

// Splits `text` at every `sep`, keeping empty pieces (so "a,,b" is caught
// as a malformed axis rather than silently collapsing).
std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::string::size_type start = 0;
  while (true) {
    const auto pos = text.find(sep, start);
    if (pos == std::string::npos) {
      parts.push_back(text.substr(start));
      return parts;
    }
    parts.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

bool parse_unsigned(const std::string& text, unsigned& out) {
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc{} && ptr == end;
}

// ".json" => "json"; "" when the path has no (or an empty) extension.
std::string path_extension(const std::string& path) {
  const auto slash = path.find_last_of("/\\");
  const auto dot = path.find_last_of('.');
  if (dot == std::string::npos || dot + 1 == path.size()) return {};
  if (slash != std::string::npos && dot < slash) return {};
  return path.substr(dot + 1);
}

}  // namespace

AxisParse parse_axis(const std::string& spec) {
  AxisParse result;
  const auto eq = spec.find('=');
  if (eq == std::string::npos || eq == 0) {
    result.error = "expected key=v1,v2,... in '" + spec + "'";
    return result;
  }
  result.axis.key = spec.substr(0, eq);
  result.axis.values = split(spec.substr(eq + 1), ',');
  for (const std::string& value : result.axis.values) {
    if (value.empty()) {
      result.error = "empty value in sweep axis '" + spec + "'";
      return result;
    }
  }
  if (result.axis.values.empty()) {
    result.error = "no values in sweep axis '" + spec + "'";
    return result;
  }
  result.ok = true;
  return result;
}

namespace {

// The `report` subcommand grammar: query, pivot and compare campaign
// stores.
CliParse parse_report_cli(const std::vector<std::string>& args) {
  CliParse result;
  CliOptions& options = result.options;
  options.command = CliCommand::kReport;

  const auto value_of = [&](std::size_t& i, std::string& out) {
    if (i + 1 >= args.size()) {
      result.error = "missing value after " + args[i];
      return false;
    }
    out = args[++i];
    return true;
  };

  bool tolerance_set = false;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& arg = args[i];
    std::string value;
    if (arg == "--help" || arg == "-h") {
      options.show_help = true;
    } else if (arg == "--quiet" || arg == "-q") {
      options.quiet = true;
    } else if (arg == "--store") {
      if (!value_of(i, value)) return result;
      options.store_path = value;
    } else if (arg == "--compare") {
      if (!value_of(i, value)) return result;
      options.compare_path = value;
    } else if (arg == "--where") {
      if (!value_of(i, value)) return result;
      const auto eq = value.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == value.size()) {
        result.error =
            "expected key=value after --where, got '" + value + "'";
        return result;
      }
      options.where[value.substr(0, eq)] = value.substr(eq + 1);
    } else if (arg == "--metric") {
      if (!value_of(i, value)) return result;
      options.metrics.push_back(value);
    } else if (arg == "--ignore") {
      if (!value_of(i, value)) return result;
      options.ignore_keys.push_back(value);
    } else if (arg == "--tolerance") {
      if (!value_of(i, value)) return result;
      try {
        std::size_t consumed = 0;
        options.tolerance = std::stod(value, &consumed);
        // !(x >= 0) also rejects NaN, which would disable every
        // regression comparison while exiting 0.
        if (consumed != value.size() || !std::isfinite(options.tolerance) ||
            !(options.tolerance >= 0.0)) {
          throw std::invalid_argument(value);
        }
      } catch (const std::exception&) {
        result.error = "--tolerance wants a finite non-negative fraction "
                       "(e.g. 0.02), got '" + value + "'";
        return result;
      }
      tolerance_set = true;
    } else if (arg == "--output" || arg == "-o") {
      if (!value_of(i, value)) return result;
      options.output_path = value;
    } else if (arg == "--format") {
      if (!value_of(i, value)) return result;
      if (value != "table" && value != "csv" && value != "json" &&
          value != "md") {
        result.error =
            "report --format wants table, csv, json or md, got '" + value +
            "'";
        return result;
      }
      options.output_format = value;
    } else {
      result.error =
          "unknown report argument '" + arg + "' (see macosim report "
          "--help)";
      return result;
    }
  }

  if (options.show_help) {
    result.ok = true;
    return result;
  }
  if (options.store_path.empty()) {
    result.error = "report needs --store FILE";
    return result;
  }
  if (options.compare_path.empty()) {
    if (tolerance_set) {
      result.error = "--tolerance only applies with --compare";
      return result;
    }
    if (!options.ignore_keys.empty()) {
      result.error = "--ignore only applies with --compare";
      return result;
    }
  }
  if (options.output_format.empty()) {
    if (options.output_path.empty() || options.output_path == "-") {
      options.output_format = "table";
    } else {
      const std::string ext = path_extension(options.output_path);
      if (ext == "csv" || ext == "json" || ext == "md") {
        options.output_format = ext;
      } else {
        result.error = "cannot infer --format for --output '" +
                       options.output_path +
                       "': unknown extension (expected .csv, .json or "
                       ".md, or pass --format)";
        return result;
      }
    }
  }
  result.ok = true;
  return result;
}

// `macosim store compact --store FILE` and
// `macosim store import FILE.json --store FILE`: maintenance and seeding
// of long-lived campaign stores.
CliParse parse_store_cli(const std::vector<std::string>& args) {
  CliParse result;
  CliOptions& options = result.options;

  if (args.size() < 2 ||
      (args[1] != "compact" && args[1] != "import" && args[1] != "--help" &&
       args[1] != "-h")) {
    result.error = "store wants a subcommand: macosim store compact "
                   "--store FILE, or macosim store import FILE.json "
                   "--store FILE";
    return result;
  }
  if (args[1] == "--help" || args[1] == "-h") {
    options.command = CliCommand::kStoreCompact;
    options.show_help = true;
    result.ok = true;
    return result;
  }
  const bool import = args[1] == "import";
  options.command =
      import ? CliCommand::kStoreImport : CliCommand::kStoreCompact;
  const std::string subcommand = "store " + args[1];
  for (std::size_t i = 2; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--help" || arg == "-h") {
      options.show_help = true;
    } else if (arg == "--quiet" || arg == "-q") {
      options.quiet = true;
    } else if (arg == "--store") {
      if (i + 1 >= args.size()) {
        result.error = "missing value after --store";
        return result;
      }
      options.store_path = args[++i];
    } else if (import && options.import_path.empty() && !arg.empty() &&
               arg[0] != '-') {
      options.import_path = arg;
    } else {
      result.error = "unknown " + subcommand + " argument '" + arg +
                     "' (see macosim store --help)";
      return result;
    }
  }
  if (!options.show_help) {
    if (import && options.import_path.empty()) {
      result.error = "store import needs a sweep JSON file: macosim store "
                     "import FILE.json --store FILE";
      return result;
    }
    if (options.store_path.empty()) {
      result.error = subcommand + " needs --store FILE";
      return result;
    }
  }
  result.ok = true;
  return result;
}

// `macosim trace FILE.trace.json`: render a --trace-out file as an ASCII
// Gantt chart (plus the NoC heatmap when the file carries link traffic).
CliParse parse_trace_cli(const std::vector<std::string>& args) {
  CliParse result;
  CliOptions& options = result.options;
  options.command = CliCommand::kTrace;

  const auto value_of = [&](std::size_t& i, std::string& out) {
    if (i + 1 >= args.size()) {
      result.error = "missing value after " + args[i];
      return false;
    }
    out = args[++i];
    return true;
  };

  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& arg = args[i];
    std::string value;
    if (arg == "--help" || arg == "-h") {
      options.show_help = true;
    } else if (arg == "--width") {
      if (!value_of(i, value)) return result;
      if (!parse_unsigned(value, options.trace_width) ||
          options.trace_width < 16) {
        result.error = "--width wants an integer >= 16, got '" + value +
                       "'";
        return result;
      }
    } else if (arg == "--noc-csv") {
      if (!value_of(i, value)) return result;
      options.noc_csv_path = value;
    } else if (arg == "--output" || arg == "-o") {
      if (!value_of(i, value)) return result;
      options.output_path = value;
    } else if (options.trace_path.empty() && !arg.empty() &&
               arg[0] != '-') {
      options.trace_path = arg;
    } else {
      result.error = "unknown trace argument '" + arg +
                     "' (see macosim trace --help)";
      return result;
    }
  }
  if (!options.show_help && options.trace_path.empty()) {
    result.error =
        "trace needs a file: macosim trace FILE.trace.json [--width N] "
        "[--noc-csv FILE]";
    return result;
  }
  result.ok = true;
  return result;
}

// `macosim graph validate|show FILE`: schema-check a model manifest and
// (show) print its lowered layer table without running any simulation.
CliParse parse_graph_cli(const std::vector<std::string>& args) {
  CliParse result;
  CliOptions& options = result.options;

  if (args.size() < 2 ||
      (args[1] != "validate" && args[1] != "show" && args[1] != "--help" &&
       args[1] != "-h")) {
    result.error = "graph wants a subcommand: macosim graph validate FILE, "
                   "or macosim graph show FILE [--batch N] [--seq-len N] "
                   "[--phase prefill|decode] [--moe-top-k N]";
    return result;
  }
  if (args[1] == "--help" || args[1] == "-h") {
    options.command = CliCommand::kGraphValidate;
    options.show_help = true;
    result.ok = true;
    return result;
  }
  const bool show = args[1] == "show";
  options.command =
      show ? CliCommand::kGraphShow : CliCommand::kGraphValidate;
  const std::string subcommand = "graph " + args[1];

  const auto value_of = [&](std::size_t& i, std::string& out) {
    if (i + 1 >= args.size()) {
      result.error = "missing value after " + args[i];
      return false;
    }
    out = args[++i];
    return true;
  };
  const auto unsigned_of = [&](std::size_t& i, unsigned& out) {
    std::string value;
    if (!value_of(i, value)) return false;
    if (!parse_unsigned(value, out)) {
      result.error = args[i - 1] + " wants a non-negative integer, got '" +
                     value + "'";
      return false;
    }
    return true;
  };

  for (std::size_t i = 2; i < args.size(); ++i) {
    const std::string& arg = args[i];
    std::string value;
    if (arg == "--help" || arg == "-h") {
      options.show_help = true;
    } else if (show && arg == "--batch") {
      if (!unsigned_of(i, options.graph_batch)) return result;
    } else if (show && arg == "--seq-len") {
      if (!unsigned_of(i, options.graph_seq_len)) return result;
    } else if (show && arg == "--moe-top-k") {
      if (!unsigned_of(i, options.graph_moe_top_k)) return result;
    } else if (show && arg == "--phase") {
      if (!value_of(i, value)) return result;
      if (value != "prefill" && value != "decode") {
        result.error = "--phase wants prefill or decode, got '" + value +
                       "'";
        return result;
      }
      options.graph_phase = value;
    } else if (arg == "--output" || arg == "-o") {
      if (!value_of(i, value)) return result;
      options.output_path = value;
    } else if (options.graph_file.empty() && !arg.empty() &&
               arg[0] != '-') {
      options.graph_file = arg;
    } else {
      result.error = "unknown " + subcommand + " argument '" + arg +
                     "' (see macosim graph --help)";
      return result;
    }
  }
  if (!options.show_help && options.graph_file.empty()) {
    result.error = subcommand + " needs a manifest: macosim " + subcommand +
                   " FILE";
    return result;
  }
  result.ok = true;
  return result;
}

}  // namespace

CliParse parse_cli(const std::vector<std::string>& args) {
  if (!args.empty() && args[0] == "report") return parse_report_cli(args);
  if (!args.empty() && args[0] == "store") return parse_store_cli(args);
  if (!args.empty() && args[0] == "trace") return parse_trace_cli(args);
  if (!args.empty() && args[0] == "graph") return parse_graph_cli(args);

  CliParse result;
  CliOptions& options = result.options;

  const auto value_of = [&](std::size_t& i, std::string& out) {
    if (i + 1 >= args.size()) {
      result.error = "missing value after " + args[i];
      return false;
    }
    out = args[++i];
    return true;
  };

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    std::string value;
    if (arg == "--help" || arg == "-h") {
      options.show_help = true;
    } else if (arg == "--list-scenarios" || arg == "--list") {
      options.list_scenarios = true;
    } else if (arg == "--quiet" || arg == "-q") {
      options.quiet = true;
    } else if (arg == "--scenario") {
      if (!value_of(i, value)) return result;
      if (!options.scenario.empty() && options.scenario != value) {
        result.error = "--scenario given twice ('" + options.scenario +
                       "' and '" + value + "')";
        return result;
      }
      options.scenario = value;
    } else if (arg == "--set") {
      if (!value_of(i, value)) return result;
      const auto eq = value.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == value.size()) {
        result.error = "expected key=value after --set, got '" + value + "'";
        return result;
      }
      const std::string key = value.substr(0, eq);
      if (options.params.count(key) != 0) {
        result.error = "--set " + key + " given twice";
        return result;
      }
      for (const SweepAxis& axis : options.sweeps) {
        if (axis.key == key) {
          result.error = "'" + key + "' is both a --set and a --sweep axis";
          return result;
        }
      }
      options.params[key] = value.substr(eq + 1);
    } else if (arg == "--sweep") {
      if (!value_of(i, value)) return result;
      AxisParse axis = parse_axis(value);
      if (!axis.ok) {
        result.error = axis.error;
        return result;
      }
      for (const SweepAxis& existing : options.sweeps) {
        if (existing.key == axis.axis.key) {
          result.error = "sweep axis '" + axis.axis.key + "' given twice";
          return result;
        }
      }
      if (options.params.count(axis.axis.key) != 0) {
        result.error =
            "'" + axis.axis.key + "' is both a --set and a --sweep axis";
        return result;
      }
      options.sweeps.push_back(std::move(axis.axis));
    } else if (arg == "--threads" || arg == "-j") {
      if (!value_of(i, value)) return result;
      if (!parse_unsigned(value, options.threads) || options.threads == 0) {
        result.error = "--threads wants a positive integer, got '" + value +
                       "'";
        return result;
      }
    } else if (arg == "--store") {
      if (!value_of(i, value)) return result;
      options.store_path = value;
    } else if (arg == "--trace-out") {
      if (!value_of(i, value)) return result;
      if (value.empty()) {
        result.error = "--trace-out wants a directory";
        return result;
      }
      options.trace_out = value;
    } else if (arg == "--csv") {
      if (!value_of(i, value)) return result;
      options.csv_path = value;
    } else if (arg == "--json") {
      if (!value_of(i, value)) return result;
      options.json_path = value;
    } else if (arg == "--output" || arg == "-o") {
      if (!value_of(i, value)) return result;
      options.output_path = value;
    } else if (arg == "--format") {
      if (!value_of(i, value)) return result;
      if (value != "csv" && value != "json") {
        result.error = "--format wants csv or json, got '" + value + "'";
        return result;
      }
      options.output_format = value;
    } else {
      result.error = "unknown argument '" + arg + "' (see --help)";
      return result;
    }
  }

  if (!options.show_help && !options.list_scenarios &&
      options.scenario.empty()) {
    result.error = "no --scenario given (see --list-scenarios)";
    return result;
  }
  if (!options.output_format.empty() && options.output_path.empty()) {
    result.error = "--format needs --output FILE";
    return result;
  }
  if (!options.output_path.empty() && options.output_format.empty()) {
    // No explicit --format: infer from the extension. An extension that
    // names neither format is rejected instead of silently producing CSV
    // in a file whose name promises something else. "-" (stdout) keeps
    // its historical CSV default.
    const std::string ext = path_extension(options.output_path);
    if (ext == "json") {
      options.output_format = "json";
    } else if (ext == "csv" || options.output_path == "-") {
      options.output_format = "csv";
    } else {
      result.error = "cannot infer --format for --output '" +
                     options.output_path +
                     "': unknown extension (expected .csv or .json, or "
                     "pass --format csv|json)";
      return result;
    }
  }
  if (!options.output_path.empty()) {
    const bool json = options.output_format == "json";
    if (json && !options.json_path.empty()) {
      result.error = "--output with --format json conflicts with --json";
      return result;
    }
    if (!json && !options.csv_path.empty()) {
      result.error = "--output (CSV) conflicts with --csv";
      return result;
    }
  }
  result.ok = true;
  return result;
}

std::string usage() {
  std::ostringstream out;
  out << "macosim - unified MACO simulation sweep driver\n"
         "\n"
         "usage: macosim --scenario NAME [options]\n"
         "       macosim --list-scenarios\n"
         "       macosim report --store FILE [report options]\n"
         "       macosim store compact --store FILE\n"
         "       macosim store import FILE.json --store FILE\n"
         "       macosim trace FILE.trace.json [--width N] "
         "[--noc-csv FILE]\n"
         "       macosim graph validate FILE\n"
         "       macosim graph show FILE [--batch N] [--seq-len N]\n"
         "                              [--phase prefill|decode] "
         "[--moe-top-k N]\n"
         "\n"
         "options:\n"
         "  --scenario NAME        scenario to run (see --list-scenarios)\n"
         "  --set KEY=VALUE        fix one parameter (repeatable)\n"
         "  --sweep KEY=V1,V2,...  sweep one axis (repeatable; axes combine\n"
         "                         as a Cartesian product)\n"
         "  --threads N            worker threads for the sweep (default 1)\n"
         "  --store FILE           campaign store: record every point and\n"
         "                         skip points already recorded (resume)\n"
         "  --trace-out DIR        write one Chrome/Perfetto trace JSON per\n"
         "                         executed point that produced spans\n"
         "                         (detailed runs and serve; open in\n"
         "                         ui.perfetto.dev or macosim trace)\n"
         "  --output FILE          write results to FILE (see --format)\n"
         "  --format csv|json      format for --output (inferred from a\n"
         "                         .csv/.json extension; other extensions\n"
         "                         need an explicit --format)\n"
         "  --csv FILE             write results CSV (default\n"
         "                         macosim_results.csv; '-' for stdout)\n"
         "  --json FILE            also write results as JSON\n"
         "  --quiet                suppress the progress/result table\n"
         "  --list-scenarios       list scenarios with their typed\n"
         "                         parameters (type, default, range) and\n"
         "                         cross-field constraints\n"
         "  --help                 this text\n"
         "\n"
         "report options (query/compare a campaign store):\n"
         "  --store FILE           the store to read (required)\n"
         "  --where KEY=VALUE      keep matching points only (repeatable;\n"
         "                         'scenario' matches the scenario name)\n"
         "  --metric NAME          restrict metric columns (repeatable)\n"
         "  --compare FILE         diff against another store: per-metric\n"
         "                         deltas, direction-aware regressions\n"
         "  --tolerance FRACTION   relative regression tolerance for\n"
         "                         --compare (default 0.02)\n"
         "  --ignore KEY           drop KEY when matching points across\n"
         "                         stores (repeatable; for A/B knobs)\n"
         "  --format FMT           table (default), csv, json or md\n"
         "  --output FILE          write the report to FILE\n"
         "\n"
         "store maintenance:\n"
         "  macosim store compact --store FILE\n"
         "                         rewrite the store keeping only the\n"
         "                         latest record per point (drops\n"
         "                         superseded re-run and error records)\n"
         "  macosim store import FILE.json --store FILE\n"
         "                         load sweep JSON (--format json output,\n"
         "                         e.g. a committed BENCH_*.json\n"
         "                         trajectory) into a store; rows are\n"
         "                         re-validated and fingerprinted under\n"
         "                         the current schemas, already-present\n"
         "                         points are skipped\n"
         "\n"
         "trace rendering:\n"
         "  macosim trace FILE.trace.json\n"
         "                         ASCII Gantt of the trace's spans; adds\n"
         "                         a per-node NoC utilization heatmap when\n"
         "                         the file carries link traffic\n"
         "  --width N              Gantt chart columns (default 72)\n"
         "  --noc-csv FILE         also dump per-link utilization CSV\n"
         "  --output FILE          write the rendering to FILE\n"
         "\n"
         "model graphs (docs/GRAPHS.md):\n"
         "  macosim graph validate FILE\n"
         "                         schema-check a model manifest (shapes,\n"
         "                         edges, attrs, acyclicity); exit 0 when\n"
         "                         it loads, 2 with a diagnostic when not\n"
         "  macosim graph show FILE\n"
         "                         print the lowered GEMM layer table and\n"
         "                         per-op FLOP/byte contributions without\n"
         "                         running anything; --batch/--seq-len/\n"
         "                         --phase/--moe-top-k override manifest\n"
         "                         defaults (run manifests for real with\n"
         "                         --scenario graph --set model_file=FILE)\n"
         "  --output FILE          write the summary/table to FILE\n"
         "\n"
         "Parameters are scenario knobs (e.g. size, precision, nodes,\n"
         "fidelity) or hardware config knobs (e.g. node_count, sa_rows,\n"
         "dram_efficiency, l2_kib, l3_slice_kib, stlb_entries,\n"
         "dma_outstanding). Every value is validated against the typed\n"
         "schema before any run starts. Scenarios supporting it accept\n"
         "fidelity=analytic|detailed|sampled: the analytic timing model,\n"
         "the detailed flit-level MacoSystem (<= 2048 per dimension), or\n"
         "the sampled estimator (detailed fidelity at any scale via\n"
         "stratified tile sampling, with *_ci95 error-bar columns; knobs\n"
         "sample_frac, sample_seed, ci_target, sample_workers).\n"
         "\n"
         "examples:\n"
         "  macosim --scenario gemm --sweep nodes=1,4,16 \\\n"
         "          --sweep size=1024,4096 --threads 4 --output sweep.csv\n"
         "  macosim --scenario gemm --sweep size=1024,2048,4096 \\\n"
         "          --store campaign.mdb     # killed? rerun: only the\n"
         "                                   # missing points execute\n"
         "  macosim report --store campaign.mdb --where nodes=16\n"
         "  macosim report --store new.mdb --compare baseline.mdb \\\n"
         "          --tolerance 0.05         # exit 3 on regressions\n";
  return out.str();
}

}  // namespace maco::driver
