#include "driver/cli.hpp"

#include <charconv>
#include <sstream>

namespace maco::driver {
namespace {

// Splits `text` at every `sep`, keeping empty pieces (so "a,,b" is caught
// as a malformed axis rather than silently collapsing).
std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::string::size_type start = 0;
  while (true) {
    const auto pos = text.find(sep, start);
    if (pos == std::string::npos) {
      parts.push_back(text.substr(start));
      return parts;
    }
    parts.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

bool parse_unsigned(const std::string& text, unsigned& out) {
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc{} && ptr == end;
}

}  // namespace

AxisParse parse_axis(const std::string& spec) {
  AxisParse result;
  const auto eq = spec.find('=');
  if (eq == std::string::npos || eq == 0) {
    result.error = "expected key=v1,v2,... in '" + spec + "'";
    return result;
  }
  result.axis.key = spec.substr(0, eq);
  result.axis.values = split(spec.substr(eq + 1), ',');
  for (const std::string& value : result.axis.values) {
    if (value.empty()) {
      result.error = "empty value in sweep axis '" + spec + "'";
      return result;
    }
  }
  if (result.axis.values.empty()) {
    result.error = "no values in sweep axis '" + spec + "'";
    return result;
  }
  result.ok = true;
  return result;
}

CliParse parse_cli(const std::vector<std::string>& args) {
  CliParse result;
  CliOptions& options = result.options;

  const auto value_of = [&](std::size_t& i, std::string& out) {
    if (i + 1 >= args.size()) {
      result.error = "missing value after " + args[i];
      return false;
    }
    out = args[++i];
    return true;
  };

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    std::string value;
    if (arg == "--help" || arg == "-h") {
      options.show_help = true;
    } else if (arg == "--list-scenarios" || arg == "--list") {
      options.list_scenarios = true;
    } else if (arg == "--quiet" || arg == "-q") {
      options.quiet = true;
    } else if (arg == "--scenario") {
      if (!value_of(i, value)) return result;
      if (!options.scenario.empty() && options.scenario != value) {
        result.error = "--scenario given twice ('" + options.scenario +
                       "' and '" + value + "')";
        return result;
      }
      options.scenario = value;
    } else if (arg == "--set") {
      if (!value_of(i, value)) return result;
      const auto eq = value.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == value.size()) {
        result.error = "expected key=value after --set, got '" + value + "'";
        return result;
      }
      const std::string key = value.substr(0, eq);
      if (options.params.count(key) != 0) {
        result.error = "--set " + key + " given twice";
        return result;
      }
      for (const SweepAxis& axis : options.sweeps) {
        if (axis.key == key) {
          result.error = "'" + key + "' is both a --set and a --sweep axis";
          return result;
        }
      }
      options.params[key] = value.substr(eq + 1);
    } else if (arg == "--sweep") {
      if (!value_of(i, value)) return result;
      AxisParse axis = parse_axis(value);
      if (!axis.ok) {
        result.error = axis.error;
        return result;
      }
      for (const SweepAxis& existing : options.sweeps) {
        if (existing.key == axis.axis.key) {
          result.error = "sweep axis '" + axis.axis.key + "' given twice";
          return result;
        }
      }
      if (options.params.count(axis.axis.key) != 0) {
        result.error =
            "'" + axis.axis.key + "' is both a --set and a --sweep axis";
        return result;
      }
      options.sweeps.push_back(std::move(axis.axis));
    } else if (arg == "--threads" || arg == "-j") {
      if (!value_of(i, value)) return result;
      if (!parse_unsigned(value, options.threads) || options.threads == 0) {
        result.error = "--threads wants a positive integer, got '" + value +
                       "'";
        return result;
      }
    } else if (arg == "--csv") {
      if (!value_of(i, value)) return result;
      options.csv_path = value;
    } else if (arg == "--json") {
      if (!value_of(i, value)) return result;
      options.json_path = value;
    } else if (arg == "--output" || arg == "-o") {
      if (!value_of(i, value)) return result;
      options.output_path = value;
    } else if (arg == "--format") {
      if (!value_of(i, value)) return result;
      if (value != "csv" && value != "json") {
        result.error = "--format wants csv or json, got '" + value + "'";
        return result;
      }
      options.output_format = value;
    } else {
      result.error = "unknown argument '" + arg + "' (see --help)";
      return result;
    }
  }

  if (!options.show_help && !options.list_scenarios &&
      options.scenario.empty()) {
    result.error = "no --scenario given (see --list-scenarios)";
    return result;
  }
  if (!options.output_format.empty() && options.output_path.empty()) {
    result.error = "--format needs --output FILE";
    return result;
  }
  if (!options.output_path.empty() && options.output_format.empty()) {
    // No explicit --format: infer from the extension so `--output x.json`
    // cannot silently fill a .json file with CSV.
    const std::string& path = options.output_path;
    options.output_format =
        path.size() >= 5 && path.rfind(".json") == path.size() - 5 ? "json"
                                                                   : "csv";
  }
  if (!options.output_path.empty()) {
    const bool json = options.output_format == "json";
    if (json && !options.json_path.empty()) {
      result.error = "--output with --format json conflicts with --json";
      return result;
    }
    if (!json && !options.csv_path.empty()) {
      result.error = "--output (CSV) conflicts with --csv";
      return result;
    }
  }
  result.ok = true;
  return result;
}

std::string usage() {
  std::ostringstream out;
  out << "macosim - unified MACO simulation sweep driver\n"
         "\n"
         "usage: macosim --scenario NAME [options]\n"
         "       macosim --list-scenarios\n"
         "\n"
         "options:\n"
         "  --scenario NAME        scenario to run (see --list-scenarios)\n"
         "  --set KEY=VALUE        fix one parameter (repeatable)\n"
         "  --sweep KEY=V1,V2,...  sweep one axis (repeatable; axes combine\n"
         "                         as a Cartesian product)\n"
         "  --threads N            worker threads for the sweep (default 1)\n"
         "  --output FILE          write results to FILE (see --format)\n"
         "  --format csv|json      format for --output (default: json for\n"
         "                         a .json FILE, csv otherwise)\n"
         "  --csv FILE             write results CSV (default\n"
         "                         macosim_results.csv; '-' for stdout)\n"
         "  --json FILE            also write results as JSON\n"
         "  --quiet                suppress the progress/result table\n"
         "  --list-scenarios       list scenarios with their typed\n"
         "                         parameters (type, default, range)\n"
         "  --help                 this text\n"
         "\n"
         "Parameters are scenario knobs (e.g. size, precision, nodes,\n"
         "fidelity) or hardware config knobs (e.g. node_count, sa_rows,\n"
         "dram_efficiency, l2_kib, l3_slice_kib, stlb_entries,\n"
         "dma_outstanding). Every value is validated against the typed\n"
         "schema before any run starts. Scenarios supporting it accept\n"
         "fidelity=analytic|detailed to choose between the analytic timing\n"
         "model and the detailed flit-level MacoSystem.\n"
         "\n"
         "example:\n"
         "  macosim --scenario gemm --sweep nodes=1,4,16 \\\n"
         "          --sweep size=1024,4096 --threads 4 --output sweep.csv\n";
  return out.str();
}

}  // namespace maco::driver
