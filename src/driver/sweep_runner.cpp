#include "driver/sweep_runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <stdexcept>
#include <thread>

#include "driver/hardware_knobs.hpp"
#include "exp/results.hpp"
#include "obs/host_profile.hpp"
#include "store/campaign_store.hpp"
#include "store/fingerprint.hpp"
#include "util/table.hpp"

namespace maco::driver {
namespace {

// The parameter set of Cartesian point `index` (row-major over the axes).
std::map<std::string, std::string> point_params(
    const SweepRequest& request, std::size_t index) {
  std::map<std::string, std::string> params = request.base_params;
  std::size_t remainder = index;
  for (auto axis = request.axes.rbegin(); axis != request.axes.rend();
       ++axis) {
    params[axis->key] = axis->values[remainder % axis->values.size()];
    remainder /= axis->values.size();
  }
  return params;
}

}  // namespace

std::size_t sweep_point_count(const std::vector<SweepAxis>& axes) {
  std::size_t count = 1;
  for (const SweepAxis& axis : axes) count *= axis.values.size();
  return count;
}

std::size_t SweepResults::failures() const noexcept {
  std::size_t count = 0;
  for (const SweepRow& row : rows) {
    if (!row.ok()) ++count;
  }
  return count;
}

std::size_t SweepResults::cached() const noexcept {
  std::size_t count = 0;
  for (const SweepRow& row : rows) {
    if (row.cached) ++count;
  }
  return count;
}

SweepResults run_sweep(const ScenarioRegistry& registry,
                       const SweepRequest& request,
                       store::CampaignStore* store) {
  const Scenario* scenario = registry.find(request.scenario);
  if (scenario == nullptr) {
    std::string known;
    for (const std::string& name : registry.names()) {
      if (!known.empty()) known += ", ";
      known += name;
    }
    throw std::invalid_argument("unknown scenario '" + request.scenario +
                                "' (known: " + known + ")");
  }

  // Validate every key and every value up front against the scenario's
  // schema (scenario knobs) or the hardware schema (config knobs). Doing
  // this before any run keeps a 4-hour sweep from dying on a typo or an
  // out-of-range value in its last axis.
  const auto validate = [&](const std::string& key,
                            const std::string& value) {
    if (scenario->schema.has(key)) {
      scenario->schema.parse(key, value);
      return;
    }
    if (hardware_schema().has(key)) {
      hardware_schema().parse(key, value);
      return;
    }
    throw std::invalid_argument("scenario '" + scenario->name +
                                "' has no parameter '" + key +
                                "' and it is not a hardware knob (see "
                                "--list-scenarios)");
  };
  for (const auto& [key, value] : request.base_params) validate(key, value);
  for (const SweepAxis& axis : request.axes) {
    if (axis.values.empty()) {
      throw std::invalid_argument("sweep axis '" + axis.key +
                                  "' has no values");
    }
    for (const std::string& value : axis.values) validate(axis.key, value);
  }

  SweepResults results;
  results.scenario = scenario->name;
  for (const SweepAxis& axis : request.axes) {
    results.param_columns.push_back(axis.key);
  }
  for (const auto& [key, value] : request.base_params) {
    if (std::find(results.param_columns.begin(), results.param_columns.end(),
                  key) == results.param_columns.end()) {
      results.param_columns.push_back(key);
    }
  }

  const std::size_t points = sweep_point_count(request.axes);
  results.rows.resize(points);

  // Fail a bad --trace-out before any point runs, not after the sweep.
  if (!request.trace_out.empty()) {
    std::filesystem::create_directories(request.trace_out);
  }

  // The resume key: the scenario's schema chained into the hardware
  // schema. A change to either invalidates every cached point of this
  // scenario rather than silently reusing stale results.
  const std::uint64_t schema_hash = store::schema_digest(
      hardware_schema(), store::schema_digest(scenario->schema));

  // Worker pool: an atomic cursor hands out point indices; every run builds
  // its own SystemConfig and ScenarioRequest, so runs share nothing. The
  // campaign store serializes appends internally, so workers stream
  // completed points straight in.
  std::atomic<std::size_t> cursor{0};
  const auto worker = [&]() {
    while (true) {
      const std::size_t index =
          cursor.fetch_add(1, std::memory_order_relaxed);
      if (index >= points) return;
      SweepRow& row = results.rows[index];
      row.index = index;
      row.params = point_params(request, index);
      try {
        std::map<std::string, std::string> scenario_raw;
        std::map<std::string, std::string> hardware_raw;
        for (const auto& [key, value] : row.params) {
          (scenario->schema.has(key) ? scenario_raw
                                     : hardware_raw)[key] = value;
        }
        const exp::ParamSet hardware_params =
            hardware_schema().bind(hardware_raw);
        const exp::ParamSet scenario_params =
            scenario->schema.bind(scenario_raw);

        // Cross-schema rules relate the two ParamSets (neither schema can
        // express them alone); a violation fails the point with the
        // declared rule text before anything runs or is fingerprinted.
        for (const CrossRule& rule : scenario->cross_rules) {
          if (!rule.satisfied(scenario_params, hardware_params)) {
            throw std::invalid_argument(
                "scenario '" + scenario->name +
                "' violates cross-schema constraint '" + rule.rule + "'");
          }
        }

        // The canonicalization and fingerprint hash only matter to the
        // campaign store; a store-less sweep skips that per-point work.
        store::CampaignRecord record;
        if (store != nullptr) {
          record.scenario = scenario->name;
          record.schema_hash = schema_hash;
          store::canonical_params(scenario_params, record.params,
                                  record.explicit_params);
          store::canonical_params(hardware_params, record.params,
                                  record.explicit_params);
          record.fingerprint = record.computed_fingerprint();
          record.fidelity = scenario_params.has("fidelity")
                                ? scenario_params.str("fidelity")
                                : "analytic";
          store::CampaignRecord cached;
          if (store->lookup(record.fingerprint, schema_hash, cached)) {
            row.result.metrics = std::move(cached.metrics);
            row.cached = true;
            continue;
          }
        }

        ScenarioRequest run;
        apply_hardware_params(hardware_params, run.config);
        run.params = scenario_params;
        run.collect_trace = !request.trace_out.empty();

        // Host self-profiling piggybacks on profile=counters: the sink is
        // installed for the run so the detailed runner / serve oracle's
        // setup/sim/collect ScopedPhase timers land here; without it they
        // stay no-ops.
        const bool host_profile =
            hardware_params.str("profile") == "counters";
        obs::HostPhaseProfile phases;
        const auto start = std::chrono::steady_clock::now();
        try {
          obs::ScopedHostProfile guard(host_profile ? &phases : nullptr);
          row.result = scenario->run(run);
        } catch (const std::exception& error) {
          row.error = error.what();
        }
        if (host_profile && row.ok()) {
          const double total_ms =
              std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - start)
                  .count();
          row.result.add("host_setup_ms", phases.ms("setup"), "ms",
                         /*higher_is_better=*/false);
          row.result.add("host_sim_ms", phases.ms("sim"), "ms",
                         /*higher_is_better=*/false);
          row.result.add("host_collect_ms", phases.ms("collect"), "ms",
                         /*higher_is_better=*/false);
          row.result.add("host_total_ms", total_ms, "ms",
                         /*higher_is_better=*/false);
        }
        if (!request.trace_out.empty() && row.ok() &&
            !row.result.trace_json.empty()) {
          const std::filesystem::path path =
              std::filesystem::path(request.trace_out) /
              (scenario->name + "_p" + std::to_string(index) +
               ".trace.json");
          std::ofstream trace_file(path);
          if (!trace_file) {
            throw std::runtime_error("cannot write trace file '" +
                                     path.string() + "'");
          }
          trace_file << row.result.trace_json;
        }
        if (store != nullptr) {
          record.wall_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - start)
                               .count();
          record.metrics = row.result.metrics;
          record.error = row.error;
          store->append(record);
        }
      } catch (const std::exception& error) {
        // Bind/constraint failures (and store write failures) land here;
        // there is no fingerprintable outcome to record.
        row.error = error.what();
      }
    }
  };

  const unsigned thread_count =
      scenario->serial
          ? 1u
          : std::max(1u, std::min<unsigned>(
                             request.threads,
                             static_cast<unsigned>(points)));
  if (thread_count <= 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(thread_count);
    for (unsigned i = 0; i < thread_count; ++i) {
      threads.emplace_back(worker);
    }
    for (std::thread& thread : threads) thread.join();
  }

  // Metric columns: union over rows in first-seen order, so every row of a
  // homogeneous sweep lines up and heterogeneous failures leave blanks.
  // A metric that shares its name with a parameter column (e.g. a scenario
  // echoing a swept `size`) is dropped — the parameter column already
  // carries the value.
  for (const SweepRow& row : results.rows) {
    for (const exp::Metric& metric : row.result.metrics) {
      if (std::find(results.param_columns.begin(),
                    results.param_columns.end(),
                    metric.name) != results.param_columns.end()) {
        continue;
      }
      const bool seen = std::any_of(
          results.metric_columns.begin(), results.metric_columns.end(),
          [&](const MetricColumn& column) {
            return column.name == metric.name;
          });
      if (!seen) {
        results.metric_columns.push_back(
            MetricColumn{metric.name, metric.unit, metric.higher_is_better});
      }
    }
  }
  return results;
}

void write_csv(std::ostream& out, const SweepResults& results) {
  bool first = true;
  for (const std::string& column : results.param_columns) {
    if (!first) out << ',';
    util::write_csv_cell(out, column);
    first = false;
  }
  for (const MetricColumn& column : results.metric_columns) {
    if (!first) out << ',';
    util::write_csv_cell(out, column.name);
    first = false;
  }
  if (!first) out << ',';
  out << "error\n";

  for (const SweepRow& row : results.rows) {
    first = true;
    for (const std::string& column : results.param_columns) {
      if (!first) out << ',';
      const auto it = row.params.find(column);
      util::write_csv_cell(
          out, it == row.params.end() ? std::string() : it->second);
      first = false;
    }
    for (const MetricColumn& column : results.metric_columns) {
      if (!first) out << ',';
      if (const exp::Metric* metric = row.result.find(column.name)) {
        util::write_csv_cell(out, exp::format_metric_value(metric->value));
      }
      first = false;
    }
    if (!first) out << ',';
    util::write_csv_cell(out, row.error);
    out << '\n';
  }
}

void write_json(std::ostream& out, const SweepResults& results) {
  out << "{\"scenario\":\"" << exp::json_escape(results.scenario)
      << "\",\"columns\":[";
  bool first = true;
  for (const MetricColumn& column : results.metric_columns) {
    if (!first) out << ',';
    out << "{\"name\":\"" << exp::json_escape(column.name)
        << "\",\"unit\":\"" << exp::json_escape(column.unit)
        << "\",\"higher_is_better\":"
        << (column.higher_is_better ? "true" : "false") << '}';
    first = false;
  }
  out << "],\"rows\":[";
  bool first_row = true;
  for (const SweepRow& row : results.rows) {
    if (!first_row) out << ',';
    first_row = false;
    out << "{\"params\":{";
    first = true;
    for (const auto& [key, value] : row.params) {
      if (!first) out << ',';
      out << '"' << exp::json_escape(key) << "\":\""
          << exp::json_escape(value) << '"';
      first = false;
    }
    out << "},\"metrics\":{";
    first = true;
    for (const exp::Metric& metric : row.result.metrics) {
      if (!first) out << ',';
      out << '"' << exp::json_escape(metric.name) << "\":";
      if (std::isfinite(metric.value)) {
        out << exp::format_metric_value(metric.value);
      } else {
        out << "null";
      }
      first = false;
    }
    out << '}';
    if (!row.ok()) {
      out << ",\"error\":\"" << exp::json_escape(row.error) << '"';
    }
    out << '}';
  }
  out << "]}\n";
}

}  // namespace maco::driver
