#include "driver/sweep_runner.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "util/table.hpp"

namespace maco::driver {
namespace {

// Formats metric values compactly: integers without a decimal point,
// everything else at 10 significant digits — plenty for plotting and
// comparison without 17-digit binary-representation noise.
std::string format_value(double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::abs(value) < 1e15) {
    std::ostringstream out;
    out << static_cast<long long>(value);
    return out.str();
  }
  std::ostringstream out;
  out.precision(10);
  out << value;
  return out.str();
}

std::string json_escape(const std::string& text) {
  std::string escaped;
  escaped.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': escaped += "\\\""; break;
      case '\\': escaped += "\\\\"; break;
      case '\n': escaped += "\\n"; break;
      case '\t': escaped += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          escaped += buf;
        } else {
          escaped += c;
        }
    }
  }
  return escaped;
}

// The parameter set of Cartesian point `index` (row-major over the axes).
std::map<std::string, std::string> point_params(
    const SweepRequest& request, std::size_t index) {
  std::map<std::string, std::string> params = request.base_params;
  std::size_t remainder = index;
  for (auto axis = request.axes.rbegin(); axis != request.axes.rend();
       ++axis) {
    params[axis->key] = axis->values[remainder % axis->values.size()];
    remainder /= axis->values.size();
  }
  return params;
}

}  // namespace

std::size_t sweep_point_count(const std::vector<SweepAxis>& axes) {
  std::size_t count = 1;
  for (const SweepAxis& axis : axes) count *= axis.values.size();
  return count;
}

std::size_t SweepResults::failures() const noexcept {
  std::size_t count = 0;
  for (const SweepRow& row : rows) {
    if (!row.ok()) ++count;
  }
  return count;
}

SweepResults run_sweep(const ScenarioRegistry& registry,
                       const SweepRequest& request) {
  const Scenario* scenario = registry.find(request.scenario);
  if (scenario == nullptr) {
    std::string known;
    for (const std::string& name : registry.names()) {
      if (!known.empty()) known += ", ";
      known += name;
    }
    throw std::invalid_argument("unknown scenario '" + request.scenario +
                                "' (known: " + known + ")");
  }

  // Validate every key up front: a key must be a scenario parameter or a
  // hardware config knob. Doing this before any run keeps a 4-hour sweep
  // from dying on a typo in its last axis.
  const auto validate_key = [&](const std::string& key) {
    if (scenario->has_param(key)) return;
    const std::vector<std::string>& config_keys = config_param_names();
    if (std::find(config_keys.begin(), config_keys.end(), key) !=
        config_keys.end()) {
      return;
    }
    throw std::invalid_argument("scenario '" + scenario->name +
                                "' has no parameter '" + key +
                                "' (see --list-scenarios)");
  };
  for (const auto& [key, value] : request.base_params) validate_key(key);
  for (const SweepAxis& axis : request.axes) {
    validate_key(axis.key);
    if (axis.values.empty()) {
      throw std::invalid_argument("sweep axis '" + axis.key +
                                  "' has no values");
    }
  }

  SweepResults results;
  results.scenario = scenario->name;
  for (const SweepAxis& axis : request.axes) {
    results.param_columns.push_back(axis.key);
  }
  for (const auto& [key, value] : request.base_params) {
    if (std::find(results.param_columns.begin(), results.param_columns.end(),
                  key) == results.param_columns.end()) {
      results.param_columns.push_back(key);
    }
  }

  const std::size_t points = sweep_point_count(request.axes);
  results.rows.resize(points);

  // Worker pool: an atomic cursor hands out point indices; every run builds
  // its own SystemConfig and ScenarioRequest, so runs share nothing.
  std::atomic<std::size_t> cursor{0};
  const auto worker = [&]() {
    while (true) {
      const std::size_t index =
          cursor.fetch_add(1, std::memory_order_relaxed);
      if (index >= points) return;
      SweepRow& row = results.rows[index];
      row.index = index;
      row.params = point_params(request, index);
      try {
        ScenarioRequest run;
        run.params = row.params;
        apply_config_params(run.params, run.config);
        row.result = scenario->run(run);
      } catch (const std::exception& error) {
        row.error = error.what();
      }
    }
  };

  const unsigned thread_count =
      scenario->serial
          ? 1u
          : std::max(1u, std::min<unsigned>(
                             request.threads,
                             static_cast<unsigned>(points)));
  if (thread_count <= 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(thread_count);
    for (unsigned i = 0; i < thread_count; ++i) {
      threads.emplace_back(worker);
    }
    for (std::thread& thread : threads) thread.join();
  }

  // Metric columns: union over rows in first-seen order, so every row of a
  // homogeneous sweep lines up and heterogeneous failures leave blanks.
  // A metric that shares its name with a parameter column (e.g. a scenario
  // echoing a swept `size`) is dropped — the parameter column already
  // carries the value.
  for (const SweepRow& row : results.rows) {
    for (const auto& [name, value] : row.result.metrics) {
      if (std::find(results.param_columns.begin(),
                    results.param_columns.end(),
                    name) != results.param_columns.end()) {
        continue;
      }
      if (std::find(results.metric_columns.begin(),
                    results.metric_columns.end(),
                    name) == results.metric_columns.end()) {
        results.metric_columns.push_back(name);
      }
    }
  }
  return results;
}

void write_csv(std::ostream& out, const SweepResults& results) {
  bool first = true;
  for (const std::string& column : results.param_columns) {
    if (!first) out << ',';
    util::write_csv_cell(out, column);
    first = false;
  }
  for (const std::string& column : results.metric_columns) {
    if (!first) out << ',';
    util::write_csv_cell(out, column);
    first = false;
  }
  if (!first) out << ',';
  out << "error\n";

  for (const SweepRow& row : results.rows) {
    first = true;
    for (const std::string& column : results.param_columns) {
      if (!first) out << ',';
      const auto it = row.params.find(column);
      util::write_csv_cell(
          out, it == row.params.end() ? std::string() : it->second);
      first = false;
    }
    for (const std::string& column : results.metric_columns) {
      if (!first) out << ',';
      for (const auto& [name, value] : row.result.metrics) {
        if (name == column) {
          util::write_csv_cell(out, format_value(value));
          break;
        }
      }
      first = false;
    }
    if (!first) out << ',';
    util::write_csv_cell(out, row.error);
    out << '\n';
  }
}

void write_json(std::ostream& out, const SweepResults& results) {
  out << "{\"scenario\":\"" << json_escape(results.scenario)
      << "\",\"rows\":[";
  bool first_row = true;
  for (const SweepRow& row : results.rows) {
    if (!first_row) out << ',';
    first_row = false;
    out << "{\"params\":{";
    bool first = true;
    for (const auto& [key, value] : row.params) {
      if (!first) out << ',';
      out << '"' << json_escape(key) << "\":\"" << json_escape(value)
          << '"';
      first = false;
    }
    out << "},\"metrics\":{";
    first = true;
    for (const auto& [name, value] : row.result.metrics) {
      if (!first) out << ',';
      out << '"' << json_escape(name) << "\":";
      if (std::isfinite(value)) {
        out << format_value(value);
      } else {
        out << "null";
      }
      first = false;
    }
    out << '}';
    if (!row.ok()) {
      out << ",\"error\":\"" << json_escape(row.error) << '"';
    }
    out << '}';
  }
  out << "]}\n";
}

}  // namespace maco::driver
