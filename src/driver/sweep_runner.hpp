// Cartesian sweep execution for the `macosim` driver.
//
// A sweep request names one scenario, a set of fixed parameters and any
// number of sweep axes; the runner validates every key AND value against
// the scenario's typed ParamSchema plus the hardware-knob schema (typed
// diagnostics before any run), expands the Cartesian product, runs the
// points on a std::thread worker pool (one SystemConfig per run — no shared
// mutable state), and serializes the typed metric rows as CSV or JSON
// through exp::results' single formatting path.
//
// With a campaign store attached the sweep becomes resumable: each point's
// typed-ParamSet fingerprint is checked against the store first — a hit
// (same schema hash, error-free) is loaded instead of run, a miss runs and
// streams its record into the store through the store's serialized writer,
// so a killed campaign restarts where it died losing at most the in-flight
// points.
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "driver/cli.hpp"
#include "driver/scenario_registry.hpp"

namespace maco::store {
class CampaignStore;
}

namespace maco::driver {

struct SweepRequest {
  std::string scenario;
  std::map<std::string, std::string> base_params;  // --set fixed values
  std::vector<SweepAxis> axes;                     // --sweep axes
  unsigned threads = 1;

  // Non-empty (--trace-out DIR): ask every point for execution spans and
  // write each point that produced some as one Chrome/Perfetto JSON file,
  // DIR/<scenario>_p<index>.trace.json. Points satisfied from the
  // campaign store are not re-run, so they emit no trace file.
  std::string trace_out;
};

// One sweep point's outcome. `params` holds the full parameter set of the
// point (base + axis values); `error` is non-empty when the run threw;
// `cached` marks a point satisfied from the campaign store without running.
struct SweepRow {
  std::size_t index = 0;
  std::map<std::string, std::string> params;
  ScenarioResult result;
  std::string error;
  bool cached = false;

  bool ok() const noexcept { return error.empty(); }
};

// One output column of metric values, carrying the metric's metadata.
struct MetricColumn {
  std::string name;
  std::string unit;
  bool higher_is_better = true;
};

struct SweepResults {
  std::string scenario;
  std::vector<std::string> param_columns;    // axis keys then --set keys
  std::vector<MetricColumn> metric_columns;  // union over rows, first-seen
  std::vector<SweepRow> rows;                // Cartesian order

  std::size_t failures() const noexcept;
  std::size_t cached() const noexcept;  // rows satisfied from the store
};

// Validates the request (unknown scenario, unknown parameter keys or
// malformed/out-of-range values => throws std::invalid_argument before
// anything runs) and executes all points. A non-null `store` makes the
// sweep resumable: already-recorded points are loaded instead of run and
// new points stream into the store as they finish.
SweepResults run_sweep(const ScenarioRegistry& registry,
                       const SweepRequest& request,
                       store::CampaignStore* store = nullptr);

// Number of Cartesian points the axes expand to (1 when no axes).
std::size_t sweep_point_count(const std::vector<SweepAxis>& axes);

// Serialization. CSV: header of param+metric columns, one line per row.
// JSON: {"scenario", "columns" (metric metadata: unit, direction),
// "rows": [{params, metrics, error?}, ...]}.
void write_csv(std::ostream& out, const SweepResults& results);
void write_json(std::ostream& out, const SweepResults& results);

}  // namespace maco::driver
