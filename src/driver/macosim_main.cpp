// macosim: the unified MACO simulation driver.
//
// Every workload, baseline and paper figure is a registered scenario;
// hardware knobs and scenario parameters share one --set/--sweep grammar.
// See driver/cli.hpp for the grammar and driver/scenario_registry.cpp for
// the scenario catalogue.
#include <fstream>
#include <iostream>
#include <sstream>

#include "driver/cli.hpp"
#include "driver/scenario_registry.hpp"
#include "driver/sweep_runner.hpp"
#include "util/table.hpp"

namespace {

using namespace maco;

void list_scenarios(const driver::ScenarioRegistry& registry) {
  util::Table t({"Scenario", "Parameters", "Description"});
  for (const driver::Scenario& scenario : registry.scenarios()) {
    std::ostringstream params;
    bool first = true;
    for (const driver::ParamSpec& spec : scenario.params) {
      if (!first) params << " ";
      params << spec.name;
      if (!spec.default_value.empty()) params << "=" << spec.default_value;
      first = false;
    }
    t.row().cell(scenario.name).cell(params.str()).cell(
        scenario.description);
  }
  t.print(std::cout, "macosim scenarios (hardware knobs apply to all: "
                     "node_count, mesh_width, mesh_height, sa_rows, "
                     "sa_cols, dram_channels, dram_efficiency, ccm_count, "
                     "matlb_entries, inner_k)");
}

void print_results(const driver::SweepResults& results) {
  std::vector<std::string> headers;
  headers.insert(headers.end(), results.param_columns.begin(),
                 results.param_columns.end());
  headers.insert(headers.end(), results.metric_columns.begin(),
                 results.metric_columns.end());
  if (headers.empty()) headers.push_back("(no columns)");
  util::Table t(headers);
  for (const driver::SweepRow& row : results.rows) {
    auto out = t.row();
    for (const std::string& column : results.param_columns) {
      const auto it = row.params.find(column);
      out.cell(it == row.params.end() ? "" : it->second);
    }
    for (const std::string& column : results.metric_columns) {
      bool found = false;
      for (const auto& [name, value] : row.result.metrics) {
        if (name == column) {
          out.cell(value, 4);
          found = true;
          break;
        }
      }
      if (!found) out.cell(row.ok() ? "" : "ERROR");
    }
  }
  std::ostringstream title;
  title << "scenario '" << results.scenario << "': " << results.rows.size()
        << " run(s)";
  if (results.failures() > 0) title << ", " << results.failures()
                                   << " FAILED";
  t.print(std::cout, title.str());
  for (const driver::SweepRow& row : results.rows) {
    if (!row.ok()) {
      std::cout << "run " << row.index << " failed: " << row.error << "\n";
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  const driver::CliParse parse = driver::parse_cli(args);
  if (!parse.ok) {
    std::cerr << "macosim: " << parse.error << "\n";
    return 2;
  }
  const driver::CliOptions& options = parse.options;
  if (options.show_help) {
    std::cout << driver::usage();
    return 0;
  }

  const driver::ScenarioRegistry registry =
      driver::ScenarioRegistry::builtin();
  if (options.list_scenarios) {
    list_scenarios(registry);
    return 0;
  }

  driver::SweepRequest request;
  request.scenario = options.scenario;
  request.base_params = options.params;
  request.axes = options.sweeps;
  request.threads = options.threads;

  driver::SweepResults results;
  try {
    results = driver::run_sweep(registry, request);
  } catch (const std::exception& error) {
    std::cerr << "macosim: " << error.what() << "\n";
    return 2;
  }

  if (!options.quiet) print_results(results);

  const std::string csv_path =
      options.csv_path.empty() ? "macosim_results.csv" : options.csv_path;
  if (csv_path == "-") {
    driver::write_csv(std::cout, results);
  } else {
    std::ofstream out(csv_path);
    if (!out) {
      std::cerr << "macosim: cannot write " << csv_path << "\n";
      return 2;
    }
    driver::write_csv(out, results);
    if (!options.quiet) {
      std::cout << "wrote " << results.rows.size() << " row(s) to "
                << csv_path << "\n";
    }
  }
  if (!options.json_path.empty()) {
    if (options.json_path == "-") {
      driver::write_json(std::cout, results);
    } else {
      std::ofstream out(options.json_path);
      if (!out) {
        std::cerr << "macosim: cannot write " << options.json_path << "\n";
        return 2;
      }
      driver::write_json(out, results);
    }
  }
  return results.failures() == 0 ? 0 : 1;
}
