// macosim: the unified MACO simulation driver.
//
// Every workload, baseline and paper figure is a registered scenario;
// hardware knobs and scenario parameters share one --set/--sweep grammar
// backed by typed schemas. See driver/cli.hpp for the grammar,
// driver/scenario_registry.cpp for the scenario catalogue and
// driver/hardware_knobs.cpp for the sweepable hardware parameters.
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <sstream>

#include "driver/cli.hpp"
#include "driver/graph_cmd.hpp"
#include "driver/hardware_knobs.hpp"
#include "driver/scenario_registry.hpp"
#include "driver/store_import.hpp"
#include "driver/sweep_runner.hpp"
#include "driver/trace_cmd.hpp"
#include "store/campaign_store.hpp"
#include "store/query.hpp"
#include "util/file.hpp"
#include "util/table.hpp"

namespace {

using namespace maco;

// "size:u64=4096 [1,1048576]" / "precision:enum=fp64 fp64|fp32|fp16".
std::string describe_param(const exp::ParamDecl& decl) {
  std::string text = decl.name;
  text += ':';
  text += exp::param_type_name(decl.type);
  text += '=';
  text += decl.default_value.to_string();
  const std::string range = decl.range_text();
  if (!range.empty()) {
    text += ' ';
    text += range;
  }
  return text;
}

void list_scenarios(const driver::ScenarioRegistry& registry) {
  util::Table t({"Scenario", "Fidelities",
                 "Parameters (name:type=default range)", "Description"});
  for (const driver::Scenario& scenario : registry.scenarios()) {
    std::ostringstream params;
    bool first = true;
    for (const exp::ParamDecl& decl : scenario.schema.decls()) {
      if (!first) params << "  ";
      params << describe_param(decl);
      first = false;
    }
    for (const exp::ParamConstraint& constraint :
         scenario.schema.constraints()) {
      if (!first) params << "  ";
      params << "[" << constraint.rule << "]";
      first = false;
    }
    for (const driver::CrossRule& rule : scenario.cross_rules) {
      if (!first) params << "  ";
      params << "[" << rule.rule << "]";
      first = false;
    }
    t.row()
        .cell(scenario.name)
        .cell(driver::fidelity_summary(scenario))
        .cell(params.str())
        .cell(scenario.description);
  }
  t.print(std::cout, "macosim scenarios");

  driver::print_hardware_knob_table(
      std::cout, "hardware knobs (settable/sweepable with any scenario)");
}

void print_results(const driver::SweepResults& results) {
  std::vector<std::string> headers;
  headers.insert(headers.end(), results.param_columns.begin(),
                 results.param_columns.end());
  for (const driver::MetricColumn& column : results.metric_columns) {
    headers.push_back(column.unit.empty()
                          ? column.name
                          : column.name + " [" + column.unit + "]");
  }
  // A sweep whose every point failed before producing metrics (e.g. a
  // default-violating constraint with nothing --set) has no real
  // columns; keep one status column so rows stay printable.
  const bool status_only = headers.empty();
  if (status_only) headers.push_back("status");
  util::Table t(headers);
  for (const driver::SweepRow& row : results.rows) {
    auto out = t.row();
    if (status_only) out.cell(row.ok() ? "ok" : "ERROR");
    for (const std::string& column : results.param_columns) {
      const auto it = row.params.find(column);
      out.cell(it == row.params.end() ? "" : it->second);
    }
    for (const driver::MetricColumn& column : results.metric_columns) {
      if (const exp::Metric* metric = row.result.find(column.name)) {
        out.cell(metric->value, 4);
      } else {
        out.cell(row.ok() ? "" : "ERROR");
      }
    }
  }
  std::ostringstream title;
  title << "scenario '" << results.scenario << "': " << results.rows.size()
        << " run(s)";
  if (results.failures() > 0) title << ", " << results.failures()
                                   << " FAILED";
  t.print(std::cout, title.str());
  for (const driver::SweepRow& row : results.rows) {
    if (!row.ok()) {
      std::cout << "run " << row.index << " failed: " << row.error << "\n";
    }
  }
}

// Opens `path` for writing, creating missing parent directories so
// `--output results/today/sweep.csv` works on a fresh tree.
bool open_output(const std::string& path, std::ofstream& out) {
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
    // A failure surfaces as the open failure below.
  }
  out.open(path);
  if (!out) {
    std::cerr << "macosim: cannot write " << path << "\n";
    return false;
  }
  return true;
}

bool write_to(const std::string& path, bool quiet,
              const driver::SweepResults& results,
              void (*writer)(std::ostream&, const driver::SweepResults&)) {
  if (path == "-") {
    writer(std::cout, results);
    return true;
  }
  std::ofstream out;
  if (!open_output(path, out)) return false;
  writer(out, results);
  if (!quiet) {
    std::cout << "wrote " << results.rows.size() << " row(s) to " << path
              << "\n";
  }
  return true;
}

store::ReportFormat report_format(const std::string& name) {
  if (name == "csv") return store::ReportFormat::kCsv;
  if (name == "json") return store::ReportFormat::kJson;
  if (name == "md") return store::ReportFormat::kMarkdown;
  return store::ReportFormat::kTable;
}

// The `report` subcommand: query one store, optionally diff it against
// another. Exit codes: 0 clean, 2 usage/IO error, 3 regressions found.
int run_report(const driver::CliOptions& options) {
  std::unique_ptr<store::CampaignStore> current;
  std::unique_ptr<store::CampaignStore> baseline;
  try {
    current = std::make_unique<store::CampaignStore>(
        options.store_path, store::CampaignStore::Mode::kReadOnly);
    if (!options.compare_path.empty()) {
      baseline = std::make_unique<store::CampaignStore>(
          options.compare_path, store::CampaignStore::Mode::kReadOnly);
    }
  } catch (const std::exception& error) {
    std::cerr << "macosim: " << error.what() << "\n";
    return 2;
  }
  for (const store::CampaignStore* db : {current.get(), baseline.get()}) {
    if (db != nullptr && db->recovered_dropped_bytes() > 0 &&
        !options.quiet) {
      std::cerr << "macosim: warning: '" << db->path() << "' has a torn "
                << "tail (" << db->recovered_dropped_bytes()
                << " byte(s) ignored)\n";
    }
  }

  const std::vector<const store::CampaignRecord*> selected =
      store::select(current->records(), options.where);

  std::ofstream file;
  const bool to_file =
      !options.output_path.empty() && options.output_path != "-";
  if (to_file && !open_output(options.output_path, file)) return 2;
  std::ostream& out = to_file ? static_cast<std::ostream&>(file)
                              : std::cout;
  const store::ReportFormat format = report_format(options.output_format);

  if (baseline == nullptr) {
    const store::CampaignTable table =
        store::build_table(selected, options.metrics);
    store::write_table(out, table, format);
    return 0;
  }

  store::CompareOptions compare;
  compare.tolerance = options.tolerance;
  compare.ignore = options.ignore_keys;
  compare.metrics = options.metrics;
  const std::vector<const store::CampaignRecord*> reference =
      store::select(baseline->records(), options.where);
  const store::CampaignComparison comparison =
      store::compare_campaigns(selected, reference, compare);
  store::write_comparison(out, comparison, format, compare);
  // Zero matched points with data on both sides means the comparison
  // proved nothing (a schema change shifted every fingerprint, or the
  // campaigns are disjoint) — a regression gate keying on the exit code
  // must not read that as "clean".
  if (comparison.points.empty() && !selected.empty() &&
      !reference.empty()) {
    std::cerr << "macosim: no points matched between '"
              << options.store_path << "' and '" << options.compare_path
              << "' (schema change? disjoint campaigns? consider "
                 "--ignore for A/B knobs)\n";
    return 2;
  }
  if (comparison.regressions() > 0) {
    if (!options.quiet) {
      std::cerr << "macosim: " << comparison.regressions()
                << " regression(s) beyond tolerance\n";
    }
    return 3;
  }
  return 0;
}

// The `store compact` subcommand. Exit codes: 0 ok, 2 usage/IO error.
int run_store_compact(const driver::CliOptions& options) {
  try {
    const store::CampaignStore::CompactionResult result =
        store::CampaignStore::compact(options.store_path);
    if (!options.quiet) {
      std::cout << "store '" << options.store_path << "': kept "
                << result.kept << " record(s), dropped " << result.dropped
                << " superseded record(s)\n";
    }
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "macosim: " << error.what() << "\n";
    return 2;
  }
}

// The `store import` subcommand: seed/refresh a store from sweep JSON
// (e.g. a committed BENCH_*.json trajectory). Exit codes: 0 ok, 2
// usage/IO/validation error.
int run_store_import(const driver::CliOptions& options) {
  std::string text;
  try {
    text = util::read_text_file(options.import_path);
  } catch (const std::exception& error) {
    std::cerr << "macosim: " << error.what() << "\n";
    return 2;
  }
  try {
    const driver::ScenarioRegistry registry =
        driver::ScenarioRegistry::builtin();
    store::CampaignStore store(options.store_path);
    const driver::ImportSummary summary =
        driver::import_sweep_json(registry, text, store);
    if (!options.quiet) {
      std::cout << "store '" << options.store_path << "': imported "
                << summary.imported << " point(s) from "
                << options.import_path << ", " << summary.skipped
                << " already present";
      if (summary.errored > 0) {
        std::cout << ", " << summary.errored
                  << " failed row(s) not imported";
      }
      std::cout << "\n";
    }
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "macosim: " << options.import_path << ": " << error.what()
              << "\n";
    return 2;
  }
}

// The `trace` subcommand: render a --trace-out JSON as ASCII Gantt plus
// the NoC heatmap when present. Exit codes: 0 ok, 2 usage/IO error.
int run_trace(const driver::CliOptions& options) {
  std::string text;
  try {
    text = util::read_text_file(options.trace_path);
  } catch (const std::exception& error) {
    std::cerr << "macosim: " << error.what() << "\n";
    return 2;
  }
  driver::TraceRender render;
  try {
    render = driver::render_trace(text, options.trace_width);
  } catch (const std::exception& error) {
    std::cerr << "macosim: " << options.trace_path << ": " << error.what()
              << "\n";
    return 2;
  }

  std::ofstream file;
  const bool to_file =
      !options.output_path.empty() && options.output_path != "-";
  if (to_file && !open_output(options.output_path, file)) return 2;
  std::ostream& out =
      to_file ? static_cast<std::ostream&>(file) : std::cout;
  out << render.gantt;
  if (!render.noc_text.empty()) out << "\n" << render.noc_text;

  if (!options.noc_csv_path.empty()) {
    if (render.noc_csv.empty()) {
      std::cerr << "macosim: " << options.trace_path
                << " carries no NoC link traffic (--noc-csv needs a "
                   "profile=counters trace)\n";
      return 2;
    }
    std::ofstream csv;
    if (!open_output(options.noc_csv_path, csv)) return 2;
    csv << render.noc_csv;
  }
  return 0;
}

// The `graph validate|show` subcommands: schema-check a model manifest
// and (show) print the lowered layer table, no simulation. Exit codes:
// 0 ok, 2 usage/IO/validation error.
int run_graph(const driver::CliOptions& options) {
  std::string rendered;
  try {
    if (options.command == driver::CliCommand::kGraphValidate) {
      rendered = driver::validate_manifest(options.graph_file) + "\n";
    } else {
      graph::LoweringOptions lowering;
      lowering.batch = options.graph_batch;
      lowering.seq_len = options.graph_seq_len;
      lowering.phase = graph::parse_phase(options.graph_phase);
      lowering.moe_top_k = options.graph_moe_top_k;
      rendered = driver::show_manifest(options.graph_file, lowering);
    }
  } catch (const std::exception& error) {
    std::cerr << "macosim: " << error.what() << "\n";
    return 2;
  }
  std::ofstream file;
  const bool to_file =
      !options.output_path.empty() && options.output_path != "-";
  if (to_file && !open_output(options.output_path, file)) return 2;
  (to_file ? static_cast<std::ostream&>(file) : std::cout) << rendered;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  const driver::CliParse parse = driver::parse_cli(args);
  if (!parse.ok) {
    std::cerr << "macosim: " << parse.error << "\n";
    return 2;
  }
  const driver::CliOptions& options = parse.options;
  if (options.show_help) {
    std::cout << driver::usage();
    return 0;
  }
  if (options.command == driver::CliCommand::kReport) {
    return run_report(options);
  }
  if (options.command == driver::CliCommand::kStoreCompact) {
    return run_store_compact(options);
  }
  if (options.command == driver::CliCommand::kStoreImport) {
    return run_store_import(options);
  }
  if (options.command == driver::CliCommand::kTrace) {
    return run_trace(options);
  }
  if (options.command == driver::CliCommand::kGraphValidate ||
      options.command == driver::CliCommand::kGraphShow) {
    return run_graph(options);
  }

  const driver::ScenarioRegistry registry =
      driver::ScenarioRegistry::builtin();
  if (options.list_scenarios) {
    list_scenarios(registry);
    return 0;
  }

  driver::SweepRequest request;
  request.scenario = options.scenario;
  request.base_params = options.params;
  request.axes = options.sweeps;
  request.threads = options.threads;
  request.trace_out = options.trace_out;

  std::unique_ptr<store::CampaignStore> campaign;
  if (!options.store_path.empty()) {
    try {
      campaign = std::make_unique<store::CampaignStore>(options.store_path);
    } catch (const std::exception& error) {
      std::cerr << "macosim: " << error.what() << "\n";
      return 2;
    }
    if (campaign->recovered_dropped_bytes() > 0 && !options.quiet) {
      std::cout << "store '" << options.store_path << "': recovered "
                << campaign->size() << " point(s), truncated "
                << campaign->recovered_dropped_bytes()
                << " torn byte(s)\n";
    }
  }

  driver::SweepResults results;
  try {
    results = driver::run_sweep(registry, request, campaign.get());
  } catch (const std::exception& error) {
    std::cerr << "macosim: " << error.what() << "\n";
    return 2;
  }

  if (!options.quiet) print_results(results);
  if (campaign != nullptr && !options.quiet) {
    std::cout << "store '" << options.store_path << "': "
              << results.cached() << " cached point(s) skipped, "
              << results.rows.size() - results.cached()
              << " new point(s) executed\n";
  }

  // --output names one destination in the chosen --format; the legacy
  // --csv/--json flags remain as independent destinations. The default CSV
  // is only written when no explicit --output/--csv destination was given.
  const bool output_is_json = options.output_format == "json";
  if (!options.output_path.empty()) {
    if (!write_to(options.output_path, options.quiet, results,
                  output_is_json ? driver::write_json : driver::write_csv)) {
      return 2;
    }
  }
  if (options.output_path.empty() || !options.csv_path.empty()) {
    const std::string csv_path =
        options.csv_path.empty() ? "macosim_results.csv" : options.csv_path;
    if (!write_to(csv_path, options.quiet, results, driver::write_csv)) {
      return 2;
    }
  }
  if (!options.json_path.empty()) {
    if (!write_to(options.json_path, options.quiet, results,
                  driver::write_json)) {
      return 2;
    }
  }
  return results.failures() == 0 ? 0 : 1;
}
