#include "driver/trace_cmd.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <set>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "trace/timeline.hpp"
#include "util/json.hpp"

namespace maco::driver {
namespace {

sim::TimePs us_to_ps(double us) {
  return us > 0.0 ? static_cast<sim::TimePs>(std::llround(us * 1e6)) : 0;
}

struct NocLink {
  unsigned node = 0;
  std::string dir;
  std::uint64_t flits = 0;
  std::uint64_t busy_ps = 0;
};

struct NocSection {
  unsigned width = 0;
  unsigned height = 0;
  std::uint64_t window_ps = 0;
  std::vector<NocLink> links;
};

double link_util(const NocLink& link, std::uint64_t window_ps) {
  if (window_ps == 0) return 0.0;
  return static_cast<double>(link.busy_ps) /
         static_cast<double>(window_ps);
}

// A required member of the NoC sidecar; throws naming the missing key
// instead of dereferencing find()'s nullptr.
const util::JsonValue& member(const util::JsonValue& object,
                              const char* key) {
  const util::JsonValue* value = object.find(key);
  if (value == nullptr) {
    throw std::runtime_error(
        std::string("trace \"maco\".\"noc\" section is missing '") + key +
        "'");
  }
  return *value;
}

// The writer's sidecar ("maco"."noc") when present; an empty section
// otherwise. Field errors throw through JsonValue's checked accessors,
// naming the malformed member.
NocSection parse_noc(const util::JsonValue& doc) {
  NocSection section;
  if (!doc.is_object()) return section;
  const util::JsonValue* maco = doc.find("maco");
  if (maco == nullptr) return section;
  const util::JsonValue* noc = maco->find("noc");
  if (noc == nullptr) return section;
  section.width = static_cast<unsigned>(member(*noc, "width").as_number());
  section.height =
      static_cast<unsigned>(member(*noc, "height").as_number());
  section.window_ps =
      static_cast<std::uint64_t>(member(*noc, "window_ps").as_number());
  for (const util::JsonValue& entry : member(*noc, "links").as_array()) {
    NocLink link;
    link.node = static_cast<unsigned>(member(entry, "node").as_number());
    link.dir = member(entry, "dir").as_string();
    link.flits =
        static_cast<std::uint64_t>(member(entry, "flits").as_number());
    link.busy_ps =
        static_cast<std::uint64_t>(member(entry, "busy_ps").as_number());
    section.links.push_back(std::move(link));
  }
  return section;
}

std::string render_gantt(const trace::Timeline& timeline,
                         std::size_t width) {
  std::ostringstream out;
  if (timeline.spans().empty()) {
    out << "trace has no complete ('X') events to render\n";
    return out.str();
  }
  std::set<std::string> tracks;
  for (const trace::Span& span : timeline.spans()) {
    tracks.insert(span.track);
  }
  out << timeline.spans().size() << " span(s) on " << tracks.size()
      << " track(s), "
      << static_cast<double>(timeline.end_ps() - timeline.begin_ps()) / 1e6
      << " us\n";
  out << timeline.render_ascii(width);
  return out.str();
}

std::string render_noc_text(const NocSection& noc) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(1);
  out << "NoC " << noc.width << "x" << noc.height
      << " link utilization over "
      << static_cast<double>(noc.window_ps) / 1e6
      << " us (max over each node's directed links, %):\n";
  // Per-node peak across its eject/north/south/east/west links: the grid
  // stays terminal-sized however many links the mesh has.
  std::vector<double> node_util(
      static_cast<std::size_t>(noc.width) * noc.height, 0.0);
  for (const NocLink& link : noc.links) {
    if (link.node < node_util.size()) {
      node_util[link.node] = std::max(node_util[link.node],
                                      link_util(link, noc.window_ps));
    }
  }
  // "x" + to_string(...) as one expression trips GCC 12's -Wrestrict
  // false positive under -Werror; append instead.
  const auto label = [](char axis, unsigned i) {
    std::string text(1, axis);
    text += std::to_string(i);
    return text;
  };
  out << "     ";
  for (unsigned x = 0; x < noc.width; ++x) {
    out << std::setw(6) << label('x', x);
  }
  out << "\n";
  for (unsigned y = 0; y < noc.height; ++y) {
    out << std::setw(5) << label('y', y);
    for (unsigned x = 0; x < noc.width; ++x) {
      out << std::setw(6) << 100.0 * node_util[y * noc.width + x];
    }
    out << "\n";
  }

  std::vector<const NocLink*> hottest;
  hottest.reserve(noc.links.size());
  for (const NocLink& link : noc.links) hottest.push_back(&link);
  std::sort(hottest.begin(), hottest.end(),
            [](const NocLink* a, const NocLink* b) {
              return a->busy_ps != b->busy_ps ? a->busy_ps > b->busy_ps
                                              : a->node < b->node;
            });
  const std::size_t shown = std::min<std::size_t>(hottest.size(), 8);
  out << "hottest links:\n";
  for (std::size_t i = 0; i < shown; ++i) {
    const NocLink& link = *hottest[i];
    out << "  node " << link.node << " (x" << link.node % noc.width
        << ",y" << link.node / noc.width << ") " << link.dir << ": "
        << 100.0 * link_util(link, noc.window_ps) << "% (" << link.flits
        << " flit(s))\n";
  }
  return out.str();
}

std::string render_noc_csv(const NocSection& noc) {
  std::ostringstream out;
  out << "node,x,y,dir,flits,busy_ps,util\n";
  for (const NocLink& link : noc.links) {
    out << link.node << ',' << link.node % noc.width << ','
        << link.node / noc.width << ',' << link.dir << ',' << link.flits
        << ',' << link.busy_ps << ','
        << link_util(link, noc.window_ps) << "\n";
  }
  return out.str();
}

}  // namespace

TraceRender render_trace(const std::string& json_text, std::size_t width) {
  const util::JsonValue doc = util::parse_json(json_text);
  const util::JsonValue* events = nullptr;
  if (doc.is_array()) {
    events = &doc;
  } else if (doc.is_object()) {
    events = doc.find("traceEvents");
  }
  if (events == nullptr || !events->is_array()) {
    throw std::runtime_error(
        "not a Chrome trace: expected a top-level array or an object with "
        "a traceEvents array");
  }

  trace::Timeline timeline;
  for (const util::JsonValue& event : events->as_array()) {
    const util::JsonValue* ph = event.find("ph");
    if (ph == nullptr || !ph->is_string() || ph->as_string() != "X") {
      continue;  // only complete events carry a renderable interval
    }
    const util::JsonValue* name = event.find("name");
    const util::JsonValue* tid = event.find("tid");
    const util::JsonValue* ts = event.find("ts");
    const util::JsonValue* dur = event.find("dur");
    if (name == nullptr || tid == nullptr || ts == nullptr ||
        dur == nullptr || !ts->is_number() || !dur->is_number()) {
      continue;
    }
    // Foreign traces may use numeric thread ids; ours are track strings.
    const std::string track =
        tid->is_string()
            ? tid->as_string()
            : "tid" + std::to_string(
                          static_cast<long long>(tid->as_number()));
    const sim::TimePs start = us_to_ps(ts->as_number());
    timeline.add(track, name->as_string(), start,
                 start + us_to_ps(dur->as_number()));
  }

  TraceRender render;
  render.gantt = render_gantt(timeline, width);
  const NocSection noc = parse_noc(doc);
  if (!noc.links.empty() && noc.width > 0 && noc.height > 0) {
    render.noc_text = render_noc_text(noc);
    render.noc_csv = render_noc_csv(noc);
  }
  return render;
}

}  // namespace maco::driver
