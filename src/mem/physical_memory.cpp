#include "mem/physical_memory.hpp"

#include <algorithm>

namespace maco::mem {

PhysicalMemory::Block& PhysicalMemory::block_for(std::uint64_t addr) {
  const std::uint64_t index = addr >> kBlockBits;
  auto& slot = blocks_[index];
  if (!slot) {
    slot = std::make_unique<Block>();
    slot->fill(0);
  }
  return *slot;
}

const PhysicalMemory::Block* PhysicalMemory::block_if_present(
    std::uint64_t addr) const {
  const auto it = blocks_.find(addr >> kBlockBits);
  return it == blocks_.end() ? nullptr : it->second.get();
}

void PhysicalMemory::write(std::uint64_t addr, const void* data,
                           std::uint64_t bytes) {
  const auto* src = static_cast<const std::uint8_t*>(data);
  while (bytes > 0) {
    const std::uint64_t offset = addr & (kBlockSize - 1);
    const std::uint64_t chunk = std::min(bytes, kBlockSize - offset);
    std::memcpy(block_for(addr).data() + offset, src, chunk);
    addr += chunk;
    src += chunk;
    bytes -= chunk;
  }
}

void PhysicalMemory::read(std::uint64_t addr, void* out,
                          std::uint64_t bytes) const {
  auto* dst = static_cast<std::uint8_t*>(out);
  while (bytes > 0) {
    const std::uint64_t offset = addr & (kBlockSize - 1);
    const std::uint64_t chunk = std::min(bytes, kBlockSize - offset);
    if (const Block* block = block_if_present(addr)) {
      std::memcpy(dst, block->data() + offset, chunk);
    } else {
      std::memset(dst, 0, chunk);  // untouched memory reads as zero
    }
    addr += chunk;
    dst += chunk;
    bytes -= chunk;
  }
}

void PhysicalMemory::fill(std::uint64_t addr, std::uint64_t bytes,
                          std::uint8_t value) {
  while (bytes > 0) {
    const std::uint64_t offset = addr & (kBlockSize - 1);
    const std::uint64_t chunk = std::min(bytes, kBlockSize - offset);
    std::memset(block_for(addr).data() + offset, value, chunk);
    addr += chunk;
    bytes -= chunk;
  }
}

}  // namespace maco::mem
