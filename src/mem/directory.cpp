#include "mem/directory.hpp"

#include "util/assert.hpp"

namespace maco::mem {

DirectoryCcm::DirectoryCcm(std::string name, const CcmConfig& config,
                           DramModel& dram, RecallFn recall)
    : name_(std::move(name)), config_(config), dram_(dram),
      recall_(std::move(recall)), l3_(name_ + ".l3", config.l3) {
  // The directory tracks every line ever touched, which dwarfs L3 residency
  // on big runs; pre-sizing to several L3 populations absorbs the rehash
  // storms the per-line handle() path otherwise pays while the map grows.
  directory_.reserve(4 * config.l3.size_bytes / config.l3.line_bytes);
}

DirectoryCcm::DirEntry& DirectoryCcm::entry(std::uint64_t line) {
  return directory_[line];
}

sim::TimePs DirectoryCcm::ensure_in_l3(std::uint64_t line, sim::TimePs now,
                                       CcmResponse& response,
                                       bool queue_dram) {
  const auto result = l3_.access(cache_addr(line), /*write=*/false,
                                 CoherenceState::kExclusive);
  if (result.hit) {
    response.l3_hit = true;
    return config_.l3_latency_ps;
  }
  response.dram_accessed = true;
  if (!queue_dram) {
    // Unqueued estimate: same state transitions, service-time latency.
    sim::TimePs latency = config_.l3_latency_ps;
    if (result.evicted && result.victim_dirty) {
      latency += dram_.service_latency(kLineBytes);
    }
    return latency + dram_.service_latency(kLineBytes);
  }
  // Victim writeback rides the same DRAM bus before the fill.
  sim::TimePs t = now + config_.l3_latency_ps;
  if (result.evicted && result.victim_dirty) {
    t = dram_.access(t, victim_line(result.victim_addr), kLineBytes);
  }
  if (!result.allocated) {
    // All ways locked: serve uncached straight from DRAM.
    return dram_.access(t, line, kLineBytes) - now;
  }
  return dram_.access(t, line, kLineBytes) - now;
}

CcmResponse DirectoryCcm::handle(const CcmRequest& request, sim::TimePs now,
                                 bool queue_dram) {
  CcmResponse response;
  const std::uint64_t line = line_addr(request.addr);
  DirEntry& dir = entry(line);
  const std::uint64_t node_bit = 1ull << request.node;
  response.latency += config_.directory_latency_ps;

  switch (request.type) {
    case CcmReqType::kGetS: {
      // If a private cache owns a modified copy, recall it first.
      if (dir.owner >= 0 && dir.owner != request.node) {
        ++recalls_;
        response.recalled = true;
        if (recall_) {
          response.latency += recall_(dir.owner, line);
        }
        // Owner downgrades to Owned (MOESI: dirty-shared) and stays a sharer.
        dir.sharers |= 1ull << dir.owner;
        dir.owner = -1;
      }
      response.latency +=
          ensure_in_l3(line, now + response.latency, response, queue_dram);
      dir.sharers |= node_bit;
      break;
    }
    case CcmReqType::kGetM: {
      if (dir.owner >= 0 && dir.owner != request.node) {
        ++recalls_;
        response.recalled = true;
        if (recall_) response.latency += recall_(dir.owner, line);
        // The recall invalidates the owner's copy outright (GetM), so it
        // must not linger in the sharer set and be invalidated again.
        dir.sharers &= ~(1ull << dir.owner);
        dir.owner = -1;
      }
      // Invalidate all other sharers (latency dominated by the farthest;
      // the recall function models one round trip).
      const std::uint64_t others = dir.sharers & ~node_bit;
      if (others != 0 && recall_) {
        for (int n = 0; n < 64; ++n) {
          if (others & (1ull << n)) {
            ++recalls_;
            response.recalled = true;
            response.latency += recall_(n, line);
            break;  // overlapped invalidations: charge the first round trip
          }
        }
      }
      response.latency +=
          ensure_in_l3(line, now + response.latency, response, queue_dram);
      dir.sharers = node_bit;
      dir.owner = request.node;
      break;
    }
    case CcmReqType::kPutFull: {
      // Full-line store: the writer overwrites every byte, so no fetch.
      if (dir.owner >= 0 && dir.owner != request.node) {
        ++recalls_;
        response.recalled = true;
        if (recall_) response.latency += recall_(dir.owner, line);
        dir.sharers &= ~(1ull << dir.owner);
        dir.owner = -1;
      }
      const std::uint64_t others = dir.sharers & ~node_bit;
      if (others != 0 && recall_) {
        for (int n = 0; n < 64; ++n) {
          if (others & (1ull << n)) {
            ++recalls_;
            response.recalled = true;
            response.latency += recall_(n, line);
            break;
          }
        }
      }
      const auto result = l3_.access(cache_addr(line), /*write=*/true,
                                      CoherenceState::kModified);
      response.latency += config_.l3_latency_ps;
      response.l3_hit = result.hit;
      if (result.evicted && result.victim_dirty) {
        // Posted victim writeback: books the bus, off the critical path.
        if (queue_dram) {
          dram_.access(now + response.latency,
                       victim_line(result.victim_addr), kLineBytes);
        }
        response.dram_accessed = true;
      }
      if (!result.allocated) {
        // Every way locked: the store streams straight to DRAM.
        response.dram_accessed = true;
        response.latency += queue_dram ? dram_.access(now + response.latency,
                                                      line, kLineBytes) -
                                             (now + response.latency)
                                       : dram_.service_latency(kLineBytes);
      }
      dir.sharers = node_bit;
      dir.owner = request.node;
      break;
    }
    case CcmReqType::kPutM: {
      // Writeback: the line lands in L3 (allocate-on-writeback).
      response.latency +=
          ensure_in_l3(line, now + response.latency, response, queue_dram);
      const auto state = l3_.probe(cache_addr(line));
      if (state) l3_.set_state(cache_addr(line), CoherenceState::kModified);
      if (dir.owner == request.node) dir.owner = -1;
      dir.sharers &= ~node_bit;
      break;
    }
    case CcmReqType::kStash: {
      const auto before = l3_.probe(cache_addr(line));
      if (before) {
        ++stash_hits_;
        response.l3_hit = true;
        response.latency += config_.l3_latency_ps;
      } else {
        ++stash_fills_;
        response.latency +=
            ensure_in_l3(line, now + response.latency, response, queue_dram);
      }
      break;
    }
    case CcmReqType::kStashLock: {
      // Same fill/hit accounting as kStash, plus the lock.
      if (l3_.probe(cache_addr(line))) {
        ++stash_hits_;
      } else {
        ++stash_fills_;
      }
      response.latency +=
          ensure_in_l3(line, now + response.latency, response, queue_dram);
      l3_.lock(cache_addr(line));
      break;
    }
    case CcmReqType::kUnlock: {
      l3_.unlock(cache_addr(line));
      break;
    }
  }
  return response;
}

CoherenceState DirectoryCcm::node_view(int node, std::uint64_t addr) const {
  const auto it = directory_.find(line_addr(addr));
  if (it == directory_.end()) return CoherenceState::kInvalid;
  const DirEntry& dir = it->second;
  if (dir.owner == node) return CoherenceState::kModified;
  if (dir.sharers & (1ull << node)) return CoherenceState::kShared;
  return CoherenceState::kInvalid;
}

std::uint64_t DirectoryCcm::sharer_mask(std::uint64_t addr) const {
  const auto it = directory_.find(line_addr(addr));
  return it == directory_.end() ? 0 : it->second.sharers;
}

}  // namespace maco::mem
