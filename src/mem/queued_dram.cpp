#include "mem/queued_dram.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace maco::mem {

QueuedDramController::QueuedDramController(std::string name,
                                           const DramConfig& config)
    : DramModel(std::move(name), config) {
  MACO_ASSERT_MSG(config.banks > 0, this->name() << ": banks must be > 0");
  MACO_ASSERT_MSG(config.row_buffer_bytes > 0,
                  this->name() << ": row_buffer_bytes must be > 0");
  banks_.resize(config.banks);
}

sim::TimePs QueuedDramController::access(sim::TimePs now, std::uint64_t addr,
                                         std::uint64_t bytes) {
  Bank& bank = banks_[bank_of(addr)];
  const auto row = static_cast<std::int64_t>(row_of(addr));

  // Per-bank FCFS: the command issues once the request has arrived and the
  // bank has drained its queue.
  sim::TimePs t = std::max(now, bank.free_at);
  if (bank.open_row == row) {
    ++row_hits_;
    t += config().t_cas_ps;
  } else {
    if (bank.open_row >= 0) {
      ++row_conflicts_;
      t += config().t_rp_ps;  // close the open row first
    } else {
      ++row_misses_;
    }
    const sim::TimePs act = std::max(t, bank.act_allowed_at);
    bank.act_allowed_at = act + config().t_rc_ps;
    bank.open_row = row;
    t = act + config().t_rcd_ps + config().t_cas_ps;
  }

  // Data from every bank serializes on the channel's shared bus.
  const sim::TimePs xfer = transfer_ps(bytes);
  const sim::TimePs start = std::max(t, bus_free_at_);
  bus_free_at_ = start + xfer;
  bank.free_at = bus_free_at_;
  record(bytes, xfer);
  return bus_free_at_;
}

}  // namespace maco::mem
