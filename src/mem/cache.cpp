#include "mem/cache.hpp"

#include "util/assert.hpp"
#include "util/bits.hpp"

namespace maco::mem {

const char* coherence_state_name(CoherenceState s) noexcept {
  switch (s) {
    case CoherenceState::kInvalid: return "I";
    case CoherenceState::kShared: return "S";
    case CoherenceState::kExclusive: return "E";
    case CoherenceState::kOwned: return "O";
    case CoherenceState::kModified: return "M";
  }
  return "?";
}

SetAssocCache::SetAssocCache(std::string name, const CacheConfig& config)
    : name_(std::move(name)), config_(config) {
  MACO_ASSERT_MSG(util::is_pow2(config.line_bytes),
                  name_ << ": line size must be a power of two");
  MACO_ASSERT_MSG(config.ways > 0, name_ << ": needs at least one way");
  const std::uint64_t lines = config.size_bytes / config.line_bytes;
  MACO_ASSERT_MSG(lines % config.ways == 0 && lines > 0,
                  name_ << ": size/line/ways mismatch");
  sets_ = lines / config.ways;
  // Non-power-of-two set counts are legal (the paper's 48 KB 4-way L1s have
  // 192 sets); indexing falls back from mask to modulo in that case.
  line_shift_ = util::log2_floor(config.line_bytes);
  if (util::is_pow2(sets_)) {
    set_mask_ = sets_ - 1;
    set_shift_ = util::log2_floor(sets_);
  }
  lines_.resize(lines);
}

std::uint64_t SetAssocCache::set_index(std::uint64_t addr) const noexcept {
  const std::uint64_t line = addr >> line_shift_;
  return set_mask_ ? (line & set_mask_) : (line % sets_);
}

std::uint64_t SetAssocCache::tag_of(std::uint64_t addr) const noexcept {
  const std::uint64_t line = addr >> line_shift_;
  return set_mask_ ? (line >> set_shift_) : (line / sets_);
}

SetAssocCache::Line* SetAssocCache::find(std::uint64_t addr) {
  const std::uint64_t set = set_index(addr);
  const std::uint64_t tag = tag_of(addr);
  for (unsigned w = 0; w < config_.ways; ++w) {
    Line& line = lines_[set * config_.ways + w];
    if (line.state != CoherenceState::kInvalid && line.tag == tag) {
      return &line;
    }
  }
  return nullptr;
}

const SetAssocCache::Line* SetAssocCache::find(std::uint64_t addr) const {
  return const_cast<SetAssocCache*>(this)->find(addr);
}

SetAssocCache::AccessResult SetAssocCache::access(
    std::uint64_t addr, bool write, CoherenceState install_state) {
  AccessResult result;
  ++tick_;
  if (Line* line = find(addr)) {
    ++hits_;
    line->lru_tick = tick_;
    if (write) line->state = CoherenceState::kModified;
    result.hit = true;
    result.allocated = true;
    result.state = line->state;
    return result;
  }

  ++misses_;
  // Choose a victim: invalid way first, else LRU among unlocked lines.
  const std::uint64_t set = set_index(addr);
  Line* victim = nullptr;
  for (unsigned w = 0; w < config_.ways; ++w) {
    Line& line = lines_[set * config_.ways + w];
    if (line.state == CoherenceState::kInvalid) {
      victim = &line;
      break;
    }
  }
  if (!victim) {
    for (unsigned w = 0; w < config_.ways; ++w) {
      Line& line = lines_[set * config_.ways + w];
      if (line.locked) continue;
      if (!victim || line.lru_tick < victim->lru_tick) victim = &line;
    }
  }
  if (!victim) {
    // Every way is locked: the line cannot be allocated. The caller (CCM)
    // treats this as an uncached access.
    result.allocated = false;
    return result;
  }

  if (victim->state != CoherenceState::kInvalid) {
    result.evicted = true;
    result.victim_addr =
        (victim->tag * sets_ + set) * config_.line_bytes;
    result.victim_dirty = victim->state == CoherenceState::kModified ||
                          victim->state == CoherenceState::kOwned;
    ++evictions_;
    if (result.victim_dirty) ++writebacks_;
  }

  victim->tag = tag_of(addr);
  victim->state = write ? CoherenceState::kModified : install_state;
  victim->locked = false;
  victim->lru_tick = tick_;
  result.allocated = true;
  result.state = victim->state;
  return result;
}

std::optional<CoherenceState> SetAssocCache::probe(std::uint64_t addr) const {
  const Line* line = find(addr);
  if (!line) return std::nullopt;
  return line->state;
}

void SetAssocCache::set_state(std::uint64_t addr, CoherenceState state) {
  if (Line* line = find(addr)) {
    if (state == CoherenceState::kInvalid) {
      invalidate(addr);
    } else {
      line->state = state;
    }
  }
}

void SetAssocCache::invalidate(std::uint64_t addr) {
  if (Line* line = find(addr)) {
    if (line->locked) --locked_count_;
    line->state = CoherenceState::kInvalid;
    line->locked = false;
  }
}

void SetAssocCache::invalidate_all() {
  for (auto& line : lines_) {
    line.state = CoherenceState::kInvalid;
    line.locked = false;
  }
  locked_count_ = 0;
}

bool SetAssocCache::lock(std::uint64_t addr) {
  Line* line = find(addr);
  if (!line) return false;
  if (!line->locked) {
    line->locked = true;
    ++locked_count_;
  }
  return true;
}

bool SetAssocCache::unlock(std::uint64_t addr) {
  Line* line = find(addr);
  if (!line) return false;
  if (line->locked) {
    line->locked = false;
    --locked_count_;
  }
  return true;
}

bool SetAssocCache::is_locked(std::uint64_t addr) const {
  const Line* line = find(addr);
  return line && line->locked;
}

}  // namespace maco::mem
