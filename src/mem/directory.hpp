// Cache Coherence Manager (CCM): one distributed L3 slice plus a
// directory implementing a MOESI protocol, with the paper's stash
// (prefetch-into-L3) and lock (pin-in-L3) operations.
//
// The directory is *blocking*: requests to a line are serialized, which is
// exact for this single-threaded event simulation. Owner recalls
// (invalidate/fetch from a private cache) are delegated to a registered
// RecallFn so the CCM does not need to know the private hierarchy's shape;
// the system layer implements it against the CPU cache models.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "mem/cache.hpp"
#include "mem/dram.hpp"
#include "sim/time.hpp"

namespace maco::mem {

enum class CcmReqType : std::uint8_t {
  kGetS,       // read, shared
  kGetM,       // read-for-ownership (write)
  kPutFull,    // full-line streaming store: allocate without fetching
  kPutM,       // writeback of a modified line
  kStash,      // prefetch the line into L3 (paper: MA_STASH)
  kStashLock,  // prefetch and pin (paper: CPU config-locks via CCM)
  kUnlock,     // release the pin
};

struct CcmRequest {
  CcmReqType type = CcmReqType::kGetS;
  int node = 0;  // requesting compute node
  std::uint64_t addr = 0;
};

struct CcmResponse {
  sim::TimePs latency = 0;  // request arrival -> data/ack ready at CCM
  bool l3_hit = false;
  bool dram_accessed = false;
  bool recalled = false;  // a private-cache owner had to be recalled
};

struct CcmConfig {
  CacheConfig l3{2 * 1024 * 1024, 16, kLineBytes};  // one 2 MiB slice
  sim::TimePs l3_latency_ps = 8'000;                // ~16 NoC cycles
  sim::TimePs directory_latency_ps = 2'000;
  // Line-interleave factor of the address space across slices. The slice
  // only ever sees every interleave-th line, so the interleave bits must
  // be stripped before set indexing or 15/16 of the sets go unused.
  unsigned slice_interleave = 1;
};

class DirectoryCcm {
 public:
  // RecallFn(owner_node, line) -> latency for the owner to flush/invalidate.
  using RecallFn =
      std::function<sim::TimePs(int owner_node, std::uint64_t line)>;

  DirectoryCcm(std::string name, const CcmConfig& config,
               DramModel& dram, RecallFn recall = {});

  // `queue_dram = false` computes DRAM latency from service times without
  // booking the shared data bus — for requests whose issue time is unknown
  // to the caller (the page-table walker's PTE reads), where booking at a
  // stale timestamp would return absolute backlog as latency.
  CcmResponse handle(const CcmRequest& request, sim::TimePs now,
                     bool queue_dram = true);

  // Directory introspection (tests/diagnostics).
  CoherenceState node_view(int node, std::uint64_t addr) const;
  bool line_locked(std::uint64_t addr) const {
    return l3_.is_locked(cache_addr(line_addr(addr)));
  }
  std::uint64_t sharer_mask(std::uint64_t addr) const;

  SetAssocCache& l3() noexcept { return l3_; }
  const SetAssocCache& l3() const noexcept { return l3_; }

  std::uint64_t recalls() const noexcept { return recalls_; }
  std::uint64_t stash_hits() const noexcept { return stash_hits_; }
  std::uint64_t stash_fills() const noexcept { return stash_fills_; }

 private:
  struct DirEntry {
    std::uint64_t sharers = 0;  // bitmask of nodes with the line
    int owner = -1;             // node holding M/E/O, -1 if none
  };

  DirEntry& entry(std::uint64_t line);
  // Address as the slice's cache sees it (interleave bits stripped).
  std::uint64_t cache_addr(std::uint64_t line) const noexcept {
    return line / config_.slice_interleave;
  }
  // Fetches the line into L3 if absent; returns added latency.
  sim::TimePs ensure_in_l3(std::uint64_t line, sim::TimePs now,
                           CcmResponse& response, bool queue_dram);

  // Physical line address of the cache-space victim `l3_` reports. The
  // cache reconstructs victims at line granularity, so the interleave
  // offset inside the cache line is lost — the result lands in the
  // victim's row-buffer neighborhood, which is all a banked DRAM model
  // needs from a writeback address.
  std::uint64_t victim_line(std::uint64_t victim_cache_addr) const noexcept {
    return victim_cache_addr * config_.slice_interleave;
  }

  std::string name_;
  CcmConfig config_;
  DramModel& dram_;
  RecallFn recall_;
  SetAssocCache l3_;
  std::unordered_map<std::uint64_t, DirEntry> directory_;
  std::uint64_t recalls_ = 0;
  std::uint64_t stash_hits_ = 0;
  std::uint64_t stash_fills_ = 0;
};

}  // namespace maco::mem
