// `dram=queued`: a vendored banked row-buffer DRAM channel model.
//
// One channel is M banks sharing one data bus. Each bank holds one DRAM
// page (row) open; an access classifies as a row HIT (column command only),
// a row MISS against a precharged bank (activate first), or a row CONFLICT
// (precharge the open row, then activate), with ACT-to-ACT spacing (t_rc)
// enforced per bank. Requests to one bank serve FCFS; data transfers from
// all banks serialize on the channel bus. Consecutive row-buffer-sized
// address blocks interleave across banks, so streaming traffic spreads
// while same-bank strides collide — turning bank conflicts into a
// first-class, sweepable effect. No external dependency.
#pragma once

#include <cstdint>
#include <vector>

#include "mem/dram.hpp"

namespace maco::mem {

class QueuedDramController final : public DramModel {
 public:
  QueuedDramController(std::string name, const DramConfig& config);

  sim::TimePs access(sim::TimePs now, std::uint64_t addr,
                     std::uint64_t bytes) override;
  sim::TimePs busy_until() const noexcept override { return bus_free_at_; }

  // Address interleaving: consecutive row-buffer-sized blocks rotate
  // across banks; the row is the block index within a bank.
  unsigned bank_of(std::uint64_t addr) const noexcept {
    return static_cast<unsigned>((addr / config().row_buffer_bytes) %
                                 config().banks);
  }
  std::uint64_t row_of(std::uint64_t addr) const noexcept {
    return addr / (config().row_buffer_bytes * config().banks);
  }
  // Inverse of (bank_of, row_of, offset within the row buffer).
  std::uint64_t addr_of(unsigned bank, std::uint64_t row,
                        std::uint64_t offset) const noexcept {
    return (row * config().banks + bank) * config().row_buffer_bytes + offset;
  }

  std::uint64_t row_hits() const noexcept { return row_hits_; }
  std::uint64_t row_misses() const noexcept { return row_misses_; }
  std::uint64_t row_conflicts() const noexcept { return row_conflicts_; }
  double row_hit_rate() const noexcept {
    const std::uint64_t total = row_hits_ + row_misses_ + row_conflicts_;
    return total ? static_cast<double>(row_hits_) /
                       static_cast<double>(total)
                 : 0.0;
  }

 private:
  struct Bank {
    std::int64_t open_row = -1;      // -1 = precharged (no open row)
    sim::TimePs free_at = 0;         // FCFS: prior request's completion
    sim::TimePs act_allowed_at = 0;  // earliest next ACT (t_rc spacing)
  };

  std::vector<Bank> banks_;
  sim::TimePs bus_free_at_ = 0;
  std::uint64_t row_hits_ = 0;
  std::uint64_t row_misses_ = 0;
  std::uint64_t row_conflicts_ = 0;
};

}  // namespace maco::mem
