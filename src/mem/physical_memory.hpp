// Sparse flat physical memory: the functional truth of all bytes.
//
// The simulator follows the classic split between a functional backing store
// and timing models: caches and directories track tags/states/latencies
// (mem/cache.hpp, mem/directory.hpp) while the actual data lives here, so
// data correctness is trivially preserved no matter what the timing models
// do. Storage is allocated in 4 KiB blocks on first touch.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

namespace maco::mem {

class PhysicalMemory {
 public:
  static constexpr std::uint64_t kBlockBits = 12;
  static constexpr std::uint64_t kBlockSize = 1ull << kBlockBits;

  void write(std::uint64_t addr, const void* data, std::uint64_t bytes);
  void read(std::uint64_t addr, void* out, std::uint64_t bytes) const;

  // Typed helpers for the common FP64 path.
  void write_f64(std::uint64_t addr, double value) {
    write(addr, &value, sizeof value);
  }
  double read_f64(std::uint64_t addr) const {
    double value = 0.0;
    read(addr, &value, sizeof value);
    return value;
  }

  void fill(std::uint64_t addr, std::uint64_t bytes, std::uint8_t value);

  std::uint64_t resident_blocks() const noexcept { return blocks_.size(); }
  std::uint64_t resident_bytes() const noexcept {
    return blocks_.size() * kBlockSize;
  }

 private:
  using Block = std::array<std::uint8_t, kBlockSize>;
  Block& block_for(std::uint64_t addr);
  const Block* block_if_present(std::uint64_t addr) const;

  std::unordered_map<std::uint64_t, std::unique_ptr<Block>> blocks_;
};

}  // namespace maco::mem
