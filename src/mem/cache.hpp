// Set-associative cache timing/state model with MOESI line states.
//
// Tag/state only — data bytes live in PhysicalMemory. Supports per-line lock
// bits (used by the L3/CCM for the paper's stash-and-lock scheme: locked
// lines are never chosen as eviction victims).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace maco::mem {

inline constexpr unsigned kLineBytes = 64;

constexpr std::uint64_t line_addr(std::uint64_t addr) noexcept {
  return addr & ~static_cast<std::uint64_t>(kLineBytes - 1);
}

enum class CoherenceState : std::uint8_t {
  kInvalid,
  kShared,
  kExclusive,
  kOwned,
  kModified,
};

const char* coherence_state_name(CoherenceState s) noexcept;

struct CacheConfig {
  std::uint64_t size_bytes = 512 * 1024;
  unsigned ways = 8;
  unsigned line_bytes = kLineBytes;
};

class SetAssocCache {
 public:
  SetAssocCache(std::string name, const CacheConfig& config);

  struct AccessResult {
    bool hit = false;
    bool allocated = false;       // line now resident (false if all ways locked)
    CoherenceState state = CoherenceState::kInvalid;
    bool evicted = false;
    std::uint64_t victim_addr = 0;
    bool victim_dirty = false;    // victim was M or O (needs writeback)
  };

  // Allocate-on-miss access; `write` installs/updates to Modified, read
  // installs to `install_state` (Exclusive by default, Shared when the
  // directory says other sharers exist).
  AccessResult access(std::uint64_t addr, bool write,
                      CoherenceState install_state = CoherenceState::kExclusive);

  // Probe without LRU/stat side effects.
  std::optional<CoherenceState> probe(std::uint64_t addr) const;

  // Directory-initiated state changes.
  void set_state(std::uint64_t addr, CoherenceState state);
  void invalidate(std::uint64_t addr);
  void invalidate_all();

  // Lock management (L3 only): returns false if the line is absent.
  bool lock(std::uint64_t addr);
  bool unlock(std::uint64_t addr);
  bool is_locked(std::uint64_t addr) const;
  std::uint64_t locked_lines() const noexcept { return locked_count_; }

  const std::string& name() const noexcept { return name_; }
  const CacheConfig& config() const noexcept { return config_; }
  std::uint64_t sets() const noexcept { return sets_; }

  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }
  std::uint64_t evictions() const noexcept { return evictions_; }
  std::uint64_t writebacks() const noexcept { return writebacks_; }
  double hit_rate() const noexcept {
    const std::uint64_t total = hits_ + misses_;
    return total ? static_cast<double>(hits_) / static_cast<double>(total)
                 : 0.0;
  }
  void reset_stats() noexcept { hits_ = misses_ = evictions_ = writebacks_ = 0; }

 private:
  struct Line {
    std::uint64_t tag = 0;
    CoherenceState state = CoherenceState::kInvalid;
    bool locked = false;
    std::uint64_t lru_tick = 0;
  };

  std::uint64_t set_index(std::uint64_t addr) const noexcept;
  std::uint64_t tag_of(std::uint64_t addr) const noexcept;
  Line* find(std::uint64_t addr);
  const Line* find(std::uint64_t addr) const;

  std::string name_;
  CacheConfig config_;
  std::uint64_t sets_;
  // Index/tag arithmetic runs on every simulated memory reference, so the
  // divisions are precomputed into shifts where the geometry is a power of
  // two (line size always is; set counts like the L1's 192 are not).
  unsigned line_shift_ = 6;
  unsigned set_shift_ = 0;   // valid iff set_mask_ != 0
  std::uint64_t set_mask_ = 0;  // sets_ - 1 when sets_ is a power of two
  std::vector<Line> lines_;  // sets_ * ways, row-major by set
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t writebacks_ = 0;
  std::uint64_t locked_count_ = 0;
};

}  // namespace maco::mem
