#include "mem/dram.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "mem/queued_dram.hpp"
#include "util/assert.hpp"

namespace maco::mem {

std::string_view dram_kind_name(DramKind kind) noexcept {
  switch (kind) {
    case DramKind::kSimple: return "simple";
    case DramKind::kQueued: return "queued";
  }
  return "?";
}

DramKind parse_dram_kind(std::string_view name) {
  if (name == "simple") return DramKind::kSimple;
  if (name == "queued") return DramKind::kQueued;
  throw std::invalid_argument("unknown dram backend '" + std::string(name) +
                              "' (want simple|queued)");
}

DramModel::DramModel(std::string name, const DramConfig& config)
    : name_(std::move(name)), config_(config) {
  MACO_ASSERT_MSG(config.bandwidth_bytes_per_second > 0,
                  name_ << ": bandwidth must be positive");
}

DramModel::~DramModel() = default;

sim::TimePs DramModel::transfer_ps(std::uint64_t bytes) const noexcept {
  return static_cast<sim::TimePs>(std::llround(
      static_cast<double>(bytes) / config_.bandwidth_bytes_per_second * 1e12));
}

sim::TimePs DramModel::service_latency(std::uint64_t bytes) const noexcept {
  return config_.access_latency_ps +
         static_cast<sim::TimePs>(static_cast<double>(bytes) /
                                  config_.bandwidth_bytes_per_second * 1e12);
}

DramController::DramController(std::string name, const DramConfig& config)
    : DramModel(std::move(name), config) {}

sim::TimePs DramController::access(sim::TimePs now, std::uint64_t bytes) {
  const sim::TimePs xfer = transfer_ps(bytes);
  const sim::TimePs start = std::max(now, bus_free_at_);
  bus_free_at_ = start + xfer;
  record(bytes, xfer);
  return bus_free_at_ + config().access_latency_ps;
}

std::unique_ptr<DramModel> make_dram_model(std::string name,
                                           const DramConfig& config) {
  switch (config.kind) {
    case DramKind::kSimple:
      return std::make_unique<DramController>(std::move(name), config);
    case DramKind::kQueued:
      return std::make_unique<QueuedDramController>(std::move(name), config);
  }
  throw std::invalid_argument("unknown dram backend kind");
}

}  // namespace maco::mem
