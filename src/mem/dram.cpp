#include "mem/dram.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace maco::mem {

DramController::DramController(std::string name, const DramConfig& config)
    : name_(std::move(name)), config_(config) {
  MACO_ASSERT_MSG(config.bandwidth_bytes_per_second > 0,
                  name_ << ": bandwidth must be positive");
}

sim::TimePs DramController::access(sim::TimePs now, std::uint64_t bytes) {
  ++requests_;
  bytes_ += bytes;
  const auto transfer_ps = static_cast<sim::TimePs>(std::llround(
      static_cast<double>(bytes) / config_.bandwidth_bytes_per_second * 1e12));
  const sim::TimePs start = std::max(now, bus_free_at_);
  bus_free_at_ = start + transfer_ps;
  busy_ps_ += transfer_ps;
  return bus_free_at_ + config_.access_latency_ps;
}

}  // namespace maco::mem
