// DDR controller model: fixed access latency plus a bandwidth-limited
// service queue (token-bucket on the data bus).
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.hpp"

namespace maco::mem {

struct DramConfig {
  double bandwidth_bytes_per_second = 25.6e9;  // one DDR4-3200 channel
  sim::TimePs access_latency_ps = 60'000;      // row activation + CAS, ~60 ns
};

class DramController {
 public:
  DramController(std::string name, const DramConfig& config);

  // Schedules a `bytes`-sized transfer arriving at `now`; returns the
  // completion time. Transfers serialize on the data bus.
  sim::TimePs access(sim::TimePs now, std::uint64_t bytes);

  // Completion time the bus frees up (for back-pressure decisions).
  sim::TimePs busy_until() const noexcept { return bus_free_at_; }

  // Unqueued service time for `bytes` (latency + transfer, no bus booking).
  sim::TimePs service_latency(std::uint64_t bytes) const noexcept {
    return config_.access_latency_ps +
           static_cast<sim::TimePs>(static_cast<double>(bytes) /
                                    config_.bandwidth_bytes_per_second * 1e12);
  }

  const std::string& name() const noexcept { return name_; }
  const DramConfig& config() const noexcept { return config_; }
  std::uint64_t bytes_transferred() const noexcept { return bytes_; }
  std::uint64_t requests() const noexcept { return requests_; }
  // Fraction of wall time the bus was busy since construction.
  double utilization(sim::TimePs now) const noexcept {
    return now ? static_cast<double>(busy_ps_) / static_cast<double>(now) : 0.0;
  }
  void reset_stats() noexcept { bytes_ = requests_ = busy_ps_ = 0; }

 private:
  std::string name_;
  DramConfig config_;
  sim::TimePs bus_free_at_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t requests_ = 0;
  std::uint64_t busy_ps_ = 0;
};

}  // namespace maco::mem
