// DRAM backend models behind one interface.
//
// The `dram` hardware knob selects the timing backend per sweep point:
// `simple` is the original flat-latency + bandwidth token-bucket controller
// (behavior-preserving default), `queued` a vendored bank/row-buffer model
// (see queued_dram.hpp). Both share DramModel: address-aware access
// scheduling plus traffic statistics over an explicit observation window.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "sim/time.hpp"

namespace maco::mem {

// Selectable DRAM timing backend (the `dram` hardware knob).
enum class DramKind : std::uint8_t {
  kSimple,  // flat latency + data-bus token bucket
  kQueued,  // banked row-buffer model with per-bank FCFS queues
};

std::string_view dram_kind_name(DramKind kind) noexcept;
// Throws std::invalid_argument naming the valid choices.
DramKind parse_dram_kind(std::string_view name);

struct DramConfig {
  double bandwidth_bytes_per_second = 25.6e9;  // one DDR4-3200 channel
  sim::TimePs access_latency_ps = 60'000;      // row activation + CAS, ~60 ns
  DramKind kind = DramKind::kSimple;

  // Banked model (kind == kQueued) only.
  //
  // Calibration invariant: the command timings are chosen so a cold
  // closed-row access (t_rcd + t_cas) equals the flat model's
  // access_latency_ps exactly. At low load with cold rows the two
  // backends therefore agree by construction — row hits come in cheaper,
  // row conflicts dearer — and tests/test_backends.cpp pins the
  // invariant, so retune t_rcd_ps/t_cas_ps and access_latency_ps
  // together or the cross-validation suite fails.
  unsigned banks = 8;                     // banks per channel
  std::uint64_t row_buffer_bytes = 2048;  // DRAM page held open per bank
  sim::TimePs t_rcd_ps = 30'000;  // ACT -> column command
  sim::TimePs t_cas_ps = 30'000;  // column command -> first data
  sim::TimePs t_rp_ps = 15'000;   // precharge before reopening (conflict)
  sim::TimePs t_rc_ps = 75'000;   // minimum ACT -> ACT spacing, same bank
};

// Common interface of the DRAM backends. Accesses are address-aware so
// banked models can classify row hits/misses/conflicts; the flat model
// ignores the address.
class DramModel {
 public:
  DramModel(std::string name, const DramConfig& config);
  virtual ~DramModel();

  DramModel(const DramModel&) = delete;
  DramModel& operator=(const DramModel&) = delete;

  // Schedules a `bytes`-sized transfer of physical address `addr` arriving
  // at `now`; returns the absolute completion time.
  //
  // Arrival-time servicing rule: `now` is when the request REACHES the
  // controller (e.g. after the interconnect's request leg), never the
  // time it was issued upstream. Queueing backends charge waiting from
  // `now` forward; passing an earlier timestamp bills the same backlog
  // twice — once in the network wait, once in the bank queue.
  virtual sim::TimePs access(sim::TimePs now, std::uint64_t addr,
                             std::uint64_t bytes) = 0;

  // Completion time the data bus frees up (for back-pressure decisions).
  virtual sim::TimePs busy_until() const noexcept = 0;

  // Unqueued best-case service time for `bytes` (latency + transfer, no
  // queue or bus booking) — for callers with no notion of current time.
  virtual sim::TimePs service_latency(std::uint64_t bytes) const noexcept;

  const std::string& name() const noexcept { return name_; }
  const DramConfig& config() const noexcept { return config_; }
  std::uint64_t bytes_transferred() const noexcept { return bytes_; }
  std::uint64_t requests() const noexcept { return requests_; }
  // Absolute data-bus busy time this window (utilization's numerator).
  std::uint64_t busy_ps() const noexcept { return busy_ps_; }

  // Fraction of the observation window the data bus was busy. The window
  // opens at construction and reopens at each reset_stats(now); dividing
  // by wall time since construction after a reset would silently
  // underreport.
  double utilization(sim::TimePs now) const noexcept {
    return now > window_start_ps_
               ? static_cast<double>(busy_ps_) /
                     static_cast<double>(now - window_start_ps_)
               : 0.0;
  }
  void reset_stats(sim::TimePs now = 0) noexcept {
    bytes_ = requests_ = busy_ps_ = 0;
    window_start_ps_ = now;
  }

 protected:
  // Pure data-bus occupancy of a `bytes` transfer.
  sim::TimePs transfer_ps(std::uint64_t bytes) const noexcept;
  // Books one request into the shared statistics.
  void record(std::uint64_t bytes, sim::TimePs bus_busy_ps) noexcept {
    ++requests_;
    bytes_ += bytes;
    busy_ps_ += static_cast<std::uint64_t>(bus_busy_ps);
  }

 private:
  std::string name_;
  DramConfig config_;
  std::uint64_t bytes_ = 0;
  std::uint64_t requests_ = 0;
  std::uint64_t busy_ps_ = 0;
  sim::TimePs window_start_ps_ = 0;
};

// `dram=simple`: fixed access latency plus a bandwidth-limited service
// queue (token-bucket on the data bus).
class DramController final : public DramModel {
 public:
  DramController(std::string name, const DramConfig& config);

  // Address-blind entry point: the flat model has no banks, so the address
  // cannot matter; kept for callers predating the DramModel interface.
  sim::TimePs access(sim::TimePs now, std::uint64_t bytes);

  sim::TimePs access(sim::TimePs now, std::uint64_t /*addr*/,
                     std::uint64_t bytes) override {
    return access(now, bytes);
  }

  sim::TimePs busy_until() const noexcept override { return bus_free_at_; }

 private:
  sim::TimePs bus_free_at_ = 0;
};

// Builds the backend `config.kind` selects.
std::unique_ptr<DramModel> make_dram_model(std::string name,
                                           const DramConfig& config);

}  // namespace maco::mem
