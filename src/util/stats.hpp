// Statistics primitives: counters, scalar gauges and histograms, collected
// into a registry so components can dump a coherent report.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace maco::util {

// Monotonic event counter.
class Counter {
 public:
  void inc(std::uint64_t by = 1) noexcept { value_ += by; }
  std::uint64_t value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

// Streaming scalar summary (count/sum/min/max/mean) without storing samples.
class Scalar {
 public:
  void record(double sample) noexcept;
  std::uint64_t count() const noexcept { return count_; }
  double sum() const noexcept { return sum_; }
  double mean() const noexcept { return count_ ? sum_ / count_ : 0.0; }
  double min() const noexcept { return count_ ? min_ : 0.0; }
  double max() const noexcept { return count_ ? max_ : 0.0; }
  void reset() noexcept;

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Fixed-bucket histogram over [lo, hi) with uniform buckets plus
// under/overflow bins; used for latency distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void record(double sample) noexcept;
  std::uint64_t count() const noexcept { return summary_.count(); }
  double mean() const noexcept { return summary_.mean(); }
  double min() const noexcept { return summary_.min(); }
  double max() const noexcept { return summary_.max(); }
  // p in [0, 1]; linear interpolation inside the bucket.
  double percentile(double p) const noexcept;
  const std::vector<std::uint64_t>& buckets() const noexcept { return bins_; }
  void reset() noexcept;

 private:
  double lo_;
  double hi_;
  double bucket_width_;
  std::vector<std::uint64_t> bins_;  // [underflow, b0..bn-1, overflow]
  Scalar summary_;
};

// Flat name -> value registry. Components register stats under
// hierarchical dotted names ("node0.mmae.dma0.bytes_read").
class StatRegistry {
 public:
  Counter& counter(const std::string& name);
  Scalar& scalar(const std::string& name);
  // First call creates the histogram with the given shape; later calls
  // return the existing one and ignore the shape arguments.
  Histogram& histogram(const std::string& name, double lo, double hi,
                       std::size_t buckets);

  // Read-only views for collectors that roll stats up into metrics.
  const std::map<std::string, Counter>& counters() const noexcept {
    return counters_;
  }
  const std::map<std::string, Scalar>& scalars() const noexcept {
    return scalars_;
  }
  const std::map<std::string, Histogram>& histograms() const noexcept {
    return histograms_;
  }

  // Dumps "name value" lines sorted by name.
  void report(std::ostream& os) const;
  void reset_all();

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Scalar> scalars_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace maco::util
