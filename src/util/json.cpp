#include "util/json.hpp"

#include <cctype>
#include <charconv>
#include <cstdint>
#include <cstdio>
#include <stdexcept>

namespace maco::util {
namespace {

const char* kind_name(JsonValue::Kind kind) noexcept {
  switch (kind) {
    case JsonValue::Kind::kNull: return "null";
    case JsonValue::Kind::kBool: return "bool";
    case JsonValue::Kind::kNumber: return "number";
    case JsonValue::Kind::kString: return "string";
    case JsonValue::Kind::kArray: return "array";
    case JsonValue::Kind::kObject: return "object";
  }
  return "?";
}

[[noreturn]] void wrong_kind(JsonValue::Kind want, JsonValue::Kind got) {
  throw std::runtime_error(std::string("JSON value is ") + kind_name(got) +
                           ", expected " + kind_name(want));
}

// Recursive-descent parser over a string_view with a cursor; every error
// carries the byte offset where parsing stopped.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing content after JSON document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("JSON parse error at byte " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_whitespace();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "', got '" + text_[pos_] + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value() {
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue::string(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue::boolean(true);
        fail("bad literal (expected 'true')");
      case 'f':
        if (consume_literal("false")) return JsonValue::boolean(false);
        fail("bad literal (expected 'false')");
      case 'n':
        if (consume_literal("null")) return JsonValue::null();
        fail("bad literal (expected 'null')");
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    std::vector<std::pair<std::string, JsonValue>> members;
    if (peek() == '}') {
      ++pos_;
      return JsonValue::object(std::move(members));
    }
    while (true) {
      if (peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      expect(':');
      members.emplace_back(std::move(key), parse_value());
      const char next = peek();
      if (next == ',') {
        ++pos_;
        continue;
      }
      if (next == '}') {
        ++pos_;
        return JsonValue::object(std::move(members));
      }
      fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    expect('[');
    std::vector<JsonValue> items;
    if (peek() == ']') {
      ++pos_;
      return JsonValue::array(std::move(items));
    }
    while (true) {
      items.push_back(parse_value());
      const char next = peek();
      if (next == ',') {
        ++pos_;
        continue;
      }
      if (next == ']') {
        ++pos_;
        return JsonValue::array(std::move(items));
      }
      fail("expected ',' or ']' in array");
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("bad hex digit in \\u escape");
      }
    }
    return code;
  }

  void append_utf8(std::string& out, std::uint32_t code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("truncated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          std::uint32_t code = parse_hex4();
          // Surrogate pair: a high surrogate must be followed by \uDC00..
          // \uDFFF; combine them into one code point.
          if (code >= 0xD800 && code <= 0xDBFF) {
            if (!consume_literal("\\u")) fail("unpaired high surrogate");
            const unsigned low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF) {
              fail("bad low surrogate in \\u pair");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            fail("unpaired low surrogate");
          }
          append_utf8(out, code);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    skip_whitespace();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double value = 0.0;
    const auto [ptr, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (ec != std::errc{} || ptr != text_.data() + pos_ || pos_ == start) {
      pos_ = start;
      fail("bad number");
    }
    return JsonValue::number(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) wrong_kind(Kind::kBool, kind_);
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::kNumber) wrong_kind(Kind::kNumber, kind_);
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) wrong_kind(Kind::kString, kind_);
  return string_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  if (kind_ != Kind::kArray) wrong_kind(Kind::kArray, kind_);
  return array_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::as_object()
    const {
  if (kind_ != Kind::kObject) wrong_kind(Kind::kObject, kind_);
  return object_;
}

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [name, value] : object_) {
    if (name == key) return &value;
  }
  return nullptr;
}

JsonValue JsonValue::null() { return JsonValue{}; }

JsonValue JsonValue::boolean(bool value) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = value;
  return v;
}

JsonValue JsonValue::number(double value) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = value;
  return v;
}

JsonValue JsonValue::string(std::string value) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(value);
  return v;
}

JsonValue JsonValue::array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::object(
    std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(members);
  return v;
}

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

std::string json_escape(const std::string& text) {
  std::string escaped;
  escaped.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': escaped += "\\\""; break;
      case '\\': escaped += "\\\\"; break;
      case '\n': escaped += "\\n"; break;
      case '\t': escaped += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          escaped += buf;
        } else {
          escaped += c;
        }
    }
  }
  return escaped;
}

}  // namespace maco::util
